package amdgpubench_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper. Each benchmark regenerates its experiment end to end — kernel
// generation, IL->ISA compilation, cache trace replay, timing simulation —
// and reports, beyond Go's ns/op, the experiment's headline quantity as a
// custom metric (plateau seconds, crossover ratio, slope, speedup), so a
// `go test -bench .` run doubles as a reproduction summary.

import (
	"math"
	"testing"

	"amdgpubench/internal/cache"
	"amdgpubench/internal/campaign"
	"amdgpubench/internal/core"
	"amdgpubench/internal/device"
	"amdgpubench/internal/hier"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/kerngen"
	"amdgpubench/internal/pipeline"
	"amdgpubench/internal/raster"
	"amdgpubench/internal/report"
)

// newSuite uses the paper's 5000 kernel iterations (the default), so the
// reported custom metrics are on the same scale as the paper's figures.
// The iteration count only scales the simulated seconds, not the wall
// time of the benchmark itself.
func newSuite() *core.Suite {
	return core.NewSuite()
}

func firstY(fig *report.Figure, label string) float64 {
	for _, s := range fig.Series {
		if s.Label == label && len(s.Points) > 0 {
			return s.Points[0].Y
		}
	}
	return math.NaN()
}

func BenchmarkTable1HardwareQuery(b *testing.B) {
	s := newSuite()
	for i := 0; i < b.N; i++ {
		if tbl := s.HardwareTable(); len(tbl.Rows) != 3 {
			b.Fatal("Table I must list three GPUs")
		}
	}
}

func BenchmarkFig2Disassembly(b *testing.B) {
	spec := device.Lookup(device.RV770)
	k, err := kerngen.Generic(kerngen.Params{
		Mode: il.Pixel, Type: il.Float4, Inputs: 3, Outputs: 1, ALUOps: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := ilc.Compile(k, spec)
		if err != nil {
			b.Fatal(err)
		}
		if p.GPRCount != 3 {
			b.Fatalf("Fig. 2 kernel GPRs = %d, want 3", p.GPRCount)
		}
	}
}

func BenchmarkFig7ALUFetch(b *testing.B) {
	s := newSuite()
	var fig *report.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(core.CrossoverOf(fig, "4870 Pixel Float"), "crossover-4870-float")
	b.ReportMetric(core.CrossoverOf(fig, "4870 Pixel Float4"), "crossover-4870-float4")
}

// repeatedSweep is the artifact-cache workload: a fresh suite re-running
// one figure several times, the shape of iterating on a plot or sweeping
// a derived experiment. Cached vs uncached isolates the pipeline's
// memoization (generate/compile/replay/simulate artifacts reused within
// and across the repeats); the figures are bit-identical either way.
func repeatedSweep(b *testing.B, disableCache bool) {
	const repeats = 3
	var hits, lookups uint64
	for i := 0; i < b.N; i++ {
		s := core.NewSuite()
		s.Iterations = 1
		s.DisableArtifactCache = disableCache
		for r := 0; r < repeats; r++ {
			if _, _, err := s.Fig7(); err != nil {
				b.Fatal(err)
			}
		}
		for _, st := range s.CacheStats().Stages {
			hits += st.Hits + st.Coalesced
			lookups += st.Hits + st.Coalesced + st.Misses
		}
	}
	// The cache hit rate is the quantity this benchmark pair isolates;
	// scripts/bench.sh records it into BENCH_<sha>.json alongside ns/op,
	// so cache-effectiveness regressions show up in the same artifact as
	// time regressions.
	if lookups > 0 {
		b.ReportMetric(float64(hits)/float64(lookups), "cache-hit-rate")
	}
}

func BenchmarkFig7RepeatedSweepCached(b *testing.B)   { repeatedSweep(b, false) }
func BenchmarkFig7RepeatedSweepUncached(b *testing.B) { repeatedSweep(b, true) }

// incrementalSweep is the dense-sweep replay workload the prefix-snapshot
// store exists for: one trace family replayed at every input count from 1
// to 24 — the shape of Fig. 11's input sweep — through the pipeline's
// Replay stage. Cold (pipeline disabled) pays the full quadratic stream,
// replaying 1+2+...+24 = 300 input-units from scratch; Reuse resumes the
// family's snapshot at every point and replays only the 24 deltas. The
// figures are bit-identical either way (the cursor identity tests prove
// it); the ns/op gap is the incremental win, and the prefix-hit-rate
// metric lands in BENCH_<sha>.json so a snapshot-store regression shows
// up next to the time it costs.
func incrementalSweep(b *testing.B, disabled bool) {
	base := cache.TraceConfig{
		Spec:          device.Lookup(device.RV770),
		Order:         raster.PixelOrder(),
		W:             1024,
		H:             1024,
		ElemBytes:     4,
		ResidentWaves: 16,
	}
	const maxInputs = 24
	var hits, lookups int64
	for i := 0; i < b.N; i++ {
		p := pipeline.New(pipeline.Options{Disabled: disabled})
		for n := 1; n <= maxInputs; n++ {
			tc := base
			tc.NumInputs = n
			if _, err := p.Replay(tc); err != nil {
				b.Fatal(err)
			}
		}
		snap := p.Metrics().Snapshot()
		hits += snap.Get("pipeline.replay-prefix.hits")
		lookups += snap.Get("pipeline.replay-prefix.hits") + snap.Get("pipeline.replay-prefix.misses")
	}
	if lookups > 0 {
		b.ReportMetric(float64(hits)/float64(lookups), "prefix-hit-rate")
	}
}

func BenchmarkIncrementalSweepCold(b *testing.B)  { incrementalSweep(b, true) }
func BenchmarkIncrementalSweepReuse(b *testing.B) { incrementalSweep(b, false) }

func BenchmarkFig8ALUFetchBlock4x16(b *testing.B) {
	s := newSuite()
	var fig *report.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(firstY(fig, "5870 Compute Float4"), "plateau-5870-float4-s")
}

func BenchmarkFig9GlobalReadStreamWrite(b *testing.B) {
	s := newSuite()
	var fig *report.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = s.Fig9()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(firstY(fig, "3870 Pixel Float"), "plateau-3870-float-s")
}

func BenchmarkFig10GlobalReadGlobalWrite(b *testing.B) {
	s := newSuite()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11TextureFetchLatency(b *testing.B) {
	s := newSuite()
	var fig *report.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = s.Fig11()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, sr := range fig.Series {
		if sr.Label == "4870 Pixel Float" {
			slope, _, _ := report.LinearFit(sr)
			b.ReportMetric(slope, "slope-4870-float-s/input")
		}
	}
}

func BenchmarkFig12GlobalReadLatency(b *testing.B) {
	s := newSuite()
	var fig *report.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = s.Fig12()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, sr := range fig.Series {
		if sr.Label == "3870 Pixel Float" {
			slope, _, _ := report.LinearFit(sr)
			b.ReportMetric(slope, "slope-3870-float-s/input")
		}
	}
}

func BenchmarkFig13StreamingStore(b *testing.B) {
	s := newSuite()
	var fig *report.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = s.Fig13()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, sr := range fig.Series {
		if sr.Label == "4870 Pixel Float" {
			slope, _, _ := report.LinearFit(sr)
			b.ReportMetric(slope, "slope-4870-float-s/output")
		}
	}
}

func BenchmarkFig14GlobalWrite(b *testing.B) {
	s := newSuite()
	var fig *report.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = s.Fig14()
		if err != nil {
			b.Fatal(err)
		}
	}
	var slopeF, slopeF4 float64
	for _, sr := range fig.Series {
		slope, _, _ := report.LinearFit(sr)
		switch sr.Label {
		case "4870 Pixel Float":
			slopeF = slope
		case "4870 Pixel Float4":
			slopeF4 = slope
		}
	}
	if slopeF > 0 {
		b.ReportMetric(slopeF4/slopeF, "float4/float-slope-ratio")
	}
}

func BenchmarkFig15DomainSize(b *testing.B) {
	s := newSuite()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Fig15Pixel(); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Fig15Compute(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16RegisterUsage(b *testing.B) {
	s := newSuite()
	var fig *report.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = s.Fig16()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, sr := range fig.Series {
		if sr.Label == "4870 Pixel Float" && len(sr.Points) > 1 {
			speedup := sr.Points[0].Y / sr.Points[len(sr.Points)-1].Y
			b.ReportMetric(speedup, "speedup-4870-float")
		}
	}
}

func BenchmarkFig17RegisterUsage4x16(b *testing.B) {
	s := newSuite()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Fig17(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClauseUsageControl(b *testing.B) {
	s := newSuite()
	for i := 0; i < b.N; i++ {
		_, runs, err := s.ClauseControl()
		if err != nil {
			b.Fatal(err)
		}
		if len(runs) == 0 {
			b.Fatal("control produced no runs")
		}
	}
}

func BenchmarkExtTransThroughput(b *testing.B) {
	s := newSuite()
	var fig *report.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = s.TransThroughput(core.TransThroughputConfig{Arch: device.RV770})
		if err != nil {
			b.Fatal(err)
		}
	}
	var add, rcp float64
	for _, sr := range fig.Series {
		n := len(sr.Points)
		switch sr.Label {
		case "4870 float4 add":
			add = sr.Points[n-1].Y
		case "4870 float4 rcp/rsq":
			rcp = sr.Points[n-1].Y
		}
	}
	if add > 0 {
		b.ReportMetric(rcp/add, "float4-trans/add-ratio")
	}
}

func BenchmarkExtBlockSizeSweep(b *testing.B) {
	s := newSuite()
	var fig *report.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = s.BlockSizeSweep(core.BlockSizeConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, sr := range fig.Series {
		if sr.Label == "4870 Compute Float" {
			b.ReportMetric(sr.Points[0].Y/sr.Points[3].Y, "64x1/8x8-speedup")
		}
	}
}

func BenchmarkExtAblationStudy(b *testing.B) {
	s := newSuite()
	var res []core.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = s.AblationStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		if r.Name == "clause switching (latency hiding)" {
			b.ReportMetric(r.Ratio(), "latency-hiding-slowdown")
		}
	}
}

// The bundle pair quantifies the campaign scheduler's dedup win on the
// flagship fig7+fig8+fig11+fig16 bundle. Sequential is what four
// separate amdmb invocations do — each figure on its own fresh suite,
// cold caches — while Campaign plans the same four figures as one
// deduplicated DAG on one suite, so work shared between figures (fig8's
// kernels are fig7's compute kernels under another block shape) is
// generated and compiled once. The deduped-executions metric is the
// plan's own count of avoided pipeline executions; the ns/op gap
// between the two benchmarks is the realized saving.

func BenchmarkSequentialBundle(b *testing.B) {
	figs := []func(*core.Suite) (*report.Figure, []core.Run, error){
		(*core.Suite).Fig7, (*core.Suite).Fig8, (*core.Suite).Fig11, (*core.Suite).Fig16,
	}
	executed := 0
	for i := 0; i < b.N; i++ {
		executed = 0
		for _, fig := range figs {
			s := newSuite()
			_, runs, err := fig(s)
			if err != nil {
				b.Fatal(err)
			}
			executed += len(runs)
		}
	}
	b.ReportMetric(float64(executed), "points-executed")
}

func BenchmarkCampaignBundle(b *testing.B) {
	var res *campaign.Result
	for i := 0; i < b.N; i++ {
		s := newSuite()
		specs, err := campaign.Specs(s, []string{"fig7", "fig8", "fig11", "fig16"})
		if err != nil {
			b.Fatal(err)
		}
		plan, err := campaign.NewPlan(specs, campaign.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res, err = plan.Run(s); err != nil {
			b.Fatal(err)
		}
		if res.Failed() != 0 {
			b.Fatalf("%d units failed", res.Failed())
		}
	}
	if res.Stats.DedupedTotal() == 0 {
		b.Fatal("flagship bundle must dedup")
	}
	b.ReportMetric(float64(res.Stats.DedupedTotal()), "deduped-executions")
	b.ReportMetric(float64(res.Executed), "points-executed")
}

// BenchmarkHierInfer is the memory-hierarchy dissection end to end: the
// staged probe schedule against the RV770 model, recovering L1/L2
// capacity, line size, associativity and the miss-hit delta from
// measured curves alone. The benchmark fails outright if any recovered
// parameter disagrees with the device table, so a cache-model or
// timing-model regression cannot hide inside a "fast but wrong" run;
// the probe count lands in BENCH_<sha>.json as the schedule-size metric.
func BenchmarkHierInfer(b *testing.B) {
	spec := device.Lookup(device.RV770)
	probes := 0
	for i := 0; i < b.N; i++ {
		inf, err := hier.Infer(hier.SimMeasurer(spec, 100), hier.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if ms := inf.Diff(spec); len(ms) != 0 {
			b.Fatalf("inference diverged from the device model: %v", ms)
		}
		probes = inf.Probes
	}
	b.ReportMetric(float64(probes), "probes")
}

// BenchmarkHierLadderSweep runs the hier-lat campaign figure — the
// pointer-chase latency ladder over every device — through the full
// planned pipeline. Its largest points replay multi-thousand-slot fetch
// schedules, so this tracks the packed-arena replay cost the dissection
// added to the hot path.
func BenchmarkHierLadderSweep(b *testing.B) {
	points := 0
	for i := 0; i < b.N; i++ {
		s := newSuite()
		spec, err := hier.LatencyLadderSpec(s)
		if err != nil {
			b.Fatal(err)
		}
		_, runs, err := s.RunFigureSpec(spec)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range runs {
			if r.Failed() {
				b.Fatalf("point %s x=%g failed: %s", r.Card.Label(), r.X, r.Err)
			}
		}
		points = len(runs)
	}
	b.ReportMetric(float64(points), "points-executed")
}
