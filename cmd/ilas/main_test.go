package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"amdgpubench/internal/il"
	"amdgpubench/internal/kerngen"
)

func runIlas(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errOut)
	return code, out.String(), errOut.String()
}

func sampleKernel(t *testing.T) *il.Kernel {
	t.Helper()
	k, err := kerngen.ALUFetch(kerngen.Params{
		Mode: il.Pixel, Type: il.Float, Inputs: 4, Outputs: 1, ALUFetchRatio: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestRoundTripStdin(t *testing.T) {
	src := il.Assemble(sampleKernel(t))
	code, out, stderr := runIlas(t, src)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if out != src {
		t.Errorf("round trip not canonical:\n%s\nvs\n%s", out, src)
	}
	// Canonical output is a fixpoint: feeding it back changes nothing.
	code, again, _ := runIlas(t, out)
	if code != 0 || again != out {
		t.Error("assembler output is not a fixpoint")
	}
}

func TestRoundTripFile(t *testing.T) {
	src := il.Assemble(sampleKernel(t))
	path := filepath.Join(t.TempDir(), "k.il")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runIlas(t, "", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if out != src {
		t.Error("file round trip differs from stdin round trip")
	}
}

func TestISADisassembly(t *testing.T) {
	src := il.Assemble(sampleKernel(t))
	for _, arch := range []string{"RV670", "RV770", "RV870", "4870"} {
		code, out, stderr := runIlas(t, src, "-isa", "-arch", arch)
		if code != 0 {
			t.Fatalf("-arch %s: exit %d, stderr: %s", arch, code, stderr)
		}
		for _, want := range []string{"TEX:", "ALU:", "EXP_DONE"} {
			if !strings.Contains(out, want) {
				t.Errorf("-arch %s disassembly missing %q:\n%.400s", arch, want, out)
			}
		}
	}
}

func TestBadInputExitCodes(t *testing.T) {
	if code, _, stderr := runIlas(t, "not il at all\n"); code != 1 || stderr == "" {
		t.Errorf("garbage input: exit %d, stderr %q", code, stderr)
	}
	// Parseable but invalid: kernel with a use before definition.
	bad := "il_ps_2_0 ; kernel bad\ndcl_type float\ndcl_output o0\nexport o0, r0\nend\n"
	if code, _, stderr := runIlas(t, bad); code != 1 || !strings.Contains(stderr, "before definition") {
		t.Errorf("invalid kernel: exit %d, stderr %q", code, stderr)
	}
	if code, _, _ := runIlas(t, "", filepath.Join(t.TempDir(), "missing.il")); code != 1 {
		t.Errorf("missing file: exit %d", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runIlas(t, "", "-nonsense"); code != 2 {
		t.Errorf("unknown flag: exit %d", code)
	}
	if code, _, _ := runIlas(t, "", "a.il", "b.il"); code != 2 {
		t.Errorf("two files: exit %d", code)
	}
	src := il.Assemble(sampleKernel(t))
	if code, _, stderr := runIlas(t, src, "-isa", "-arch", "G80"); code != 2 || !strings.Contains(stderr, "unknown architecture") {
		t.Errorf("bad arch: exit %d, stderr %q", code, stderr)
	}
}
