// Command ilas is the IL assembler/disassembler round-trip tool: it reads
// IL assembly from a file (or stdin), validates it, and either re-emits
// canonical IL or compiles it to ISA for a chosen GPU and prints the
// disassembly.
//
// Usage:
//
//	ilas [-arch RV670|RV770|RV870] [-isa] [file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/isa"
)

func parseArch(name string) (device.Arch, error) {
	switch strings.ToUpper(name) {
	case "RV670", "3870":
		return device.RV670, nil
	case "RV770", "4870":
		return device.RV770, nil
	case "RV870", "5870":
		return device.RV870, nil
	}
	return 0, fmt.Errorf("unknown architecture %q", name)
}

// run executes the tool against explicit streams so tests can drive it
// exactly as main does. Exit codes: 0 success, 1 bad input or compile
// failure, 2 usage error.
func run(argv []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ilas", flag.ContinueOnError)
	fs.SetOutput(stderr)
	archName := fs.String("arch", "RV770", "target GPU: RV670, RV770 or RV870")
	emitISA := fs.Bool("isa", false, "compile to ISA and disassemble")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: ilas [-arch RV670|RV770|RV870] [-isa] [file]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() > 1 {
		fs.Usage()
		return 2
	}
	var src []byte
	var err error
	if fs.NArg() > 0 {
		src, err = os.ReadFile(fs.Arg(0))
	} else {
		src, err = io.ReadAll(stdin)
	}
	if err != nil {
		fmt.Fprintf(stderr, "ilas: %v\n", err)
		return 1
	}
	k, err := il.Parse(string(src))
	if err != nil {
		fmt.Fprintf(stderr, "ilas: %v\n", err)
		return 1
	}
	if err := k.Validate(); err != nil {
		fmt.Fprintf(stderr, "ilas: %v\n", err)
		return 1
	}
	if !*emitISA {
		fmt.Fprint(stdout, il.Assemble(k))
		return 0
	}
	arch, err := parseArch(*archName)
	if err != nil {
		fmt.Fprintf(stderr, "ilas: %v\n", err)
		return 2
	}
	prog, err := ilc.Compile(k, device.Lookup(arch))
	if err != nil {
		fmt.Fprintf(stderr, "ilas: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, isa.Disassemble(prog))
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
