// Command ilas is the IL assembler/disassembler round-trip tool: it reads
// IL assembly from a file (or stdin), validates it, and either re-emits
// canonical IL or compiles it to ISA for a chosen GPU and prints the
// disassembly.
//
// Usage:
//
//	ilas [-arch RV670|RV770|RV870] [-isa] [file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/isa"
)

var (
	archName = flag.String("arch", "RV770", "target GPU: RV670, RV770 or RV870")
	emitISA  = flag.Bool("isa", false, "compile to ISA and disassemble")
)

func parseArch(name string) (device.Arch, error) {
	switch strings.ToUpper(name) {
	case "RV670", "3870":
		return device.RV670, nil
	case "RV770", "4870":
		return device.RV770, nil
	case "RV870", "5870":
		return device.RV870, nil
	}
	return 0, fmt.Errorf("unknown architecture %q", name)
}

func main() {
	flag.Parse()
	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ilas: %v\n", err)
		os.Exit(1)
	}
	k, err := il.Parse(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ilas: %v\n", err)
		os.Exit(1)
	}
	if err := k.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ilas: %v\n", err)
		os.Exit(1)
	}
	if !*emitISA {
		fmt.Print(il.Assemble(k))
		return
	}
	arch, err := parseArch(*archName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ilas: %v\n", err)
		os.Exit(1)
	}
	prog, err := ilc.Compile(k, device.Lookup(arch))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ilas: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(isa.Disassemble(prog))
}
