// Command amdmbd is the long-lived campaign daemon: one shared suite,
// many clients. It listens for campaign submissions over HTTP
// (internal/daemon documents the API), plans each through the
// deduplicating scheduler, and runs them all against ONE core.Suite —
// so concurrent clients with overlapping figures compile and simulate
// shared work once, and a persistent -cache-dir lets a restarted daemon
// replay finished results from disk instead of recomputing them.
//
//	amdmbd -cache-dir /var/cache/amdmb &
//	amdmb campaign -figs fig7,fig8 -csv -remote http://127.0.0.1:7821
//
// The iteration count is fixed per daemon (-iters; 0 means the paper's
// 5000) because it is part of every cache identity — clients asking for
// a different count are rejected with 400 rather than silently served
// mismatched numbers. The daemon runs with no checkpoint file (the
// persistent pipeline cache is its durability story — unlike a
// checkpoint, it is keyed per simulate config, so any mix of concurrent
// campaigns shares it safely) and no tracer (unbounded on a long-lived
// process).
//
// Exit status: 0 after a clean signal-driven shutdown, 1 on a fatal
// serve error, 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"amdgpubench/internal/campaign"
	"amdgpubench/internal/core"
	"amdgpubench/internal/daemon"
	"amdgpubench/internal/fsatomic"
	"amdgpubench/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(argv []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("amdmbd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:7821", "listen address")
		cacheDir  = fs.String("cache-dir", "", "persistent simulate-result cache directory; restarts replay from it instead of recomputing")
		iters     = fs.Int("iters", 0, "timing iterations for every campaign (0 = the paper's 5000); clients must match")
		workers   = fs.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS)")
		retries   = fs.Int("retries", 0, "per-point retries for transient failures")
		maxDomain = fs.Int("max-domain", 0, "clamp every sweep domain to at most N x N (0 = unclamped)")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if len(fs.Args()) != 0 {
		fmt.Fprintf(stderr, "amdmbd: unexpected arguments %q\n", fs.Args())
		return 2
	}

	logger := log.New(stderr, "amdmbd: ", log.LstdFlags)

	// A crash can strand *.tmp-* files from in-flight atomic writes in
	// the cache; they are garbage by construction (a finished write is
	// always renamed away), so sweep them before serving.
	if *cacheDir != "" {
		if n, err := fsatomic.CleanOrphans(*cacheDir); err != nil {
			logger.Printf("cache orphan sweep: %v", err)
		} else if n > 0 {
			logger.Printf("removed %d orphaned temp file(s) under %s", n, *cacheDir)
		}
	}

	s := core.NewSuite()
	s.Iterations = *iters
	s.Workers = *workers
	s.Retries = *retries
	s.MaxDomain = *maxDomain
	s.PersistDir = *cacheDir

	srv := &http.Server{Handler: daemon.NewServer(campaign.NewJobs(s), s.Metrics(), logger)}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Print(err)
		return 1
	}
	effIters := *iters
	if effIters == 0 {
		effIters = sim.DefaultIterations
	}
	cache := *cacheDir
	if cache == "" {
		cache = "none (results die with the process)"
	}
	logger.Printf("listening on http://%s (iterations=%d, cache=%s)", ln.Addr(), effIters, cache)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Print(err)
		return 1
	case got := <-sig:
		// In-flight campaigns are abandoned; with a cache-dir their
		// finished points replay instantly on the next daemon.
		logger.Printf("%v: shutting down", got)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		return 0
	}
}
