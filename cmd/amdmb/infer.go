package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"amdgpubench/internal/core"
	"amdgpubench/internal/device"
	"amdgpubench/internal/hier"
	"amdgpubench/internal/report"
)

// The infer subcommand: the suite measures, then proves, its own cache
// model. For each selected device it runs the memory-hierarchy
// dissection of internal/hier — pointer-chase ladders, stride-resonance
// and cold-miss-blend probes, executed through the suite's staged
// pipeline — and recovers L1/L2 capacity, line size, associativity and
// the miss-hit latency delta from the measured curves alone. The
// recovered model is diffed against the device table's ground truth:
//
//	amdmb infer                 # all built-in devices
//	amdmb infer -archs rv770    # one device
//	amdmb infer -csv            # machine-readable rows, one per parameter
//
// Exit status: 0 when every inferred parameter agrees with the device
// table, 1 on a fatal error, 2 on usage errors, 3 when inference
// completed but one or more parameters mismatched.
//
// There is deliberately no -max-domain here: the stride probes encode
// the cache stride in the surface width, so clamping domains would
// silently corrupt the geometry being measured rather than shrink the
// sweep.

// runInferCmd is the `amdmb infer` entry point; argv excludes the
// "infer" word itself.
func runInferCmd(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("amdmb infer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		iters   int
		archs   string
		asCSV   bool
		noCache bool
	)
	fs.IntVar(&iters, "iters", 0, "kernel iterations per timing (default 5000; inference is iteration-invariant)")
	fs.StringVar(&archs, "archs", "", "comma-separated ASICs to dissect (rv670,rv770,rv870; default all)")
	fs.BoolVar(&asCSV, "csv", false, "emit one CSV row per parameter instead of tables")
	fs.BoolVar(&noCache, "no-cache", false, "disable content-addressed artifact caching")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if len(fs.Args()) != 0 {
		fmt.Fprintf(stderr, "amdmb infer: unexpected arguments %q\n", fs.Args())
		return 2
	}
	specs, err := selectArchs(archs)
	if err != nil {
		fmt.Fprintf(stderr, "amdmb infer: %v\n", err)
		return 2
	}

	if asCSV {
		fmt.Fprintln(stdout, "arch,param,inferred,truth,ok")
	}
	mismatched := 0
	for _, spec := range specs {
		s := core.NewSuite()
		s.Iterations = iters
		s.DisableArtifactCache = noCache
		inf, diff, err := hier.InferArch(s, spec.Arch, hier.Config{})
		if err != nil {
			fmt.Fprintf(stderr, "amdmb infer: %v\n", err)
			return 1
		}
		mismatched += len(diff)
		if asCSV {
			emitInferCSV(stdout, spec, inf, diff)
		} else {
			fmt.Fprintln(stdout, inferTable(spec, inf, diff).Format())
		}
	}
	if mismatched > 0 {
		fmt.Fprintf(stderr, "amdmb infer: %d parameter(s) disagree with the device model\n", mismatched)
		return 3
	}
	return 0
}

// selectArchs resolves the -archs flag to device specs, defaulting to
// every built-in device.
func selectArchs(archs string) ([]device.Spec, error) {
	if archs == "" {
		return device.All(), nil
	}
	byName := make(map[string]device.Spec)
	for _, spec := range device.All() {
		byName[strings.ToLower(spec.Arch.String())] = spec
		byName[spec.Arch.CardName()] = spec
	}
	var out []device.Spec
	for _, name := range strings.Split(archs, ",") {
		name = strings.ToLower(strings.TrimSpace(name))
		if name == "" {
			continue
		}
		spec, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown arch %q (have rv670, rv770, rv870)", name)
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-archs lists no devices")
	}
	return out, nil
}

// inferParams flattens the recovered model and the ground truth into
// aligned (param, inferred, truth) rows, in the order Diff reports.
func inferParams(spec device.Spec, inf hier.Inferred) [][3]string {
	delta := float64(spec.TexMissLatency - spec.TexHitLatency)
	return [][3]string{
		{"l1-bytes", fmt.Sprintf("%d", inf.L1Bytes), fmt.Sprintf("%d", spec.L1CacheBytes)},
		{"l1-line-bytes", fmt.Sprintf("%d", inf.L1LineBytes), fmt.Sprintf("%d", spec.L1LineBytes)},
		{"l1-ways", fmt.Sprintf("%d", inf.L1Ways), fmt.Sprintf("%d", spec.L1Ways)},
		{"l2-bytes", fmt.Sprintf("%d", inf.L2Bytes), fmt.Sprintf("%d", spec.L2CacheBytes)},
		{"l2-ways", fmt.Sprintf("%d", inf.L2Ways), fmt.Sprintf("%d", spec.L2Ways)},
		{"miss-delta", fmt.Sprintf("%.1f", inf.MissDelta), fmt.Sprintf("%.1f", delta)},
	}
}

func inferTable(spec device.Spec, inf hier.Inferred, diff []hier.Mismatch) *report.Table {
	bad := make(map[string]bool, len(diff))
	for _, m := range diff {
		bad[m.Param] = true
	}
	t := &report.Table{
		Title:  fmt.Sprintf("HD %s (%s): inferred cache model vs device table (%d probes)", spec.Arch.CardName(), spec.Arch, inf.Probes),
		Header: []string{"parameter", "inferred", "ground truth", "verdict"},
	}
	for _, row := range inferParams(spec, inf) {
		verdict := "match"
		if bad[row[0]] {
			verdict = "MISMATCH"
		}
		t.AddRow(row[0], row[1], row[2], verdict)
	}
	return t
}

func emitInferCSV(w io.Writer, spec device.Spec, inf hier.Inferred, diff []hier.Mismatch) {
	bad := make(map[string]bool, len(diff))
	for _, m := range diff {
		bad[m.Param] = true
	}
	for _, row := range inferParams(spec, inf) {
		fmt.Fprintf(w, "%s,%s,%s,%s,%t\n", spec.Arch, row[0], row[1], row[2], !bad[row[0]])
	}
}
