package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"amdgpubench/internal/fault"
	"amdgpubench/internal/soak"
)

// The soak subcommand: seeded adversarial stress campaigns over the
// whole pipeline (internal/soak), plus the out-of-process crash-torture
// harness that SIGKILLs child amdmb sweeps and verifies clean resume.
//
//	amdmb soak -seed 42 -steps 20 -faults 'seed=9;transient:prob=0.2' \
//	           -kill-every 3 -churn 2 -bundles out/bundles
//	amdmb soak -plan 5 -seed 42          # print the campaign plan, run nothing
//	amdmb soak -replay out/bundles/step004_determinism
//	amdmb soak -torture 3                # SIGKILL/resume torture via child amdmb
//
// Exit status: 0 all oracles held, 1 infrastructure failure, 2 usage
// error, 4 oracle violations (repro bundles listed on stdout).

// soakCLI carries the soak subcommand's flags.
type soakCLI struct {
	seed      int64
	steps     int
	duration  time.Duration
	kernels   int
	faults    string
	killEvery int
	churn     int
	workers   int
	retries   int
	maxDomain int
	trace     bool
	failFast  bool
	bundleDir string
	scratch   string
	plan      int
	replay    string
	torture   int

	out    io.Writer
	errOut io.Writer
}

// runSoak is the `amdmb soak` entry point; argv excludes the "soak"
// word itself.
func runSoak(argv []string, stdout, stderr io.Writer) int {
	c := &soakCLI{out: stdout, errOut: stderr}
	fs := flag.NewFlagSet("amdmb soak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Int64Var(&c.seed, "seed", 0, "campaign seed; the entire campaign is a function of it")
	fs.IntVar(&c.steps, "steps", 0, "campaign length in steps (0 = 8, unless -duration is set)")
	fs.DurationVar(&c.duration, "duration", 0, "stop the campaign after this long (checked between steps)")
	fs.IntVar(&c.kernels, "kernels", 0, "sweep width per step (0 = 4)")
	fs.StringVar(&c.faults, "faults", "", "deterministic fault-injection plan (see -faults on the main command)")
	fs.IntVar(&c.killEvery, "kill-every", 0, "make every Nth step a kill/checkpoint/resume cycle (0 = off)")
	fs.IntVar(&c.churn, "churn", 0, "goroutines churning the artifact caches during each sweep (0 = off)")
	fs.IntVar(&c.workers, "workers", 0, "sweep parallelism (0 = GOMAXPROCS)")
	fs.IntVar(&c.retries, "retries", 0, "retry attempts for transient launch failures (0 = 2)")
	fs.IntVar(&c.maxDomain, "max-domain", 0, "clamp every sweep domain to at most NxN (0 = no clamp)")
	fs.BoolVar(&c.trace, "trace", true, "arm the span tracer and trace-consistency oracle (disable for hours-long runs)")
	fs.BoolVar(&c.failFast, "fail-fast", false, "stop the campaign at the first oracle violation")
	fs.StringVar(&c.bundleDir, "bundles", "", "write repro bundles for oracle violations under this directory")
	fs.StringVar(&c.scratch, "scratch", "", "directory for kill/resume checkpoints (default: a temp dir)")
	fs.IntVar(&c.plan, "plan", 0, "print the first N campaign steps and exit without running")
	fs.StringVar(&c.replay, "replay", "", "replay a repro bundle directory and exit")
	fs.IntVar(&c.torture, "torture", 0, "run N SIGKILL/resume cycles against child amdmb sweeps and exit")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if len(fs.Args()) != 0 {
		fmt.Fprintf(stderr, "amdmb soak: unexpected arguments %q\n", fs.Args())
		return 2
	}

	var plan *fault.Plan
	if c.faults != "" {
		var err error
		plan, err = fault.Parse(c.faults)
		if err != nil {
			fmt.Fprintf(stderr, "amdmb soak: %v\n", err)
			return 2
		}
	}
	cfg := soak.Config{
		Seed:           c.seed,
		Steps:          c.steps,
		Duration:       c.duration,
		KernelsPerStep: c.kernels,
		Faults:         plan,
		KillEvery:      c.killEvery,
		ChurnWorkers:   c.churn,
		Workers:        c.workers,
		Retries:        c.retries,
		MaxDomain:      c.maxDomain,
		Trace:          c.trace,
		ScratchDir:     c.scratch,
		BundleDir:      c.bundleDir,
		Out:            stdout,
		FailFast:       c.failFast,
	}

	switch {
	case c.replay != "":
		return c.runReplay(cfg)
	case c.plan > 0:
		soak.RenderPlan(stdout, soak.Plan(cfg, c.plan))
		return 0
	case c.torture > 0:
		return c.runTorture()
	}
	return c.runCampaign(cfg)
}

// runCampaign executes the campaign and renders its report.
func (c *soakCLI) runCampaign(cfg soak.Config) int {
	rep, err := soak.Run(cfg)
	if err != nil {
		fmt.Fprintf(c.errOut, "amdmb soak: %v\n", err)
		return 1
	}
	fmt.Fprintf(c.out, "soak: seed=%d steps=%d points=%d failures=%d kills=%d launches=%d violations=%d\n",
		rep.Seed, rep.Steps, rep.Points, rep.Failures, rep.Kills, rep.Launches, len(rep.Violations))
	fmt.Fprintf(c.errOut, "soak: %v elapsed, %d kernels churned\n", rep.Elapsed.Round(time.Millisecond), rep.Churned)
	if rep.Ok() {
		return 0
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(c.out, "VIOLATION %s\n", v)
		if v.Bundle != "" {
			fmt.Fprintf(c.out, "  repro bundle: %s\n", v.Bundle)
		}
	}
	return 4
}

// runReplay re-checks one repro bundle.
func (c *soakCLI) runReplay(cfg soak.Config) int {
	err := soak.ReplayBundle(c.replay, cfg)
	switch {
	case err == nil:
		fmt.Fprintf(c.out, "soak: %s no longer reproduces\n", c.replay)
		return 0
	case strings.Contains(err.Error(), "still reproduces"):
		fmt.Fprintf(c.out, "soak: %v\n", err)
		return 4
	default:
		fmt.Fprintf(c.errOut, "amdmb soak: %v\n", err)
		return 1
	}
}

// runTorture SIGKILLs child amdmb sweeps mid-checkpoint and verifies
// the survivor's figure CSV is bit-identical to an uninterrupted run
// with zero quarantined checkpoints. The child sweep is fig7 at smoke
// scale: enough points (dozens) for several kills to land mid-sweep.
func (c *soakCLI) runTorture() int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(c.errOut, "amdmb soak: -torture: %v\n", err)
		return 1
	}
	scratch := c.scratch
	if scratch == "" {
		dir, err := os.MkdirTemp("", "amdmb-torture-*")
		if err != nil {
			fmt.Fprintf(c.errOut, "amdmb soak: %v\n", err)
			return 1
		}
		defer os.RemoveAll(dir)
		scratch = dir
	}
	maxDomain := c.maxDomain
	if maxDomain <= 0 {
		maxDomain = 48
	}
	ck := filepath.Join(scratch, "torture.ckpt")
	tortured := filepath.Join(scratch, "tortured")
	reference := filepath.Join(scratch, "reference")

	// -checkpoint-flush 1: the harness watches checkpoint growth to time
	// its kills, and every per-point save is another instant to tear;
	// batched saves would both coarsen the kill windows and let the last
	// batch race the child's exit.
	childArgs := func(ckpt, outDir string) []string {
		return []string{
			"-iters", "1", "-max-domain", fmt.Sprint(maxDomain),
			"-retries", "2", "-checkpoint", ckpt, "-checkpoint-flush", "1",
			"-csv", "-o", outDir, "fig7",
		}
	}
	res, err := soak.Torture(soak.TortureConfig{
		NewChild: func(cycle int) *exec.Cmd {
			cmd := exec.Command(self, childArgs(ck, tortured)...)
			cmd.Stderr = c.errOut
			return cmd
		},
		Checkpoint: ck,
		Cycles:     c.torture,
		Out:        c.errOut,
	})
	if err != nil {
		fmt.Fprintf(c.errOut, "amdmb soak: -torture: %v\n", err)
		return 1
	}

	ref := exec.Command(self, childArgs(filepath.Join(scratch, "reference.ckpt"), reference)...)
	ref.Stderr = c.errOut
	if err := ref.Run(); err != nil {
		fmt.Fprintf(c.errOut, "amdmb soak: -torture reference run: %v\n", err)
		return 1
	}
	a, errA := os.ReadFile(filepath.Join(tortured, "fig7.csv"))
	b, errB := os.ReadFile(filepath.Join(reference, "fig7.csv"))
	if errA != nil || errB != nil {
		fmt.Fprintf(c.errOut, "amdmb soak: -torture: reading CSVs: %v %v\n", errA, errB)
		return 1
	}
	identical := bytes.Equal(a, b)
	fmt.Fprintf(c.out, "torture: kills=%d clean_exits=%d restored=%d quarantined=%d identical=%v\n",
		res.Kills, res.CleanExits, res.Restored, res.Quarantined, identical)
	if res.Quarantined != 0 || !identical {
		return 4
	}
	return 0
}
