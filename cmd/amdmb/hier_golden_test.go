package main

// Golden pinning for the memory-hierarchy dissection figures. These
// only exist as campaign figures (there is no per-figure experiment),
// so every test here drives `amdmb campaign`, which also pins the
// trailing-'*' glob expansion, the cached-vs-uncached identity and the
// sharded-vs-direct identity of the new sweeps.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// hierGoldenFigures is the pinned set, in the order `-figs 'hier-*'`
// expands to (sorted).
var hierGoldenFigures = []string{"hier-lat", "hier-line", "hier-stride", "hier-wset"}

func TestHierGoldenCSVs(t *testing.T) {
	for _, fig := range hierGoldenFigures {
		t.Run(fig, func(t *testing.T) {
			code, out, stderr := runCLI(t, "campaign", "-figs", fig, "-iters", "1", "-csv")
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr)
			}
			path := filepath.Join("testdata", "golden", fig+".csv")
			if *updateGoldens {
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./cmd/amdmb -run TestHierGoldenCSVs -update-goldens` to pin)", err)
			}
			if out != string(want) {
				t.Errorf("%s CSV drifted from golden:\n%s", fig, firstDiff(string(want), out))
			}
		})
	}
}

// concatenatedHierGoldens is the stdout a `-figs 'hier-*' -csv` campaign
// must produce: the pinned CSVs back to back in glob-expansion order.
func concatenatedHierGoldens(t *testing.T) string {
	t.Helper()
	var want strings.Builder
	for _, fig := range hierGoldenFigures {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", fig+".csv"))
		if err != nil {
			t.Fatalf("%v (run `go test ./cmd/amdmb -run TestHierGoldenCSVs -update-goldens` to pin)", err)
		}
		want.Write(data)
	}
	return want.String()
}

// TestHierCampaignGlobCacheIdentity runs the whole dissection bundle as
// one glob campaign, with the artifact cache on and off: both runs must
// emit stdout byte-identical to the concatenated goldens — caching is
// an execution detail, never a result.
func TestHierCampaignGlobCacheIdentity(t *testing.T) {
	want := concatenatedHierGoldens(t)
	for _, extra := range [][]string{nil, {"-no-cache"}} {
		args := append([]string{"campaign", "-figs", "hier-*", "-iters", "1", "-csv"}, extra...)
		code, out, stderr := runCLI(t, args...)
		if code != 0 {
			t.Fatalf("%v: exit %d, stderr: %s", args, code, stderr)
		}
		if out != want {
			t.Errorf("%v stdout diverges from goldens:\n%s", args, firstDiff(want, out))
		}
	}
}

// TestHierCampaignShardsMergeToGoldens splits the dissection bundle
// across two shard processes and merges: the unsharded follow-up must
// restore everything (executed=0) and emit the goldens bit-exactly.
func TestHierCampaignShardsMergeToGoldens(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck.json")
	for shard := 0; shard < 2; shard++ {
		spec := fmt.Sprintf("%d/2", shard)
		code, out, stderr := runCLI(t,
			"campaign", "-figs", "hier-*", "-iters", "1", "-checkpoint", ck, "-shard", spec)
		if code != 0 {
			t.Fatalf("shard %s: exit %d, stderr: %s", spec, code, stderr)
		}
		if out != "" {
			t.Errorf("shard %s emitted figures; shards must only checkpoint:\n%s", spec, out)
		}
	}
	code, out, stderr := runCLI(t,
		"campaign", "-figs", "hier-*", "-iters", "1", "-csv", "-checkpoint", ck)
	if code != 0 {
		t.Fatalf("merge run: exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "executed=0") {
		t.Errorf("merge run re-executed units: %s", stderr)
	}
	if want := concatenatedHierGoldens(t); out != want {
		t.Errorf("sharded+merged campaign stdout diverges from goldens:\n%s", firstDiff(want, out))
	}
}

// TestCampaignGlobUsage pins the glob surface: a glob matching nothing
// is a usage error, and mixing a glob with one of its own members is a
// duplicate.
func TestCampaignGlobUsage(t *testing.T) {
	if code, _, stderr := runCLI(t, "campaign", "-figs", "nope-*"); code != 2 ||
		!strings.Contains(stderr, "matches no figure") {
		t.Errorf("empty glob: exit %d, stderr %s", code, stderr)
	}
	if code, _, stderr := runCLI(t, "campaign", "-figs", "hier-*,hier-lat", "-plan"); code != 1 ||
		!strings.Contains(stderr, "listed twice") {
		t.Errorf("glob+member duplicate: exit %d, stderr %s", code, stderr)
	}
}
