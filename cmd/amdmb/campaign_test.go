package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestCampaignMatchesGoldens is the subsystem's acceptance test: a
// campaign over the four golden-pinned figures, with the artifact caches
// disabled so the scheduler's dedup is the only sharing in play, must
// write to stdout exactly the concatenation of the four golden CSVs —
// the bytes `amdmb fig7`, `amdmb fig8`, ... produce one at a time —
// while its summary reports a nonzero dedup count.
func TestCampaignMatchesGoldens(t *testing.T) {
	code, out, stderr := runCLI(t,
		"campaign", "-figs", strings.Join(goldenFigures, ","), "-iters", "1", "-csv", "-no-cache")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}

	var want strings.Builder
	for _, fig := range goldenFigures {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", fig+".csv"))
		if err != nil {
			t.Fatalf("%v (run `go test ./cmd/amdmb -run TestGoldenFigureCSVs -update-goldens` to pin)", err)
		}
		want.Write(data)
	}
	if out != want.String() {
		t.Errorf("campaign stdout is not the concatenation of the goldens:\n%s", firstDiff(want.String(), out))
	}

	m := regexp.MustCompile(`deduped=(\d+)`).FindStringSubmatch(stderr)
	if m == nil {
		t.Fatalf("no dedup count in summary: %s", stderr)
	}
	if n, _ := strconv.Atoi(m[1]); n == 0 {
		t.Errorf("flagship bundle campaign reported deduped=0: %s", stderr)
	}
	for _, want := range []string{"restored=0", "failed=0"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("summary missing %q: %s", want, stderr)
		}
	}
}

// TestCampaignPlanGolden pins the -plan dry-run rendering (schedule and
// dedup statistics) for the one registry pair that shares whole
// launches. Re-pin with -update-goldens after a deliberate format or
// schedule change.
func TestCampaignPlanGolden(t *testing.T) {
	code, out, stderr := runCLI(t, "campaign", "-figs", "fig16,clausectl", "-plan")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	path := filepath.Join("testdata", "campaign_plan.golden")
	if *updateGoldens {
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/amdmb -run TestCampaignPlanGolden -update-goldens` to pin)", err)
	}
	if out != string(want) {
		t.Errorf("campaign plan drifted from golden:\n%s", firstDiff(string(want), out))
	}
}

// TestCampaignUsage pins the subcommand's usage-error surface.
func TestCampaignUsage(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		want     string
	}{
		{"no figs", []string{"campaign"}, 2, "usage: amdmb campaign"},
		{"unknown figure", []string{"campaign", "-figs", "fig99"}, 2, "unknown figure"},
		{"positional figure", []string{"campaign", "-figs", "fig16", "fig7"}, 2, "unexpected arguments"},
		{"empty list", []string{"campaign", "-figs", ","}, 2, "no figures"},
		{"duplicate figure", []string{"campaign", "-figs", "fig16,fig16", "-plan"}, 1, "listed twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != tc.wantCode {
				t.Fatalf("exit %d, want %d; stderr: %s", code, tc.wantCode, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q: %s", tc.want, stderr)
			}
		})
	}
}
