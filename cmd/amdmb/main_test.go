package main

// End-to-end smoke tests: the CLI was the only untested layer. Every
// test drives run() exactly as main does, capturing both streams.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestTable1(t *testing.T) {
	code, out, stderr := runCLI(t, "table1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"Table I", "RV770", "1600", "DDR5"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Disassembly(t *testing.T) {
	code, out, stderr := runCLI(t, "fig2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"TEX:", "EXP_DONE", "GPRs=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig7ASCII(t *testing.T) {
	code, out, stderr := runCLI(t, "-iters", "1", "fig7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "ALU:Fetch Ratio for 16 Inputs") {
		t.Errorf("fig7 plot missing title:\n%.400s", out)
	}
}

func TestFig7CSV(t *testing.T) {
	code, out, stderr := runCLI(t, "-iters", "1", "-csv", "fig7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 33 { // header comment + column header + 32 ratio rows
		t.Fatalf("fig7 CSV has %d lines, want >= 33:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "ALU:Fetch Ratio,") ||
		!strings.Contains(lines[1], "4870 Pixel Float4") {
		t.Errorf("CSV header: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "0.25,") {
		t.Errorf("first data row: %q", lines[2])
	}
}

func TestRunsTable(t *testing.T) {
	code, out, _ := runCLI(t, "-iters", "1", "-runs", "fig13")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "bottleneck") || !strings.Contains(out, "memory") {
		t.Errorf("-runs detail table missing:\n%.400s", out)
	}
}

func TestUsageAndUnknownExperiment(t *testing.T) {
	if code, _, stderr := runCLI(t); code != 2 || !strings.Contains(stderr, "usage:") {
		t.Errorf("no-args: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCLI(t, "fig99"); code != 2 || !strings.Contains(stderr, "unknown experiment") {
		t.Errorf("unknown experiment: exit %d, stderr %q", code, stderr)
	}
}

func TestBadFaultPlanRejected(t *testing.T) {
	code, _, stderr := runCLI(t, "-faults", "frobnicate", "fig13")
	if code != 2 || !strings.Contains(stderr, "unknown fault kind") {
		t.Errorf("bad plan: exit %d, stderr %q", code, stderr)
	}
}

func TestInjectedHangProducesFailureSummary(t *testing.T) {
	code, out, stderr := runCLI(t,
		"-iters", "1", "-timeout", "1048576",
		"-faults", "hang:prob=1,match=writelat_o3",
		"fig13")
	if code != 3 {
		t.Fatalf("exit %d, want 3 (completed with recorded failures); stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "Failure summary") || !strings.Contains(out, "kernel timeout") {
		t.Errorf("failure summary missing:\n%s", out)
	}
	if !strings.Contains(stderr, "failed and were recorded") {
		t.Errorf("stderr lacks failure note: %q", stderr)
	}
}

func TestCheckpointResumeEndToEnd(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck.json")
	// First run records a timeout failure; completed points checkpoint.
	code, _, stderr := runCLI(t,
		"-iters", "1", "-timeout", "1048576", "-checkpoint", ck,
		"-faults", "hang:prob=1,match=writelat_o3",
		"fig13")
	if code != 3 {
		t.Fatalf("first run exit %d, stderr: %s", code, stderr)
	}
	// Re-run without faults resumes and fills in the failed points.
	code, out, stderr := runCLI(t, "-iters", "1", "-checkpoint", ck, "fig13")
	if code != 0 {
		t.Fatalf("resume exit %d, stderr: %s", code, stderr)
	}
	if strings.Contains(out, "Failure summary") {
		t.Errorf("resume still reports failures:\n%s", out)
	}
	// The resumed figure is identical to a clean run's.
	_, clean, _ := runCLI(t, "-iters", "1", "-csv", "fig13")
	_, resumed, _ := runCLI(t, "-iters", "1", "-csv", "-checkpoint", ck, "fig13")
	if clean != resumed {
		t.Errorf("resumed CSV differs from clean run:\n%s\nvs\n%s", resumed, clean)
	}
}

func TestProfileFlagsWriteProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	code, _, stderr := runCLI(t, "-cpuprofile", cpu, "-memprofile", mem, "-iters", "1", "fig13")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// A CPU profile sink that cannot be created is a usage error.
	code, _, stderr = runCLI(t, "-cpuprofile", filepath.Join(dir, "no", "such", "dir.prof"), "fig13")
	if code != 2 || !strings.Contains(stderr, "cpuprofile") {
		t.Errorf("bad -cpuprofile path: exit %d, stderr %q", code, stderr)
	}
}

func TestWriteFigureFiles(t *testing.T) {
	dir := t.TempDir()
	code, _, stderr := runCLI(t, "-iters", "1", "-o", dir, "fig13")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, f := range []string{"fig13.csv", "fig13.gp"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}

func TestCacheStatsFlag(t *testing.T) {
	code, out, stderr := runCLI(t, "-cache-stats", "-iters", "1", "fig7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"Pipeline artifact caches", "compile", "replay", "simulate"} {
		if !strings.Contains(out, want) {
			t.Errorf("-cache-stats output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "enabled") {
		t.Errorf("-cache-stats should report caching enabled:\n%s", out)
	}
}

func TestNoCacheFlagMatchesCachedOutput(t *testing.T) {
	codeA, cached, stderr := runCLI(t, "-csv", "-iters", "1", "fig7")
	if codeA != 0 {
		t.Fatalf("cached run: exit %d, stderr: %s", codeA, stderr)
	}
	codeB, uncached, stderr := runCLI(t, "-csv", "-iters", "1", "-no-cache", "fig7")
	if codeB != 0 {
		t.Fatalf("-no-cache run: exit %d, stderr: %s", codeB, stderr)
	}
	if cached != uncached {
		t.Error("-no-cache changed figure output; caching must be invisible in results")
	}
	code, out, stderr := runCLI(t, "-cache-stats", "-no-cache", "-iters", "1", "fig7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "disabled") {
		t.Errorf("-cache-stats with -no-cache should report caching disabled:\n%s", out)
	}
}
