package main

// End-to-end smoke tests: the CLI was the only untested layer. Every
// test drives run() exactly as main does, capturing both streams.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestTable1(t *testing.T) {
	code, out, stderr := runCLI(t, "table1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"Table I", "RV770", "1600", "DDR5"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Disassembly(t *testing.T) {
	code, out, stderr := runCLI(t, "fig2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"TEX:", "EXP_DONE", "GPRs=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig7ASCII(t *testing.T) {
	code, out, stderr := runCLI(t, "-iters", "1", "fig7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "ALU:Fetch Ratio for 16 Inputs") {
		t.Errorf("fig7 plot missing title:\n%.400s", out)
	}
}

func TestFig7CSV(t *testing.T) {
	code, out, stderr := runCLI(t, "-iters", "1", "-csv", "fig7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 33 { // header comment + column header + 32 ratio rows
		t.Fatalf("fig7 CSV has %d lines, want >= 33:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "ALU:Fetch Ratio,") ||
		!strings.Contains(lines[1], "4870 Pixel Float4") {
		t.Errorf("CSV header: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "0.25,") {
		t.Errorf("first data row: %q", lines[2])
	}
}

func TestRunsTable(t *testing.T) {
	code, out, _ := runCLI(t, "-iters", "1", "-runs", "fig13")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "bottleneck") || !strings.Contains(out, "memory") {
		t.Errorf("-runs detail table missing:\n%.400s", out)
	}
}

func TestUsageAndUnknownExperiment(t *testing.T) {
	if code, _, stderr := runCLI(t); code != 2 || !strings.Contains(stderr, "usage:") {
		t.Errorf("no-args: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCLI(t, "fig99"); code != 2 || !strings.Contains(stderr, "unknown experiment") {
		t.Errorf("unknown experiment: exit %d, stderr %q", code, stderr)
	}
}

func TestBadFaultPlanRejected(t *testing.T) {
	code, _, stderr := runCLI(t, "-faults", "frobnicate", "fig13")
	if code != 2 || !strings.Contains(stderr, "unknown fault kind") {
		t.Errorf("bad plan: exit %d, stderr %q", code, stderr)
	}
}

func TestInjectedHangProducesFailureSummary(t *testing.T) {
	code, out, stderr := runCLI(t,
		"-iters", "1", "-timeout", "1048576",
		"-faults", "hang:prob=1,match=writelat_o3",
		"fig13")
	if code != 3 {
		t.Fatalf("exit %d, want 3 (completed with recorded failures); stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "Failure summary") || !strings.Contains(out, "kernel timeout") {
		t.Errorf("failure summary missing:\n%s", out)
	}
	if !strings.Contains(stderr, "failed and were recorded") {
		t.Errorf("stderr lacks failure note: %q", stderr)
	}
}

func TestCheckpointResumeEndToEnd(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck.json")
	// First run records a timeout failure; completed points checkpoint.
	code, _, stderr := runCLI(t,
		"-iters", "1", "-timeout", "1048576", "-checkpoint", ck,
		"-faults", "hang:prob=1,match=writelat_o3",
		"fig13")
	if code != 3 {
		t.Fatalf("first run exit %d, stderr: %s", code, stderr)
	}
	// Re-run without faults resumes and fills in the failed points.
	code, out, stderr := runCLI(t, "-iters", "1", "-checkpoint", ck, "fig13")
	if code != 0 {
		t.Fatalf("resume exit %d, stderr: %s", code, stderr)
	}
	if strings.Contains(out, "Failure summary") {
		t.Errorf("resume still reports failures:\n%s", out)
	}
	// The resumed figure is identical to a clean run's.
	_, clean, _ := runCLI(t, "-iters", "1", "-csv", "fig13")
	_, resumed, _ := runCLI(t, "-iters", "1", "-csv", "-checkpoint", ck, "fig13")
	if clean != resumed {
		t.Errorf("resumed CSV differs from clean run:\n%s\nvs\n%s", resumed, clean)
	}
}

func TestProfileFlagsWriteProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	code, _, stderr := runCLI(t, "-cpuprofile", cpu, "-memprofile", mem, "-iters", "1", "fig13")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// A CPU profile sink that cannot be created is a usage error.
	code, _, stderr = runCLI(t, "-cpuprofile", filepath.Join(dir, "no", "such", "dir.prof"), "fig13")
	if code != 2 || !strings.Contains(stderr, "cpuprofile") {
		t.Errorf("bad -cpuprofile path: exit %d, stderr %q", code, stderr)
	}
}

func TestWriteFigureFiles(t *testing.T) {
	dir := t.TempDir()
	code, _, stderr := runCLI(t, "-iters", "1", "-o", dir, "fig13")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, f := range []string{"fig13.csv", "fig13.gp"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}

func TestCacheStatsFlag(t *testing.T) {
	code, out, stderr := runCLI(t, "-cache-stats", "-iters", "1", "fig7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"Pipeline artifact caches", "compile", "replay", "simulate"} {
		if !strings.Contains(out, want) {
			t.Errorf("-cache-stats output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "enabled") {
		t.Errorf("-cache-stats should report caching enabled:\n%s", out)
	}
}

func TestTraceFlagWritesNestedSpans(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	code, _, stderr := runCLI(t, "-iters", "1", "-trace", tracePath, "fig13")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("-trace output is not valid trace_event JSON: %v", err)
	}
	type span struct {
		ts, dur float64
		tid     int
	}
	var launches []span
	byName := map[string][]span{}
	for _, e := range f.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		s := span{ts: e.TS, dur: e.Dur, tid: e.TID}
		byName[e.Name] = append(byName[e.Name], s)
		if e.Name == "launch" {
			launches = append(launches, s)
		}
	}
	if len(launches) == 0 {
		t.Fatal("trace has no launch spans")
	}
	// Every pipeline stage must appear, and every stage span must nest
	// inside some launch span on the same track.
	for _, stage := range []string{"compile", "trace", "replay", "simulate"} {
		spans := byName[stage]
		if len(spans) == 0 {
			t.Errorf("trace has no %q spans", stage)
			continue
		}
		for _, s := range spans {
			nested := false
			for _, l := range launches {
				if s.tid == l.tid && s.ts >= l.ts && s.ts+s.dur <= l.ts+l.dur+1 {
					nested = true
					break
				}
			}
			if !nested {
				t.Errorf("%q span at ts=%f (tid %d) is not nested in any launch span", stage, s.ts, s.tid)
				break
			}
		}
	}
	if len(byName["generate"]) == 0 {
		t.Error("trace has no generate spans")
	}
}

func TestMetricsFlagReportsCacheAndSweepCounters(t *testing.T) {
	code, out, stderr := runCLI(t, "-iters", "1", "-metrics", "fig13")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"pipeline.compile.hits", "pipeline.simulate.misses",
		"core.sweep.points.completed", "cal.launches",
		"pipeline.compile.compute_latency_ns",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsJSONMatchesCacheStats(t *testing.T) {
	code, out, stderr := runCLI(t, "-iters", "1", "-metrics-json", "-cache-stats", "fig13")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	// Output is the cache-stats table followed by the metrics JSON
	// object; the JSON starts at the first '{'.
	idx := strings.Index(out, "{")
	if idx < 0 {
		t.Fatalf("no JSON in output:\n%s", out)
	}
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal([]byte(out[idx:]), &snap); err != nil {
		t.Fatalf("-metrics-json output is not valid JSON: %v", err)
	}
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	// The cache-stats table and the metrics registry read the same
	// counters; spot-check that the table's simulate hits/misses appear
	// verbatim in the JSON. The table row looks like:
	//   simulate  <hits>  <misses> ...
	simHits, ok := counters["pipeline.simulate.hits"]
	if !ok {
		t.Fatal("metrics JSON lacks pipeline.simulate.hits")
	}
	simMisses := counters["pipeline.simulate.misses"]
	found := false
	for _, line := range strings.Split(out[:idx], "\n") {
		fields := strings.Fields(line)
		if len(fields) > 2 && fields[0] == "simulate" {
			found = true
			if fields[1] != strconv.FormatInt(simHits, 10) || fields[2] != strconv.FormatInt(simMisses, 10) {
				t.Errorf("cache-stats simulate row %v != metrics hits=%d misses=%d",
					fields[1:3], simHits, simMisses)
			}
		}
	}
	if !found {
		t.Errorf("cache-stats table has no simulate row:\n%s", out[:idx])
	}
}

func TestProgressFlagRendersOnStderr(t *testing.T) {
	code, _, stderr := runCLI(t, "-iters", "1", "-progress", "fig13")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"points", "(100%)", "cache hit"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("-progress stderr missing %q: %q", want, stderr)
		}
	}
}

func TestMaxDomainClampsSweeps(t *testing.T) {
	code, out, stderr := runCLI(t, "-iters", "1", "-csv", "-max-domain", "16", "fig7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	// Clamped run keeps the sweep's shape (same rows) with smaller domains.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 33 {
		t.Fatalf("clamped fig7 CSV has %d lines, want >= 33:\n%s", len(lines), out)
	}
	// A clamped domain must not resume a full-domain checkpoint.
	ck := filepath.Join(t.TempDir(), "ck.json")
	if code, _, stderr := runCLI(t, "-iters", "1", "-checkpoint", ck, "fig13"); code != 0 {
		t.Fatalf("full-domain run exit %d, stderr: %s", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-iters", "1", "-checkpoint", ck, "-max-domain", "16", "-metrics", "fig13"); code != 0 {
		t.Fatalf("clamped run exit %d, stderr: %s", code, stderr)
	}
}

func TestNoCacheFlagMatchesCachedOutput(t *testing.T) {
	codeA, cached, stderr := runCLI(t, "-csv", "-iters", "1", "fig7")
	if codeA != 0 {
		t.Fatalf("cached run: exit %d, stderr: %s", codeA, stderr)
	}
	codeB, uncached, stderr := runCLI(t, "-csv", "-iters", "1", "-no-cache", "fig7")
	if codeB != 0 {
		t.Fatalf("-no-cache run: exit %d, stderr: %s", codeB, stderr)
	}
	if cached != uncached {
		t.Error("-no-cache changed figure output; caching must be invisible in results")
	}
	code, out, stderr := runCLI(t, "-cache-stats", "-no-cache", "-iters", "1", "fig7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "disabled") {
		t.Errorf("-cache-stats with -no-cache should report caching disabled:\n%s", out)
	}
}
