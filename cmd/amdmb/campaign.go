package main

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"amdgpubench/internal/campaign"
	"amdgpubench/internal/core"
)

// The campaign subcommand: plan several figures as one deduplicated DAG
// of launch units (internal/campaign) and execute them as a single
// resilient sweep — shared work runs once, its result fans out to every
// subscribing figure, and one checkpoint covers the whole bundle.
//
//	amdmb campaign -figs fig7,fig8,fig11,fig16 -csv
//	amdmb campaign -figs fig16,clausectl -plan     # schedule + dedup stats, run nothing
//
// A campaign partitions across processes with -shard i/n: each shard
// runs the units whose scheduled index is congruent to i mod n, records
// them in its own checkpoint file (<checkpoint>.shard<i>of<n>, derived
// from the required -checkpoint flag) under the FULL campaign's
// signature, and emits no figures. The follow-up unsharded run with the
// same -checkpoint merges every shard file it finds and restores the
// union, emitting figures byte-identical to a run that never sharded:
//
//	amdmb campaign -figs fig7,fig8 -checkpoint ck.json -shard 0/2 &
//	amdmb campaign -figs fig7,fig8 -checkpoint ck.json -shard 1/2 &
//	wait; amdmb campaign -figs fig7,fig8 -checkpoint ck.json -csv
//
// With -remote the campaign runs on an amdmbd daemon instead of
// in-process: the request (figures, -max-domain, -iters, optionally
// -archs) ships over HTTP, the daemon executes it on its shared suite —
// deduplicating against every other client's concurrent campaigns and
// its persistent cache — and the client streams back CSVs that are
// byte-identical to a local -csv run:
//
//	amdmb campaign -figs fig7,fig8 -csv -remote http://127.0.0.1:7821
//
// Figures print to stdout in -figs order with exactly the rendering the
// per-figure experiments use; the campaign summary line goes to stderr,
// so piped stdout of a -csv campaign is byte-for-byte the concatenation
// of the individual figures' CSV output. Exit status matches the main
// command: 0 on success, 1 on a fatal error, 2 on usage errors, 3 when
// units completed but recorded per-point failures.

// runCampaignCmd is the `amdmb campaign` entry point; argv excludes the
// "campaign" word itself.
func runCampaignCmd(argv []string, stdout, stderr io.Writer) int {
	c := &cli{out: stdout, errOut: stderr}
	fs := flag.NewFlagSet("amdmb campaign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		figs      string
		planOnly  bool
		workers   int
		shardSpec string
		remote    string
		archsSpec string
	)
	fs.StringVar(&figs, "figs", "", "comma-separated figures to schedule together (required)")
	fs.BoolVar(&planOnly, "plan", false, "print the deduped schedule and dedup statistics, run nothing")
	fs.IntVar(&workers, "workers", 0, "sweep parallelism (0 = GOMAXPROCS)")
	fs.StringVar(&shardSpec, "shard", "", "run shard i of n (format i/n, requires -checkpoint); shards merge into the unsharded run")
	fs.StringVar(&remote, "remote", "", "run the campaign on an amdmbd daemon at this address instead of in-process (requires -csv)")
	fs.StringVar(&archsSpec, "archs", "", "comma-separated architectures to restrict every figure to, e.g. 4870,RV870 (remote only)")
	c.commonFlags(fs)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	shard, shards := 0, 1
	if shardSpec != "" {
		if n, err := fmt.Sscanf(shardSpec, "%d/%d", &shard, &shards); n != 2 || err != nil || shards < 1 || shard < 0 || shard >= shards {
			fmt.Fprintf(stderr, "amdmb campaign: bad -shard %q, want i/n with 0 <= i < n\n", shardSpec)
			return 2
		}
	}
	if shards > 1 && c.checkpoint == "" {
		fmt.Fprintln(stderr, "amdmb campaign: -shard requires -checkpoint (shards combine through checkpoint files)")
		return 2
	}
	if len(fs.Args()) != 0 {
		fmt.Fprintf(stderr, "amdmb campaign: unexpected arguments %q (figures go in -figs)\n", fs.Args())
		return 2
	}
	if figs == "" {
		fmt.Fprintln(stderr, "usage: amdmb campaign -figs a,b,... [flags]")
		fmt.Fprintf(stderr, "figures: %s\n", strings.Join(campaign.FigureNames(), " "))
		return 2
	}
	var names []string
	for _, n := range strings.Split(figs, ",") {
		n = strings.ToLower(strings.TrimSpace(n))
		if n == "" {
			continue
		}
		// Trailing-'*' globs expand below; plain names must be known.
		if !strings.HasSuffix(n, "*") && !campaign.Known(n) {
			fmt.Fprintf(stderr, "amdmb campaign: unknown figure %q\n", n)
			fmt.Fprintf(stderr, "figures: %s\n", strings.Join(campaign.FigureNames(), " "))
			return 2
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		fmt.Fprintln(stderr, "amdmb campaign: -figs lists no figures")
		return 2
	}
	names, err := campaign.Expand(names)
	if err != nil {
		fmt.Fprintf(stderr, "amdmb campaign: %v\n", err)
		return 2
	}

	if remote != "" {
		// Flags that configure the LOCAL suite or its artifacts have no
		// remote meaning; failing beats silently ignoring them. -iters
		// and -max-domain travel in the request instead.
		localOnly := map[string]bool{
			"plan": true, "shard": true, "workers": true, "checkpoint": true,
			"checkpoint-flush": true,
			"faults":           true, "no-cache": true, "cache-dir": true, "trace": true,
			"cache-stats": true, "metrics": true, "metrics-json": true,
			"progress": true, "o": true, "timeout": true, "retries": true,
		}
		var bad []string
		fs.Visit(func(f *flag.Flag) {
			if localOnly[f.Name] {
				bad = append(bad, "-"+f.Name)
			}
		})
		if len(bad) > 0 {
			fmt.Fprintf(stderr, "amdmb campaign: %s configure the local suite and cannot combine with -remote (the daemon owns those settings)\n",
				strings.Join(bad, " "))
			return 2
		}
		if !c.csv {
			fmt.Fprintln(stderr, "amdmb campaign: -remote requires -csv (the daemon serves figures as CSV)")
			return 2
		}
		var archs []string
		for _, a := range strings.Split(archsSpec, ",") {
			if a = strings.TrimSpace(a); a != "" {
				archs = append(archs, a)
			}
		}
		return runRemoteCampaign(remote, names, archs, c)
	}
	if archsSpec != "" {
		fmt.Fprintln(stderr, "amdmb campaign: -archs requires -remote (local campaigns sweep every architecture a figure defines)")
		return 2
	}

	// A shard writes to its own checkpoint file; the unsharded run first
	// merges any shard files present so their work restores instead of
	// recomputing.
	if shards > 1 {
		c.checkpoint = fmt.Sprintf("%s.shard%dof%d", c.checkpoint, shard, shards)
	} else if c.checkpoint != "" {
		if files, _ := filepath.Glob(c.checkpoint + ".shard*of*"); len(files) > 0 {
			sort.Strings(files)
			n, err := core.MergeCheckpoints(c.checkpoint, files...)
			if err != nil {
				fmt.Fprintf(stderr, "amdmb campaign: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "campaign: merged %d runs from %d shard checkpoints into %s\n",
				n, len(files), c.checkpoint)
		}
	}

	s, err := c.newSuite()
	if err != nil {
		fmt.Fprintf(stderr, "amdmb campaign: %v\n", err)
		return 2
	}
	s.Workers = workers

	specs, err := campaign.Specs(s, names)
	if err != nil {
		fmt.Fprintf(stderr, "amdmb campaign: %v\n", err)
		return 1
	}
	// The plan clamps domains itself with the same cap as the suite, so
	// the dry-run schedule is exactly what the suite would execute.
	plan, err := campaign.NewPlan(specs, campaign.Options{MaxDomain: c.maxDomain})
	if err != nil {
		fmt.Fprintf(stderr, "amdmb campaign: %v\n", err)
		return 1
	}
	if planOnly {
		campaign.RenderPlan(stdout, plan)
		return 0
	}

	if shards > 1 {
		res, err := plan.RunShard(s, shard, shards)
		if err != nil {
			fmt.Fprintf(stderr, "amdmb campaign: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "campaign shard %d/%d: units=%d scheduled=%d executed=%d restored=%d failed=%d\n",
			shard, shards, len(plan.Units), res.Scheduled, res.Executed,
			res.Scheduled-res.Executed, res.Failed())
		return c.epilogue(s)
	}

	res, err := plan.Run(s)
	if err != nil {
		fmt.Fprintf(stderr, "amdmb campaign: %v\n", err)
		return 1
	}
	for _, fig := range res.Figures {
		if err := c.emitFigure(fig); err != nil {
			fmt.Fprintf(stderr, "amdmb campaign: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "campaign: figures=%d points=%d units=%d deduped=%d executed=%d restored=%d failed=%d\n",
		res.Stats.Figures, res.Stats.Points, len(plan.Units), res.Stats.DedupedTotal(),
		res.Executed, len(plan.Units)-res.Executed, res.Failed())
	return c.epilogue(s)
}
