package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"amdgpubench/internal/campaign"
)

// The campaign subcommand: plan several figures as one deduplicated DAG
// of launch units (internal/campaign) and execute them as a single
// resilient sweep — shared work runs once, its result fans out to every
// subscribing figure, and one checkpoint covers the whole bundle.
//
//	amdmb campaign -figs fig7,fig8,fig11,fig16 -csv
//	amdmb campaign -figs fig16,clausectl -plan     # schedule + dedup stats, run nothing
//
// Figures print to stdout in -figs order with exactly the rendering the
// per-figure experiments use; the campaign summary line goes to stderr,
// so piped stdout of a -csv campaign is byte-for-byte the concatenation
// of the individual figures' CSV output. Exit status matches the main
// command: 0 on success, 1 on a fatal error, 2 on usage errors, 3 when
// units completed but recorded per-point failures.

// runCampaignCmd is the `amdmb campaign` entry point; argv excludes the
// "campaign" word itself.
func runCampaignCmd(argv []string, stdout, stderr io.Writer) int {
	c := &cli{out: stdout, errOut: stderr}
	fs := flag.NewFlagSet("amdmb campaign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		figs     string
		planOnly bool
		workers  int
	)
	fs.StringVar(&figs, "figs", "", "comma-separated figures to schedule together (required)")
	fs.BoolVar(&planOnly, "plan", false, "print the deduped schedule and dedup statistics, run nothing")
	fs.IntVar(&workers, "workers", 0, "sweep parallelism (0 = GOMAXPROCS)")
	c.commonFlags(fs)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if len(fs.Args()) != 0 {
		fmt.Fprintf(stderr, "amdmb campaign: unexpected arguments %q (figures go in -figs)\n", fs.Args())
		return 2
	}
	if figs == "" {
		fmt.Fprintln(stderr, "usage: amdmb campaign -figs a,b,... [flags]")
		fmt.Fprintf(stderr, "figures: %s\n", strings.Join(campaign.FigureNames(), " "))
		return 2
	}
	var names []string
	for _, n := range strings.Split(figs, ",") {
		n = strings.ToLower(strings.TrimSpace(n))
		if n == "" {
			continue
		}
		if !campaign.Known(n) {
			fmt.Fprintf(stderr, "amdmb campaign: unknown figure %q\n", n)
			fmt.Fprintf(stderr, "figures: %s\n", strings.Join(campaign.FigureNames(), " "))
			return 2
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		fmt.Fprintln(stderr, "amdmb campaign: -figs lists no figures")
		return 2
	}

	s, err := c.newSuite()
	if err != nil {
		fmt.Fprintf(stderr, "amdmb campaign: %v\n", err)
		return 2
	}
	s.Workers = workers

	specs, err := campaign.Specs(s, names)
	if err != nil {
		fmt.Fprintf(stderr, "amdmb campaign: %v\n", err)
		return 1
	}
	// The plan clamps domains itself with the same cap as the suite, so
	// the dry-run schedule is exactly what the suite would execute.
	plan, err := campaign.NewPlan(specs, campaign.Options{MaxDomain: c.maxDomain})
	if err != nil {
		fmt.Fprintf(stderr, "amdmb campaign: %v\n", err)
		return 1
	}
	if planOnly {
		campaign.RenderPlan(stdout, plan)
		return 0
	}

	res, err := plan.Run(s)
	if err != nil {
		fmt.Fprintf(stderr, "amdmb campaign: %v\n", err)
		return 1
	}
	for _, fig := range res.Figures {
		if err := c.emitFigure(fig); err != nil {
			fmt.Fprintf(stderr, "amdmb campaign: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "campaign: figures=%d points=%d units=%d deduped=%d executed=%d restored=%d failed=%d\n",
		res.Stats.Figures, res.Stats.Points, len(plan.Units), res.Stats.DedupedTotal(),
		res.Executed, len(plan.Units)-res.Executed, res.Failed())
	return c.epilogue(s)
}
