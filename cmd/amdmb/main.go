// Command amdmb runs the AMD GPU micro-benchmark suite on the simulated
// RV670/RV770/RV870 devices and regenerates every table and figure of the
// paper "A Micro-benchmark Suite for AMD GPUs" (Taylor & Li, ICPPW 2010).
//
// Usage:
//
//	amdmb [flags] <experiment>...
//
// Experiments: table1 fig2 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
// fig15a fig15b fig16 fig17 clausectl trans blocks consts summary ablate
// all
//
// Flags:
//
//	-csv        emit CSV instead of ASCII plots
//	-iters N    kernel iterations per timing (default 5000, the paper's)
//	-runs       also print per-point run details (GPRs, waves, bottleneck)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"amdgpubench/internal/core"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/isa"
	"amdgpubench/internal/kerngen"
	"amdgpubench/internal/report"
)

var (
	csvOut   = flag.Bool("csv", false, "emit CSV instead of ASCII plots")
	iters    = flag.Int("iters", 0, "kernel iterations per timing (default 5000)")
	showRuns = flag.Bool("runs", false, "print per-point run details")
	outDir   = flag.String("o", "", "also write <dir>/<figure>.csv and a matching gnuplot script")
)

type experiment struct {
	name string
	desc string
	run  func(s *core.Suite) error
}

func figExperiment(name, desc string, f func(s *core.Suite) (*report.Figure, []core.Run, error)) experiment {
	return experiment{name: name, desc: desc, run: func(s *core.Suite) error {
		fig, runs, err := f(s)
		if err != nil {
			return err
		}
		emitFigure(fig)
		if *showRuns {
			emitRuns(runs)
		}
		return nil
	}}
}

func experiments() []experiment {
	return []experiment{
		{"table1", "GPU hardware features", func(s *core.Suite) error {
			fmt.Println(s.HardwareTable().Format())
			return nil
		}},
		{"fig2", "example ISA disassembly", func(s *core.Suite) error {
			return printFig2()
		}},
		figExperiment("fig7", "ALU:Fetch ratio, texture reads", (*core.Suite).Fig7),
		figExperiment("fig8", "ALU:Fetch ratio, 4x16 block", (*core.Suite).Fig8),
		figExperiment("fig9", "ALU:Fetch ratio, global read + stream write", (*core.Suite).Fig9),
		figExperiment("fig10", "ALU:Fetch ratio, global read + global write", (*core.Suite).Fig10),
		figExperiment("fig11", "texture fetch latency", (*core.Suite).Fig11),
		figExperiment("fig12", "global read latency", (*core.Suite).Fig12),
		figExperiment("fig13", "streaming store latency", (*core.Suite).Fig13),
		figExperiment("fig14", "global write latency", (*core.Suite).Fig14),
		figExperiment("fig15a", "domain size, pixel shader", (*core.Suite).Fig15Pixel),
		figExperiment("fig15b", "domain size, compute shader", (*core.Suite).Fig15Compute),
		figExperiment("fig16", "register pressure", (*core.Suite).Fig16),
		figExperiment("fig17", "register pressure, 4x16 block", (*core.Suite).Fig17),
		figExperiment("clausectl", "clause usage control (flat)", (*core.Suite).ClauseControl),
		figExperiment("trans", "extension: transcendental vs basic ALU chains", func(s *core.Suite) (*report.Figure, []core.Run, error) {
			return s.TransThroughput(core.TransThroughputConfig{Arch: device.RV770})
		}),
		figExperiment("blocks", "extension: compute block-size sweep", func(s *core.Suite) (*report.Figure, []core.Run, error) {
			return s.BlockSizeSweep(core.BlockSizeConfig{})
		}),
		figExperiment("consts", "extension: constant count sweep (flat)", func(s *core.Suite) (*report.Figure, []core.Run, error) {
			return s.ConstantsSweep(core.ConstantsConfig{Arch: device.RV770})
		}),
		{"summary", "one-screen paper-vs-measured reproduction digest", runSummary},
		{"ablate", "extension: hardware-mechanism ablation study", func(s *core.Suite) error {
			res, err := s.AblationStudy()
			if err != nil {
				return err
			}
			fmt.Println(core.AblationTable(res).Format())
			return nil
		}},
	}
}

func emitFigure(fig *report.Figure) {
	if *csvOut {
		fmt.Print(fig.CSV())
	} else {
		fmt.Print(fig.ASCIIPlot(72, 20))
	}
	fmt.Println()
	if *outDir != "" {
		if err := writeFigureFiles(fig, *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "amdmb: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeFigureFiles saves the figure's CSV and a gnuplot script that plots
// it, mirroring how the paper's figures were produced.
func writeFigureFiles(fig *report.Figure, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	csvName := fig.ID + ".csv"
	if err := os.WriteFile(filepath.Join(dir, csvName), []byte(fig.CSV()), 0o644); err != nil {
		return err
	}
	gp := fig.GnuplotScript(csvName)
	return os.WriteFile(filepath.Join(dir, fig.ID+".gp"), []byte(gp), 0o644)
}

func emitRuns(runs []core.Run) {
	t := &report.Table{
		Header: []string{"series", "x", "seconds", "GPRs", "waves", "hit", "bottleneck"},
	}
	for _, r := range runs {
		t.AddRow(r.Card.Label(), fmt.Sprintf("%g", r.X), fmt.Sprintf("%.3f", r.Seconds),
			fmt.Sprintf("%d", r.GPRs), fmt.Sprintf("%d", r.Waves),
			fmt.Sprintf("%.3f", r.HitRate), r.Bottleneck)
	}
	fmt.Println(t.Format())
}

// printFig2 reproduces the paper's example disassembly: a three-input
// pixel-shader float4 kernel.
func printFig2() error {
	k, err := kerngen.Generic(kerngen.Params{
		Name: "fig2", Mode: il.Pixel, Type: il.Float4,
		Inputs: 3, Outputs: 1, ALUOps: 3,
	})
	if err != nil {
		return err
	}
	prog, err := ilc.Compile(k, device.Lookup(device.RV770))
	if err != nil {
		return err
	}
	fmt.Print(isa.Disassemble(prog))
	st := prog.Stats()
	fmt.Printf("; GPRs=%d ALU bundles=%d fetches=%d SKA ALU:Fetch=%.2f\n",
		st.GPRs, st.ALUBundles, st.FetchOps, st.ALUFetchSKA)
	return nil
}

func main() {
	flag.Parse()
	args := flag.Args()
	exps := experiments()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: amdmb [flags] <experiment>...")
		fmt.Fprintln(os.Stderr, "experiments:")
		for _, e := range exps {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", e.name, e.desc)
		}
		fmt.Fprintln(os.Stderr, "  all        run everything")
		os.Exit(2)
	}

	byName := map[string]experiment{}
	var order []string
	for _, e := range exps {
		byName[e.name] = e
		order = append(order, e.name)
	}

	var selected []string
	for _, a := range args {
		if a == "all" {
			selected = order
			break
		}
		if _, ok := byName[strings.ToLower(a)]; !ok {
			fmt.Fprintf(os.Stderr, "amdmb: unknown experiment %q\n", a)
			os.Exit(2)
		}
		selected = append(selected, strings.ToLower(a))
	}
	sort.Strings(selected)

	s := core.NewSuite()
	s.Iterations = *iters
	for _, name := range selected {
		if err := byName[name].run(s); err != nil {
			fmt.Fprintf(os.Stderr, "amdmb: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
