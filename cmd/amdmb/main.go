// Command amdmb runs the AMD GPU micro-benchmark suite on the simulated
// RV670/RV770/RV870 devices and regenerates every table and figure of the
// paper "A Micro-benchmark Suite for AMD GPUs" (Taylor & Li, ICPPW 2010).
//
// Usage:
//
//	amdmb [flags] <experiment>...
//	amdmb campaign -figs fig7,fig8,fig11,fig16 [flags]
//	amdmb infer [flags]
//	amdmb soak [flags]
//
// Experiments: table1 fig2 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
// fig15a fig15b fig16 fig17 clausectl trans blocks consts summary ablate
// all
//
// The campaign subcommand plans several figures as one deduplicated DAG
// of launch units and executes them as a single resilient sweep, so
// work shared between figures runs once and a checkpoint spans the
// whole bundle; `-plan` prints the schedule and dedup statistics
// without running. See campaign.go and internal/campaign; `amdmb
// campaign -h` lists its flags. Beyond the paper's figures, the
// campaign registry includes the memory-hierarchy dissection figures
// hier-lat, hier-wset, hier-line and hier-stride (internal/hier); a
// trailing-'*' glob like `-figs 'hier-*'` plans a whole family.
//
// The infer subcommand runs the memory-hierarchy dissection and
// recovers L1/L2 capacity, line size, associativity and the miss-hit
// latency delta from the measured curves alone, diffing the recovered
// model against the device table and exiting nonzero on any mismatch —
// the suite measuring, then proving, its own cache model. See infer.go
// and internal/hier; `amdmb infer -h` lists its flags.
//
// The soak subcommand runs seeded adversarial stress campaigns —
// generated kernels under fault injection, kill/checkpoint/resume
// cycles and cache churn, with continuous invariant oracles and
// crash-torture of child amdmb processes; see soak.go and
// internal/soak. `amdmb soak -h` lists its flags.
//
// Flags:
//
//	-csv               emit CSV instead of ASCII plots
//	-iters N           kernel iterations per timing (default 5000, the paper's)
//	-runs              also print per-point run details (GPRs, waves, bottleneck)
//	-o dir             also write <dir>/<figure>.csv and a matching gnuplot script
//	-timeout N         per-launch watchdog budget in simulated cycles (0 = default)
//	-retries N         retry attempts for transient launch failures (default 2)
//	-checkpoint file   record completed sweep points; re-running resumes from it
//	-faults plan       arm deterministic fault injection, e.g.
//	                   'seed=42;hang:prob=0.01;transient:prob=0.05'
//	-cache-stats       print the pipeline's per-stage artifact-cache counters
//	-no-cache          disable content-addressed artifact caching (recompute all)
//	-cache-dir dir     persistent on-disk simulate-result cache: results load
//	                   from dir before computing and write through, so repeat
//	                   runs (and daemon restarts) replay instead of recompute
//	-trace file        record per-launch spans (with the pipeline stages nested
//	                   inside) as Chrome trace_event JSON; open in Perfetto or
//	                   chrome://tracing
//	-metrics           print the suite's metrics registry (cache, fault, retry
//	                   and sweep counters plus latency histograms) as a table
//	-metrics-json      like -metrics but as JSON (implies -metrics)
//	-progress          show a live per-sweep progress line on stderr (points
//	                   done/total, failures, cache hit rate, ETA)
//	-max-domain N      clamp every sweep domain to at most NxN (CI smoke runs)
//	-cpuprofile file   write a CPU profile of the run (go tool pprof format)
//	-memprofile file   write a heap profile on exit (go tool pprof format)
//
// Exit status: 0 on success, 1 on a fatal error, 2 on usage errors, 3
// when the sweeps completed but recorded per-point failures (printed in
// the failure-summary table).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"amdgpubench/internal/core"
	"amdgpubench/internal/device"
	"amdgpubench/internal/fault"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/isa"
	"amdgpubench/internal/kerngen"
	"amdgpubench/internal/obs"
	"amdgpubench/internal/report"
)

// cli carries the parsed flags and output streams so the whole command
// is runnable (and testable) without touching process globals.
type cli struct {
	csv         bool
	showRuns    bool
	iters       int
	outDir      string
	timeout     uint64
	retries     int
	checkpoint  string
	ckptFlush   int
	faults      string
	cacheStats  bool
	noCache     bool
	cacheDir    string
	tracePath   string
	metrics     bool
	metricsJSON bool
	progress    bool
	maxDomain   int
	cpuprofile  string
	memprofile  string

	out    io.Writer
	errOut io.Writer
}

type experiment struct {
	name string
	desc string
	run  func(s *core.Suite) error
}

func (c *cli) figExperiment(name, desc string, f func(s *core.Suite) (*report.Figure, []core.Run, error)) experiment {
	return experiment{name: name, desc: desc, run: func(s *core.Suite) error {
		fig, runs, err := f(s)
		if err != nil {
			return err
		}
		if err := c.emitFigure(fig); err != nil {
			return err
		}
		if c.showRuns {
			c.emitRuns(runs)
		}
		return nil
	}}
}

func (c *cli) experiments() []experiment {
	return []experiment{
		{"table1", "GPU hardware features", func(s *core.Suite) error {
			fmt.Fprintln(c.out, s.HardwareTable().Format())
			return nil
		}},
		{"fig2", "example ISA disassembly", func(s *core.Suite) error {
			return c.printFig2()
		}},
		c.figExperiment("fig7", "ALU:Fetch ratio, texture reads", (*core.Suite).Fig7),
		c.figExperiment("fig8", "ALU:Fetch ratio, 4x16 block", (*core.Suite).Fig8),
		c.figExperiment("fig9", "ALU:Fetch ratio, global read + stream write", (*core.Suite).Fig9),
		c.figExperiment("fig10", "ALU:Fetch ratio, global read + global write", (*core.Suite).Fig10),
		c.figExperiment("fig11", "texture fetch latency", (*core.Suite).Fig11),
		c.figExperiment("fig12", "global read latency", (*core.Suite).Fig12),
		c.figExperiment("fig13", "streaming store latency", (*core.Suite).Fig13),
		c.figExperiment("fig14", "global write latency", (*core.Suite).Fig14),
		c.figExperiment("fig15a", "domain size, pixel shader", (*core.Suite).Fig15Pixel),
		c.figExperiment("fig15b", "domain size, compute shader", (*core.Suite).Fig15Compute),
		c.figExperiment("fig16", "register pressure", (*core.Suite).Fig16),
		c.figExperiment("fig17", "register pressure, 4x16 block", (*core.Suite).Fig17),
		c.figExperiment("clausectl", "clause usage control (flat)", (*core.Suite).ClauseControl),
		c.figExperiment("trans", "extension: transcendental vs basic ALU chains", func(s *core.Suite) (*report.Figure, []core.Run, error) {
			return s.TransThroughput(core.TransThroughputConfig{Arch: device.RV770})
		}),
		c.figExperiment("blocks", "extension: compute block-size sweep", func(s *core.Suite) (*report.Figure, []core.Run, error) {
			return s.BlockSizeSweep(core.BlockSizeConfig{})
		}),
		c.figExperiment("consts", "extension: constant count sweep (flat)", func(s *core.Suite) (*report.Figure, []core.Run, error) {
			return s.ConstantsSweep(core.ConstantsConfig{Arch: device.RV770})
		}),
		{"summary", "one-screen paper-vs-measured reproduction digest", c.runSummary},
		{"ablate", "extension: hardware-mechanism ablation study", func(s *core.Suite) error {
			res, err := s.AblationStudy()
			if err != nil {
				return err
			}
			fmt.Fprintln(c.out, core.AblationTable(res).Format())
			return nil
		}},
	}
}

func (c *cli) emitFigure(fig *report.Figure) error {
	if c.csv {
		fmt.Fprint(c.out, fig.CSV())
	} else {
		fmt.Fprint(c.out, fig.ASCIIPlot(72, 20))
	}
	fmt.Fprintln(c.out)
	if c.outDir != "" {
		return writeFigureFiles(fig, c.outDir)
	}
	return nil
}

// writeFigureFiles saves the figure's CSV and a gnuplot script that plots
// it, mirroring how the paper's figures were produced.
func writeFigureFiles(fig *report.Figure, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	csvName := fig.ID + ".csv"
	if err := os.WriteFile(filepath.Join(dir, csvName), []byte(fig.CSV()), 0o644); err != nil {
		return err
	}
	gp := fig.GnuplotScript(csvName)
	return os.WriteFile(filepath.Join(dir, fig.ID+".gp"), []byte(gp), 0o644)
}

func (c *cli) emitRuns(runs []core.Run) {
	t := &report.Table{
		Header: []string{"series", "x", "seconds", "GPRs", "waves", "hit", "bottleneck"},
	}
	for _, r := range runs {
		if r.Failed() {
			t.AddRow(r.Card.Label(), fmt.Sprintf("%g", r.X), "FAILED", "-", "-", "-", r.Err)
			continue
		}
		t.AddRow(r.Card.Label(), fmt.Sprintf("%g", r.X), fmt.Sprintf("%.3f", r.Seconds),
			fmt.Sprintf("%d", r.GPRs), fmt.Sprintf("%d", r.Waves),
			fmt.Sprintf("%.3f", r.HitRate), r.Bottleneck)
	}
	fmt.Fprintln(c.out, t.Format())
}

// failureTable renders the per-point failure records a resilient sweep
// completed around.
func failureTable(failures []core.Run) *report.Table {
	t := &report.Table{
		Title:  "Failure summary: points recorded as failed (sweeps completed)",
		Header: []string{"series", "x", "attempts", "error"},
	}
	for _, r := range failures {
		t.AddRow(r.Card.Label(), fmt.Sprintf("%g", r.X), fmt.Sprintf("%d", r.Attempts), r.Err)
	}
	return t
}

// printFig2 reproduces the paper's example disassembly: a three-input
// pixel-shader float4 kernel.
func (c *cli) printFig2() error {
	k, err := kerngen.Generic(kerngen.Params{
		Name: "fig2", Mode: il.Pixel, Type: il.Float4,
		Inputs: 3, Outputs: 1, ALUOps: 3,
	})
	if err != nil {
		return err
	}
	prog, err := ilc.Compile(k, device.Lookup(device.RV770))
	if err != nil {
		return err
	}
	fmt.Fprint(c.out, isa.Disassemble(prog))
	st := prog.Stats()
	fmt.Fprintf(c.out, "; GPRs=%d ALU bundles=%d fetches=%d SKA ALU:Fetch=%.2f\n",
		st.GPRs, st.ALUBundles, st.FetchOps, st.ALUFetchSKA)
	return nil
}

// commonFlags registers the flags shared by the main command and the
// campaign subcommand — the whole suite configuration surface — so the
// two cannot drift apart.
func (c *cli) commonFlags(fs *flag.FlagSet) {
	fs.BoolVar(&c.csv, "csv", false, "emit CSV instead of ASCII plots")
	fs.IntVar(&c.iters, "iters", 0, "kernel iterations per timing (default 5000)")
	fs.StringVar(&c.outDir, "o", "", "also write <dir>/<figure>.csv and a matching gnuplot script")
	fs.Uint64Var(&c.timeout, "timeout", 0, "per-launch watchdog budget in simulated cycles (0 = simulator default)")
	fs.IntVar(&c.retries, "retries", 2, "retry attempts for transient launch failures")
	fs.StringVar(&c.checkpoint, "checkpoint", "", "JSON file recording completed sweep points; re-running resumes from it")
	fs.IntVar(&c.ckptFlush, "checkpoint-flush", 0, "save the checkpoint every N completed points (0 = default batching; 1 = every point)")
	fs.StringVar(&c.faults, "faults", "", "deterministic fault-injection plan, e.g. 'seed=42;hang:prob=0.01;transient:prob=0.05'")
	fs.BoolVar(&c.cacheStats, "cache-stats", false, "print the pipeline's per-stage artifact-cache counters after the experiments")
	fs.BoolVar(&c.noCache, "no-cache", false, "disable content-addressed artifact caching (every stage recomputes)")
	fs.StringVar(&c.cacheDir, "cache-dir", "", "persistent on-disk simulate-result cache directory (survives restarts; -no-cache disables it)")
	fs.StringVar(&c.tracePath, "trace", "", "write per-launch spans as Chrome trace_event JSON to this file")
	fs.BoolVar(&c.metrics, "metrics", false, "print the suite's metrics registry after the experiments")
	fs.BoolVar(&c.metricsJSON, "metrics-json", false, "print the metrics registry as JSON (implies -metrics)")
	fs.BoolVar(&c.progress, "progress", false, "show a live per-sweep progress line on stderr")
	fs.IntVar(&c.maxDomain, "max-domain", 0, "clamp every sweep domain to at most NxN (0 = no clamp)")
}

// newSuite builds the suite the parsed flags describe. A bad fault plan
// is the only way it fails, and that is a usage error.
func (c *cli) newSuite() (*core.Suite, error) {
	s := core.NewSuite()
	s.Iterations = c.iters
	s.Retries = c.retries
	s.DeadlineCycles = c.timeout
	s.Checkpoint = c.checkpoint
	s.CheckpointFlushEvery = c.ckptFlush
	s.DisableArtifactCache = c.noCache
	s.PersistDir = c.cacheDir
	s.MaxDomain = c.maxDomain
	if c.tracePath != "" {
		s.Tracer = obs.NewTracer()
	}
	if c.progress {
		s.Progress = c.errOut
	}
	if c.faults != "" {
		plan, err := fault.Parse(c.faults)
		if err != nil {
			return nil, err
		}
		s.Faults = plan
	}
	return s, nil
}

// epilogue finishes a run: trace export, cache stats, metrics, and the
// failure summary. The return value is the exit status — 0 clean, 1 on
// an export error, 3 when sweeps completed around recorded failures.
func (c *cli) epilogue(s *core.Suite) int {
	if c.tracePath != "" {
		if err := s.Tracer.WriteFile(c.tracePath); err != nil {
			fmt.Fprintf(c.errOut, "amdmb: -trace: %v\n", err)
			return 1
		}
	}
	if c.cacheStats {
		fmt.Fprintln(c.out, s.CacheStats().Format())
	}
	if c.metrics || c.metricsJSON {
		snap := s.Metrics().Snapshot()
		if c.metricsJSON {
			data, err := snap.JSON()
			if err != nil {
				fmt.Fprintf(c.errOut, "amdmb: -metrics-json: %v\n", err)
				return 1
			}
			fmt.Fprintln(c.out, string(data))
		} else {
			fmt.Fprintln(c.out, snap.Format())
		}
	}
	if failures := s.Failures(); len(failures) > 0 {
		fmt.Fprintln(c.out, failureTable(failures).Format())
		fmt.Fprintf(c.errOut, "amdmb: %d point(s) failed and were recorded; sweeps completed\n", len(failures))
		return 3
	}
	return 0
}

// run is the whole command: parse flags, select experiments, execute
// them on one suite, and summarize failures. It returns the exit status.
func run(argv []string, stdout, stderr io.Writer) int {
	if len(argv) > 0 {
		switch argv[0] {
		case "soak":
			return runSoak(argv[1:], stdout, stderr)
		case "campaign":
			return runCampaignCmd(argv[1:], stdout, stderr)
		case "infer":
			return runInferCmd(argv[1:], stdout, stderr)
		}
	}
	c := &cli{out: stdout, errOut: stderr}
	fs := flag.NewFlagSet("amdmb", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c.commonFlags(fs)
	fs.BoolVar(&c.showRuns, "runs", false, "print per-point run details")
	fs.StringVar(&c.cpuprofile, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&c.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	args := fs.Args()
	exps := c.experiments()
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: amdmb [flags] <experiment>...")
		fmt.Fprintln(stderr, "       amdmb campaign -figs a,b,... [flags]   (deduped multi-figure schedule; amdmb campaign -h)")
		fmt.Fprintln(stderr, "       amdmb infer [flags]   (recover the cache model from measured curves; amdmb infer -h)")
		fmt.Fprintln(stderr, "       amdmb soak [flags]   (adversarial stress campaigns; amdmb soak -h)")
		fmt.Fprintln(stderr, "experiments:")
		for _, e := range exps {
			fmt.Fprintf(stderr, "  %-10s %s\n", e.name, e.desc)
		}
		fmt.Fprintln(stderr, "  all        run everything")
		return 2
	}

	byName := map[string]experiment{}
	var order []string
	for _, e := range exps {
		byName[e.name] = e
		order = append(order, e.name)
	}

	var selected []string
	for _, a := range args {
		if a == "all" {
			selected = order
			break
		}
		if _, ok := byName[strings.ToLower(a)]; !ok {
			fmt.Fprintf(stderr, "amdmb: unknown experiment %q\n", a)
			return 2
		}
		selected = append(selected, strings.ToLower(a))
	}
	sort.Strings(selected)

	// Profiles cover the experiment runs only, not flag parsing; both are
	// finalized before run returns so main's os.Exit never truncates them.
	if c.cpuprofile != "" {
		f, err := os.Create(c.cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "amdmb: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "amdmb: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if c.memprofile != "" {
		defer func() {
			if err := writeMemProfile(c.memprofile); err != nil {
				fmt.Fprintf(stderr, "amdmb: -memprofile: %v\n", err)
			}
		}()
	}

	s, err := c.newSuite()
	if err != nil {
		fmt.Fprintf(stderr, "amdmb: %v\n", err)
		return 2
	}

	for _, name := range selected {
		if err := byName[name].run(s); err != nil {
			fmt.Fprintf(stderr, "amdmb: %s: %v\n", name, err)
			return 1
		}
	}
	return c.epilogue(s)
}

// writeMemProfile snapshots the heap after a final GC, so the profile
// reflects live retention rather than garbage awaiting collection.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
