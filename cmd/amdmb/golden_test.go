package main

// Golden-figure pinning. The four figures below are the paper's
// load-bearing results (ALU:Fetch crossover, read latency, register
// usage, cache hierarchy); their full CSV output is checked in under
// testdata/golden/ and compared byte-for-byte. The model is
// deterministic, so any diff is a semantic change to the simulator or
// compiler and must be reviewed — and re-pinned with -update-goldens —
// rather than absorbed silently.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/golden from current output")

var goldenFigures = []string{"fig7", "fig8", "fig11", "fig16"}

func TestGoldenFigureCSVs(t *testing.T) {
	for _, fig := range goldenFigures {
		t.Run(fig, func(t *testing.T) {
			code, out, stderr := runCLI(t, "-iters", "1", "-csv", fig)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr)
			}
			path := filepath.Join("testdata", "golden", fig+".csv")
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./cmd/amdmb -run TestGoldenFigureCSVs -update-goldens` to pin)", err)
			}
			if out != string(want) {
				t.Errorf("%s CSV drifted from golden:\n%s", fig, firstDiff(string(want), out))
			}
		})
	}
}

// firstDiff reports the first differing line so a drift failure is
// readable without an external diff tool.
func firstDiff(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d, got %d", len(w), len(g))
}

// TestGoldenFilesPresent fails when a golden file exists for a figure
// no longer in the pinned set, or vice versa — keeps testdata/golden
// and goldenFigures in lockstep.
func TestGoldenFilesPresent(t *testing.T) {
	if *updateGoldens {
		t.Skip("regenerating")
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("%v (run with -update-goldens first)", err)
	}
	want := map[string]bool{}
	for _, fig := range goldenFigures {
		want[fig+".csv"] = true
	}
	for _, fig := range hierGoldenFigures {
		want[fig+".csv"] = true
	}
	for _, e := range entries {
		if !want[e.Name()] {
			t.Errorf("stray golden file %s", e.Name())
		}
		delete(want, e.Name())
	}
	for name := range want {
		t.Errorf("missing golden file %s", name)
	}
}
