package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCampaignShardsMergeToGoldens is the sharding acceptance test: the
// golden bundle split across two shard processes, each writing its own
// checkpoint under the full campaign's signature, then an unsharded run
// that merges the shard files and restores everything — emitting stdout
// byte-identical to the concatenated golden CSVs while executing zero
// units itself.
func TestCampaignShardsMergeToGoldens(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck.json")
	figs := strings.Join(goldenFigures, ",")

	for shard := 0; shard < 2; shard++ {
		spec := fmt.Sprintf("%d/2", shard)
		code, out, stderr := runCLI(t,
			"campaign", "-figs", figs, "-iters", "1", "-checkpoint", ck, "-shard", spec)
		if code != 0 {
			t.Fatalf("shard %s: exit %d, stderr: %s", spec, code, stderr)
		}
		if out != "" {
			t.Errorf("shard %s emitted figures; shards must only checkpoint:\n%s", spec, out)
		}
		if !strings.Contains(stderr, "campaign shard "+spec+":") {
			t.Errorf("shard %s summary missing: %s", spec, stderr)
		}
		if !strings.Contains(stderr, "failed=0") {
			t.Errorf("shard %s recorded failures: %s", spec, stderr)
		}
		if _, err := os.Stat(fmt.Sprintf("%s.shard%dof2", ck, shard)); err != nil {
			t.Fatalf("shard %s wrote no checkpoint: %v", spec, err)
		}
	}

	code, out, stderr := runCLI(t,
		"campaign", "-figs", figs, "-iters", "1", "-csv", "-checkpoint", ck)
	if code != 0 {
		t.Fatalf("merge run: exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "shard checkpoints into") {
		t.Errorf("merge run did not report merging: %s", stderr)
	}
	// Everything restores from the merged shards; nothing re-executes.
	if !strings.Contains(stderr, "executed=0") {
		t.Errorf("merge run re-executed units: %s", stderr)
	}

	var want strings.Builder
	for _, fig := range goldenFigures {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", fig+".csv"))
		if err != nil {
			t.Fatalf("%v (run `go test ./cmd/amdmb -run TestGoldenFigureCSVs -update-goldens` to pin)", err)
		}
		want.Write(data)
	}
	if out != want.String() {
		t.Errorf("sharded+merged campaign stdout diverges from goldens:\n%s", firstDiff(want.String(), out))
	}
}

// TestCampaignShardUsage pins the sharding flag's usage-error surface.
func TestCampaignShardUsage(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no checkpoint", []string{"campaign", "-figs", "fig16", "-shard", "0/2"}, "requires -checkpoint"},
		{"bad format", []string{"campaign", "-figs", "fig16", "-checkpoint", "x", "-shard", "2"}, "bad -shard"},
		{"out of range", []string{"campaign", "-figs", "fig16", "-checkpoint", "x", "-shard", "2/2"}, "bad -shard"},
		{"negative", []string{"campaign", "-figs", "fig16", "-checkpoint", "x", "-shard", "-1/2"}, "bad -shard"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2; stderr: %s", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q: %s", tc.want, stderr)
			}
		})
	}
}
