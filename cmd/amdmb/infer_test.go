package main

import (
	"strings"
	"testing"
)

// TestInferCmdAllArchsMatch is the CLI form of the suite's self-proof:
// `amdmb infer` over every built-in device must recover the cache model
// with zero mismatches and exit 0.
func TestInferCmdAllArchsMatch(t *testing.T) {
	code, out, stderr := runCLI(t, "infer", "-iters", "50")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, stderr, out)
	}
	for _, want := range []string{"HD 3870", "HD 4870", "HD 5870"} {
		if !strings.Contains(out, want) {
			t.Errorf("infer output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("infer reported a mismatch:\n%s", out)
	}
	if got := strings.Count(out, "match"); got < 18 { // 6 params x 3 devices
		t.Errorf("infer printed %d match verdicts, want >= 18:\n%s", got, out)
	}
}

func TestInferCmdCSV(t *testing.T) {
	code, out, stderr := runCLI(t, "infer", "-iters", "50", "-archs", "rv770", "-csv")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 { // header + 6 parameters
		t.Fatalf("CSV has %d lines, want 7:\n%s", len(lines), out)
	}
	if lines[0] != "arch,param,inferred,truth,ok" {
		t.Errorf("CSV header %q", lines[0])
	}
	if lines[1] != "RV770,l1-bytes,16384,16384,true" {
		t.Errorf("first row %q", lines[1])
	}
	for _, l := range lines[1:] {
		if !strings.HasSuffix(l, ",true") {
			t.Errorf("row records a mismatch: %q", l)
		}
	}
}

func TestInferCmdUsageErrors(t *testing.T) {
	if code, _, stderr := runCLI(t, "infer", "-archs", "r600"); code != 2 || !strings.Contains(stderr, "unknown arch") {
		t.Errorf("bad arch: exit %d, stderr %q", code, stderr)
	}
	if code, _, _ := runCLI(t, "infer", "stray"); code != 2 {
		t.Errorf("stray argument accepted")
	}
	if code, _, _ := runCLI(t, "infer", "-archs", " , "); code != 2 {
		t.Errorf("empty arch list accepted")
	}
}
