package main

// The summary experiment regenerates the headline quantities of every
// figure and prints them next to the paper's qualitative claims — a
// one-screen reproduction digest (the long-form record is EXPERIMENTS.md).

import (
	"fmt"
	"math"

	"amdgpubench/internal/core"
	"amdgpubench/internal/report"
)

func firstYOf(fig *report.Figure, label string) float64 {
	for _, s := range fig.Series {
		if s.Label == label && len(s.Points) > 0 {
			return s.Points[0].Y
		}
	}
	return math.NaN()
}

func lastYOf(fig *report.Figure, label string) float64 {
	for _, s := range fig.Series {
		if s.Label == label && len(s.Points) > 0 {
			return s.Points[len(s.Points)-1].Y
		}
	}
	return math.NaN()
}

func slopeOf(fig *report.Figure, label string) float64 {
	for _, s := range fig.Series {
		if s.Label == label {
			slope, _, _ := report.LinearFit(s)
			return slope
		}
	}
	return math.NaN()
}

func (c *cli) runSummary(s *core.Suite) error {
	t := &report.Table{
		Title:  "Reproduction summary: paper claim vs measured (simulated devices)",
		Header: []string{"experiment", "observable", "paper", "measured"},
	}
	add := func(exp, obs, paper, measured string) { t.AddRow(exp, obs, paper, measured) }

	fig7, _, err := s.Fig7()
	if err != nil {
		return err
	}
	add("fig7", "4870 pixel float crossover", "~1.25", fmt.Sprintf("%.2f", core.CrossoverOf(fig7, "4870 Pixel Float")))
	add("fig7", "4870 pixel float4 crossover", "~5.0", fmt.Sprintf("%.2f", core.CrossoverOf(fig7, "4870 Pixel Float4")))
	add("fig7", "5870 float4 crossover later than 4870", "yes (~9)",
		fmt.Sprintf("%.2f vs %.2f", core.CrossoverOf(fig7, "5870 Pixel Float4"), core.CrossoverOf(fig7, "4870 Pixel Float4")))
	add("fig7", "compute 64x1 plateau / pixel plateau (4870 float)", ">1",
		fmt.Sprintf("%.2f", firstYOf(fig7, "4870 Compute Float")/firstYOf(fig7, "4870 Pixel Float")))

	fig8, _, err := s.Fig8()
	if err != nil {
		return err
	}
	add("fig8", "4x16 speedup, 4870 compute float", "~3x",
		fmt.Sprintf("%.2fx", firstYOf(fig7, "4870 Compute Float")/firstYOf(fig8, "4870 Compute Float")))
	add("fig8", "4x16 speedup, 5870 compute float4", "~4x",
		fmt.Sprintf("%.2fx", firstYOf(fig7, "5870 Compute Float4")/firstYOf(fig8, "5870 Compute Float4")))

	fig11, _, err := s.Fig11()
	if err != nil {
		return err
	}
	fig12, _, err := s.Fig12()
	if err != nil {
		return err
	}
	add("fig11", "fetch latency linear in inputs", "yes",
		fmt.Sprintf("slope %.3f s/input (4870 float)", slopeOf(fig11, "4870 Pixel Float")))
	add("fig12", "3870 global read / texture fetch", "much slower",
		fmt.Sprintf("%.1fx", lastYOf(fig12, "3870 Pixel Float")/lastYOf(fig11, "3870 Pixel Float")))

	fig14, _, err := s.Fig14()
	if err != nil {
		return err
	}
	add("fig14", "global write float4/float slope", "~4x",
		fmt.Sprintf("%.2fx", slopeOf(fig14, "4870 Pixel Float4")/slopeOf(fig14, "4870 Pixel Float")))

	fig16, _, err := s.Fig16()
	if err != nil {
		return err
	}
	add("fig16", "register-pressure speedup, 4870 float", "~3.5x",
		fmt.Sprintf("%.2fx", firstYOf(fig16, "4870 Pixel Float")/lastYOf(fig16, "4870 Pixel Float")))
	add("fig16", "register-pressure speedup, 3870 float", "large",
		fmt.Sprintf("%.2fx", firstYOf(fig16, "3870 Pixel Float")/lastYOf(fig16, "3870 Pixel Float")))
	add("fig16", "5870 least affected", "yes",
		fmt.Sprintf("%.2fx", firstYOf(fig16, "5870 Pixel Float")/lastYOf(fig16, "5870 Pixel Float")))

	_, ctlRuns, err := s.ClauseControl()
	if err != nil {
		return err
	}
	ctlFlat := "yes"
	for _, r := range ctlRuns {
		if math.Abs(r.Seconds-ctlRuns[0].Seconds)/ctlRuns[0].Seconds > 0.02 && r.Card == ctlRuns[0].Card {
			ctlFlat = "NO"
		}
	}
	add("clausectl", "control kernel flat (constant time)", "yes", ctlFlat)

	fmt.Fprint(c.out, t.Format())
	return nil
}
