package main

// The -remote half of the campaign subcommand: instead of building a
// suite in-process, ship the request to an amdmbd daemon, poll the job,
// and stream the finished figures back. stdout is byte-identical to the
// same local `-csv` campaign (the daemon renders with the same
// report.Figure code), so scripts can switch between local and remote
// execution without changing their parsing; the summary line moves to
// stderr like every other campaign diagnostic.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"amdgpubench/internal/campaign"
)

// remotePollInterval paces job-status polling; campaigns run seconds to
// minutes, so sub-second polling is plenty responsive.
const remotePollInterval = 100 * time.Millisecond

// apiError extracts the daemon's {"error": "..."} payload, falling back
// to the raw body for anything that is not the API's JSON shape.
func apiError(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

// getJSON fetches url and decodes the 200 response into v.
func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, apiError(body))
	}
	return json.Unmarshal(body, v)
}

// runRemoteCampaign submits names to the daemon at base, waits for the
// job to settle, and emits each figure's CSV to stdout in -figs order.
// Exit codes mirror the local path: 0 clean, 1 on daemon/transport
// errors, 2 when the daemon rejects the request as malformed, 3 when
// the campaign completed with recorded per-point failures.
func runRemoteCampaign(base string, names []string, archs []string, c *cli) int {
	base = strings.TrimRight(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 30 * time.Second}

	req := campaign.Request{Figs: names, Archs: archs, MaxDomain: c.maxDomain, Iterations: c.iters}
	payload, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintf(c.errOut, "amdmb campaign: %v\n", err)
		return 1
	}
	resp, err := client.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(payload))
	if err != nil {
		fmt.Fprintf(c.errOut, "amdmb campaign: %v\n", err)
		return 1
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fmt.Fprintf(c.errOut, "amdmb campaign: %v\n", err)
		return 1
	}
	if resp.StatusCode != http.StatusAccepted {
		fmt.Fprintf(c.errOut, "amdmb campaign: remote: %s\n", apiError(body))
		if resp.StatusCode == http.StatusBadRequest {
			return 2
		}
		return 1
	}
	var st campaign.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		fmt.Fprintf(c.errOut, "amdmb campaign: bad submit response: %v\n", err)
		return 1
	}

	statusURL := base + "/v1/campaigns/" + st.ID
	for st.State == campaign.JobRunning {
		time.Sleep(remotePollInterval)
		if err := getJSON(client, statusURL, &st); err != nil {
			fmt.Fprintf(c.errOut, "amdmb campaign: %v\n", err)
			return 1
		}
	}
	if st.State != campaign.JobDone {
		fmt.Fprintf(c.errOut, "amdmb campaign: remote campaign %s %s: %s\n", st.ID, st.State, st.Error)
		return 1
	}

	for _, name := range names {
		fresp, err := client.Get(statusURL + "/figures/" + name + ".csv")
		if err != nil {
			fmt.Fprintf(c.errOut, "amdmb campaign: %v\n", err)
			return 1
		}
		fbody, err := io.ReadAll(fresp.Body)
		fresp.Body.Close()
		if err != nil {
			fmt.Fprintf(c.errOut, "amdmb campaign: %v\n", err)
			return 1
		}
		if fresp.StatusCode != http.StatusOK {
			fmt.Fprintf(c.errOut, "amdmb campaign: figure %s: %s\n", name, apiError(fbody))
			return 1
		}
		// Matches the local emitFigure framing: the CSV, then one blank
		// separator line.
		_, _ = c.out.Write(fbody)
		fmt.Fprintln(c.out)
	}
	fmt.Fprintf(c.errOut, "campaign: figures=%d units=%d deduped=%d executed=%d restored=%d failed=%d (remote %s)\n",
		len(names), st.Units, st.Deduped, st.Executed, st.Units-st.Executed, st.FailedUnits, st.ID)
	if st.FailedUnits > 0 {
		fmt.Fprintf(c.errOut, "amdmb: %d unit(s) failed and were recorded; campaign completed\n", st.FailedUnits)
		return 3
	}
	return 0
}
