package main

// Soak subcommand smoke tests, driving run() like main does. The
// -torture path spawns child processes of the real binary and is
// covered by the CI soak-smoke job plus internal/soak's re-exec test,
// not here (the test binary is not amdmb).

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"amdgpubench/internal/il"
	"amdgpubench/internal/soak"
)

func TestSoakCampaignSmoke(t *testing.T) {
	code, out, stderr := runCLI(t, "soak",
		"-seed", "7", "-steps", "2", "-kernels", "2",
		"-faults", "seed=5;transient:prob=0.2", "-kill-every", "2", "-churn", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, stderr, out)
	}
	for _, want := range []string{"step 0 sweep", "step 1 killresume", "violations=0", "kills=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("soak output missing %q:\n%s", want, out)
		}
	}
}

func TestSoakReproducibleAcrossInvocations(t *testing.T) {
	args := []string{"soak", "-seed", "11", "-steps", "2", "-kernels", "2",
		"-faults", "seed=5;transient:prob=0.3;hang:prob=0.1"}
	codeA, outA, _ := runCLI(t, args...)
	codeB, outB, _ := runCLI(t, args...)
	if codeA != 0 || codeB != 0 {
		t.Fatalf("exits %d, %d", codeA, codeB)
	}
	if outA != outB {
		t.Errorf("same seed, different stdout:\n a: %s\n b: %s", outA, outB)
	}
}

func TestSoakPlanMode(t *testing.T) {
	code, out, stderr := runCLI(t, "soak", "-seed", "42", "-plan", "2", "-kernels", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "step 0 sweep") || !strings.Contains(out, "point 2 ") {
		t.Errorf("plan output:\n%s", out)
	}
	if strings.Contains(out, "soak: seed=") {
		t.Error("-plan ran the campaign")
	}
}

func TestSoakUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"soak", "-faults", "frobnicate"},
		{"soak", "-nonsense"},
		{"soak", "stray-arg"},
	} {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("amdmb %s: exit %d, want 2", strings.Join(args, " "), code)
		}
	}
}

// TestSoakViolationExitCodeAndReplay exercises the violation path the
// way CI consumes it: a campaign with a (library-injected) failing
// oracle must exit 4, name the bundle on stdout, and the bundle must
// replay through `amdmb soak -replay`.
func TestSoakViolationExitCodeAndReplay(t *testing.T) {
	bundles := t.TempDir()
	// The CLI has no flag to inject a broken oracle (by design); build
	// the bundle through the library and drive only -replay through the
	// CLI surface.
	rep, err := soak.Run(soak.Config{
		Seed: 21, Steps: 1, KernelsPerStep: 2, Workers: 1,
		BundleDir: bundles, FailFast: true,
		TestOracle: func(k *il.Kernel) error {
			if k.Counts().Fetch > 0 {
				return errors.New("planted")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() || len(rep.Bundles) == 0 {
		t.Fatalf("campaign produced no bundle: %+v", rep)
	}
	bundle := rep.Bundles[0]

	// An injected-oracle bundle cannot be replayed without the oracle:
	// the CLI reports that as an infrastructure error, not success.
	code, _, stderr := runCLI(t, "soak", "-replay", bundle)
	if code != 1 || !strings.Contains(stderr, "TestOracle") {
		t.Errorf("replay of injected bundle: exit %d, stderr %s", code, stderr)
	}
	if code, _, stderr := runCLI(t, "soak", "-replay", filepath.Join(bundles, "no-such")); code != 1 {
		t.Errorf("replay of missing bundle: exit %d, stderr %s", code, stderr)
	}

	// The bundle directory itself must be complete.
	for _, f := range []string{"bundle.json", "kernel.il", "README.md"} {
		if _, err := os.Stat(filepath.Join(bundle, f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}
}
