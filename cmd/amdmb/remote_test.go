package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"amdgpubench/internal/campaign"
	"amdgpubench/internal/core"
	"amdgpubench/internal/daemon"
)

// startDaemon spins an in-process amdmbd over httptest — the real wire
// protocol (internal/daemon is exactly what cmd/amdmbd serves), without
// needing a second binary or a port.
func startDaemon(t *testing.T, maxDomain int) *httptest.Server {
	t.Helper()
	s := core.NewSuite()
	s.Iterations = 1
	s.MaxDomain = maxDomain
	ts := httptest.NewServer(daemon.NewServer(campaign.NewJobs(s), s.Metrics(), nil))
	t.Cleanup(ts.Close)
	return ts
}

// TestRemoteCampaignMatchesLocal is the client's contract: the same
// -figs -csv campaign, run locally and through -remote, must write
// byte-identical stdout.
func TestRemoteCampaignMatchesLocal(t *testing.T) {
	const figs = "fig7,fig8"
	code, local, stderr := runCLI(t, "campaign", "-figs", figs, "-iters", "1", "-max-domain", "16", "-csv")
	if code != 0 {
		t.Fatalf("local: exit %d, stderr: %s", code, stderr)
	}

	ts := startDaemon(t, 16)
	code, remote, stderr := runCLI(t,
		"campaign", "-figs", figs, "-iters", "1", "-max-domain", "16", "-csv", "-remote", ts.URL)
	if code != 0 {
		t.Fatalf("remote: exit %d, stderr: %s", code, stderr)
	}
	if remote != local {
		t.Errorf("remote stdout differs from local:\n%s", firstDiff(local, remote))
	}
	for _, want := range []string{"figures=2", "failed=0", "remote c"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("remote summary missing %q: %s", want, stderr)
		}
	}
}

// TestRemoteUsage pins the client-side validation surface: local-only
// flags, the -csv requirement, -archs without -remote, and the daemon's
// 400s surfacing as exit 2.
func TestRemoteUsage(t *testing.T) {
	ts := startDaemon(t, 16)
	cases := []struct {
		name     string
		args     []string
		wantCode int
		want     string
	}{
		{"checkpoint is local-only",
			[]string{"campaign", "-figs", "fig7", "-csv", "-remote", ts.URL, "-checkpoint", "ck.json"},
			2, "-checkpoint"},
		{"plan is local-only",
			[]string{"campaign", "-figs", "fig7", "-csv", "-remote", ts.URL, "-plan"},
			2, "-plan"},
		{"remote requires csv",
			[]string{"campaign", "-figs", "fig7", "-remote", ts.URL},
			2, "-remote requires -csv"},
		{"archs requires remote",
			[]string{"campaign", "-figs", "fig7", "-csv", "-archs", "4870"},
			2, "-archs requires -remote"},
		{"daemon rejects iteration mismatch",
			[]string{"campaign", "-figs", "fig7", "-iters", "3", "-csv", "-remote", ts.URL},
			2, "iterations 3 unavailable"},
		{"daemon rejects unfilterable figure",
			[]string{"campaign", "-figs", "trans", "-csv", "-remote", ts.URL, "-archs", "4870"},
			2, "cannot be arch-filtered"},
		{"unreachable daemon",
			[]string{"campaign", "-figs", "fig7", "-csv", "-remote", "127.0.0.1:1"},
			1, "amdmb campaign:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != tc.wantCode {
				t.Fatalf("exit %d, want %d; stderr: %s", code, tc.wantCode, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q: %s", tc.want, stderr)
			}
		})
	}
}

// TestRemoteArchFilter: a filtered remote campaign serves only the
// requested architecture's series.
func TestRemoteArchFilter(t *testing.T) {
	ts := startDaemon(t, 16)
	code, out, stderr := runCLI(t,
		"campaign", "-figs", "fig7", "-iters", "1", "-csv", "-remote", ts.URL, "-archs", "4870")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "4870") {
		t.Fatalf("no 4870 series in filtered output:\n%s", out)
	}
	for _, other := range []string{"3870", "5870"} {
		if strings.Contains(out, other) {
			t.Errorf("series %q survived a 4870-only filter:\n%s", other, out)
		}
	}
}
