package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/kerngen"
)

func runSka(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// tableRows parses the aligned report.Table output back into rows keyed
// by the GPU column. Every data row has exactly one field per header
// column because all cell values are single tokens.
func tableRows(t *testing.T, out string) map[string][]string {
	t.Helper()
	archNames := map[string]bool{}
	for _, spec := range device.All() {
		archNames[spec.Arch.String()] = true
	}
	rows := map[string][]string{}
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) == 9 && archNames[f[0]] {
			rows[f[0]] = f
		}
	}
	return rows
}

// TestStatsMatchCompilerGolden runs ska and recomputes every reported
// column from a direct kerngen + ilc.Compile pass; the CLI must be a
// pure presentation layer over the compiler's Stats.
func TestStatsMatchCompilerGolden(t *testing.T) {
	code, out, stderr := runSka(t, "-inputs", "4", "-ratio", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	rows := tableRows(t, out)
	if len(rows) != len(device.All()) {
		t.Fatalf("expected %d device rows, got %d:\n%s", len(device.All()), len(rows), out)
	}
	k, err := kerngen.ALUFetch(kerngen.Params{
		Mode: il.Pixel, Type: il.Float, Inputs: 4, Outputs: 1, ALUFetchRatio: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range device.All() {
		prog, err := ilc.Compile(k, spec)
		if err != nil {
			t.Fatal(err)
		}
		st := prog.Stats()
		want := []string{
			spec.Arch.String(),
			fmt.Sprintf("%d", st.GPRs),
			fmt.Sprintf("%d", spec.WavefrontsForGPRs(st.GPRs)),
			fmt.Sprintf("%d", st.ALUBundles),
			fmt.Sprintf("%d", st.FetchOps),
			fmt.Sprintf("%d", st.ALUClauses),
			fmt.Sprintf("%d", st.TEXClauses),
			fmt.Sprintf("%.2f", st.ALUPacking),
			fmt.Sprintf("%.2f", st.ALUFetchSKA),
		}
		got := rows[spec.Arch.String()]
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s column %d: ska printed %q, compiler says %q", spec.Arch, i, got[i], want[i])
			}
		}
	}
}

// TestComputeSkipsUnsupported: compute-mode kernels cannot run on a
// device without compute support, so that row must be absent.
func TestComputeSkipsUnsupported(t *testing.T) {
	code, out, stderr := runSka(t, "-compute", "-inputs", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	rows := tableRows(t, out)
	for _, spec := range device.All() {
		_, present := rows[spec.Arch.String()]
		if present != spec.SupportsCompute {
			t.Errorf("%s: row present=%v, SupportsCompute=%v", spec.Arch, present, spec.SupportsCompute)
		}
	}
}

// TestRegisterUsageAndDisasm covers the -space/-step kernel family and
// the -disasm tail.
func TestRegisterUsageAndDisasm(t *testing.T) {
	code, out, stderr := runSka(t, "-inputs", "16", "-space", "4", "-step", "2", "-disasm")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if len(tableRows(t, out)) != len(device.All()) {
		t.Fatalf("missing device rows:\n%s", out)
	}
	for _, want := range []string{"TEX:", "ALU:", "EXP_DONE"} {
		if !strings.Contains(out, want) {
			t.Errorf("-disasm output missing %q", want)
		}
	}
}

func TestSkaErrors(t *testing.T) {
	if code, _, _ := runSka(t, "-nonsense"); code != 2 {
		t.Errorf("unknown flag: exit %d", code)
	}
	if code, _, stderr := runSka(t, "stray-arg"); code != 2 || !strings.Contains(stderr, "unexpected argument") {
		t.Errorf("positional arg: exit %d, stderr %q", code, stderr)
	}
	// Generator rejection (no inputs) must surface as exit 1, not a panic.
	if code, _, stderr := runSka(t, "-inputs", "0"); code != 1 || stderr == "" {
		t.Errorf("bad params: exit %d, stderr %q", code, stderr)
	}
}
