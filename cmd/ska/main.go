// Command ska is a StreamKernelAnalyzer-style static analysis tool: it
// generates a micro-benchmark kernel from parameters, compiles it for each
// GPU generation, and reports the static properties the paper's
// methodology depends on — GPR count, clause structure, packing density
// and the ALU:Fetch ratio in the SKA's 4-ops-per-fetch convention.
//
// Usage:
//
//	ska [-inputs N] [-outputs N] [-ratio R] [-float4] [-compute]
//	    [-space N -step N] [-disasm]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/isa"
	"amdgpubench/internal/kerngen"
	"amdgpubench/internal/report"
)

// run executes the tool against explicit streams so tests can drive it
// exactly as main does. Exit codes: 0 success, 1 generation or compile
// failure, 2 usage error.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ska", flag.ContinueOnError)
	fs.SetOutput(stderr)
	inputs := fs.Int("inputs", 8, "number of input resources")
	outputs := fs.Int("outputs", 1, "number of outputs")
	ratio := fs.Float64("ratio", 1.0, "ALU:Fetch ratio (SKA convention)")
	float4 := fs.Bool("float4", false, "use float4 data")
	compute := fs.Bool("compute", false, "compute shader mode")
	space := fs.Int("space", 0, "register-usage kernel: fetches per late TEX clause")
	step := fs.Int("step", 0, "register-usage kernel: number of late TEX clauses")
	disasm := fs.Bool("disasm", false, "print ISA disassembly (RV770)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ska: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	p := kerngen.Params{
		Mode: il.Pixel, Type: il.Float,
		Inputs: *inputs, Outputs: *outputs,
		ALUFetchRatio: *ratio,
		Space:         *space, Step: *step,
	}
	if *float4 {
		p.Type = il.Float4
	}
	if *compute {
		p.Mode = il.Compute
		p.OutSpace = il.GlobalSpace
	}
	var (
		k   *il.Kernel
		err error
	)
	if *space > 0 {
		k, err = kerngen.RegisterUsage(p)
	} else {
		k, err = kerngen.ALUFetch(p)
	}
	if err != nil {
		fmt.Fprintf(stderr, "ska: %v\n", err)
		return 1
	}

	t := &report.Table{
		Title:  fmt.Sprintf("Kernel %q (%s, %s): static analysis", k.Name, k.Mode, k.Type),
		Header: []string{"GPU", "GPRs", "Waves/SIMD", "ALU bundles", "Fetches", "ALU clauses", "TEX clauses", "Packing", "ALU:Fetch"},
	}
	for _, spec := range device.All() {
		if k.Mode == il.Compute && !spec.SupportsCompute {
			continue
		}
		prog, err := ilc.Compile(k, spec)
		if err != nil {
			fmt.Fprintf(stderr, "ska: %s: %v\n", spec.Arch, err)
			return 1
		}
		st := prog.Stats()
		t.AddRow(
			spec.Arch.String(),
			fmt.Sprintf("%d", st.GPRs),
			fmt.Sprintf("%d", spec.WavefrontsForGPRs(st.GPRs)),
			fmt.Sprintf("%d", st.ALUBundles),
			fmt.Sprintf("%d", st.FetchOps),
			fmt.Sprintf("%d", st.ALUClauses),
			fmt.Sprintf("%d", st.TEXClauses),
			fmt.Sprintf("%.2f", st.ALUPacking),
			fmt.Sprintf("%.2f", st.ALUFetchSKA),
		)
	}
	fmt.Fprint(stdout, t.Format())
	if *disasm {
		prog, err := ilc.Compile(k, device.Lookup(device.RV770))
		if err != nil {
			fmt.Fprintf(stderr, "ska: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, isa.Disassemble(prog))
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
