module amdgpubench

go 1.22
