package fault

import (
	"strings"
	"testing"
)

func TestDrawDeterministic(t *testing.T) {
	p := &Plan{Seed: 7, Specs: []Spec{
		{Kind: Hang, Prob: 0.3, Clause: -1},
		{Kind: Transient, Prob: 0.3},
		{Kind: Throttle, Prob: 0.3, Factor: 0.5},
	}}
	for i := 0; i < 100; i++ {
		key := Key("k", "RV770", 64, 64, i)
		a := p.Draw("k", key)
		b := p.Draw("k", key)
		if a != b {
			t.Fatalf("draw not deterministic at attempt %d: %v vs %v", i, a, b)
		}
	}
}

func TestDrawProbabilityEndpoints(t *testing.T) {
	always := &Plan{Specs: []Spec{{Kind: Transient, Prob: 1}}}
	never := &Plan{Specs: []Spec{{Kind: Transient, Prob: 0}}}
	for i := 0; i < 200; i++ {
		key := Key("k", "RV870", 128, 128, i)
		if !always.Draw("k", key).Transient {
			t.Fatalf("prob=1 did not inject at attempt %d", i)
		}
		if never.Draw("k", key).Any() {
			t.Fatalf("prob=0 injected at attempt %d", i)
		}
	}
}

func TestDrawRateRoughlyMatchesProb(t *testing.T) {
	p := &Plan{Seed: 1, Specs: []Spec{{Kind: Transient, Prob: 0.25}}}
	hits := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if p.Draw("k", Key("k", "RV670", 64, 64, i)).Transient {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.20 || rate > 0.30 {
		t.Fatalf("injection rate %.3f, want ~0.25", rate)
	}
}

func TestDrawMatchScopesToKernel(t *testing.T) {
	p := &Plan{Specs: []Spec{{Kind: Hang, Prob: 1, Match: "alufetch_r0.25", Clause: 2}}}
	inj := p.Draw("alufetch_r0.25", Key("alufetch_r0.25", "RV770", 64, 64, 0))
	if !inj.Hang || inj.HangClause != 2 {
		t.Fatalf("matching kernel not injected: %v", inj)
	}
	if p.Draw("alufetch_r0.50", Key("alufetch_r0.50", "RV770", 64, 64, 0)).Any() {
		t.Fatal("non-matching kernel injected")
	}
}

func TestDrawNilPlan(t *testing.T) {
	var p *Plan
	if p.Draw("k", 1).Any() {
		t.Fatal("nil plan injected")
	}
}

func TestAttemptClearsTransient(t *testing.T) {
	// With prob 0.5 a transient that struck attempt 0 should clear within
	// a handful of retries for at least one kernel identity.
	p := &Plan{Seed: 3, Specs: []Spec{{Kind: Transient, Prob: 0.5}}}
	cleared := false
	for i := 0; i < 50 && !cleared; i++ {
		name := "k" + strings.Repeat("x", i%5)
		if !p.Draw(name, Key(name, "RV770", 64, 64, 0)).Transient {
			continue
		}
		for a := 1; a < 5; a++ {
			if !p.Draw(name, Key(name, "RV770", 64, 64, a)).Transient {
				cleared = true
				break
			}
		}
	}
	if !cleared {
		t.Fatal("transient never cleared across retries")
	}
}

func TestParseRoundTrip(t *testing.T) {
	in := "seed=42;hang:prob=0.01,match=alufetch,clause=2;transient:prob=0.05;throttle:prob=0.1,factor=0.5"
	p, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || len(p.Specs) != 3 {
		t.Fatalf("parsed plan: %+v", p)
	}
	if p.Specs[0].Kind != Hang || p.Specs[0].Clause != 2 || p.Specs[0].Match != "alufetch" {
		t.Fatalf("hang spec: %+v", p.Specs[0])
	}
	if got := p.String(); got != in {
		t.Fatalf("round trip: %q != %q", got, in)
	}
}

func TestParseDefaults(t *testing.T) {
	p, err := Parse("hang")
	if err != nil {
		t.Fatal(err)
	}
	s := p.Specs[0]
	if s.Prob != 1 || s.Clause != -1 {
		t.Fatalf("defaults: %+v", s)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "frobnicate", "hang:prob=2", "hang:clause=x",
		"throttle:factor=0", "throttle:factor=1.5", "hang:wat=1",
		"seed=abc;hang", "hang:prob",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestParseRejectsInvalidSpecs pins the validation errors: out-of-range
// or non-numeric probabilities and duplicate kinds per kernel scope are
// rejected with a message naming the offending token, while distinct
// scopes of one kind stay legal.
func TestParseRejectsInvalidSpecs(t *testing.T) {
	cases := []struct {
		name, plan string
		wantErr    []string // substrings the error must contain; nil = accept
	}{
		{"prob negative", "hang:prob=-0.1", []string{"bad prob", `"-0.1"`, "hang:prob=-0.1"}},
		{"prob above one", "transient:prob=1.01", []string{"bad prob", `"1.01"`}},
		{"prob NaN", "transient:prob=NaN", []string{"bad prob", `"NaN"`}},
		{"prob not a number", "hang:prob=lots", []string{"bad prob", `"lots"`}},
		{"duplicate bare kind", "hang;hang:prob=0.5", []string{"duplicate hang fault", `"hang:prob=0.5"`}},
		{"duplicate kind same match", "transient:match=alufetch;transient:prob=0.2,match=alufetch",
			[]string{"duplicate transient fault", `match "alufetch"`}},
		{"same kind different match", "transient:match=alufetch;transient:match=readlat", nil},
		{"same match different kinds", "hang:match=alufetch;transient:match=alufetch", nil},
		{"probability endpoints", "hang:prob=0;transient:prob=1", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Parse(tc.plan)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("Parse(%q) rejected a valid plan: %v", tc.plan, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Parse(%q) accepted, parsed %+v", tc.plan, p)
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("Parse(%q) error %q does not name %q", tc.plan, err, want)
				}
			}
		})
	}
}

func TestInjectionString(t *testing.T) {
	inj := Injection{Hang: true, HangClause: 3, Throttle: 0.5}
	if got := inj.String(); got != "hang(clause=3)+throttle(0.50)" {
		t.Fatalf("string: %q", got)
	}
	if (Injection{}).String() != "none" {
		t.Fatal("empty injection string")
	}
}

func TestCorruptValueDeterministic(t *testing.T) {
	if CorruptValue(2, 0, 0, 0) != -2 {
		t.Fatal("lane (0,0,0) should flip sign")
	}
	if CorruptValue(2, 1, 0, 0) != 2 {
		t.Fatal("lane (1,0,0) should pass through")
	}
}
