// Package fault is the fault-injection layer of the reproduction. Real
// StreamSDK measurement campaigns — thousands of unattended kernel
// launches per figure — routinely hit hung kernels, driver watchdog
// resets and flaky launches. The simulator is too polite to exhibit any
// of these, so this package injects them on purpose: a Plan describes
// which failure modes strike which kernels with what probability, and
// every draw is a pure function of the plan's seed and the launch's
// identity, so an injected fault reproduces bit-identically across
// re-runs, worker counts and retry schedules.
//
// The supported faults mirror the failure modes the suite's execution
// layer must survive:
//
//	hang       — a clause never retires; caught by the sim watchdog
//	transient  — the launch fails with a retryable error
//	throttle   — the core clock is reduced for the launch (thermal event)
//	corrupt    — cached fetches return perturbed data (functional runs)
//	drop       — exports are silently dropped (functional runs)
//	devicelost — the device falls off the bus; fatal for the sweep
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind is one injectable failure mode.
type Kind int

const (
	// Hang makes a clause never retire; the sim watchdog must catch it.
	Hang Kind = iota
	// Transient fails the launch with a retryable error before any work.
	Transient
	// Throttle reduces the effective core clock for the launch.
	Throttle
	// Corrupt perturbs the values cached fetches return (functional runs).
	Corrupt
	// Drop silently discards exports (functional runs).
	Drop
	// DeviceLost fails the launch fatally: the device is gone.
	DeviceLost
)

var kindNames = map[Kind]string{
	Hang:       "hang",
	Transient:  "transient",
	Throttle:   "throttle",
	Corrupt:    "corrupt",
	Drop:       "drop",
	DeviceLost: "devicelost",
}

// String names the kind the way Parse spells it.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Spec arms one failure mode.
type Spec struct {
	Kind Kind
	// Prob is the per-launch probability in [0,1].
	Prob float64
	// Match, when non-empty, restricts the fault to launches whose kernel
	// name contains it as a substring (e.g. "alufetch_r0.25").
	Match string
	// Clause is the clause a Hang sticks in; negative means the last.
	Clause int
	// Factor is the Throttle clock multiplier in (0,1].
	Factor float64
}

// Plan is a seeded set of armed faults.
type Plan struct {
	Seed  uint64
	Specs []Spec
}

// Injection is the set of faults striking one launch.
type Injection struct {
	// Hang, when true, sticks HangClause forever.
	Hang       bool
	HangClause int
	// Transient fails the launch retryably.
	Transient bool
	// Throttle is the effective clock multiplier; 0 means nominal.
	Throttle float64
	// Corrupt perturbs fetch returns in functional execution.
	Corrupt bool
	// Drop discards exports in functional execution.
	Drop bool
	// DeviceLost fails the launch fatally.
	DeviceLost bool
}

// Any reports whether any fault struck.
func (i Injection) Any() bool {
	return i.Hang || i.Transient || i.Throttle != 0 || i.Corrupt || i.Drop || i.DeviceLost
}

// String lists the active faults, for diagnostics.
func (i Injection) String() string {
	var parts []string
	if i.Hang {
		parts = append(parts, fmt.Sprintf("hang(clause=%d)", i.HangClause))
	}
	if i.Transient {
		parts = append(parts, "transient")
	}
	if i.Throttle != 0 {
		parts = append(parts, fmt.Sprintf("throttle(%.2f)", i.Throttle))
	}
	if i.Corrupt {
		parts = append(parts, "corrupt")
	}
	if i.Drop {
		parts = append(parts, "drop")
	}
	if i.DeviceLost {
		parts = append(parts, "devicelost")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Key condenses a launch's identity — kernel name, device, domain and
// retry attempt — into the 64-bit value Draw hashes against the seed.
// Keying on identity rather than a launch counter keeps injections
// reproducible under any worker count and sweep order; mixing in the
// attempt lets a transient fault clear on retry.
func Key(kernel, arch string, w, h, attempt int) uint64 {
	return fnv64(fmt.Sprintf("%s|%s|%dx%d|a%d", kernel, arch, w, h, attempt))
}

// fnv64 is FNV-1a, the stable hash the checkpoint signatures use too.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 finalizes a draw: a full-avalanche mix so per-spec salts
// decorrelate the uniform variates of one launch.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// uniform maps a mixed word to [0,1).
func uniform(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// Draw decides which armed faults strike the launch identified by
// (kernel, key). It is a pure function: the same plan, kernel name and
// key always produce the same injection. A nil plan never injects.
func (p *Plan) Draw(kernel string, key uint64) Injection {
	var inj Injection
	if p == nil {
		return inj
	}
	for i, s := range p.Specs {
		if s.Prob <= 0 {
			continue
		}
		if s.Match != "" && !strings.Contains(kernel, s.Match) {
			continue
		}
		u := uniform(splitmix64(p.Seed ^ key ^ uint64(i)*0xA24BAED4963EE407))
		if u >= s.Prob {
			continue
		}
		switch s.Kind {
		case Hang:
			inj.Hang = true
			inj.HangClause = s.Clause
		case Transient:
			inj.Transient = true
		case Throttle:
			f := s.Factor
			if f <= 0 || f > 1 {
				f = 0.5
			}
			inj.Throttle = f
		case Corrupt:
			inj.Corrupt = true
		case Drop:
			inj.Drop = true
		case DeviceLost:
			inj.DeviceLost = true
		}
	}
	return inj
}

// Parse reads the CLI plan syntax: semicolon-separated clauses, the
// optional first being "seed=N", each other being
// "<kind>[:key=value[,key=value...]]". Keys: prob (default 1),
// match, clause (hang), factor (throttle). Examples:
//
//	hang
//	seed=42;hang:prob=0.01;transient:prob=0.05
//	hang:prob=1,match=alufetch_r0.25,clause=2;throttle:prob=0.1,factor=0.5
func Parse(s string) (*Plan, error) {
	p := &Plan{}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", v)
			}
			p.Seed = seed
			continue
		}
		name, opts, _ := strings.Cut(clause, ":")
		var kind Kind
		found := false
		for k, n := range kindNames {
			if n == name {
				kind, found = k, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fault: unknown fault kind %q (want %s)", name, kindList())
		}
		spec := Spec{Kind: kind, Prob: 1, Clause: -1}
		if opts != "" {
			for _, kv := range strings.Split(opts, ",") {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("fault: bad option %q in %q", kv, clause)
				}
				switch key {
				case "prob":
					f, err := strconv.ParseFloat(val, 64)
					if err != nil || math.IsNaN(f) || f < 0 || f > 1 {
						return nil, fmt.Errorf("fault: bad prob %q in %q (want 0..1)", val, clause)
					}
					spec.Prob = f
				case "match":
					spec.Match = val
				case "clause":
					n, err := strconv.Atoi(val)
					if err != nil {
						return nil, fmt.Errorf("fault: bad clause %q", val)
					}
					spec.Clause = n
				case "factor":
					f, err := strconv.ParseFloat(val, 64)
					if err != nil || f <= 0 || f > 1 {
						return nil, fmt.Errorf("fault: bad factor %q (want (0,1])", val)
					}
					spec.Factor = f
				default:
					return nil, fmt.Errorf("fault: unknown option %q in %q", key, clause)
				}
			}
		}
		// Two specs of the same kind scoped to the same kernels would draw
		// twice for one failure mode — almost always a typo'd plan whose
		// effective probability silently differs from what was written.
		for _, prev := range p.Specs {
			if prev.Kind == spec.Kind && prev.Match == spec.Match {
				return nil, fmt.Errorf("fault: duplicate %s fault for match %q (clause %q)",
					spec.Kind, spec.Match, clause)
			}
		}
		p.Specs = append(p.Specs, spec)
	}
	if len(p.Specs) == 0 {
		return nil, fmt.Errorf("fault: empty plan %q", s)
	}
	return p, nil
}

// String renders the plan back in Parse's syntax.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, s := range p.Specs {
		var opts []string
		if s.Prob != 1 {
			opts = append(opts, fmt.Sprintf("prob=%g", s.Prob))
		}
		if s.Match != "" {
			opts = append(opts, "match="+s.Match)
		}
		if s.Kind == Hang && s.Clause >= 0 {
			opts = append(opts, fmt.Sprintf("clause=%d", s.Clause))
		}
		if s.Kind == Throttle && s.Factor != 0 {
			opts = append(opts, fmt.Sprintf("factor=%g", s.Factor))
		}
		c := s.Kind.String()
		if len(opts) > 0 {
			c += ":" + strings.Join(opts, ",")
		}
		parts = append(parts, c)
	}
	return strings.Join(parts, ";")
}

func kindList() string {
	names := make([]string, 0, len(kindNames))
	for _, n := range kindNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

// CorruptValue is the deterministic perturbation Corrupt applies to a
// fetched value: the sign bit flips on a thread-dependent subset of
// lanes, a visible, reproducible corruption rather than random noise.
func CorruptValue(v float32, x, y, lane int) float32 {
	if (x+y+lane)%3 == 0 {
		return -v
	}
	return v
}
