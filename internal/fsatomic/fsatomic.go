// Package fsatomic is the suite's one crash-atomic file writer. Every
// layer that persists state — sweep checkpoints, merged shard files, the
// pipeline's on-disk artifact tier — writes through WriteFile, so the
// durability discipline (unique temp, fsync data, rename, fsync parent
// directory) lives in exactly one place instead of accreting weaker
// copies per subsystem.
//
// The writer must hold up under two distinct adversaries:
//
//   - a SIGKILL or machine crash at any instant, which must leave either
//     the old complete file or the new complete file (the soak crash
//     torture exercises this); and
//   - CONCURRENT writers to the same path — the situation a multi-client
//     daemon creates — which must never be able to rename each other's
//     half-written temp files into place. A fixed "path+.tmp" temp name
//     fails exactly here: writer B truncates and rewrites the temp while
//     writer A is between its fsync and its rename, and A then renames
//     B's torn bytes into place. os.CreateTemp gives every writer its
//     own temp, so each rename publishes only bytes that writer fully
//     wrote and synced; concurrent writers race only on which COMPLETE
//     file wins the rename, which is the correct last-writer-wins.
package fsatomic

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// tempInfix marks this package's temp files: a writer for "name" creates
// "name.tmp-<random>" in the same directory. CleanOrphans matches it.
const tempInfix = ".tmp-"

// WriteFile writes data to path atomically: unique temp file in the same
// directory, write, fsync, rename over path, fsync the parent directory.
// A crash at any instant leaves either the old or the new complete file;
// concurrent writers to one path each publish a complete file. The final
// file has mode 0644 regardless of umask-tightened temp permissions.
func WriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+tempInfix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	// Any failure from here on removes the temp: orphans should only ever
	// come from a crash, not from an error return.
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	// Without the fsync, rename-over-old is atomic against crashes of the
	// process but not of the machine: the rename can hit disk before the
	// data blocks, leaving a validly-named file of garbage.
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	// CreateTemp opens 0600; published files keep the historical 0644.
	if err := f.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// The rename itself lives in the directory: sync it so the new name
	// survives a machine crash too. Platforms that cannot open or sync a
	// directory degrade to the rename's own durability.
	return syncDir(dir)
}

// syncDir fsyncs a directory, best-effort on platforms that refuse.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Directory fsync is not portable (and some filesystems reject
		// it); the rename is still crash-atomic for the process.
		return nil
	}
	return nil
}

// IsTemp reports whether name (a base name, not a path) is one of this
// package's temp files.
func IsTemp(name string) bool {
	return strings.Contains(name, tempInfix)
}

// CleanOrphans walks root and removes every temp file a crashed writer
// left behind, returning how many were removed. A long-lived daemon runs
// it once at startup over its state directory: orphans are dead weight —
// no writer will ever rename them — and a bounded store should not leak
// disk across crash/restart cycles. Files still being written by a LIVE
// writer are at risk only if two processes share one state directory,
// which the daemon's single-writer ownership of -cache-dir rules out.
func CleanOrphans(root string) (int, error) {
	removed := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) && path == root {
				return filepath.SkipAll
			}
			return err
		}
		if d.IsDir() || !IsTemp(d.Name()) {
			return nil
		}
		if err := os.Remove(path); err != nil {
			return err
		}
		removed++
		return nil
	})
	return removed, err
}
