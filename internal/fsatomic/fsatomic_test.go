package fsatomic

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// payload builds a JSON document whose size differs per writer: torn
// mixes of two payloads (a short rename landing over a longer write, or
// interleaved truncate/write on a shared temp) fail to parse, so "every
// observed read is valid JSON equal to some writer's full payload" is a
// sharp detector for the fixed-temp-name corruption.
func payload(writer, rev int) []byte {
	doc := map[string]any{
		"writer": writer,
		"rev":    rev,
		"pad":    bytes.Repeat([]byte{'x'}, 64*(writer+1)),
	}
	b, err := json.Marshal(doc)
	if err != nil {
		panic(err)
	}
	return b
}

// TestConcurrentWritersOnePath is the regression test for the daemon's
// multi-writer scenario: before WriteFileAtomic moved to unique temp
// files, all writers to one path shared "path.tmp", and a writer could
// rename a temp that another writer had already truncated and was
// rewriting — publishing torn bytes. With per-writer temps every rename
// publishes a complete, synced payload, so each read must parse.
func TestConcurrentWritersOnePath(t *testing.T) {
	const writers, revs = 8, 40
	path := filepath.Join(t.TempDir(), "state.json")
	if err := WriteFile(path, payload(0, 0)); err != nil {
		t.Fatalf("seed write: %v", err)
	}

	valid := make(map[string]bool)
	for w := 0; w < writers; w++ {
		for r := 0; r < revs; r++ {
			valid[string(payload(w, r))] = true
		}
	}

	// A reader races the writers, checking that every state it observes
	// is one writer's complete payload — never a torn interleaving. It
	// stops only after all writers return, so it samples the whole
	// contention window.
	stop := make(chan struct{})
	readerDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				readerDone <- nil
				return
			default:
			}
			b, err := os.ReadFile(path)
			if err != nil {
				// A reader can catch the instant between unlink and link
				// on some platforms; absence is not corruption.
				if os.IsNotExist(err) {
					continue
				}
				readerDone <- err
				return
			}
			if !json.Valid(b) {
				readerDone <- fmt.Errorf("observed torn/garbage JSON (%d bytes): %q", len(b), truncate(b, 120))
				return
			}
			if !valid[string(b)] {
				readerDone <- fmt.Errorf("observed bytes matching no writer's payload: %q", truncate(b, 120))
				return
			}
		}
	}()

	var wg sync.WaitGroup
	var werr error
	var werrOnce sync.Once
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < revs; r++ {
				if err := WriteFile(path, payload(w, r)); err != nil {
					werrOnce.Do(func() { werr = err })
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if err := <-readerDone; err != nil {
		t.Fatalf("reader: %v", err)
	}
	if werr != nil {
		t.Fatalf("writer failed: %v", werr)
	}

	final, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	if !valid[string(final)] {
		t.Fatalf("final state matches no writer's payload: %q", truncate(final, 120))
	}
	// No temp debris: error paths and completed renames both clean up.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if IsTemp(e.Name()) {
			t.Errorf("leaked temp file %s", e.Name())
		}
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}

func TestWriteFileReplacesAndChmods(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFile(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "two" {
		t.Fatalf("got %q, want %q", b, "two")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("mode = %v, want 0644 (CreateTemp's 0600 must not leak through)", fi.Mode().Perm())
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil {
		t.Fatal("want error writing into a missing directory")
	}
}

func TestCleanOrphans(t *testing.T) {
	root := t.TempDir()
	sub := filepath.Join(root, "simulate", "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	keep := []string{
		filepath.Join(root, "state.json"),
		filepath.Join(sub, "deadbeef.json"),
	}
	orphans := []string{
		filepath.Join(root, "state.json.tmp-123456"),
		filepath.Join(sub, "deadbeef.json.tmp-998877"),
	}
	for _, p := range append(append([]string{}, keep...), orphans...) {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	n, err := CleanOrphans(root)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(orphans) {
		t.Fatalf("removed %d orphans, want %d", n, len(orphans))
	}
	for _, p := range keep {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("kept file %s: %v", p, err)
		}
	}
	for _, p := range orphans {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived", p)
		}
	}
}

func TestCleanOrphansMissingRoot(t *testing.T) {
	n, err := CleanOrphans(filepath.Join(t.TempDir(), "never-created"))
	if err != nil {
		t.Fatalf("missing root should be a no-op, got %v", err)
	}
	if n != 0 {
		t.Fatalf("removed %d from a missing root", n)
	}
}
