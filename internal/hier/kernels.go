// Package hier dissects the memory hierarchy of the simulated devices
// with pointer-chase-style latency ladders and working-set sweeps, then
// inverts the measured curves back into the cache model that produced
// them: L1/L2 capacity, line size and associativity, and the miss-minus-
// hit latency delta — recovered from timings alone and diffed against
// the device table's ground truth (`amdmb infer`).
//
// Every measurement uses one kernel shape, the chase kernel:
//
//	t0 = sample(surface 0)              // seed fetch
//	b_i = b_{i-1} + t0  (x ballastOps)  // register ballast
//	repeat Rounds times:
//	    for each surface s: t = sample(s); acc = acc + t
//	acc = acc + b_i for every i         // pins the ballast into GPRs
//	export acc
//
// The ballast values are defined early and folded into the export chain
// at the very end, so each one is live across every clause in between
// and must hold a general-purpose register. With ballastOps >= 129 of
// them the compiler's register high-water exceeds half the 256-register
// file and occupancy pins to exactly one resident wavefront — no
// latency hiding, so the makespan divided by the fetch count is the
// per-fetch effective latency the inference reads.
//
// Surface placement rides the packed replay arena (cache.TraceConfig
// .FetchRes): surface k sits at byte offset k*SizeBytes, and SizeBytes
// is under the probe's control via the surface geometry (width W at
// height 8 makes SizeBytes = W*8*elem exactly). A probe therefore
// chooses its stride between touched footprint quanta by choosing its
// surface width — the trick that lets associativity probes drop K+1
// quanta onto the same cache sets without violating the IL rule that
// every declared input must be sampled.
package hier

import (
	"fmt"

	"amdgpubench/internal/il"
)

const (
	// probeHeight is every probe's domain height. With width a multiple
	// of 8 the 8x8 tiled layout pads nothing, so a surface's stored
	// footprint is exactly Width x 8 x elem bytes — the arena spacing
	// the packed replay derives from the layout.
	probeHeight = 8
	// ballastOps sizes the register ballast. Anything >= 129 forces the
	// per-thread GPR count past half the 256-register file on all
	// supported specs, pinning occupancy to one resident wavefront.
	ballastOps = 132
)

// Probe describes one memory-hierarchy measurement kernel: a chase over
// Surfaces input surfaces of SurfaceBytes each, Rounds times, with
// fetches issued Batch to a TEX clause. Batch 1 serializes every fetch
// behind a dependent ALU fold — the latency regime; Batch 8 packs a
// full TEX clause so the clause latency amortizes over eight fetches —
// the bandwidth regime.
type Probe struct {
	Type         il.DataType // il.Float or il.Float4
	SurfaceBytes int         // per-surface arena spacing; the wave touches the first 64*elem of it
	Surfaces     int         // distinct input surfaces (K)
	Rounds       int         // chase rounds over all surfaces (R)
	Batch        int         // fetches per TEX clause: 1 = latency, up to 8 = bandwidth
}

// ElemBytes is the fetch element size: 4 for float, 16 for float4.
func (p Probe) ElemBytes() int {
	if p.Type == il.Float4 {
		return 16
	}
	return 4
}

// QuantumBytes is one wavefront's dense footprint per surface — the
// bytes the probe actually touches out of every SurfaceBytes of arena:
// 64 lanes x elem = 256 B for float, 1 KiB for float4.
func (p Probe) QuantumBytes() int { return 64 * p.ElemBytes() }

// Width is the launch domain width that makes the surface layout span
// exactly SurfaceBytes.
func (p Probe) Width() int { return p.SurfaceBytes / (probeHeight * p.ElemBytes()) }

// Height is the launch domain height (always 8: one row of 8x8 tiles).
func (p Probe) Height() int { return probeHeight }

// Slots is the kernel's texture fetch count per wavefront: the seed
// fetch plus Rounds x Surfaces chase fetches.
func (p Probe) Slots() int { return 1 + p.Rounds*p.Surfaces }

// FootprintBytes is the total arena span the probe walks.
func (p Probe) FootprintBytes() int { return p.Surfaces * p.SurfaceBytes }

func (p Probe) validate() error {
	if p.Type != il.Float && p.Type != il.Float4 {
		return fmt.Errorf("hier: probe type must be float or float4")
	}
	q := p.QuantumBytes()
	if p.SurfaceBytes < q || p.SurfaceBytes%q != 0 {
		return fmt.Errorf("hier: surface bytes %d must be a positive multiple of the %d-byte quantum", p.SurfaceBytes, q)
	}
	if p.Surfaces < 1 {
		return fmt.Errorf("hier: need at least one surface, got %d", p.Surfaces)
	}
	if p.Rounds < 1 {
		return fmt.Errorf("hier: need at least one round, got %d", p.Rounds)
	}
	if p.Batch < 1 || p.Batch > 8 {
		return fmt.Errorf("hier: batch %d outside 1..8 (one TEX clause)", p.Batch)
	}
	return nil
}

func (p Probe) name() string {
	dt := "f"
	if p.Type == il.Float4 {
		dt = "f4"
	}
	return fmt.Sprintf("hier_%s_k%d_b%d_r%d_g%d", dt, p.Surfaces, p.SurfaceBytes, p.Rounds, p.Batch)
}

// Kernel builds the probe's chase kernel (see the package comment for
// the shape). The generated IL is validated before it is returned.
func (p Probe) Kernel() (*il.Kernel, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	k := &il.Kernel{
		Name: p.name(), Mode: il.Pixel, Type: p.Type,
		NumInputs: p.Surfaces, NumOutputs: 1,
		InputSpace: il.TextureSpace, OutSpace: il.TextureSpace,
	}
	// Seed fetch: the ballast chains off its result, and it gives the
	// fetch schedule a repeated surface so the packed arena always
	// engages (slot 1 re-reads surface 0, so the schedule is never the
	// identity the legacy far-apart replay assumes).
	seed := il.Reg(0)
	k.Code = append(k.Code, il.Instr{Op: il.OpSample, Dst: seed, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0})
	next := il.Reg(1)

	ballast := make([]il.Reg, ballastOps)
	prev := seed
	for i := range ballast {
		k.Code = append(k.Code, il.Instr{Op: il.OpAdd, Dst: next, SrcA: prev, SrcB: seed, Res: -1})
		ballast[i] = next
		prev = next
		next++
	}

	acc := prev
	for r := 0; r < p.Rounds; r++ {
		for s := 0; s < p.Surfaces; s += p.Batch {
			n := p.Batch
			if s+n > p.Surfaces {
				n = p.Surfaces - s
			}
			base := next
			for j := 0; j < n; j++ {
				k.Code = append(k.Code, il.Instr{Op: il.OpSample, Dst: next, SrcA: il.NoReg, SrcB: il.NoReg, Res: s + j})
				next++
			}
			for j := 0; j < n; j++ {
				k.Code = append(k.Code, il.Instr{Op: il.OpAdd, Dst: next, SrcA: acc, SrcB: base + il.Reg(j), Res: -1})
				acc = next
				next++
			}
		}
	}

	// Fold every ballast value into the export chain. Each b_i now has a
	// use far past its defining clause, so the compiler must keep all of
	// them in GPRs — the whole point of the ballast.
	for _, b := range ballast {
		k.Code = append(k.Code, il.Instr{Op: il.OpAdd, Dst: next, SrcA: acc, SrcB: b, Res: -1})
		acc = next
		next++
	}
	k.Code = append(k.Code, il.Instr{Op: il.OpExport, Dst: il.NoReg, SrcA: acc, SrcB: il.NoReg, Res: 0})

	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("hier: generated invalid kernel: %w", err)
	}
	return k, nil
}
