package hier

import (
	"fmt"

	"amdgpubench/internal/core"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/raster"
	"amdgpubench/internal/sim"
)

// Env holds the launch bookkeeping that converts a probe's wall-clock
// seconds back into per-fetch cycles. These are host-visible dispatch
// parameters (clock, engine count, repetition count), not the cache
// model under test — inference recovers the cache geometry, it does not
// peek at it.
type Env struct {
	ClockMHz    int
	SIMDEngines int
	// Iterations per timed launch; zero means sim.DefaultIterations.
	Iterations int
}

// EnvFor derives the conversion environment for a spec.
func EnvFor(spec device.Spec, iterations int) Env {
	return Env{ClockMHz: spec.CoreClockMHz, SIMDEngines: spec.SIMDEngines, Iterations: iterations}
}

// Lambda converts a probe's timing into effective cycles per fetch: the
// per-wave clause makespan (launch overhead stripped, wave batches
// un-replicated) divided by the fetch slot count. The probes' ballast
// pins residency to one wavefront, so every batch of the launch runs
// the identical single-wave makespan and the division is exact.
func (e Env) Lambda(p Probe, seconds float64) float64 {
	iters := e.Iterations
	if iters == 0 {
		iters = sim.DefaultIterations
	}
	perLaunch := seconds * float64(e.ClockMHz) * 1e6 / float64(iters)
	waves := p.Width() * p.Height() / raster.WavefrontSize
	if waves < 1 {
		waves = 1
	}
	batches := (waves + e.SIMDEngines - 1) / e.SIMDEngines
	makespan := (perLaunch - float64(sim.LaunchOverheadCycles)) / float64(batches)
	return makespan / float64(p.Slots())
}

// FetchedBytes is the total bytes the probe's launch fetches per
// iteration: every fetch slot of every wavefront pulls one 64-lane
// quantum.
func (e Env) FetchedBytes(p Probe) float64 {
	waves := p.Width() * p.Height() / raster.WavefrontSize
	if waves < 1 {
		waves = 1
	}
	return float64(p.Slots()) * float64(p.QuantumBytes()) * float64(waves)
}

// A Measurer runs one probe and returns its effective cycles per fetch.
// Inference is written against this interface so the same algorithm
// runs over the suite's staged pipeline (built-in cards) and over a
// bare simulation of an arbitrary — possibly synthetic — spec.
type Measurer func(Probe) (float64, error)

// SimMeasurer measures probes by compiling and simulating directly
// against the given spec. This is the path synthetic specs take: the
// suite's pipeline and cards key on the built-in arch enum, which a
// synthetic geometry has no entry in.
func SimMeasurer(spec device.Spec, iterations int) Measurer {
	env := EnvFor(spec, iterations)
	return func(p Probe) (float64, error) {
		k, err := p.Kernel()
		if err != nil {
			return 0, err
		}
		prog, err := ilc.Compile(k, spec)
		if err != nil {
			return 0, fmt.Errorf("hier: compiling %s: %w", k.Name, err)
		}
		res, err := sim.Run(sim.Config{
			Spec: spec, Prog: prog, Order: raster.PixelOrder(),
			W: p.Width(), H: p.Height(), Iterations: iterations,
		})
		if err != nil {
			return 0, fmt.Errorf("hier: simulating %s: %w", k.Name, err)
		}
		return env.Lambda(p, res.Seconds), nil
	}
}

// SuiteMeasurer measures probes through the suite's resilient sweep
// runner for a built-in arch — the same staged pipeline (artifact
// cache, replay-prefix snapshots, retries) the campaign scheduler uses,
// so `amdmb infer` exercises the exact path the figures are built on.
func SuiteMeasurer(s *core.Suite, arch device.Arch) Measurer {
	spec := device.Lookup(arch)
	return func(p Probe) (float64, error) {
		k, err := p.Kernel()
		if err != nil {
			return 0, err
		}
		card := core.Card{Arch: arch, Mode: il.Pixel, Type: p.Type}
		runs, err := s.RunKernelPoints([]core.KernelPoint{{
			Card: card, X: float64(p.FootprintBytes()),
			K: k, W: p.Width(), H: p.Height(),
		}})
		if err != nil {
			return 0, err
		}
		if runs[0].Failed() {
			return 0, fmt.Errorf("hier: probe %s on %s: %s", k.Name, card.Label(), runs[0].Err)
		}
		return EnvFor(spec, s.Iterations).Lambda(p, runs[0].Seconds), nil
	}
}
