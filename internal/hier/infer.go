package hier

import (
	"fmt"
	"math"
	"sort"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
)

// Probe schedule constants. Rounds are chosen so the hot-state cold-miss
// fraction (lines-per-quantum / rounds, the texture latency blend the
// simulator exposes) stays well below saturation where the curve still
// has to distinguish hot from thrashed, and high enough that a thrashed
// point saturates.
const (
	l1Rounds     = 32  // float probes: <= 8 lines/quantum, blend <= 1/4 hot
	hotRounds    = 64  // second R for the hot-latency extrapolation
	lineRoundsLo = 64  // float4 line probe: <= 32 lines/quantum
	lineRoundsHi = 128 // twice lineRoundsLo; the blend halves, the rest cancels
	l2Rounds     = 4   // dense L2 capacity sweep: amortizes cold DRAM traffic
	l2WayRounds  = 64  // L2 associativity gap probes

	floatQuantum  = 256  // bytes one wavefront touches per float surface
	float4Quantum = 1024 // and per float4 surface

	// l2ChunkBytes is the L2 capacity search granularity. One chunk is
	// at least one full L2 way-stripe (capacity/ways <= 32 KiB on every
	// supported geometry), so the first footprint one chunk past
	// capacity overloads every set and the knee is a full-thrash step,
	// not a partial one.
	l2ChunkBytes = 32 << 10

	// l2Jump is the cycles-per-fetch step that marks DRAM entering the
	// ladder. The smallest step any supported geometry produces is a
	// ~35-cycle per-fetch DRAM occupancy increase; plateau drift is
	// under 10 cycles and points the other way.
	l2Jump = 25.0
)

// Config bounds the inference search.
type Config struct {
	// MaxL1Bytes caps the L1 capacity doubling search; zero means 64 KiB.
	MaxL1Bytes int
	// MaxL2Bytes caps the L2 capacity search; zero means 1 MiB.
	MaxL2Bytes int
	// WayCandidates are the L1 associativities tried, in any order —
	// the scan sorts them and takes the smallest thrashing candidate,
	// so inference is invariant under permutations of this schedule
	// (the metamorphic suite checks exactly that). Nil means {2,4,8,16}.
	WayCandidates []int
}

func (c Config) withDefaults() Config {
	if c.MaxL1Bytes == 0 {
		c.MaxL1Bytes = 64 << 10
	}
	if c.MaxL2Bytes == 0 {
		c.MaxL2Bytes = 1 << 20
	}
	if c.WayCandidates == nil {
		c.WayCandidates = []int{2, 4, 8, 16}
	}
	return c
}

// Inferred is a cache model recovered from timing curves alone.
type Inferred struct {
	L1Bytes     int
	L1LineBytes int
	L1Ways      int
	L2Bytes     int
	L2Ways      int
	// MissDelta estimates TexMissLatency - TexHitLatency in cycles. It
	// carries the L2-fill and cold-DRAM occupancy of the thrashed
	// reference point as a small positive bias (under ~10%).
	MissDelta float64
	// HotLatency and MissLatency are the measured per-fetch band levels
	// the associativity probes threshold between (diagnostics).
	HotLatency  float64
	MissLatency float64
	Probes      int // distinct probe kernels measured
}

// session wraps a Measurer with memoization and a probe counter, so
// band references reused across stages cost one simulation.
type session struct {
	m    Measurer
	memo map[Probe]float64
}

func (s *session) lambda(p Probe) (float64, error) {
	if v, ok := s.memo[p]; ok {
		return v, nil
	}
	v, err := s.m(p)
	if err != nil {
		return 0, err
	}
	s.memo[p] = v
	return v, nil
}

// Infer recovers the cache model behind a Measurer. The supported
// geometry space (every built-in spec and every SynthSpec sits inside
// it) is: power-of-two L1 of at least 4 KiB with capacity/ways >= 256,
// line size 32..128, L2 a multiple of 32 KiB with at least 4x the L1
// capacity and at least twice its associativity, and a miss-hit latency
// delta of at least ~300 cycles.
func Infer(m Measurer, cfg Config) (Inferred, error) {
	cfg = cfg.withDefaults()
	s := &session{m: m, memo: map[Probe]float64{}}
	var inf Inferred

	// --- L1 capacity: dense float ladder, doubling bracket + bisection.
	// One footprint quantum past capacity overloads a slice of sets by a
	// whole line-group, which bumps the program's miss blend by >= ~14
	// cycles — far above the in-plateau drift, which is downward (the
	// prologue amortizes away as the fetch count grows).
	hotProbe := Probe{Type: il.Float, SurfaceBytes: floatQuantum, Surfaces: 2, Rounds: l1Rounds, Batch: 1}
	hot, err := s.lambda(hotProbe)
	if err != nil {
		return inf, err
	}
	maxN := 2 * cfg.MaxL1Bytes / floatQuantum
	good, goodL := 2, hot
	bad, badL := 0, 0.0
	for n := 4; ; n *= 2 {
		if n > maxN {
			return inf, fmt.Errorf("hier: no L1 capacity knee up to %d bytes", cfg.MaxL1Bytes)
		}
		l, err := s.lambda(denseFloat(n))
		if err != nil {
			return inf, err
		}
		if l > hot*1.3 {
			bad, badL = n, l
			break
		}
		good, goodL = n, l
	}
	margin := math.Max(2, 0.01*(badL-goodL))
	for bad-good > 1 {
		mid := (good + bad) / 2
		l, err := s.lambda(denseFloat(mid))
		if err != nil {
			return inf, err
		}
		if l > goodL+margin {
			bad = mid
		} else {
			good, goodL = mid, l
		}
	}
	inf.L1Bytes = good * floatQuantum

	// --- Latency bands: the thrashed reference sits past 2x L1 but
	// within L2 (the geometry precondition L2 >= 4x L1 guarantees room),
	// so it is the L1-miss/L2-hit band, polluted only by L2 fill.
	nThrash := 2*inf.L1Bytes/floatQuantum + 2
	miss, err := s.lambda(denseFloat(nThrash))
	if err != nil {
		return inf, err
	}
	inf.HotLatency, inf.MissLatency = hot, miss

	// --- L1 associativity: w+1 quanta spaced capacity/w apart all alias
	// the same sets, so the probe thrashes exactly when w >= the true
	// way count. Candidates are sorted before scanning and the smallest
	// thrashing one wins, so the result is invariant under permutations
	// of the candidate schedule (the metamorphic suite checks that).
	thresh := (hot + miss) / 2
	sorted := append([]int(nil), cfg.WayCandidates...)
	sort.Ints(sorted)
	for _, w := range sorted {
		if w < 1 || inf.L1Bytes%w != 0 {
			continue
		}
		gap := inf.L1Bytes / w
		if gap < floatQuantum || gap%floatQuantum != 0 {
			continue // w larger than the geometry admits; cannot be the answer
		}
		l, err := s.lambda(Probe{Type: il.Float, SurfaceBytes: gap, Surfaces: w + 1, Rounds: l1Rounds, Batch: 1})
		if err != nil {
			return inf, err
		}
		if l > thresh {
			inf.L1Ways = w
			break
		}
	}
	if inf.L1Ways == 0 {
		return inf, fmt.Errorf("hier: no L1 associativity signal among candidates %v", cfg.WayCandidates)
	}

	// --- Line size, by blend inversion. A hot float4 probe's only
	// misses are the cold first round, a fraction lines/(rounds*N) of
	// its fetches, so lambda(R) = base + coldFrac(R)*delta: two R points
	// give the cold-miss slope, a thrashed reference (still L2-resident,
	// so barely polluted) gives delta, and the ratio is the line count
	// per 1 KiB quantum — which only the line size sets.
	pLo := Probe{Type: il.Float4, SurfaceBytes: float4Quantum, Surfaces: 2, Rounds: lineRoundsLo, Batch: 1}
	pHi := Probe{Type: il.Float4, SurfaceBytes: float4Quantum, Surfaces: 2, Rounds: lineRoundsHi, Batch: 1}
	lLo, err := s.lambda(pLo)
	if err != nil {
		return inf, err
	}
	lHi, err := s.lambda(pHi)
	if err != nil {
		return inf, err
	}
	nLine := 2*inf.L1Bytes/float4Quantum + 2
	lThrash, err := s.lambda(Probe{Type: il.Float4, SurfaceBytes: float4Quantum, Surfaces: nLine, Rounds: lineRoundsLo, Batch: 1})
	if err != nil {
		return inf, err
	}
	delta := lThrash - (2*lHi - lLo)
	diff := lLo - lHi
	if delta <= 0 || diff <= 0 {
		return inf, fmt.Errorf("hier: line-size blend inverted: delta %.2f diff %.2f", delta, diff)
	}
	const n = 2.0
	factor := 1 / (n/(1+float64(lineRoundsLo)*n) - n/(1+float64(lineRoundsHi)*n))
	lines := diff / delta * factor
	lg := int(math.Round(math.Log2(lines)))
	if lg < 3 {
		lg = 3
	} else if lg > 5 {
		lg = 5
	}
	inf.L1LineBytes = float4Quantum >> uint(lg)

	// --- L2 capacity: dense float4 ladder stepped in 32 KiB chunks.
	// Past L1 the texture latency and L2 fill occupancy are constant;
	// the knee is DRAM occupancy appearing, and at chunk granularity it
	// is a full-thrash step, so a midpoint threshold bisects it exactly.
	chunkQ := l2ChunkBytes / float4Quantum
	n0 := (4*inf.L1Bytes/float4Quantum + chunkQ - 1) / chunkQ * chunkQ
	if n0 < chunkQ {
		n0 = chunkQ
	}
	baseL, err := s.lambda(denseFloat4(n0))
	if err != nil {
		return inf, err
	}
	maxQ := 2 * cfg.MaxL2Bytes / float4Quantum
	good, goodL = n0, baseL
	bad, badL = 0, 0
	for step := chunkQ; ; step *= 2 {
		nq := n0 + step
		if nq > maxQ {
			return inf, fmt.Errorf("hier: no L2 capacity knee up to %d bytes", cfg.MaxL2Bytes)
		}
		l, err := s.lambda(denseFloat4(nq))
		if err != nil {
			return inf, err
		}
		if l > baseL+l2Jump {
			bad, badL = nq, l
			break
		}
		good, goodL = nq, l
	}
	midThresh := (goodL + badL) / 2
	for bad-good > chunkQ {
		mid := good + (bad-good)/2/chunkQ*chunkQ
		l, err := s.lambda(denseFloat4(mid))
		if err != nil {
			return inf, err
		}
		if l > midThresh {
			bad = mid
		} else {
			good = mid
		}
	}
	inf.L2Bytes = good * float4Quantum

	// --- L2 associativity: K quanta spaced a full L2 capacity apart
	// alias one set-group in both caches. The L1 is thrashed throughout
	// (K > L1 ways), so the only moving part is whether K lines fit in
	// an L2 set — the first K that spills to DRAM is ways+1.
	kRef := 2 * inf.L1Ways
	ref, err := s.lambda(l2Gap(inf.L2Bytes, kRef))
	if err != nil {
		return inf, err
	}
	for k := kRef + 1; k <= 17; k++ {
		l, err := s.lambda(l2Gap(inf.L2Bytes, k))
		if err != nil {
			return inf, err
		}
		if l > ref+l2Jump {
			inf.L2Ways = k - 1
			break
		}
	}
	if inf.L2Ways == 0 {
		return inf, fmt.Errorf("hier: no L2 associativity signal up to 16 ways")
	}

	// --- Miss latency delta: the thrashed float band minus the
	// zero-cold-miss extrapolation of the hot float band.
	hot2, err := s.lambda(Probe{Type: il.Float, SurfaceBytes: floatQuantum, Surfaces: 2, Rounds: hotRounds, Batch: 1})
	if err != nil {
		return inf, err
	}
	inf.MissDelta = miss - (2*hot2 - hot)
	inf.Probes = len(s.memo)
	return inf, nil
}

func denseFloat(n int) Probe {
	return Probe{Type: il.Float, SurfaceBytes: floatQuantum, Surfaces: n, Rounds: l1Rounds, Batch: 1}
}

func denseFloat4(n int) Probe {
	return Probe{Type: il.Float4, SurfaceBytes: float4Quantum, Surfaces: n, Rounds: l2Rounds, Batch: 1}
}

func l2Gap(l2Bytes, k int) Probe {
	return Probe{Type: il.Float4, SurfaceBytes: l2Bytes, Surfaces: k, Rounds: l2WayRounds, Batch: 1}
}

// MissDeltaTolerance is the relative tolerance Diff allows on the
// inferred miss-hit latency delta: the estimate carries the thrashed
// band's L2-fill and cold-DRAM occupancy as positive bias, bounded by
// ~10% across the supported geometry space.
const MissDeltaTolerance = 0.15

// Mismatch is one inferred parameter that disagrees with ground truth.
type Mismatch struct {
	Param     string
	Got, Want float64
	Tol       float64 // relative tolerance; 0 means exact
}

func (m Mismatch) String() string {
	if m.Tol == 0 {
		return fmt.Sprintf("%s: inferred %g, device says %g", m.Param, m.Got, m.Want)
	}
	return fmt.Sprintf("%s: inferred %g, device says %g (tolerance %g%%)", m.Param, m.Got, m.Want, m.Tol*100)
}

// Diff compares the inferred model against a spec's ground truth:
// capacities, line size and associativities bit-exactly, the latency
// delta within MissDeltaTolerance. An empty result is a proof the
// measured curves and the device table agree.
func (inf Inferred) Diff(spec device.Spec) []Mismatch {
	var ms []Mismatch
	exact := func(param string, got, want int) {
		if got != want {
			ms = append(ms, Mismatch{Param: param, Got: float64(got), Want: float64(want)})
		}
	}
	exact("l1-bytes", inf.L1Bytes, spec.L1CacheBytes)
	exact("l1-line-bytes", inf.L1LineBytes, spec.L1LineBytes)
	exact("l1-ways", inf.L1Ways, spec.L1Ways)
	exact("l2-bytes", inf.L2Bytes, spec.L2CacheBytes)
	exact("l2-ways", inf.L2Ways, spec.L2Ways)
	want := float64(spec.TexMissLatency - spec.TexHitLatency)
	if math.Abs(inf.MissDelta-want) > MissDeltaTolerance*want {
		ms = append(ms, Mismatch{Param: "miss-delta", Got: inf.MissDelta, Want: want, Tol: MissDeltaTolerance})
	}
	return ms
}
