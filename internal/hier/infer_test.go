package hier

import (
	"fmt"
	"testing"

	"amdgpubench/internal/core"
	"amdgpubench/internal/device"
)

// inferIters keeps test probes cheap: the simulation is deterministic,
// so the per-launch cycle counts — and therefore the inference — are
// identical at any iteration count.
const inferIters = 100

// TestInferBuiltinsExact is the suite proving its own cache model: for
// every built-in device, inference over measured curves alone must
// recover L1/L2 capacity, line size and associativity bit-exactly, and
// the miss-hit latency delta within tolerance.
func TestInferBuiltinsExact(t *testing.T) {
	for _, spec := range device.All() {
		spec := spec
		t.Run(spec.Arch.CardName(), func(t *testing.T) {
			t.Parallel()
			inf, err := Infer(SimMeasurer(spec, inferIters), Config{})
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range inf.Diff(spec) {
				t.Error(m)
			}
			if inf.Probes == 0 {
				t.Error("inference reported zero probes")
			}
		})
	}
}

// TestInferBuiltinsThroughSuite runs one arch's inference through the
// suite's staged pipeline — the artifact-cached, prefix-snapshotting
// path `amdmb infer` uses — and checks it agrees with the direct
// simulation path probe for probe.
func TestInferBuiltinsThroughSuite(t *testing.T) {
	s := core.NewSuite()
	s.Iterations = inferIters
	arch := device.RV870
	viaSuite, err := Infer(SuiteMeasurer(s, arch), Config{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Infer(SimMeasurer(device.Lookup(arch), inferIters), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if viaSuite != direct {
		t.Errorf("suite path inferred %+v,\ndirect path %+v", viaSuite, direct)
	}
	if ms := viaSuite.Diff(device.Lookup(arch)); len(ms) > 0 {
		for _, m := range ms {
			t.Error(m)
		}
	}
}

// TestInferSynthetics is the property test: ~50 seeded synthetic cache
// geometries drawn from the supported space, every one recovered
// exactly. Table-driven so CI can run it under -race.
func TestInferSynthetics(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			spec := SynthSpec(seed)
			if err := spec.Validate(); err != nil {
				t.Fatalf("synthetic spec invalid: %v", err)
			}
			inf, err := Infer(SimMeasurer(spec, inferIters), Config{})
			if err != nil {
				t.Fatalf("C1=%d L=%d w1=%d C2=%d w2=%d: %v",
					spec.L1CacheBytes, spec.L1LineBytes, spec.L1Ways,
					spec.L2CacheBytes, spec.L2Ways, err)
			}
			for _, m := range inf.Diff(spec) {
				t.Errorf("C1=%d L=%d w1=%d C2=%d w2=%d: %s",
					spec.L1CacheBytes, spec.L1LineBytes, spec.L1Ways,
					spec.L2CacheBytes, spec.L2Ways, m)
			}
		})
	}
}

func TestSynthSpecDeterministicAndInSpace(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		a, b := SynthSpec(seed), SynthSpec(seed)
		if a != b {
			t.Fatalf("seed %d: SynthSpec not deterministic", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.L1CacheBytes < 4<<10 || a.L1CacheBytes > 32<<10 {
			t.Errorf("seed %d: L1 %d outside [4K,32K]", seed, a.L1CacheBytes)
		}
		if a.L2CacheBytes < 4*a.L1CacheBytes || a.L2CacheBytes%(32<<10) != 0 {
			t.Errorf("seed %d: L2 %d violates multiple-of-32K >= 4xL1", seed, a.L2CacheBytes)
		}
		if a.L2Ways < 2*a.L1Ways || a.L2Ways > 16 {
			t.Errorf("seed %d: L2 ways %d outside [2x%d,16]", seed, a.L2Ways, a.L1Ways)
		}
		if d := a.TexMissLatency - a.TexHitLatency; d < 300 {
			t.Errorf("seed %d: miss delta %d below 300", seed, d)
		}
	}
}

// TestDiffFlagsMismatches: Diff must actually catch a wrong model — the
// exit-nonzero contract of `amdmb infer` rests on it.
func TestDiffFlagsMismatches(t *testing.T) {
	spec := device.Lookup(device.RV770)
	inf := Inferred{
		L1Bytes: spec.L1CacheBytes * 2, L1LineBytes: spec.L1LineBytes,
		L1Ways: spec.L1Ways, L2Bytes: spec.L2CacheBytes, L2Ways: spec.L2Ways,
		MissDelta: float64(spec.TexMissLatency-spec.TexHitLatency) * 2,
	}
	ms := inf.Diff(spec)
	if len(ms) != 2 {
		t.Fatalf("got %d mismatches %v, want 2 (l1-bytes, miss-delta)", len(ms), ms)
	}
	if ms[0].Param != "l1-bytes" || ms[1].Param != "miss-delta" {
		t.Errorf("mismatch params %v", ms)
	}
	exactMatch := Inferred{
		L1Bytes: spec.L1CacheBytes, L1LineBytes: spec.L1LineBytes,
		L1Ways: spec.L1Ways, L2Bytes: spec.L2CacheBytes, L2Ways: spec.L2Ways,
		MissDelta: float64(spec.TexMissLatency - spec.TexHitLatency),
	}
	if ms := exactMatch.Diff(spec); len(ms) != 0 {
		t.Errorf("exact model reported mismatches: %v", ms)
	}
}
