package hier

import (
	"fmt"

	"amdgpubench/internal/core"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/report"
	"amdgpubench/internal/sim"
)

// The hierarchy figures are campaign-grade core.FigureSpecs: their
// points run through the same deduplicated scheduler, replay-prefix
// snapshots and shard partitioning as the paper's figures, and their
// Finish closures convert wall-clock seconds into the per-fetch cycle
// and bandwidth units the dissection argues in.

// footprintGridKB is the working-set sweep for the ladder figures, in
// KiB (one float4 surface quantum per KiB). It spans every built-in
// L1 (8-16 KiB) and L2 (128-512 KiB) with log-spaced coverage on both
// sides of each boundary, ending past the largest L2.
var footprintGridKB = []int{2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 640, 768}

// lineRoundsGrid is the hier-line figure's rounds sweep: the cold-miss
// fraction decays as 1/R, which is the structure the line-size
// inference inverts.
var lineRoundsGrid = []int{16, 32, 64, 128, 256}

// strideWaysGrid is the hier-stride figure's candidate associativity
// sweep.
var strideWaysGrid = []int{1, 2, 4, 8, 16}

// hierSpec assembles a figure spec whose Finish converts each run with
// a per-point closure, aligned index-for-index with the points.
func hierSpec(fig *report.Figure, pts []core.KernelPoint, y []func(core.Run) float64) core.FigureSpec {
	return core.FigureSpec{
		Fig:    fig,
		Points: pts,
		Finish: func(fig *report.Figure, runs []core.Run) {
			var cur *report.Series
			started := false
			var last core.Card
			for i, r := range runs {
				if !started || r.Card != last {
					cur = fig.AddSeries(r.Card.Label())
					last, started = r.Card, true
				}
				if r.Failed() {
					continue
				}
				cur.Add(r.X, y[i](r))
			}
		},
	}
}

type pointSink struct {
	s   *core.Suite
	pts []core.KernelPoint
	y   []func(core.Run) float64
	err error
}

// add plans one probe point: X is the plotted abscissa, the Y converter
// maps the run's seconds into the figure's unit.
func (ps *pointSink) add(arch device.Arch, p Probe, x float64, conv func(Env, Probe, core.Run) float64) {
	if ps.err != nil {
		return
	}
	k, err := p.Kernel()
	if err != nil {
		ps.err = err
		return
	}
	env := EnvFor(device.Lookup(arch), ps.s.Iterations)
	ps.pts = append(ps.pts, core.KernelPoint{
		Card: core.Card{Arch: arch, Mode: il.Pixel, Type: p.Type},
		X:    x, K: k, W: p.Width(), H: p.Height(),
	})
	ps.y = append(ps.y, func(r core.Run) float64 { return conv(env, p, r) })
}

func lambdaOf(env Env, p Probe, r core.Run) float64 { return env.Lambda(p, r.Seconds) }

func gbpsOf(env Env, p Probe, r core.Run) float64 {
	iters := env.Iterations
	if iters == 0 {
		iters = sim.DefaultIterations
	}
	return env.FetchedBytes(p) * float64(iters) / r.Seconds / 1e9
}

// LatencyLadderSpec plans hier-lat: the pointer-chase latency ladder.
// Dense float4 footprints sweep across the L1 and L2 boundaries; the
// per-fetch latency steps from the hot band through the L2 band to
// DRAM, and report.Plateaus segments exactly those steps.
func LatencyLadderSpec(s *core.Suite) (core.FigureSpec, error) {
	fig := &report.Figure{
		ID: "hier-lat", Title: "Memory hierarchy latency ladder (chase, float4)",
		XLabel: "footprint KB", YLabel: "cycles/fetch",
	}
	ps := &pointSink{s: s}
	for _, spec := range device.All() {
		for _, kb := range footprintGridKB {
			p := Probe{Type: il.Float4, SurfaceBytes: float4Quantum, Surfaces: kb, Rounds: lineRoundsLo, Batch: 1}
			ps.add(spec.Arch, p, float64(kb), lambdaOf)
		}
	}
	return hierSpec(fig, ps.pts, ps.y), ps.err
}

// WorkingSetSpec plans hier-wset: the same footprint sweep with eight
// fetches per TEX clause, so clause latency amortizes and the curve
// reads as effective fetch bandwidth per level.
func WorkingSetSpec(s *core.Suite) (core.FigureSpec, error) {
	fig := &report.Figure{
		ID: "hier-wset", Title: "Working-set bandwidth (batched fetch, float4)",
		XLabel: "footprint KB", YLabel: "GB/s",
	}
	ps := &pointSink{s: s}
	for _, spec := range device.All() {
		for _, kb := range footprintGridKB {
			p := Probe{Type: il.Float4, SurfaceBytes: float4Quantum, Surfaces: kb, Rounds: 2, Batch: 8}
			ps.add(spec.Arch, p, float64(kb), gbpsOf)
		}
	}
	return hierSpec(fig, ps.pts, ps.y), ps.err
}

// LineBlendSpec plans hier-line: a hot two-surface float4 chase whose
// only misses are the first round's cold lines. Per-fetch latency
// decays toward the pure-hit floor as rounds grow; the decay amplitude
// is proportional to lines-per-quantum — the line-size signal the
// inference inverts.
func LineBlendSpec(s *core.Suite) (core.FigureSpec, error) {
	fig := &report.Figure{
		ID: "hier-line", Title: "Cold-miss blend decay (hot chase, float4, 2 surfaces)",
		XLabel: "rounds", YLabel: "cycles/fetch",
	}
	ps := &pointSink{s: s}
	for _, spec := range device.All() {
		for _, r := range lineRoundsGrid {
			p := Probe{Type: il.Float4, SurfaceBytes: float4Quantum, Surfaces: 2, Rounds: r, Batch: 1}
			ps.add(spec.Arch, p, float64(r), lambdaOf)
		}
	}
	return hierSpec(fig, ps.pts, ps.y), ps.err
}

// StrideResonanceSpec plans hier-stride: for each candidate way count w,
// w+1 quanta strided L1-capacity/w apart — all aliasing the same sets.
// The curve steps from the hot band to the miss band exactly at the
// card's true associativity.
func StrideResonanceSpec(s *core.Suite) (core.FigureSpec, error) {
	fig := &report.Figure{
		ID: "hier-stride", Title: "Stride resonance: conflict set vs candidate ways (float)",
		XLabel: "candidate ways", YLabel: "cycles/fetch",
	}
	ps := &pointSink{s: s}
	for _, spec := range device.All() {
		for _, w := range strideWaysGrid {
			gap := spec.L1CacheBytes / w
			if gap < floatQuantum || gap%floatQuantum != 0 {
				continue
			}
			p := Probe{Type: il.Float, SurfaceBytes: gap, Surfaces: w + 1, Rounds: l1Rounds, Batch: 1}
			ps.add(spec.Arch, p, float64(w), lambdaOf)
		}
	}
	return hierSpec(fig, ps.pts, ps.y), ps.err
}

// InferArch runs the full inference against a built-in card through the
// suite's pipeline and diffs it against the device table. It returns
// the recovered model and the mismatches (empty = proof of agreement).
func InferArch(s *core.Suite, arch device.Arch, cfg Config) (Inferred, []Mismatch, error) {
	inf, err := Infer(SuiteMeasurer(s, arch), cfg)
	if err != nil {
		return inf, nil, fmt.Errorf("inferring %s: %w", arch.CardName(), err)
	}
	return inf, inf.Diff(device.Lookup(arch)), nil
}
