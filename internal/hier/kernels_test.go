package hier

import (
	"strings"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/raster"
	"amdgpubench/internal/sim"
)

func TestProbeGeometry(t *testing.T) {
	cases := []struct {
		p           Probe
		width, slot int
	}{
		{Probe{Type: il.Float, SurfaceBytes: 256, Surfaces: 2, Rounds: 32, Batch: 1}, 8, 65},
		{Probe{Type: il.Float4, SurfaceBytes: 1024, Surfaces: 16, Rounds: 4, Batch: 1}, 8, 65},
		{Probe{Type: il.Float, SurfaceBytes: 2048, Surfaces: 9, Rounds: 32, Batch: 1}, 64, 289},
		{Probe{Type: il.Float4, SurfaceBytes: 512 << 10, Surfaces: 17, Rounds: 64, Batch: 1}, 4096, 1089},
	}
	for _, c := range cases {
		if got := c.p.Width(); got != c.width {
			t.Errorf("%+v: width %d, want %d", c.p, got, c.width)
		}
		if got := c.p.Slots(); got != c.slot {
			t.Errorf("%+v: slots %d, want %d", c.p, got, c.slot)
		}
		if got := c.p.Width() * c.p.Height() * c.p.ElemBytes(); got != c.p.SurfaceBytes {
			t.Errorf("%+v: layout spans %d bytes, want %d", c.p, got, c.p.SurfaceBytes)
		}
	}
}

func TestProbeValidate(t *testing.T) {
	bad := []Probe{
		{Type: il.Float, SurfaceBytes: 128, Surfaces: 2, Rounds: 4, Batch: 1},  // below quantum
		{Type: il.Float, SurfaceBytes: 384, Surfaces: 2, Rounds: 4, Batch: 1},  // not a quantum multiple
		{Type: il.Float4, SurfaceBytes: 512, Surfaces: 2, Rounds: 4, Batch: 1}, // float4 quantum is 1024
		{Type: il.Float, SurfaceBytes: 256, Surfaces: 0, Rounds: 4, Batch: 1},
		{Type: il.Float, SurfaceBytes: 256, Surfaces: 2, Rounds: 0, Batch: 1},
		{Type: il.Float, SurfaceBytes: 256, Surfaces: 2, Rounds: 4, Batch: 9},
	}
	for _, p := range bad {
		if _, err := p.Kernel(); err == nil {
			t.Errorf("%+v: kernel built from invalid probe", p)
		}
	}
}

// TestChaseKernelPinsOneWavefront is the load-bearing property of every
// probe: the ballast must force enough GPRs that occupancy is exactly
// one resident wavefront on every supported spec — otherwise latency
// hiding corrupts the per-fetch arithmetic.
func TestChaseKernelPinsOneWavefront(t *testing.T) {
	probes := []Probe{
		{Type: il.Float, SurfaceBytes: 256, Surfaces: 2, Rounds: 32, Batch: 1},
		{Type: il.Float4, SurfaceBytes: 1024, Surfaces: 64, Rounds: 4, Batch: 1},
		{Type: il.Float4, SurfaceBytes: 1024, Surfaces: 32, Rounds: 2, Batch: 8},
	}
	for _, spec := range device.All() {
		for _, p := range probes {
			k, err := p.Kernel()
			if err != nil {
				t.Fatalf("%s %+v: %v", spec.Arch.CardName(), p, err)
			}
			prog, err := ilc.Compile(k, spec)
			if err != nil {
				t.Fatalf("%s %s: %v", spec.Arch.CardName(), k.Name, err)
			}
			if prog.GPRCount < ballastOps {
				t.Errorf("%s %s: %d GPRs, ballast of %d not pinned", spec.Arch.CardName(), k.Name, prog.GPRCount, ballastOps)
			}
			if waves := spec.WavefrontsForGPRs(prog.GPRCount); waves != 1 {
				t.Errorf("%s %s: %d resident wavefronts, want 1", spec.Arch.CardName(), k.Name, waves)
			}
		}
	}
}

// TestChaseKernelScheduleIsPacked: the chase kernel's fetch schedule
// revisits surfaces, so the simulator must derive a non-identity
// FetchRes schedule and replay the packed arena.
func TestChaseKernelSchedulePacked(t *testing.T) {
	spec := device.Lookup(device.RV770)
	p := Probe{Type: il.Float, SurfaceBytes: 256, Surfaces: 3, Rounds: 2, Batch: 1}
	k, err := p.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ilc.Compile(k, spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Spec: spec, Prog: prog, Order: raster.PixelOrder(), W: p.Width(), H: p.Height()}
	tc, ok := sim.TraceConfigFor(cfg)
	if !ok {
		t.Fatal("chase kernel has no trace config")
	}
	want := []int{0, 0, 1, 2, 0, 1, 2}
	if len(tc.FetchRes) != len(want) {
		t.Fatalf("schedule %v, want %v", tc.FetchRes, want)
	}
	for i, r := range want {
		if tc.FetchRes[i] != r {
			t.Fatalf("schedule %v, want %v", tc.FetchRes, want)
		}
	}
	if tc.NumInputs != p.Slots() {
		t.Errorf("trace slots %d, want %d", tc.NumInputs, p.Slots())
	}
}

func TestProbeKernelName(t *testing.T) {
	p := Probe{Type: il.Float4, SurfaceBytes: 1024, Surfaces: 5, Rounds: 7, Batch: 8}
	k, err := p.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k.Name, "f4") || !strings.Contains(k.Name, "k5") {
		t.Errorf("kernel name %q does not encode the probe", k.Name)
	}
}
