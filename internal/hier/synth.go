package hier

import (
	"math/rand"

	"amdgpubench/internal/device"
)

// SynthSpec derives a synthetic cache geometry from a seed,
// deterministically: same seed, same spec. The geometry is drawn from
// the space Infer supports (see its doc comment) so that inference is
// expected to recover it exactly:
//
//   - line size in {32, 64, 128};
//   - L1 associativity in {2, 4, 8} with capacity a power of two in
//     [4 KiB, 32 KiB] (capacity/ways >= 512 always holds);
//   - L2 associativity a power of two in [2 x L1 ways, 16], capacity a
//     multiple of 32 KiB in [max(32 KiB, 4 x L1), 128 KiB];
//   - hit latency in [100, 400] with a miss delta in [300, 700].
//
// Everything else — engine counts, clocks, the memory system — is the
// RV770's, so the spec always passes device validation and the
// simulator's cost model stays in the regime the probes are calibrated
// for.
func SynthSpec(seed int64) device.Spec {
	rng := rand.New(rand.NewSource(seed))
	spec := device.Lookup(device.RV770)

	spec.L1LineBytes = 32 << rng.Intn(3)
	spec.L1Ways = 2 << rng.Intn(3)
	spec.L1CacheBytes = 4096 << rng.Intn(4)

	w2min := 2 * spec.L1Ways
	shifts := 0
	for w := w2min; w*2 <= 16; w *= 2 {
		shifts++
	}
	spec.L2Ways = w2min << rng.Intn(shifts+1)

	lo := 4 * spec.L1CacheBytes
	if lo < 32<<10 {
		lo = 32 << 10
	}
	var sizes []int
	for c := lo; c <= 128<<10; c += 32 << 10 {
		sizes = append(sizes, c)
	}
	spec.L2CacheBytes = sizes[rng.Intn(len(sizes))]

	spec.TexHitLatency = 100 + rng.Intn(301)
	spec.TexMissLatency = spec.TexHitLatency + 300 + rng.Intn(401)
	return spec
}
