package core

// TuneBlockSize is the "help the selection of optimization parameters"
// entry point the paper's introduction promises: given a compute-mode
// kernel, it times every 64-thread block shape and returns the best one,
// with the full trial table for the caller to inspect.

import (
	"fmt"

	"amdgpubench/internal/il"
	"amdgpubench/internal/raster"
)

// BlockTrial is one block shape's timing.
type BlockTrial struct {
	BlockW, BlockH int
	Seconds        float64
	HitRate        float64
	Bottleneck     string
}

// BlockTuneResult is the outcome of a block-size search.
type BlockTuneResult struct {
	Trials []BlockTrial
	Best   BlockTrial
	// Speedup is naive-64x1 time over best time.
	Speedup float64
}

// Order returns the winning block shape as a raster order.
func (r *BlockTuneResult) Order() (raster.Order, error) {
	return raster.ComputeOrder(r.Best.BlockW, r.Best.BlockH)
}

// TuneBlockSize times the kernel under every 64-thread block shape on the
// card's device and picks the fastest. The kernel must be a compute-mode
// kernel (pixel mode has no block choice: the rasterizer decides).
func (s *Suite) TuneBlockSize(card Card, k *il.Kernel, w, h int) (*BlockTuneResult, error) {
	if k.Mode != il.Compute {
		return nil, fmt.Errorf("core: block tuning applies to compute-mode kernels; pixel mode has no block parameter")
	}
	res := &BlockTuneResult{}
	var naive float64
	for _, b := range blockShapes {
		c := card
		c.Mode = il.Compute
		c.BlockW, c.BlockH = b.w, b.h
		run, err := s.runKernel(c, k, w, h, 0)
		if err != nil {
			return nil, err
		}
		trial := BlockTrial{
			BlockW: b.w, BlockH: b.h,
			Seconds: run.Seconds, HitRate: run.HitRate, Bottleneck: run.Bottleneck,
		}
		res.Trials = append(res.Trials, trial)
		if b.w == 64 && b.h == 1 {
			naive = run.Seconds
		}
		if res.Best.Seconds == 0 || trial.Seconds < res.Best.Seconds {
			res.Best = trial
		}
	}
	if res.Best.Seconds > 0 {
		res.Speedup = naive / res.Best.Seconds
	}
	return res, nil
}

// FormatBlockTune renders a tuning result as a table string.
func FormatBlockTune(r *BlockTuneResult) string {
	s := "block   seconds   L1 hit  bottleneck\n"
	for _, t := range r.Trials {
		marker := " "
		if t == r.Best {
			marker = "*"
		}
		s += fmt.Sprintf("%s %2dx%-2d  %8.3f  %.3f   %s\n", marker, t.BlockW, t.BlockH, t.Seconds, t.HitRate, t.Bottleneck)
	}
	s += fmt.Sprintf("best: %dx%d (%.2fx over 64x1)\n", r.Best.BlockW, r.Best.BlockH, r.Speedup)
	return s
}
