package core

import (
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/report"
)

// This file wires each paper figure to its exact configuration, so the
// CLI, the benchmarks and EXPERIMENTS.md all regenerate the same curves.
// Every figure is a FigureSpec builder plus a thin RunFigureSpec wrapper;
// the spec builders are what the campaign scheduler (internal/campaign)
// plans multi-figure runs from.

// named stamps a figure's canonical ID and title on its spec.
func named(spec FigureSpec, err error, id, title string) (FigureSpec, error) {
	if err != nil {
		return FigureSpec{}, err
	}
	spec.Fig.ID, spec.Fig.Title = id, title
	return spec, nil
}

// Fig7Spec plans the ALU:Fetch ratio sweep with texture-fetch inputs: 16
// inputs, one output, domain 1024x1024, ratios 0.25..8.0 step 0.25, every
// chip in pixel and (naive 64x1) compute mode, float and float4.
func (s *Suite) Fig7Spec() (FigureSpec, error) {
	spec, err := s.ALUFetchSpec(ALUFetchConfig{})
	return named(spec, err, "fig7", "ALU:Fetch Ratio for 16 Inputs")
}

// Fig7 runs Fig7Spec.
func (s *Suite) Fig7() (*report.Figure, []Run, error) { return s.runNamedSpec(s.Fig7Spec()) }

// Fig8Spec repeats Fig. 7's compute-mode series with the optimized 4x16
// block.
func (s *Suite) Fig8Spec() (FigureSpec, error) {
	spec, err := s.ALUFetchSpec(ALUFetchConfig{Cards: ComputeCards(4, 16)})
	return named(spec, err, "fig8", "ALU:Fetch Ratio for 16 Inputs with Block Size of 4x16")
}

// Fig8 runs Fig8Spec.
func (s *Suite) Fig8() (*report.Figure, []Run, error) { return s.runNamedSpec(s.Fig8Spec()) }

// Fig9Spec plans the ALU:Fetch sweep with global-memory reads and
// streaming stores, pixel mode only.
func (s *Suite) Fig9Spec() (FigureSpec, error) {
	spec, err := s.ALUFetchSpec(ALUFetchConfig{
		Cards:      PixelCards(),
		InputSpace: il.GlobalSpace,
		OutSpace:   il.TextureSpace,
	})
	return named(spec, err, "fig9", "ALU:Fetch Ratio Global Read Stream Write")
}

// Fig9 runs Fig9Spec.
func (s *Suite) Fig9() (*report.Figure, []Run, error) { return s.runNamedSpec(s.Fig9Spec()) }

// Fig10Spec plans the ALU:Fetch sweep with global reads and global writes,
// on the GDDR5 chips in both modes (the configuration the paper plots).
func (s *Suite) Fig10Spec() (FigureSpec, error) {
	var cards []Card
	for _, a := range []device.Arch{device.RV770, device.RV870} {
		for _, dt := range []il.DataType{il.Float, il.Float4} {
			cards = append(cards, Card{Arch: a, Mode: il.Pixel, Type: dt})
			cards = append(cards, Card{Arch: a, Mode: il.Compute, Type: dt})
		}
	}
	spec, err := s.ALUFetchSpec(ALUFetchConfig{
		Cards:      cards,
		InputSpace: il.GlobalSpace,
		OutSpace:   il.GlobalSpace,
	})
	return named(spec, err, "fig10", "ALU:Fetch Ratio for 16 Inputs using Global Read and Write")
}

// Fig10 runs Fig10Spec.
func (s *Suite) Fig10() (*report.Figure, []Run, error) { return s.runNamedSpec(s.Fig10Spec()) }

// Fig11Spec plans the texture fetch latency sweep: inputs 2..18.
func (s *Suite) Fig11Spec() (FigureSpec, error) {
	spec, err := s.ReadLatencySpec(ReadLatencyConfig{Space: il.TextureSpace})
	return named(spec, err, "fig11", "Texture Fetch Latency")
}

// Fig11 runs Fig11Spec.
func (s *Suite) Fig11() (*report.Figure, []Run, error) { return s.runNamedSpec(s.Fig11Spec()) }

// Fig12Spec plans the global read latency sweep.
func (s *Suite) Fig12Spec() (FigureSpec, error) {
	spec, err := s.ReadLatencySpec(ReadLatencyConfig{Space: il.GlobalSpace})
	return named(spec, err, "fig12", "Global Read Latency")
}

// Fig12 runs Fig12Spec.
func (s *Suite) Fig12() (*report.Figure, []Run, error) { return s.runNamedSpec(s.Fig12Spec()) }

// Fig13Spec plans the streaming store latency sweep: outputs 1..8, pixel
// mode.
func (s *Suite) Fig13Spec() (FigureSpec, error) {
	spec, err := s.WriteLatencySpec(WriteLatencyConfig{Space: il.TextureSpace})
	return named(spec, err, "fig13", "Streaming Store Latency")
}

// Fig13 runs Fig13Spec.
func (s *Suite) Fig13() (*report.Figure, []Run, error) { return s.runNamedSpec(s.Fig13Spec()) }

// Fig14Spec plans the global write latency sweep: outputs 1..8, both modes.
func (s *Suite) Fig14Spec() (FigureSpec, error) {
	spec, err := s.WriteLatencySpec(WriteLatencyConfig{Space: il.GlobalSpace})
	return named(spec, err, "fig14", "Global Write Latency")
}

// Fig14 runs Fig14Spec.
func (s *Suite) Fig14() (*report.Figure, []Run, error) { return s.runNamedSpec(s.Fig14Spec()) }

// Fig15PixelSpec plans the pixel-mode domain size sweep (Fig. 15a).
func (s *Suite) Fig15PixelSpec() (FigureSpec, error) {
	spec, err := s.DomainSizeSpec(DomainConfig{Cards: PixelCards()})
	return named(spec, err, "fig15a", "Domain Size Pixel Shader")
}

// Fig15Pixel runs Fig15PixelSpec.
func (s *Suite) Fig15Pixel() (*report.Figure, []Run, error) {
	return s.runNamedSpec(s.Fig15PixelSpec())
}

// Fig15ComputeSpec plans the compute-mode domain size sweep (Fig. 15b).
func (s *Suite) Fig15ComputeSpec() (FigureSpec, error) {
	spec, err := s.DomainSizeSpec(DomainConfig{Cards: ComputeCards(0, 0)})
	return named(spec, err, "fig15b", "Domain Size Compute Shader")
}

// Fig15Compute runs Fig15ComputeSpec.
func (s *Suite) Fig15Compute() (*report.Figure, []Run, error) {
	return s.runNamedSpec(s.Fig15ComputeSpec())
}

// Fig16Spec plans the register pressure sweep: 64 inputs, space 8,
// ALU:Fetch 4.0.
func (s *Suite) Fig16Spec() (FigureSpec, error) {
	spec, err := s.RegisterUsageSpec(RegisterUsageConfig{})
	return named(spec, err, "fig16", "Impact of Register Usage")
}

// Fig16 runs Fig16Spec.
func (s *Suite) Fig16() (*report.Figure, []Run, error) { return s.runNamedSpec(s.Fig16Spec()) }

// Fig17Spec repeats Fig. 16's compute series with the 4x16 block.
func (s *Suite) Fig17Spec() (FigureSpec, error) {
	spec, err := s.RegisterUsageSpec(RegisterUsageConfig{Cards: ComputeCards(4, 16)})
	return named(spec, err, "fig17", "Impact of Register Usage with Block Size of 4x16")
}

// Fig17 runs Fig17Spec.
func (s *Suite) Fig17() (*report.Figure, []Run, error) { return s.runNamedSpec(s.Fig17Spec()) }

// ClauseControlSpec plans the Fig. 5 experiment: identical clause
// structure with all sampling up front; its curves must be flat, proving
// Fig. 16's gains come from register pressure rather than clause
// movement.
func (s *Suite) ClauseControlSpec() (FigureSpec, error) {
	spec, err := s.RegisterUsageSpec(RegisterUsageConfig{Control: true})
	return named(spec, err, "clausectl", "Clause Usage Control")
}

// ClauseControl runs ClauseControlSpec.
func (s *Suite) ClauseControl() (*report.Figure, []Run, error) {
	return s.runNamedSpec(s.ClauseControlSpec())
}

// runNamedSpec chains a spec builder's result into RunFigureSpec.
func (s *Suite) runNamedSpec(spec FigureSpec, err error) (*report.Figure, []Run, error) {
	if err != nil {
		return nil, nil, err
	}
	return s.RunFigureSpec(spec)
}
