package core

import (
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/report"
)

// This file wires each paper figure to its exact configuration, so the
// CLI, the benchmarks and EXPERIMENTS.md all regenerate the same curves.

// Fig7 is the ALU:Fetch ratio sweep with texture-fetch inputs: 16 inputs,
// one output, domain 1024x1024, ratios 0.25..8.0 step 0.25, every chip in
// pixel and (naive 64x1) compute mode, float and float4.
func (s *Suite) Fig7() (*report.Figure, []Run, error) {
	fig, runs, err := s.ALUFetchRatio(ALUFetchConfig{})
	if fig != nil {
		fig.ID, fig.Title = "fig7", "ALU:Fetch Ratio for 16 Inputs"
	}
	return fig, runs, err
}

// Fig8 repeats Fig. 7's compute-mode series with the optimized 4x16 block.
func (s *Suite) Fig8() (*report.Figure, []Run, error) {
	fig, runs, err := s.ALUFetchRatio(ALUFetchConfig{Cards: ComputeCards(4, 16)})
	if fig != nil {
		fig.ID, fig.Title = "fig8", "ALU:Fetch Ratio for 16 Inputs with Block Size of 4x16"
	}
	return fig, runs, err
}

// Fig9 is the ALU:Fetch sweep with global-memory reads and streaming
// stores, pixel mode only.
func (s *Suite) Fig9() (*report.Figure, []Run, error) {
	fig, runs, err := s.ALUFetchRatio(ALUFetchConfig{
		Cards:      PixelCards(),
		InputSpace: il.GlobalSpace,
		OutSpace:   il.TextureSpace,
	})
	if fig != nil {
		fig.ID, fig.Title = "fig9", "ALU:Fetch Ratio Global Read Stream Write"
	}
	return fig, runs, err
}

// Fig10 is the ALU:Fetch sweep with global reads and global writes, on the
// GDDR5 chips in both modes (the configuration the paper plots).
func (s *Suite) Fig10() (*report.Figure, []Run, error) {
	var cards []Card
	for _, a := range []device.Arch{device.RV770, device.RV870} {
		for _, dt := range []il.DataType{il.Float, il.Float4} {
			cards = append(cards, Card{Arch: a, Mode: il.Pixel, Type: dt})
			cards = append(cards, Card{Arch: a, Mode: il.Compute, Type: dt})
		}
	}
	fig, runs, err := s.ALUFetchRatio(ALUFetchConfig{
		Cards:      cards,
		InputSpace: il.GlobalSpace,
		OutSpace:   il.GlobalSpace,
	})
	if fig != nil {
		fig.ID, fig.Title = "fig10", "ALU:Fetch Ratio for 16 Inputs using Global Read and Write"
	}
	return fig, runs, err
}

// Fig11 is the texture fetch latency sweep: inputs 2..18.
func (s *Suite) Fig11() (*report.Figure, []Run, error) {
	fig, runs, err := s.ReadLatency(ReadLatencyConfig{Space: il.TextureSpace})
	if fig != nil {
		fig.ID, fig.Title = "fig11", "Texture Fetch Latency"
	}
	return fig, runs, err
}

// Fig12 is the global read latency sweep.
func (s *Suite) Fig12() (*report.Figure, []Run, error) {
	fig, runs, err := s.ReadLatency(ReadLatencyConfig{Space: il.GlobalSpace})
	if fig != nil {
		fig.ID, fig.Title = "fig12", "Global Read Latency"
	}
	return fig, runs, err
}

// Fig13 is the streaming store latency sweep: outputs 1..8, pixel mode.
func (s *Suite) Fig13() (*report.Figure, []Run, error) {
	fig, runs, err := s.WriteLatency(WriteLatencyConfig{Space: il.TextureSpace})
	if fig != nil {
		fig.ID, fig.Title = "fig13", "Streaming Store Latency"
	}
	return fig, runs, err
}

// Fig14 is the global write latency sweep: outputs 1..8, both modes.
func (s *Suite) Fig14() (*report.Figure, []Run, error) {
	fig, runs, err := s.WriteLatency(WriteLatencyConfig{Space: il.GlobalSpace})
	if fig != nil {
		fig.ID, fig.Title = "fig14", "Global Write Latency"
	}
	return fig, runs, err
}

// Fig15Pixel is the pixel-mode domain size sweep (Fig. 15a).
func (s *Suite) Fig15Pixel() (*report.Figure, []Run, error) {
	fig, runs, err := s.DomainSize(DomainConfig{Cards: PixelCards()})
	if fig != nil {
		fig.ID, fig.Title = "fig15a", "Domain Size Pixel Shader"
	}
	return fig, runs, err
}

// Fig15Compute is the compute-mode domain size sweep (Fig. 15b).
func (s *Suite) Fig15Compute() (*report.Figure, []Run, error) {
	fig, runs, err := s.DomainSize(DomainConfig{Cards: ComputeCards(0, 0)})
	if fig != nil {
		fig.ID, fig.Title = "fig15b", "Domain Size Compute Shader"
	}
	return fig, runs, err
}

// Fig16 is the register pressure sweep: 64 inputs, space 8, ALU:Fetch 4.0.
func (s *Suite) Fig16() (*report.Figure, []Run, error) {
	fig, runs, err := s.RegisterUsage(RegisterUsageConfig{})
	if fig != nil {
		fig.ID, fig.Title = "fig16", "Impact of Register Usage"
	}
	return fig, runs, err
}

// Fig17 repeats Fig. 16's compute series with the 4x16 block.
func (s *Suite) Fig17() (*report.Figure, []Run, error) {
	fig, runs, err := s.RegisterUsage(RegisterUsageConfig{Cards: ComputeCards(4, 16)})
	if fig != nil {
		fig.ID, fig.Title = "fig17", "Impact of Register Usage with Block Size of 4x16"
	}
	return fig, runs, err
}

// ClauseControl is the Fig. 5 experiment: identical clause structure with
// all sampling up front; its curves must be flat, proving Fig. 16's gains
// come from register pressure rather than clause movement.
func (s *Suite) ClauseControl() (*report.Figure, []Run, error) {
	fig, runs, err := s.RegisterUsage(RegisterUsageConfig{Control: true})
	if fig != nil {
		fig.ID, fig.Title = "clausectl", "Clause Usage Control"
	}
	return fig, runs, err
}
