package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"amdgpubench/internal/cal"
	"amdgpubench/internal/il"
	"amdgpubench/internal/obs"
)

// The suite's sweeps are embarrassingly parallel: every (card, parameter)
// point compiles and simulates independently and deterministically. This
// file is the resilient sweep runner they execute on: a fixed worker set
// (never more goroutines than workers, however large the sweep), panic
// recovery into per-point failure records, bounded retry with backoff
// for transient launch faults, cancellation of the remaining points on
// the first fatal error, and JSON checkpointing so an interrupted sweep
// resumes instead of recomputing.

// point is one sweep job: a kernel to time on a card at an x coordinate.
type point struct {
	card Card
	x    float64
	k    *il.Kernel
	w, h int
}

// Workers sets the sweep parallelism; zero means GOMAXPROCS. It is a
// Suite field so tests can force serial execution.
func (s *Suite) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// errLaunchPanic marks a panic recovered from a worker: the point failed,
// the sweep — and the process — survive.
var errLaunchPanic = errors.New("panic during launch")

// runPoints times every point and returns the runs in input order.
// Device contexts are created up front so a bad card fails the sweep
// before any worker starts; the context map itself is safe for
// concurrent lookup and the contexts are read-only during launches.
//
// Failure policy, per the cal taxonomy: transient launch failures retry
// up to s.Retries times with doubling backoff; timeouts, exhausted
// transients and recovered panics become per-point failure records
// (Run.Err) and the sweep continues; anything else — a lost device, a
// compile or configuration error — is fatal, cancels the undispatched
// points and fails the sweep.
func (s *Suite) runPoints(pts []point) ([]Run, error) {
	if s.MaxDomain > 0 {
		for i := range pts {
			if pts[i].w > s.MaxDomain {
				pts[i].w = s.MaxDomain
			}
			if pts[i].h > s.MaxDomain {
				pts[i].h = s.MaxDomain
			}
		}
	}
	for _, p := range pts {
		if _, err := s.context(p.card.Arch); err != nil {
			return nil, err
		}
	}
	runs := make([]Run, len(pts))
	done := make([]bool, len(pts))
	ctr := s.counters()

	var ck *checkpoint
	if s.Checkpoint != "" {
		var err error
		ck, err = openCheckpoint(s.Checkpoint, sweepSignature(pts, s.Iterations))
		if err != nil {
			return nil, err
		}
		for i := range pts {
			if r, ok := ck.get(i); ok {
				runs[i] = r
				done[i] = true
			}
		}
	}

	var prog *obs.Progress
	if s.Progress != nil {
		prog = obs.NewProgress(s.Progress, "sweep", len(pts))
		defer prog.Finish()
	}
	restored := 0
	for _, d := range done {
		if d {
			restored++
		}
	}
	if restored > 0 {
		ctr.restored.Add(int64(restored))
		prog.Restored(restored)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		mu       sync.Mutex
		fatalErr error
	)
	fatal := func(err error) {
		mu.Lock()
		if fatalErr == nil {
			fatalErr = err
			cancel()
		}
		mu.Unlock()
	}

	// A fixed worker set fed from a channel: a 10k-point sweep runs on
	// s.workers() goroutines, not 10k.
	workers := s.workers()
	if workers > len(pts) {
		workers = len(pts)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				run, err := s.runPointResilient(ctx, pts[i])
				if err != nil {
					fatal(err)
					continue
				}
				runs[i] = run
				if run.Failed() {
					ctr.failed.Inc()
				} else {
					ctr.completed.Inc()
				}
				if prog != nil {
					prog.Point(run.Failed(), s.cacheHitRate())
				}
				if ck != nil && !run.Failed() {
					if err := ck.put(i, run); err != nil {
						fatal(err)
					}
				}
			}
		}()
	}
feed:
	for i := range pts {
		if done[i] {
			continue
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if fatalErr != nil {
		return nil, fatalErr
	}
	var failed []Run
	for _, r := range runs {
		if r.Failed() {
			failed = append(failed, r)
		}
	}
	if len(failed) > 0 {
		s.mu.Lock()
		s.failures = append(s.failures, failed...)
		s.mu.Unlock()
	}
	return runs, nil
}

// runPointResilient drives one point through the retry policy. A non-nil
// error is fatal for the sweep; recoverable failures come back as a Run
// failure record.
func (s *Suite) runPointResilient(ctx context.Context, p point) (Run, error) {
	ctr := s.counters()
	backoff := s.RetryBackoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	attempt := 0
	for {
		run, err := s.runKernelSafe(p, attempt)
		attempt++
		if err == nil {
			run.X = p.x
			run.Attempts = attempt
			return run, nil
		}
		if cal.IsTransient(err) && attempt <= s.Retries && ctx.Err() == nil {
			ctr.retries.Inc()
			ctr.backoffNS.Add(backoff.Nanoseconds())
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
			}
			backoff *= 2
			continue
		}
		if errors.Is(err, errLaunchPanic) {
			ctr.panics.Inc()
		}
		if errors.Is(err, cal.ErrKernelTimeout) {
			ctr.timeouts.Inc()
		}
		if cal.IsRecoverable(err) || errors.Is(err, errLaunchPanic) {
			return Run{
				Card: p.card, X: p.x, Attempts: attempt,
				Err: fmt.Sprintf("%s at x=%g: %v", p.card.Label(), p.x, err),
			}, nil
		}
		return Run{}, fmt.Errorf("core: %s at x=%g: %w", p.card.Label(), p.x, err)
	}
}

// runKernelSafe is runKernel behind a panic fence: a panicking launch on
// a worker must fail its point, not the process.
func (s *Suite) runKernelSafe(p point, attempt int) (run Run, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("%w: %v", errLaunchPanic, rec)
		}
	}()
	if s.testHookBeforeRun != nil {
		s.testHookBeforeRun(p, attempt)
	}
	return s.runKernel(p.card, p.k, p.w, p.h, attempt)
}
