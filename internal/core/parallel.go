package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"amdgpubench/internal/cal"
	"amdgpubench/internal/il"
	"amdgpubench/internal/obs"
)

// The suite's sweeps are embarrassingly parallel: every (card, parameter)
// point compiles and simulates independently and deterministically. This
// file is the resilient sweep runner they execute on: a fixed worker set
// (never more goroutines than workers, however large the sweep), panic
// recovery into per-point failure records, bounded retry with backoff
// for transient launch faults, cancellation of the remaining points on
// the first fatal error, and JSON checkpointing so an interrupted sweep
// resumes instead of recomputing.

// point is one sweep job: a kernel to time on a card at an x coordinate.
type point struct {
	card Card
	x    float64
	k    *il.Kernel
	w, h int
}

// Workers sets the sweep parallelism; zero means GOMAXPROCS. It is a
// Suite field so tests can force serial execution.
func (s *Suite) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// errLaunchPanic marks a panic recovered from a worker: the point failed,
// the sweep — and the process — survive.
var errLaunchPanic = errors.New("panic during launch")

// ErrSweepInterrupted reports that Interrupt cancelled the sweep before
// every point completed. Points finished up to that moment are already
// in the checkpoint (when one is armed), so a re-run with the same
// configuration resumes rather than recomputes — the in-process half of
// the kill/checkpoint/resume cycles the soak campaigns exercise.
var ErrSweepInterrupted = errors.New("core: sweep interrupted")

// Interrupt cancels every in-flight sweep on the suite: undispatched
// points are abandoned and runPoints returns ErrSweepInterrupted.
// Points already dispatched complete (and checkpoint) normally, so an
// interrupted sweep's checkpoint is always a consistent prefix of the
// campaign. Safe from any goroutine; a suite with no sweep in flight
// ignores it.
func (s *Suite) Interrupt() {
	s.intrMu.Lock()
	defer s.intrMu.Unlock()
	for _, stop := range s.sweepStops {
		stop()
	}
}

// registerSweep adds a running sweep's stop function to the interrupt
// set and returns its removal.
func (s *Suite) registerSweep(stop func()) (unregister func()) {
	s.intrMu.Lock()
	defer s.intrMu.Unlock()
	s.sweepSeq++
	id := s.sweepSeq
	if s.sweepStops == nil {
		s.sweepStops = make(map[uint64]func())
	}
	s.sweepStops[id] = stop
	return func() {
		s.intrMu.Lock()
		defer s.intrMu.Unlock()
		delete(s.sweepStops, id)
	}
}

// KernelPoint is one externally supplied sweep point: a prebuilt kernel
// timed on a card at an x coordinate. It is how non-figure drivers — the
// soak campaigns above all — put arbitrary generated kernels through the
// resilient sweep runner with everything the paper sweeps get: worker
// pool, retries with backoff, fault injection, panic fences, failure
// records and checkpoint/resume.
type KernelPoint struct {
	Card Card
	X    float64
	K    *il.Kernel
	W, H int
}

// RunKernelPoints times every point and returns the runs in input order,
// with the same failure policy as the figure sweeps.
func (s *Suite) RunKernelPoints(kps []KernelPoint) ([]Run, error) {
	return s.RunKernelPointsObserved(kps, nil)
}

// RunKernelPointsObserved is RunKernelPoints with a per-point observation
// hook: when observe is non-nil, it is called on the worker goroutine
// just before point i's first launch attempt, and the function it
// returns is called right after the point resolves (completed or failure
// record). Points restored from a checkpoint are never observed — they
// do not execute. The campaign scheduler uses the hook for per-unit
// spans and unit-level counters without a second accounting path inside
// the sweep runner.
func (s *Suite) RunKernelPointsObserved(kps []KernelPoint, observe func(i int) func(Run)) ([]Run, error) {
	return s.RunKernelPointsSharded(kps, observe, 0, 1)
}

// RunKernelPointsSharded is RunKernelPointsObserved restricted to one
// shard of a deterministic interleaved partition: of the shared point
// list, only points with index i%shards == shard execute. The returned
// slice still has one entry per input point — non-shard entries are
// zero Runs — and the checkpoint signature is computed over the FULL
// point list, so every shard of a campaign binds to the same sweep
// identity: shard checkpoint files record runs at their global indices
// and merge cleanly (MergeCheckpoints) into a checkpoint an unsharded
// run resumes from. shards <= 1 runs everything.
func (s *Suite) RunKernelPointsSharded(kps []KernelPoint, observe func(i int) func(Run), shard, shards int) ([]Run, error) {
	return s.RunKernelPointsShardedCtx(context.Background(), kps, observe, shard, shards)
}

// RunKernelPointsShardedCtx is RunKernelPointsSharded bound to a parent
// context: cancelling ctx stops the sweep exactly like Suite.Interrupt —
// undispatched points are abandoned, dispatched points complete and
// checkpoint, and the sweep returns ErrSweepInterrupted. It exists for
// callers multiplexing several independent sweeps over ONE shared suite
// (the campaign daemon): Interrupt cancels every sweep in flight, a
// context cancels just its own.
func (s *Suite) RunKernelPointsShardedCtx(ctx context.Context, kps []KernelPoint, observe func(i int) func(Run), shard, shards int) ([]Run, error) {
	if shards > 1 && (shard < 0 || shard >= shards) {
		return nil, fmt.Errorf("core: shard %d out of range 0..%d", shard, shards-1)
	}
	pts := make([]point, len(kps))
	for i, kp := range kps {
		pts[i] = point{card: kp.Card, x: kp.X, k: kp.K, w: kp.W, h: kp.H}
	}
	return s.runPointsSharded(ctx, pts, observe, shard, shards)
}

// runPoints times every point and returns the runs in input order.
// Device contexts are created up front so a bad card fails the sweep
// before any worker starts; the context map itself is safe for
// concurrent lookup and the contexts are read-only during launches.
//
// Failure policy, per the cal taxonomy: transient launch failures retry
// up to s.Retries times with doubling backoff; timeouts, exhausted
// transients and recovered panics become per-point failure records
// (Run.Err) and the sweep continues; anything else — a lost device, a
// compile or configuration error — is fatal, cancels the undispatched
// points and fails the sweep.
func (s *Suite) runPoints(pts []point, observe func(i int) func(Run)) ([]Run, error) {
	return s.runPointsSharded(context.Background(), pts, observe, 0, 1)
}

// runPointsSharded is runPoints over one shard of an interleaved
// partition (shards <= 1 means the whole sweep). The domain clamp and
// the checkpoint signature cover every point — identical across shards
// — while dispatch, checkpoint restore and progress accounting cover
// only the shard's own indices. Cancelling parent interrupts the sweep
// the same way Suite.Interrupt does, but scoped to this sweep alone.
func (s *Suite) runPointsSharded(parent context.Context, pts []point, observe func(i int) func(Run), shard, shards int) ([]Run, error) {
	mine := func(i int) bool { return shards <= 1 || i%shards == shard }
	if s.MaxDomain > 0 {
		for i := range pts {
			if pts[i].w > s.MaxDomain {
				pts[i].w = s.MaxDomain
			}
			if pts[i].h > s.MaxDomain {
				pts[i].h = s.MaxDomain
			}
		}
	}
	for _, p := range pts {
		if _, err := s.context(p.card.Arch); err != nil {
			return nil, err
		}
	}
	runs := make([]Run, len(pts))
	done := make([]bool, len(pts))
	ctr := s.counters()

	var ck *checkpoint
	if s.Checkpoint != "" {
		var err error
		ck, err = openCheckpoint(s.Checkpoint, sweepSignature(pts, s.Iterations), s.CheckpointFlushEvery, ctr.quarantined)
		if err != nil {
			return nil, err
		}
		for i := range pts {
			if r, ok := ck.get(i); ok && mine(i) {
				runs[i] = r
				done[i] = true
			}
		}
	}

	scheduled := 0
	for i := range pts {
		if mine(i) {
			scheduled++
		}
	}

	var prog *obs.Progress
	if s.Progress != nil {
		prog = obs.NewProgress(s.Progress, "sweep", scheduled)
		defer prog.Finish()
	}
	restored := 0
	for _, d := range done {
		if d {
			restored++
		}
	}
	if restored > 0 {
		ctr.restored.Add(int64(restored))
		prog.Restored(restored)
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	// Interrupt stops the sweep through the same cancellation the fatal
	// path uses; the flag separates "user asked" from "sweep died".
	var intr atomic.Bool
	unregister := s.registerSweep(func() {
		intr.Store(true)
		cancel()
	})
	defer unregister()

	var (
		mu       sync.Mutex
		fatalErr error
	)
	fatal := func(err error) {
		mu.Lock()
		if fatalErr == nil {
			fatalErr = err
			cancel()
		}
		mu.Unlock()
	}

	// A fixed worker set fed from a channel: a 10k-point sweep runs on
	// s.workers() goroutines, not 10k.
	workers := s.workers()
	if workers > scheduled {
		workers = scheduled
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				var end func(Run)
				if observe != nil {
					end = observe(i)
				}
				run, err := s.runPointResilient(ctx, pts[i])
				if err != nil {
					fatal(err)
					continue
				}
				if end != nil {
					end(run)
				}
				runs[i] = run
				if run.Failed() {
					ctr.failed.Inc()
				} else {
					ctr.completed.Inc()
				}
				if prog != nil {
					prog.Point(run.Failed(), s.cacheHitRate())
				}
				if ck != nil && !run.Failed() {
					if err := ck.put(i, run); err != nil {
						fatal(err)
					}
				}
			}
		}()
	}
feed:
	for i := range pts {
		if done[i] || !mine(i) {
			continue
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	// Flush on every exit path: at rest the checkpoint always holds the
	// full completed set, whether the sweep finished, died fatally, or
	// was interrupted — the resume contract batched saves must keep.
	// (Workers are drained, so fatalErr needs no lock from here on.)
	if ck != nil {
		if err := ck.flush(); err != nil && fatalErr == nil {
			fatalErr = err
		}
	}

	if fatalErr != nil {
		return nil, fatalErr
	}
	if intr.Load() || parent.Err() != nil {
		ctr.interrupted.Inc()
		return nil, ErrSweepInterrupted
	}
	var failed []Run
	for _, r := range runs {
		if r.Failed() {
			failed = append(failed, r)
		}
	}
	if len(failed) > 0 {
		s.mu.Lock()
		s.failures = append(s.failures, failed...)
		s.mu.Unlock()
	}
	return runs, nil
}

// runPointResilient drives one point through the retry policy. A non-nil
// error is fatal for the sweep; recoverable failures come back as a Run
// failure record.
func (s *Suite) runPointResilient(ctx context.Context, p point) (Run, error) {
	ctr := s.counters()
	backoff := s.RetryBackoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	attempt := 0
	for {
		run, err := s.runKernelSafe(p, attempt)
		attempt++
		if err == nil {
			run.X = p.x
			run.Attempts = attempt
			return run, nil
		}
		if cal.IsTransient(err) && attempt <= s.Retries && ctx.Err() == nil {
			ctr.retries.Inc()
			ctr.backoffNS.Add(backoff.Nanoseconds())
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
			}
			backoff *= 2
			continue
		}
		if errors.Is(err, errLaunchPanic) {
			ctr.panics.Inc()
		}
		if errors.Is(err, cal.ErrKernelTimeout) {
			ctr.timeouts.Inc()
		}
		if cal.IsRecoverable(err) || errors.Is(err, errLaunchPanic) {
			return Run{
				Card: p.card, X: p.x, Attempts: attempt,
				Err: fmt.Sprintf("%s at x=%g: %v", p.card.Label(), p.x, err),
			}, nil
		}
		return Run{}, fmt.Errorf("core: %s at x=%g: %w", p.card.Label(), p.x, err)
	}
}

// runKernelSafe is runKernel behind a panic fence: a panicking launch on
// a worker must fail its point, not the process.
func (s *Suite) runKernelSafe(p point, attempt int) (run Run, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("%w: %v", errLaunchPanic, rec)
		}
	}()
	if s.BeforeLaunch != nil {
		s.BeforeLaunch()
	}
	if s.testHookBeforeRun != nil {
		s.testHookBeforeRun(p, attempt)
	}
	return s.runKernel(p.card, p.k, p.w, p.h, attempt)
}
