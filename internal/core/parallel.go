package core

import (
	"fmt"
	"runtime"
	"sync"

	"amdgpubench/internal/il"
)

// The suite's sweeps are embarrassingly parallel: every (card, parameter)
// point compiles and simulates independently and deterministically. This
// file provides the order-preserving worker pool the benchmarks run on.

// point is one sweep job: a kernel to time on a card at an x coordinate.
type point struct {
	card Card
	x    float64
	k    *il.Kernel
	w, h int
}

// Workers sets the sweep parallelism; zero means GOMAXPROCS. It is a
// Suite field so tests can force serial execution.
func (s *Suite) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runPoints times every point, in parallel, and returns the runs in input
// order. Device contexts are created up front because the lazy context
// map is not safe for concurrent mutation; the contexts themselves are
// read-only during launches.
func (s *Suite) runPoints(pts []point) ([]Run, error) {
	for _, p := range pts {
		if _, err := s.context(p.card.Arch); err != nil {
			return nil, err
		}
	}
	runs := make([]Run, len(pts))
	errs := make([]error, len(pts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.workers())
	for i := range pts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			p := pts[i]
			run, err := s.runKernel(p.card, p.k, p.w, p.h)
			if err != nil {
				errs[i] = fmt.Errorf("core: %s at x=%g: %w", p.card.Label(), p.x, err)
				return
			}
			run.X = p.x
			runs[i] = run
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return runs, nil
}
