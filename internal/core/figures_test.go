package core

import (
	"math"
	"testing"

	"amdgpubench/internal/il"
	"amdgpubench/internal/report"
)

// These are the paper-shape integration tests: every figure is regenerated
// end to end (kernel generation -> compilation -> timing simulation) and
// the qualitative claims of Section IV are asserted against the curves.

func TestFig7Shapes(t *testing.T) {
	s := suite()
	fig, runs, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 10 {
		t.Fatalf("Fig. 7 has %d series, want 10", len(fig.Series))
	}

	// Every pixel series shows a fetch-bound plateau followed by an
	// ALU-bound rise: a finite crossover strictly inside the sweep.
	for _, label := range []string{
		"3870 Pixel Float", "4870 Pixel Float", "5870 Pixel Float",
		"3870 Pixel Float4", "4870 Pixel Float4", "5870 Pixel Float4",
	} {
		x := CrossoverOf(fig, label)
		if math.IsNaN(x) || x <= 0.25 || x >= 8 {
			t.Errorf("%s: crossover = %v, want inside (0.25, 8)", label, x)
		}
	}

	// Float4's crossover is far above float's on the same card (the
	// paper: 1.25 vs 5.0), because each float4 fetch moves four times the
	// data while the dependent ALU chain is type-independent.
	for _, card := range []string{"3870", "4870", "5870"} {
		f := CrossoverOf(fig, card+" Pixel Float")
		f4 := CrossoverOf(fig, card+" Pixel Float4")
		if !(f4 >= 2*f) {
			t.Errorf("%s: float4 crossover %v not well above float's %v", card, f4, f)
		}
	}

	// The RV870 responds differently: its float4 crossover is later than
	// the RV770's (the paper reads 9.0 vs 5.0).
	if !(CrossoverOf(fig, "5870 Pixel Float4") > CrossoverOf(fig, "4870 Pixel Float4")) {
		t.Error("5870 float4 crossover not later than 4870's")
	}

	// At the fetch-bound plateau, generations order 3870 > 4870 > 5870.
	for _, dt := range []string{"Float", "Float4"} {
		t670 := at(t, seriesByLabel(t, fig, "3870 Pixel "+dt), 0.25)
		t770 := at(t, seriesByLabel(t, fig, "4870 Pixel "+dt), 0.25)
		t870 := at(t, seriesByLabel(t, fig, "5870 Pixel "+dt), 0.25)
		if !(t670 > t770 && t770 > t870) {
			t.Errorf("%s plateau ordering wrong: %v %v %v", dt, t670, t770, t870)
		}
	}

	// Naive 64x1 compute mode is slower than pixel mode at the plateau
	// (the cache is optimized for tiled access; the linear walk wastes
	// it — Section IV-A).
	for _, card := range []string{"4870", "5870"} {
		for _, dt := range []string{"Float", "Float4"} {
			pix := at(t, seriesByLabel(t, fig, card+" Pixel "+dt), 0.25)
			cmp := at(t, seriesByLabel(t, fig, card+" Compute "+dt), 0.25)
			if !(cmp > pix) {
				t.Errorf("%s %s: compute plateau %v not above pixel %v", card, dt, cmp, pix)
			}
		}
	}

	// At the plateau the kernels classify as fetch bound; at ratio 8 the
	// float pixel kernels classify as ALU bound.
	for _, r := range runs {
		if r.Card.Label() == "4870 Pixel Float" {
			if r.X == 0.25 && r.Bottleneck != "fetch" {
				t.Errorf("ratio 0.25 bottleneck = %s, want fetch", r.Bottleneck)
			}
			if r.X == 8.0 && r.Bottleneck != "ALU" {
				t.Errorf("ratio 8.0 bottleneck = %s, want ALU", r.Bottleneck)
			}
		}
	}
}

func TestFig8Block4x16Improvement(t *testing.T) {
	s := suite()
	fig7, _, err := s.ALUFetchRatio(ALUFetchConfig{Cards: ComputeCards(0, 0), RatioMax: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	fig8, _, err := s.ALUFetchRatio(ALUFetchConfig{Cards: ComputeCards(4, 16), RatioMax: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// Significant improvement in compute mode for both chips and types
	// (the paper: RV870 quadruples for float4, RV770 roughly triples).
	for _, label := range []string{
		"4870 Compute Float", "4870 Compute Float4",
		"5870 Compute Float", "5870 Compute Float4",
	} {
		naive := at(t, seriesByLabel(t, fig7, label), 0.25)
		blocked := at(t, seriesByLabel(t, fig8, label), 0.25)
		if !(blocked < 0.8*naive) {
			t.Errorf("%s: 4x16 (%v) not a significant improvement over 64x1 (%v)", label, blocked, naive)
		}
	}
}

func TestFig9And10GlobalReadBehaviour(t *testing.T) {
	s := suite()
	fig9, _, err := s.ALUFetchRatio(ALUFetchConfig{
		Cards:      PixelCards(),
		InputSpace: il.GlobalSpace, OutSpace: il.TextureSpace, RatioMax: 2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	fig10, _, err := s.ALUFetchRatio(ALUFetchConfig{
		Cards:      PixelCards()[2:], // 4870 and 5870 entries
		InputSpace: il.GlobalSpace, OutSpace: il.GlobalSpace, RatioMax: 2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Little difference between streaming store and global write for the
	// GDDR5 chips: the single output is negligible (Section IV-A).
	for _, label := range []string{"4870 Pixel Float", "5870 Pixel Float4"} {
		a := at(t, seriesByLabel(t, fig9, label), 0.25)
		b := at(t, seriesByLabel(t, fig10, label), 0.25)
		if math.Abs(a-b)/a > 0.15 {
			t.Errorf("%s: fig9 %v vs fig10 %v differ by more than 15%%", label, a, b)
		}
	}
	// The RV670's global memory reads are drastically slower than the
	// GDDR5 chips'.
	t670 := at(t, seriesByLabel(t, fig9, "3870 Pixel Float"), 0.25)
	t770 := at(t, seriesByLabel(t, fig9, "4870 Pixel Float"), 0.25)
	if !(t670 > 3*t770) {
		t.Errorf("3870 global read %v not dramatically above 4870's %v", t670, t770)
	}
}

func TestFig11TextureFetchLatencyLinear(t *testing.T) {
	s := suite()
	fig, _, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range fig.Series {
		slope, _, r2 := report.LinearFit(sr)
		if slope <= 0 {
			t.Errorf("%s: slope %v not positive", sr.Label, slope)
		}
		if r2 < 0.95 {
			t.Errorf("%s: latency not linear in inputs (r2=%v)", sr.Label, r2)
		}
	}
	// n float4 inputs cost about as much as 4n float inputs (Fig. 11's
	// commentary): compare float at 16 vs float4 at 4 on the 4870.
	f := at(t, seriesByLabel(t, fig, "4870 Pixel Float"), 16)
	f4 := at(t, seriesByLabel(t, fig, "4870 Pixel Float4"), 4)
	if ratio := f4 / f; ratio < 0.7 || ratio > 1.5 {
		t.Errorf("float4(4) / float(16) = %v, want about 1", ratio)
	}
	// Fetch times shrink with each generation.
	for _, x := range []float64{8, 16} {
		a := at(t, seriesByLabel(t, fig, "3870 Pixel Float"), x)
		b := at(t, seriesByLabel(t, fig, "4870 Pixel Float"), x)
		c := at(t, seriesByLabel(t, fig, "5870 Pixel Float"), x)
		if !(a > b && b > c) {
			t.Errorf("per-generation ordering at %v inputs: %v %v %v", x, a, b, c)
		}
	}
}

func TestFig12GlobalReadLatency(t *testing.T) {
	s := suite()
	fig11, _, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	fig12, _, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	// The RV670's global read is much slower than its own texture fetch.
	tex := at(t, seriesByLabel(t, fig11, "3870 Pixel Float"), 16)
	glob := at(t, seriesByLabel(t, fig12, "3870 Pixel Float"), 16)
	if !(glob > 2*tex) {
		t.Errorf("3870 global read %v not far above its texture fetch %v", glob, tex)
	}
	// Not so for the RV770: global reads are comparable to (or better
	// than) the naive 64x1 compute texture path.
	cmpTex := at(t, seriesByLabel(t, fig11, "4870 Compute Float"), 16)
	cmpGlob := at(t, seriesByLabel(t, fig12, "4870 Compute Float"), 16)
	if !(cmpGlob < 1.3*cmpTex) {
		t.Errorf("4870 global read %v not comparable to 64x1 texture %v", cmpGlob, cmpTex)
	}
	// Global read latency is mode-insensitive (pixel vs compute).
	pg := at(t, seriesByLabel(t, fig12, "4870 Pixel Float"), 16)
	cg := at(t, seriesByLabel(t, fig12, "4870 Compute Float"), 16)
	if math.Abs(pg-cg)/pg > 0.1 {
		t.Errorf("global read differs across shader modes: pixel %v vs compute %v", pg, cg)
	}
}

func TestFig13StreamingStore(t *testing.T) {
	s := suite()
	fig, _, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	// Pixel-mode only (compute has no color buffers): 6 series.
	if len(fig.Series) != 6 {
		t.Fatalf("Fig. 13 has %d series, want 6", len(fig.Series))
	}
	for _, sr := range fig.Series {
		slope, _, r2 := report.LinearFit(sr)
		if slope <= 0 || r2 < 0.9 {
			t.Errorf("%s: streaming store not linear (slope=%v r2=%v)", sr.Label, slope, r2)
		}
	}
	// Per byte, vectorized stores are no worse: a float4 store moves 4x
	// the data in less than 4x the time.
	f := at(t, seriesByLabel(t, fig, "4870 Pixel Float"), 8)
	f4 := at(t, seriesByLabel(t, fig, "4870 Pixel Float4"), 8)
	if !(f4 < 4*f) {
		t.Errorf("float4 stores (%v) cost more than 4x float stores (%v)", f4, f)
	}
}

func TestFig14GlobalWrite(t *testing.T) {
	s := suite()
	fig, _, err := s.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	// Global writes are bytes-limited: the float4 slope is about 4x the
	// float slope on the same card ("each float is written at some
	// constant speed, whether it is vectorized or not").
	for _, card := range []string{"3870", "4870", "5870"} {
		sf := seriesByLabel(t, fig, card+" Pixel Float")
		sf4 := seriesByLabel(t, fig, card+" Pixel Float4")
		slopeF, _, _ := report.LinearFit(sf)
		slopeF4, _, _ := report.LinearFit(sf4)
		if ratio := slopeF4 / slopeF; ratio < 3 || ratio > 5.5 {
			t.Errorf("%s: float4/float write slope ratio = %v, want about 4", card, ratio)
		}
	}
	// Fetch-bound flat region at small outputs: the first increment is
	// much smaller than the last (the write only becomes the bottleneck
	// at larger output counts).
	sr := seriesByLabel(t, fig, "3870 Pixel Float")
	first := at(t, sr, 2) - at(t, sr, 1)
	last := at(t, sr, 8) - at(t, sr, 7)
	if !(first < 0.5*last) {
		t.Errorf("no fetch-bound flat region: first increment %v vs last %v", first, last)
	}
}

func TestFig15DomainSize(t *testing.T) {
	s := suite()
	figA, _, err := s.DomainSize(DomainConfig{Cards: PixelCards(), StepPix: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range figA.Series {
		n := len(sr.Points)
		if sr.Points[0].Y >= sr.Points[n-1].Y {
			t.Errorf("%s: time does not grow with domain", sr.Label)
		}
	}
	// ALU-bound at ratio 10 with a dependency chain: float and float4
	// times coincide (no VLIW packing possible).
	f := at(t, seriesByLabel(t, figA, "4870 Pixel Float"), 1024)
	f4 := at(t, seriesByLabel(t, figA, "4870 Pixel Float4"), 1024)
	if math.Abs(f4-f)/f > 0.1 {
		t.Errorf("ALU-bound float %v and float4 %v diverge", f, f4)
	}
}

func TestFig16RegisterPressure(t *testing.T) {
	s := suite()
	fig, runs, err := s.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	// Dropping register pressure speeds the kernel up substantially and
	// the curve levels off (Fig. 16).
	for _, label := range []string{"3870 Pixel Float", "4870 Pixel Float"} {
		sr := seriesByLabel(t, fig, label)
		// Points are added step 0..7, i.e. descending GPR; the first
		// added point is the highest-GPR one.
		hi, lo := sr.Points[0].Y, sr.Points[len(sr.Points)-1].Y
		if !(hi > 1.5*lo) {
			t.Errorf("%s: high-pressure time %v not well above low-pressure %v", label, hi, lo)
		}
	}
	// The RV870 is impacted less than the RV670 (Section IV-E).
	r670 := seriesByLabel(t, fig, "3870 Pixel Float")
	r870 := seriesByLabel(t, fig, "5870 Pixel Float")
	g670 := r670.Points[0].Y / r670.Points[len(r670.Points)-1].Y
	g870 := r870.Points[0].Y / r870.Points[len(r870.Points)-1].Y
	if !(g870 < g670) {
		t.Errorf("5870 gain %v not below 3870's %v", g870, g670)
	}
	// Wavefront occupancy grows as registers shrink.
	var prevWaves, prevGPR = 0, 1 << 30
	for _, r := range runs {
		if r.Card.Label() != "4870 Pixel Float" {
			continue
		}
		if r.GPRs < prevGPR && r.Waves < prevWaves {
			t.Errorf("GPRs dropped to %d but waves dropped to %d", r.GPRs, r.Waves)
		}
		prevGPR, prevWaves = r.GPRs, r.Waves
	}
}

func TestClauseControlFlat(t *testing.T) {
	s := suite()
	_, runs, err := s.ClauseControl()
	if err != nil {
		t.Fatal(err)
	}
	// Constant execution time with no performance gain: the control
	// kernel keeps all sampling up front, so registers stay put.
	per := map[string][]float64{}
	for _, r := range runs {
		per[r.Card.Label()] = append(per[r.Card.Label()], r.Seconds)
	}
	for label, ts := range per {
		for _, v := range ts {
			if math.Abs(v-ts[0])/ts[0] > 0.02 {
				t.Errorf("%s: control kernel time varies: %v", label, ts)
			}
		}
	}
}

func TestFig17Block4x16RegisterPressure(t *testing.T) {
	s := suite()
	fig16, _, err := s.RegisterUsage(RegisterUsageConfig{Cards: ComputeCards(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	fig17, _, err := s.RegisterUsage(RegisterUsageConfig{Cards: ComputeCards(4, 16)})
	if err != nil {
		t.Fatal(err)
	}
	// The 4x16 block's overall execution time beats the 64x1 block at
	// every register pressure (Section IV-E: "the overall execution time
	// is still better than the 64x1 implementation").
	for _, label := range []string{"4870 Compute Float", "5870 Compute Float4"} {
		s64 := seriesByLabel(t, fig16, label)
		s416 := seriesByLabel(t, fig17, label)
		for i := range s416.Points {
			if !(s416.Points[i].Y < s64.Points[i].Y) {
				t.Errorf("%s: 4x16 (%v) not below 64x1 (%v) at point %d",
					label, s416.Points[i].Y, s64.Points[i].Y, i)
			}
		}
	}
}
