package core

// Extensions beyond the paper's figure set (DESIGN.md §7): a
// transcendental-throughput micro-benchmark exercising the t stream core,
// and an ablation study quantifying what each modelled hardware mechanism
// contributes to the paper's results.

import (
	"fmt"

	"amdgpubench/internal/cal"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/kerngen"
	"amdgpubench/internal/pipeline"
	"amdgpubench/internal/raster"
	"amdgpubench/internal/report"
	"amdgpubench/internal/sim"
)

// transKernel builds a chain of `n` transcendental ops (alternating
// rcp/rsq) after folding two inputs; basic=true substitutes adds so the
// two curves isolate the t-core's throughput.
func transKernel(n int, dt il.DataType, basic bool) (*il.Kernel, error) {
	k := &il.Kernel{
		Name: fmt.Sprintf("trans_%d_%v_%v", n, dt, basic),
		Mode: il.Pixel, Type: dt,
		NumInputs: 2, NumOutputs: 1,
	}
	k.Code = append(k.Code,
		il.Instr{Op: il.OpSample, Dst: 0, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0},
		il.Instr{Op: il.OpSample, Dst: 1, SrcA: il.NoReg, SrcB: il.NoReg, Res: 1},
		il.Instr{Op: il.OpAdd, Dst: 2, SrcA: 0, SrcB: 1, Res: -1},
	)
	acc := il.Reg(2)
	r := il.Reg(3)
	for i := 0; i < n; i++ {
		var in il.Instr
		switch {
		case basic:
			in = il.Instr{Op: il.OpAdd, Dst: r, SrcA: acc, SrcB: acc, Res: -1}
		case i%2 == 0:
			in = il.Instr{Op: il.OpRcp, Dst: r, SrcA: acc, SrcB: il.NoReg, Res: -1}
		default:
			in = il.Instr{Op: il.OpRsq, Dst: r, SrcA: acc, SrcB: il.NoReg, Res: -1}
		}
		k.Code = append(k.Code, in)
		acc = r
		r++
	}
	k.Code = append(k.Code, il.Instr{Op: il.OpExport, Dst: il.NoReg, SrcA: acc, SrcB: il.NoReg, Res: 0})
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// TransThroughputConfig parameterises the transcendental extension sweep.
type TransThroughputConfig struct {
	Arch    device.Arch
	MaxOps  int // chain length sweep upper bound
	StepOps int
	W, H    int
}

func (c *TransThroughputConfig) defaults() {
	if c.MaxOps == 0 {
		c.MaxOps = 256
	}
	if c.StepOps == 0 {
		c.StepOps = 32
	}
	if c.W == 0 {
		c.W, c.H = 1024, 1024
	}
}

// TransThroughputSpec plans the transcendental extension sweep. Series
// carry custom labels (data type x op kind), so the spec's Finish closes
// over the per-point label list instead of using AssembleSeries.
func (s *Suite) TransThroughputSpec(cfg TransThroughputConfig) (FigureSpec, error) {
	cfg.defaults()
	fig := &report.Figure{
		ID:     "trans",
		Title:  fmt.Sprintf("Transcendental vs basic ALU chains (%s)", cfg.Arch.CardName()),
		XLabel: "Chain length (ops)",
		YLabel: "Time in seconds",
	}
	var pts []KernelPoint
	var labels []string
	for _, dt := range []il.DataType{il.Float, il.Float4} {
		for _, basic := range []bool{true, false} {
			kind := "rcp/rsq"
			if basic {
				kind = "add"
			}
			card := Card{Arch: cfg.Arch, Mode: il.Pixel, Type: dt}
			for n := cfg.StepOps; n <= cfg.MaxOps; n += cfg.StepOps {
				k, err := transKernel(n, dt, basic)
				if err != nil {
					return FigureSpec{}, err
				}
				pts = append(pts, KernelPoint{Card: card, X: float64(n), K: k, W: cfg.W, H: cfg.H})
				labels = append(labels, fmt.Sprintf("%s %s %s", cfg.Arch.CardName(), dt, kind))
			}
		}
	}
	return FigureSpec{Fig: fig, Points: pts, Finish: labelledSeries(labels)}, nil
}

// TransThroughput measures dependent-chain throughput of transcendental
// versus basic operations for float and float4 data. Basic float4 ops ride
// the 4-wide VLIW slots (one bundle per op); float4 transcendentals
// serialize through the single t core at one lane per bundle, costing 4x —
// the asymmetry the paper's Section II hardware description implies.
func (s *Suite) TransThroughput(cfg TransThroughputConfig) (*report.Figure, []Run, error) {
	spec, err := s.TransThroughputSpec(cfg)
	if err != nil {
		return nil, nil, err
	}
	return s.RunFigureSpec(spec)
}

// labelledSeries builds a Finish that groups runs by a parallel label
// list: a new series starts whenever the label changes.
func labelledSeries(labels []string) func(*report.Figure, []Run) {
	return func(fig *report.Figure, runs []Run) {
		var cur *report.Series
		for i, r := range runs {
			if i == 0 || labels[i] != labels[i-1] {
				cur = fig.AddSeries(labels[i])
			}
			cur.Add(r.X, r.Seconds)
		}
	}
}

// BlockSizeConfig parameterises the compute-mode block-shape sweep, the
// extension the paper hints at ("it is possible that one can achieve
// greater performance by using different block sizes").
type BlockSizeConfig struct {
	Inputs int
	Ratio  float64
	W, H   int
}

func (c *BlockSizeConfig) defaults() {
	if c.Inputs == 0 {
		c.Inputs = 16
	}
	if c.Ratio == 0 {
		c.Ratio = 0.25 // fetch bound, so the cache effect dominates
	}
	if c.W == 0 {
		c.W, c.H = 1024, 1024
	}
}

// blockShapes are the seven 64-thread block shapes, from fully horizontal
// to fully vertical; x-axis value is log2 of the block height.
var blockShapes = []struct{ w, h int }{
	{64, 1}, {32, 2}, {16, 4}, {8, 8}, {4, 16}, {2, 32}, {1, 64},
}

// BlockSizeSpec plans the compute block-shape sweep. Block shape changes
// within a series, so the series labels come from a closed-over label
// list (Card.Label omits the block shape by design).
func (s *Suite) BlockSizeSpec(cfg BlockSizeConfig) (FigureSpec, error) {
	cfg.defaults()
	fig := &report.Figure{
		ID:     "blocks",
		Title:  fmt.Sprintf("Compute block-size sweep (%d inputs, ratio %.2f)", cfg.Inputs, cfg.Ratio),
		XLabel: "log2(block height) [64x1 .. 1x64]",
		YLabel: "Time in seconds",
	}
	var pts []KernelPoint
	var labels []string
	for _, arch := range []device.Arch{device.RV770, device.RV870} {
		for _, dt := range []il.DataType{il.Float, il.Float4} {
			card := Card{Arch: arch, Mode: il.Compute, Type: dt}
			label := card.Label()
			for i, b := range blockShapes {
				card.BlockW, card.BlockH = b.w, b.h
				p := card.params(cfg.Inputs, 1, il.TextureSpace, il.GlobalSpace)
				p.ALUFetchRatio = cfg.Ratio
				k, err := s.generate(pipeline.GenALUFetch, p)
				if err != nil {
					return FigureSpec{}, err
				}
				pts = append(pts, KernelPoint{Card: card, X: float64(i), K: k, W: cfg.W, H: cfg.H})
				labels = append(labels, label)
			}
		}
	}
	return FigureSpec{Fig: fig, Points: pts, Finish: labelledSeries(labels)}, nil
}

// BlockSizeSweep times one fetch-bound kernel across every 64-thread block
// shape in compute mode on the GDDR5 chips. The square-ish shapes match
// the 8x8 texture tiles and win; the paper's 64x1 default and its 4x16
// suggestion are two points on this curve.
func (s *Suite) BlockSizeSweep(cfg BlockSizeConfig) (*report.Figure, []Run, error) {
	spec, err := s.BlockSizeSpec(cfg)
	if err != nil {
		return nil, nil, err
	}
	return s.RunFigureSpec(spec)
}

// ConstantsConfig parameterises the constants sweep. The paper lists the
// number of constants among every micro-benchmark's kernel parameters and
// holds it fixed to isolate other factors; this extension verifies the
// premise behind that choice — constants are free: they live in the
// constant file, occupy no general purpose registers and generate no
// fetch traffic.
type ConstantsConfig struct {
	Arch         device.Arch
	Inputs       int
	ALUOps       int
	MaxConstants int
	W, H         int
}

func (c *ConstantsConfig) defaults() {
	if c.Inputs == 0 {
		c.Inputs = 8
	}
	if c.ALUOps == 0 {
		c.ALUOps = 64
	}
	if c.MaxConstants == 0 {
		c.MaxConstants = 16
	}
	if c.W == 0 {
		c.W, c.H = 1024, 1024
	}
}

// ConstantsSpec plans the constants sweep.
func (s *Suite) ConstantsSpec(cfg ConstantsConfig) (FigureSpec, error) {
	cfg.defaults()
	fig := &report.Figure{
		ID:     "consts",
		Title:  fmt.Sprintf("Constant count sweep (%d inputs, %d ALU ops)", cfg.Inputs, cfg.ALUOps),
		XLabel: "Number of Constants",
		YLabel: "Time in seconds",
	}
	var pts []KernelPoint
	for _, dt := range []il.DataType{il.Float, il.Float4} {
		card := Card{Arch: cfg.Arch, Mode: il.Pixel, Type: dt}
		for n := 0; n <= cfg.MaxConstants; n += 4 {
			p := card.params(cfg.Inputs, 1, il.TextureSpace, il.TextureSpace)
			p.ALUOps = cfg.ALUOps
			p.Constants = n
			k, err := s.generate(pipeline.GenGeneric, p)
			if err != nil {
				return FigureSpec{}, err
			}
			pts = append(pts, KernelPoint{Card: card, X: float64(n), K: k, W: cfg.W, H: cfg.H})
		}
	}
	return FigureSpec{Fig: fig, Points: pts}, nil
}

// ConstantsSweep times one kernel shape with 0..MaxConstants constants
// folded into its (fixed-length) chain. The curve must be flat and the
// register count must not move.
func (s *Suite) ConstantsSweep(cfg ConstantsConfig) (*report.Figure, []Run, error) {
	spec, err := s.ConstantsSpec(cfg)
	if err != nil {
		return nil, nil, err
	}
	return s.RunFigureSpec(spec)
}

// AblationResult is one baseline-versus-ablated comparison.
type AblationResult struct {
	Name     string
	Baseline float64 // seconds
	Ablated  float64 // seconds
	// GPRWritesBase/Ablated report per-thread register-file write traffic
	// for the compiler (forwarding) ablations. Peak GPR counts are
	// unchanged for the suite's chain kernels — the linear scan reuses
	// dead input registers — so write traffic is the honest observable.
	GPRWritesBase, GPRWritesAblated int
}

// Ratio returns ablated/baseline time.
func (a AblationResult) Ratio() float64 {
	if a.Baseline == 0 {
		return 0
	}
	return a.Ablated / a.Baseline
}

// AblationStudy quantifies each modelled mechanism on the RV770 by
// switching it off and re-timing a reference kernel chosen to exercise it:
//
//   - clause switching (latency hiding): the Fig. 16 kernel at a single
//     resident wavefront;
//   - burst writes: the Fig. 14 kernel with scattered writes;
//   - tiled texture layout: the Fig. 7 kernel with row-major textures;
//   - PV forwarding and clause temporaries: the generic chain kernel
//     recompiled without them (registers rise, occupancy falls).
func (s *Suite) AblationStudy() ([]AblationResult, error) {
	ctx, err := s.context(device.RV770)
	if err != nil {
		return nil, err
	}
	var out []AblationResult

	launch := func(m *cal.Module, order raster.Order, ab sim.Ablations) (*cal.Event, error) {
		return ctx.Launch(m, cal.LaunchConfig{
			Order: order, W: 1024, H: 1024, Iterations: s.Iterations, Ablate: ab,
		})
	}

	// 1. Latency hiding via clause switching.
	regK, err := s.generate(pipeline.GenRegisterUsage, kerngen.Params{
		Mode: il.Pixel, Type: il.Float, Inputs: 64, Outputs: 1,
		ALUFetchRatio: 1.0, Space: 8, Step: 6,
	})
	if err != nil {
		return nil, err
	}
	m, err := ctx.LoadModule(regK)
	if err != nil {
		return nil, err
	}
	base, err := launch(m, raster.PixelOrder(), sim.Ablations{})
	if err != nil {
		return nil, err
	}
	abl, err := launch(m, raster.PixelOrder(), sim.Ablations{SingleWavefront: true})
	if err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Name: "clause switching (latency hiding)", Baseline: base.ElapsedSeconds(), Ablated: abl.ElapsedSeconds(),
	})

	// 2. Burst writes.
	wK, err := s.generate(pipeline.GenWriteLatency, kerngen.Params{
		Mode: il.Pixel, Type: il.Float4, Inputs: 8, Outputs: 8,
		OutSpace: il.GlobalSpace,
	})
	if err != nil {
		return nil, err
	}
	m, err = ctx.LoadModule(wK)
	if err != nil {
		return nil, err
	}
	base, err = launch(m, raster.PixelOrder(), sim.Ablations{})
	if err != nil {
		return nil, err
	}
	abl, err = launch(m, raster.PixelOrder(), sim.Ablations{NoBurstWrites: true})
	if err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Name: "burst writes", Baseline: base.ElapsedSeconds(), Ablated: abl.ElapsedSeconds(),
	})

	// 3. Tiled texture layout.
	fK, err := s.generate(pipeline.GenALUFetch, kerngen.Params{
		Mode: il.Pixel, Type: il.Float, Inputs: 16, Outputs: 1, ALUFetchRatio: 0.25,
	})
	if err != nil {
		return nil, err
	}
	m, err = ctx.LoadModule(fK)
	if err != nil {
		return nil, err
	}
	base, err = launch(m, raster.PixelOrder(), sim.Ablations{})
	if err != nil {
		return nil, err
	}
	abl, err = launch(m, raster.PixelOrder(), sim.Ablations{LinearTextures: true})
	if err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		Name: "tiled texture layout", Baseline: base.ElapsedSeconds(), Ablated: abl.ElapsedSeconds(),
	})

	// 4 & 5. Compiler forwarding paths: registers and occupancy.
	gK, err := s.generate(pipeline.GenGeneric, kerngen.Params{
		Mode: il.Pixel, Type: il.Float, Inputs: 8, Outputs: 1, ALUFetchRatio: 4.0,
	})
	if err != nil {
		return nil, err
	}
	for _, c := range []struct {
		name string
		opts ilc.Options
	}{
		{"PV forwarding", ilc.Options{NoPVForwarding: true}},
		{"clause temporaries", ilc.Options{NoClauseTemps: true}},
		{"all forwarding (PV + temps)", ilc.Options{NoPVForwarding: true, NoClauseTemps: true}},
	} {
		mb, err := ctx.LoadModule(gK)
		if err != nil {
			return nil, err
		}
		ma, err := ctx.LoadModuleWith(gK, c.opts)
		if err != nil {
			return nil, err
		}
		evb, err := launch(mb, raster.PixelOrder(), sim.Ablations{})
		if err != nil {
			return nil, err
		}
		eva, err := launch(ma, raster.PixelOrder(), sim.Ablations{})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Name:     c.name,
			Baseline: evb.ElapsedSeconds(), Ablated: eva.ElapsedSeconds(),
			GPRWritesBase:    mb.Stats().GPRWrites,
			GPRWritesAblated: ma.Stats().GPRWrites,
		})
	}
	return out, nil
}

// AblationTable formats an ablation study.
func AblationTable(results []AblationResult) *report.Table {
	t := &report.Table{
		Title:  "Ablation study (simulated HD 4870): mechanism off vs on",
		Header: []string{"mechanism", "baseline s", "ablated s", "slowdown", "GPR writes base", "GPR writes ablated"},
	}
	for _, r := range results {
		gb, ga := "-", "-"
		if r.GPRWritesBase > 0 {
			gb, ga = fmt.Sprintf("%d", r.GPRWritesBase), fmt.Sprintf("%d", r.GPRWritesAblated)
		}
		t.AddRow(r.Name, fmt.Sprintf("%.3f", r.Baseline), fmt.Sprintf("%.3f", r.Ablated),
			fmt.Sprintf("%.2fx", r.Ratio()), gb, ga)
	}
	return t
}
