package core

import (
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/report"
)

// TestParallelSweepDeterministic proves the README's guarantee: the
// worker-pool sweep produces bit-identical figures at any worker count,
// because every point is an independent deterministic simulation.
func TestParallelSweepDeterministic(t *testing.T) {
	run := func(workers int) string {
		s := NewSuite()
		s.Iterations = 1
		s.Workers = workers
		fig, _, err := s.ALUFetchRatio(ALUFetchConfig{
			Cards: []Card{
				{Arch: device.RV770, Mode: il.Pixel, Type: il.Float},
				{Arch: device.RV870, Mode: il.Compute, Type: il.Float4},
			},
			RatioMax: 2.0,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fig.CSV()
	}
	serial := run(1)
	for _, w := range []int{2, 8, 16} {
		if got := run(w); got != serial {
			t.Fatalf("figure differs at %d workers:\n%s\nvs serial:\n%s", w, got, serial)
		}
	}
}

// TestCachedSweepBitIdenticalToUncached proves the pipeline's caching
// guarantee: a parallel sweep served from the shared artifact stores is
// bit-identical to a serial sweep that recomputes every stage from
// scratch. Cache hits change wall-clock time, never results.
func TestCachedSweepBitIdenticalToUncached(t *testing.T) {
	run := func(workers int, disableCache bool) string {
		s := NewSuite()
		s.Iterations = 1
		s.Workers = workers
		s.DisableArtifactCache = disableCache
		fig, _, err := s.ALUFetchRatio(ALUFetchConfig{
			Cards: []Card{
				{Arch: device.RV770, Mode: il.Pixel, Type: il.Float},
				{Arch: device.RV870, Mode: il.Compute, Type: il.Float4},
			},
			RatioMax: 2.0,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fig.CSV()
	}
	uncachedSerial := run(1, true)
	if got := run(8, false); got != uncachedSerial {
		t.Fatalf("cached 8-worker figure differs from uncached serial figure:\n%s\nvs:\n%s",
			got, uncachedSerial)
	}
}

// TestStructuralHashCacheBitIdenticalAcrossFigures extends the caching
// guarantee beyond the ALU:Fetch sweep to figures that exercise the other
// pipeline stage shapes — compute-mode block walks (Fig. 8), latency
// chains (Fig. 11) and register-pressure variants (Fig. 16). The compile
// store is keyed by the kernel's structural hash, not its assembled text;
// this is the end-to-end check that hash-keyed artifact reuse serves
// results byte-equal to recomputing every stage from scratch.
func TestStructuralHashCacheBitIdenticalAcrossFigures(t *testing.T) {
	figures := []struct {
		name string
		run  func(*Suite) (*report.Figure, []Run, error)
	}{
		{"fig8", (*Suite).Fig8},
		{"fig11", (*Suite).Fig11},
		{"fig16", (*Suite).Fig16},
	}
	for _, f := range figures {
		t.Run(f.name, func(t *testing.T) {
			render := func(disableCache bool) string {
				s := NewSuite()
				s.Iterations = 1
				s.DisableArtifactCache = disableCache
				fig, _, err := f.run(s)
				if err != nil {
					t.Fatal(err)
				}
				return fig.CSV()
			}
			cached := render(false)
			uncached := render(true)
			if cached != uncached {
				t.Errorf("hash-keyed cached figure differs from uncached:\n%s\nvs:\n%s",
					cached, uncached)
			}
		})
	}
}

// TestLaunchAccountingMatchesContexts cross-checks the suite's launch
// counter against the per-context counters in the CAL layer: every
// launch the suite issues goes through exactly one of its contexts, so
// the sums must agree even with artifact caching collapsing the work
// behind those launches.
func TestLaunchAccountingMatchesContexts(t *testing.T) {
	s := suite()
	s.Workers = 4
	if _, _, err := s.Fig7(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Fig13(); err != nil {
		t.Fatal(err)
	}
	var fromContexts int64
	s.ctxMu.Lock()
	nctx := len(s.contexts)
	for _, c := range s.contexts {
		fromContexts += int64(c.Launches())
	}
	s.ctxMu.Unlock()
	if nctx == 0 {
		t.Fatal("no contexts opened")
	}
	if got := s.KernelLaunches(); got == 0 || got != fromContexts {
		t.Fatalf("suite counted %d launches, contexts counted %d", got, fromContexts)
	}
}

// TestSuiteRunsAreRepeatable re-runs one figure twice on one suite: the
// simulator holds no hidden state between launches.
func TestSuiteRunsAreRepeatable(t *testing.T) {
	s := suite()
	fig1, _, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	fig2, _, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if fig1.CSV() != fig2.CSV() {
		t.Fatal("same suite produced different results on repeat")
	}
}
