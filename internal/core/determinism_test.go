package core

import (
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
)

// TestParallelSweepDeterministic proves the README's guarantee: the
// worker-pool sweep produces bit-identical figures at any worker count,
// because every point is an independent deterministic simulation.
func TestParallelSweepDeterministic(t *testing.T) {
	run := func(workers int) string {
		s := NewSuite()
		s.Iterations = 1
		s.Workers = workers
		fig, _, err := s.ALUFetchRatio(ALUFetchConfig{
			Cards: []Card{
				{Arch: device.RV770, Mode: il.Pixel, Type: il.Float},
				{Arch: device.RV870, Mode: il.Compute, Type: il.Float4},
			},
			RatioMax: 2.0,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fig.CSV()
	}
	serial := run(1)
	for _, w := range []int{2, 8, 16} {
		if got := run(w); got != serial {
			t.Fatalf("figure differs at %d workers:\n%s\nvs serial:\n%s", w, got, serial)
		}
	}
}

// TestSuiteRunsAreRepeatable re-runs one figure twice on one suite: the
// simulator holds no hidden state between launches.
func TestSuiteRunsAreRepeatable(t *testing.T) {
	s := suite()
	fig1, _, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	fig2, _, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if fig1.CSV() != fig2.CSV() {
		t.Fatal("same suite produced different results on repeat")
	}
}
