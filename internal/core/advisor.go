package core

// The advisor turns a timed run into the paper's optimization guidance:
// "We express how these micro-benchmarks can be applied to determine
// where optimizations need to occur ... Furthermore, we provide
// suggestions for optimizations based on the boundedness of the kernel"
// (Section V). Each rule is a direct restatement of a Section IV
// observation.

import (
	"fmt"

	"amdgpubench/internal/il"
)

// Advice is one actionable suggestion with its provenance in the paper.
type Advice struct {
	Suggestion string
	Basis      string // which experiment/section motivates it
}

// Advise inspects a run's bottleneck classification and occupancy and
// returns the applicable prescriptions, most impactful first.
func Advise(r Run) []Advice {
	var out []Advice
	switch r.Bottleneck {
	case "fetch":
		out = append(out, Advice{
			Suggestion: "Increase ALU operations per fetch (compute more per fetched element, e.g. unroll outputs per thread) until the ALU:Fetch crossover.",
			Basis:      "Fig. 7: fetch-bound kernels sit on the plateau; ALU work is free until the crossover (Section IV-B, matrix multiplication).",
		})
		if r.Card.Mode == il.Compute && (r.Card.BlockW == 0 || r.Card.BlockW == 64) {
			out = append(out, Advice{
				Suggestion: "Replace the naive 64x1 block with a two-dimensional block (e.g. 4x16) to restore cache locality.",
				Basis:      "Fig. 8: a 4x16 block triples/quadruples compute-mode throughput; the cache is optimized for tiled access (Section IV-A).",
			})
		}
		if r.HitRate > 0 && r.HitRate < 0.9 {
			out = append(out, Advice{
				Suggestion: fmt.Sprintf("Raise the texture cache hit rate (currently %.0f%%): increase elements per block or reduce simultaneous wavefronts.", r.HitRate*100),
				Basis:      "Section IV-B: increasing the cache hit rate reduces fetch boundedness.",
			})
		}
		if r.Waves <= 8 {
			out = append(out, Advice{
				Suggestion: fmt.Sprintf("Reduce register usage (currently %d GPRs, %d wavefronts/SIMD) so more wavefronts can hide fetch latency.", r.GPRs, r.Waves),
				Basis:      "Fig. 16: decreasing register pressure raises simultaneous wavefronts and cuts execution time until cache contention pushes back.",
			})
		}
	case "ALU":
		out = append(out, Advice{
			Suggestion: "The fetch and memory paths have idle capacity: merge in fetch-heavy, low-arithmetic work (kernel or application merging) at little or no cost.",
			Basis:      "Section IV-A: the Binomial Option Pricing sample's ALU-bound kernels can absorb added fetches/outputs while staying ALU bound.",
		})
		if r.Waves >= 16 && r.HitRate > 0.9 {
			out = append(out, Advice{
				Suggestion: fmt.Sprintf("Consider spending registers (currently %d) on blocking/reuse: occupancy is ample and the cache is healthy.", r.GPRs),
				Basis:      "Section IV-E: AMD added 'dummy' registers to SGEMM to trade wavefronts for cache hit rate.",
			})
		}
	case "memory":
		out = append(out, Advice{
			Suggestion: "The kernel is memory/write bound: additional ALU or fetch instructions are free until the bound flips — fold more computation per written element.",
			Basis:      "Section IV-C: the Monte Carlo sample's write-bound kernels have ALU headroom up to the write-to-ALU flip.",
		})
		out = append(out, Advice{
			Suggestion: "Keep writes to consecutive addresses so the burst-write path engages; vectorizing output (float4) carries no penalty.",
			Basis:      "Section II-B (burst writing) and Fig. 14 (float4 writes cost the same per byte).",
		})
	}
	return out
}

// AdviseString renders the advice as a numbered list.
func AdviseString(r Run) string {
	advs := Advise(r)
	if len(advs) == 0 {
		return "no advice: bottleneck unclassified\n"
	}
	s := fmt.Sprintf("Kernel is %s bound on the %s (%s, %s):\n", r.Bottleneck,
		r.Card.Arch.CardName(), r.Card.Mode, r.Card.Type)
	for i, a := range advs {
		s += fmt.Sprintf("%d. %s\n   [%s]\n", i+1, a.Suggestion, a.Basis)
	}
	return s
}
