package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"sync"

	"amdgpubench/internal/fsatomic"
	"amdgpubench/internal/obs"
)

// Sweep checkpointing: runPoints records every completed point into a
// JSON file as it finishes, so a campaign killed mid-sweep (the paper's
// figures are thousands of launches) resumes from the last completed
// point instead of starting over. The file is bound to its sweep by a
// signature over every point's identity and the iteration count: a
// checkpoint from a different figure, card set or configuration is
// ignored rather than resumed into bogus results.

// checkpointFile is the on-disk format.
type checkpointFile struct {
	Signature string         `json:"signature"`
	Runs      map[string]Run `json:"runs"`
}

// checkpoint is the live handle: a restored map plus incremental saves.
// Saves are batched: put marks the map dirty and rewrites the file only
// every flushEvery completions; the sweep runner flushes on every exit
// path (normal, fatal, interrupt), so at rest the file always holds the
// full completed set. A SIGKILL between flushes loses at most
// flushEvery-1 most-recent points — they recompute on resume, which is
// the same contract a kill during a point already had — while a
// back-to-back daemon campaign stops paying a full-file fsync per point
// (O(n²) bytes per sweep becomes O(n²/k)).
type checkpoint struct {
	path string
	sig  string

	mu    sync.Mutex
	runs  map[int]Run
	dirty int // puts since the last flush
	every int // flush cadence; put flushes when dirty reaches it
}

// defaultFlushEvery balances durability against save cost: at the
// suite's sweep sizes a batch of 8 keeps the crash-replay window under a
// second of work while cutting full-file rewrites by ~8x.
const defaultFlushEvery = 8

// sweepSignature fingerprints a sweep: the kernel identity, card, x and
// domain of every point, plus the iteration count. Kernel identity is
// the structural hash of the IL (il.Kernel.Hash), not the kernel name:
// two generator versions can emit different bodies under the same name,
// and resuming the new sweep from the old sweep's checkpoint would
// silently splice stale timings into the figure.
func sweepSignature(pts []point, iterations int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "iters=%d;n=%d;", iterations, len(pts))
	for _, p := range pts {
		var kid string
		if p.k != nil {
			sum := p.k.Hash()
			kid = fmt.Sprintf("%x", sum[:8])
		}
		fmt.Fprintf(h, "%s|%s|%g|%dx%d;", p.card.Label(), kid, p.x, p.w, p.h)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// openCheckpoint loads the file if it exists and matches the signature.
// A missing file or a signature mismatch starts an empty checkpoint. A
// corrupt file — a torn write from a kill mid-save on a filesystem
// without atomic rename, or outside interference — is quarantined:
// renamed to <path>.corrupt (preserved for diagnosis), counted on the
// quarantined counter, and the sweep starts fresh. Recomputing a
// half-finished campaign is the deterministic, safe outcome; wedging
// every subsequent resume on one torn write is not.
// flushEvery <= 0 selects the default save cadence; 1 restores the old
// save-per-point behavior.
func openCheckpoint(path, sig string, flushEvery int, quarantined *obs.Counter) (*checkpoint, error) {
	if flushEvery <= 0 {
		flushEvery = defaultFlushEvery
	}
	ck := &checkpoint{path: path, sig: sig, runs: map[int]Run{}, every: flushEvery}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ck, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		if rerr := os.Rename(path, path+".corrupt"); rerr != nil {
			return nil, fmt.Errorf("core: checkpoint %s is corrupt (%v) and could not be quarantined: %w", path, err, rerr)
		}
		quarantined.Inc()
		return ck, nil
	}
	if f.Signature != sig {
		return ck, nil
	}
	for key, r := range f.Runs {
		i, err := strconv.Atoi(key)
		if err != nil || i < 0 || r.Failed() {
			// Failure records are not restored: a resumed sweep gets a
			// fresh chance at previously failed points.
			continue
		}
		ck.runs[i] = r
	}
	return ck, nil
}

// get returns the restored run for point i, if any.
func (c *checkpoint) get(i int) (Run, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.runs[i]
	return r, ok
}

// put records a completed point and, every flushEvery-th completion,
// rewrites the file crash-atomically (see flushLocked). The batching
// matters for a daemon running campaigns back-to-back: saving per point
// rewrites and fsyncs the whole accumulated file each time — O(n²)
// bytes per sweep — and the fsyncs serialize the worker pool behind the
// checkpoint mutex.
func (c *checkpoint) put(i int, r Run) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs[i] = r
	c.dirty++
	if c.dirty < c.every {
		return nil
	}
	return c.flushLocked()
}

// flush writes any unsaved completions to disk. The sweep runner calls
// it after the workers drain on every exit path, so a sweep that
// returns — normally, fatally, or interrupted — always leaves its full
// completed set on disk; only a kill can lose the tail of a batch.
func (c *checkpoint) flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

// flushLocked rewrites the file crash-atomically: the new contents are
// written to a unique temp file, fsynced, and renamed over the old
// checkpoint, so a SIGKILL at any instant leaves either the old complete
// file or the new complete file — never a torn mix (the crash-torture
// harness in internal/soak exercises exactly this).
func (c *checkpoint) flushLocked() error {
	if c.dirty == 0 {
		return nil
	}
	f := checkpointFile{Signature: c.sig, Runs: make(map[string]Run, len(c.runs))}
	for k, v := range c.runs {
		f.Runs[strconv.Itoa(k)] = v
	}
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := WriteFileAtomic(c.path, data); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	c.dirty = 0
	return nil
}

// MergeCheckpoints unions the completed runs of every src checkpoint —
// the per-shard files a sharded campaign writes — into dst, which an
// unsharded run of the same campaign then resumes from. Every source
// must parse and carry the same signature (each shard fingerprints the
// FULL point list, so a mismatch means the files belong to different
// campaigns — that is an error, not something to paper over). An
// existing dst with the matching signature contributes its runs too,
// but only for keys no shard recorded: the shard files are the fresh
// output of the campaign being merged, while dst is whatever an earlier
// run left behind — when both hold a run for the same key, the shard's
// must win. (The absorb order below encodes this: sources first, each
// key claimed once, dst last.) A dst from some other campaign is ignored
// and overwritten. Failure records are dropped, matching restore
// semantics: a merged resume gets a fresh chance at failed points.
// Returns the number of distinct completed runs written. The write is
// crash-atomic.
func MergeCheckpoints(dst string, srcs ...string) (int, error) {
	if len(srcs) == 0 {
		return 0, fmt.Errorf("core: merge: no source checkpoints")
	}
	merged := checkpointFile{Runs: map[string]Run{}}
	// firstWins: a later file never displaces a key an earlier file (a
	// shard, or an earlier shard in -figs order) already claimed. Shards
	// partition points disjointly, so among themselves the order is
	// immaterial; it is dst — absorbed last — that this demotes.
	absorb := func(path string, required bool) error {
		data, err := os.ReadFile(path)
		if errors.Is(err, os.ErrNotExist) && !required {
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: merge: %w", err)
		}
		var f checkpointFile
		if err := json.Unmarshal(data, &f); err != nil {
			if !required {
				return nil // a stale or torn dst just gets overwritten
			}
			return fmt.Errorf("core: merge: %s: %w", path, err)
		}
		if merged.Signature == "" {
			merged.Signature = f.Signature
		}
		if f.Signature != merged.Signature {
			if !required {
				return nil
			}
			return fmt.Errorf("core: merge: %s has signature %s, want %s (different campaign)",
				path, f.Signature, merged.Signature)
		}
		for key, r := range f.Runs {
			if r.Failed() {
				continue
			}
			if _, claimed := merged.Runs[key]; claimed {
				continue
			}
			merged.Runs[key] = r
		}
		return nil
	}
	for _, src := range srcs {
		if err := absorb(src, true); err != nil {
			return 0, err
		}
	}
	if err := absorb(dst, false); err != nil {
		return 0, err
	}
	data, err := json.MarshalIndent(&merged, "", " ")
	if err != nil {
		return 0, fmt.Errorf("core: merge: %w", err)
	}
	if err := WriteFileAtomic(dst, data); err != nil {
		return 0, fmt.Errorf("core: merge: %w", err)
	}
	return len(merged.Runs), nil
}

// WriteFileAtomic writes data to path crash-atomically AND safely under
// concurrent writers to the same path; it is fsatomic.WriteFile under
// the name higher layers persisting campaign state have always used.
// (An earlier version used a fixed path+".tmp" temp name, which was
// crash-atomic for one writer but let two concurrent writers — the
// multi-client daemon case — rename each other's half-written temps
// into place; internal/fsatomic documents the race and carries the
// regression test.)
func WriteFileAtomic(path string, data []byte) error {
	return fsatomic.WriteFile(path, data)
}
