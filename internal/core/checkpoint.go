package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"sync"

	"amdgpubench/internal/obs"
)

// Sweep checkpointing: runPoints records every completed point into a
// JSON file as it finishes, so a campaign killed mid-sweep (the paper's
// figures are thousands of launches) resumes from the last completed
// point instead of starting over. The file is bound to its sweep by a
// signature over every point's identity and the iteration count: a
// checkpoint from a different figure, card set or configuration is
// ignored rather than resumed into bogus results.

// checkpointFile is the on-disk format.
type checkpointFile struct {
	Signature string         `json:"signature"`
	Runs      map[string]Run `json:"runs"`
}

// checkpoint is the live handle: a restored map plus incremental saves.
type checkpoint struct {
	path string
	sig  string

	mu   sync.Mutex
	runs map[int]Run
}

// sweepSignature fingerprints a sweep: the kernel identity, card, x and
// domain of every point, plus the iteration count. Kernel identity is
// the structural hash of the IL (il.Kernel.Hash), not the kernel name:
// two generator versions can emit different bodies under the same name,
// and resuming the new sweep from the old sweep's checkpoint would
// silently splice stale timings into the figure.
func sweepSignature(pts []point, iterations int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "iters=%d;n=%d;", iterations, len(pts))
	for _, p := range pts {
		var kid string
		if p.k != nil {
			sum := p.k.Hash()
			kid = fmt.Sprintf("%x", sum[:8])
		}
		fmt.Fprintf(h, "%s|%s|%g|%dx%d;", p.card.Label(), kid, p.x, p.w, p.h)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// openCheckpoint loads the file if it exists and matches the signature.
// A missing file or a signature mismatch starts an empty checkpoint. A
// corrupt file — a torn write from a kill mid-save on a filesystem
// without atomic rename, or outside interference — is quarantined:
// renamed to <path>.corrupt (preserved for diagnosis), counted on the
// quarantined counter, and the sweep starts fresh. Recomputing a
// half-finished campaign is the deterministic, safe outcome; wedging
// every subsequent resume on one torn write is not.
func openCheckpoint(path, sig string, quarantined *obs.Counter) (*checkpoint, error) {
	ck := &checkpoint{path: path, sig: sig, runs: map[int]Run{}}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ck, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		if rerr := os.Rename(path, path+".corrupt"); rerr != nil {
			return nil, fmt.Errorf("core: checkpoint %s is corrupt (%v) and could not be quarantined: %w", path, err, rerr)
		}
		quarantined.Inc()
		return ck, nil
	}
	if f.Signature != sig {
		return ck, nil
	}
	for key, r := range f.Runs {
		i, err := strconv.Atoi(key)
		if err != nil || i < 0 || r.Failed() {
			// Failure records are not restored: a resumed sweep gets a
			// fresh chance at previously failed points.
			continue
		}
		ck.runs[i] = r
	}
	return ck, nil
}

// get returns the restored run for point i, if any.
func (c *checkpoint) get(i int) (Run, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.runs[i]
	return r, ok
}

// put records a completed point and rewrites the file crash-atomically:
// the new contents are written to a temp file, fsynced, and renamed over
// the old checkpoint, so a SIGKILL at any instant leaves either the old
// complete file or the new complete file — never a torn mix (the crash-
// torture harness in internal/soak exercises exactly this). Rewriting
// the whole file per point is O(n) per save; at the suite's sweep sizes
// (hundreds of points) that is well under the cost of one simulated
// launch.
func (c *checkpoint) put(i int, r Run) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs[i] = r
	f := checkpointFile{Signature: c.sig, Runs: make(map[string]Run, len(c.runs))}
	for k, v := range c.runs {
		f.Runs[strconv.Itoa(k)] = v
	}
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := WriteFileAtomic(c.path, data); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}

// MergeCheckpoints unions the completed runs of every src checkpoint —
// the per-shard files a sharded campaign writes — into dst, which an
// unsharded run of the same campaign then resumes from. Every source
// must parse and carry the same signature (each shard fingerprints the
// FULL point list, so a mismatch means the files belong to different
// campaigns — that is an error, not something to paper over). An
// existing dst with the matching signature contributes its runs too; a
// dst from some other campaign is ignored and overwritten. Failure
// records are dropped, matching restore semantics: a merged resume gets
// a fresh chance at failed points. Returns the number of distinct
// completed runs written. The write is crash-atomic.
func MergeCheckpoints(dst string, srcs ...string) (int, error) {
	if len(srcs) == 0 {
		return 0, fmt.Errorf("core: merge: no source checkpoints")
	}
	merged := checkpointFile{Runs: map[string]Run{}}
	absorb := func(path string, required bool) error {
		data, err := os.ReadFile(path)
		if errors.Is(err, os.ErrNotExist) && !required {
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: merge: %w", err)
		}
		var f checkpointFile
		if err := json.Unmarshal(data, &f); err != nil {
			if !required {
				return nil // a stale or torn dst just gets overwritten
			}
			return fmt.Errorf("core: merge: %s: %w", path, err)
		}
		if merged.Signature == "" {
			merged.Signature = f.Signature
		}
		if f.Signature != merged.Signature {
			if !required {
				return nil
			}
			return fmt.Errorf("core: merge: %s has signature %s, want %s (different campaign)",
				path, f.Signature, merged.Signature)
		}
		for key, r := range f.Runs {
			if r.Failed() {
				continue
			}
			merged.Runs[key] = r
		}
		return nil
	}
	for _, src := range srcs {
		if err := absorb(src, true); err != nil {
			return 0, err
		}
	}
	if err := absorb(dst, false); err != nil {
		return 0, err
	}
	data, err := json.MarshalIndent(&merged, "", " ")
	if err != nil {
		return 0, fmt.Errorf("core: merge: %w", err)
	}
	if err := WriteFileAtomic(dst, data); err != nil {
		return 0, fmt.Errorf("core: merge: %w", err)
	}
	return len(merged.Runs), nil
}

// WriteFileAtomic writes data to path crash-atomically with the same
// temp+fsync+rename discipline the sweep checkpoint uses: a SIGKILL (or
// machine crash, thanks to the fsync) at any instant leaves either the
// old complete file or the new complete file, never a torn mix. It is
// exported so higher layers persisting campaign state — the campaign
// scheduler's report files above all — share this one writer instead of
// growing weaker copies.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// writeFileSync writes data and forces it to stable storage before
// returning. Without the Sync, rename-over-old is atomic against crashes
// of the process but not of the machine: the rename can hit disk before
// the data blocks, leaving a validly-named file of garbage.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
