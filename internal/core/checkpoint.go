package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"sync"
)

// Sweep checkpointing: runPoints records every completed point into a
// JSON file as it finishes, so a campaign killed mid-sweep (the paper's
// figures are thousands of launches) resumes from the last completed
// point instead of starting over. The file is bound to its sweep by a
// signature over every point's identity and the iteration count: a
// checkpoint from a different figure, card set or configuration is
// ignored rather than resumed into bogus results.

// checkpointFile is the on-disk format.
type checkpointFile struct {
	Signature string         `json:"signature"`
	Runs      map[string]Run `json:"runs"`
}

// checkpoint is the live handle: a restored map plus incremental saves.
type checkpoint struct {
	path string
	sig  string

	mu   sync.Mutex
	runs map[int]Run
}

// sweepSignature fingerprints a sweep: the kernel identity, card, x and
// domain of every point, plus the iteration count. Kernel identity is
// the structural hash of the IL (il.Kernel.Hash), not the kernel name:
// two generator versions can emit different bodies under the same name,
// and resuming the new sweep from the old sweep's checkpoint would
// silently splice stale timings into the figure.
func sweepSignature(pts []point, iterations int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "iters=%d;n=%d;", iterations, len(pts))
	for _, p := range pts {
		var kid string
		if p.k != nil {
			sum := p.k.Hash()
			kid = fmt.Sprintf("%x", sum[:8])
		}
		fmt.Fprintf(h, "%s|%s|%g|%dx%d;", p.card.Label(), kid, p.x, p.w, p.h)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// openCheckpoint loads the file if it exists and matches the signature.
// A missing file or a signature mismatch starts an empty checkpoint; a
// corrupt file is an error (silently discarding one would silently
// recompute a half-finished campaign).
func openCheckpoint(path, sig string) (*checkpoint, error) {
	ck := &checkpoint{path: path, sig: sig, runs: map[int]Run{}}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ck, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("core: checkpoint %s is corrupt: %w", path, err)
	}
	if f.Signature != sig {
		return ck, nil
	}
	for key, r := range f.Runs {
		i, err := strconv.Atoi(key)
		if err != nil || i < 0 || r.Failed() {
			// Failure records are not restored: a resumed sweep gets a
			// fresh chance at previously failed points.
			continue
		}
		ck.runs[i] = r
	}
	return ck, nil
}

// get returns the restored run for point i, if any.
func (c *checkpoint) get(i int) (Run, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.runs[i]
	return r, ok
}

// put records a completed point and rewrites the file atomically
// (temp file + rename), so a kill mid-write never corrupts the
// checkpoint. Rewriting the whole file per point is O(n) per save; at
// the suite's sweep sizes (hundreds of points) that is well under the
// cost of one simulated launch.
func (c *checkpoint) put(i int, r Run) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs[i] = r
	f := checkpointFile{Signature: c.sig, Runs: make(map[string]Run, len(c.runs))}
	for k, v := range c.runs {
		f.Runs[strconv.Itoa(k)] = v
	}
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}
