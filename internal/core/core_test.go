package core

import (
	"math"
	"strings"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/report"
)

func TestCardLabels(t *testing.T) {
	c := Card{Arch: device.RV770, Mode: il.Compute, Type: il.Float4}
	if c.Label() != "4870 Compute Float4" {
		t.Errorf("label = %q", c.Label())
	}
	c = Card{Arch: device.RV670, Mode: il.Pixel, Type: il.Float}
	if c.Label() != "3870 Pixel Float" {
		t.Errorf("label = %q", c.Label())
	}
}

func TestCardOrder(t *testing.T) {
	c := Card{Arch: device.RV770, Mode: il.Pixel}
	o, err := c.Order()
	if err != nil || o.Mode != il.Pixel {
		t.Fatalf("pixel order: %v %v", o, err)
	}
	c = Card{Arch: device.RV770, Mode: il.Compute}
	o, err = c.Order()
	if err != nil || o.BlockW != 64 || o.BlockH != 1 {
		t.Fatalf("default compute order should be 64x1, got %v (%v)", o, err)
	}
	c = Card{Arch: device.RV770, Mode: il.Compute, BlockW: 4, BlockH: 16}
	o, err = c.Order()
	if err != nil || o.BlockW != 4 {
		t.Fatalf("custom block order: %v %v", o, err)
	}
	c.BlockW, c.BlockH = 5, 5
	if _, err := c.Order(); err == nil {
		t.Fatal("25-thread block accepted")
	}
}

func TestStandardCards(t *testing.T) {
	cards := StandardCards(0, 0)
	// 3 chips x 2 types pixel + 2 chips x 2 types compute = 10 series,
	// matching Fig. 7's legend.
	if len(cards) != 10 {
		t.Fatalf("standard cards = %d, want 10", len(cards))
	}
	for _, c := range cards {
		if c.Arch == device.RV670 && c.Mode == il.Compute {
			t.Fatal("RV670 compute card generated")
		}
	}
	if n := len(PixelCards()); n != 6 {
		t.Fatalf("pixel cards = %d, want 6", n)
	}
	if n := len(ComputeCards(4, 16)); n != 4 {
		t.Fatalf("compute cards = %d, want 4", n)
	}
}

func TestHardwareTableMatchesPaper(t *testing.T) {
	s := NewSuite()
	out := s.HardwareTable().Format()
	for _, want := range []string{
		"RV670  320   16", "RV770  800   40", "RV870  1600  80",
		"750Mhz", "850Mhz", "DDR4", "DDR5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func seriesByLabel(t *testing.T, fig *report.Figure, label string) report.Series {
	t.Helper()
	for _, s := range fig.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("figure %s has no series %q", fig.ID, label)
	return report.Series{}
}

func at(t *testing.T, s report.Series, x float64) float64 {
	t.Helper()
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	t.Fatalf("series %q has no point at x=%g", s.Label, x)
	return 0
}

func suite() *Suite {
	s := NewSuite()
	s.Iterations = 100 // relative shapes are iteration-invariant
	return s
}

func TestALUFetchDefaultsAndRunMetadata(t *testing.T) {
	s := suite()
	fig, runs, err := s.ALUFetchRatio(ALUFetchConfig{
		Cards:    []Card{{Arch: device.RV770, Mode: il.Pixel, Type: il.Float}},
		RatioMax: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 || len(fig.Series[0].Points) != 4 {
		t.Fatalf("expected 4 ratio points, got %+v", fig.Series)
	}
	for _, r := range runs {
		if r.Seconds <= 0 || r.GPRs <= 0 || r.Waves <= 0 {
			t.Fatalf("run metadata incomplete: %+v", r)
		}
		if r.Bottleneck == "" {
			t.Fatalf("run missing bottleneck: %+v", r)
		}
	}
}

func TestRegisterUsageAxisDescends(t *testing.T) {
	s := suite()
	fig, _, err := s.RegisterUsage(RegisterUsageConfig{
		Cards: []Card{{Arch: device.RV770, Mode: il.Pixel, Type: il.Float}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := fig.Series[0].Points
	if len(pts) < 6 {
		t.Fatalf("too few register-usage points: %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X >= pts[i-1].X {
			t.Fatalf("GPR axis not descending: %v", pts)
		}
	}
}

func TestCrossoverOf(t *testing.T) {
	fig := &report.Figure{}
	sr := fig.AddSeries("a")
	sr.Add(1, 10)
	sr.Add(2, 10)
	sr.Add(3, 20)
	if got := CrossoverOf(fig, "a"); got != 3 {
		t.Fatalf("crossover = %v, want 3", got)
	}
	if !math.IsNaN(CrossoverOf(fig, "missing")) {
		t.Fatal("missing series should yield NaN")
	}
}
