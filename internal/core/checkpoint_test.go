package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
)

// writeCheckpointFile writes a raw checkpoint with the given signature
// and runs, bypassing the live handle — the shape shard files and stale
// leftovers have on disk.
func writeCheckpointFile(t *testing.T, path, sig string, runs map[string]Run) {
	t.Helper()
	data, err := json.Marshal(checkpointFile{Signature: sig, Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func mergedRuns(t *testing.T, path string) map[string]Run {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	return f.Runs
}

// TestMergeShardBeatsStaleDst is the regression test for the merge
// precedence bug: MergeCheckpoints used to absorb dst AFTER the shard
// sources with plain map assignment, so a stale run an earlier campaign
// left in dst silently overwrote the fresh run a shard just computed
// for the same key. Shards are the output of the merge; dst is history.
func TestMergeShardBeatsStaleDst(t *testing.T) {
	dir := t.TempDir()
	card := Card{Arch: device.RV770, Mode: il.Pixel, Type: il.Float}
	const sig = "00000000deadbeef"

	fresh := Run{Card: card, X: 1, Seconds: 2.5, GPRs: 8}
	stale := Run{Card: card, X: 1, Seconds: 99.0, GPRs: 8}
	dstOnly := Run{Card: card, X: 3, Seconds: 7.0, GPRs: 4}

	shard := filepath.Join(dir, "ck.json.shard0of2")
	writeCheckpointFile(t, shard, sig, map[string]Run{"1": fresh})

	// dst holds a stale run for key "1" — a key the shard also completed
	// — plus a key no shard touched, which must survive the merge.
	dst := filepath.Join(dir, "ck.json")
	writeCheckpointFile(t, dst, sig, map[string]Run{"1": stale, "3": dstOnly})

	n, err := MergeCheckpoints(dst, shard)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("merged %d runs, want 2", n)
	}
	got := mergedRuns(t, dst)
	if got["1"] != fresh {
		t.Fatalf("key 1 = %+v, want the shard's fresh run %+v (stale dst won the merge)", got["1"], fresh)
	}
	if got["3"] != dstOnly {
		t.Fatalf("key 3 = %+v, want dst's own run preserved", got["3"])
	}
}

func TestMergeRejectsForeignShard(t *testing.T) {
	dir := t.TempDir()
	card := Card{Arch: device.RV770, Mode: il.Pixel, Type: il.Float}
	a := filepath.Join(dir, "ck.json.shard0of2")
	b := filepath.Join(dir, "ck.json.shard1of2")
	writeCheckpointFile(t, a, "aaaaaaaaaaaaaaaa", map[string]Run{"0": {Card: card, Seconds: 1}})
	writeCheckpointFile(t, b, "bbbbbbbbbbbbbbbb", map[string]Run{"1": {Card: card, Seconds: 1}})
	if _, err := MergeCheckpoints(filepath.Join(dir, "ck.json"), a, b); err == nil {
		t.Fatal("shards from different campaigns merged without error")
	}
}

func TestMergeDropsFailureRecords(t *testing.T) {
	dir := t.TempDir()
	card := Card{Arch: device.RV770, Mode: il.Pixel, Type: il.Float}
	shard := filepath.Join(dir, "ck.json.shard0of1")
	writeCheckpointFile(t, shard, "cafecafecafecafe", map[string]Run{
		"0": {Card: card, Seconds: 1},
		"1": {Card: card, Err: "kernel timeout"},
	})
	dst := filepath.Join(dir, "ck.json")
	n, err := MergeCheckpoints(dst, shard)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("merged %d runs, want 1 (failure records drop)", n)
	}
	if _, ok := mergedRuns(t, dst)["1"]; ok {
		t.Fatal("failure record survived the merge")
	}
}

// TestCheckpointBatchedSaves pins the save cadence: put rewrites the
// file only every flushEvery-th completion, and flush pushes the
// remainder — the contract that turned O(n²) per-sweep checkpoint bytes
// into O(n²/k) without giving up crash-atomicity.
func TestCheckpointBatchedSaves(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	card := Card{Arch: device.RV770, Mode: il.Pixel, Type: il.Float}

	ck, err := openCheckpoint(path, "feedfacefeedface", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ck.put(i, Run{Card: card, X: float64(i), Seconds: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("file written after 3 of 4 puts (stat err %v); batching is off", err)
	}
	if err := ck.put(3, Run{Card: card, X: 3, Seconds: 1}); err != nil {
		t.Fatal(err)
	}
	if got := len(mergedRuns(t, path)); got != 4 {
		t.Fatalf("after 4th put file holds %d runs, want 4", got)
	}
	// Two more puts stay in memory until flush.
	for i := 4; i < 6; i++ {
		if err := ck.put(i, Run{Card: card, X: float64(i), Seconds: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(mergedRuns(t, path)); got != 4 {
		t.Fatalf("mid-batch file holds %d runs, want still 4", got)
	}
	if err := ck.flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(mergedRuns(t, path)); got != 6 {
		t.Fatalf("after flush file holds %d runs, want 6", got)
	}
	// A clean flush leaves nothing dirty: flushing again is a no-op even
	// if the file vanishes out from under it.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := ck.flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("no-dirty flush rewrote the file")
	}
}
