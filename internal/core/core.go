// Package core is the micro-benchmark suite itself: the paper's primary
// contribution. Each benchmark generates parameterised IL kernels
// (internal/kerngen), compiles them through the CAL layer, times them on
// the simulated GPUs, and emits a report figure shaped like the paper's:
//
//	ALUFetchRatio   — Figs. 7, 8, 9, 10
//	ReadLatency     — Figs. 11 (texture) and 12 (global)
//	WriteLatency    — Figs. 13 (streaming store) and 14 (global write)
//	DomainSize      — Fig. 15 (a) pixel and (b) compute
//	RegisterUsage   — Figs. 16 and 17
//	ClauseUsage     — the Fig. 5 control experiment
//	HardwareTable   — Table I
//
// Beyond regenerating curves, every run reports which of the three
// hardware bottlenecks (ALU, texture fetch, memory) limited each kernel —
// the classification the paper argues is the starting point of any
// optimization.
package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"amdgpubench/internal/cal"
	"amdgpubench/internal/device"
	"amdgpubench/internal/fault"
	"amdgpubench/internal/il"
	"amdgpubench/internal/kerngen"
	"amdgpubench/internal/obs"
	"amdgpubench/internal/pipeline"
	"amdgpubench/internal/raster"
)

// Card is one plotted configuration: a GPU in a shader mode with a data
// type and (for compute mode) a block shape.
type Card struct {
	Arch   device.Arch
	Mode   il.ShaderMode
	Type   il.DataType
	BlockW int // compute-mode block width; 0 means the naive 64x1
	BlockH int
}

// Label renders the series name the way the paper's legends do, e.g.
// "4870 Compute Float4".
func (c Card) Label() string {
	mode := "Pixel"
	if c.Mode == il.Compute {
		mode = "Compute"
	}
	dt := "Float"
	if c.Type == il.Float4 {
		dt = "Float4"
	}
	return fmt.Sprintf("%s %s %s", c.Arch.CardName(), mode, dt)
}

// Order returns the card's domain walk.
func (c Card) Order() (raster.Order, error) {
	if c.Mode == il.Pixel {
		return raster.PixelOrder(), nil
	}
	bw, bh := c.BlockW, c.BlockH
	if bw == 0 && bh == 0 {
		return raster.Naive64x1(), nil
	}
	return raster.ComputeOrder(bw, bh)
}

// StandardCards returns the paper's default series set: every chip in
// pixel and (where supported) compute mode, for float and float4. The
// compute entries use the naive 64x1 block unless bw/bh override it.
func StandardCards(bw, bh int) []Card {
	var cards []Card
	for _, spec := range device.All() {
		for _, dt := range []il.DataType{il.Float, il.Float4} {
			cards = append(cards, Card{Arch: spec.Arch, Mode: il.Pixel, Type: dt})
		}
	}
	for _, spec := range device.All() {
		if !spec.SupportsCompute {
			continue
		}
		for _, dt := range []il.DataType{il.Float, il.Float4} {
			cards = append(cards, Card{Arch: spec.Arch, Mode: il.Compute, Type: dt, BlockW: bw, BlockH: bh})
		}
	}
	return cards
}

// PixelCards returns only the pixel-mode series for all chips.
func PixelCards() []Card {
	var cards []Card
	for _, spec := range device.All() {
		for _, dt := range []il.DataType{il.Float, il.Float4} {
			cards = append(cards, Card{Arch: spec.Arch, Mode: il.Pixel, Type: dt})
		}
	}
	return cards
}

// ComputeCards returns only compute-mode series (RV770 and RV870) with the
// given block shape.
func ComputeCards(bw, bh int) []Card {
	var cards []Card
	for _, spec := range device.All() {
		if !spec.SupportsCompute {
			continue
		}
		for _, dt := range []il.DataType{il.Float, il.Float4} {
			cards = append(cards, Card{Arch: spec.Arch, Mode: il.Compute, Type: dt, BlockW: bw, BlockH: bh})
		}
	}
	return cards
}

// Suite runs the micro-benchmarks.
type Suite struct {
	// Iterations per kernel timing; zero uses the paper's 5000.
	Iterations int
	// Workers bounds sweep parallelism; zero uses GOMAXPROCS. Every sweep
	// point is an independent deterministic simulation, so results are
	// identical at any worker count.
	Workers int
	// Retries bounds re-issues of a transiently failing launch; each
	// retry backs off. Zero disables retries.
	Retries int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt; zero means 1ms.
	RetryBackoff time.Duration
	// DeadlineCycles arms the per-launch watchdog budget: a launch whose
	// steady-state batch has not drained within it fails with
	// cal.ErrKernelTimeout. Zero uses the simulator's default budget.
	DeadlineCycles uint64
	// Checkpoint, when non-empty, is a JSON file recording each completed
	// sweep point as it finishes; an interrupted sweep re-run with the
	// same configuration resumes from it instead of recomputing.
	Checkpoint string
	// CheckpointFlushEvery batches checkpoint saves: the file is
	// rewritten every this-many completed points (and always when the
	// sweep exits, on every path). Zero picks a small default; 1 saves
	// per point. A kill between flushes loses at most the unflushed
	// batch, which simply recomputes on resume.
	CheckpointFlushEvery int
	// Faults arms deterministic fault injection (see package fault) on
	// every device context the suite opens.
	Faults *fault.Plan
	// DisableArtifactCache turns off the pipeline's content-addressed
	// memoization: every sweep point regenerates, recompiles, re-replays
	// and re-simulates from scratch. Figures are bit-identical either
	// way; the switch exists for baselines (`amdmb -no-cache`) and the
	// cached-vs-uncached benchmarks. Set it before the first sweep.
	DisableArtifactCache bool
	// PersistDir, when non-empty, attaches the pipeline's persistent
	// on-disk simulate-result tier under this directory (`amdmb
	// -cache-dir`, the daemon's restart-replay store). Results served
	// from disk are bit-identical to recomputation. Set it before the
	// first sweep; DisableArtifactCache turns it off too.
	PersistDir string
	// Tracer, when non-nil, records one span per kernel launch with the
	// pipeline stages (generate/compile/trace/replay/simulate) nested
	// inside it, exported as Chrome trace_event JSON (`amdmb -trace`). A
	// nil Tracer costs one pointer comparison per launch.
	Tracer *obs.Tracer
	// Progress, when non-nil, receives a live single-line sweep progress
	// report (points done/total, failures, cache hit rate, ETA) during
	// runPoints (`amdmb -progress`).
	Progress io.Writer
	// MaxDomain, when positive, clamps every sweep point's domain to at
	// most MaxDomain x MaxDomain. Figures shrink accordingly; the knob
	// exists so CI smoke runs (`amdmb -max-domain`) finish in seconds.
	// The clamp applies before checkpoint signatures are computed, so a
	// clamped sweep never resumes from a full-domain checkpoint.
	MaxDomain int
	// BeforeLaunch, when non-nil, runs before every kernel launch (every
	// attempt, every worker). The soak campaigns use it to Interrupt a
	// sweep at a deterministic launch ordinal for kill/resume cycles; it
	// must be safe for concurrent calls.
	BeforeLaunch func()

	// pipe is the staged launch pipeline every context the suite opens
	// shares, so compile and replay artifacts are reused across cards,
	// figures and repeat runs.
	pipeOnce sync.Once
	pipe     *pipeline.Pipeline

	ctxMu    sync.Mutex
	contexts map[device.Arch]*cal.Context

	mu       sync.Mutex
	failures []Run
	launched atomic.Int64

	// In-flight sweep stop functions, keyed by registration order;
	// Interrupt invokes them all.
	intrMu     sync.Mutex
	sweepStops map[uint64]func()
	sweepSeq   uint64

	// Sweep-level resilience counters (core.sweep.*), resolved once from
	// the pipeline's metrics registry.
	ctrOnce sync.Once
	ctr     *sweepCounters
	// testHookBeforeRun, when set, runs before every kernel launch; tests
	// use it to inject panics into the sweep.
	testHookBeforeRun func(p point, attempt int)
}

// NewSuite constructs a suite.
func NewSuite() *Suite {
	return &Suite{contexts: make(map[device.Arch]*cal.Context)}
}

// Pipeline returns the suite's shared launch pipeline, creating it on
// first use with the suite's cache setting.
func (s *Suite) Pipeline() *pipeline.Pipeline {
	s.pipeOnce.Do(func() {
		s.pipe = pipeline.New(pipeline.Options{
			Disabled:   s.DisableArtifactCache,
			PersistDir: s.PersistDir,
		})
	})
	return s.pipe
}

// CacheStats snapshots the shared pipeline's per-stage artifact-cache
// counters (`amdmb -cache-stats`).
func (s *Suite) CacheStats() pipeline.Stats { return s.Pipeline().Stats() }

// Metrics returns the suite's metrics registry — the one the shared
// pipeline, the cal contexts and the sweep runner all record into
// (`amdmb -metrics`).
func (s *Suite) Metrics() *obs.Registry { return s.Pipeline().Metrics() }

// sweepCounters are the resilience counters the sweep runner maintains.
type sweepCounters struct {
	completed   *obs.Counter // core.sweep.points.completed
	failed      *obs.Counter // core.sweep.points.failed
	restored    *obs.Counter // core.sweep.points.restored
	retries     *obs.Counter // core.sweep.retries
	backoffNS   *obs.Counter // core.sweep.backoff_ns
	panics      *obs.Counter // core.sweep.panics
	timeouts    *obs.Counter // core.sweep.timeouts
	quarantined *obs.Counter // core.checkpoint.quarantined
	interrupted *obs.Counter // core.sweep.interrupted
}

// counters resolves the sweep counters once per suite.
func (s *Suite) counters() *sweepCounters {
	s.ctrOnce.Do(func() {
		reg := s.Metrics()
		s.ctr = &sweepCounters{
			completed:   reg.Counter("core.sweep.points.completed"),
			failed:      reg.Counter("core.sweep.points.failed"),
			restored:    reg.Counter("core.sweep.points.restored"),
			retries:     reg.Counter("core.sweep.retries"),
			backoffNS:   reg.Counter("core.sweep.backoff_ns"),
			panics:      reg.Counter("core.sweep.panics"),
			timeouts:    reg.Counter("core.sweep.timeouts"),
			quarantined: reg.Counter("core.checkpoint.quarantined"),
			interrupted: reg.Counter("core.sweep.interrupted"),
		}
	})
	return s.ctr
}

// cacheHitRate aggregates the pipeline's per-stage cache counters into
// one hit fraction (hits and coalesced waits over all lookups), the
// number the live progress line reports.
func (s *Suite) cacheHitRate() float64 {
	var hits, total uint64
	for _, st := range s.Pipeline().Stats().Stages {
		hits += st.Hits + st.Coalesced
		total += st.Hits + st.Coalesced + st.Misses
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// context returns the suite's one context per architecture, opening the
// device on first use. It is safe for concurrent callers: workers racing
// on a cold arch open it once and share the result.
func (s *Suite) context(a device.Arch) (*cal.Context, error) {
	s.ctxMu.Lock()
	defer s.ctxMu.Unlock()
	if s.contexts == nil {
		s.contexts = make(map[device.Arch]*cal.Context)
	}
	if c, ok := s.contexts[a]; ok {
		return c, nil
	}
	d, err := cal.OpenDevice(a)
	if err != nil {
		return nil, err
	}
	c := d.CreateContextWith(s.Pipeline())
	c.SetFaultPlan(s.Faults)
	s.contexts[a] = c
	return c, nil
}

// generate runs a kernel generator through the pipeline's Generate
// stage, so identical sweep points share one IL artifact.
func (s *Suite) generate(g pipeline.Generator, p kerngen.Params) (*il.Kernel, error) {
	var sp obs.Span
	if s.Tracer.Enabled() {
		sp = s.Tracer.Begin("generate").Cat("stage")
	}
	defer sp.End()
	return s.Pipeline().Generate(g, p)
}

// Failures returns the per-point failure records the suite's sweeps have
// accumulated (points that timed out, exhausted retries or panicked but
// did not abort their sweep).
func (s *Suite) Failures() []Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Run(nil), s.failures...)
}

// KernelLaunches returns how many kernel launches the suite has issued,
// retries included — the accounting checkpoint-resume tests rely on.
func (s *Suite) KernelLaunches() int64 { return s.launched.Load() }

// Run is one timed kernel execution with its classification. A Run with
// a non-empty Err is a per-point failure record: the sweep survived it,
// the point has no timing.
type Run struct {
	Card       Card
	X          float64 // the swept parameter's value
	Seconds    float64
	GPRs       int
	Waves      int
	HitRate    float64
	Bottleneck string
	// Err is the failure that exhausted the point's attempts; empty for a
	// successful run.
	Err string `json:",omitempty"`
	// Attempts is how many launches the point took (1 = first try).
	Attempts int `json:",omitempty"`
}

// Failed reports whether the point is a failure record.
func (r Run) Failed() bool { return r.Err != "" }

// runKernel compiles and times one kernel for one card.
func (s *Suite) runKernel(card Card, k *il.Kernel, w, h, attempt int) (Run, error) {
	ctx, err := s.context(card.Arch)
	if err != nil {
		return Run{}, err
	}
	// One root span per launch; the compile stage and (inside cal/
	// pipeline) the trace/replay/simulate stages nest under it. The
	// Enabled guard keeps the disabled path free of the fmt work the
	// span arguments need.
	var sp obs.Span
	if s.Tracer.Enabled() {
		sp = s.Tracer.Begin("launch").
			Arg("kernel", k.Name).
			Arg("card", card.Label()).
			Arg("domain", fmt.Sprintf("%dx%d", w, h))
		if attempt > 0 {
			sp = sp.Arg("attempt", fmt.Sprintf("%d", attempt))
		}
	}
	defer sp.End()
	csp := sp.Child("compile").Cat("stage")
	m, err := ctx.LoadModule(k)
	csp.End()
	if err != nil {
		return Run{}, err
	}
	order, err := card.Order()
	if err != nil {
		return Run{}, err
	}
	s.launched.Add(1)
	ev, err := ctx.Launch(m, cal.LaunchConfig{
		Order: order, W: w, H: h, Iterations: s.Iterations,
		DeadlineCycles: s.DeadlineCycles, Attempt: attempt,
		Span: sp,
	})
	if err != nil {
		return Run{}, err
	}
	return Run{
		Card:       card,
		Seconds:    ev.ElapsedSeconds(),
		GPRs:       ev.Result.GPRs,
		Waves:      ev.Result.WavesPerSIMD,
		HitRate:    ev.Result.HitRate,
		Bottleneck: ev.Bottleneck().String(),
	}, nil
}

// params builds kerngen parameters for a card.
func (c Card) params(inputs, outputs int, inSpace, outSpace il.MemSpace) kerngen.Params {
	if c.Mode == il.Compute {
		outSpace = il.GlobalSpace // compute mode has no streaming stores
	}
	return kerngen.Params{
		Mode: c.Mode, Type: c.Type,
		Inputs: inputs, Outputs: outputs,
		InputSpace: inSpace, OutSpace: outSpace,
	}
}
