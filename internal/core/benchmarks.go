package core

import (
	"fmt"
	"math"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/pipeline"
	"amdgpubench/internal/report"
)

// ALUFetchConfig parameterises the ALU:Fetch ratio sweep (Section III-A).
type ALUFetchConfig struct {
	Cards      []Card
	Inputs     int     // paper: 16
	W, H       int     // paper: 1024 x 1024
	RatioMin   float64 // paper: 0.25
	RatioMax   float64 // paper: 8.0
	RatioStep  float64 // paper: 0.25
	InputSpace il.MemSpace
	OutSpace   il.MemSpace
}

func (c *ALUFetchConfig) defaults() {
	if c.Inputs == 0 {
		c.Inputs = 16
	}
	if c.W == 0 {
		c.W, c.H = 1024, 1024
	}
	if c.RatioMin == 0 {
		c.RatioMin = 0.25
	}
	if c.RatioMax == 0 {
		c.RatioMax = 8.0
	}
	if c.RatioStep == 0 {
		c.RatioStep = 0.25
	}
	if c.Cards == nil {
		c.Cards = StandardCards(0, 0)
	}
}

// ALUFetchSpec plans the ALU:Fetch ratio sweep without running anything:
// one kernel per (card, ratio), card-major, ready for RunFigureSpec or a
// multi-figure campaign plan.
func (s *Suite) ALUFetchSpec(cfg ALUFetchConfig) (FigureSpec, error) {
	cfg.defaults()
	fig := &report.Figure{
		ID:     "alufetch",
		Title:  fmt.Sprintf("ALU:Fetch Ratio for %d Inputs (%s read, %s write)", cfg.Inputs, cfg.InputSpace, cfg.OutSpace),
		XLabel: "ALU:Fetch Ratio",
		YLabel: "Time in seconds",
	}
	var pts []KernelPoint
	for _, card := range cfg.Cards {
		for r := cfg.RatioMin; r <= cfg.RatioMax+1e-9; r += cfg.RatioStep {
			p := card.params(cfg.Inputs, 1, cfg.InputSpace, cfg.OutSpace)
			p.ALUFetchRatio = r
			k, err := s.generate(pipeline.GenALUFetch, p)
			if err != nil {
				return FigureSpec{}, err
			}
			pts = append(pts, KernelPoint{Card: card, X: r, K: k, W: cfg.W, H: cfg.H})
		}
	}
	return FigureSpec{Fig: fig, Points: pts}, nil
}

// ALUFetchRatio sweeps the ALU:Fetch ratio and reports execution time per
// ratio, locating the point where the bottleneck flips from the texture
// fetch units to the ALUs.
func (s *Suite) ALUFetchRatio(cfg ALUFetchConfig) (*report.Figure, []Run, error) {
	spec, err := s.ALUFetchSpec(cfg)
	if err != nil {
		return nil, nil, err
	}
	return s.RunFigureSpec(spec)
}

// ReadLatencyConfig parameterises the fetch/read latency sweep (III-B).
type ReadLatencyConfig struct {
	Cards     []Card
	MinInputs int // paper: 2
	MaxInputs int // paper: 18
	W, H      int
	Space     il.MemSpace // TextureSpace for Fig. 11, GlobalSpace for Fig. 12
}

func (c *ReadLatencyConfig) defaults() {
	if c.MinInputs == 0 {
		c.MinInputs = 2
	}
	if c.MaxInputs == 0 {
		c.MaxInputs = 18
	}
	if c.W == 0 {
		c.W, c.H = 1024, 1024
	}
	if c.Cards == nil {
		c.Cards = StandardCards(0, 0)
	}
}

// ReadLatencySpec plans the read latency sweep.
func (s *Suite) ReadLatencySpec(cfg ReadLatencyConfig) (FigureSpec, error) {
	cfg.defaults()
	title := "Texture Fetch Latency"
	if cfg.Space == il.GlobalSpace {
		title = "Global Read Latency"
	}
	fig := &report.Figure{ID: "readlat", Title: title, XLabel: "Number of Inputs", YLabel: "Time in seconds"}
	var pts []KernelPoint
	for _, card := range cfg.Cards {
		for n := cfg.MinInputs; n <= cfg.MaxInputs; n++ {
			p := card.params(n, 1, cfg.Space, il.TextureSpace)
			k, err := s.generate(pipeline.GenReadLatency, p)
			if err != nil {
				return FigureSpec{}, err
			}
			pts = append(pts, KernelPoint{Card: card, X: float64(n), K: k, W: cfg.W, H: cfg.H})
		}
	}
	return FigureSpec{Fig: fig, Points: pts}, nil
}

// ReadLatency sweeps the input count with the ALU count pinned to
// inputs-1, keeping the fetch path the bottleneck.
func (s *Suite) ReadLatency(cfg ReadLatencyConfig) (*report.Figure, []Run, error) {
	spec, err := s.ReadLatencySpec(cfg)
	if err != nil {
		return nil, nil, err
	}
	return s.RunFigureSpec(spec)
}

// WriteLatencyConfig parameterises the write latency sweep (III-C).
type WriteLatencyConfig struct {
	Cards      []Card
	Inputs     int // paper: 8, keeping register usage constant
	MaxOutputs int // paper: 8
	W, H       int
	Space      il.MemSpace // TextureSpace = streaming stores (Fig. 13), GlobalSpace = global writes (Fig. 14)
}

func (c *WriteLatencyConfig) defaults() {
	if c.Inputs == 0 {
		c.Inputs = 8
	}
	if c.MaxOutputs == 0 {
		c.MaxOutputs = 8
	}
	if c.W == 0 {
		c.W, c.H = 1024, 1024
	}
	if c.Cards == nil {
		if c.Space == il.GlobalSpace {
			c.Cards = StandardCards(0, 0)
		} else {
			// Streaming stores exist only in pixel shader mode.
			c.Cards = PixelCards()
		}
	}
}

// WriteLatencySpec plans the write latency sweep.
func (s *Suite) WriteLatencySpec(cfg WriteLatencyConfig) (FigureSpec, error) {
	cfg.defaults()
	title := "Streaming Store Latency"
	if cfg.Space == il.GlobalSpace {
		title = "Global Write Latency"
	}
	fig := &report.Figure{ID: "writelat", Title: title, XLabel: "Number of Outputs", YLabel: "Time in seconds"}
	var pts []KernelPoint
	for _, card := range cfg.Cards {
		if cfg.Space == il.TextureSpace && card.Mode == il.Compute {
			continue // compute mode does not support streaming stores
		}
		for n := 1; n <= cfg.MaxOutputs; n++ {
			p := card.params(cfg.Inputs, n, il.TextureSpace, cfg.Space)
			k, err := s.generate(pipeline.GenWriteLatency, p)
			if err != nil {
				return FigureSpec{}, err
			}
			pts = append(pts, KernelPoint{Card: card, X: float64(n), K: k, W: cfg.W, H: cfg.H})
		}
	}
	return FigureSpec{Fig: fig, Points: pts}, nil
}

// WriteLatency sweeps the output count at constant inputs and ALU ops.
func (s *Suite) WriteLatency(cfg WriteLatencyConfig) (*report.Figure, []Run, error) {
	spec, err := s.WriteLatencySpec(cfg)
	if err != nil {
		return nil, nil, err
	}
	return s.RunFigureSpec(spec)
}

// DomainConfig parameterises the domain size sweep (III-D).
type DomainConfig struct {
	Cards    []Card
	MinDim   int // paper: 256
	MaxDim   int // paper: 1024
	StepPix  int // paper: 8 for pixel mode
	StepComp int // paper: 64 for compute mode
}

func (c *DomainConfig) defaults() {
	if c.MinDim == 0 {
		c.MinDim = 256
	}
	if c.MaxDim == 0 {
		c.MaxDim = 1024
	}
	if c.StepPix == 0 {
		c.StepPix = 8
	}
	if c.StepComp == 0 {
		c.StepComp = 64
	}
	if c.Cards == nil {
		c.Cards = StandardCards(0, 0)
	}
}

// DomainSizeSpec plans the domain size sweep.
func (s *Suite) DomainSizeSpec(cfg DomainConfig) (FigureSpec, error) {
	cfg.defaults()
	fig := &report.Figure{ID: "domain", Title: "Impact of Domain Size", XLabel: "Domain Size", YLabel: "Time in seconds"}
	var pts []KernelPoint
	for _, card := range cfg.Cards {
		step := cfg.StepPix
		if card.Mode == il.Compute {
			step = cfg.StepComp
		}
		for d := cfg.MinDim; d <= cfg.MaxDim; d += step {
			p := card.params(8, 1, il.TextureSpace, il.TextureSpace)
			k, err := s.generate(pipeline.GenDomain, p)
			if err != nil {
				return FigureSpec{}, err
			}
			pts = append(pts, KernelPoint{Card: card, X: float64(d), K: k, W: d, H: d})
		}
	}
	return FigureSpec{Fig: fig, Points: pts}, nil
}

// DomainSize sweeps square domains at ALU:Fetch ratio 10 (ALU bound, 8
// inputs, 1 output, so occupancy stays constant).
func (s *Suite) DomainSize(cfg DomainConfig) (*report.Figure, []Run, error) {
	spec, err := s.DomainSizeSpec(cfg)
	if err != nil {
		return nil, nil, err
	}
	return s.RunFigureSpec(spec)
}

// RegisterUsageConfig parameterises the register pressure sweep (III-E).
type RegisterUsageConfig struct {
	Cards   []Card
	Inputs  int     // paper: 64
	Space   int     // paper: 8
	MaxStep int     // paper's plot reaches GPR ~10, i.e. step 7
	Ratio   float64 // paper: 4.0
	W, H    int
	// Control replaces the register-usage kernel with the clause-usage
	// kernel of Fig. 5 (all sampling up front), which must show constant
	// time: the proof that the gains come from register pressure.
	Control bool
}

func (c *RegisterUsageConfig) defaults() {
	if c.Inputs == 0 {
		c.Inputs = 64
	}
	if c.Space == 0 {
		c.Space = 8
	}
	if c.MaxStep == 0 {
		c.MaxStep = 7
	}
	if c.Ratio == 0 {
		// The paper quotes "ALU:Fetch ratio 4.0" for Fig. 16 under its
		// generator's raw convention (Fig. 6 multiplies by 4 again); in
		// the SKA convention used throughout this suite that work level
		// corresponds to 1.0 — four ALU ops per fetch — which is what
		// leaves the kernel latency-sensitive at low occupancy.
		c.Ratio = 1.0
	}
	if c.W == 0 {
		c.W, c.H = 1024, 1024
	}
	if c.Cards == nil {
		c.Cards = StandardCards(0, 0)
	}
}

// RegisterUsageSpec plans the register pressure sweep. Its Finish re-keys
// each run's X from the step index to the compiled register count —
// Fig. 16's x axis is known only after the runs complete; failed points
// have no compile result to re-key by.
func (s *Suite) RegisterUsageSpec(cfg RegisterUsageConfig) (FigureSpec, error) {
	cfg.defaults()
	title := "Register Pressure Effect"
	if cfg.Control {
		title = "Clause Usage Control (constant registers)"
	}
	fig := &report.Figure{ID: "regusage", Title: title, XLabel: "Global Purpose Registers", YLabel: "Time in seconds"}
	var pts []KernelPoint
	for _, card := range cfg.Cards {
		for step := 0; step <= cfg.MaxStep; step++ {
			if cfg.Inputs-cfg.Space*step < 2 {
				break
			}
			p := card.params(cfg.Inputs, 1, il.TextureSpace, il.TextureSpace)
			p.ALUFetchRatio = cfg.Ratio
			p.Space = cfg.Space
			p.Step = step
			gen := pipeline.GenRegisterUsage
			if cfg.Control {
				gen = pipeline.GenClauseUsage
			}
			k, err := s.generate(gen, p)
			if err != nil {
				return FigureSpec{}, err
			}
			pts = append(pts, KernelPoint{Card: card, X: float64(step), K: k, W: cfg.W, H: cfg.H})
		}
	}
	finish := func(fig *report.Figure, runs []Run) {
		for i := range runs {
			if !runs[i].Failed() {
				runs[i].X = float64(runs[i].GPRs)
			}
		}
		AssembleSeries(fig, runs)
	}
	return FigureSpec{Fig: fig, Points: pts, Finish: finish}, nil
}

// RegisterUsage sweeps the sampling placement (step) and reports execution
// time against the resulting register count — Fig. 16's axes.
func (s *Suite) RegisterUsage(cfg RegisterUsageConfig) (*report.Figure, []Run, error) {
	spec, err := s.RegisterUsageSpec(cfg)
	if err != nil {
		return nil, nil, err
	}
	return s.RunFigureSpec(spec)
}

// HardwareTable reproduces Table I from the device models.
func (s *Suite) HardwareTable() *report.Table {
	t := &report.Table{
		Title:  "Table I: GPU Hardware Features",
		Header: []string{"GPU", "ALUs", "Texture Units", "SIMD Engines", "Core Clock", "Mem Clock", "Mem Type"},
	}
	for _, spec := range device.All() {
		t.AddRow(
			spec.Arch.String(),
			fmt.Sprintf("%d", spec.ALUs),
			fmt.Sprintf("%d", spec.TextureUnits),
			fmt.Sprintf("%d", spec.SIMDEngines),
			fmt.Sprintf("%dMhz", spec.CoreClockMHz),
			fmt.Sprintf("%dMhz", spec.MemClockMHz),
			spec.MemKind.String(),
		)
	}
	return t
}

// CrossoverOf extracts the bottleneck-flip ratio of a labelled series in
// an ALU:Fetch figure, NaN when the series never leaves its plateau.
func CrossoverOf(fig *report.Figure, label string) float64 {
	for _, s := range fig.Series {
		if s.Label == label {
			return report.Crossover(s, 0.10)
		}
	}
	return math.NaN()
}
