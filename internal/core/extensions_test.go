package core

import (
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/report"
)

func TestTransThroughputShapes(t *testing.T) {
	s := suite()
	fig, _, err := s.TransThroughput(TransThroughputConfig{
		Arch: device.RV770, MaxOps: 128, StepOps: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string, x float64) float64 {
		return at(t, seriesByLabel(t, fig, label), x)
	}
	// Scalar transcendental chains cost the same as scalar add chains:
	// both retire one bundle per op.
	addF := get("4870 float add", 128)
	rcpF := get("4870 float rcp/rsq", 128)
	if addF != rcpF {
		t.Errorf("scalar trans chain (%v) != scalar add chain (%v)", rcpF, addF)
	}
	// Float4 transcendentals serialize through the single t core: about
	// 4x the float4 add chain.
	addF4 := get("4870 float4 add", 128)
	rcpF4 := get("4870 float4 rcp/rsq", 128)
	if ratio := rcpF4 / addF4; ratio < 3 || ratio > 5 {
		t.Errorf("float4 trans / add ratio = %v, want about 4", ratio)
	}
	// All series grow with chain length.
	for _, sr := range fig.Series {
		slope, _, _ := report.LinearFit(sr)
		if slope <= 0 {
			t.Errorf("%s: chain time does not grow", sr.Label)
		}
	}
}

func TestBlockSizeSweepShapes(t *testing.T) {
	s := suite()
	fig, runs, err := s.BlockSizeSweep(BlockSizeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("block sweep has %d series, want 4", len(fig.Series))
	}
	// The square-ish shapes (8x8 at index 3, 4x16 at index 4) must beat
	// the paper's naive 64x1 (index 0) on every chip and type.
	for _, sr := range fig.Series {
		naive := at(t, sr, 0)
		square := at(t, sr, 3)
		if !(square < naive) {
			t.Errorf("%s: 8x8 block (%v) not below 64x1 (%v)", sr.Label, square, naive)
		}
	}
	// "One block size might not be best for all GPUs": the extreme 1x64
	// column walk hurts the long-line RV870 clearly (each thread touches
	// its own 128B line; the shared L2 absorbs part of the waste but the
	// L1 fill path still pays for every line).
	tall870 := at(t, seriesByLabel(t, fig, "5870 Compute Float"), 6)
	best870 := at(t, seriesByLabel(t, fig, "5870 Compute Float"), 3)
	if !(tall870 > 1.5*best870) {
		t.Errorf("5870 1x64 (%v) not well above its best (%v)", tall870, best870)
	}
	for _, r := range runs {
		if r.Seconds <= 0 {
			t.Fatalf("non-positive time in run %+v", r)
		}
	}
}

func TestAblationStudyDirections(t *testing.T) {
	s := suite()
	res, err := s.AblationStudy()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationResult{}
	for _, r := range res {
		byName[r.Name] = r
	}
	// Turning latency hiding off must hurt badly (Fig. 16's mechanism).
	if r := byName["clause switching (latency hiding)"]; r.Ratio() < 2 {
		t.Errorf("single-wavefront slowdown = %.2fx, want >= 2x", r.Ratio())
	}
	// Scattered writes must be much slower than bursts (Section II-B).
	if r := byName["burst writes"]; r.Ratio() < 1.5 {
		t.Errorf("no-burst slowdown = %.2fx, want >= 1.5x", r.Ratio())
	}
	// Row-major textures must not beat the tiled layout in pixel mode.
	if r := byName["tiled texture layout"]; r.Ratio() < 1 {
		t.Errorf("linear-texture ablation sped things up: %.2fx", r.Ratio())
	}
	// Removing clause temporaries floods the register file with writes.
	r := byName["clause temporaries"]
	if r.GPRWritesAblated <= 2*r.GPRWritesBase {
		t.Errorf("no-temps GPR writes %d not well above baseline %d",
			r.GPRWritesAblated, r.GPRWritesBase)
	}
	// The combined forwarding ablation is at least as write-heavy.
	all := byName["all forwarding (PV + temps)"]
	if all.GPRWritesAblated < r.GPRWritesAblated {
		t.Errorf("combined ablation writes (%d) below temps-only (%d)",
			all.GPRWritesAblated, r.GPRWritesAblated)
	}
	// The ablation table formats every row.
	tbl := AblationTable(res)
	if len(tbl.Rows) != len(res) {
		t.Fatalf("table rows = %d, want %d", len(tbl.Rows), len(res))
	}
}

func TestConstantsSweepFlat(t *testing.T) {
	s := suite()
	fig, runs, err := s.ConstantsSweep(ConstantsConfig{Arch: device.RV770})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("constants sweep has %d series, want 2", len(fig.Series))
	}
	// Constants are free: time and register count are invariant in the
	// constant count, which is why the paper can hold it fixed while
	// sweeping everything else.
	for _, sr := range fig.Series {
		for _, p := range sr.Points {
			if p.Y != sr.Points[0].Y {
				t.Fatalf("%s: time varies with constants: %v", sr.Label, sr.Points)
			}
		}
	}
	for _, r := range runs {
		if r.GPRs != runs[0].GPRs && r.Card == runs[0].Card {
			t.Fatalf("GPRs vary with constants: %d vs %d", r.GPRs, runs[0].GPRs)
		}
	}
}
