package core

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"amdgpubench/internal/cal"
	"amdgpubench/internal/device"
	"amdgpubench/internal/fault"
	"amdgpubench/internal/il"
	"amdgpubench/internal/kerngen"
	"amdgpubench/internal/pipeline"
)

// sweepCfg is a cheap four-point sweep on one card; kernels are named
// alufetch_r0.25 .. alufetch_r1.00.
func sweepCfg() ALUFetchConfig {
	return ALUFetchConfig{
		Cards: []Card{{Arch: device.RV770, Mode: il.Pixel, Type: il.Float}},
		W:     64, H: 64,
		RatioMax: 1.0,
	}
}

func quickSuite() *Suite {
	s := NewSuite()
	s.Iterations = 1
	s.RetryBackoff = time.Microsecond
	return s
}

func TestSweepRecordsTimeoutFailure(t *testing.T) {
	s := quickSuite()
	s.DeadlineCycles = 1 << 20
	s.Faults = &fault.Plan{Specs: []fault.Spec{
		{Kind: fault.Hang, Prob: 1, Match: "alufetch_r0.50", Clause: -1},
	}}
	fig, runs, err := s.ALUFetchRatio(sweepCfg())
	if err != nil {
		t.Fatalf("sweep with one hung point should complete, got %v", err)
	}
	var failed []Run
	for _, r := range runs {
		if r.Failed() {
			failed = append(failed, r)
		}
	}
	if len(failed) != 1 {
		t.Fatalf("failed points = %d, want 1 (%+v)", len(failed), runs)
	}
	f := failed[0]
	if f.X != 0.5 {
		t.Errorf("failed point at x=%g, want 0.5", f.X)
	}
	if !strings.Contains(f.Err, "kernel timeout") || !strings.Contains(f.Err, "watchdog") {
		t.Errorf("failure record lacks taxonomy/diagnostic: %q", f.Err)
	}
	if got := s.Failures(); len(got) != 1 || got[0].Err != f.Err {
		t.Errorf("suite failure log: %+v", got)
	}
	// The failed point must not fold into the plotted curve.
	if len(fig.Series) != 1 || len(fig.Series[0].Points) != len(runs)-1 {
		t.Errorf("series has %d points, want %d", len(fig.Series[0].Points), len(runs)-1)
	}
}

func TestSweepPanicRecoveredIntoPointError(t *testing.T) {
	s := quickSuite()
	s.testHookBeforeRun = func(p point, attempt int) {
		if p.x == 0.75 {
			panic("injected test panic")
		}
	}
	_, runs, err := s.ALUFetchRatio(sweepCfg())
	if err != nil {
		t.Fatalf("sweep with one panicking point should complete, got %v", err)
	}
	var failed []Run
	for _, r := range runs {
		if r.Failed() {
			failed = append(failed, r)
		}
	}
	if len(failed) != 1 || failed[0].X != 0.75 {
		t.Fatalf("failed = %+v, want exactly the panicked point", failed)
	}
	if !strings.Contains(failed[0].Err, "panic during launch") ||
		!strings.Contains(failed[0].Err, "injected test panic") {
		t.Errorf("panic record: %q", failed[0].Err)
	}
}

func TestSweepRetriesTransientFaults(t *testing.T) {
	s := quickSuite()
	s.Retries = 8
	s.Faults = &fault.Plan{Seed: 11, Specs: []fault.Spec{
		{Kind: fault.Transient, Prob: 0.5},
	}}
	_, runs, err := s.ALUFetchRatio(sweepCfg())
	if err != nil {
		t.Fatalf("transients should be retried away, got %v", err)
	}
	retried := false
	for _, r := range runs {
		if r.Failed() {
			t.Fatalf("point failed despite retries: %+v", r)
		}
		if r.Attempts > 1 {
			retried = true
		}
	}
	if !retried {
		t.Fatal("no point needed a retry; seed no longer exercises the retry path")
	}
}

func TestSweepTransientExhaustionIsRecorded(t *testing.T) {
	s := quickSuite()
	s.Retries = 2
	// prob=1 never clears, whatever the attempt: retries exhaust.
	s.Faults = &fault.Plan{Specs: []fault.Spec{
		{Kind: fault.Transient, Prob: 1, Match: "alufetch_r0.25"},
	}}
	_, runs, err := s.ALUFetchRatio(sweepCfg())
	if err != nil {
		t.Fatalf("exhausted transient should be a point failure, got %v", err)
	}
	for _, r := range runs {
		if r.X == 0.25 {
			if !r.Failed() || r.Attempts != 3 {
				t.Fatalf("exhausted point: %+v, want failed after 3 attempts", r)
			}
			if !strings.Contains(r.Err, "transient launch failure") {
				t.Errorf("record lacks taxonomy: %q", r.Err)
			}
		} else if r.Failed() {
			t.Fatalf("unexpected failure: %+v", r)
		}
	}
}

func TestSweepDeviceLostIsFatal(t *testing.T) {
	s := quickSuite()
	s.Faults = &fault.Plan{Specs: []fault.Spec{
		{Kind: fault.DeviceLost, Prob: 1, Match: "alufetch_r0.75"},
	}}
	_, _, err := s.ALUFetchRatio(sweepCfg())
	if !errors.Is(err, cal.ErrDeviceLost) {
		t.Fatalf("want fatal ErrDeviceLost, got %v", err)
	}
}

func TestSweepNoPlanBitIdenticalToBaseline(t *testing.T) {
	// The determinism guard: arming the resilient machinery without a
	// fault plan must not perturb a single bit of the figures.
	base := quickSuite()
	fig1, _, err := base.ALUFetchRatio(sweepCfg())
	if err != nil {
		t.Fatal(err)
	}
	armed := quickSuite()
	armed.Retries = 3
	armed.DeadlineCycles = 1 << 36
	fig2, _, err := armed.ALUFetchRatio(sweepCfg())
	if err != nil {
		t.Fatal(err)
	}
	if fig1.CSV() != fig2.CSV() {
		t.Fatalf("resilience machinery changed results:\n%s\nvs\n%s", fig1.CSV(), fig2.CSV())
	}
}

// readCheckpoint counts the completed points recorded in a checkpoint.
func readCheckpoint(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Signature string         `json:"signature"`
		Runs      map[string]Run `json:"runs"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	return len(f.Runs)
}

func TestCheckpointResumeSkipsCompletedPoints(t *testing.T) {
	dir := t.TempDir()
	ckpath := filepath.Join(dir, "sweep.json")

	// First run: one point times out, the other three complete and are
	// checkpointed — the surviving state of an interrupted campaign.
	s1 := quickSuite()
	s1.Checkpoint = ckpath
	s1.DeadlineCycles = 1 << 20
	s1.Faults = &fault.Plan{Specs: []fault.Spec{
		{Kind: fault.Hang, Prob: 1, Match: "alufetch_r0.50", Clause: -1},
	}}
	_, runs1, err := s1.ALUFetchRatio(sweepCfg())
	if err != nil {
		t.Fatal(err)
	}
	if n := readCheckpoint(t, ckpath); n != len(runs1)-1 {
		t.Fatalf("checkpoint holds %d points, want %d", n, len(runs1)-1)
	}

	// Resume without the fault: only the missing point may recompute.
	s2 := quickSuite()
	s2.Checkpoint = ckpath
	fig2, runs2, err := s2.ALUFetchRatio(sweepCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.KernelLaunches(); got != 1 {
		t.Fatalf("resume launched %d kernels, want 1 (the failed point only)", got)
	}
	for _, r := range runs2 {
		if r.Failed() {
			t.Fatalf("resumed sweep still has failures: %+v", r)
		}
	}

	// The resumed figure matches a clean uncheckpointed run bit for bit.
	clean := quickSuite()
	figClean, _, err := clean.ALUFetchRatio(sweepCfg())
	if err != nil {
		t.Fatal(err)
	}
	if fig2.CSV() != figClean.CSV() {
		t.Fatalf("resumed figure differs from clean run:\n%s\nvs\n%s", fig2.CSV(), figClean.CSV())
	}
}

func TestCheckpointInterruptedMidSweepResumes(t *testing.T) {
	dir := t.TempDir()
	ckpath := filepath.Join(dir, "sweep.json")

	// A lost device kills the first run mid-sweep — the checkpoint keeps
	// whatever completed before the abort.
	s1 := quickSuite()
	s1.Workers = 1 // deterministic: points complete in order until the fatal one
	s1.Checkpoint = ckpath
	s1.Faults = &fault.Plan{Specs: []fault.Spec{
		{Kind: fault.DeviceLost, Prob: 1, Match: "alufetch_r0.75"},
	}}
	_, _, err := s1.ALUFetchRatio(sweepCfg())
	if !errors.Is(err, cal.ErrDeviceLost) {
		t.Fatalf("want fatal abort, got %v", err)
	}
	completed := readCheckpoint(t, ckpath)
	if completed == 0 {
		t.Fatal("nothing checkpointed before the abort")
	}

	s2 := quickSuite()
	s2.Checkpoint = ckpath
	_, runs2, err := s2.ALUFetchRatio(sweepCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(runs2) - completed)
	if got := s2.KernelLaunches(); got != want {
		t.Fatalf("resume launched %d kernels, want %d (total %d - checkpointed %d)",
			got, want, len(runs2), completed)
	}
}

func TestCheckpointIgnoresForeignSweep(t *testing.T) {
	dir := t.TempDir()
	ckpath := filepath.Join(dir, "sweep.json")

	s1 := quickSuite()
	s1.Checkpoint = ckpath
	if _, _, err := s1.ALUFetchRatio(sweepCfg()); err != nil {
		t.Fatal(err)
	}

	// A different sweep (other card) with the same checkpoint path must
	// recompute everything, not resume foreign points.
	other := sweepCfg()
	other.Cards = []Card{{Arch: device.RV870, Mode: il.Pixel, Type: il.Float}}
	s2 := quickSuite()
	s2.Checkpoint = ckpath
	_, runs2, err := s2.ALUFetchRatio(other)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.KernelLaunches(); got != int64(len(runs2)) {
		t.Fatalf("foreign checkpoint restored points: launched %d, want %d", got, len(runs2))
	}
}

func TestSweepSignatureKeysOnKernelBodyNotName(t *testing.T) {
	// Two kernels pinned to the same name but generated with different
	// bodies (8 vs 4 inputs) must produce different sweep signatures:
	// the signature keys on the structural IL hash, not the name.
	s := quickSuite()
	pa := kerngen.Params{
		Mode: il.Pixel, Type: il.Float, Inputs: 4, Outputs: 1,
		ALUFetchRatio: 1.0, Name: "same_name",
	}
	pb := pa
	pb.Inputs = 8
	ka, err := s.generate(pipeline.GenALUFetch, pa)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := s.generate(pipeline.GenALUFetch, pb)
	if err != nil {
		t.Fatal(err)
	}
	if ka.Name != kb.Name {
		t.Fatalf("precondition broken: names differ (%q vs %q)", ka.Name, kb.Name)
	}
	if ka.Hash() == kb.Hash() {
		t.Fatal("precondition broken: kernel bodies identical")
	}
	card := Card{Arch: device.RV770, Mode: il.Pixel, Type: il.Float}
	ptsA := []point{{card: card, x: 1, k: ka, w: 64, h: 64}}
	ptsB := []point{{card: card, x: 1, k: kb, w: 64, h: 64}}
	if sweepSignature(ptsA, 1) == sweepSignature(ptsB, 1) {
		t.Fatal("sweep signature ignores the kernel body: different kernels under one name share a signature")
	}
}

func TestCheckpointRejectsSameNameDifferentKernelBody(t *testing.T) {
	dir := t.TempDir()
	ckpath := filepath.Join(dir, "sweep.json")

	s1 := quickSuite()
	s1.Checkpoint = ckpath
	if _, _, err := s1.ALUFetchRatio(sweepCfg()); err != nil {
		t.Fatal(err)
	}

	// The same sweep with half the inputs: every kernel keeps its name
	// (alufetch names encode only the ratio), x and domain, but the IL
	// bodies differ. Resuming from the first run's checkpoint would
	// splice the 16-input timings into the 8-input figure.
	other := sweepCfg()
	other.Inputs = 8
	s2 := quickSuite()
	s2.Checkpoint = ckpath
	_, runs2, err := s2.ALUFetchRatio(other)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.KernelLaunches(); got != int64(len(runs2)) {
		t.Fatalf("checkpoint for a different kernel body was resumed: launched %d, want %d",
			got, len(runs2))
	}
}

func TestCheckpointCorruptFileQuarantined(t *testing.T) {
	dir := t.TempDir()
	ckpath := filepath.Join(dir, "sweep.json")
	if err := os.WriteFile(ckpath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := quickSuite()
	s.Checkpoint = ckpath
	fig, runs, err := s.ALUFetchRatio(sweepCfg())
	if err != nil {
		t.Fatalf("corrupt checkpoint wedged the sweep: %v", err)
	}
	// Everything recomputed: the garbage restored nothing.
	if got := s.KernelLaunches(); got != int64(len(runs)) {
		t.Fatalf("launched %d kernels, want %d (corrupt file must restore nothing)", got, len(runs))
	}
	// The torn file is preserved for diagnosis, not destroyed.
	quarantined, err := os.ReadFile(ckpath + ".corrupt")
	if err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if string(quarantined) != "{not json" {
		t.Errorf("quarantine file content changed: %q", quarantined)
	}
	if got := s.Metrics().Snapshot().Get("core.checkpoint.quarantined"); got != 1 {
		t.Errorf("core.checkpoint.quarantined = %d, want 1", got)
	}
	// The sweep rebuilt a valid checkpoint in place and its figure matches
	// a clean run.
	if n := readCheckpoint(t, ckpath); n != len(runs) {
		t.Errorf("rebuilt checkpoint holds %d points, want %d", n, len(runs))
	}
	clean := quickSuite()
	figClean, _, err := clean.ALUFetchRatio(sweepCfg())
	if err != nil {
		t.Fatal(err)
	}
	if fig.CSV() != figClean.CSV() {
		t.Errorf("figure after quarantine differs from clean run")
	}
}

func TestCheckpointTruncatedMidRecordRecovers(t *testing.T) {
	// A torn write — the failure mode crash-atomic saves prevent on
	// rename-capable filesystems, and quarantine absorbs everywhere else:
	// a checkpoint cut off mid-record must not wedge the resume.
	dir := t.TempDir()
	ckpath := filepath.Join(dir, "sweep.json")

	s1 := quickSuite()
	s1.Checkpoint = ckpath
	if _, _, err := s1.ALUFetchRatio(sweepCfg()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpath)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate inside a record: valid prefix, unterminated JSON.
	if err := os.WriteFile(ckpath, data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := quickSuite()
	s2.Checkpoint = ckpath
	fig2, runs2, err := s2.ALUFetchRatio(sweepCfg())
	if err != nil {
		t.Fatalf("truncated checkpoint aborted the resume: %v", err)
	}
	if got := s2.KernelLaunches(); got != int64(len(runs2)) {
		t.Fatalf("truncated checkpoint restored points: launched %d, want %d", got, len(runs2))
	}
	if _, err := os.Stat(ckpath + ".corrupt"); err != nil {
		t.Errorf("truncated file not quarantined: %v", err)
	}
	clean := quickSuite()
	figClean, _, err := clean.ALUFetchRatio(sweepCfg())
	if err != nil {
		t.Fatal(err)
	}
	if fig2.CSV() != figClean.CSV() {
		t.Errorf("recovered figure differs from clean run")
	}
}

func TestCheckpointQuarantineCollisionIsError(t *testing.T) {
	// If even the quarantine rename fails (a directory squatting on the
	// .corrupt name), the error surfaces instead of silently looping.
	dir := t.TempDir()
	ckpath := filepath.Join(dir, "sweep.json")
	if err := os.WriteFile(ckpath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(ckpath+".corrupt", 0o755); err != nil {
		t.Fatal(err)
	}
	// Make the rename fail by planting a non-empty directory at the target.
	if err := os.WriteFile(filepath.Join(ckpath+".corrupt", "occupied"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := quickSuite()
	s.Checkpoint = ckpath
	if _, _, err := s.ALUFetchRatio(sweepCfg()); err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("failed quarantine not surfaced: %v", err)
	}
}

// interruptAfter arms the test hook to call Interrupt once the sweep has
// started its nth launch, returning a counter of launches seen.
func interruptAfter(s *Suite, n int64) *atomic.Int64 {
	var seen atomic.Int64
	s.testHookBeforeRun = func(p point, attempt int) {
		if seen.Add(1) == n {
			s.Interrupt()
		}
	}
	return &seen
}

func TestInterruptedSweepResumesBitIdentical(t *testing.T) {
	// The resume-under-concurrency contract: a sweep cancelled mid-flight
	// on a multi-worker pool and resumed from its checkpoint must produce
	// figure CSVs bit-identical to an uninterrupted run.
	dir := t.TempDir()
	ckpath := filepath.Join(dir, "sweep.json")

	// Eight points on two workers: interrupting at the second launch
	// leaves undispatched points behind, whatever the scheduling.
	cfg := sweepCfg()
	cfg.RatioMax = 2.0

	s1 := quickSuite()
	s1.Workers = 2
	s1.Checkpoint = ckpath
	interruptAfter(s1, 2)
	_, _, err := s1.ALUFetchRatio(cfg)
	if !errors.Is(err, ErrSweepInterrupted) {
		t.Fatalf("want ErrSweepInterrupted, got %v", err)
	}
	if got := s1.Metrics().Snapshot().Get("core.sweep.interrupted"); got != 1 {
		t.Errorf("core.sweep.interrupted = %d, want 1", got)
	}
	completed := readCheckpoint(t, ckpath)
	if completed == 0 || completed >= 8 {
		t.Fatalf("checkpoint holds %d of 8 points; interrupt landed outside mid-sweep", completed)
	}

	s2 := quickSuite()
	s2.Workers = 2
	s2.Checkpoint = ckpath
	fig2, runs2, err := s2.ALUFetchRatio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s2.KernelLaunches(), int64(len(runs2)-completed); got != want {
		t.Fatalf("resume launched %d kernels, want %d (total %d - checkpointed %d)",
			got, want, len(runs2), completed)
	}

	clean := quickSuite()
	figClean, _, err := clean.ALUFetchRatio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig2.CSV() != figClean.CSV() {
		t.Fatalf("interrupted+resumed figure differs from clean run:\n%s\nvs\n%s", fig2.CSV(), figClean.CSV())
	}
}

func TestInterruptIdleSuiteIsNoop(t *testing.T) {
	s := quickSuite()
	s.Interrupt() // nothing in flight: must not wedge the next sweep
	if _, _, err := s.ALUFetchRatio(sweepCfg()); err != nil {
		t.Fatalf("sweep after idle Interrupt failed: %v", err)
	}
}

func TestRunKernelPointsMatchesFigureSweep(t *testing.T) {
	// RunKernelPoints is the soak campaigns' entry; driving the same
	// kernels through it must reproduce the figure sweep's runs exactly.
	s := quickSuite()
	fig, runs, err := s.ALUFetchRatio(sweepCfg())
	if err != nil {
		t.Fatal(err)
	}
	_ = fig

	s2 := quickSuite()
	var kps []KernelPoint
	card := sweepCfg().Cards[0]
	for _, r := range []float64{0.25, 0.5, 0.75, 1.0} {
		p := card.params(16, 1, il.TextureSpace, il.TextureSpace)
		p.ALUFetchRatio = r
		k, err := s2.generate(pipeline.GenALUFetch, p)
		if err != nil {
			t.Fatal(err)
		}
		kps = append(kps, KernelPoint{Card: card, X: r, K: k, W: 64, H: 64})
	}
	runs2, err := s2.RunKernelPoints(kps)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs2) != len(runs) {
		t.Fatalf("RunKernelPoints returned %d runs, want %d", len(runs2), len(runs))
	}
	for i := range runs {
		if runs[i] != runs2[i] {
			t.Errorf("run %d differs: %+v vs %+v", i, runs[i], runs2[i])
		}
	}
}
