package core

import "amdgpubench/internal/report"

// A FigureSpec is a declaratively planned figure: the figure template,
// the exact sweep points that produce it, and how completed runs fold
// into the template's series. Every figure method on Suite (Fig7..Fig17,
// the extensions) is a spec builder plus RunFigureSpec; the campaign
// scheduler (internal/campaign) consumes the same specs to plan several
// figures as one deduplicated DAG of work units.
type FigureSpec struct {
	// Fig is the figure template the spec's runs assemble into. It is
	// single-use: Finish appends series to it. Nil means the spec has no
	// figure (raw sweep points, e.g. a soak step).
	Fig *report.Figure
	// Points are the sweep points, in figure order. The order is part of
	// the spec: series assembly walks runs in point order.
	Points []KernelPoint
	// Finish assembles completed runs (point order, one per Points entry)
	// into Fig. Nil means AssembleSeries. It may re-key Run.X in place —
	// Fig. 16 replaces the step index with the compiled register count.
	Finish func(fig *report.Figure, runs []Run)
}

// FinishInto applies the spec's series assembly to completed runs.
func (sp FigureSpec) FinishInto(runs []Run) {
	if sp.Fig == nil {
		return
	}
	if sp.Finish != nil {
		sp.Finish(sp.Fig, runs)
		return
	}
	AssembleSeries(sp.Fig, runs)
}

// RunFigureSpec executes one spec directly — the degenerate single-spec
// campaign: every point through the resilient sweep runner, then series
// assembly. Multi-spec runs with cross-figure deduplication live in
// internal/campaign.
func (s *Suite) RunFigureSpec(spec FigureSpec) (*report.Figure, []Run, error) {
	runs, err := s.RunKernelPoints(spec.Points)
	if err != nil {
		return nil, nil, err
	}
	spec.FinishInto(runs)
	return spec.Fig, runs, nil
}

// AssembleSeries groups card-major ordered runs into one series per card:
// a new series starts whenever the card changes. Per-point failure
// records plot nothing — a detected failure must never fold into a
// curve as a bogus timing.
func AssembleSeries(fig *report.Figure, runs []Run) {
	var cur *report.Series
	started := false
	var last Card
	for _, r := range runs {
		if !started || r.Card != last {
			cur = fig.AddSeries(r.Card.Label())
			last = r.Card
			started = true
		}
		if r.Failed() {
			continue
		}
		cur.Add(r.X, r.Seconds)
	}
}
