package core

import (
	"strings"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/kerngen"
)

func TestTuneBlockSizeFindsBetterThanNaive(t *testing.T) {
	s := suite()
	k, err := kerngen.ALUFetch(kerngen.Params{
		Mode: il.Compute, Type: il.Float, Inputs: 16, Outputs: 1,
		ALUFetchRatio: 0.25, OutSpace: il.GlobalSpace,
	})
	if err != nil {
		t.Fatal(err)
	}
	card := Card{Arch: device.RV770, Mode: il.Compute, Type: il.Float}
	res, err := s.TuneBlockSize(card, k, 1024, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != len(blockShapes) {
		t.Fatalf("tried %d shapes, want %d", len(res.Trials), len(blockShapes))
	}
	if res.Best.BlockW == 64 && res.Best.BlockH == 1 {
		t.Fatal("tuner picked the naive 64x1 block for a fetch-bound kernel")
	}
	if res.Speedup < 1.5 {
		t.Fatalf("tuner speedup %.2fx, want >= 1.5x", res.Speedup)
	}
	ord, err := res.Order()
	if err != nil {
		t.Fatal(err)
	}
	if ord.BlockW != res.Best.BlockW || ord.BlockH != res.Best.BlockH {
		t.Fatal("Order() does not match the best trial")
	}
	out := FormatBlockTune(res)
	if !strings.Contains(out, "best:") || !strings.Contains(out, "*") {
		t.Errorf("tuning table malformed:\n%s", out)
	}
}

func TestTuneBlockSizeRejectsPixelKernels(t *testing.T) {
	s := suite()
	k, err := kerngen.ALUFetch(kerngen.Params{
		Mode: il.Pixel, Type: il.Float, Inputs: 8, Outputs: 1, ALUFetchRatio: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	card := Card{Arch: device.RV770, Mode: il.Pixel, Type: il.Float}
	if _, err := s.TuneBlockSize(card, k, 256, 256); err == nil {
		t.Fatal("pixel kernel accepted for block tuning")
	}
}

func TestTuneBlockSizeALUBoundIndifferent(t *testing.T) {
	// An ALU-bound kernel should see little spread across blocks; the
	// tuner must still work and report a modest speedup.
	s := suite()
	k, err := kerngen.ALUFetch(kerngen.Params{
		Mode: il.Compute, Type: il.Float, Inputs: 4, Outputs: 1,
		ALUFetchRatio: 16, OutSpace: il.GlobalSpace,
	})
	if err != nil {
		t.Fatal(err)
	}
	card := Card{Arch: device.RV770, Mode: il.Compute, Type: il.Float}
	res, err := s.TuneBlockSize(card, k, 1024, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup > 1.3 {
		t.Fatalf("ALU-bound kernel shows %.2fx block sensitivity, want little", res.Speedup)
	}
}
