package core

import (
	"strings"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/kerngen"
)

func adviceTexts(advs []Advice) string {
	var b strings.Builder
	for _, a := range advs {
		b.WriteString(a.Suggestion)
		b.WriteString("\n")
	}
	return b.String()
}

func TestAdviseFetchBound(t *testing.T) {
	r := Run{
		Card:       Card{Arch: device.RV770, Mode: il.Compute, Type: il.Float},
		Bottleneck: "fetch", HitRate: 0.85, Waves: 4, GPRs: 64,
	}
	text := adviceTexts(Advise(r))
	for _, want := range []string{
		"ALU operations per fetch",
		"64x1 block",
		"cache hit rate",
		"register usage",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("fetch-bound advice missing %q:\n%s", want, text)
		}
	}
}

func TestAdviseFetchBoundPixelSkipsBlockAdvice(t *testing.T) {
	r := Run{
		Card:       Card{Arch: device.RV770, Mode: il.Pixel, Type: il.Float},
		Bottleneck: "fetch", HitRate: 0.95, Waves: 20, GPRs: 10,
	}
	text := adviceTexts(Advise(r))
	if strings.Contains(text, "64x1 block") {
		t.Errorf("pixel-mode run got compute block advice:\n%s", text)
	}
	if strings.Contains(text, "register usage") {
		t.Errorf("high-occupancy run got register advice:\n%s", text)
	}
}

func TestAdviseALUBound(t *testing.T) {
	r := Run{
		Card:       Card{Arch: device.RV870, Mode: il.Pixel, Type: il.Float4},
		Bottleneck: "ALU", HitRate: 0.95, Waves: 25, GPRs: 5,
	}
	text := adviceTexts(Advise(r))
	if !strings.Contains(text, "merge") {
		t.Errorf("ALU-bound advice missing merging suggestion:\n%s", text)
	}
	if !strings.Contains(text, "registers") {
		t.Errorf("ALU-bound healthy-cache advice missing register-spend suggestion:\n%s", text)
	}
}

func TestAdviseMemoryBound(t *testing.T) {
	r := Run{
		Card:       Card{Arch: device.RV770, Mode: il.Compute, Type: il.Float4},
		Bottleneck: "memory",
	}
	text := adviceTexts(Advise(r))
	if !strings.Contains(text, "free until the bound flips") {
		t.Errorf("memory-bound advice missing headroom suggestion:\n%s", text)
	}
	if !strings.Contains(text, "consecutive addresses") {
		t.Errorf("memory-bound advice missing burst suggestion:\n%s", text)
	}
}

func TestAdviseUnknownBottleneck(t *testing.T) {
	if got := Advise(Run{Bottleneck: "?"}); len(got) != 0 {
		t.Fatalf("unknown bottleneck produced advice: %v", got)
	}
	if !strings.Contains(AdviseString(Run{Bottleneck: "?"}), "no advice") {
		t.Fatal("AdviseString should say no advice")
	}
}

// TestAdviseEndToEnd drives the advisor from real suite runs: the matmul
// shape must be diagnosed fetch bound with the ALU:Fetch prescription and
// the write-heavy shape memory bound with the headroom prescription.
func TestAdviseEndToEnd(t *testing.T) {
	s := suite()
	card := Card{Arch: device.RV770, Mode: il.Pixel, Type: il.Float}
	k, err := kerngen.ALUFetch(kerngen.Params{
		Mode: il.Pixel, Type: il.Float, Inputs: 16, Outputs: 1, ALUFetchRatio: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := s.runKernel(card, k, 1024, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := AdviseString(run)
	if !strings.Contains(out, "fetch bound") || !strings.Contains(out, "ALU operations per fetch") {
		t.Errorf("end-to-end fetch diagnosis wrong:\n%s", out)
	}

	wk, err := kerngen.WriteLatency(kerngen.Params{
		Mode: il.Pixel, Type: il.Float4, Inputs: 2, Outputs: 8, OutSpace: il.GlobalSpace,
	})
	if err != nil {
		t.Fatal(err)
	}
	wcard := Card{Arch: device.RV770, Mode: il.Pixel, Type: il.Float4}
	wrun, err := s.runKernel(wcard, wk, 1024, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	wout := AdviseString(wrun)
	if !strings.Contains(wout, "memory bound") {
		t.Errorf("end-to-end memory diagnosis wrong:\n%s", wout)
	}
}
