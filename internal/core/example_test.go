package core_test

import (
	"fmt"

	"amdgpubench/internal/core"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
)

// ExampleAdvise shows the paper's Section IV/V prescriptions for a
// fetch-bound compute kernel running with the naive 64x1 block at low
// occupancy.
func ExampleAdvise() {
	run := core.Run{
		Card:       core.Card{Arch: device.RV770, Mode: il.Compute, Type: il.Float},
		Bottleneck: "fetch",
		HitRate:    0.85,
		Waves:      4,
		GPRs:       64,
	}
	for i, a := range core.Advise(run) {
		fmt.Printf("%d. %s\n", i+1, a.Suggestion)
	}
	// Output:
	// 1. Increase ALU operations per fetch (compute more per fetched element, e.g. unroll outputs per thread) until the ALU:Fetch crossover.
	// 2. Replace the naive 64x1 block with a two-dimensional block (e.g. 4x16) to restore cache locality.
	// 3. Raise the texture cache hit rate (currently 85%): increase elements per block or reduce simultaneous wavefronts.
	// 4. Reduce register usage (currently 64 GPRs, 4 wavefronts/SIMD) so more wavefronts can hide fetch latency.
}
