package cal

import (
	"strings"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/kerngen"
	"amdgpubench/internal/raster"
	"amdgpubench/internal/sim"
)

func openCtx(t *testing.T, arch device.Arch) *Context {
	t.Helper()
	d, err := OpenDevice(arch)
	if err != nil {
		t.Fatal(err)
	}
	return d.CreateContext()
}

func sumKernel(t *testing.T, inputs int) *il.Kernel {
	t.Helper()
	k, err := kerngen.Generic(kerngen.Params{
		Mode: il.Pixel, Type: il.Float, Inputs: inputs, Outputs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestOpenDevice(t *testing.T) {
	d, err := OpenDevice(device.RV870)
	if err != nil {
		t.Fatal(err)
	}
	if d.Info().Arch != device.RV870 {
		t.Fatal("wrong device")
	}
}

func TestOpenCustomDeviceValidates(t *testing.T) {
	spec := device.Lookup(device.RV770)
	spec.SIMDEngines = 0
	if _, err := OpenCustomDevice(spec); err == nil {
		t.Fatal("broken custom spec accepted")
	}
	spec = device.Lookup(device.RV770)
	spec.Arch = device.Arch(7) // a "future generation" chip
	if _, err := OpenCustomDevice(spec); err != nil {
		t.Fatalf("valid custom spec rejected: %v", err)
	}
}

func TestLoadModuleAndDisassemble(t *testing.T) {
	ctx := openCtx(t, device.RV770)
	m, err := ctx.LoadModule(sumKernel(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	dis := m.Disassemble()
	if !strings.Contains(dis, "TEX:") || !strings.Contains(dis, "END_OF_PROGRAM") {
		t.Errorf("disassembly malformed:\n%s", dis)
	}
	if m.Stats().FetchOps != 3 {
		t.Errorf("stats fetches = %d, want 3", m.Stats().FetchOps)
	}
}

func TestResourceAccessors(t *testing.T) {
	ctx := openCtx(t, device.RV770)
	r, err := ctx.AllocResource2D(8, 4, il.Float4, il.TextureSpace)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Set(7, 3, 3, 42); err != nil {
		t.Fatal(err)
	}
	v, err := r.At(7, 3, 3)
	if err != nil || v != 42 {
		t.Fatalf("At = %v, %v", v, err)
	}
	if err := r.Set(8, 0, 0, 1); err == nil {
		t.Error("out-of-range x accepted")
	}
	if _, err := r.At(0, 0, 4); err == nil {
		t.Error("out-of-range lane accepted")
	}
	if _, err := ctx.AllocResource2D(0, 4, il.Float, il.TextureSpace); err == nil {
		t.Error("zero-size resource accepted")
	}
}

func TestLaunchTimingOnly(t *testing.T) {
	ctx := openCtx(t, device.RV770)
	m, err := ctx.LoadModule(sumKernel(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := ctx.Launch(m, LaunchConfig{Order: raster.PixelOrder(), W: 512, H: 512, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ev.ElapsedSeconds() <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestLaunchValidatesBindings(t *testing.T) {
	ctx := openCtx(t, device.RV770)
	m, err := ctx.LoadModule(sumKernel(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	in0, _ := ctx.AllocResource2D(16, 16, il.Float, il.TextureSpace)
	out0, _ := ctx.AllocResource2D(16, 16, il.Float, il.TextureSpace)

	// Wrong input count.
	_, err = ctx.Launch(m, LaunchConfig{Order: raster.PixelOrder(), W: 16, H: 16, Iterations: 1,
		Inputs: []*Resource{in0}, Outputs: []*Resource{out0}})
	if err == nil {
		t.Error("missing input binding accepted")
	}
	// Resource smaller than domain.
	small, _ := ctx.AllocResource2D(8, 8, il.Float, il.TextureSpace)
	_, err = ctx.Launch(m, LaunchConfig{Order: raster.PixelOrder(), W: 16, H: 16, Iterations: 1,
		Inputs: []*Resource{in0, small}, Outputs: []*Resource{out0}})
	if err == nil {
		t.Error("undersized resource accepted")
	}
	// Wrong data type.
	f4, _ := ctx.AllocResource2D(16, 16, il.Float4, il.TextureSpace)
	_, err = ctx.Launch(m, LaunchConfig{Order: raster.PixelOrder(), W: 16, H: 16, Iterations: 1,
		Inputs: []*Resource{in0, f4}, Outputs: []*Resource{out0}})
	if err == nil {
		t.Error("type-mismatched resource accepted")
	}
	// Wrong memory space.
	g, _ := ctx.AllocResource2D(16, 16, il.Float, il.GlobalSpace)
	_, err = ctx.Launch(m, LaunchConfig{Order: raster.PixelOrder(), W: 16, H: 16, Iterations: 1,
		Inputs: []*Resource{in0, g}, Outputs: []*Resource{out0}})
	if err == nil {
		t.Error("space-mismatched resource accepted")
	}
}

func TestLaunchFunctionalComputesSum(t *testing.T) {
	ctx := openCtx(t, device.RV770)
	m, err := ctx.LoadModule(sumKernel(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var ins []*Resource
	for i := 0; i < 3; i++ {
		r, _ := ctx.AllocResource2D(n, n, il.Float, il.TextureSpace)
		i := i
		r.Fill(func(x, y, _ int) float32 { return float32((i + 1) * (y*n + x)) })
		ins = append(ins, r)
	}
	out, _ := ctx.AllocResource2D(n, n, il.Float, il.TextureSpace)
	_, err = ctx.Launch(m, LaunchConfig{
		Order: raster.PixelOrder(), W: n, H: n, Iterations: 1,
		Inputs: ins, Outputs: []*Resource{out}, Functional: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			want := float32((1 + 2 + 3) * (y*n + x))
			got, _ := out.At(x, y, 0)
			if got != want {
				t.Fatalf("out(%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
}

func TestLaunchComputeModeOnRV670Fails(t *testing.T) {
	ctx := openCtx(t, device.RV670)
	k, err := kerngen.Generic(kerngen.Params{
		Mode: il.Compute, Type: il.Float, Inputs: 2, Outputs: 1,
		OutSpace: il.GlobalSpace,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.LoadModule(k); err == nil {
		t.Fatal("RV670 compiled a compute kernel")
	}
}

func TestEventBottleneck(t *testing.T) {
	ctx := openCtx(t, device.RV770)
	k, err := kerngen.ALUFetch(kerngen.Params{
		Mode: il.Pixel, Type: il.Float, Inputs: 8, Outputs: 1, ALUFetchRatio: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ctx.LoadModule(k)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := ctx.Launch(m, LaunchConfig{Order: raster.PixelOrder(), W: 1024, H: 1024, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Bottleneck().String() != "ALU" {
		t.Fatalf("ratio-8 kernel bottleneck = %v, want ALU", ev.Bottleneck())
	}
}

func TestLaunchAblatePassthrough(t *testing.T) {
	ctx := openCtx(t, device.RV770)
	m, err := ctx.LoadModule(sumKernel(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	base, err := ctx.Launch(m, launchCfg(256))
	if err != nil {
		t.Fatal(err)
	}
	cfg := launchCfg(256)
	cfg.Ablate = sim.Ablations{SingleWavefront: true}
	abl, err := ctx.Launch(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if abl.Result.WavesPerSIMD != 1 {
		t.Fatalf("ablation not passed through: %d waves", abl.Result.WavesPerSIMD)
	}
	if abl.ElapsedSeconds() <= base.ElapsedSeconds() {
		t.Fatal("single-wavefront launch not slower")
	}
}

func launchCfg(dim int) LaunchConfig {
	return LaunchConfig{Order: raster.PixelOrder(), W: dim, H: dim, Iterations: 1}
}

func TestLoadModuleWithOptions(t *testing.T) {
	ctx := openCtx(t, device.RV770)
	k := sumKernel(t, 8)
	base, err := ctx.LoadModule(k)
	if err != nil {
		t.Fatal(err)
	}
	abl, err := ctx.LoadModuleWith(k, ilc.Options{NoClauseTemps: true, NoPVForwarding: true})
	if err != nil {
		t.Fatal(err)
	}
	if abl.Stats().GPRWrites <= base.Stats().GPRWrites {
		t.Fatalf("forwarding-off module writes %d GPRs, base %d: options ignored",
			abl.Stats().GPRWrites, base.Stats().GPRWrites)
	}
}

func TestLaunchFunctionalWithConstants(t *testing.T) {
	ctx := openCtx(t, device.RV770)
	// out = (in0 + in1) * cb0[1]
	k := &il.Kernel{
		Name: "constmul", Mode: il.Pixel, Type: il.Float,
		NumInputs: 2, NumOutputs: 1, NumConsts: 2,
		Code: []il.Instr{
			{Op: il.OpSample, Dst: 0, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0},
			{Op: il.OpSample, Dst: 1, SrcA: il.NoReg, SrcB: il.NoReg, Res: 1},
			{Op: il.OpAdd, Dst: 2, SrcA: 0, SrcB: 1, Res: -1},
			{Op: il.OpMulC, Dst: 3, SrcA: 2, SrcB: il.NoReg, Res: 1},
			{Op: il.OpExport, Dst: il.NoReg, SrcA: 3, SrcB: il.NoReg, Res: 0},
		},
	}
	m, err := ctx.LoadModule(k)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	a, _ := ctx.AllocResource2D(n, n, il.Float, il.TextureSpace)
	b, _ := ctx.AllocResource2D(n, n, il.Float, il.TextureSpace)
	a.Fill(func(x, y, _ int) float32 { return float32(x) })
	b.Fill(func(x, y, _ int) float32 { return float32(y) })
	out, _ := ctx.AllocResource2D(n, n, il.Float, il.TextureSpace)
	_, err = ctx.Launch(m, LaunchConfig{
		Order: raster.PixelOrder(), W: n, H: n, Iterations: 1,
		Inputs: []*Resource{a, b}, Outputs: []*Resource{out},
		Constants:  [][4]float32{{9, 9, 9, 9}, {2.5, 2.5, 2.5, 2.5}},
		Functional: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := out.At(3, 5, 0)
	if want := float32(3+5) * 2.5; got != want {
		t.Fatalf("constant-multiplied output = %v, want %v", got, want)
	}
	// Unbound constants read as zero.
	k.Code[3].Res = 0
	k2 := *k
	m2, err := ctx.LoadModule(&k2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ctx.Launch(m2, LaunchConfig{
		Order: raster.PixelOrder(), W: n, H: n, Iterations: 1,
		Inputs: []*Resource{a, b}, Outputs: []*Resource{out},
		Functional: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := out.At(3, 5, 0); got != 0 {
		t.Fatalf("unbound constant read as %v, want 0", got)
	}
}
