package cal

// The launch path's typed error taxonomy. Sweep runners decide what to do
// with a failed launch by errors.Is-ing against these sentinels rather
// than by parsing messages: transient faults are retried, timeouts are
// recorded per point and the sweep continues, a lost device kills the
// whole campaign.

import (
	"errors"
	"fmt"

	"amdgpubench/internal/device"
	"amdgpubench/internal/fault"
	"amdgpubench/internal/sim"
)

var (
	// ErrKernelTimeout marks a launch the watchdog aborted: the wavefront
	// set stopped retiring work within the cycle budget. Recoverable at
	// the sweep level (record the point, keep going), not by retrying —
	// the simulation is deterministic, it would hang again.
	ErrKernelTimeout = errors.New("kernel timeout")
	// ErrDeviceLost marks a device falling off the bus. Fatal: every
	// subsequent launch on the context would fail too.
	ErrDeviceLost = errors.New("device lost")
	// ErrLaunchTransient marks a flaky launch failure (the StreamSDK
	// symptom: a launch that fails once and succeeds when re-issued).
	// Worth bounded retries with backoff.
	ErrLaunchTransient = errors.New("transient launch failure")
)

// LaunchError is the structured failure a launch returns: the taxonomy
// sentinel it wraps, where it happened, and — for watchdog aborts — the
// simulator's stuck-wavefront diagnostic.
type LaunchError struct {
	// Kind is one of the Err* sentinels; errors.Is sees through to it.
	Kind error
	// Arch and Kernel locate the failing launch.
	Arch   device.Arch
	Kernel string
	// Injected lists the faults that struck, when injection caused this.
	Injected fault.Injection
	// Diag is the watchdog's structured diagnostic (timeouts only).
	Diag *sim.WatchdogError
}

// Error renders the failure with its location and diagnostic.
func (e *LaunchError) Error() string {
	msg := fmt.Sprintf("cal: %v: kernel %q on %s", e.Kind, e.Kernel, e.Arch)
	if e.Injected.Any() {
		msg += " (injected: " + e.Injected.String() + ")"
	}
	if e.Diag != nil {
		msg += ": " + e.Diag.Error()
	}
	return msg
}

// Unwrap exposes the taxonomy sentinel to errors.Is.
func (e *LaunchError) Unwrap() error { return e.Kind }

// IsTransient reports whether the error is worth retrying.
func IsTransient(err error) bool { return errors.Is(err, ErrLaunchTransient) }

// IsRecoverable reports whether a sweep can record the failure and
// continue: timeouts and transients are per-point problems; anything
// else (a lost device, a compile or configuration error) is fatal.
func IsRecoverable(err error) bool {
	return errors.Is(err, ErrKernelTimeout) || errors.Is(err, ErrLaunchTransient)
}
