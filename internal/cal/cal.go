// Package cal is the runtime layer of the reproduction: a Compute
// Abstraction Layer shaped like the StreamSDK API the paper programs
// against. Applications open a (simulated) device, create a context,
// compile IL kernels into modules, allocate 2D resources, bind them, and
// launch over a domain of execution. A launch returns an event carrying
// the simulated kernel timing — the quantity every micro-benchmark
// measures — and can optionally execute the kernel functionally so
// examples can verify numerical results.
package cal

import (
	"errors"
	"fmt"
	"sync/atomic"

	"amdgpubench/internal/device"
	"amdgpubench/internal/fault"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/interp"
	"amdgpubench/internal/isa"
	"amdgpubench/internal/obs"
	"amdgpubench/internal/pipeline"
	"amdgpubench/internal/raster"
	"amdgpubench/internal/sim"
)

// Device is an opened GPU.
type Device struct {
	spec device.Spec
}

// OpenDevice opens one of the three modelled GPUs.
func OpenDevice(arch device.Arch) (*Device, error) {
	spec := device.Lookup(arch)
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("cal: %w", err)
	}
	return &Device{spec: spec}, nil
}

// OpenCustomDevice opens a user-defined (e.g. future-generation) chip.
func OpenCustomDevice(spec device.Spec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("cal: %w", err)
	}
	return &Device{spec: spec}, nil
}

// Info returns the device's parameter table.
func (d *Device) Info() device.Spec { return d.spec }

// Context is a command context on a device: a thin client of the staged
// launch pipeline (see internal/pipeline). Contexts are safe for
// concurrent launches, and the fault plan may be swapped at any time,
// including while launches are in flight.
type Context struct {
	dev      *Device
	pipe     *pipeline.Pipeline
	plan     atomic.Pointer[fault.Plan]
	launches atomic.Uint64

	// Per-fault-kind injection counters, resolved once from the
	// pipeline's metrics registry so every context sharing a pipeline
	// accumulates into the same set.
	launchCount *obs.Counter
	faultCounts map[string]*obs.Counter
}

// CreateContext creates a context with its own artifact-caching
// pipeline.
func (d *Device) CreateContext() *Context {
	return d.CreateContextWith(pipeline.New(pipeline.Options{}))
}

// CreateContextWith creates a context that stages its module loads and
// launches through an existing pipeline, sharing its artifact caches
// with every other context on the same pipeline. A nil pipeline gets a
// fresh one.
func (d *Device) CreateContextWith(p *pipeline.Pipeline) *Context {
	if p == nil {
		p = pipeline.New(pipeline.Options{})
	}
	reg := p.Metrics()
	faults := make(map[string]*obs.Counter, 6)
	for _, kind := range []string{"hang", "transient", "throttle", "corrupt", "drop", "device_lost"} {
		faults[kind] = reg.Counter("cal.fault." + kind)
	}
	return &Context{
		dev:         d,
		pipe:        p,
		launchCount: reg.Counter("cal.launches"),
		faultCounts: faults,
	}
}

// Pipeline returns the staged pipeline behind the context's launches.
func (c *Context) Pipeline() *pipeline.Pipeline { return c.pipe }

// SetFaultPlan arms deterministic fault injection on every subsequent
// launch; nil disarms it. It is safe to call concurrently with Launch:
// in-flight launches use whichever plan they observed. See package
// fault.
func (c *Context) SetFaultPlan(p *fault.Plan) { c.plan.Store(p) }

// Launches returns how many launches the context has issued (attempted
// launches included), a counter sweeps and tests use for accounting.
func (c *Context) Launches() uint64 { return c.launches.Load() }

// Module is a compiled kernel.
type Module struct {
	Kernel *il.Kernel
	Prog   *isa.Program
}

// LoadModule compiles an IL kernel for the context's device.
func (c *Context) LoadModule(k *il.Kernel) (*Module, error) {
	return c.LoadModuleWith(k, ilc.Options{})
}

// LoadModuleWith compiles with explicit compiler options (ablations).
// Compilation goes through the pipeline's Compile stage: identical IL on
// the same architecture with the same options is compiled once and the
// resulting program shared.
func (c *Context) LoadModuleWith(k *il.Kernel, opts ilc.Options) (*Module, error) {
	prog, err := c.pipe.Compile(k, c.dev.spec, opts)
	if err != nil {
		return nil, fmt.Errorf("cal: %w", err)
	}
	return &Module{Kernel: k, Prog: prog}, nil
}

// Disassemble returns the module's ISA listing (Fig. 2 style).
func (m *Module) Disassemble() string { return isa.Disassemble(m.Prog) }

// Stats returns the module's static analysis, what the SKA tool reports.
func (m *Module) Stats() isa.Stats { return m.Prog.Stats() }

// Resource is a 2D surface: an input texture/buffer or an output buffer.
type Resource struct {
	W, H  int
	Type  il.DataType
	Space il.MemSpace
	data  []float32 // lane-major: (y*W+x)*lanes + lane
}

// AllocResource2D allocates a W x H surface.
func (c *Context) AllocResource2D(w, h int, dt il.DataType, space il.MemSpace) (*Resource, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("cal: bad resource size %dx%d", w, h)
	}
	return &Resource{W: w, H: h, Type: dt, Space: space,
		data: make([]float32, w*h*dt.Lanes())}, nil
}

// Set writes one element's lane.
func (r *Resource) Set(x, y, lane int, v float32) error {
	i, err := r.index(x, y, lane)
	if err != nil {
		return err
	}
	r.data[i] = v
	return nil
}

// At reads one element's lane.
func (r *Resource) At(x, y, lane int) (float32, error) {
	i, err := r.index(x, y, lane)
	if err != nil {
		return 0, err
	}
	return r.data[i], nil
}

// Fill sets every element lane from a generator, a convenience for
// uploading synthetic workloads.
func (r *Resource) Fill(f func(x, y, lane int) float32) {
	lanes := r.Type.Lanes()
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			for l := 0; l < lanes; l++ {
				r.data[(y*r.W+x)*lanes+l] = f(x, y, l)
			}
		}
	}
}

func (r *Resource) index(x, y, lane int) (int, error) {
	if x < 0 || x >= r.W || y < 0 || y >= r.H || lane < 0 || lane >= r.Type.Lanes() {
		return 0, fmt.Errorf("cal: access (%d,%d) lane %d outside %dx%d %s resource", x, y, lane, r.W, r.H, r.Type)
	}
	return (y*r.W+x)*r.Type.Lanes() + lane, nil
}

// LaunchConfig binds resources and picks the execution shape.
type LaunchConfig struct {
	Order raster.Order
	W, H  int
	// Iterations defaults to the paper's 5000 when zero.
	Iterations int
	// Inputs and Outputs bind resources positionally to the kernel's
	// declared inputs/outputs; both may be nil for timing-only launches.
	Inputs  []*Resource
	Outputs []*Resource
	// Constants binds the constant buffer cb0: element i, lane l reads
	// Constants[i][l]. Unbound elements read as zero.
	Constants [][4]float32
	// Functional also executes the kernel on the bound resources
	// (requires non-nil bindings). Functional execution interprets every
	// thread; keep domains small when enabling it.
	Functional bool
	// Ablate selectively disables hardware mechanisms in the timing
	// simulation (see sim.Ablations).
	Ablate sim.Ablations
	// DeadlineCycles is the per-launch watchdog budget: a steady-state
	// batch that has not drained within it aborts with ErrKernelTimeout.
	// Zero uses the simulator's default budget.
	DeadlineCycles uint64
	// Attempt numbers retries of the same logical launch; it feeds the
	// fault-injection key so a transient fault can clear on re-issue.
	Attempt int
	// Span, when non-zero, is the caller's tracing span for this launch;
	// the pipeline stages (trace/replay/simulate) record themselves as
	// its children. The zero Span is a no-op.
	Span obs.Span
}

// Event is the result of a launch.
type Event struct {
	Result sim.Result
	// Injected records the faults that struck the launch but let it
	// complete (throttled clocks, corrupted fetches, dropped exports);
	// faults that fail the launch surface as *LaunchError instead.
	Injected fault.Injection
}

// ElapsedSeconds returns the simulated wall-clock time of the launch
// (kernel invocation and execution only; no off-board transfers, exactly
// the paper's timing discipline).
func (e *Event) ElapsedSeconds() float64 { return e.Result.Seconds }

// Bottleneck returns the limiting resource classification.
func (e *Event) Bottleneck() sim.Bottleneck { return e.Result.Bottleneck }

// Launch runs a module over a domain. Failures carry the package's error
// taxonomy: errors.Is(err, ErrKernelTimeout) for watchdog aborts,
// ErrLaunchTransient for flaky (injected) launch failures, ErrDeviceLost
// for a dead device.
func (c *Context) Launch(m *Module, cfg LaunchConfig) (*Event, error) {
	c.launches.Add(1)
	c.launchCount.Inc()
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("cal: bad domain %dx%d", cfg.W, cfg.H)
	}
	if cfg.Inputs != nil || cfg.Outputs != nil || cfg.Functional {
		if err := c.validateBindings(m, cfg); err != nil {
			return nil, err
		}
	}

	arch := c.dev.spec.Arch
	inj := c.plan.Load().Draw(m.Kernel.Name,
		fault.Key(m.Kernel.Name, arch.String(), cfg.W, cfg.H, cfg.Attempt))
	c.countInjection(inj)
	if inj.DeviceLost {
		return nil, &LaunchError{Kind: ErrDeviceLost, Arch: arch, Kernel: m.Kernel.Name, Injected: inj}
	}
	if inj.Transient {
		return nil, &LaunchError{Kind: ErrLaunchTransient, Arch: arch, Kernel: m.Kernel.Name, Injected: inj}
	}

	simCfg := sim.Config{
		Spec:        c.dev.spec,
		Prog:        m.Prog,
		Order:       cfg.Order,
		W:           cfg.W,
		H:           cfg.H,
		Iterations:  cfg.Iterations,
		Ablate:      cfg.Ablate,
		Watchdog:    cfg.DeadlineCycles,
		ClockFactor: inj.Throttle,
	}
	if inj.Hang {
		simCfg.Hang = &sim.HangFault{Clause: inj.HangClause}
		// A hang only manifests as a timeout if a finite deadline is
		// armed; an unattended sweep always arms one.
		if simCfg.Watchdog == 0 {
			simCfg.Watchdog = sim.DefaultWatchdogBudget
		}
	}
	res, err := c.pipe.SimulateSpan(cfg.Span, simCfg)
	if err != nil {
		var wde *sim.WatchdogError
		if errors.As(err, &wde) {
			return nil, &LaunchError{Kind: ErrKernelTimeout, Arch: arch, Kernel: m.Kernel.Name, Injected: inj, Diag: wde}
		}
		return nil, fmt.Errorf("cal: %w", err)
	}
	if cfg.Functional {
		if err := c.executeFunctional(m, cfg, inj); err != nil {
			return nil, err
		}
	}
	return &Event{Result: res, Injected: inj}, nil
}

// countInjection tallies each fault kind that struck a launch into the
// pipeline's metrics registry (cal.fault.*).
func (c *Context) countInjection(inj fault.Injection) {
	if !inj.Any() {
		return
	}
	if inj.Hang {
		c.faultCounts["hang"].Inc()
	}
	if inj.Transient {
		c.faultCounts["transient"].Inc()
	}
	if inj.Throttle != 0 {
		c.faultCounts["throttle"].Inc()
	}
	if inj.Corrupt {
		c.faultCounts["corrupt"].Inc()
	}
	if inj.Drop {
		c.faultCounts["drop"].Inc()
	}
	if inj.DeviceLost {
		c.faultCounts["device_lost"].Inc()
	}
}

func (c *Context) validateBindings(m *Module, cfg LaunchConfig) error {
	k := m.Kernel
	if len(cfg.Inputs) != k.NumInputs {
		return fmt.Errorf("cal: kernel %q declares %d inputs, %d bound", k.Name, k.NumInputs, len(cfg.Inputs))
	}
	if len(cfg.Outputs) != k.NumOutputs {
		return fmt.Errorf("cal: kernel %q declares %d outputs, %d bound", k.Name, k.NumOutputs, len(cfg.Outputs))
	}
	check := func(r *Resource, what string, i int, space il.MemSpace) error {
		if r == nil {
			return fmt.Errorf("cal: %s %d is nil", what, i)
		}
		if r.W < cfg.W || r.H < cfg.H {
			return fmt.Errorf("cal: %s %d is %dx%d, smaller than the %dx%d domain", what, i, r.W, r.H, cfg.W, cfg.H)
		}
		if r.Type != k.Type {
			return fmt.Errorf("cal: %s %d is %s but kernel is %s", what, i, r.Type, k.Type)
		}
		if r.Space != space {
			return fmt.Errorf("cal: %s %d allocated in %s space but kernel reads/writes %s", what, i, r.Space, space)
		}
		return nil
	}
	for i, r := range cfg.Inputs {
		if err := check(r, "input", i, k.InputSpace); err != nil {
			return err
		}
	}
	for i, r := range cfg.Outputs {
		if err := check(r, "output", i, k.OutSpace); err != nil {
			return err
		}
	}
	return nil
}

// executeFunctional interprets the kernel for every thread of the domain
// and writes the bound outputs. Injected data faults act here: Corrupt
// perturbs fetched values, Drop silently discards the writes — the
// silent-corruption failure modes a measurement campaign must be able to
// rehearse detecting.
func (c *Context) executeFunctional(m *Module, cfg LaunchConfig, inj fault.Injection) error {
	env := interp.Env{
		W: cfg.W, H: cfg.H,
		Input: func(res, x, y, l int) float32 {
			v, err := cfg.Inputs[res].At(x, y, l)
			if err != nil {
				return 0
			}
			if inj.Corrupt {
				v = fault.CorruptValue(v, x, y, l)
			}
			return v
		},
		Const: func(idx, l int) float32 {
			if idx < 0 || idx >= len(cfg.Constants) || l < 0 || l > 3 {
				return 0
			}
			return cfg.Constants[idx][l]
		},
	}
	lanes := m.Kernel.Type.Lanes()
	for y := 0; y < cfg.H; y++ {
		for x := 0; x < cfg.W; x++ {
			out, err := interp.RunISA(m.Prog, env, interp.Thread{X: x, Y: y})
			if err != nil {
				return fmt.Errorf("cal: functional execution at (%d,%d): %w", x, y, err)
			}
			for idx, vec := range out {
				if inj.Drop {
					continue
				}
				for l := 0; l < lanes; l++ {
					if err := cfg.Outputs[idx].Set(x, y, l, vec[l]); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
