package cal

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/fault"
	"amdgpubench/internal/il"
	"amdgpubench/internal/raster"
)

// faultCtx opens an RV770 context with a plan armed.
func faultCtx(t *testing.T, plan *fault.Plan) (*Context, *Module) {
	t.Helper()
	ctx := openCtx(t, device.RV770)
	ctx.SetFaultPlan(plan)
	m, err := ctx.LoadModule(sumKernel(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	return ctx, m
}

func fCfg() LaunchConfig {
	return LaunchConfig{Order: raster.PixelOrder(), W: 64, H: 64, Iterations: 1}
}

func TestLaunchTransientFault(t *testing.T) {
	ctx, m := faultCtx(t, &fault.Plan{Specs: []fault.Spec{{Kind: fault.Transient, Prob: 1}}})
	_, err := ctx.Launch(m, fCfg())
	if !errors.Is(err, ErrLaunchTransient) {
		t.Fatalf("want ErrLaunchTransient, got %v", err)
	}
	if !IsTransient(err) || !IsRecoverable(err) {
		t.Fatal("transient should be retryable and recoverable")
	}
	var le *LaunchError
	if !errors.As(err, &le) || le.Arch != device.RV770 {
		t.Fatalf("launch error detail: %v", err)
	}
}

func TestLaunchHangBecomesKernelTimeout(t *testing.T) {
	ctx, m := faultCtx(t, &fault.Plan{Specs: []fault.Spec{{Kind: fault.Hang, Prob: 1, Clause: 1}}})
	cfg := fCfg()
	cfg.DeadlineCycles = 1 << 20
	_, err := ctx.Launch(m, cfg)
	if !errors.Is(err, ErrKernelTimeout) {
		t.Fatalf("want ErrKernelTimeout, got %v", err)
	}
	if IsTransient(err) {
		t.Fatal("timeout must not be classified transient")
	}
	if !IsRecoverable(err) {
		t.Fatal("timeout should be recoverable at sweep level")
	}
	var le *LaunchError
	if !errors.As(err, &le) {
		t.Fatalf("not a LaunchError: %v", err)
	}
	if le.Diag == nil || le.Diag.Clause != 1 {
		t.Fatalf("missing or wrong watchdog diagnostic: %+v", le.Diag)
	}
	if !strings.Contains(err.Error(), "injected: hang") {
		t.Errorf("error should name the injected fault: %q", err.Error())
	}
}

func TestLaunchDeviceLostIsFatal(t *testing.T) {
	ctx, m := faultCtx(t, &fault.Plan{Specs: []fault.Spec{{Kind: fault.DeviceLost, Prob: 1}}})
	_, err := ctx.Launch(m, fCfg())
	if !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("want ErrDeviceLost, got %v", err)
	}
	if IsRecoverable(err) {
		t.Fatal("device loss must be fatal")
	}
}

func TestLaunchThrottleCompletesWithRecord(t *testing.T) {
	ctx, m := faultCtx(t, nil)
	base, err := ctx.Launch(m, fCfg())
	if err != nil {
		t.Fatal(err)
	}
	ctx2, m2 := faultCtx(t, &fault.Plan{Specs: []fault.Spec{{Kind: fault.Throttle, Prob: 1, Factor: 0.5}}})
	ev, err := ctx2.Launch(m2, fCfg())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Injected.Throttle != 0.5 {
		t.Fatalf("event did not record throttle: %+v", ev.Injected)
	}
	if ratio := ev.ElapsedSeconds() / base.ElapsedSeconds(); ratio < 1.99 || ratio > 2.01 {
		t.Errorf("throttled launch %.3fx slower, want 2x", ratio)
	}
}

func TestLaunchAttemptClearsMatchedTransient(t *testing.T) {
	// Force a transient on attempt 0 only by probing attempts: with prob 1
	// it always fires, so scope it with prob<1 and find an attempt where
	// it clears — proving Attempt feeds the draw key.
	plan := &fault.Plan{Seed: 9, Specs: []fault.Spec{{Kind: fault.Transient, Prob: 0.5}}}
	ctx, m := faultCtx(t, plan)
	saw, cleared := false, false
	for a := 0; a < 20; a++ {
		cfg := fCfg()
		cfg.Attempt = a
		_, err := ctx.Launch(m, cfg)
		if err != nil {
			saw = true
		} else if saw {
			cleared = true
			break
		}
	}
	if !saw || !cleared {
		t.Fatalf("transient did not both strike and clear across attempts (saw=%v cleared=%v)", saw, cleared)
	}
}

func TestLaunchNoPlanUnchanged(t *testing.T) {
	ctx, m := faultCtx(t, nil)
	ev, err := ctx.Launch(m, fCfg())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Injected.Any() {
		t.Fatalf("no plan but injection recorded: %v", ev.Injected)
	}
	if ctx.Launches() != 1 {
		t.Fatalf("launch counter = %d, want 1", ctx.Launches())
	}
}

func TestFunctionalCorruptAndDrop(t *testing.T) {
	run := func(plan *fault.Plan) float32 {
		ctx, m := faultCtx(t, plan)
		in, err := ctx.AllocResource2D(8, 8, il.Float, il.TextureSpace)
		if err != nil {
			t.Fatal(err)
		}
		in.Fill(func(x, y, l int) float32 { return 1 })
		out, err := ctx.AllocResource2D(8, 8, il.Float, il.TextureSpace)
		if err != nil {
			t.Fatal(err)
		}
		// Pre-mark the output so dropped writes are detectable.
		out.Fill(func(x, y, l int) float32 { return -99 })
		cfg := LaunchConfig{
			Order: raster.PixelOrder(), W: 8, H: 8, Iterations: 1,
			Inputs: []*Resource{in, in, in}, Outputs: []*Resource{out},
			Functional: true,
		}
		if _, err := ctx.Launch(m, cfg); err != nil {
			t.Fatal(err)
		}
		v, err := out.At(0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	clean := run(nil)
	if clean == -99 {
		t.Fatal("clean run wrote nothing")
	}
	if got := run(&fault.Plan{Specs: []fault.Spec{{Kind: fault.Corrupt, Prob: 1}}}); got == clean {
		t.Error("corrupt fetch produced clean output")
	}
	if got := run(&fault.Plan{Specs: []fault.Spec{{Kind: fault.Drop, Prob: 1}}}); got != -99 {
		t.Errorf("dropped export still wrote output: %g", got)
	}
}

// TestSetFaultPlanConcurrentWithLaunch swaps the fault plan while
// launches are in flight. The plan pointer is an atomic swap, so this
// must be race-clean (the -race run enforces it) and every launch must
// observe either a coherent plan or none — never a torn one.
func TestSetFaultPlanConcurrentWithLaunch(t *testing.T) {
	ctx, m := faultCtx(t, nil)
	plans := []*fault.Plan{
		nil,
		{Specs: []fault.Spec{{Kind: fault.Transient, Prob: 1}}},
		{Specs: []fault.Spec{{Kind: fault.Throttle, Prob: 1, Factor: 0.5}}},
	}
	stop := make(chan struct{})
	swapperDone := make(chan struct{})
	go func() {
		defer close(swapperDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				ctx.SetFaultPlan(plans[i%len(plans)])
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := ctx.Launch(m, fCfg())
				if err != nil && !errors.Is(err, ErrLaunchTransient) {
					t.Errorf("launch under plan swap: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-swapperDone
}
