package cache

import (
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/raster"
)

// cursorConfigs covers the replay shapes the suite actually sweeps:
// pixel tiles and both compute blocks, float and float4, tiled and
// linear layouts, pow2 and the padding-heavy odd domain.
func cursorConfigs(t *testing.T) []TraceConfig {
	t.Helper()
	block, err := raster.ComputeOrder(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	return []TraceConfig{
		{Spec: device.Lookup(device.RV770), Order: raster.PixelOrder(), W: 256, H: 256, ElemBytes: 4, ResidentWaves: 16},
		{Spec: device.Lookup(device.RV870), Order: raster.Naive64x1(), W: 512, H: 128, ElemBytes: 16, ResidentWaves: 8},
		{Spec: device.Lookup(device.RV670), Order: block, W: 200, H: 120, ElemBytes: 4, ResidentWaves: 12, LinearLayout: true},
		{Spec: device.Lookup(device.RV770), Order: raster.PixelOrder(), W: 130, H: 70, ElemBytes: 16, ResidentWaves: 4, FirstWave: 7},
	}
}

// TestCursorMatchesReplay is the incremental-replay identity at its
// root: advancing a cursor one input at a time through N inputs must
// produce, at every intermediate count, statistics bit-identical to a
// cold one-shot Replay of that count. This is what entitles the
// pipeline's prefix-snapshot store to serve sweep point N+1 from point
// N's state.
func TestCursorMatchesReplay(t *testing.T) {
	for _, cfg := range cursorConfigs(t) {
		cur, err := NewCursor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n <= 9; n++ {
			if err := cur.Advance(n); err != nil {
				t.Fatal(err)
			}
			cfg.NumInputs = n
			want, err := Replay(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := cur.Stats(); got != want {
				t.Fatalf("%v at %d inputs: incremental %+v != one-shot %+v", cfg.Order, n, got, want)
			}
		}
	}
}

// TestCursorCloneIsIndependent pins the snapshot contract: advancing a
// clone must not disturb the original, and two clones advanced to the
// same depth agree with each other and with a cold replay.
func TestCursorCloneIsIndependent(t *testing.T) {
	cfg := cursorConfigs(t)[0]
	cur, err := NewCursor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.Advance(3); err != nil {
		t.Fatal(err)
	}
	before := cur.Stats()

	a, b := cur.Clone(), cur.Clone()
	if err := a.Advance(8); err != nil {
		t.Fatal(err)
	}
	if got := cur.Stats(); got != before {
		t.Fatalf("advancing a clone mutated the original: %+v != %+v", got, before)
	}
	if err := b.Advance(8); err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("sibling clones disagree: %+v != %+v", a.Stats(), b.Stats())
	}
	cfg.NumInputs = 8
	want, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats() != want {
		t.Fatalf("clone-resumed stats %+v != cold replay %+v", a.Stats(), want)
	}
}

// TestCursorRefusesRewind: the caches cannot forget a replayed prefix,
// so a rewind must be an explicit error, not silently wrong statistics.
func TestCursorRefusesRewind(t *testing.T) {
	cur, err := NewCursor(cursorConfigs(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.Advance(5); err != nil {
		t.Fatal(err)
	}
	if err := cur.Advance(4); err == nil {
		t.Fatal("Advance(4) after Advance(5) succeeded, want rewind error")
	}
	if err := cur.Advance(5); err != nil {
		t.Fatalf("Advance to the current position must be a no-op, got %v", err)
	}
}
