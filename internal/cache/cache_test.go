package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"amdgpubench/internal/device"
	"amdgpubench/internal/raster"
)

func mustNew(t *testing.T, total, line, ways int) *Cache {
	t.Helper()
	c, err := New(total, line, ways)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidatesGeometry(t *testing.T) {
	if _, err := New(0, 64, 8); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(1000, 64, 8); err == nil {
		t.Error("non-tiling capacity accepted")
	}
	c := mustNew(t, 16*1024, 64, 8)
	if c.Sets() != 32 || c.Ways() != 8 || c.LineBytes() != 64 {
		t.Errorf("geometry = %d sets / %d ways / %dB lines", c.Sets(), c.Ways(), c.LineBytes())
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, 1024, 64, 2)
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("re-access missed")
	}
	if !c.Access(63) {
		t.Error("same-line access missed")
	}
	if c.Access(64) {
		t.Error("next-line cold access hit")
	}
	h, m := c.Stats()
	if h != 2 || m != 2 {
		t.Errorf("stats = %d/%d, want 2 hits 2 misses", h, m)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 1 set: capacity 2 lines.
	c := mustNew(t, 128, 64, 2)
	c.Access(0)   // A
	c.Access(64)  // B
	c.Access(0)   // touch A: B becomes LRU
	c.Access(128) // C evicts B
	if !c.Access(0) {
		t.Error("A evicted although it was MRU")
	}
	if c.Access(64) {
		t.Error("B survived although it was LRU")
	}
}

func TestWorkingSetFitsAllHitsAfterWarmup(t *testing.T) {
	c := mustNew(t, 8*1024, 64, 4)
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 8*1024; a += 64 {
			c.Access(a)
		}
	}
	h, m := c.Stats()
	if m != 128 { // only the cold pass misses
		t.Errorf("misses = %d, want 128 (cold only)", m)
	}
	if h != 256 {
		t.Errorf("hits = %d, want 256", h)
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// A working set of 2x capacity streamed cyclically through an LRU
	// cache never hits.
	c := mustNew(t, 1024, 64, 2)
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 2048; a += 64 {
			c.Access(a)
		}
	}
	if h, _ := c.Stats(); h != 0 {
		t.Errorf("hits = %d, want 0 under cyclic thrash", h)
	}
}

func TestAccessRangeStraddle(t *testing.T) {
	c := mustNew(t, 1024, 64, 2)
	h, m := c.AccessRange(60, 16) // bytes 60..75 straddle lines 0 and 1
	if h != 0 || m != 2 {
		t.Errorf("straddle = %d hits %d misses, want 0/2", h, m)
	}
	h, m = c.AccessRange(0, 4)
	if h != 1 || m != 0 {
		t.Errorf("re-touch = %d/%d, want 1/0", h, m)
	}
	if h, m = c.AccessRange(0, 0); h != 0 || m != 0 {
		t.Error("zero-size range touched lines")
	}
}

func TestReset(t *testing.T) {
	c := mustNew(t, 1024, 64, 2)
	c.Access(0)
	c.Reset()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("counters survive reset")
	}
	if c.Access(0) {
		t.Error("contents survive reset")
	}
}

// referenceCache is an oracle: per-set LRU implemented with explicit
// recency lists. The property test checks the production cache agrees on
// every access over random traces.
type referenceCache struct {
	lineBytes, sets, ways int
	recency               [][]uint64 // per set, most recent first
}

func newReference(total, line, ways int) *referenceCache {
	return &referenceCache{lineBytes: line, sets: total / (line * ways), ways: ways,
		recency: make([][]uint64, total/(line*ways))}
}

func (r *referenceCache) access(addr uint64) bool {
	la := addr / uint64(r.lineBytes)
	set := int(la % uint64(r.sets))
	list := r.recency[set]
	for i, tag := range list {
		if tag == la {
			copy(list[1:i+1], list[:i])
			list[0] = la
			return true
		}
	}
	list = append([]uint64{la}, list...)
	if len(list) > r.ways {
		list = list[:r.ways]
	}
	r.recency[set] = list
	return false
}

func TestAgainstReferenceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		line := 32 << uint(rng.Intn(3)) // 32/64/128
		ways := 1 << uint(rng.Intn(4))  // 1..8
		sets := 1 << uint(rng.Intn(5))  // 1..16
		total := line * ways * sets
		c := mustNew(t, total, line, ways)
		ref := newReference(total, line, ways)
		for i := 0; i < 5000; i++ {
			addr := uint64(rng.Intn(total * 4))
			got := c.Access(addr)
			want := ref.access(addr)
			if got != want {
				t.Fatalf("trial %d access %d addr %d: cache=%v oracle=%v (line=%d ways=%d sets=%d)",
					trial, i, addr, got, want, line, ways, sets)
			}
		}
	}
}

func TestHitRateBounds(t *testing.T) {
	c := mustNew(t, 1024, 64, 2)
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		r := c.HitRate()
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- trace replay -------------------------------------------------------

func replayCfg(order raster.Order, elem, inputs, waves int) TraceConfig {
	return TraceConfig{
		Spec:          device.Lookup(device.RV770),
		Order:         order,
		W:             1024,
		H:             1024,
		ElemBytes:     elem,
		NumInputs:     inputs,
		ResidentWaves: waves,
	}
}

func TestReplayConservation(t *testing.T) {
	st, err := Replay(replayCfg(raster.PixelOrder(), 4, 8, 16))
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("hits(%d)+misses(%d) != accesses(%d)", st.Hits, st.Misses, st.Accesses)
	}
	if st.FetchExecs != 8*16 {
		t.Fatalf("fetch executions = %d, want 128", st.FetchExecs)
	}
	if st.MissBytes != st.Misses*64 {
		t.Fatal("miss bytes inconsistent with line size")
	}
}

func TestReplayPixelBeats64x1(t *testing.T) {
	// The central cache observation of the paper: the rasterizer's tiled
	// walk matches the tiled texture layout; the naive 64x1 compute walk
	// does not and misses more.
	pix, err := Replay(replayCfg(raster.PixelOrder(), 4, 16, 16))
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Replay(replayCfg(raster.Naive64x1(), 4, 16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !(pix.HitRate() > lin.HitRate()) {
		t.Fatalf("pixel hit rate %.3f not above 64x1's %.3f", pix.HitRate(), lin.HitRate())
	}
	if !(pix.MissBytesPerFetch() < lin.MissBytesPerFetch()) {
		t.Fatalf("pixel fill traffic %.1f not below 64x1's %.1f", pix.MissBytesPerFetch(), lin.MissBytesPerFetch())
	}
}

func TestReplay4x16Beats64x1(t *testing.T) {
	// Fig. 8: the 4x16 block size restores 2D locality in compute mode.
	blk, err := Replay(replayCfg(raster.Block4x16(), 4, 16, 16))
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Replay(replayCfg(raster.Naive64x1(), 4, 16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !(blk.HitRate() > lin.HitRate()) {
		t.Fatalf("4x16 hit rate %.3f not above 64x1's %.3f", blk.HitRate(), lin.HitRate())
	}
}

func TestReplayMoreWavesMoreContention(t *testing.T) {
	// Fig. 16's levelling-off mechanism: more resident wavefronts share
	// the L1, so per-access hit rate cannot improve and fill traffic per
	// fetch should not shrink.
	few, err := Replay(replayCfg(raster.Naive64x1(), 4, 16, 4))
	if err != nil {
		t.Fatal(err)
	}
	many, err := Replay(replayCfg(raster.Naive64x1(), 4, 16, 32))
	if err != nil {
		t.Fatal(err)
	}
	if many.HitRate() > few.HitRate()+0.02 {
		t.Fatalf("hit rate improved with contention: %.3f (32 waves) vs %.3f (4 waves)", many.HitRate(), few.HitRate())
	}
}

func TestReplayFloat4MoreTraffic(t *testing.T) {
	f1, err := Replay(replayCfg(raster.PixelOrder(), 4, 8, 16))
	if err != nil {
		t.Fatal(err)
	}
	f4, err := Replay(replayCfg(raster.PixelOrder(), 16, 8, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !(f4.MissBytesPerFetch() > 2*f1.MissBytesPerFetch()) {
		t.Fatalf("float4 fill traffic %.1f not well above float's %.1f", f4.MissBytesPerFetch(), f1.MissBytesPerFetch())
	}
}

func TestReplayRV870SmallerCacheWorse(t *testing.T) {
	// The RV870's doubled line size makes the naive 64x1 float walk fetch
	// twice the fill traffic of the RV770 (a quarter of each 128B line is
	// used instead of half of each 64B line), and its hit rate must never
	// exceed the tile-friendly walks'. This is the paper's "only part of
	// the cache is used by a one-dimensional block size" effect, amplified
	// on the RV870 (Section IV-A).
	cfg := replayCfg(raster.Naive64x1(), 4, 16, 24)
	st770, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Spec = device.Lookup(device.RV870)
	st870, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(st870.MissBytesPerFetch() > 1.8*st770.MissBytesPerFetch()) {
		t.Fatalf("RV870 64x1 fill/fetch %.0fB not about double RV770's %.0fB",
			st870.MissBytesPerFetch(), st770.MissBytesPerFetch())
	}
	cfg.Order = raster.Block4x16()
	blk870, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st870.HitRate() > blk870.HitRate() {
		t.Fatalf("RV870 64x1 hit rate %.3f above its 4x16 rate %.3f", st870.HitRate(), blk870.HitRate())
	}
}

func TestReplayRowActivations(t *testing.T) {
	// The naive 64x1 walk scatters its fills across eight tiles per
	// wavefront; the pixel tile walk and the 4x16 block fill contiguously
	// and must open far fewer DRAM rows per fetch.
	pix, err := Replay(replayCfg(raster.PixelOrder(), 4, 8, 16))
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Replay(replayCfg(raster.Naive64x1(), 4, 8, 16))
	if err != nil {
		t.Fatal(err)
	}
	blk, err := Replay(replayCfg(raster.Block4x16(), 4, 8, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !(pix.ActivationsPerFetch() < lin.ActivationsPerFetch()) {
		t.Errorf("pixel activations/fetch %.2f not below 64x1's %.2f",
			pix.ActivationsPerFetch(), lin.ActivationsPerFetch())
	}
	if !(blk.ActivationsPerFetch() < lin.ActivationsPerFetch()) {
		t.Errorf("4x16 activations/fetch %.2f not below 64x1's %.2f",
			blk.ActivationsPerFetch(), lin.ActivationsPerFetch())
	}
}

func TestReplayL2Accounting(t *testing.T) {
	st, err := Replay(replayCfg(raster.Naive64x1(), 4, 16, 24))
	if err != nil {
		t.Fatal(err)
	}
	if st.L2Hits+st.L2Misses != st.Misses {
		t.Fatalf("L2 hits (%d) + misses (%d) != L1 misses (%d)", st.L2Hits, st.L2Misses, st.Misses)
	}
	if st.DRAMBytes != st.L2Misses*64 {
		t.Fatalf("DRAM bytes %d inconsistent with L2 misses %d", st.DRAMBytes, st.L2Misses)
	}
	if st.DRAMBytes > st.MissBytes {
		t.Fatal("DRAM traffic exceeds L1 fill traffic")
	}
}

func TestReplayL2AbsorbsConflictMisses(t *testing.T) {
	// The 64x1 float walk with a window spanning two domain rows
	// re-touches row-0 lines from row-1 wavefronts; the tiled layout's
	// set-index stride makes many of those L1 conflict misses, which the
	// much larger L2 must absorb: DRAM traffic well below L1 fill traffic.
	st, err := Replay(replayCfg(raster.Naive64x1(), 4, 8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if st.L2Hits == 0 {
		t.Fatal("no L2 hits on a reuse-heavy trace")
	}
	if !(float64(st.DRAMBytes) < 0.9*float64(st.MissBytes)) {
		t.Fatalf("L2 absorbed nothing: DRAM %d vs fill %d", st.DRAMBytes, st.MissBytes)
	}
}

func TestReplayLinearLayoutWorseForPixel(t *testing.T) {
	// The ablation switch: row-major surfaces break the match between
	// the rasterizer's tile walk and the cache lines.
	cfg := replayCfg(raster.PixelOrder(), 4, 8, 16)
	tiled, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LinearLayout = true
	linear, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(linear.ActivationsPerFetch() > tiled.ActivationsPerFetch()) {
		t.Fatalf("linear layout did not scatter DRAM rows: %.2f vs %.2f",
			linear.ActivationsPerFetch(), tiled.ActivationsPerFetch())
	}
}
