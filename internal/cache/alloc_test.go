package cache

import (
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/raster"
)

// Replay's allocations are a fixed, small setup cost — the two cache
// models, the open-row tracker and the precomputed lane-offset table —
// independent of how many fetches the replay streams. The budget pins
// that: a regression that allocates per access or per wavefront blows
// straight through it.
func TestReplayAllocs(t *testing.T) {
	cfg := TraceConfig{
		Spec:          device.Lookup(device.RV770),
		Order:         raster.PixelOrder(),
		W:             256,
		H:             256,
		ElemBytes:     4,
		NumInputs:     8,
		ResidentWaves: 16,
	}
	if _, err := Replay(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Replay(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// 3 Cache structs + 3 tag arrays + waves + offs + small slack.
	if allocs > 12 {
		t.Errorf("Replay allocates %.1f objects/op, want <= 12 (fixed setup only)", allocs)
	}
}
