package cache

import (
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/raster"
)

// Replay's allocations are a fixed, small setup cost — the two cache
// models, the open-row tracker and the precomputed lane-offset table —
// independent of how many fetches the replay streams. The budget pins
// that: a regression that allocates per access or per wavefront blows
// straight through it.
func TestReplayAllocs(t *testing.T) {
	cfg := TraceConfig{
		Spec:          device.Lookup(device.RV770),
		Order:         raster.PixelOrder(),
		W:             256,
		H:             256,
		ElemBytes:     4,
		NumInputs:     8,
		ResidentWaves: 16,
	}
	if _, err := Replay(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Replay(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// 3 Cache structs + 3 tag arrays + waves + offs + small slack.
	if allocs > 12 {
		t.Errorf("Replay allocates %.1f objects/op, want <= 12 (fixed setup only)", allocs)
	}
}

// The replay-cursor fast path — clone a stored prefix snapshot, advance
// it by one input — is what every warm sweep point pays. Its allocations
// are the clone's fixed state copies (cursor struct, three Cache structs,
// three tag arrays); the Advance itself must allocate nothing, however
// many fetches the delta streams.
func TestCursorAdvanceAllocs(t *testing.T) {
	cfg := TraceConfig{
		Spec:          device.Lookup(device.RV770),
		Order:         raster.PixelOrder(),
		W:             256,
		H:             256,
		ElemBytes:     4,
		ResidentWaves: 16,
	}
	cur, err := NewCursor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.Advance(8); err != nil {
		t.Fatal(err)
	}

	n := 8
	allocs := testing.AllocsPerRun(10, func() {
		n++
		clone := cur.Clone()
		if err := clone.Advance(n); err != nil {
			t.Fatal(err)
		}
		if clone.Stats().FetchExecs == 0 {
			t.Fatal("advanced clone recorded no fetches")
		}
	})
	if allocs > 7 {
		t.Errorf("clone+advance allocates %.1f objects/op, want <= 7 (clone state only)", allocs)
	}

	// Advance alone, with no clone, is allocation-free.
	allocs = testing.AllocsPerRun(10, func() {
		n++
		if err := cur.Advance(n); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Advance allocates %.1f objects/op, want 0", allocs)
	}
}
