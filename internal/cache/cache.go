// Package cache implements the per-SIMD texture L1 cache model: a
// set-associative, LRU-replacement cache replayed against fetch address
// traces. The micro-benchmarks' pixel-versus-compute and block-size
// effects (Figs. 7, 8, 16, 17 of the paper) are emergent properties of
// replaying the raster orders' address streams — interleaved across the
// resident wavefronts the way the SIMD's clause switching interleaves them
// — through this model.
package cache

import "fmt"

type line struct {
	tag   uint64
	valid bool
	// lastUse is a logical timestamp for LRU replacement.
	lastUse uint64
}

// Cache is a set-associative LRU cache.
type Cache struct {
	lineBytes int
	ways      int
	sets      int
	lines     []line // sets * ways, set-major
	clock     uint64

	hits, misses uint64
}

// New builds a cache of totalBytes capacity with the given line size and
// associativity. Geometry must tile exactly.
func New(totalBytes, lineBytes, ways int) (*Cache, error) {
	if totalBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %d/%d/%d", totalBytes, lineBytes, ways)
	}
	if totalBytes%(lineBytes*ways) != 0 {
		return nil, fmt.Errorf("cache: %dB does not tile into %dB lines x %d ways", totalBytes, lineBytes, ways)
	}
	sets := totalBytes / (lineBytes * ways)
	return &Cache{
		lineBytes: lineBytes,
		ways:      ways,
		sets:      sets,
		lines:     make([]line, sets*ways),
	}, nil
}

// Access touches one byte address and reports whether it hit. A miss
// installs the line, evicting the set's LRU way.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	lineAddr := addr / uint64(c.lineBytes)
	set := int(lineAddr % uint64(c.sets))
	base := set * c.ways
	victim := base
	for i := base; i < base+c.ways; i++ {
		l := &c.lines[i]
		if l.valid && l.tag == lineAddr {
			l.lastUse = c.clock
			c.hits++
			return true
		}
		if !l.valid {
			victim = i
		} else if c.lines[victim].valid && l.lastUse < c.lines[victim].lastUse {
			victim = i
		}
	}
	c.misses++
	c.lines[victim] = line{tag: lineAddr, valid: true, lastUse: c.clock}
	return false
}

// AccessRange touches every line overlapped by [addr, addr+size) and
// returns how many of those line touches hit and missed. A float4 fetch
// whose 16 bytes straddle a line boundary costs two line lookups, like the
// hardware's dual-line fetch path.
func (c *Cache) AccessRange(addr uint64, size int) (hits, misses int) {
	if size <= 0 {
		return 0, 0
	}
	first := addr / uint64(c.lineBytes)
	last := (addr + uint64(size) - 1) / uint64(c.lineBytes)
	for l := first; l <= last; l++ {
		if c.Access(l * uint64(c.lineBytes)) {
			hits++
		} else {
			misses++
		}
	}
	return hits, misses
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRate returns hits / accesses, or 0 for an untouched cache.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.clock, c.hits, c.misses = 0, 0, 0
}

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }
