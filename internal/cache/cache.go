// Package cache implements the per-SIMD texture L1 cache model: a
// set-associative, LRU-replacement cache replayed against fetch address
// traces. The micro-benchmarks' pixel-versus-compute and block-size
// effects (Figs. 7, 8, 16, 17 of the paper) are emergent properties of
// replaying the raster orders' address streams — interleaved across the
// resident wavefronts the way the SIMD's clause switching interleaves them
// — through this model.
package cache

import (
	"fmt"
	"math/bits"
)

// Cache is a set-associative LRU cache.
type Cache struct {
	lineBytes int
	ways      int
	sets      int
	// tags holds each set's ways as line address + 1 (0 marks an invalid
	// way), stored set-major and kept in MRU-to-LRU order: a hit rotates
	// the touched way to the front, a miss evicts the tail. Because every
	// access gets a unique logical timestamp, this recency ordering is
	// exactly equivalent to timestamp-based LRU — and an 8-way set probe
	// plus its bookkeeping touches a single 64-byte host cache line.
	tags []uint64

	// pow2 geometry fast path: every GPU in the suite has power-of-two
	// line sizes and set counts, turning the per-access divide and modulo
	// into a shift and a mask.
	pow2      bool
	lineShift uint
	setMask   uint64

	hits, misses uint64
}

// New builds a cache of totalBytes capacity with the given line size and
// associativity. Geometry must tile exactly.
func New(totalBytes, lineBytes, ways int) (*Cache, error) {
	if totalBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %d/%d/%d", totalBytes, lineBytes, ways)
	}
	if totalBytes%(lineBytes*ways) != 0 {
		return nil, fmt.Errorf("cache: %dB does not tile into %dB lines x %d ways", totalBytes, lineBytes, ways)
	}
	sets := totalBytes / (lineBytes * ways)
	c := &Cache{
		lineBytes: lineBytes,
		ways:      ways,
		sets:      sets,
		tags:      make([]uint64, sets*ways),
	}
	if isPow2(lineBytes) && isPow2(sets) {
		c.pow2 = true
		c.lineShift = uint(bits.TrailingZeros(uint(lineBytes)))
		c.setMask = uint64(sets - 1)
	}
	return c, nil
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// lineOf returns the line-granular address of a byte address.
func (c *Cache) lineOf(addr uint64) uint64 {
	if c.pow2 {
		return addr >> c.lineShift
	}
	return addr / uint64(c.lineBytes)
}

// Access touches one byte address and reports whether it hit. A miss
// installs the line, evicting the set's LRU way.
func (c *Cache) Access(addr uint64) bool {
	return c.accessLine(c.lineOf(addr))
}

// accessLine touches one line-granular address. The set's ways are kept
// in MRU-to-LRU order, so a hit rotates the touched way to the front and
// a miss evicts the tail — the least recently used way, or an invalid one
// (never touched, hence at the tail) while the set is still filling. Each
// access has a unique logical time, so this is exactly LRU replacement.
func (c *Cache) accessLine(lineAddr uint64) bool {
	var set int
	if c.pow2 {
		set = int(lineAddr & c.setMask)
	} else {
		set = int(lineAddr % uint64(c.sets))
	}
	base := set * c.ways
	tags := c.tags[base : base+c.ways : base+c.ways]
	want := lineAddr + 1
	if tags[0] == want { // re-access of the MRU way: nothing to reorder
		c.hits++
		return true
	}
	for i := 1; i < len(tags); i++ {
		if tags[i] == want {
			c.hits++
			copy(tags[1:i+1], tags[:i])
			tags[0] = want
			return true
		}
	}
	c.misses++
	copy(tags[1:], tags)
	tags[0] = want
	return false
}

// AccessRange touches every line overlapped by [addr, addr+size) and
// returns how many of those line touches hit and missed. A float4 fetch
// whose 16 bytes straddle a line boundary costs two line lookups, like the
// hardware's dual-line fetch path.
func (c *Cache) AccessRange(addr uint64, size int) (hits, misses int) {
	if size <= 0 {
		return 0, 0
	}
	first := c.lineOf(addr)
	last := c.lineOf(addr + uint64(size) - 1)
	for l := first; l <= last; l++ {
		if c.accessLine(l) {
			hits++
		} else {
			misses++
		}
	}
	return hits, misses
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRate returns hits / accesses, or 0 for an untouched cache.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	clear(c.tags)
	c.hits, c.misses = 0, 0
}

// Clone returns an independent copy of the cache: same geometry, same
// resident lines, same counters. Replay cursors snapshot their cache
// state through it — advancing the clone leaves the original untouched,
// which is what lets one stored snapshot serve many sweep points.
func (c *Cache) Clone() *Cache {
	dup := *c
	dup.tags = make([]uint64, len(c.tags))
	copy(dup.tags, c.tags)
	return &dup
}

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }
