package cache

import (
	"amdgpubench/internal/device"
	"amdgpubench/internal/raster"
)

// TraceConfig describes the fetch stream of one resident wavefront set on
// one SIMD engine.
type TraceConfig struct {
	Spec device.Spec
	// Order is the domain walk (pixel tiles or a compute block shape).
	Order raster.Order
	// W, H is the execution domain.
	W, H int
	// ElemBytes is the fetch size per thread (4 for float, 16 for float4).
	ElemBytes int
	// NumInputs is the number of input textures, each its own surface.
	NumInputs int
	// ResidentWaves is the number of wavefronts co-resident on the SIMD;
	// their fetch streams interleave at TEX-clause granularity.
	ResidentWaves int
	// LinearLayout stores surfaces row-major instead of tiled — the
	// ablation showing how much the tiled layout's match with the
	// rasterizer is worth.
	LinearLayout bool
	// FirstWave is the first wavefront index of the resident window. The
	// window is consecutive: while the dispatcher scatters consecutive
	// wavefronts round-robin across SIMD engines, the chip executes a
	// consecutive window of the domain concurrently, and its reuse is
	// captured by the (shared) cache hierarchy. The single replayed cache
	// stands in for that combined L1/L2 behaviour.
	FirstWave int
	// FetchRes, when non-nil, maps each fetch slot to the input surface it
	// reads: slot s fetches surface FetchRes[s], and NumInputs counts
	// SLOTS (len(FetchRes)), not distinct surfaces. Nil keeps the legacy
	// identity schedule (slot s reads surface s). A non-nil schedule also
	// switches the surface bases from the legacy far-apart spacing to a
	// packed arena — surface k at k x Layout.SizeBytes — because the
	// hierarchy-dissection kernels that revisit surfaces measure capacity
	// and set-conflict behaviour, which only exists when surfaces occupy
	// real adjacent addresses the way a packed allocator lays them out.
	FetchRes []int
}

// DRAMRowBytes is the DRAM page granularity used for row-activation
// accounting: fills that land in an already-open row stream at full
// bandwidth, while each newly opened row pays an activation penalty. This
// is what separates the naive 64x1 compute walk (fills scattered across
// eight tiles per wavefront) from the 4x16 block and the pixel-mode tile
// walk (contiguous fills) even when their L1 hit rates agree.
const DRAMRowBytes = 2048

// openRows tracks DRAM open pages as a small fully-associative LRU.
const openRows = 16

// TraceStats summarises one replay.
type TraceStats struct {
	Accesses  int
	Hits      int
	Misses    int
	MissBytes int // L1 miss count x line size: the L1 fill traffic
	// L2Hits and L2Misses split the L1 misses by where they refill from:
	// the shared L2 (cheap) or DRAM (bandwidth plus row activations).
	L2Hits    int
	L2Misses  int
	DRAMBytes int // L2 miss count x line size: actual DRAM read traffic
	// RowActivations counts DRAM page openings in the miss stream; see
	// DRAMRowBytes.
	RowActivations int
	// FetchExecs is the number of (wavefront, fetch-instruction)
	// executions replayed; MissBytes/FetchExecs is the average fill
	// traffic behind one fetch instruction of one wavefront.
	FetchExecs int
}

// HitRate returns the replay's hit fraction.
func (s TraceStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// MissBytesPerFetch returns average fill bytes per fetch execution.
func (s TraceStats) MissBytesPerFetch() float64 {
	if s.FetchExecs == 0 {
		return 0
	}
	return float64(s.MissBytes) / float64(s.FetchExecs)
}

// ActivationsPerFetch returns average DRAM row activations per fetch
// execution — the scatter penalty of the access pattern.
func (s TraceStats) ActivationsPerFetch() float64 {
	if s.FetchExecs == 0 {
		return 0
	}
	return float64(s.RowActivations) / float64(s.FetchExecs)
}

// DRAMBytesPerFetch returns average DRAM read traffic per fetch execution
// (the part of the fill stream the L2 could not absorb).
func (s TraceStats) DRAMBytesPerFetch() float64 {
	if s.FetchExecs == 0 {
		return 0
	}
	return float64(s.DRAMBytes) / float64(s.FetchExecs)
}

// Replay runs the resident set's fetch streams through a fresh L1 model
// with the device's geometry and returns aggregate statistics. The
// interleaving mirrors clause switching: each wavefront issues one TEX
// clause (up to MaxFetchesPerTEXClause fetches), then the SIMD switches to
// the next resident wavefront, round-robin, until all inputs are fetched.
// It is a one-shot Cursor run from a cold cache straight to NumInputs;
// sweeps that revisit the same stream at growing input counts resume a
// snapshotted Cursor instead (the pipeline's prefix-snapshot store).
func Replay(cfg TraceConfig) (TraceStats, error) {
	cur, err := NewCursor(cfg)
	if err != nil {
		return TraceStats{}, err
	}
	if err := cur.Advance(cfg.NumInputs); err != nil {
		return TraceStats{}, err
	}
	return cur.Stats(), nil
}
