package cache

import (
	"amdgpubench/internal/device"
	"amdgpubench/internal/raster"
)

// TraceConfig describes the fetch stream of one resident wavefront set on
// one SIMD engine.
type TraceConfig struct {
	Spec device.Spec
	// Order is the domain walk (pixel tiles or a compute block shape).
	Order raster.Order
	// W, H is the execution domain.
	W, H int
	// ElemBytes is the fetch size per thread (4 for float, 16 for float4).
	ElemBytes int
	// NumInputs is the number of input textures, each its own surface.
	NumInputs int
	// ResidentWaves is the number of wavefronts co-resident on the SIMD;
	// their fetch streams interleave at TEX-clause granularity.
	ResidentWaves int
	// LinearLayout stores surfaces row-major instead of tiled — the
	// ablation showing how much the tiled layout's match with the
	// rasterizer is worth.
	LinearLayout bool
	// FirstWave is the first wavefront index of the resident window. The
	// window is consecutive: while the dispatcher scatters consecutive
	// wavefronts round-robin across SIMD engines, the chip executes a
	// consecutive window of the domain concurrently, and its reuse is
	// captured by the (shared) cache hierarchy. The single replayed cache
	// stands in for that combined L1/L2 behaviour.
	FirstWave int
}

// DRAMRowBytes is the DRAM page granularity used for row-activation
// accounting: fills that land in an already-open row stream at full
// bandwidth, while each newly opened row pays an activation penalty. This
// is what separates the naive 64x1 compute walk (fills scattered across
// eight tiles per wavefront) from the 4x16 block and the pixel-mode tile
// walk (contiguous fills) even when their L1 hit rates agree.
const DRAMRowBytes = 2048

// openRows tracks DRAM open pages as a small fully-associative LRU.
const openRows = 16

// TraceStats summarises one replay.
type TraceStats struct {
	Accesses  int
	Hits      int
	Misses    int
	MissBytes int // L1 miss count x line size: the L1 fill traffic
	// L2Hits and L2Misses split the L1 misses by where they refill from:
	// the shared L2 (cheap) or DRAM (bandwidth plus row activations).
	L2Hits    int
	L2Misses  int
	DRAMBytes int // L2 miss count x line size: actual DRAM read traffic
	// RowActivations counts DRAM page openings in the miss stream; see
	// DRAMRowBytes.
	RowActivations int
	// FetchExecs is the number of (wavefront, fetch-instruction)
	// executions replayed; MissBytes/FetchExecs is the average fill
	// traffic behind one fetch instruction of one wavefront.
	FetchExecs int
}

// HitRate returns the replay's hit fraction.
func (s TraceStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// MissBytesPerFetch returns average fill bytes per fetch execution.
func (s TraceStats) MissBytesPerFetch() float64 {
	if s.FetchExecs == 0 {
		return 0
	}
	return float64(s.MissBytes) / float64(s.FetchExecs)
}

// ActivationsPerFetch returns average DRAM row activations per fetch
// execution — the scatter penalty of the access pattern.
func (s TraceStats) ActivationsPerFetch() float64 {
	if s.FetchExecs == 0 {
		return 0
	}
	return float64(s.RowActivations) / float64(s.FetchExecs)
}

// DRAMBytesPerFetch returns average DRAM read traffic per fetch execution
// (the part of the fill stream the L2 could not absorb).
func (s TraceStats) DRAMBytesPerFetch() float64 {
	if s.FetchExecs == 0 {
		return 0
	}
	return float64(s.DRAMBytes) / float64(s.FetchExecs)
}

// Replay runs the resident set's fetch streams through a fresh L1 model
// with the device's geometry and returns aggregate statistics. The
// interleaving mirrors clause switching: each wavefront issues one TEX
// clause (up to MaxFetchesPerTEXClause fetches), then the SIMD switches to
// the next resident wavefront, round-robin, until all inputs are fetched.
func Replay(cfg TraceConfig) (TraceStats, error) {
	c, err := New(cfg.Spec.L1CacheBytes, cfg.Spec.L1LineBytes, cfg.Spec.L1Ways)
	if err != nil {
		return TraceStats{}, err
	}
	// The shared L2 uses the same line size as the L1 it refills.
	l2, err := New(cfg.Spec.L2CacheBytes, cfg.Spec.L1LineBytes, cfg.Spec.L2Ways)
	if err != nil {
		return TraceStats{}, err
	}
	var st TraceStats

	// Each input is a separate surface; bases are spaced far apart so
	// surfaces never alias by accident. Every surface shares one geometry
	// and differs only in its base address.
	const stride = uint64(1) << 32

	waves := make([]int, cfg.ResidentWaves)
	total := cfg.Order.WavefrontCount(cfg.W, cfg.H)
	for i := range waves {
		waves[i] = (cfg.FirstWave + i) % max(total, 1)
	}

	// Precompute each resident wavefront's 64 lane offsets once per
	// (order, layout): the raster walk and the tiled/linear address
	// arithmetic are identical for every input surface, so the replay's
	// inner loop reduces to base + offset. A negative offset marks a
	// padding thread outside the domain, which fetches nothing.
	geom := raster.Layout{W: cfg.W, H: cfg.H, ElemBytes: cfg.ElemBytes}
	offs := make([]int64, len(waves)*raster.WavefrontSize)
	for wi, wv := range waves {
		for lane := 0; lane < raster.WavefrontSize; lane++ {
			off := int64(-1)
			x, y := cfg.Order.Thread(cfg.W, cfg.H, wv, lane)
			if x < cfg.W && y < cfg.H {
				if cfg.LinearLayout {
					off = int64(geom.LinearAddress(x, y))
				} else {
					off = int64(geom.Address(x, y))
				}
			}
			offs[wi*raster.WavefrontSize+lane] = off
		}
	}

	// Open-row tracker: a tiny fully-associative LRU over DRAM pages.
	rows, err := New(DRAMRowBytes*openRows, DRAMRowBytes, openRows)
	if err != nil {
		return TraceStats{}, err
	}

	// An element fetch touches exactly one line when the L1 geometry is a
	// power of two and every element offset is element-aligned with the
	// element size dividing the line size — true for all the suite's
	// float/float4 surfaces. Proving it once here lets the inner loop call
	// the line-granular probe directly instead of the general
	// AccessRange span walk.
	singleLine := c.pow2 && cfg.ElemBytes > 0 &&
		c.lineBytes%cfg.ElemBytes == 0 && cfg.ElemBytes <= c.lineBytes
	if singleLine {
		for _, off := range offs {
			if off >= 0 && off%int64(cfg.ElemBytes) != 0 {
				singleLine = false
				break
			}
		}
	}

	// Interleave resource-major within each TEX clause group: clause
	// switching keeps the resident wavefronts in near-lockstep, so fetch k
	// of every concurrent wavefront lands close together in time.
	group := cfg.Spec.MaxFetchesPerTEXClause
	for first := 0; first < cfg.NumInputs; first += group {
		last := min(first+group, cfg.NumInputs)
		for res := first; res < last; res++ {
			base := uint64(res) * stride
			for wi := range waves {
				st.FetchExecs++
				lanes := offs[wi*raster.WavefrontSize : (wi+1)*raster.WavefrontSize]
				for _, off := range lanes {
					if off < 0 {
						continue // padding threads fetch nothing
					}
					addr := base + uint64(off)
					var h, m int
					if singleLine {
						if c.accessLine(addr >> c.lineShift) {
							h = 1
						} else {
							m = 1
						}
					} else {
						h, m = c.AccessRange(addr, cfg.ElemBytes)
					}
					st.Hits += h
					st.Misses += m
					st.Accesses += h + m
					if m > 0 {
						// L1 misses refill through the L2; only L2
						// misses reach DRAM and can open rows.
						if l2.Access(addr) {
							st.L2Hits += m
						} else {
							st.L2Misses += m
							if !rows.Access(addr) {
								st.RowActivations++
							}
						}
					}
				}
			}
		}
	}
	st.MissBytes = st.Misses * cfg.Spec.L1LineBytes
	st.DRAMBytes = st.L2Misses * cfg.Spec.L1LineBytes
	return st, nil
}
