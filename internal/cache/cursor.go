package cache

import (
	"fmt"

	"amdgpubench/internal/raster"
)

// Cursor is a resumable replay of one fetch-trace configuration. The
// access stream Replay walks is input-major: every fetch of surface 0 for
// every resident wavefront, then surface 1, and so on (the TEX-clause
// grouping batches consecutive surfaces, which leaves that order
// unchanged). That makes the stream for N inputs a strict prefix of the
// stream for N+1 inputs — the structure dense sweeps exploit: adjacent
// points of an input-count sweep (Fig. 11's 2..18 curve, say) differ
// only in how far the same stream runs.
//
// A Cursor owns the replay's mutable state — the L1/L2/open-row models
// and the running TraceStats — plus the immutable precomputed lane-offset
// table. Advance(n) replays inputs [Inputs(), n); Clone() snapshots the
// state so a stored prefix can serve many successor points without being
// consumed. Advancing a fresh cursor straight to N is bit-identical to
// the one-shot Replay, which is itself implemented on a Cursor.
type Cursor struct {
	cfg  TraceConfig
	l1   *Cache
	l2   *Cache
	rows *Cache

	// offs is the precomputed lane-offset table: one address offset per
	// (resident wavefront, lane), identical for every input surface. It
	// is immutable after construction and shared between clones.
	offs       []int64
	singleLine bool
	// packedBytes is the surface spacing of the packed arena a non-nil
	// FetchRes schedule replays over (surface k at k*packedBytes); zero
	// selects the legacy far-apart bases.
	packedBytes uint64

	next int // inputs fully replayed so far
	st   TraceStats
}

// NewCursor builds a cursor at input 0: caches cold, lane offsets
// precomputed. cfg.NumInputs does not bound the cursor — Advance decides
// how far the stream runs.
func NewCursor(cfg TraceConfig) (*Cursor, error) {
	l1, err := New(cfg.Spec.L1CacheBytes, cfg.Spec.L1LineBytes, cfg.Spec.L1Ways)
	if err != nil {
		return nil, err
	}
	// The shared L2 uses the same line size as the L1 it refills.
	l2, err := New(cfg.Spec.L2CacheBytes, cfg.Spec.L1LineBytes, cfg.Spec.L2Ways)
	if err != nil {
		return nil, err
	}
	// Open-row tracker: a tiny fully-associative LRU over DRAM pages.
	rows, err := New(DRAMRowBytes*openRows, DRAMRowBytes, openRows)
	if err != nil {
		return nil, err
	}

	waves := make([]int, cfg.ResidentWaves)
	total := cfg.Order.WavefrontCount(cfg.W, cfg.H)
	for i := range waves {
		waves[i] = (cfg.FirstWave + i) % max(total, 1)
	}

	// Precompute each resident wavefront's 64 lane offsets once per
	// (order, layout): the raster walk and the tiled/linear address
	// arithmetic are identical for every input surface, so the replay's
	// inner loop reduces to base + offset. A negative offset marks a
	// padding thread outside the domain, which fetches nothing.
	geom := raster.Layout{W: cfg.W, H: cfg.H, ElemBytes: cfg.ElemBytes}
	offs := make([]int64, len(waves)*raster.WavefrontSize)
	for wi, wv := range waves {
		for lane := 0; lane < raster.WavefrontSize; lane++ {
			off := int64(-1)
			x, y := cfg.Order.Thread(cfg.W, cfg.H, wv, lane)
			if x < cfg.W && y < cfg.H {
				if cfg.LinearLayout {
					off = int64(geom.LinearAddress(x, y))
				} else {
					off = int64(geom.Address(x, y))
				}
			}
			offs[wi*raster.WavefrontSize+lane] = off
		}
	}

	// An element fetch touches exactly one line when the L1 geometry is a
	// power of two and every element offset is element-aligned with the
	// element size dividing the line size — true for all the suite's
	// float/float4 surfaces. Proving it once here lets the inner loop call
	// the line-granular probe directly instead of the general
	// AccessRange span walk.
	singleLine := l1.pow2 && cfg.ElemBytes > 0 &&
		l1.lineBytes%cfg.ElemBytes == 0 && cfg.ElemBytes <= l1.lineBytes
	if singleLine {
		for _, off := range offs {
			if off >= 0 && off%int64(cfg.ElemBytes) != 0 {
				singleLine = false
				break
			}
		}
	}

	var packed uint64
	if cfg.FetchRes != nil {
		for s, surf := range cfg.FetchRes {
			if surf < 0 {
				return nil, fmt.Errorf("cache: fetch slot %d reads negative surface %d", s, surf)
			}
		}
		packed = uint64(geom.SizeBytes())
	}

	return &Cursor{
		cfg:         cfg,
		l1:          l1,
		l2:          l2,
		rows:        rows,
		offs:        offs,
		singleLine:  singleLine,
		packedBytes: packed,
	}, nil
}

// Inputs returns how many input surfaces the cursor has fully replayed.
func (cur *Cursor) Inputs() int { return cur.next }

// Clone snapshots the cursor: an independent copy whose Advance leaves
// the original untouched. The immutable lane-offset table is shared, so
// a clone costs three cache-state copies (the snapshot store's unit of
// memory; see the package comment on eviction).
func (cur *Cursor) Clone() *Cursor {
	dup := *cur
	dup.l1 = cur.l1.Clone()
	dup.l2 = cur.l2.Clone()
	dup.rows = cur.rows.Clone()
	return &dup
}

// Advance replays inputs [Inputs(), toInputs) through the cache models,
// accumulating statistics. The cursor only moves forward: rewinding a
// replayed prefix would need state the caches no longer hold.
func (cur *Cursor) Advance(toInputs int) error {
	if toInputs < cur.next {
		return fmt.Errorf("cache: cursor at input %d cannot rewind to %d", cur.next, toInputs)
	}
	// With the legacy identity schedule each input is a separate surface
	// and bases are spaced far apart so surfaces never alias by accident.
	// A FetchRes schedule instead replays a packed arena (see TraceConfig):
	// slot s reads surface FetchRes[s] at base FetchRes[s]*packedBytes.
	// Every surface shares one geometry and differs only in its base.
	const stride = uint64(1) << 32

	st := &cur.st
	waves := cur.cfg.ResidentWaves
	sched := cur.cfg.FetchRes
	if sched != nil && toInputs > len(sched) {
		return fmt.Errorf("cache: cursor advance to %d exceeds %d scheduled fetch slots", toInputs, len(sched))
	}
	for res := cur.next; res < toInputs; res++ {
		var base uint64
		if sched != nil {
			base = uint64(sched[res]) * cur.packedBytes
		} else {
			base = uint64(res) * stride
		}
		for wi := 0; wi < waves; wi++ {
			st.FetchExecs++
			lanes := cur.offs[wi*raster.WavefrontSize : (wi+1)*raster.WavefrontSize]
			for _, off := range lanes {
				if off < 0 {
					continue // padding threads fetch nothing
				}
				addr := base + uint64(off)
				var h, m int
				if cur.singleLine {
					if cur.l1.accessLine(addr >> cur.l1.lineShift) {
						h = 1
					} else {
						m = 1
					}
				} else {
					h, m = cur.l1.AccessRange(addr, cur.cfg.ElemBytes)
				}
				st.Hits += h
				st.Misses += m
				st.Accesses += h + m
				if m > 0 {
					// L1 misses refill through the L2; only L2
					// misses reach DRAM and can open rows.
					if cur.l2.Access(addr) {
						st.L2Hits += m
					} else {
						st.L2Misses += m
						if !cur.rows.Access(addr) {
							st.RowActivations++
						}
					}
				}
			}
		}
	}
	cur.next = toInputs
	return nil
}

// Stats returns the replay statistics accumulated so far, with the
// line-size-derived traffic fields filled in.
func (cur *Cursor) Stats() TraceStats {
	st := cur.st
	st.MissBytes = st.Misses * cur.cfg.Spec.L1LineBytes
	st.DRAMBytes = st.L2Misses * cur.cfg.Spec.L1LineBytes
	return st
}
