package report

import (
	"math"
	"strings"
	"testing"
)

func sampleFigure() *Figure {
	f := &Figure{ID: "fig0", Title: "demo", XLabel: "x", YLabel: "seconds"}
	a := f.AddSeries("4870 float")
	a.Add(1, 10)
	a.Add(2, 10)
	a.Add(3, 15)
	b := f.AddSeries("5870 float")
	b.Add(1, 8)
	b.Add(3, 12)
	return f
}

func TestCSVShape(t *testing.T) {
	csv := sampleFigure().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 { // comment, header, 3 x-values
		t.Fatalf("CSV has %d lines:\n%s", len(lines), csv)
	}
	if lines[1] != "x,4870 float,5870 float" {
		t.Fatalf("header = %q", lines[1])
	}
	if lines[2] != "1,10,8" {
		t.Fatalf("row 1 = %q", lines[2])
	}
	if lines[3] != "2,10," { // series B has no x=2 point
		t.Fatalf("row 2 = %q", lines[3])
	}
}

func TestCSVEscapesCommas(t *testing.T) {
	f := &Figure{ID: "f", XLabel: "x"}
	s := f.AddSeries("a,b")
	s.Add(1, 1)
	if !strings.Contains(f.CSV(), "a;b") {
		t.Error("comma in label not escaped")
	}
}

func TestASCIIPlotContainsGlyphsAndLegend(t *testing.T) {
	p := sampleFigure().ASCIIPlot(40, 10)
	if !strings.Contains(p, "*") || !strings.Contains(p, "+") {
		t.Errorf("plot missing series glyphs:\n%s", p)
	}
	if !strings.Contains(p, "4870 float") || !strings.Contains(p, "5870 float") {
		t.Errorf("plot missing legend:\n%s", p)
	}
	if !strings.Contains(p, "fig0") {
		t.Errorf("plot missing figure id:\n%s", p)
	}
}

func TestASCIIPlotEmpty(t *testing.T) {
	f := &Figure{ID: "e", Title: "empty"}
	if !strings.Contains(f.ASCIIPlot(40, 10), "(no data)") {
		t.Error("empty figure should say so")
	}
}

func TestASCIIPlotClampsTinyDimensions(t *testing.T) {
	p := sampleFigure().ASCIIPlot(1, 1)
	if len(p) == 0 {
		t.Error("tiny plot empty")
	}
}

func TestTableFormat(t *testing.T) {
	tb := &Table{
		Title:  "Table I",
		Header: []string{"GPU", "ALUs", "SIMDs"},
	}
	tb.AddRow("RV670", "320", "4")
	tb.AddRow("RV770", "800", "10")
	out := tb.Format()
	if !strings.Contains(out, "Table I") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "GPU") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[3], "RV670") {
		t.Errorf("row line = %q", lines[3])
	}
	// Columns aligned: "ALUs" column starts at the same offset everywhere.
	if strings.Index(lines[1], "ALUs") != strings.Index(lines[3], "320") {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestCrossover(t *testing.T) {
	var s Series
	for _, p := range []Point{{0.5, 10}, {1, 10}, {1.5, 10.1}, {2, 13}, {3, 20}} {
		s.Points = append(s.Points, p)
	}
	if got := Crossover(s, 0.1); got != 2 {
		t.Fatalf("crossover = %v, want 2", got)
	}
	flat := Series{Points: []Point{{1, 5}, {2, 5}, {3, 5}}}
	if !math.IsNaN(Crossover(flat, 0.1)) {
		t.Fatal("flat series should have no crossover")
	}
	if !math.IsNaN(Crossover(Series{}, 0.1)) {
		t.Fatal("empty series should have no crossover")
	}
}

func TestCrossoverIgnoresDescentToPlateau(t *testing.T) {
	// A series that descends first (latency warmup) then plateaus then
	// rises: crossover measured against the minimum plateau.
	s := Series{Points: []Point{{1, 20}, {2, 10}, {3, 10}, {4, 10.2}, {5, 14}}}
	if got := Crossover(s, 0.1); got != 5 {
		t.Fatalf("crossover = %v, want 5", got)
	}
}

func TestCrossoverZeroAndNegativePlateaus(t *testing.T) {
	// The threshold must be relative to the series' Y range, not a
	// multiple of the plateau value: plateau*(1+tol) is zero on a zero
	// plateau (so float jitter fires immediately) and below the plateau
	// when it is negative (so the first point fires).
	tests := []struct {
		name string
		pts  []Point
		want float64 // NaN means no crossover
	}{
		{
			name: "zero plateau with float jitter",
			pts:  []Point{{1, 0}, {2, 1e-13}, {3, 0}, {4, 10}},
			want: 4,
		},
		{
			name: "all-zero series never crosses",
			pts:  []Point{{1, 0}, {2, 0}, {3, 0}},
			want: math.NaN(),
		},
		{
			name: "negative plateau",
			pts:  []Point{{1, -0.1}, {2, -0.1}, {3, -0.1}, {4, 2}},
			want: 4,
		},
		{
			name: "negative plateau with sub-floor jitter never crosses",
			pts:  []Point{{1, -5}, {2, -5}, {3, -5 + 1e-13}},
			want: math.NaN(),
		},
		{
			name: "positive plateau unchanged",
			pts:  []Point{{1, 10}, {2, 10}, {3, 13}},
			want: 3,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Crossover(Series{Points: tc.pts}, 0.1)
			if math.IsNaN(tc.want) {
				if !math.IsNaN(got) {
					t.Fatalf("crossover = %v, want NaN", got)
				}
				return
			}
			if got != tc.want {
				t.Fatalf("crossover = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCrossoverMultiPlateauPicksFirstKnee(t *testing.T) {
	// Regression: a three-plateau curve (the shape of a latency ladder
	// crossing L1 then L2 then DRAM) whose first step is smaller than
	// tol of the global Y range. The pre-fix implementation measured
	// departures against tol x (max-min) = 99 here, so the 10->12 knee
	// at x=3 was invisible and the reported crossover was the tallest
	// step at x=5. Failed before the plateau-segmentation fix.
	s := Series{Points: []Point{
		{1, 10}, {2, 10}, {3, 12}, {4, 12}, {5, 1000}, {6, 1000},
	}}
	if got := Crossover(s, 0.1); got != 3 {
		t.Fatalf("crossover = %v, want first knee at 3", got)
	}
	if got := Crossovers(s, 0.1); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("crossovers = %v, want [3 5]", got)
	}
}

func TestPlateaus(t *testing.T) {
	s := Series{Points: []Point{
		{1, 10}, {2, 10.2}, {3, 9.8}, // plateau ~10
		{4, 50}, {5, 50.1}, // plateau ~50
		{6, 400}, {7, 400}, {8, 401}, // plateau ~400
	}}
	ps := Plateaus(s, 0.1)
	if len(ps) != 3 {
		t.Fatalf("plateaus = %+v, want 3 segments", ps)
	}
	wantLevels := []float64{10, 50, 400}
	wantStarts := []int{0, 3, 5}
	for i, p := range ps {
		if p.Start != wantStarts[i] {
			t.Errorf("plateau %d starts at %d, want %d", i, p.Start, wantStarts[i])
		}
		if math.Abs(p.Level-wantLevels[i]) > 0.05*wantLevels[i] {
			t.Errorf("plateau %d level = %v, want about %v", i, p.Level, wantLevels[i])
		}
	}
	if ps[0].End != 3 || ps[1].End != 5 || ps[2].End != 8 {
		t.Errorf("plateau bounds wrong: %+v", ps)
	}
}

func TestPlateausIgnoresIsolatedSpike(t *testing.T) {
	// A one-point spike that immediately returns to the band is an
	// outlier of the run it interrupts, not a plateau — and must not
	// register as a crossover.
	s := Series{Points: []Point{
		{1, 10}, {2, 10}, {3, 90}, {4, 10}, {5, 10},
	}}
	if ps := Plateaus(s, 0.1); len(ps) != 1 {
		t.Fatalf("plateaus = %+v, want the spike absorbed into one run", ps)
	}
	if got := Crossover(s, 0.1); !math.IsNaN(got) {
		t.Fatalf("crossover = %v, want NaN for spike-only series", got)
	}
}

func TestPlateausEdgeCases(t *testing.T) {
	if ps := Plateaus(Series{}, 0.1); ps != nil {
		t.Fatalf("empty series plateaus = %+v, want nil", ps)
	}
	one := Series{Points: []Point{{1, 7}}}
	ps := Plateaus(one, 0.1)
	if len(ps) != 1 || ps[0].Start != 0 || ps[0].End != 1 || ps[0].Level != 7 {
		t.Fatalf("single-point plateaus = %+v", ps)
	}
	if got := Crossovers(one, 0.1); got != nil {
		t.Fatalf("single-point crossovers = %v, want none", got)
	}
}

func TestLinearFit(t *testing.T) {
	var s Series
	for x := 1.0; x <= 10; x++ {
		s.Add(x, 3*x+2)
	}
	slope, intercept, r2 := LinearFit(s)
	if math.Abs(slope-3) > 1e-9 || math.Abs(intercept-2) > 1e-9 {
		t.Fatalf("fit = %v x + %v", slope, intercept)
	}
	if r2 < 0.999999 {
		t.Fatalf("r2 = %v for perfect line", r2)
	}
	if _, _, r2 := LinearFit(Series{Points: []Point{{1, 1}}}); r2 != 0 {
		t.Fatal("single-point fit should be degenerate")
	}
}

func TestLinearFitNoisy(t *testing.T) {
	var s Series
	for x := 1.0; x <= 20; x++ {
		noise := 0.0
		if int(x)%2 == 0 {
			noise = 0.5
		}
		s.Add(x, 2*x+noise)
	}
	slope, _, r2 := LinearFit(s)
	if math.Abs(slope-2) > 0.1 {
		t.Fatalf("slope = %v, want about 2", slope)
	}
	if r2 < 0.99 {
		t.Fatalf("r2 = %v, want > 0.99", r2)
	}
}

func TestLinearFitR2StaysInRangeUnderCancellation(t *testing.T) {
	// A flat-but-for-float-noise series at a large offset: computing
	// ssTot as syy - sy²/n cancels catastrophically and can go negative,
	// which used to surface as r² > 1 or NaN. r² must stay in [0,1].
	var s Series
	for x := 1.0; x <= 6; x++ {
		y := 1e8
		if int(x)%2 == 0 {
			y += 1e-8
		}
		s.Add(x, y)
	}
	_, _, r2 := LinearFit(s)
	if math.IsNaN(r2) || r2 < 0 || r2 > 1 {
		t.Fatalf("r2 = %v, want within [0,1]", r2)
	}

	// An exactly constant series: flat is a perfect fit by convention.
	flat := Series{Points: []Point{{1, 7}, {2, 7}, {3, 7}}}
	if _, _, r2 := LinearFit(flat); r2 != 1 {
		t.Fatalf("flat series r2 = %v, want 1", r2)
	}

	// Pure noise around a constant must clamp at 0, not go negative.
	noise := Series{Points: []Point{{1, 1}, {2, -1}, {3, 1}, {4, -1}}}
	if _, _, r2 := LinearFit(noise); r2 < 0 || r2 > 1 {
		t.Fatalf("noise r2 = %v, want within [0,1]", r2)
	}
}

func TestGnuplotScript(t *testing.T) {
	gp := sampleFigure().GnuplotScript("fig0.csv")
	for _, want := range []string{
		`set title "demo"`,
		`set xlabel "x"`,
		"set datafile separator ','",
		`"fig0.csv" using 1:2 with linespoints title "4870 float"`,
		`"fig0.csv" using 1:3 with linespoints title "5870 float"`,
	} {
		if !strings.Contains(gp, want) {
			t.Errorf("gnuplot script missing %q:\n%s", want, gp)
		}
	}
	if strings.Count(gp, "linespoints") != 2 {
		t.Errorf("series count wrong in script:\n%s", gp)
	}
}
