// Package report renders the suite's results the way the paper presents
// them: one figure per experiment with one series per (card, mode, data
// type) combination, plus plain tables. Output formats are CSV (for
// external plotting) and a terminal ASCII plot that shows the shapes the
// paper's figures argue about — plateaus, crossovers and orderings.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one measurement.
type Point struct {
	X, Y float64
}

// Series is one labelled curve.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a measurement.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Figure is one experiment's result set.
type Figure struct {
	ID     string // e.g. "fig7"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// AddSeries appends a series and returns a pointer for incremental use.
func (f *Figure) AddSeries(label string) *Series {
	f.Series = append(f.Series, Series{Label: label})
	return &f.Series[len(f.Series)-1]
}

// CSV renders the figure as x,series1,series2,... rows. Series are aligned
// by X value; missing values are left empty.
func (f *Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", f.ID, f.Title)
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		b.WriteString(",")
		b.WriteString(strings.ReplaceAll(s.Label, ",", ";"))
	}
	b.WriteString("\n")

	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			val, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(&b, ",%.6g", val)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func lookup(s Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// plotGlyphs are assigned to series in order.
var plotGlyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&', '$', '~', '^', '='}

// ASCIIPlot renders the figure as a width x height character plot with a
// legend. It is intentionally gnuplot-flavoured, like the paper's figures.
func (f *Figure) ASCIIPlot(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	empty := true
	for _, s := range f.Series {
		for _, p := range s.Points {
			empty = false
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			maxY = math.Max(maxY, p.Y)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	if empty {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		g := plotGlyphs[si%len(plotGlyphs)]
		for _, p := range s.Points {
			cx := int((p.X - minX) / (maxX - minX) * float64(width-1))
			cy := int((p.Y - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = g
		}
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.2f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.2f ", minY)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("        +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("\n")
	fmt.Fprintf(&b, "        %-10.3g%*s%.3g  (%s)\n", minX, width-10, "", maxX, f.XLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "        %c %s\n", plotGlyphs[si%len(plotGlyphs)], s.Label)
	}
	return b.String()
}

// GnuplotScript renders a gnuplot script that plots the figure from its
// CSV (as written by CSV()) in the visual style of the paper's figures:
// every series as lines+points against the first column.
func (f *Figure) GnuplotScript(dataFile string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# gnuplot script for %s\n", f.ID)
	b.WriteString("set datafile separator ','\n")
	fmt.Fprintf(&b, "set title %q\n", f.Title)
	fmt.Fprintf(&b, "set xlabel %q\n", f.XLabel)
	fmt.Fprintf(&b, "set ylabel %q\n", f.YLabel)
	b.WriteString("set key outside right\n")
	b.WriteString("set grid\n")
	b.WriteString("plot \\\n")
	for i, s := range f.Series {
		sep := ", \\\n"
		if i == len(f.Series)-1 {
			sep = "\n"
		}
		fmt.Fprintf(&b, "  %q using 1:%d with linespoints title %q%s",
			dataFile, i+2, s.Label, sep)
	}
	return b.String()
}

// Table is a plain text table, used for Table I and the SKA-style reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Plateau is one flat run of a stepped curve: a maximal stretch of
// points whose Y values stay within a tolerance band of the run's mean.
// Start and End index the series' points as [Start, End); Level is the
// mean Y of the run's in-band points (an isolated spike that
// immediately returns to the band stays inside the run's index range
// but is excluded from its level).
type Plateau struct {
	Start, End int
	Level      float64
}

// Plateaus segments a stepped curve into flat runs. A point extends the
// current run when its Y lies within tol of the run's mean level,
// measured relative to the level's magnitude with a small absolute
// floor — so a zero-level plateau does not fire on float jitter, and a
// negative level does not invert the band the way plateau*(1+tol)
// would. A departure opens a new run only when it persists: the next
// point is also outside the band on the same side, or the departing
// point is the last. An isolated spike is an outlier of the run it
// interrupts, not a plateau of its own.
func Plateaus(s Series, tol float64) []Plateau {
	n := len(s.Points)
	if n == 0 {
		return nil
	}
	const floor = 1e-12
	var out []Plateau
	cur := Plateau{Start: 0, Level: s.Points[0].Y}
	sum, cnt := s.Points[0].Y, 1.0
	for i := 1; i < n; i++ {
		y := s.Points[i].Y
		band := tol*math.Abs(cur.Level) + floor
		if math.Abs(y-cur.Level) <= band {
			sum += y
			cnt++
			cur.Level = sum / cnt
			continue
		}
		up := y > cur.Level
		persists := i == n-1
		if !persists {
			next := s.Points[i+1].Y
			persists = math.Abs(next-cur.Level) > band && (next > cur.Level) == up
		}
		if !persists {
			continue
		}
		cur.End = i
		out = append(out, cur)
		cur = Plateau{Start: i, Level: y}
		sum, cnt = y, 1
	}
	cur.End = n
	return append(out, cur)
}

// Crossovers returns the X positions of every ascending step of the
// curve: for each plateau whose level is above its predecessor's, the X
// of the plateau's first point.
func Crossovers(s Series, tol float64) []float64 {
	ps := Plateaus(s, tol)
	var xs []float64
	for i := 1; i < len(ps); i++ {
		if ps[i].Level > ps[i-1].Level {
			xs = append(xs, s.Points[ps[i].Start].X)
		}
	}
	return xs
}

// Crossover returns the first X at which the series steps up — the
// "bound switches from fetch to ALU" point the paper reads off its
// ALU:Fetch figures, or the first capacity knee of a latency ladder.
// Returns NaN when the series never steps up.
//
// It is the first element of Crossovers, which segments the curve into
// plateaus before looking for a step. Segmenting first matters on
// curves with three or more plateaus: measuring every departure against
// tol of the series' global Y range — what this function used to do —
// silently skips a genuine early knee smaller than tol x (max-min),
// e.g. the L1-to-L2 step of a latency ladder that later climbs all the
// way to DRAM, and reports the tallest step instead of the first.
func Crossover(s Series, tol float64) float64 {
	if xs := Crossovers(s, tol); len(xs) > 0 {
		return xs[0]
	}
	return math.NaN()
}

// LinearFit returns slope, intercept and R^2 of a least-squares fit —
// used to assert the latency figures' linearity.
func LinearFit(s Series) (slope, intercept, r2 float64) {
	n := float64(len(s.Points))
	if n < 2 {
		return 0, 0, 0
	}
	var sx, sy, sxx, sxy, syy float64
	for _, p := range s.Points {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		sxy += p.X * p.Y
		syy += p.Y * p.Y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	// syy - sy²/n is catastrophically cancellative for large, nearly
	// constant Y (think seconds-scale offsets with nanosecond noise): the
	// subtraction can underflow to a negative total sum of squares, which
	// then flips the sign of the residual ratio and reports r² > 1 — or
	// divides by a denormal and reports NaN. A non-positive ssTot means
	// the series is flat to within float precision; the fit explains
	// everything there is to explain.
	ssTot := syy - sy*sy/n
	if ssTot <= 0 {
		return slope, intercept, 1
	}
	var ssRes float64
	for _, p := range s.Points {
		d := p.Y - (slope*p.X + intercept)
		ssRes += d * d
	}
	r2 = 1 - ssRes/ssTot
	// Rounding in ssRes/ssTot can still nudge the ratio past the
	// mathematical bounds; clamp to the meaningful range.
	if r2 < 0 {
		r2 = 0
	} else if r2 > 1 {
		r2 = 1
	}
	return slope, intercept, r2
}
