package isa

// Edge cases promoted from fuzzing the conformance package's generators
// against Validate/Disassemble/Stats. Each table entry is a program
// shape the random explorer produced (or a neighbour of one) that either
// exercised an error path or once rendered/aggregated inconsistently;
// pinning them here keeps the fixes from regressing without re-running
// the fuzzer.

import (
	"strings"
	"testing"

	"amdgpubench/internal/il"
)

func aluClause(b ...Bundle) Clause {
	return Clause{Kind: ClauseALU, Bundles: b}
}

func TestValidateRejectsEdgeShapes(t *testing.T) {
	cases := []struct {
		name string
		prog Program
		want string // substring of the expected error
	}{
		{
			name: "slot out of range high",
			prog: Program{Clauses: []Clause{aluClause(Bundle{Ops: []ScalarOp{
				{Slot: Slot(5), Op: AMov, Dst: gpr(1, 0), Src0: gpr(0, 0)},
			}})}},
			want: "bad slot",
		},
		{
			name: "slot out of range negative",
			prog: Program{Clauses: []Clause{aluClause(Bundle{Ops: []ScalarOp{
				{Slot: Slot(-1), Op: AMov, Dst: gpr(1, 0), Src0: gpr(0, 0)},
			}})}},
			want: "bad slot",
		},
		{
			name: "transcendental outside slot t",
			prog: Program{Clauses: []Clause{aluClause(Bundle{Ops: []ScalarOp{
				{Slot: SlotX, Op: ARcp, Dst: gpr(1, 0), Src0: gpr(0, 0)},
			}})}},
			want: "outside slot t",
		},
		{
			name: "rsq is transcendental too",
			prog: Program{Clauses: []Clause{aluClause(Bundle{Ops: []ScalarOp{
				{Slot: SlotW, Op: ARsq, Dst: gpr(1, 0), Src0: gpr(0, 0)},
			}})}},
			want: "outside slot t",
		},
		{
			name: "empty bundle inside populated clause",
			prog: Program{Clauses: []Clause{aluClause(
				Bundle{Ops: []ScalarOp{{Slot: SlotX, Op: AMov, Dst: gpr(1, 0), Src0: gpr(0, 0)}}},
				Bundle{},
			)}},
			want: "empty bundle",
		},
		{
			name: "empty TEX clause",
			prog: Program{Clauses: []Clause{{Kind: ClauseTEX}}},
			want: "empty TEX clause",
		},
		{
			name: "empty export clause",
			prog: Program{Clauses: []Clause{{Kind: ClauseEXP}}},
			want: "empty export clause",
		},
		{
			name: "unknown clause kind",
			prog: Program{Clauses: []Clause{{Kind: ClauseKind(9), Exports: []Export{{}}}}},
			want: "unknown kind",
		},
		{
			name: "negative GPR count",
			prog: Program{GPRCount: -1},
			want: "negative GPR count",
		},
		{
			name: "negative channel",
			prog: Program{Clauses: []Clause{aluClause(Bundle{Ops: []ScalarOp{
				{Slot: SlotX, Op: AMov, Dst: gpr(1, -1), Src0: gpr(0, 0)},
			}})}},
			want: "channel",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.prog.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid program")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestStatsEdgeShapes pins the aggregate math on degenerate programs —
// the divide-by-zero guards and the KGPR-only GPR-write accounting.
func TestStatsEdgeShapes(t *testing.T) {
	cases := []struct {
		name string
		prog Program
		want Stats
	}{
		{
			name: "empty program",
			prog: Program{GPRCount: 2},
			want: Stats{GPRs: 2},
		},
		{
			name: "fetch only: SKA ratio stays zero without bundles",
			prog: Program{Clauses: []Clause{
				{Kind: ClauseTEX, Fetches: []Fetch{{Dst: 1}, {Dst: 2}}},
			}},
			want: Stats{TEXClauses: 1, FetchOps: 2, GPRWrites: 2},
		},
		{
			name: "ALU only: no fetches means no ratio",
			prog: Program{Clauses: []Clause{aluClause(Bundle{Ops: []ScalarOp{
				{Slot: SlotX, Op: AAdd, Dst: gpr(1, 0), Src0: gpr(0, 0), Src1: gpr(0, 1)},
				{Slot: SlotY, Op: AAdd, Dst: none(), Src0: gpr(0, 0), Src1: gpr(0, 1)},
			}})}},
			// Two scalar ops in one bundle; only the KGPR destination
			// counts as a register-file write.
			want: Stats{ALUClauses: 1, ALUBundles: 1, ALUPacking: 2, GPRWrites: 1},
		},
		{
			name: "temp destinations are not GPR writes",
			prog: Program{Clauses: []Clause{aluClause(Bundle{Ops: []ScalarOp{
				{Slot: SlotX, Op: AMov, Dst: Operand{Kind: KTemp, Index: 0}, Src0: gpr(0, 0)},
			}})}},
			want: Stats{ALUClauses: 1, ALUBundles: 1, ALUPacking: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.prog.Validate(); err != nil {
				t.Fatalf("fixture invalid: %v", err)
			}
			if got := tc.prog.Stats(); got != tc.want {
				t.Errorf("Stats() = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestDisassembleEdgeOperands renders every operand storage class and
// both fetch/export mnemonics, then checks the output is a fixpoint of
// itself on re-render — the stability property the conformance oracles
// assert on random programs.
func TestDisassembleEdgeOperands(t *testing.T) {
	p := &Program{
		Name: "edges", Mode: il.Compute, Type: il.Float4, GPRCount: 3,
		Clauses: []Clause{
			{Kind: ClauseTEX, Fetches: []Fetch{
				{Dst: 1, Coord: 0, Resource: 0, Global: true, ElemBytes: 16},
			}},
			aluClause(
				Bundle{Ops: []ScalarOp{
					{Slot: SlotX, Op: AAdd, Dst: none(), Src0: gpr(1, 0), Src1: Operand{Kind: KZero}},
					{Slot: SlotT, Op: ARcp, Dst: Operand{Kind: KTemp, Index: 1, Chan: 2}, Src0: Operand{Kind: KConst, Index: 3, Chan: 1}},
				}},
				Bundle{Ops: []ScalarOp{
					{Slot: SlotY, Op: AMul, Dst: gpr(2, 1), Src0: Operand{Kind: KPV, Chan: 0}, Src1: Operand{Kind: KPS}},
				}},
			),
			{Kind: ClauseMEM, Exports: []Export{{Target: 0, Src: 2, Global: true, ElemBytes: 16}}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	out := Disassemble(p)
	for _, want := range []string{
		"VFETCH",     // global fetch mnemonic
		"____",       // PV-only destination
		"0.0f",       // literal zero operand
		"KC0[3].y",   // constant file operand
		"T1.z",       // clause temporary
		"PV.x", "PS", // forwarding network operands
		"MEM_EXPORT_WRITE: RAT(0), R2",
		"END_OF_PROGRAM",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VALID_PIX") {
		t.Error("compute-mode disassembly carries the pixel-shader VALID_PIX tag")
	}
	if again := Disassemble(p); again != out {
		t.Error("Disassemble is not deterministic")
	}
}

// TestDisassembleEmptyProgram: no clauses is legal (Validate accepts it)
// and must render header + terminator, not panic.
func TestDisassembleEmptyProgram(t *testing.T) {
	p := &Program{Name: "void", Mode: il.Pixel, Type: il.Float}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	out := Disassemble(p)
	if !strings.HasPrefix(out, "; -------- Disassembly: void") || !strings.HasSuffix(out, "END_OF_PROGRAM\n") {
		t.Errorf("unexpected empty-program rendering:\n%s", out)
	}
}
