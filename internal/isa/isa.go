// Package isa models the R600/R700-family instruction set architecture
// that AMD's CAL compiler lowers IL into: a control-flow program made of
// clauses. TEX clauses hold texture/vertex fetch instructions, ALU clauses
// hold VLIW bundles of up to five scalar operations (slots x, y, z, w and
// the transcendental slot t), and export clauses write color buffers or
// global memory. Data dependencies inside ALU clauses can be carried by
// the previous-vector (PV) register or by clause-temporary registers
// (T0/T1), neither of which survives a clause boundary — exactly the
// machinery the paper's register-usage micro-benchmark manipulates.
package isa

import (
	"fmt"
	"strings"

	"amdgpubench/internal/il"
)

// Slot identifies one lane of a VLIW bundle.
type Slot int

// VLIW slots in disassembly order.
const (
	SlotX Slot = iota
	SlotY
	SlotZ
	SlotW
	SlotT
)

// NumSlots is the VLIW width of a thread processor (4 general stream
// cores + 1 transcendental).
const NumSlots = 5

// String returns the lower-case slot letter used in disassembly.
func (s Slot) String() string {
	switch s {
	case SlotX:
		return "x"
	case SlotY:
		return "y"
	case SlotZ:
		return "z"
	case SlotW:
		return "w"
	case SlotT:
		return "t"
	}
	return "?"
}

// AOp is a scalar ALU operation.
type AOp int

const (
	// AAdd is floating point addition.
	AAdd AOp = iota
	// ASub is floating point subtraction.
	ASub
	// AMul is floating point multiplication.
	AMul
	// AMov copies its first source.
	AMov
	// ARcp is the transcendental reciprocal; executes only in slot t.
	ARcp
	// ARsq is the transcendental reciprocal square root; slot t only.
	ARsq
)

// String returns the ISA mnemonic.
func (o AOp) String() string {
	switch o {
	case AAdd:
		return "ADD"
	case ASub:
		return "SUB"
	case AMul:
		return "MUL"
	case AMov:
		return "MOV"
	case ARcp:
		return "RCP_e"
	case ARsq:
		return "RSQ_e"
	}
	return "?"
}

// IsTrans reports whether the op may only issue on the transcendental
// (t) stream core.
func (o AOp) IsTrans() bool { return o == ARcp || o == ARsq }

// Unary reports whether the op reads a single source.
func (o AOp) Unary() bool { return o == AMov || o == ARcp || o == ARsq }

// OperandKind classifies ALU operand storage.
type OperandKind int

const (
	// KNone marks an absent operand or a PV-only destination (rendered
	// "____" in disassembly, the underline in the paper's Fig. 2).
	KNone OperandKind = iota
	// KGPR is a general purpose register R<n>.
	KGPR
	// KPV is the previous-bundle vector result.
	KPV
	// KPS is the previous-bundle scalar (t slot) result.
	KPS
	// KTemp is a clause-temporary register T<n>, live only within the
	// containing clause.
	KTemp
	// KZero is the constant zero.
	KZero
	// KConst is a constant-buffer element KC0[n]; constants live in the
	// constant file and occupy no general purpose registers.
	KConst
)

// Operand is one ALU operand: a storage kind, register index and channel.
type Operand struct {
	Kind  OperandKind
	Index int // register number for KGPR/KTemp
	Chan  int // channel 0..3 (x..w)
}

var chanNames = [4]string{"x", "y", "z", "w"}

// String renders the operand in disassembly form, e.g. "R2.w", "PV1.x",
// "T0.y", "____".
func (o Operand) String() string {
	switch o.Kind {
	case KNone:
		return "____"
	case KGPR:
		return fmt.Sprintf("R%d.%s", o.Index, chanNames[o.Chan&3])
	case KPV:
		return fmt.Sprintf("PV.%s", chanNames[o.Chan&3])
	case KPS:
		return "PS"
	case KTemp:
		return fmt.Sprintf("T%d.%s", o.Index, chanNames[o.Chan&3])
	case KZero:
		return "0.0f"
	case KConst:
		return fmt.Sprintf("KC0[%d].%s", o.Index, chanNames[o.Chan&3])
	}
	return "?"
}

// ScalarOp is one slot's operation within a bundle.
type ScalarOp struct {
	Slot Slot
	Op   AOp
	Dst  Operand // KGPR, KTemp, or KNone for PV-only results
	Src0 Operand
	Src1 Operand // KNone for MOV
}

// Bundle is one VLIW instruction: up to five scalar ops co-issued on one
// thread processor in the same cycles.
type Bundle struct {
	Ops []ScalarOp
}

// SlotUsed reports whether a slot is occupied in the bundle.
func (b *Bundle) SlotUsed(s Slot) bool {
	for _, op := range b.Ops {
		if op.Slot == s {
			return true
		}
	}
	return false
}

// FreeSlots returns how many of the five slots remain available.
func (b *Bundle) FreeSlots() int { return NumSlots - len(b.Ops) }

// Fetch is one texture-sample or global-read instruction in a TEX clause.
type Fetch struct {
	Dst       int  // destination GPR
	Coord     int  // GPR holding the (x, y) coordinate / linear id
	Resource  int  // input resource index
	Global    bool // true for uncached global memory reads
	ElemBytes int  // bytes fetched per thread (4 for float, 16 for float4)
}

// Export is one output write in an export clause.
type Export struct {
	Target    int  // color buffer / output buffer index
	Src       int  // source GPR
	Global    bool // true for global memory writes, false for streaming stores
	ElemBytes int  // bytes stored per thread
}

// ClauseKind discriminates clause types.
type ClauseKind int

const (
	// ClauseTEX groups fetch instructions.
	ClauseTEX ClauseKind = iota
	// ClauseALU groups VLIW bundles.
	ClauseALU
	// ClauseEXP groups streaming stores to color buffers.
	ClauseEXP
	// ClauseMEM groups global memory writes.
	ClauseMEM
)

// String returns the disassembly clause tag.
func (k ClauseKind) String() string {
	switch k {
	case ClauseTEX:
		return "TEX"
	case ClauseALU:
		return "ALU"
	case ClauseEXP:
		return "EXP_DONE"
	case ClauseMEM:
		return "MEM_EXPORT"
	}
	return "?"
}

// Clause is one control-flow clause. Exactly one of Fetches, Bundles or
// Exports is populated, according to Kind.
type Clause struct {
	Kind    ClauseKind
	Fetches []Fetch
	Bundles []Bundle
	Exports []Export
}

// Len returns the clause's instruction count in its native unit (fetches,
// bundles, or exports).
func (c *Clause) Len() int {
	switch c.Kind {
	case ClauseTEX:
		return len(c.Fetches)
	case ClauseALU:
		return len(c.Bundles)
	default:
		return len(c.Exports)
	}
}

// Program is a compiled kernel: its clause sequence plus the resource
// footprint the hardware scheduler cares about.
type Program struct {
	Name     string
	Mode     il.ShaderMode
	Type     il.DataType
	Clauses  []Clause
	GPRCount int // peak general-purpose registers per thread
}

// Stats summarises a program the way the StreamKernelAnalyzer would.
type Stats struct {
	GPRs        int
	ALUBundles  int
	FetchOps    int
	ExportOps   int
	ALUClauses  int
	TEXClauses  int
	ALUPacking  float64 // average scalar ops per bundle
	ALUFetchSKA float64 // SKA-convention ratio: bundles / (4 * fetches)
	// GPRWrites counts register-file writes per thread (fetch results
	// plus ALU results whose destination is a general purpose register).
	// The PV and clause-temporary forwarding paths exist to keep this
	// number down; the ablation study measures their contribution here.
	GPRWrites int
}

// Stats computes the summary.
func (p *Program) Stats() Stats {
	var s Stats
	s.GPRs = p.GPRCount
	scalar := 0
	for i := range p.Clauses {
		c := &p.Clauses[i]
		switch c.Kind {
		case ClauseTEX:
			s.TEXClauses++
			s.FetchOps += len(c.Fetches)
			s.GPRWrites += len(c.Fetches)
		case ClauseALU:
			s.ALUClauses++
			s.ALUBundles += len(c.Bundles)
			for _, b := range c.Bundles {
				scalar += len(b.Ops)
				for _, op := range b.Ops {
					if op.Dst.Kind == KGPR {
						s.GPRWrites++
					}
				}
			}
		default:
			s.ExportOps += len(c.Exports)
		}
	}
	if s.ALUBundles > 0 {
		s.ALUPacking = float64(scalar) / float64(s.ALUBundles)
	}
	if s.FetchOps > 0 {
		// The SKA reports 1.0 for a 4:1 ALU-op:fetch balance (Section
		// III-A): 16 ALU ops and 4 TEX ops display as 1.0.
		s.ALUFetchSKA = float64(s.ALUBundles) / (4 * float64(s.FetchOps))
	}
	return s
}

// Validate checks structural invariants: clause payloads match their kind,
// slot occupancy is unique per bundle, at most one transcendental op per
// bundle, and operand channels are in range.
func (p *Program) Validate() error {
	for ci := range p.Clauses {
		c := &p.Clauses[ci]
		switch c.Kind {
		case ClauseTEX:
			if len(c.Bundles) != 0 || len(c.Exports) != 0 {
				return fmt.Errorf("isa: clause %d: TEX clause with non-fetch payload", ci)
			}
			if len(c.Fetches) == 0 {
				return fmt.Errorf("isa: clause %d: empty TEX clause", ci)
			}
		case ClauseALU:
			if len(c.Fetches) != 0 || len(c.Exports) != 0 {
				return fmt.Errorf("isa: clause %d: ALU clause with non-ALU payload", ci)
			}
			if len(c.Bundles) == 0 {
				return fmt.Errorf("isa: clause %d: empty ALU clause", ci)
			}
			for bi, b := range c.Bundles {
				var seen [NumSlots]bool
				for _, op := range b.Ops {
					if op.Slot < 0 || op.Slot >= NumSlots {
						return fmt.Errorf("isa: clause %d bundle %d: bad slot %d", ci, bi, op.Slot)
					}
					if seen[op.Slot] {
						return fmt.Errorf("isa: clause %d bundle %d: slot %s used twice", ci, bi, op.Slot)
					}
					seen[op.Slot] = true
					if op.Op.IsTrans() && op.Slot != SlotT {
						return fmt.Errorf("isa: clause %d bundle %d: transcendental %v outside slot t", ci, bi, op.Op)
					}
					for _, o := range []Operand{op.Dst, op.Src0, op.Src1} {
						if o.Chan < 0 || o.Chan > 3 {
							return fmt.Errorf("isa: clause %d bundle %d: channel %d out of range", ci, bi, o.Chan)
						}
					}
				}
				if len(b.Ops) == 0 {
					return fmt.Errorf("isa: clause %d bundle %d: empty bundle", ci, bi)
				}
			}
		case ClauseEXP, ClauseMEM:
			if len(c.Fetches) != 0 || len(c.Bundles) != 0 {
				return fmt.Errorf("isa: clause %d: export clause with non-export payload", ci)
			}
			if len(c.Exports) == 0 {
				return fmt.Errorf("isa: clause %d: empty export clause", ci)
			}
			for _, e := range c.Exports {
				if (c.Kind == ClauseMEM) != e.Global {
					return fmt.Errorf("isa: clause %d: export global flag disagrees with clause kind", ci)
				}
			}
		default:
			return fmt.Errorf("isa: clause %d: unknown kind %d", ci, c.Kind)
		}
	}
	if p.GPRCount < 0 {
		return fmt.Errorf("isa: negative GPR count")
	}
	return nil
}

// Disassemble renders the program in the layout of the paper's Fig. 2.
func Disassemble(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "; -------- Disassembly: %s (%s, %s) --------\n", p.Name, p.Mode, p.Type)
	addr := 16 // pretend clause bodies start at instruction word 16
	instr := 0
	for ci := range p.Clauses {
		c := &p.Clauses[ci]
		switch c.Kind {
		case ClauseTEX:
			valid := ""
			if p.Mode == il.Pixel {
				valid = " VALID_PIX"
			}
			fmt.Fprintf(&b, "%02d TEX: ADDR(%d) CNT(%d)%s\n", ci, addr, len(c.Fetches), valid)
			for _, f := range c.Fetches {
				mnem := "SAMPLE"
				if f.Global {
					mnem = "VFETCH"
				}
				fmt.Fprintf(&b, "%6d  %s R%d, R%d.xyxx, t%d, s0  UNNORM(XYZW)\n", instr, mnem, f.Dst, f.Coord, f.Resource)
				instr++
			}
			addr += len(c.Fetches) * 2
		case ClauseALU:
			fmt.Fprintf(&b, "%02d ALU: ADDR(%d) CNT(%d)\n", ci, addr, len(c.Bundles))
			for _, bu := range c.Bundles {
				for oi, op := range bu.Ops {
					prefix := "       "
					if oi == 0 {
						prefix = fmt.Sprintf("%6d ", instr)
					}
					if op.Op.Unary() {
						fmt.Fprintf(&b, "%s%s: %-4s %s, %s\n", prefix, op.Slot, op.Op, op.Dst, op.Src0)
					} else {
						fmt.Fprintf(&b, "%s%s: %-4s %s, %s, %s\n", prefix, op.Slot, op.Op, op.Dst, op.Src0, op.Src1)
					}
				}
				instr++
			}
			addr += len(c.Bundles)
		case ClauseEXP:
			for _, e := range c.Exports {
				fmt.Fprintf(&b, "%02d EXP_DONE: PIX%d, R%d\n", ci, e.Target, e.Src)
			}
		case ClauseMEM:
			for _, e := range c.Exports {
				fmt.Fprintf(&b, "%02d MEM_EXPORT_WRITE: RAT(%d), R%d\n", ci, e.Target, e.Src)
			}
		}
	}
	b.WriteString("END_OF_PROGRAM\n")
	return b.String()
}
