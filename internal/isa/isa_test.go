package isa

import (
	"strings"
	"testing"

	"amdgpubench/internal/il"
)

func scalarOp(slot Slot, op AOp, dst, a, b Operand) ScalarOp {
	return ScalarOp{Slot: slot, Op: op, Dst: dst, Src0: a, Src1: b}
}

func gpr(i, c int) Operand  { return Operand{Kind: KGPR, Index: i, Chan: c} }
func pv(c int) Operand      { return Operand{Kind: KPV, Chan: c} }
func temp(i, c int) Operand { return Operand{Kind: KTemp, Index: i, Chan: c} }
func none() Operand         { return Operand{Kind: KNone} }

func sampleProgram() *Program {
	return &Program{
		Name: "fig2", Mode: il.Pixel, Type: il.Float4, GPRCount: 4,
		Clauses: []Clause{
			{Kind: ClauseTEX, Fetches: []Fetch{
				{Dst: 1, Coord: 0, Resource: 0, ElemBytes: 16},
				{Dst: 2, Coord: 0, Resource: 1, ElemBytes: 16},
				{Dst: 3, Coord: 0, Resource: 2, ElemBytes: 16},
			}},
			{Kind: ClauseALU, Bundles: []Bundle{
				{Ops: []ScalarOp{
					scalarOp(SlotX, AAdd, none(), gpr(1, 3), gpr(2, 3)),
					scalarOp(SlotY, AAdd, none(), gpr(1, 2), gpr(2, 2)),
					scalarOp(SlotZ, AAdd, none(), gpr(1, 1), gpr(2, 1)),
					scalarOp(SlotW, AAdd, none(), gpr(1, 0), gpr(2, 0)),
				}},
				{Ops: []ScalarOp{
					scalarOp(SlotX, AAdd, temp(1, 0), gpr(3, 3), pv(0)),
					scalarOp(SlotY, AAdd, temp(1, 1), gpr(3, 2), pv(1)),
				}},
			}},
			{Kind: ClauseEXP, Exports: []Export{{Target: 0, Src: 0, ElemBytes: 16}}},
		},
	}
}

func TestValidateAcceptsSample(t *testing.T) {
	if err := sampleProgram().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMixedPayloads(t *testing.T) {
	p := sampleProgram()
	p.Clauses[0].Bundles = p.Clauses[1].Bundles
	if err := p.Validate(); err == nil {
		t.Fatal("TEX clause with bundles accepted")
	}
}

func TestValidateRejectsDuplicateSlot(t *testing.T) {
	p := sampleProgram()
	ops := p.Clauses[1].Bundles[0].Ops
	ops[1].Slot = ops[0].Slot
	if err := p.Validate(); err == nil {
		t.Fatal("duplicate slot accepted")
	}
}

func TestValidateRejectsEmptyClause(t *testing.T) {
	p := sampleProgram()
	p.Clauses[1].Bundles = nil
	if err := p.Validate(); err == nil {
		t.Fatal("empty ALU clause accepted")
	}
}

func TestValidateRejectsBadChannel(t *testing.T) {
	p := sampleProgram()
	p.Clauses[1].Bundles[0].Ops[0].Src0.Chan = 5
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range channel accepted")
	}
}

func TestValidateRejectsGlobalFlagMismatch(t *testing.T) {
	p := sampleProgram()
	p.Clauses[2].Exports[0].Global = true // EXP clause with a global write
	if err := p.Validate(); err == nil {
		t.Fatal("EXP clause with global export accepted")
	}
}

func TestStats(t *testing.T) {
	p := sampleProgram()
	st := p.Stats()
	if st.FetchOps != 3 || st.TEXClauses != 1 {
		t.Errorf("fetch stats = %d ops / %d clauses, want 3/1", st.FetchOps, st.TEXClauses)
	}
	if st.ALUBundles != 2 || st.ALUClauses != 1 {
		t.Errorf("ALU stats = %d bundles / %d clauses, want 2/1", st.ALUBundles, st.ALUClauses)
	}
	if st.ExportOps != 1 {
		t.Errorf("exports = %d, want 1", st.ExportOps)
	}
	if st.ALUPacking != 3.0 { // (4 + 2) scalar ops over 2 bundles
		t.Errorf("packing = %v, want 3.0", st.ALUPacking)
	}
	if st.GPRs != 4 {
		t.Errorf("GPRs = %d, want 4", st.GPRs)
	}
}

func TestDisassemblyShape(t *testing.T) {
	dis := Disassemble(sampleProgram())
	for _, want := range []string{
		"00 TEX: ADDR(16) CNT(3) VALID_PIX",
		"SAMPLE R1, R0.xyxx, t0, s0  UNNORM(XYZW)",
		"01 ALU:",
		"x: ADD  ____, R1.w, R2.w",
		"y: ADD  ____, R1.z, R2.z",
		"ADD  T1.x, R3.w, PV.x",
		"02 EXP_DONE: PIX0, R0",
		"END_OF_PROGRAM",
	} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestOperandStrings(t *testing.T) {
	cases := []struct {
		o    Operand
		want string
	}{
		{gpr(2, 3), "R2.w"},
		{pv(0), "PV.x"},
		{Operand{Kind: KPS}, "PS"},
		{temp(0, 1), "T0.y"},
		{none(), "____"},
		{Operand{Kind: KZero}, "0.0f"},
	}
	for _, c := range cases {
		if got := c.o.String(); got != c.want {
			t.Errorf("operand = %q, want %q", got, c.want)
		}
	}
}

func TestSlotAndKindStrings(t *testing.T) {
	if SlotX.String() != "x" || SlotT.String() != "t" || Slot(9).String() != "?" {
		t.Error("slot names wrong")
	}
	if ClauseTEX.String() != "TEX" || ClauseALU.String() != "ALU" ||
		ClauseEXP.String() != "EXP_DONE" || ClauseMEM.String() != "MEM_EXPORT" {
		t.Error("clause kind names wrong")
	}
	if AAdd.String() != "ADD" || AMul.String() != "MUL" || AMov.String() != "MOV" {
		t.Error("ALU op names wrong")
	}
}

func TestBundleSlotAccounting(t *testing.T) {
	var b Bundle
	if b.FreeSlots() != NumSlots {
		t.Fatalf("empty bundle has %d free slots", b.FreeSlots())
	}
	b.Ops = append(b.Ops, scalarOp(SlotZ, AMov, none(), gpr(0, 0), none()))
	if !b.SlotUsed(SlotZ) || b.SlotUsed(SlotX) {
		t.Error("slot usage tracking wrong")
	}
	if b.FreeSlots() != NumSlots-1 {
		t.Errorf("free slots = %d, want %d", b.FreeSlots(), NumSlots-1)
	}
}

func TestClauseLen(t *testing.T) {
	p := sampleProgram()
	if p.Clauses[0].Len() != 3 || p.Clauses[1].Len() != 2 || p.Clauses[2].Len() != 1 {
		t.Error("clause lengths wrong")
	}
}

func TestMemExportDisassembly(t *testing.T) {
	p := &Program{
		Name: "gw", Mode: il.Compute, Type: il.Float, GPRCount: 2,
		Clauses: []Clause{
			{Kind: ClauseTEX, Fetches: []Fetch{{Dst: 1, Coord: 0, Resource: 0, Global: true, ElemBytes: 4}}},
			{Kind: ClauseMEM, Exports: []Export{{Target: 0, Src: 1, Global: true, ElemBytes: 4}}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	dis := Disassemble(p)
	if !strings.Contains(dis, "VFETCH") {
		t.Errorf("global read not rendered as VFETCH:\n%s", dis)
	}
	if !strings.Contains(dis, "MEM_EXPORT_WRITE: RAT(0), R1") {
		t.Errorf("global write not rendered as MEM_EXPORT:\n%s", dis)
	}
}
