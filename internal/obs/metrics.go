package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named set of counters, gauges and histograms. Metric
// handles are resolved once (map lookup under a mutex) and then updated
// lock-free with atomics, so hot paths resolve at setup time and pay one
// atomic add per event. A nil *Registry resolves every metric to a nil
// handle, and nil handles no-op — observability off costs a nil check.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry constructs an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (ascending; an implicit +Inf bucket is appended).
// An existing histogram keeps its original bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		b := make([]int64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing value. Nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value; zero on a nil counter.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that goes up and down. Nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge's value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value; zero on a nil gauge.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets — the allocation-free
// latency shape the pipeline's per-stage compute times use. Nil-safe.
type Histogram struct {
	bounds []int64        // ascending upper bounds; counts has one extra +Inf slot
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the bucket that holds it; the +Inf bucket reports its lower
// bound. Zero when empty or nil.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := int64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) { // +Inf bucket: no upper bound to interpolate to
				return lo
			}
			hi := h.bounds[i]
			frac := float64(rank-cum) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// DefaultLatencyBuckets are the fixed bounds (nanoseconds, powers of
// four from 1µs to ~1s) the pipeline's per-stage compute histograms use.
func DefaultLatencyBuckets() []int64 {
	b := make([]int64, 0, 11)
	for v := int64(1000); v <= 1_048_576_000; v *= 4 { // 1µs .. ~1.05s
		b = append(b, v)
	}
	return b
}

// CounterValue is one counter or gauge in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram's summary in a snapshot.
type HistogramValue struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	Sum   int64  `json:"sum"`
	Mean  int64  `json:"mean"`
	P50   int64  `json:"p50"`
	P95   int64  `json:"p95"`
}

// Snapshot is a point-in-time copy of every metric, sorted by name.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []CounterValue   `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot copies every metric's current value. A nil registry snapshots
// empty.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Load()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, CounterValue{Name: name, Value: g.Load()})
	}
	for name, h := range r.histograms {
		hv := HistogramValue{
			Name:  name,
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
		}
		if hv.Count > 0 {
			hv.Mean = hv.Sum / hv.Count
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Get returns the snapshotted counter or gauge value by name (zero when
// absent) — a convenience for tests.
func (s Snapshot) Get(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Format renders the snapshot as the table `amdmb -metrics` prints:
// counters and gauges by name, then histogram summaries with
// nanosecond values shown as durations.
func (s Snapshot) Format() string {
	var b strings.Builder
	b.WriteString("Metrics\n")
	w := 0
	for _, c := range s.Counters {
		if len(c.Name) > w {
			w = len(c.Name)
		}
	}
	for _, g := range s.Gauges {
		if len(g.Name) > w {
			w = len(g.Name)
		}
	}
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%-*s %12d\n", w, c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "%-*s %12d (gauge)\n", w, g.Name, g.Value)
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(&b, "%-*s %12s %12s %12s %12s\n", w, "histogram", "count", "mean", "p50", "p95")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "%-*s %12d %12s %12s %12s\n", w, h.Name, h.Count,
				time.Duration(h.Mean).Round(time.Microsecond),
				time.Duration(h.P50).Round(time.Microsecond),
				time.Duration(h.P95).Round(time.Microsecond))
		}
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON, for -metrics-json and
// tooling that diffs runs.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", " ")
}
