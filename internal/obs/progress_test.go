package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilProgressNoOps(t *testing.T) {
	var p *Progress
	p.Restored(3)
	p.Point(false, 0.5)
	p.Point(true, 0.5)
	p.Finish()
}

func TestProgressRendersCountsFailuresAndHitRate(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "fig7", 4)
	p.renderEvery = 0 // render every update in tests
	p.Point(false, 0.25)
	p.Point(true, 0.50)
	p.Point(false, 0.75)
	p.Point(false, 0.875)
	p.Finish()

	out := buf.String()
	final := out[strings.LastIndex(out, "\r")+1:]
	for _, want := range []string{"fig7", "4/4 points", "(100%)", "1 failed", "cache hit 87.5%"} {
		if !strings.Contains(final, want) {
			t.Errorf("final progress line missing %q: %q", want, final)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("Finish did not terminate the line")
	}
}

func TestProgressETAAppearsOnlyMidSweep(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "sweep", 3)
	p.renderEvery = 0
	p.Point(false, 0)
	mid := buf.String()
	if !strings.Contains(mid, "ETA") {
		t.Errorf("mid-sweep line has no ETA: %q", mid)
	}
	p.Point(false, 0)
	p.Point(false, 0)
	buf.Reset()
	p.Finish()
	if strings.Contains(buf.String(), "ETA") {
		t.Errorf("completed sweep still shows an ETA: %q", buf.String())
	}
}

func TestProgressRestoredCountsAsDone(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "resume", 10)
	p.renderEvery = 0
	p.Restored(9)
	if !strings.Contains(buf.String(), "9/10") {
		t.Errorf("restored points not reported: %q", buf.String())
	}
	// With zero computed points there is no rate to project an ETA from.
	if strings.Contains(buf.String(), "ETA") {
		t.Errorf("restore-only progress invented an ETA: %q", buf.String())
	}
	p.Point(false, 1)
	p.Finish()
	if !strings.Contains(buf.String(), "10/10") {
		t.Errorf("final count wrong: %q", buf.String())
	}
}

func TestProgressConcurrentPoints(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "par", 400)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				p.Point(false, 0.5)
			}
		}()
	}
	wg.Wait()
	p.Finish()
	if !strings.Contains(buf.String(), "400/400") {
		t.Errorf("concurrent updates lost points: %q", buf.String())
	}
}
