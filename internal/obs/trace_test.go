package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilTracerIsFreeAndSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Begin("launch")
	child := sp.Child("compile").Cat("stage").Arg("k", "v")
	child.End()
	sp.End()
	if tr.Len() != 0 {
		t.Fatal("nil tracer recorded spans")
	}
	allocs := testing.AllocsPerRun(100, func() {
		s := tr.Begin("x")
		s.Child("y").End()
		s.End()
	})
	if allocs != 0 {
		t.Errorf("nil tracer allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSpansNestOnOneTrack(t *testing.T) {
	tr := NewTracer()
	sp := tr.Begin("launch").Arg("kernel", "k1")
	c1 := sp.Child("compile")
	c1.End()
	c2 := sp.Child("simulate")
	c2.End()
	sp.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	sortSpansByStart(spans)
	root := spans[0]
	if root.Name != "launch" || root.Args["kernel"] != "k1" {
		t.Fatalf("first span = %+v, want the launch root", root)
	}
	for _, s := range spans[1:] {
		if s.TID != root.TID {
			t.Errorf("child %q on track %d, root on %d", s.Name, s.TID, root.TID)
		}
		if s.StartUS < root.StartUS || s.StartUS+s.DurUS > root.StartUS+root.DurUS+1 {
			t.Errorf("child %q [%f,%f] not inside root [%f,%f]",
				s.Name, s.StartUS, s.StartUS+s.DurUS, root.StartUS, root.StartUS+root.DurUS)
		}
	}
}

func TestConcurrentRootsGetDistinctTracksAndReuseThem(t *testing.T) {
	tr := NewTracer()
	// Two overlapping roots must land on different tracks.
	a := tr.Begin("a")
	b := tr.Begin("b")
	if a.tid == b.tid {
		t.Fatal("concurrent roots share a track")
	}
	a.End()
	b.End()
	// A later root reuses a released track instead of growing the set.
	c := tr.Begin("c")
	if c.tid != a.tid && c.tid != b.tid {
		t.Fatalf("sequential root got fresh track %d, want reuse of %d or %d", c.tid, a.tid, b.tid)
	}
	c.End()
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := tr.Begin("launch")
				sp.Child("stage").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 16*50*2 {
		t.Fatalf("recorded %d spans, want %d", got, 16*50*2)
	}
}

// TestExportEmitsWellFormedTraceEventJSON parses the rendered trace the
// way the CI validation step does: a traceEvents array whose complete
// events all carry name/ph/ts/pid/tid.
func TestExportEmitsWellFormedTraceEventJSON(t *testing.T) {
	tr := NewTracer()
	sp := tr.Begin("launch")
	sp.Child("compile").End()
	sp.End()

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, meta int
	for _, e := range f.TraceEvents {
		switch e["ph"] {
		case "X":
			complete++
			for _, k := range []string{"name", "ts", "pid", "tid"} {
				if _, ok := e[k]; !ok {
					t.Errorf("complete event missing %q: %v", k, e)
				}
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected event phase %v", e["ph"])
		}
	}
	if complete != 2 {
		t.Errorf("trace has %d complete events, want 2", complete)
	}
	if meta == 0 {
		t.Error("trace has no metadata (process/thread name) events")
	}
}

func TestNilTracerWritesEmptyTrace(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
	if len(f.TraceEvents) != 0 {
		t.Fatalf("nil tracer wrote %d events", len(f.TraceEvents))
	}
}
