// Package obs is the suite's zero-dependency observability layer: a span
// tracer whose output is Chrome trace_event JSON (viewable in
// chrome://tracing or Perfetto), a metrics registry of counters, gauges
// and fixed-bucket latency histograms, and a live sweep progress
// reporter. The launch pipeline, the resilient sweep runner and the CLI
// are its clients.
//
// Everything here is built to disappear when unused: a nil *Tracer, a nil
// *Registry, a nil *Counter and a nil *Progress are all valid no-op
// receivers whose methods cost a pointer comparison and allocate nothing,
// so the launch hot path pays ~zero when observability is off (the
// AllocsPerRun regression tests hold either way).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Tracer records spans and renders them as Chrome trace_event JSON.
// Spans on the same track (tid) nest by time containment, which is how
// trace viewers display them: a top-level span leases a track for its
// lifetime and its children inherit it, so concurrent launches land on
// distinct tracks while sequential launches reuse a small, stable set —
// one visual lane per in-flight launch.
type Tracer struct {
	start time.Time

	mu     sync.Mutex
	events []traceEvent
	free   []int // released track ids, reused LIFO
	next   int   // next never-used track id
	maxTID int   // high-water mark, for thread_name metadata
}

// traceEvent is one Chrome trace_event "complete" event (ph "X").
// Timestamps and durations are microseconds, per the format.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// tracePID is the single process id every event reports; the suite is one
// process and the viewer's process grouping is noise here.
const tracePID = 1

// NewTracer starts a tracer; all span timestamps are relative to this
// call.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Enabled reports whether the tracer records anything. Callers use it to
// skip building span names and args when tracing is off:
//
//	if tr.Enabled() {
//		sp = tr.Begin("launch " + name).Arg("card", label)
//	}
func (t *Tracer) Enabled() bool { return t != nil }

// Span is one timed region. The zero Span is a valid no-op: every method
// on it returns immediately, so spans can be threaded through APIs
// unconditionally.
type Span struct {
	tr    *Tracer
	tid   int
	root  bool
	name  string
	cat   string
	start time.Duration
	args  map[string]string
}

// Begin opens a top-level span on a leased track. End releases the
// track. A nil tracer returns the zero (no-op) Span.
func (t *Tracer) Begin(name string) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	var tid int
	if n := len(t.free); n > 0 {
		tid = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		tid = t.next
		t.next++
		if tid > t.maxTID {
			t.maxTID = tid
		}
	}
	t.mu.Unlock()
	return Span{tr: t, tid: tid, root: true, name: name, start: time.Since(t.start)}
}

// Child opens a nested span on the parent's track. It must End before
// the parent does (single goroutine use), which is exactly the shape of
// the pipeline's stages inside a launch.
func (s Span) Child(name string) Span {
	if s.tr == nil {
		return Span{}
	}
	return Span{tr: s.tr, tid: s.tid, name: name, start: time.Since(s.tr.start)}
}

// Cat sets the span's category (the viewer's color/filter key).
func (s Span) Cat(cat string) Span {
	s.cat = cat
	return s
}

// Arg attaches a key=value annotation shown in the viewer's detail pane.
// No-op (and alloc-free) on the zero Span.
func (s Span) Arg(key, value string) Span {
	if s.tr == nil {
		return s
	}
	if s.args == nil {
		s.args = make(map[string]string, 4)
	}
	s.args[key] = value
	return s
}

// End closes the span and records its event; a root span also releases
// its track for reuse.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	end := time.Since(s.tr.start)
	ev := traceEvent{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		TS:   float64(s.start.Nanoseconds()) / 1e3,
		Dur:  float64((end - s.start).Nanoseconds()) / 1e3,
		PID:  tracePID,
		TID:  s.tid,
		Args: s.args,
	}
	t := s.tr
	t.mu.Lock()
	t.events = append(t.events, ev)
	if s.root {
		t.free = append(t.free, s.tid)
	}
	t.mu.Unlock()
}

// Len reports how many spans have been recorded.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// traceFile is the JSON object format of the trace_event spec: the
// events array plus a display hint. Perfetto and chrome://tracing both
// load it directly.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Export renders the recorded spans as trace_event JSON. Metadata
// events name the process and each launch track, so the viewer shows
// "lane N" rows instead of bare ids.
func (t *Tracer) Export(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	t.mu.Lock()
	events := make([]traceEvent, 0, len(t.events)+t.maxTID+2)
	events = append(events, traceEvent{
		Name: "process_name", Ph: "M", PID: tracePID,
		Args: map[string]string{"name": "amdmb"},
	})
	for tid := 0; tid <= t.maxTID && t.next > 0; tid++ {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: tid,
			Args: map[string]string{"name": fmt.Sprintf("lane %d", tid)},
		})
	}
	events = append(events, t.events...)
	t.mu.Unlock()

	data, err := json.MarshalIndent(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// WriteFile writes the trace atomically enough for its purpose: straight
// to the named file, truncating any previous trace.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Snapshot returns the recorded (name, tid) pairs in completion order,
// for tests asserting span structure without parsing JSON.
func (t *Tracer) Snapshot() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanInfo, len(t.events))
	for i, e := range t.events {
		out[i] = SpanInfo{Name: e.Name, TID: e.TID, StartUS: e.TS, DurUS: e.Dur, Args: e.Args}
	}
	return out
}

// SpanInfo is one recorded span, as Snapshot reports it.
type SpanInfo struct {
	Name    string
	TID     int
	StartUS float64
	DurUS   float64
	Args    map[string]string
}

// sortSpansByStart orders spans by start time; tests use it to assert
// nesting.
func sortSpansByStart(spans []SpanInfo) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
}
