package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a live sweep progress reporter: points done over total,
// failure count, the pipeline's cache hit rate and an ETA, rendered as a
// single carriage-return-rewritten line. The sweep runner drives it from
// every worker, so all methods are safe for concurrent use; a nil
// *Progress no-ops, so the runner calls it unconditionally.
type Progress struct {
	w     io.Writer
	label string
	total int

	mu         sync.Mutex
	start      time.Time
	done       int
	failed     int
	restored   int
	hitRate    float64
	lastRender time.Time
	// renderEvery throttles intermediate renders; the final render always
	// lands. Zero disables throttling (tests).
	renderEvery time.Duration
}

// NewProgress starts a reporter for a sweep of total points, writing to
// w. The label names the sweep in the rendered line.
func NewProgress(w io.Writer, label string, total int) *Progress {
	return &Progress{
		w: w, label: label, total: total,
		start:       time.Now(),
		renderEvery: 100 * time.Millisecond,
	}
}

// Restored records n checkpoint-restored points: they count as done but
// are excluded from the ETA's rate estimate (they cost no launch).
func (p *Progress) Restored(n int) {
	if p == nil || n == 0 {
		return
	}
	p.mu.Lock()
	p.done += n
	p.restored += n
	p.render(false)
	p.mu.Unlock()
}

// Point records one completed sweep point and rerenders (throttled).
// hitRate is the pipeline's current artifact-cache hit rate in [0,1].
func (p *Progress) Point(failed bool, hitRate float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	if failed {
		p.failed++
	}
	p.hitRate = hitRate
	p.render(p.done == p.total)
	p.mu.Unlock()
}

// Finish renders the final state and terminates the line.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.render(true)
	fmt.Fprintln(p.w)
	p.mu.Unlock()
}

// render draws the line; callers hold p.mu. Intermediate renders are
// throttled so a thousands-of-points sweep does not spend its time
// repainting a terminal.
func (p *Progress) render(force bool) {
	now := time.Now()
	if !force && p.renderEvery > 0 && now.Sub(p.lastRender) < p.renderEvery {
		return
	}
	p.lastRender = now

	pct := 0.0
	if p.total > 0 {
		pct = 100 * float64(p.done) / float64(p.total)
	}
	fmt.Fprintf(p.w, "\r%s: %d/%d points (%.0f%%)", p.label, p.done, p.total, pct)
	if p.failed > 0 {
		fmt.Fprintf(p.w, ", %d failed", p.failed)
	}
	fmt.Fprintf(p.w, ", cache hit %.1f%%", 100*p.hitRate)
	if eta, ok := p.eta(now); ok {
		fmt.Fprintf(p.w, ", ETA %s", eta)
	}
}

// eta projects the remaining wall time from the measured per-point rate,
// counting only points this run actually computed (restored points are
// free and would skew the rate).
func (p *Progress) eta(now time.Time) (time.Duration, bool) {
	computed := p.done - p.restored
	remaining := p.total - p.done
	if computed <= 0 || remaining <= 0 {
		return 0, false
	}
	perPoint := now.Sub(p.start) / time.Duration(computed)
	return (perPoint * time.Duration(remaining)).Round(100 * time.Millisecond), true
}
