package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryAndHandlesNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", DefaultLatencyBuckets())
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(1)
	h.Observe(100)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metric handles recorded values")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(1)
	})
	if allocs != 0 {
		t.Errorf("nil handles allocate %.1f objects/op, want 0", allocs)
	}
}

func TestCounterAndGaugeResolveOnce(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("pipeline.compile.hits")
	c2 := r.Counter("pipeline.compile.hits")
	if c1 != c2 {
		t.Fatal("same name resolved to different counters")
	}
	c1.Add(2)
	c2.Inc()
	if got := c1.Load(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := r.Gauge("entries")
	g.Set(5)
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{1, 5, 10, 50, 99, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 1+5+10+50+99+500+5000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	p50 := h.Quantile(0.5)
	if p50 < 10 || p50 > 100 {
		t.Errorf("p50 = %d, want within (10,100]", p50)
	}
	// The top (+Inf) bucket reports its lower bound rather than inventing
	// an upper one.
	if q := h.Quantile(1.0); q != 1000 {
		t.Errorf("p100 = %d, want 1000 (the +Inf bucket's floor)", q)
	}
	if q := (&Histogram{}).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %d", q)
	}
}

func TestDefaultLatencyBucketsAscendPowersOfFour(t *testing.T) {
	b := DefaultLatencyBuckets()
	if len(b) == 0 || b[0] != 1000 {
		t.Fatalf("buckets start at %v, want 1000ns", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 4*b[i-1] {
			t.Fatalf("bucket %d = %d, want 4x previous %d", i, b[i], b[i-1])
		}
	}
	if last := time.Duration(b[len(b)-1]); last < time.Second {
		t.Fatalf("top bucket %v under a second", last)
	}
}

func TestSnapshotSortedFormatAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.second").Add(2)
	r.Counter("a.first").Add(1)
	r.Gauge("g.entries").Set(4)
	r.Histogram("h.lat", DefaultLatencyBuckets()).Observe(2000)

	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a.first" || s.Counters[1].Name != "b.second" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if s.Get("a.first") != 1 || s.Get("g.entries") != 4 || s.Get("missing") != 0 {
		t.Fatalf("Get lookups wrong: %+v", s)
	}

	out := s.Format()
	for _, want := range []string{"a.first", "b.second", "g.entries", "h.lat", "histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}

	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Get("b.second") != 2 {
		t.Fatalf("round-tripped snapshot lost values: %+v", back)
	}
}
