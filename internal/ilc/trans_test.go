package ilc

import (
	"math/rand"
	"testing"

	"amdgpubench/internal/il"
	"amdgpubench/internal/interp"
	"amdgpubench/internal/isa"
)

// transChain builds: sample n inputs, fold, then a chain of rcp/rsq ops.
func transChain(inputs, transOps int, dt il.DataType) *il.Kernel {
	k := &il.Kernel{
		Name: "trans", Mode: il.Pixel, Type: dt,
		NumInputs: inputs, NumOutputs: 1,
	}
	r := il.Reg(0)
	for i := 0; i < inputs; i++ {
		k.Code = append(k.Code, il.Instr{Op: il.OpSample, Dst: r, SrcA: il.NoReg, SrcB: il.NoReg, Res: i})
		r++
	}
	acc := il.Reg(0)
	for i := 1; i < inputs; i++ {
		k.Code = append(k.Code, il.Instr{Op: il.OpAdd, Dst: r, SrcA: acc, SrcB: il.Reg(i), Res: -1})
		acc = r
		r++
	}
	for i := 0; i < transOps; i++ {
		op := il.OpRcp
		if i%2 == 1 {
			op = il.OpRsq
		}
		k.Code = append(k.Code, il.Instr{Op: op, Dst: r, SrcA: acc, SrcB: il.NoReg, Res: -1})
		acc = r
		r++
	}
	k.Code = append(k.Code, il.Instr{Op: il.OpExport, Dst: il.NoReg, SrcA: acc, SrcB: il.NoReg, Res: 0})
	return k
}

func TestTransOpsOccupySlotT(t *testing.T) {
	k := transChain(2, 6, il.Float)
	p := mustCompile(t, k, rv770)
	found := 0
	for _, c := range p.Clauses {
		if c.Kind != isa.ClauseALU {
			continue
		}
		for _, b := range c.Bundles {
			for _, op := range b.Ops {
				if op.Op.IsTrans() {
					found++
					if op.Slot != isa.SlotT {
						t.Fatalf("transcendental %v in slot %v", op.Op, op.Slot)
					}
				}
			}
		}
	}
	if found != 6 {
		t.Fatalf("found %d transcendental ops, want 6", found)
	}
}

func TestVectorTransCostsFourBundles(t *testing.T) {
	// A float4 transcendental must spread over four bundles' t slots —
	// the 4:1 throughput penalty of the single transcendental core.
	scalar := transChain(2, 4, il.Float)
	vector := transChain(2, 4, il.Float4)
	ps := mustCompile(t, scalar, rv770)
	pv := mustCompile(t, vector, rv770)
	sb := ps.Stats().ALUBundles
	vb := pv.Stats().ALUBundles
	// 1 fold op + 4 trans: scalar = 5 bundles; vector = 1 + 16 = 17.
	if sb != 5 {
		t.Fatalf("scalar bundles = %d, want 5", sb)
	}
	if vb != 17 {
		t.Fatalf("vector bundles = %d, want 17 (4 bundles per float4 transcendental)", vb)
	}
}

func TestIndependentTransOpsCannotCoIssue(t *testing.T) {
	// Two independent rcp ops compete for the single t slot and must land
	// in different bundles, while two independent adds co-issue.
	k := &il.Kernel{
		Name: "tpack", Mode: il.Pixel, Type: il.Float,
		NumInputs: 2, NumOutputs: 1,
		Code: []il.Instr{
			{Op: il.OpSample, Dst: 0, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0},
			{Op: il.OpSample, Dst: 1, SrcA: il.NoReg, SrcB: il.NoReg, Res: 1},
			{Op: il.OpRcp, Dst: 2, SrcA: 0, SrcB: il.NoReg, Res: -1},
			{Op: il.OpRcp, Dst: 3, SrcA: 1, SrcB: il.NoReg, Res: -1},
			{Op: il.OpAdd, Dst: 4, SrcA: 2, SrcB: 3, Res: -1},
			{Op: il.OpExport, Dst: il.NoReg, SrcA: 4, SrcB: il.NoReg, Res: 0},
		},
	}
	p := mustCompile(t, k, rv770)
	for _, c := range p.Clauses {
		if c.Kind != isa.ClauseALU {
			continue
		}
		for _, b := range c.Bundles {
			trans := 0
			for _, op := range b.Ops {
				if op.Op.IsTrans() {
					trans++
				}
			}
			if trans > 1 {
				t.Fatalf("bundle co-issued %d transcendentals", trans)
			}
		}
	}
}

func TestMixedTransAndBasicCoIssue(t *testing.T) {
	// An rcp and an independent add CAN share a bundle (t + x slots).
	k := &il.Kernel{
		Name: "mix", Mode: il.Pixel, Type: il.Float,
		NumInputs: 2, NumOutputs: 1,
		Code: []il.Instr{
			{Op: il.OpSample, Dst: 0, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0},
			{Op: il.OpSample, Dst: 1, SrcA: il.NoReg, SrcB: il.NoReg, Res: 1},
			{Op: il.OpRcp, Dst: 2, SrcA: 0, SrcB: il.NoReg, Res: -1},
			{Op: il.OpAdd, Dst: 3, SrcA: 0, SrcB: 1, Res: -1},
			{Op: il.OpAdd, Dst: 4, SrcA: 2, SrcB: 3, Res: -1},
			{Op: il.OpExport, Dst: il.NoReg, SrcA: 4, SrcB: il.NoReg, Res: 0},
		},
	}
	p := mustCompile(t, k, rv770)
	if got := p.Stats().ALUBundles; got != 2 {
		t.Fatalf("bundles = %d, want 2 (rcp+add co-issued, then the final add)", got)
	}
}

func TestTransSemantics(t *testing.T) {
	env := interp.Env{W: 4, H: 4, Input: func(res, x, y, l int) float32 {
		return float32(res+2) + float32(x+y) + float32(l)
	}}
	for _, dt := range []il.DataType{il.Float, il.Float4} {
		for _, nTrans := range []int{1, 2, 5} {
			k := transChain(3, nTrans, dt)
			p := mustCompile(t, k, rv770)
			th := interp.Thread{X: 1, Y: 2}
			want, err := interp.RunIL(k, env, th)
			if err != nil {
				t.Fatal(err)
			}
			got, err := interp.RunISA(p, env, th)
			if err != nil {
				t.Fatalf("%s/%d: %v\n%s", dt, nTrans, err, isa.Disassemble(p))
			}
			if !interp.OutputsEqual(want, got, dt.Lanes()) {
				t.Fatalf("%s/%d: IL %v != ISA %v\n%s", dt, nTrans, want, got, isa.Disassemble(p))
			}
		}
	}
}

func TestSubSemantics(t *testing.T) {
	k := &il.Kernel{
		Name: "sub", Mode: il.Pixel, Type: il.Float,
		NumInputs: 2, NumOutputs: 1,
		Code: []il.Instr{
			{Op: il.OpSample, Dst: 0, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0},
			{Op: il.OpSample, Dst: 1, SrcA: il.NoReg, SrcB: il.NoReg, Res: 1},
			{Op: il.OpSub, Dst: 2, SrcA: 0, SrcB: 1, Res: -1},
			{Op: il.OpExport, Dst: il.NoReg, SrcA: 2, SrcB: il.NoReg, Res: 0},
		},
	}
	p := mustCompile(t, k, rv770)
	env := interp.Env{W: 4, H: 4, Input: func(res, x, y, l int) float32 { return float32(res*10 + x) }}
	out, err := interp.RunISA(p, env, interp.Thread{X: 3, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 3-13 {
		t.Fatalf("sub = %v, want -10", out[0][0])
	}
}

// TestCompilePreservesSemanticsWithTrans extends the random-DAG
// equivalence property to the full opcode set.
func TestCompilePreservesSemanticsWithTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// Inputs strictly positive so rcp/rsq stay finite and exact-compare.
	env := interp.Env{W: 8, H: 8, Input: func(res, x, y, l int) float32 {
		return 1 + float32(res)*0.5 + float32(x+y)*0.25 + float32(l)
	}}
	ops := []il.Opcode{il.OpAdd, il.OpSub, il.OpMul, il.OpMov, il.OpRcp, il.OpRsq}
	for trial := 0; trial < 200; trial++ {
		inputs := 1 + rng.Intn(6)
		dt := il.Float
		if rng.Intn(2) == 1 {
			dt = il.Float4
		}
		k := &il.Kernel{Name: "randt", Mode: il.Pixel, Type: dt, NumInputs: inputs, NumOutputs: 1}
		r := 0
		for i := 0; i < inputs; i++ {
			k.Code = append(k.Code, il.Instr{Op: il.OpSample, Dst: il.Reg(r), SrcA: il.NoReg, SrcB: il.NoReg, Res: i})
			r++
		}
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			op := ops[rng.Intn(len(ops))]
			in := il.Instr{Op: op, Dst: il.Reg(r), SrcA: il.Reg(rng.Intn(r)), SrcB: il.NoReg, Res: -1}
			if op.NumSrcs() == 2 {
				in.SrcB = il.Reg(rng.Intn(r))
			}
			k.Code = append(k.Code, in)
			r++
		}
		k.Code = append(k.Code, il.Instr{Op: il.OpExport, Dst: il.NoReg, SrcA: il.Reg(rng.Intn(r)), SrcB: il.NoReg, Res: 0})
		if err := k.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		p, err := Compile(k, rv770)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		th := interp.Thread{X: rng.Intn(8), Y: rng.Intn(8)}
		want, err := interp.RunIL(k, env, th)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := interp.RunISA(p, env, th)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, isa.Disassemble(p))
		}
		if !interp.OutputsEqual(want, got, dt.Lanes()) {
			t.Fatalf("trial %d: IL %v != ISA %v\nkernel:\n%s\nisa:\n%s",
				trial, want, got, il.Assemble(k), isa.Disassemble(p))
		}
	}
}
