package ilc

// Dead-code elimination. Section III of the paper works around exactly
// this behaviour of the CAL compiler: "A kernel has to have an output to
// be valid, otherwise the compiler optimizes the kernel for no output.
// Every input that is declared and sampled has to be used, otherwise the
// compiler optimizes the input out of the code." Optimize reproduces that
// cleanup: ALU operations whose results never reach a store are deleted,
// fetches of unused values are deleted, and input resources that are no
// longer sampled are removed from the kernel's declaration (with resource
// indices renumbered). The micro-benchmark generators construct kernels
// that are entirely live, which the suite's tests assert — it is how the
// paper guarantees its instruction counts survive compilation.

import (
	"fmt"

	"amdgpubench/internal/il"
)

// OptReport describes what Optimize removed.
type OptReport struct {
	RemovedOps    int   // dead ALU and fetch instructions deleted
	RemovedInputs []int // original input resource indices eliminated
	// InputMap maps each surviving input's new resource index to its
	// original index (InputMap[new] == original). A nil map means the
	// identity: no renumbering happened. Differential checks need this to
	// feed the optimized kernel the same data the original read.
	InputMap []int
}

// Changed reports whether the pass modified the kernel.
func (r OptReport) Changed() bool { return r.RemovedOps > 0 || len(r.RemovedInputs) > 0 }

// Optimize returns a dead-code-eliminated copy of the kernel and a report
// of what was removed. The input kernel is not modified. A kernel with no
// stores is rejected, mirroring the hardware compiler's refusal to keep
// output-less kernels.
func Optimize(k *il.Kernel) (*il.Kernel, OptReport, error) {
	var rep OptReport
	hasStore := false
	for _, in := range k.Code {
		if in.Op.IsStore() {
			hasStore = true
			break
		}
	}
	if !hasStore {
		return nil, rep, fmt.Errorf("ilc: kernel %q has no output; the compiler would optimize it away entirely", k.Name)
	}

	// Backward liveness over the SSA temps.
	defOf := make(map[il.Reg]int)
	for i, in := range k.Code {
		if in.Dst != il.NoReg {
			defOf[in.Dst] = i
		}
	}
	liveInstr := make([]bool, len(k.Code))
	var markValue func(r il.Reg)
	markInstr := func(i int) {
		if liveInstr[i] {
			return
		}
		liveInstr[i] = true
		in := k.Code[i]
		for _, s := range []il.Reg{in.SrcA, in.SrcB} {
			if s != il.NoReg {
				markValue(s)
			}
		}
	}
	markValue = func(r il.Reg) {
		if d, ok := defOf[r]; ok && !liveInstr[d] {
			markInstr(d)
		}
	}
	for i, in := range k.Code {
		if in.Op.IsStore() {
			markInstr(i)
		}
	}

	// Fully-live kernel: return an unmodified copy, preserving the
	// original register numbering (the generators rely on this).
	allLive := true
	for _, l := range liveInstr {
		if !l {
			allLive = false
			break
		}
	}
	if allLive {
		out := *k
		out.Code = append([]il.Instr(nil), k.Code...)
		return &out, rep, nil
	}

	// Rebuild the code with dead instructions dropped, temps renumbered
	// densely and surviving input resources renumbered.
	out := &il.Kernel{
		Name: k.Name, Mode: k.Mode, Type: k.Type,
		NumOutputs: k.NumOutputs, NumConsts: k.NumConsts,
		InputSpace: k.InputSpace, OutSpace: k.OutSpace,
	}
	regMap := make(map[il.Reg]il.Reg)
	nextReg := il.Reg(0)
	mapReg := func(r il.Reg) il.Reg {
		if r == il.NoReg {
			return il.NoReg
		}
		if nr, ok := regMap[r]; ok {
			return nr
		}
		nr := nextReg
		regMap[r] = nr
		nextReg++
		return nr
	}
	resMap := make(map[int]int)
	usedInputs := make([]bool, k.NumInputs)
	for i, in := range k.Code {
		if !liveInstr[i] {
			rep.RemovedOps++
			continue
		}
		ni := in
		if in.Op.IsFetch() {
			usedInputs[in.Res] = true
			if nr, ok := resMap[in.Res]; ok {
				ni.Res = nr
			} else {
				nr := len(resMap)
				resMap[in.Res] = nr
				ni.Res = nr
			}
		}
		if in.Dst != il.NoReg {
			ni.Dst = mapReg(in.Dst)
		}
		ni.SrcA = mapReg(in.SrcA)
		ni.SrcB = mapReg(in.SrcB)
		out.Code = append(out.Code, ni)
	}
	out.NumInputs = len(resMap)
	rep.InputMap = make([]int, len(resMap))
	for orig, nr := range resMap {
		rep.InputMap[nr] = orig
	}
	for res, used := range usedInputs {
		if !used && res < k.NumInputs {
			rep.RemovedInputs = append(rep.RemovedInputs, res)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, rep, fmt.Errorf("ilc: internal error: optimized kernel invalid: %w", err)
	}
	return out, rep, nil
}
