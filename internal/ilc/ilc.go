// Package ilc compiles IL kernels to R700-style ISA programs. It performs
// the lowering steps the paper attributes to the CAL compiler and whose
// side effects the micro-benchmarks measure:
//
//   - clause formation: runs of fetches become TEX clauses (at most
//     MaxFetchesPerTEXClause per clause), runs of ALU ops become ALU
//     clauses (at most MaxSlotsPerALUClause bundles), stores become one
//     export clause;
//   - VLIW packing: independent scalar ops co-issue in one bundle's
//     x/y/z/w/t slots; the suite's dependency chains defeat packing by
//     construction, so their ALU instruction count is data-type
//     independent, exactly as Section III observes;
//   - register allocation: values consumed only by the immediately
//     following bundle ride the previous-vector (PV/PS) path; values live
//     only within one ALU clause use the two clause-temporary registers
//     (T0/T1); everything else — fetch destinations, values crossing
//     clause boundaries, store sources — occupies general purpose
//     registers assigned by a linear scan with reuse. The peak GPR count
//     is what determines simultaneous wavefronts per SIMD engine.
package ilc

import (
	"fmt"
	"sort"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/isa"
)

// locKind says where a value lives.
type locKind int

const (
	locUnset locKind = iota
	locGPR
	locPV   // previous-bundle vector result
	locPS   // previous-bundle scalar (t slot) result
	locTemp // clause temporary T0/T1
)

type location struct {
	kind locKind
	idx  int // GPR number or T register number
	chn  int // channel for scalar values (lane 0 for vectors)
	slot isa.Slot
}

// value tracks one SSA temporary through compilation.
type value struct {
	def         int   // defining IL instruction index
	uses        []int // consuming IL instruction indices, ascending
	fromALU     bool
	clause      int // producer clause (last lane's, for vector trans)
	clauseFirst int // first lane's clause; differs when lanes straddle
	bundle      int // producer bundle index within its clause
	runIdx      int // producer bundle index within its ALU run
	loc         location
	needGPR     bool
	tempCand    bool
	vectorTrans bool // float4 transcendental: lanes spread over 4 bundles
}

// packedOp is one IL ALU op (or one lane of a vector transcendental)
// placed in a bundle. lane is -1 except for vector transcendental lanes,
// which occupy the t slot of four consecutive bundles.
type packedOp struct {
	ilIdx int
	lane  int
	slots []isa.Slot // one slot for scalar, four for float4
}

type bundleDraft struct {
	ops  []packedOp
	used [isa.NumSlots]bool
}

func (b *bundleDraft) canHold(vector, trans bool) bool {
	if trans {
		// Transcendentals issue only on the t core; vector
		// transcendentals are placed lane-wise, one t slot per bundle.
		return !b.used[isa.SlotT]
	}
	if vector {
		return !b.used[isa.SlotX] && !b.used[isa.SlotY] && !b.used[isa.SlotZ] && !b.used[isa.SlotW]
	}
	for s := 0; s < isa.NumSlots; s++ {
		if !b.used[s] {
			return true
		}
	}
	return false
}

func (b *bundleDraft) place(ilIdx, lane int, vector, trans bool) packedOp {
	op := packedOp{ilIdx: ilIdx, lane: lane}
	switch {
	case trans:
		b.used[isa.SlotT] = true
		op.slots = []isa.Slot{isa.SlotT}
	case vector:
		op.slots = []isa.Slot{isa.SlotX, isa.SlotY, isa.SlotZ, isa.SlotW}
		for _, s := range op.slots {
			b.used[s] = true
		}
	default:
		for s := isa.Slot(0); s < isa.NumSlots; s++ {
			if !b.used[s] {
				b.used[s] = true
				op.slots = []isa.Slot{s}
				break
			}
		}
	}
	b.ops = append(b.ops, op)
	return op
}

// clauseDraft is a clause being assembled.
type clauseDraft struct {
	kind    isa.ClauseKind
	fetchIL []int
	bundles []bundleDraft
	storeIL []int
}

// Options selects compiler ablations. The zero value is the normal
// compiler; the ablation benchmarks (DESIGN.md §7) switch individual
// forwarding paths off to quantify what each contributes to the paper's
// register-pressure story.
type Options struct {
	// NoPVForwarding disables the previous-vector/previous-scalar path:
	// every single-consumer value falls back to clause temporaries or
	// general purpose registers.
	NoPVForwarding bool
	// NoClauseTemps disables T0/T1: intra-clause values go straight to
	// general purpose registers, raising the peak GPR count and therefore
	// cutting wavefront occupancy.
	NoClauseTemps bool
}

// Compile lowers an IL kernel to an ISA program for the given device.
func Compile(k *il.Kernel, spec device.Spec) (*isa.Program, error) {
	return CompileWith(k, spec, Options{})
}

// CompileWith lowers an IL kernel with explicit compiler options.
func CompileWith(k *il.Kernel, spec device.Spec, opts Options) (*isa.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("ilc: %w", err)
	}
	if k.Mode == il.Compute && !spec.SupportsCompute {
		return nil, fmt.Errorf("ilc: %s does not support compute shader mode", spec.Arch)
	}

	vals := collectValues(k)
	clauses := formClauses(k, spec, vals)
	assignLocations(k, vals, clauses, opts)
	first, last := scheduleTimes(k, clauses)
	gprHigh := allocateGPRs(k, vals, first, last)
	prog := emit(k, vals, clauses, gprHigh)
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("ilc: internal error: emitted invalid program: %w", err)
	}
	return prog, nil
}

// collectValues builds def/use chains for every temporary.
func collectValues(k *il.Kernel) []value {
	vals := make([]value, k.NumTemps())
	for i := range vals {
		vals[i].def = -1
	}
	for i, in := range k.Code {
		if in.Dst != il.NoReg {
			vals[in.Dst].def = i
			vals[in.Dst].fromALU = in.Op.IsALU()
		}
		for _, s := range []il.Reg{in.SrcA, in.SrcB} {
			if s != il.NoReg {
				vals[s].uses = append(vals[s].uses, i)
			}
		}
	}
	return vals
}

// formClauses segments the IL stream into clause drafts, packing ALU runs
// into VLIW bundles along the way, and records each ALU value's producing
// clause/bundle position in vals.
func formClauses(k *il.Kernel, spec device.Spec, vals []value) []clauseDraft {
	var clauses []clauseDraft
	vector := k.Type == il.Float4

	i := 0
	for i < len(k.Code) {
		op := k.Code[i].Op
		switch {
		case op.IsFetch():
			j := i
			for j < len(k.Code) && k.Code[j].Op.IsFetch() {
				j++
			}
			for s := i; s < j; s += spec.MaxFetchesPerTEXClause {
				e := s + spec.MaxFetchesPerTEXClause
				if e > j {
					e = j
				}
				cd := clauseDraft{kind: isa.ClauseTEX}
				for x := s; x < e; x++ {
					cd.fetchIL = append(cd.fetchIL, x)
				}
				clauses = append(clauses, cd)
			}
			i = j
		case op.IsALU():
			j := i
			for j < len(k.Code) && k.Code[j].Op.IsALU() {
				j++
			}
			bundles := packRun(k, vals, i, j, vector)
			// Split the packed run into clauses at the slot limit and
			// record final positions.
			for s := 0; s < len(bundles); s += spec.MaxSlotsPerALUClause {
				e := s + spec.MaxSlotsPerALUClause
				if e > len(bundles) {
					e = len(bundles)
				}
				cd := clauseDraft{kind: isa.ClauseALU, bundles: bundles[s:e]}
				ci := len(clauses)
				for bi, b := range cd.bundles {
					for _, po := range b.ops {
						dst := k.Code[po.ilIdx].Dst
						if po.lane <= 0 {
							vals[dst].clauseFirst = ci
						}
						vals[dst].clause = ci
						vals[dst].bundle = bi
					}
				}
				clauses = append(clauses, cd)
			}
			i = j
		default: // stores
			j := i
			for j < len(k.Code) && k.Code[j].Op.IsStore() {
				j++
			}
			kind := isa.ClauseEXP
			if k.Code[i].Op == il.OpGlobalStore {
				kind = isa.ClauseMEM
			}
			cd := clauseDraft{kind: kind}
			for x := i; x < j; x++ {
				cd.storeIL = append(cd.storeIL, x)
			}
			clauses = append(clauses, cd)
			i = j
		}
	}
	return clauses
}

// packRun performs greedy dependency-aware VLIW packing of the ALU ops in
// k.Code[from:to), returning the bundle sequence. Each value's bundle
// index within the run is stored in vals[].runIdx (the last lane's bundle
// for vector transcendentals, which spread over four bundles' t slots).
func packRun(k *il.Kernel, vals []value, from, to int, vector bool) []bundleDraft {
	var bundles []bundleDraft
	placeAt := func(earliest, ilIdx, lane int, vec, trans bool) int {
		for bi := earliest; bi < len(bundles); bi++ {
			if bundles[bi].canHold(vec, trans) {
				bundles[bi].place(ilIdx, lane, vec, trans)
				return bi
			}
		}
		bundles = append(bundles, bundleDraft{})
		bundles[len(bundles)-1].place(ilIdx, lane, vec, trans)
		return len(bundles) - 1
	}
	for i := from; i < to; i++ {
		in := k.Code[i]
		earliest := 0
		for _, s := range []il.Reg{in.SrcA, in.SrcB} {
			if s == il.NoReg {
				continue
			}
			v := &vals[s]
			if v.fromALU && v.def >= from && v.def < i {
				if v.runIdx+1 > earliest {
					earliest = v.runIdx + 1
				}
			}
		}
		trans := in.Op.IsTrans()
		switch {
		case trans && vector:
			// One lane per bundle on the t core: a float4 transcendental
			// costs four bundles, the 4:1 throughput penalty of the
			// single transcendental stream core.
			bi := earliest
			for lane := 0; lane < 4; lane++ {
				bi = placeAt(bi, i, lane, false, true)
				vals[in.Dst].runIdx = bi
				bi++
			}
			vals[in.Dst].vectorTrans = true
		default:
			bi := placeAt(earliest, i, -1, vector && !trans, trans)
			vals[in.Dst].runIdx = bi
		}
	}
	return bundles
}

// assignLocations decides PV / clause-temp / GPR for every value, honoring
// the hardware rules: PV reaches only the next bundle of the same clause;
// clause temporaries do not survive clause boundaries and only
// spec-many exist; fetch results and store sources must be GPRs.
func assignLocations(k *il.Kernel, vals []value, clauses []clauseDraft, opts Options) {
	// Build lookups from IL index to (clause, bundle, slot) for ALU ops.
	// Vector transcendentals occupy four bundles, so an op has a first
	// and a last placement: it reads its sources at every placement and
	// its result is complete only after the last.
	type pos struct {
		clause, bundle int
		slot           isa.Slot
	}
	posFirst := make(map[int]pos)
	posLast := make(map[int]pos)
	for ci := range clauses {
		for bi, b := range clauses[ci].bundles {
			for _, po := range b.ops {
				p := pos{ci, bi, po.slots[0]}
				if _, ok := posFirst[po.ilIdx]; !ok {
					posFirst[po.ilIdx] = p
				}
				posLast[po.ilIdx] = p
			}
		}
	}

	// First pass: classify.
	for vi := range vals {
		v := &vals[vi]
		if v.def < 0 {
			continue
		}
		if !v.fromALU {
			v.needGPR = true // fetch destinations land in GPRs
			continue
		}
		p := posLast[v.def]
		v.loc.slot = p.slot
		allNextBundle := true
		allSameClause := true
		for _, u := range v.uses {
			uf, ok := posFirst[u]
			if !ok { // consumed by a store (or fetch coordinate)
				allNextBundle = false
				allSameClause = false
				break
			}
			ul := posLast[u]
			if uf.clause != p.clause || ul.clause != p.clause {
				allSameClause = false
			}
			if uf.clause != p.clause || uf.bundle != p.bundle+1 ||
				ul.clause != p.clause || ul.bundle != p.bundle+1 {
				allNextBundle = false
			}
		}
		switch {
		case len(v.uses) == 0:
			// Dead ALU value: no architectural storage; every lane's
			// write is discarded (PV-only destination). This must be
			// decided before the vector-transcendental case, or a dead
			// float4 rcp would pin a clause temporary with a zero-length
			// interval and then clobber it from its later lanes.
			v.loc = location{kind: locPV, chn: int(p.slot), slot: p.slot}
		case v.vectorTrans:
			// A float4 transcendental's lanes land in four bundles' PS
			// slots, so only the last lane would survive in PS; the value
			// must live in a real register. If the lanes straddled an
			// ALU clause split, clause temporaries are also out.
			if allSameClause && v.clauseFirst == v.clause {
				v.tempCand = true
			} else {
				v.needGPR = true
			}
		case allNextBundle && !opts.NoPVForwarding:
			if p.slot == isa.SlotT {
				v.loc = location{kind: locPS, slot: p.slot}
			} else {
				v.loc = location{kind: locPV, chn: int(p.slot), slot: p.slot}
			}
		case allSameClause:
			v.tempCand = true
		default:
			v.needGPR = true
		}
	}

	// Second pass: allocate clause temporaries per ALU clause with a
	// small interval scan; candidates that do not fit fall back to GPRs.
	if opts.NoClauseTemps {
		for vi := range vals {
			if vals[vi].tempCand {
				vals[vi].tempCand = false
				vals[vi].needGPR = true
			}
		}
		return
	}
	const numTemps = 2
	for ci := range clauses {
		if clauses[ci].kind != isa.ClauseALU {
			continue
		}
		freeAt := [numTemps]int{} // bundle index at which each T reg frees
		for bi := range clauses[ci].bundles {
			for _, po := range clauses[ci].bundles[bi].ops {
				dst := k.Code[po.ilIdx].Dst
				v := &vals[dst]
				if !v.tempCand || v.clause != ci {
					continue
				}
				if v.loc.kind == locTemp {
					continue // later lane of an already-placed vector trans
				}
				lastUse := bi
				for _, u := range v.uses {
					if posLast[u].bundle > lastUse {
						lastUse = posLast[u].bundle
					}
				}
				assigned := false
				for t := 0; t < numTemps; t++ {
					if freeAt[t] <= bi {
						freeAt[t] = lastUse
						// The destination write mask is independent of
						// the issue slot, so scalar values always live in
						// the x channel of their register.
						v.loc = location{kind: locTemp, idx: t, chn: 0, slot: v.loc.slot}
						assigned = true
						break
					}
				}
				if !assigned {
					v.needGPR = true
				}
			}
		}
	}
}

// scheduleTimes assigns every IL instruction its execution window in the
// final clause schedule: fetches and exports advance time individually,
// while all ops packed into one VLIW bundle share the bundle's time. GPR
// liveness must be computed over these times, not IL order — the packer
// may co-issue an op far earlier than its position in the IL stream. A
// vector transcendental spans four bundles: it WRITES its destination
// from its first lane's time and READS its sources until its last lane's
// time, so both bounds are returned.
func scheduleTimes(k *il.Kernel, clauses []clauseDraft) (first, last []int) {
	first = make([]int, len(k.Code))
	last = make([]int, len(k.Code))
	for i := range first {
		first[i] = -1
	}
	t := 0
	touch := func(ii int) {
		if first[ii] < 0 {
			first[ii] = t
		}
		last[ii] = t
	}
	for ci := range clauses {
		cd := &clauses[ci]
		switch cd.kind {
		case isa.ClauseTEX:
			for _, ii := range cd.fetchIL {
				touch(ii)
				t++
			}
		case isa.ClauseALU:
			for bi := range cd.bundles {
				for _, po := range cd.bundles[bi].ops {
					touch(po.ilIdx)
				}
				t++
			}
		default:
			for _, ii := range cd.storeIL {
				touch(ii)
				t++
			}
		}
	}
	return first, last
}

// allocateGPRs performs the linear scan over GPR-resident values and
// returns the high-water register count (including the coordinate
// register, which is live from kernel entry through the last fetch, and
// is register R0 as in the paper's Fig. 2). first and last map IL
// instruction indices to the schedule window of their bundle placements:
// a value is written from its definition's FIRST placement and its
// sources are read until the consumer's LAST placement.
func allocateGPRs(k *il.Kernel, vals []value, first, last []int) int {
	lastFetch := -1
	for i, in := range k.Code {
		if in.Op.IsFetch() && last[i] > lastFetch {
			lastFetch = last[i]
		}
	}

	type interval struct {
		vi       int // value index, or -1 for the coordinate register
		def, end int
	}
	var ivs []interval
	ivs = append(ivs, interval{vi: -1, def: -1, end: lastFetch})
	for vi := range vals {
		v := &vals[vi]
		if v.def < 0 || !v.needGPR {
			continue
		}
		def := first[v.def]
		end := def
		for _, u := range v.uses {
			if last[u] > end {
				end = last[u]
			}
		}
		ivs = append(ivs, interval{vi: vi, def: def, end: end})
	}
	// Sort by definition time: the packer may have reordered execution
	// relative to IL order.
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].def < ivs[b].def })
	type active struct {
		reg, end int
	}
	var live []active
	var free []int
	next := 0
	high := 0
	for _, iv := range ivs {
		// Expire intervals that ended at or before this definition; their
		// registers are read before the new value is written.
		for j := 0; j < len(live); {
			if live[j].end <= iv.def && !(live[j].end == -1 && iv.def == -1) {
				free = append(free, live[j].reg)
				live = append(live[:j], live[j+1:]...)
			} else {
				j++
			}
		}
		var reg int
		if len(free) > 0 {
			// Reuse the smallest freed register for stable numbering.
			best := 0
			for j := 1; j < len(free); j++ {
				if free[j] < free[best] {
					best = j
				}
			}
			reg = free[best]
			free = append(free[:best], free[best+1:]...)
		} else {
			reg = next
			next++
		}
		live = append(live, active{reg, iv.end})
		if len(live)+len(free) > high {
			high = len(live) + len(free)
		}
		if iv.vi >= 0 {
			// Scalar values occupy the x channel regardless of issue slot
			// (the destination write mask is slot-independent).
			vals[iv.vi].loc = location{kind: locGPR, idx: reg, chn: 0, slot: vals[iv.vi].loc.slot}
		}
	}
	if next > high {
		high = next
	}
	return high
}

// srcOperand renders the location of a source value as an ISA operand for
// the given lane (0 for scalar kernels, 0..3 for float4).
func srcOperand(v *value, lane int) isa.Operand {
	switch v.loc.kind {
	case locPV:
		c := v.loc.chn
		if lane > 0 {
			c = lane
		}
		return isa.Operand{Kind: isa.KPV, Chan: c}
	case locPS:
		return isa.Operand{Kind: isa.KPS}
	case locTemp:
		c := v.loc.chn
		if lane > 0 {
			c = lane
		}
		return isa.Operand{Kind: isa.KTemp, Index: v.loc.idx, Chan: c}
	case locGPR:
		c := v.loc.chn
		if lane > 0 {
			c = lane
		}
		return isa.Operand{Kind: isa.KGPR, Index: v.loc.idx, Chan: c}
	}
	return isa.Operand{Kind: isa.KZero}
}

// dstOperand renders a destination; PV/PS-resident values write no
// architectural register (the "____" destinations of Fig. 2).
func dstOperand(v *value, lane int) isa.Operand {
	switch v.loc.kind {
	case locTemp:
		c := v.loc.chn
		if lane > 0 {
			c = lane
		}
		return isa.Operand{Kind: isa.KTemp, Index: v.loc.idx, Chan: c}
	case locGPR:
		c := v.loc.chn
		if lane > 0 {
			c = lane
		}
		return isa.Operand{Kind: isa.KGPR, Index: v.loc.idx, Chan: c}
	default:
		return isa.Operand{Kind: isa.KNone}
	}
}

func aop(op il.Opcode) isa.AOp {
	switch op {
	case il.OpAdd, il.OpAddC:
		return isa.AAdd
	case il.OpSub:
		return isa.ASub
	case il.OpMul, il.OpMulC:
		return isa.AMul
	case il.OpRcp:
		return isa.ARcp
	case il.OpRsq:
		return isa.ARsq
	default:
		return isa.AMov
	}
}

// emit produces the final ISA program from the drafts and locations.
func emit(k *il.Kernel, vals []value, clauses []clauseDraft, gprCount int) *isa.Program {
	const coordGPR = 0
	p := &isa.Program{Name: k.Name, Mode: k.Mode, Type: k.Type, GPRCount: gprCount}
	elem := k.Type.Bytes()
	for _, cd := range clauses {
		var c isa.Clause
		c.Kind = cd.kind
		switch cd.kind {
		case isa.ClauseTEX:
			for _, ii := range cd.fetchIL {
				in := k.Code[ii]
				c.Fetches = append(c.Fetches, isa.Fetch{
					Dst:       vals[in.Dst].loc.idx,
					Coord:     coordGPR,
					Resource:  in.Res,
					Global:    in.Op == il.OpGlobalLoad,
					ElemBytes: elem,
				})
			}
		case isa.ClauseALU:
			for _, bd := range cd.bundles {
				var b isa.Bundle
				for _, po := range bd.ops {
					in := k.Code[po.ilIdx]
					dv := &vals[in.Dst]
					if po.lane >= 0 {
						// One lane of a vector transcendental on the t core.
						b.Ops = append(b.Ops, isa.ScalarOp{
							Slot: isa.SlotT,
							Op:   aop(in.Op),
							Dst:  dstOperand(dv, po.lane),
							Src0: srcOperand(&vals[in.SrcA], po.lane),
							Src1: isa.Operand{Kind: isa.KNone},
						})
						continue
					}
					for li, slot := range po.slots {
						sop := isa.ScalarOp{Slot: slot, Op: aop(in.Op)}
						sop.Dst = dstOperand(dv, li)
						if len(po.slots) == 1 {
							sop.Dst = dstOperand(dv, 0)
						}
						sop.Src0 = srcOperand(&vals[in.SrcA], li)
						switch {
						case in.Op.ReadsConst():
							sop.Src1 = isa.Operand{Kind: isa.KConst, Index: in.Res, Chan: li}
						case in.SrcB != il.NoReg:
							sop.Src1 = srcOperand(&vals[in.SrcB], li)
						default:
							sop.Src1 = isa.Operand{Kind: isa.KNone}
						}
						b.Ops = append(b.Ops, sop)
					}
				}
				c.Bundles = append(c.Bundles, b)
			}
		default:
			for _, ii := range cd.storeIL {
				in := k.Code[ii]
				c.Exports = append(c.Exports, isa.Export{
					Target:    in.Res,
					Src:       vals[in.SrcA].loc.idx,
					Global:    in.Op == il.OpGlobalStore,
					ElemBytes: elem,
				})
			}
		}
		p.Clauses = append(p.Clauses, c)
	}
	return p
}
