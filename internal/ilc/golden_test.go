package ilc

import (
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/isa"
	"amdgpubench/internal/kerngen"
)

// TestFig2GoldenDisassembly pins the exact disassembly of the paper's
// Fig. 2 reproduction kernel. Any compiler change that moves clause
// formation, packing, forwarding or register allocation shows up here as
// a diff to review rather than a silent drift.
func TestFig2GoldenDisassembly(t *testing.T) {
	k, err := kerngen.Generic(kerngen.Params{
		Name: "fig2", Mode: il.Pixel, Type: il.Float4,
		Inputs: 3, Outputs: 1, ALUOps: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(k, device.Lookup(device.RV770))
	if err != nil {
		t.Fatal(err)
	}
	const golden = `; -------- Disassembly: fig2 (pixel, float4) --------
00 TEX: ADDR(16) CNT(3) VALID_PIX
     0  SAMPLE R1, R0.xyxx, t0, s0  UNNORM(XYZW)
     1  SAMPLE R2, R0.xyxx, t1, s0  UNNORM(XYZW)
     2  SAMPLE R0, R0.xyxx, t2, s0  UNNORM(XYZW)
01 ALU: ADDR(22) CNT(3)
     3 x: ADD  T0.x, R1.x, R2.x
       y: ADD  T0.y, R1.y, R2.y
       z: ADD  T0.z, R1.z, R2.z
       w: ADD  T0.w, R1.w, R2.w
     4 x: ADD  ____, T0.x, R0.x
       y: ADD  ____, T0.y, R0.y
       z: ADD  ____, T0.z, R0.z
       w: ADD  ____, T0.w, R0.w
     5 x: ADD  R0.x, PV.x, T0.x
       y: ADD  R0.y, PV.y, T0.y
       z: ADD  R0.z, PV.z, T0.z
       w: ADD  R0.w, PV.w, T0.w
02 EXP_DONE: PIX0, R0
END_OF_PROGRAM
`
	if got := isa.Disassemble(p); got != golden {
		t.Errorf("Fig. 2 disassembly drifted:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}
