package ilc

import (
	"math/rand"
	"strings"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/interp"
	"amdgpubench/internal/isa"
)

var rv770 = device.Lookup(device.RV770)

func mustCompile(t *testing.T, k *il.Kernel, spec device.Spec) *isa.Program {
	t.Helper()
	p, err := Compile(k, spec)
	if err != nil {
		t.Fatalf("Compile(%s): %v", k.Name, err)
	}
	return p
}

func TestTEXClauseSplitting(t *testing.T) {
	// 20 samples with an 8-fetch clause limit must become 8+8+4.
	k := chain(20, 0, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	p := mustCompile(t, k, rv770)
	var texSizes []int
	for _, c := range p.Clauses {
		if c.Kind == isa.ClauseTEX {
			texSizes = append(texSizes, len(c.Fetches))
		}
	}
	want := []int{8, 8, 4}
	if len(texSizes) != len(want) {
		t.Fatalf("TEX clause sizes = %v, want %v", texSizes, want)
	}
	for i := range want {
		if texSizes[i] != want[i] {
			t.Fatalf("TEX clause sizes = %v, want %v", texSizes, want)
		}
	}
}

func TestALUClauseSplitting(t *testing.T) {
	// 300 chained ALU ops at a 128-bundle limit: the chain cannot pack,
	// so clause sizes must be 128 + 128 + remainder.
	k := chain(2, 299, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	p := mustCompile(t, k, rv770)
	var aluSizes []int
	for _, c := range p.Clauses {
		if c.Kind == isa.ClauseALU {
			aluSizes = append(aluSizes, len(c.Bundles))
		}
	}
	if len(aluSizes) != 3 || aluSizes[0] != 128 || aluSizes[1] != 128 || aluSizes[2] != 44 {
		t.Fatalf("ALU clause sizes = %v, want [128 128 44]", aluSizes)
	}
}

func TestChainDefeatsPacking(t *testing.T) {
	// Section III: the high data dependency prevents VLIW packing, so the
	// bundle count equals the IL ALU op count for both data types.
	for _, dt := range []il.DataType{il.Float, il.Float4} {
		k := chain(8, 25, il.Pixel, dt, il.TextureSpace, il.TextureSpace, 1)
		p := mustCompile(t, k, rv770)
		st := p.Stats()
		wantALU := k.Counts().ALU
		if st.ALUBundles != wantALU {
			t.Errorf("%s: bundles = %d, want %d (no packing possible)", dt, st.ALUBundles, wantALU)
		}
	}
}

func TestIndependentOpsDoPack(t *testing.T) {
	// Four independent adds over eight inputs must co-issue in one bundle
	// for scalar data (x, y, z, w slots), proving the packer is real.
	k := &il.Kernel{
		Name: "packable", Mode: il.Pixel, Type: il.Float,
		NumInputs: 8, NumOutputs: 1,
	}
	for i := 0; i < 8; i++ {
		k.Code = append(k.Code, il.Instr{Op: il.OpSample, Dst: il.Reg(i), SrcA: il.NoReg, SrcB: il.NoReg, Res: i})
	}
	for i := 0; i < 4; i++ {
		k.Code = append(k.Code, il.Instr{Op: il.OpAdd, Dst: il.Reg(8 + i), SrcA: il.Reg(2 * i), SrcB: il.Reg(2*i + 1), Res: -1})
	}
	k.Code = append(k.Code,
		il.Instr{Op: il.OpAdd, Dst: 12, SrcA: 8, SrcB: 9, Res: -1},
		il.Instr{Op: il.OpAdd, Dst: 13, SrcA: 10, SrcB: 11, Res: -1},
		il.Instr{Op: il.OpAdd, Dst: 14, SrcA: 12, SrcB: 13, Res: -1},
		il.Instr{Op: il.OpExport, Dst: il.NoReg, SrcA: 14, SrcB: il.NoReg, Res: 0},
	)
	p := mustCompile(t, k, rv770)
	st := p.Stats()
	// Level 1: 4 independent adds in one bundle (possibly spilling one to
	// the t slot -> still one bundle). Level 2: 2 adds, one bundle.
	// Level 3: 1 add. Total 3 bundles instead of 7.
	if st.ALUBundles != 3 {
		t.Fatalf("bundles = %d, want 3 (packed); packing=%.2f", st.ALUBundles, st.ALUPacking)
	}
	if st.ALUPacking <= 2.0 {
		t.Errorf("packing density = %.2f, want > 2", st.ALUPacking)
	}
}

func TestFloat4OpsOccupyFourSlots(t *testing.T) {
	k := chain(2, 3, il.Pixel, il.Float4, il.TextureSpace, il.TextureSpace, 1)
	p := mustCompile(t, k, rv770)
	for _, c := range p.Clauses {
		if c.Kind != isa.ClauseALU {
			continue
		}
		for _, b := range c.Bundles {
			if len(b.Ops) != 4 {
				t.Fatalf("float4 bundle has %d scalar ops, want 4", len(b.Ops))
			}
		}
	}
}

func TestDisassemblyUsesPVAndTemps(t *testing.T) {
	// The fold chain forwards through PV; the long dependency chain needs
	// the T0/T1 clause temporaries — both visible in Fig. 2 of the paper.
	k := chain(8, 24, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	p := mustCompile(t, k, rv770)
	dis := isa.Disassemble(p)
	if !strings.Contains(dis, "PV.") {
		t.Errorf("disassembly has no PV references:\n%s", dis)
	}
	if !strings.Contains(dis, "T0.") || !strings.Contains(dis, "T1.") {
		t.Errorf("disassembly has no clause temporaries:\n%s", dis)
	}
	if !strings.Contains(dis, "____") {
		t.Errorf("disassembly has no PV-only destinations:\n%s", dis)
	}
}

func TestGPRCountTracksUpFrontInputs(t *testing.T) {
	// All sampling up front: GPR count ~ inputs + 1 (chain crossing of
	// clause boundaries), matching the register-usage micro-benchmark's
	// baseline. Growth must be monotone in inputs.
	prev := 0
	for _, inputs := range []int{4, 8, 16, 32, 64} {
		k := chain(inputs, 16, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
		p := mustCompile(t, k, rv770)
		g := p.Stats().GPRs
		if g < inputs || g > inputs+3 {
			t.Errorf("inputs=%d: GPRs = %d, want within [%d,%d]", inputs, g, inputs, inputs+3)
		}
		if g < prev {
			t.Errorf("GPR count decreased: %d after %d", g, prev)
		}
		prev = g
	}
}

func TestSKARatioConvention(t *testing.T) {
	// Section III-A: 16 ALU ops and 4 TEX ops report as 1.0.
	k := chain(4, 16-3, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	p := mustCompile(t, k, rv770)
	st := p.Stats()
	if st.FetchOps != 4 || st.ALUBundles != 16 {
		t.Fatalf("mix = %d ALU / %d TEX, want 16/4", st.ALUBundles, st.FetchOps)
	}
	if st.ALUFetchSKA != 1.0 {
		t.Fatalf("SKA ratio = %v, want 1.0", st.ALUFetchSKA)
	}
}

func TestGlobalKernelClauses(t *testing.T) {
	k := chain(4, 8, il.Pixel, il.Float, il.GlobalSpace, il.GlobalSpace, 2)
	p := mustCompile(t, k, rv770)
	sawVFetch, sawMem := false, false
	for _, c := range p.Clauses {
		if c.Kind == isa.ClauseTEX {
			for _, f := range c.Fetches {
				if f.Global {
					sawVFetch = true
				}
			}
		}
		if c.Kind == isa.ClauseMEM {
			sawMem = true
			if len(c.Exports) != 2 {
				t.Errorf("MEM clause has %d exports, want 2", len(c.Exports))
			}
		}
	}
	if !sawVFetch || !sawMem {
		t.Errorf("global kernel missing VFETCH (%v) or MEM export (%v)", sawVFetch, sawMem)
	}
}

func TestMultipleOutputsRaiseGPRs(t *testing.T) {
	// Outputs hold GPRs until the export clause; with few inputs the
	// output count dominates register usage (Section III-C relies on the
	// converse: pinning register usage to the input count).
	k1 := chain(8, 10, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	p1 := mustCompile(t, k1, rv770)
	k8 := multiOutChain(t, 8, 10, 6)
	p8 := mustCompile(t, k8, rv770)
	if p8.GPRCount <= p1.GPRCount-1 {
		t.Errorf("6-output kernel GPRs (%d) not above 1-output kernel (%d)", p8.GPRCount, p1.GPRCount)
	}
}

// multiOutChain builds a kernel exporting distinct chain values to each
// output, so every output stages its own GPR.
func multiOutChain(t *testing.T, inputs, extra, outs int) *il.Kernel {
	t.Helper()
	k := chain(inputs, extra, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, outs)
	// Rewire the stores emitted by chain() to distinct values.
	n := len(k.Code)
	firstStore := n - outs
	for o := 0; o < outs; o++ {
		src := k.Code[firstStore-1].Dst - il.Reg(o)
		if src < 0 {
			src = 0
		}
		k.Code[firstStore+o].SrcA = src
	}
	if err := k.Validate(); err != nil {
		t.Fatalf("multiOutChain invalid: %v", err)
	}
	return k
}

// --- semantic equivalence property tests -------------------------------

func randomKernel(rng *rand.Rand) *il.Kernel {
	inputs := 1 + rng.Intn(10)
	outs := 1 + rng.Intn(3)
	dt := il.Float
	if rng.Intn(2) == 1 {
		dt = il.Float4
	}
	mode := il.Pixel
	outSp := il.TextureSpace
	if rng.Intn(2) == 1 {
		mode = il.Compute
		outSp = il.GlobalSpace
	}
	inSp := il.TextureSpace
	if rng.Intn(3) == 0 {
		inSp = il.GlobalSpace
	}
	k := &il.Kernel{
		Name: "rand", Mode: mode, Type: dt,
		NumInputs: inputs, NumOutputs: outs,
		InputSpace: inSp, OutSpace: outSp,
	}
	fetchOp := il.OpSample
	if inSp == il.GlobalSpace {
		fetchOp = il.OpGlobalLoad
	}
	r := 0
	for i := 0; i < inputs; i++ {
		k.Code = append(k.Code, il.Instr{Op: fetchOp, Dst: il.Reg(r), SrcA: il.NoReg, SrcB: il.NoReg, Res: i})
		r++
	}
	nops := 1 + rng.Intn(60)
	for i := 0; i < nops; i++ {
		var in il.Instr
		switch rng.Intn(3) {
		case 0:
			in = il.Instr{Op: il.OpAdd, Dst: il.Reg(r), SrcA: il.Reg(rng.Intn(r)), SrcB: il.Reg(rng.Intn(r)), Res: -1}
		case 1:
			in = il.Instr{Op: il.OpMul, Dst: il.Reg(r), SrcA: il.Reg(rng.Intn(r)), SrcB: il.Reg(rng.Intn(r)), Res: -1}
		default:
			in = il.Instr{Op: il.OpMov, Dst: il.Reg(r), SrcA: il.Reg(rng.Intn(r)), SrcB: il.NoReg, Res: -1}
		}
		k.Code = append(k.Code, in)
		r++
	}
	storeOp := il.OpExport
	if outSp == il.GlobalSpace {
		storeOp = il.OpGlobalStore
	}
	for o := 0; o < outs; o++ {
		k.Code = append(k.Code, il.Instr{Op: storeOp, Dst: il.NoReg, SrcA: il.Reg(rng.Intn(r)), SrcB: il.NoReg, Res: o})
	}
	return k
}

func TestCompilePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	env := interp.Env{W: 16, H: 16, Input: func(res, x, y, l int) float32 {
		return float32(res+1)*0.5 + float32(x)*0.25 + float32(y)*2 + float32(l)*0.125
	}}
	for trial := 0; trial < 300; trial++ {
		k := randomKernel(rng)
		if err := k.Validate(); err != nil {
			t.Fatalf("trial %d: generator bug: %v", trial, err)
		}
		p, err := Compile(k, rv770)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, th := range []interp.Thread{{X: 0, Y: 0}, {X: 3, Y: 5}, {X: 15, Y: 15}} {
			want, err := interp.RunIL(k, env, th)
			if err != nil {
				t.Fatalf("trial %d: IL interp: %v", trial, err)
			}
			got, err := interp.RunISA(p, env, th)
			if err != nil {
				t.Fatalf("trial %d: ISA interp: %v\n%s", trial, err, isa.Disassemble(p))
			}
			if !interp.OutputsEqual(want, got, k.Type.Lanes()) {
				t.Fatalf("trial %d thread %v: outputs differ\nIL:  %v\nISA: %v\nkernel:\n%s\nisa:\n%s",
					trial, th, want, got, il.Assemble(k), isa.Disassemble(p))
			}
		}
	}
}

func TestCompilePreservesSemanticsChains(t *testing.T) {
	// The exact kernels the suite generates: fold + long chains at every
	// clause-boundary-straddling length.
	env := interp.Env{W: 8, H: 8, Input: func(res, x, y, l int) float32 {
		return float32(res) + float32(x*8+y) + float32(l)*0.5
	}}
	for _, inputs := range []int{1, 2, 3, 8, 17} {
		for _, extra := range []int{0, 1, 2, 126, 127, 128, 129, 255} {
			k := chain(inputs, extra, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
			p, err := Compile(k, rv770)
			if err != nil {
				t.Fatalf("inputs=%d extra=%d: %v", inputs, extra, err)
			}
			th := interp.Thread{X: 2, Y: 6}
			want, _ := interp.RunIL(k, env, th)
			got, err := interp.RunISA(p, env, th)
			if err != nil {
				t.Fatalf("inputs=%d extra=%d: %v", inputs, extra, err)
			}
			if !interp.OutputsEqual(want, got, 1) {
				t.Fatalf("inputs=%d extra=%d: IL %v != ISA %v", inputs, extra, want, got)
			}
		}
	}
}
