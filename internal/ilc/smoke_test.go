package ilc

import (
	"strings"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/isa"
)

// chain builds the generic Fig. 3 kernel: sample all inputs, fold, extend
// the dependency chain, export.
func chain(inputs, extraALU int, mode il.ShaderMode, dt il.DataType, inSp, outSp il.MemSpace, outs int) *il.Kernel {
	k := &il.Kernel{
		Name: "chain", Mode: mode, Type: dt,
		NumInputs: inputs, NumOutputs: outs,
		InputSpace: inSp, OutSpace: outSp,
	}
	fetchOp := il.OpSample
	if inSp == il.GlobalSpace {
		fetchOp = il.OpGlobalLoad
	}
	r := il.Reg(0)
	for i := 0; i < inputs; i++ {
		k.Code = append(k.Code, il.Instr{Op: fetchOp, Dst: r, SrcA: il.NoReg, SrcB: il.NoReg, Res: i})
		r++
	}
	acc := il.Reg(0)
	for i := 1; i < inputs; i++ {
		k.Code = append(k.Code, il.Instr{Op: il.OpAdd, Dst: r, SrcA: acc, SrcB: il.Reg(i), Res: -1})
		acc = r
		r++
	}
	prev, prev2 := acc, acc
	if inputs >= 2 {
		prev2 = acc - 1
	}
	for i := 0; i < extraALU; i++ {
		k.Code = append(k.Code, il.Instr{Op: il.OpAdd, Dst: r, SrcA: prev, SrcB: prev2, Res: -1})
		prev2, prev = prev, r
		r++
	}
	storeOp := il.OpExport
	if outSp == il.GlobalSpace {
		storeOp = il.OpGlobalStore
	}
	for o := 0; o < outs; o++ {
		k.Code = append(k.Code, il.Instr{Op: storeOp, Dst: il.NoReg, SrcA: prev, SrcB: il.NoReg, Res: o})
	}
	return k
}

func TestCompileSmoke(t *testing.T) {
	spec := device.Lookup(device.RV770)
	k := chain(3, 10, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	p, err := Compile(k, spec)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.FetchOps != 3 {
		t.Errorf("fetches = %d, want 3", st.FetchOps)
	}
	if st.ALUBundles != 2+10 {
		t.Errorf("bundles = %d, want 12", st.ALUBundles)
	}
	// The paper's Fig. 2 commentary: a 3-input, 1-output kernel uses three
	// global purpose registers (the coordinate register is reused).
	if st.GPRs != 3 {
		t.Errorf("GPRs = %d, want 3 as in the paper's Fig. 2 kernel", st.GPRs)
	}
	dis := isa.Disassemble(p)
	for _, want := range []string{"TEX:", "ALU:", "SAMPLE R", "EXP_DONE: PIX0", "END_OF_PROGRAM"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestCompileRejectsComputeOnRV670(t *testing.T) {
	spec := device.Lookup(device.RV670)
	k := chain(2, 0, il.Compute, il.Float, il.TextureSpace, il.GlobalSpace, 1)
	if _, err := Compile(k, spec); err == nil {
		t.Fatal("RV670 compute kernel accepted")
	}
}
