package ilc

import (
	"reflect"
	"testing"

	"amdgpubench/internal/il"
	"amdgpubench/internal/interp"
	"amdgpubench/internal/kerngen"
)

func TestOptimizeRemovesDeadChain(t *testing.T) {
	// A live sum of two inputs, plus a dead side chain off input 0.
	k := &il.Kernel{
		Name: "deadchain", Mode: il.Pixel, Type: il.Float,
		NumInputs: 2, NumOutputs: 1,
		Code: []il.Instr{
			{Op: il.OpSample, Dst: 0, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0},
			{Op: il.OpSample, Dst: 1, SrcA: il.NoReg, SrcB: il.NoReg, Res: 1},
			{Op: il.OpAdd, Dst: 2, SrcA: 0, SrcB: 1, Res: -1},
			{Op: il.OpMul, Dst: 3, SrcA: 0, SrcB: 0, Res: -1}, // dead
			{Op: il.OpAdd, Dst: 4, SrcA: 3, SrcB: 3, Res: -1}, // dead
			{Op: il.OpExport, Dst: il.NoReg, SrcA: 2, SrcB: il.NoReg, Res: 0},
		},
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	opt, rep, err := Optimize(k)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedOps != 2 {
		t.Fatalf("removed %d ops, want 2", rep.RemovedOps)
	}
	if len(rep.RemovedInputs) != 0 {
		t.Fatalf("removed inputs %v, want none", rep.RemovedInputs)
	}
	if got := opt.Counts().ALU; got != 1 {
		t.Fatalf("optimized ALU count = %d, want 1", got)
	}
	if !rep.Changed() {
		t.Fatal("report claims nothing changed")
	}
}

func TestOptimizeRemovesUnusedInput(t *testing.T) {
	// Input 1 is sampled but its value never reaches the store: the
	// paper's "the compiler optimizes the input out of the code".
	k := &il.Kernel{
		Name: "unusedinput", Mode: il.Pixel, Type: il.Float,
		NumInputs: 3, NumOutputs: 1,
		Code: []il.Instr{
			{Op: il.OpSample, Dst: 0, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0},
			{Op: il.OpSample, Dst: 1, SrcA: il.NoReg, SrcB: il.NoReg, Res: 1}, // dead
			{Op: il.OpSample, Dst: 2, SrcA: il.NoReg, SrcB: il.NoReg, Res: 2},
			{Op: il.OpAdd, Dst: 3, SrcA: 0, SrcB: 2, Res: -1},
			{Op: il.OpExport, Dst: il.NoReg, SrcA: 3, SrcB: il.NoReg, Res: 0},
		},
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	opt, rep, err := Optimize(k)
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumInputs != 2 {
		t.Fatalf("optimized inputs = %d, want 2", opt.NumInputs)
	}
	if len(rep.RemovedInputs) != 1 || rep.RemovedInputs[0] != 1 {
		t.Fatalf("removed inputs = %v, want [1]", rep.RemovedInputs)
	}
	// Resource indices must be renumbered densely: old 2 becomes 1.
	sawRenumbered := false
	for _, in := range opt.Code {
		if in.Op == il.OpSample && in.Res == 1 {
			sawRenumbered = true
		}
		if in.Op == il.OpSample && in.Res > 1 {
			t.Fatalf("stale resource index %d after renumbering", in.Res)
		}
	}
	if !sawRenumbered {
		t.Fatal("resource 2 not renumbered to 1")
	}
	// Optimized kernel computes the same live output.
	env := interp.Env{W: 4, H: 4, Input: func(res, x, y, l int) float32 { return float32(res*7 + x + y) }}
	// The optimized kernel's resource 1 is the original resource 2.
	envOpt := interp.Env{W: 4, H: 4, Input: func(res, x, y, l int) float32 {
		if res == 1 {
			res = 2
		}
		return float32(res*7 + x + y)
	}}
	th := interp.Thread{X: 1, Y: 3}
	want, err := interp.RunIL(k, env, th)
	if err != nil {
		t.Fatal(err)
	}
	got, err := interp.RunIL(opt, envOpt, th)
	if err != nil {
		t.Fatal(err)
	}
	if !interp.OutputsEqual(want, got, 1) {
		t.Fatalf("optimized output %v != original %v", got, want)
	}
}

func TestOptimizeRejectsOutputlessKernel(t *testing.T) {
	k := &il.Kernel{
		Name: "noout", Mode: il.Pixel, Type: il.Float,
		NumInputs: 1, NumOutputs: 1,
		Code: []il.Instr{
			{Op: il.OpSample, Dst: 0, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0},
		},
	}
	if _, _, err := Optimize(k); err == nil {
		t.Fatal("output-less kernel accepted by the optimizer")
	}
}

func TestOptimizeLeavesGeneratedKernelsAlone(t *testing.T) {
	// The micro-benchmark generators construct fully-live kernels — the
	// property the paper's methodology depends on to control instruction
	// counts. The optimizer must be an identity on them.
	gens := []func() (*il.Kernel, error){
		func() (*il.Kernel, error) {
			return kerngen.ALUFetch(kerngen.Params{Mode: il.Pixel, Type: il.Float, Inputs: 16, Outputs: 1, ALUFetchRatio: 2})
		},
		func() (*il.Kernel, error) {
			return kerngen.ReadLatency(kerngen.Params{Mode: il.Pixel, Type: il.Float4, Inputs: 9, Outputs: 1})
		},
		func() (*il.Kernel, error) {
			return kerngen.WriteLatency(kerngen.Params{Mode: il.Pixel, Type: il.Float, Inputs: 8, Outputs: 5})
		},
		func() (*il.Kernel, error) {
			return kerngen.RegisterUsage(kerngen.Params{Mode: il.Pixel, Type: il.Float, Inputs: 64, Outputs: 1, ALUFetchRatio: 1, Space: 8, Step: 4})
		},
	}
	for i, gen := range gens {
		k, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		opt, rep, err := Optimize(k)
		if err != nil {
			t.Fatalf("generator %d: %v", i, err)
		}
		if rep.Changed() {
			t.Fatalf("generator %d: optimizer removed %d ops / inputs %v from a fully-live kernel",
				i, rep.RemovedOps, rep.RemovedInputs)
		}
		if !reflect.DeepEqual(opt.Code, k.Code) {
			t.Fatalf("generator %d: code changed", i)
		}
	}
}

func TestOptimizeDoesNotModifyOriginal(t *testing.T) {
	k := chain(2, 4, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	k.Code = append(k.Code[:len(k.Code)-1],
		il.Instr{Op: il.OpMul, Dst: il.Reg(k.NumTemps()), SrcA: 0, SrcB: 0, Res: -1}, // dead
		k.Code[len(k.Code)-1],
	)
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	before := make([]il.Instr, len(k.Code))
	copy(before, k.Code)
	if _, _, err := Optimize(k); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, k.Code) {
		t.Fatal("Optimize modified its input kernel")
	}
}
