package pipeline

import (
	"fmt"
	"strings"
	"time"
)

// StageStats are one stage's artifact-cache counters.
type StageStats struct {
	Stage string
	// Hits served an artifact from the store; Misses computed one;
	// Coalesced waited on a concurrent computation of the same key
	// (singleflight) instead of recomputing it.
	Hits, Misses, Coalesced uint64
	// Bypassed counts computations that skipped the store entirely —
	// fault-injected launches and artifacts with no content address.
	Bypassed uint64
	// Evictions counts LRU evictions; Entries is current residency.
	Evictions uint64
	Entries   int
	// ComputeTime is cumulative wall-clock time spent computing misses
	// and bypasses (hits cost none of it).
	ComputeTime time.Duration
}

// HitRate returns the fraction of non-bypassed requests served without
// computing: hits plus coalesced waits over all requests.
func (s StageStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

// Stats is a snapshot of the whole pipeline's counters, one entry per
// stage in execution order: generate, compile, trace, replay, simulate.
type Stats struct {
	Enabled bool
	Stages  []StageStats
}

// Stage returns the named stage's counters.
func (st Stats) Stage(name string) StageStats {
	for _, s := range st.Stages {
		if s.Stage == name {
			return s
		}
	}
	return StageStats{Stage: name}
}

// Format renders the snapshot as the table `amdmb -cache-stats` prints.
func (st Stats) Format() string {
	var b strings.Builder
	state := "enabled"
	if !st.Enabled {
		state = "disabled"
	}
	fmt.Fprintf(&b, "Pipeline artifact caches (%s): content-addressed, LRU-bounded, singleflight\n", state)
	fmt.Fprintf(&b, "%-10s %9s %9s %9s %9s %9s %8s %8s %12s\n",
		"stage", "hits", "misses", "coalesced", "bypassed", "evicted", "entries", "hit%", "compute")
	for _, s := range st.Stages {
		fmt.Fprintf(&b, "%-10s %9d %9d %9d %9d %9d %8d %7.1f%% %12s\n",
			s.Stage, s.Hits, s.Misses, s.Coalesced, s.Bypassed, s.Evictions,
			s.Entries, 100*s.HitRate(), s.ComputeTime.Round(time.Microsecond))
	}
	return b.String()
}
