package pipeline

import (
	"container/list"
	"sync"
	"time"

	"amdgpubench/internal/cache"
	"amdgpubench/internal/obs"
)

// The replay stage's access stream is input-major: the trace for N
// inputs is a strict prefix of the trace for N+1 (see cache.Cursor). A
// dense input-count sweep — Fig. 11's 2..18 curve, Fig. 7 at each ratio
// — therefore re-replays almost the same stream at every point. The
// snapshot store exploits that: it keeps, per *prefix family* (a
// replayKey with the input count zeroed), the deepest replay cursor seen
// so far. A later point of the same family clones the snapshot and
// advances it by the delta instead of replaying from a cold cache.
//
// Memory bound: one entry is three cloned cache models — tag arrays for
// the L1, the shared L2 and the open-row tracker. The L2 dominates
// (e.g. RV770's 512KB/64B lines = 8192 tags x 8B = 64KB), so the
// default bound of 64 entries caps snapshot state at a few MB.
// Eviction is LRU over prefix families; within a family, put keeps
// whichever cursor is deeper, so the store never regresses a prefix.
//
// Counters live under pipeline.replay-prefix.* and surface as their own
// row in Stats/-cache-stats: hits (snapshot served), misses (cold
// family or snapshot deeper than the requested point), inputs_reused
// (inputs the snapshot saved replaying), inputs_replayed (inputs
// actually advanced).
type snapshotStore struct {
	max int

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[replayKey]*list.Element

	hits         *obs.Counter
	misses       *obs.Counter
	coalesced    *obs.Counter // always 0: the outer replay store singleflights
	evictions    *obs.Counter
	computeNS    *obs.Counter
	entries      *obs.Gauge
	inputsReused *obs.Counter
	inputsPlayed *obs.Counter
}

type snapshotEntry struct {
	key replayKey
	cur *cache.Cursor
}

// prefixKeyFor strips the input count out of a replay key: what is left
// identifies the family of replays that share one stream prefix.
func prefixKeyFor(k replayKey) replayKey {
	k.numInputs = 0
	return k
}

func newSnapshotStore(reg *obs.Registry, max int) *snapshotStore {
	const prefix = "pipeline.replay-prefix."
	return &snapshotStore{
		max:          max,
		ll:           list.New(),
		items:        make(map[replayKey]*list.Element),
		hits:         reg.Counter(prefix + "hits"),
		misses:       reg.Counter(prefix + "misses"),
		coalesced:    reg.Counter(prefix + "coalesced"),
		evictions:    reg.Counter(prefix + "evictions"),
		computeNS:    reg.Counter(prefix + "compute_ns"),
		entries:      reg.Gauge(prefix + "entries"),
		inputsReused: reg.Counter(prefix + "inputs_reused"),
		inputsPlayed: reg.Counter(prefix + "inputs_replayed"),
	}
}

// lookup returns a private clone of the family's snapshot when it can
// seed a replay to n inputs (stored depth <= n; cursors cannot rewind),
// or nil on a cold family or an overdeep snapshot. The clone is the
// caller's to advance; the stored cursor is never handed out mutable.
func (s *snapshotStore) lookup(pk replayKey, n int) *cache.Cursor {
	s.mu.Lock()
	el, ok := s.items[pk]
	if ok {
		e := el.Value.(*snapshotEntry)
		if e.cur.Inputs() <= n {
			s.ll.MoveToFront(el)
			cur := e.cur.Clone()
			s.mu.Unlock()
			s.hits.Add(1)
			s.inputsReused.Add(int64(cur.Inputs()))
			return cur
		}
	}
	s.mu.Unlock()
	s.misses.Add(1)
	return nil
}

// put offers an advanced cursor back to the store. The caller cedes
// ownership: the cursor must not be advanced after put (lookup clones
// it for every future caller). Within a family the deeper cursor wins;
// across families, LRU eviction keeps the store within its bound.
func (s *snapshotStore) put(pk replayKey, cur *cache.Cursor) {
	s.mu.Lock()
	if el, ok := s.items[pk]; ok {
		e := el.Value.(*snapshotEntry)
		if cur.Inputs() > e.cur.Inputs() {
			e.cur = cur
		}
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.items[pk] = s.ll.PushFront(&snapshotEntry{key: pk, cur: cur})
	evicted := 0
	for s.max > 0 && s.ll.Len() > s.max {
		back := s.ll.Back()
		e := back.Value.(*snapshotEntry)
		s.ll.Remove(back)
		delete(s.items, e.key)
		evicted++
	}
	s.entries.Set(int64(s.ll.Len()))
	s.mu.Unlock()
	if evicted > 0 {
		s.evictions.Add(int64(evicted))
	}
}

// len returns the number of resident snapshots.
func (s *snapshotStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

func (s *snapshotStore) stats() StageStats {
	return StageStats{
		Stage:       "replay-prefix",
		Hits:        uint64(s.hits.Load()),
		Misses:      uint64(s.misses.Load()),
		Coalesced:   uint64(s.coalesced.Load()),
		Evictions:   uint64(s.evictions.Load()),
		Entries:     s.len(),
		ComputeTime: time.Duration(s.computeNS.Load()),
	}
}

// replayIncremental computes one replay artifact, seeding from the
// family's prefix snapshot when one exists and banking the advanced
// cursor for the family's next point. With the pipeline disabled it
// degrades to the one-shot cache.Replay — `-no-cache` turns incremental
// replay off along with everything else, which is the lever the
// bit-identity tests pull.
func (p *Pipeline) replayIncremental(tc cache.TraceConfig) (cache.TraceStats, error) {
	if p.disabled {
		return cache.Replay(tc)
	}
	start := time.Now()
	pk := prefixKeyFor(replayKeyFor(tc))
	cur := p.snapshots.lookup(pk, tc.NumInputs)
	if cur == nil {
		var err error
		cur, err = cache.NewCursor(tc)
		if err != nil {
			return cache.TraceStats{}, err
		}
	}
	delta := tc.NumInputs - cur.Inputs()
	if err := cur.Advance(tc.NumInputs); err != nil {
		return cache.TraceStats{}, err
	}
	st := cur.Stats()
	p.snapshots.put(pk, cur)
	p.snapshots.inputsPlayed.Add(int64(delta))
	p.snapshots.computeNS.Add(time.Since(start).Nanoseconds())
	return st, nil
}
