package pipeline

import (
	"sync"
	"testing"
	"time"

	"amdgpubench/internal/obs"
)

// TestStoreConcurrentEvictionConservation hammers a tiny store from many
// goroutines so singleflight waiters race LRU eviction: a key can be
// computed, evicted and recomputed while other goroutines are blocked on
// its in-flight call. Run under -race (CI does) this doubles as a data
// race check; the assertions below are the store's conservation laws,
// which must hold at any interleaving:
//
//	gets      == hits + misses + coalesced   (every get is exactly one)
//	onEvict   == evictions, once per key      (no double-free of artifacts)
//	residents == misses - evictions           (every miss inserts, every
//	                                           eviction removes)
func TestStoreConcurrentEvictionConservation(t *testing.T) {
	var (
		evictMu sync.Mutex
		evicted int
	)
	s := newStore[int, int]("race", obs.NewRegistry(), 4, false, func(k, v int) {
		evictMu.Lock()
		evicted++
		evictMu.Unlock()
		if v != k*10 {
			t.Errorf("evicted key %d carries value %d, want %d", k, v, k*10)
		}
	})

	const (
		goroutines = 16
		getsEach   = 300
		keySpace   = 12 // 3x the store's capacity: constant eviction pressure
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < getsEach; i++ {
				k := (g*7 + i) % keySpace
				v, err := s.get(k, func() (int, error) {
					if i%8 == 0 {
						// Park some computations so waiters pile onto the
						// in-flight call while other keys churn the LRU.
						time.Sleep(50 * time.Microsecond)
					}
					return k * 10, nil
				})
				if err != nil {
					t.Errorf("get(%d): %v", k, err)
				}
				if v != k*10 {
					t.Errorf("get(%d) = %d, want %d", k, v, k*10)
				}
			}
		}(g)
	}
	wg.Wait()

	hits := s.hits.Load()
	misses := s.misses.Load()
	coalesced := s.coalesced.Load()
	evictions := s.evictions.Load()

	if total := hits + misses + coalesced; total != goroutines*getsEach {
		t.Errorf("conservation broken: hits(%d)+misses(%d)+coalesced(%d) = %d, want %d gets",
			hits, misses, coalesced, total, goroutines*getsEach)
	}
	evictMu.Lock()
	calls := evicted
	evictMu.Unlock()
	if int64(calls) != evictions {
		t.Errorf("onEvict ran %d times, store counted %d evictions", calls, evictions)
	}
	if resident := int64(s.len()); resident != misses-evictions {
		t.Errorf("residency broken: %d resident, want misses(%d) - evictions(%d) = %d",
			resident, misses, evictions, misses-evictions)
	}
	if s.len() > 4 {
		t.Errorf("store holds %d entries, capacity 4", s.len())
	}
	if evictions == 0 {
		t.Error("test exerted no evictions; raise the pressure")
	}
	if coalesced == 0 {
		t.Error("test exerted no singleflight coalescing; raise the pressure")
	}
}
