package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"

	"amdgpubench/internal/device"
	"amdgpubench/internal/fsatomic"
	"amdgpubench/internal/obs"
	"amdgpubench/internal/raster"
	"amdgpubench/internal/sim"
)

// The persistent tier: a content-addressed directory store under the
// in-memory Simulate store. The Simulate stage is where the launch
// path's real time goes — generate/compile/trace/replay artifacts
// rebuild in microseconds, but a timing result embodies a full cache
// replay plus simulation — so Simulate results are the one artifact
// worth keeping across process restarts. A daemon restarted under a
// populated -cache-dir replays yesterday's campaign from disk instead
// of recomputing it.
//
// Layout: <dir>/simulate/<hh>/<hash64>.json, where hash is the SHA-256
// of the canonical JSON encoding of the key's exported mirror
// (persistSimKey) and hh its first byte — two hex digits of fan-out
// keeps directories small at millions of entries. The value is the
// sim.Result as JSON: Go's float64 round-trip through encoding/json is
// exact (shortest-representation printing), so a result served from
// disk is bit-identical to the freshly computed one and figures match
// byte for byte.
//
// Writes go through fsatomic.WriteFile — the unique-temp crash-atomic
// writer — so concurrent requests computing the same key, or a SIGKILL
// mid-write, can never publish a torn entry; a torn entry from outside
// interference is detected on load (JSON parse) and treated as a miss.
// The tier is write-through and best-effort: a failed store counts on
// pipeline.persist.errors and the launch proceeds; a failed load is a
// miss. Counters:
//
//	pipeline.persist.hits    — results served from disk
//	pipeline.persist.misses  — lookups that fell through to compute
//	pipeline.persist.writes  — results written through to disk
//	pipeline.persist.errors  — unreadable/corrupt entries and failed writes

// persistFormatVersion stamps every persisted key. Bump it whenever the
// simulator, the key mirror, or the result encoding changes meaning:
// old entries then miss by construction instead of serving stale
// timings.
const persistFormatVersion = 1

// persistSimKey mirrors simulateKey with exported fields so it JSON-
// encodes completely. Everything the simulator reads is here; two
// configs that differ in any field hash to different entries.
type persistSimKey struct {
	Version    int
	ProgHash   string // hex of the compile stage's content address
	Spec       device.Spec
	Order      raster.Order
	W, H       int
	Iterations int
	Ablate     sim.Ablations
	Watchdog   uint64
}

type persistTier struct {
	dir string

	hits   *obs.Counter
	misses *obs.Counter
	writes *obs.Counter
	errs   *obs.Counter
}

func newPersistTier(dir string, reg *obs.Registry) *persistTier {
	return &persistTier{
		dir:    dir,
		hits:   reg.Counter("pipeline.persist.hits"),
		misses: reg.Counter("pipeline.persist.misses"),
		writes: reg.Counter("pipeline.persist.writes"),
		errs:   reg.Counter("pipeline.persist.errors"),
	}
}

// pathFor derives the entry path for a simulate key.
func (t *persistTier) pathFor(k simulateKey) string {
	mirror := persistSimKey{
		Version:    persistFormatVersion,
		ProgHash:   hex.EncodeToString(k.progHash[:]),
		Spec:       k.spec,
		Order:      k.order,
		W:          k.w,
		H:          k.h,
		Iterations: k.iterations,
		Ablate:     k.ablate,
		Watchdog:   k.watchdog,
	}
	// json.Marshal of a struct is canonical: fields in declaration
	// order, no map iteration anywhere in the mirror.
	blob, err := json.Marshal(mirror)
	if err != nil {
		// Every field is a plain exported value; Marshal cannot fail.
		panic("pipeline: persist key encoding: " + err.Error())
	}
	sum := sha256.Sum256(blob)
	name := hex.EncodeToString(sum[:])
	return filepath.Join(t.dir, "simulate", name[:2], name+".json")
}

// load serves a previously persisted result; a missing, unreadable or
// corrupt entry is a miss (corruption also counts an error).
func (t *persistTier) load(k simulateKey) (sim.Result, bool) {
	data, err := os.ReadFile(t.pathFor(k))
	if err != nil {
		if !os.IsNotExist(err) {
			t.errs.Inc()
		}
		t.misses.Inc()
		return sim.Result{}, false
	}
	var res sim.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.errs.Inc()
		t.misses.Inc()
		return sim.Result{}, false
	}
	t.hits.Inc()
	return res, true
}

// store writes a computed result through to disk, best-effort: the
// in-memory store already holds the result, so a failed write costs
// only a future cold start, never the launch.
func (t *persistTier) store(k simulateKey, res sim.Result) {
	path := t.pathFor(k)
	data, err := json.Marshal(res)
	if err != nil {
		t.errs.Inc()
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.errs.Inc()
		return
	}
	if err := fsatomic.WriteFile(path, data); err != nil {
		t.errs.Inc()
		return
	}
	t.writes.Inc()
}
