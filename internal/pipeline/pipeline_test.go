package pipeline

import (
	"errors"
	"sync"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/kerngen"
	"amdgpubench/internal/obs"
	"amdgpubench/internal/raster"
	"amdgpubench/internal/sim"
)

func testParams() kerngen.Params {
	return kerngen.Params{
		Mode: il.Pixel, Type: il.Float, Inputs: 4, Outputs: 1,
		ALUFetchRatio: 1.0,
	}
}

func testSimConfig(t *testing.T, p *Pipeline, params kerngen.Params) sim.Config {
	t.Helper()
	spec := device.Lookup(device.RV770)
	k, err := p.Generate(GenALUFetch, params)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Compile(k, spec, ilc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{
		Spec: spec, Prog: prog, Order: raster.PixelOrder(),
		W: 256, H: 256, Iterations: 1,
	}
}

func TestGenerateMemoized(t *testing.T) {
	p := New(Options{})
	k1, err := p.Generate(GenALUFetch, testParams())
	if err != nil {
		t.Fatal(err)
	}
	k2, err := p.Generate(GenALUFetch, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("identical (generator, params) should share one kernel artifact")
	}
	st := p.Stats().Stage("generate")
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("generate stats = %d hits / %d misses, want 1/1", st.Hits, st.Misses)
	}
	// A different generator over the same params is a different artifact.
	k3, err := p.Generate(GenReadLatency, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("different generators must not collide")
	}
}

func TestCompileMemoizedByContent(t *testing.T) {
	p := New(Options{})
	spec := device.Lookup(device.RV770)
	// Two structurally identical kernels from independent kerngen calls:
	// distinct pointers, identical IL text.
	k1, err := kerngen.ALUFetch(testParams())
	if err != nil {
		t.Fatal(err)
	}
	k2, err := kerngen.ALUFetch(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("test wants distinct kernel pointers")
	}
	p1, err := p.Compile(k1, spec, ilc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.Compile(k2, spec, ilc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same IL content on the same device must share one compiled artifact")
	}
	// Different compiler options are a different content address.
	p3, err := p.Compile(k1, spec, ilc.Options{NoClauseTemps: true})
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("ablated compile must not be served from the unablated artifact")
	}
	// Different architecture too.
	p4, err := p.Compile(k1, device.Lookup(device.RV870), ilc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Error("different arch must not share compiled artifacts")
	}
	st := p.Stats().Stage("compile")
	if st.Hits != 1 || st.Misses != 3 {
		t.Errorf("compile stats = %d hits / %d misses, want 1/3", st.Hits, st.Misses)
	}
}

func TestSimulateMatchesDirectRunAndMemoizes(t *testing.T) {
	p := New(Options{})
	cfg := testSimConfig(t, p, testParams())

	want, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got1, err := p.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got1 != want {
		t.Errorf("pipeline result differs from direct sim.Run:\n got %+v\nwant %+v", got1, want)
	}
	got2, err := p.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want {
		t.Error("cached result differs from computed result")
	}
	st := p.Stats().Stage("simulate")
	if st.Hits != 1 || st.Misses != 1 || st.Bypassed != 0 {
		t.Errorf("simulate stats = %d hits / %d misses / %d bypassed, want 1/1/0",
			st.Hits, st.Misses, st.Bypassed)
	}
	// Ablations are part of the content address.
	abl := cfg
	abl.Ablate.SingleWavefront = true
	ra, err := p.Simulate(abl)
	if err != nil {
		t.Fatal(err)
	}
	if ra == want {
		t.Error("ablated simulation must not be served from the unablated artifact")
	}
}

func TestFaultedSimulationBypassesResultStore(t *testing.T) {
	p := New(Options{})
	cfg := testSimConfig(t, p, testParams())

	nominal, err := p.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	throttled := cfg
	throttled.ClockFactor = 0.5
	for i := 0; i < 2; i++ {
		res, err := p.Simulate(throttled)
		if err != nil {
			t.Fatal(err)
		}
		if res.Seconds <= nominal.Seconds {
			t.Error("throttled run should be slower than nominal")
		}
	}
	st := p.Stats().Stage("simulate")
	if st.Bypassed != 2 {
		t.Errorf("throttled runs bypassed = %d, want 2", st.Bypassed)
	}
	// The throttled result must not have poisoned the store: the nominal
	// config still serves the nominal artifact.
	again, err := p.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again != nominal {
		t.Error("nominal artifact corrupted by a faulted run")
	}

	// A hang faults the launch into the watchdog; the error is returned
	// every time, never cached.
	hung := cfg
	hung.Hang = &sim.HangFault{Clause: 0}
	hung.Watchdog = 1 << 20
	for i := 0; i < 2; i++ {
		var wde *sim.WatchdogError
		if _, err := p.Simulate(hung); !errors.As(err, &wde) {
			t.Fatalf("hung simulation error = %v, want WatchdogError", err)
		}
	}
	if st := p.Stats().Stage("simulate"); st.Bypassed != 4 {
		t.Errorf("bypassed = %d after hangs, want 4", st.Bypassed)
	}
}

func TestReplayArtifactSharedAcrossALUVariants(t *testing.T) {
	p := New(Options{})
	// Same fetch signature (4 inputs, same domain/order), different ALU
	// op counts: distinct compile artifacts, one replay artifact.
	pa := testParams()
	pb := testParams()
	pb.ALUFetchRatio = 2.0
	cfgA := testSimConfig(t, p, pa)
	cfgB := testSimConfig(t, p, pb)
	if cfgA.Prog == cfgB.Prog {
		t.Fatal("test wants distinct programs")
	}
	if _, err := p.Simulate(cfgA); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Simulate(cfgB); err != nil {
		t.Fatal(err)
	}
	st := p.Stats().Stage("replay")
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("replay stats = %d hits / %d misses, want 1 hit / 1 miss (shared fetch trace)", st.Hits, st.Misses)
	}
}

func TestDisabledPipelineRecomputesEverything(t *testing.T) {
	p := New(Options{Disabled: true})
	spec := device.Lookup(device.RV770)
	k, err := p.Generate(GenALUFetch, testParams())
	if err != nil {
		t.Fatal(err)
	}
	p1, err := p.Compile(k, spec, ilc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.Compile(k, spec, ilc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("disabled pipeline must recompile")
	}
	cfg := sim.Config{Spec: spec, Prog: p1, Order: raster.PixelOrder(), W: 256, H: 256, Iterations: 1}
	want, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("disabled pipeline result differs from direct sim.Run")
	}
	st := p.Stats()
	if st.Enabled {
		t.Error("Stats().Enabled should be false")
	}
	if s := st.Stage("compile"); s.Hits != 0 || s.Misses != 2 {
		t.Errorf("disabled compile stats = %d hits / %d misses, want 0/2", s.Hits, s.Misses)
	}
	if s := st.Stage("simulate"); s.Bypassed != 1 {
		t.Errorf("disabled simulate bypassed = %d, want 1", s.Bypassed)
	}
}

func TestStoreSingleflightComputesOnce(t *testing.T) {
	s := newStore[int, int]("test", obs.NewRegistry(), 8, false, nil)
	const waiters = 16
	computing := make(chan struct{})
	release := make(chan struct{})
	var calls int
	var wg sync.WaitGroup
	// One goroutine enters the computation and parks; every other get of
	// the same key must wait for it rather than compute again.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.get(1, func() (int, error) {
			calls++ // safe: singleflight admits one computation
			close(computing)
			<-release
			return 42, nil
		})
	}()
	<-computing
	results := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := s.get(1, func() (int, error) {
				t.Error("second computation admitted for an in-flight key")
				return 0, nil
			})
			if err != nil {
				t.Error(err)
			}
			results <- v
		}()
	}
	close(release)
	wg.Wait()
	close(results)
	for v := range results {
		if v != 42 {
			t.Errorf("waiter got %d, want 42", v)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	// A waiter that arrived while the computation was parked is coalesced;
	// one that arrived after it completed is a plain hit. Either way no
	// waiter recomputed.
	if got := s.coalesced.Load() + s.hits.Load(); got != waiters {
		t.Errorf("coalesced+hits = %d, want %d", got, waiters)
	}
}

func TestStoreLRUEvictionIsBounded(t *testing.T) {
	var evicted []int
	s := newStore[int, int]("test", obs.NewRegistry(), 2, false, func(k, _ int) { evicted = append(evicted, k) })
	mustGet := func(k int) {
		t.Helper()
		if _, err := s.get(k, func() (int, error) { return k * 10, nil }); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(1)
	mustGet(2)
	mustGet(1) // refresh 1; 2 is now least recently used
	mustGet(3) // evicts 2
	if s.len() != 2 {
		t.Errorf("store holds %d entries, want 2", s.len())
	}
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Errorf("evicted = %v, want [2]", evicted)
	}
	mustGet(2) // must recompute
	if got := s.misses.Load(); got != 4 {
		t.Errorf("misses = %d, want 4 (1, 2, 3, and re-computed 2)", got)
	}
	if got := s.evictions.Load(); got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
}

func TestStoreNeverCachesErrors(t *testing.T) {
	s := newStore[int, int]("test", obs.NewRegistry(), 8, false, nil)
	boom := errors.New("boom")
	if _, err := s.get(1, func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, err := s.get(1, func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry after error = %d, %v; want 7, nil", v, err)
	}
	if s.len() != 1 {
		t.Errorf("store holds %d entries, want 1 (errors are not stored)", s.len())
	}
}

func TestCompileEvictionDropsContentAddress(t *testing.T) {
	p := New(Options{CompileEntries: 1})
	spec := device.Lookup(device.RV770)
	ka, err := p.Generate(GenALUFetch, testParams())
	if err != nil {
		t.Fatal(err)
	}
	pb := testParams()
	pb.Inputs = 6
	kb, err := p.Generate(GenALUFetch, pb)
	if err != nil {
		t.Fatal(err)
	}
	progA, err := p.Compile(ka, spec, ilc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.hashOf(progA); !ok {
		t.Fatal("freshly compiled program should be content-addressed")
	}
	if _, err := p.Compile(kb, spec, ilc.Options{}); err != nil {
		t.Fatal(err)
	}
	// progA was evicted from the one-entry store; its identity entry
	// must be gone too, so the simulate stage bypasses rather than keys
	// on a stale address.
	if _, ok := p.hashOf(progA); ok {
		t.Error("evicted program still content-addressed; progHash leaks")
	}
}
