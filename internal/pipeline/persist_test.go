package pipeline

import (
	"os"
	"path/filepath"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/kerngen"
	"amdgpubench/internal/raster"
	"amdgpubench/internal/sim"
)

// persistConfig builds a small real simulate config through a pipeline's
// own Generate/Compile stages, so the program carries a content address.
func persistConfig(t *testing.T, p *Pipeline) sim.Config {
	t.Helper()
	k, err := p.Generate(GenALUFetch, kerngen.Params{
		Mode: il.Pixel, Type: il.Float, Inputs: 4, Outputs: 1,
		ALUFetchRatio: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := device.Lookup(device.RV770)
	prog, err := p.Compile(k, spec, ilc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{
		Prog: prog, Spec: spec, Order: raster.PixelOrder(),
		W: 64, H: 64, Iterations: 1,
	}
}

func persistCount(t *testing.T, p *Pipeline, name string) int64 {
	t.Helper()
	return p.Metrics().Snapshot().Get("pipeline.persist." + name)
}

func TestPersistTierWriteThroughAndReload(t *testing.T) {
	dir := t.TempDir()

	// Cold pipeline: the first simulate computes and writes through.
	p1 := New(Options{PersistDir: dir})
	cfg1 := persistConfig(t, p1)
	res1, err := p1.Simulate(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if got := persistCount(t, p1, "writes"); got != 1 {
		t.Fatalf("persist.writes = %d, want 1", got)
	}
	if got := persistCount(t, p1, "misses"); got != 1 {
		t.Fatalf("persist.misses = %d, want 1", got)
	}
	// A second simulate of the same config hits in MEMORY: the disk tier
	// is below the LRU, not in front of it.
	if _, err := p1.Simulate(cfg1); err != nil {
		t.Fatal(err)
	}
	if got := persistCount(t, p1, "hits"); got != 0 {
		t.Fatalf("persist.hits = %d after a memory hit, want 0", got)
	}

	// A fresh pipeline over the same dir — the daemon restart — serves
	// the result from disk, bit-identical, without simulating.
	p2 := New(Options{PersistDir: dir})
	cfg2 := persistConfig(t, p2)
	res2, err := p2.Simulate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res1 {
		t.Fatalf("disk-served result differs from computed:\n%+v\nvs\n%+v", res2, res1)
	}
	if got := persistCount(t, p2, "hits"); got != 1 {
		t.Fatalf("persist.hits = %d on restart, want 1", got)
	}
	if got := persistCount(t, p2, "writes"); got != 0 {
		t.Fatalf("persist.writes = %d on a tier hit, want 0 (no write-back of what is already on disk)", got)
	}
	if st := p2.Stats().Stage("simulate"); st.ComputeTime != 0 {
		t.Fatalf("restart simulated for %v; the tier should have served it", st.ComputeTime)
	}
}

func TestPersistTierCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	p1 := New(Options{PersistDir: dir})
	cfg := persistConfig(t, p1)
	res1, err := p1.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the one persisted entry in place.
	var entries []string
	err = filepath.WalkDir(filepath.Join(dir, "simulate"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			entries = append(entries, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("persisted %d entries, want 1", len(entries))
	}
	if err := os.WriteFile(entries[0], []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	// The restart recomputes (the corrupt entry must not wedge or lie),
	// counts the error, and heals the entry by writing through again.
	p2 := New(Options{PersistDir: dir})
	res2, err := p2.Simulate(persistConfig(t, p2))
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res1 {
		t.Fatal("recomputed result differs")
	}
	if got := persistCount(t, p2, "errors"); got != 1 {
		t.Fatalf("persist.errors = %d, want 1", got)
	}
	if got := persistCount(t, p2, "writes"); got != 1 {
		t.Fatalf("persist.writes = %d, want 1 (corrupt entry healed)", got)
	}

	p3 := New(Options{PersistDir: dir})
	if _, err := p3.Simulate(persistConfig(t, p3)); err != nil {
		t.Fatal(err)
	}
	if got := persistCount(t, p3, "hits"); got != 1 {
		t.Fatalf("persist.hits = %d after heal, want 1", got)
	}
}

func TestPersistTierDisabledWithCache(t *testing.T) {
	dir := t.TempDir()
	p := New(Options{PersistDir: dir, Disabled: true})
	if _, err := p.Simulate(persistConfig(t, p)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "simulate")); !os.IsNotExist(err) {
		t.Fatalf("-no-cache pipeline wrote persistent entries (stat err %v)", err)
	}
}

func TestPersistTierKeySeparatesConfigs(t *testing.T) {
	// Different iteration counts must land in different entries: the
	// second config computes rather than serving the first's result.
	dir := t.TempDir()
	p := New(Options{PersistDir: dir})
	cfg := persistConfig(t, p)
	if _, err := p.Simulate(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Iterations = 2
	if _, err := p.Simulate(cfg); err != nil {
		t.Fatal(err)
	}
	if got := persistCount(t, p, "writes"); got != 2 {
		t.Fatalf("persist.writes = %d, want 2 distinct entries", got)
	}
	if got := persistCount(t, p, "hits"); got != 0 {
		t.Fatalf("persist.hits = %d, want 0 (configs must not collide)", got)
	}
}
