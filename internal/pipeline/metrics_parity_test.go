package pipeline

import (
	"testing"
)

// TestStatsAgreeWithMetricsSnapshot is the single-source-of-truth check:
// Stats() (behind `amdmb -cache-stats`) and the metrics registry (behind
// `amdmb -metrics`) must report the same numbers, because they read the
// same counters. Any drift means a stage updated one but not the other.
func TestStatsAgreeWithMetricsSnapshot(t *testing.T) {
	p := New(Options{})
	cfg := testSimConfig(t, p, testParams())
	for i := 0; i < 3; i++ {
		if _, err := p.Simulate(cfg); err != nil {
			t.Fatal(err)
		}
	}
	// A second params set so generate/compile record both hits and misses.
	pb := testParams()
	pb.Inputs = 6
	cfgB := testSimConfig(t, p, pb)
	if _, err := p.Simulate(cfgB); err != nil {
		t.Fatal(err)
	}

	st := p.Stats()
	snap := p.Metrics().Snapshot()
	for _, stage := range st.Stages {
		if stage.Stage == "trace" {
			// The trace stage is derivation-counter-backed, not a store.
			if got := uint64(snap.Get("pipeline.trace.derivations")); got != stage.Misses {
				t.Errorf("trace derivations: stats %d, metrics %d", stage.Misses, got)
			}
			continue
		}
		prefix := "pipeline." + stage.Stage + "."
		checks := []struct {
			name string
			want uint64
		}{
			{"hits", stage.Hits},
			{"misses", stage.Misses},
			{"coalesced", stage.Coalesced},
			{"evictions", stage.Evictions},
		}
		for _, c := range checks {
			if got := uint64(snap.Get(prefix + c.name)); got != c.want {
				t.Errorf("%s%s: stats reports %d, metrics reports %d", prefix, c.name, c.want, got)
			}
		}
		if stage.Stage == "simulate" {
			continue // bypass time is folded into ComputeTime; checked below
		}
		if got := snap.Get(prefix + "compute_ns"); got != stage.ComputeTime.Nanoseconds() {
			t.Errorf("%scompute_ns: stats %d, metrics %d", prefix, stage.ComputeTime.Nanoseconds(), got)
		}
	}
	if st.Stage("simulate").Misses == 0 || st.Stage("simulate").Hits == 0 {
		t.Error("test exercised no simulate hits+misses; parity check is vacuous")
	}
}
