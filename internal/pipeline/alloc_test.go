package pipeline

import (
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/ilc"
)

// A compile-store hit is the common case of every sweep point after the
// first: it must do no serialization and essentially no allocation. The
// budget admits only the memoization closure itself.
func TestCompileHitAllocs(t *testing.T) {
	p := New(Options{})
	spec := device.Lookup(device.RV770)
	k, err := p.Generate(GenALUFetch, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Compile(k, spec, ilc.Options{}); err != nil {
		t.Fatal(err) // populate the store; everything after this is a hit
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := p.Compile(k, spec, ilc.Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("Compile hit allocates %.1f objects/op, want <= 2", allocs)
	}
}
