package pipeline

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// store is a bounded, content-addressed artifact store: an LRU map with
// singleflight deduplication. Concurrent gets of the same key share one
// computation — the worker pool behind a sweep never compiles or replays
// the same artifact twice at the same time — and completed artifacts are
// retained up to max entries, evicting least-recently-used first.
//
// Values must be immutable once stored: every hit returns the same
// artifact to every caller.
type store[K comparable, V any] struct {
	max      int
	disabled bool
	// onEvict, when non-nil, runs (with mu held) for every evicted
	// entry; it must not re-enter the store.
	onEvict func(K, V)

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	items    map[K]*list.Element
	inflight map[K]*call[V]

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
	computeNS atomic.Int64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// call is one in-flight computation; waiters block on done.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

func newStore[K comparable, V any](max int, disabled bool, onEvict func(K, V)) *store[K, V] {
	return &store[K, V]{
		max:      max,
		disabled: disabled,
		onEvict:  onEvict,
		ll:       list.New(),
		items:    make(map[K]*list.Element),
		inflight: make(map[K]*call[V]),
	}
}

// get returns the artifact for k, computing it at most once across
// concurrent callers. Errors are returned to every waiter but never
// cached: a failed computation retries on the next get.
func (s *store[K, V]) get(k K, compute func() (V, error)) (V, error) {
	if s.disabled {
		start := time.Now()
		v, err := compute()
		s.computeNS.Add(time.Since(start).Nanoseconds())
		s.misses.Add(1)
		return v, err
	}

	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		s.ll.MoveToFront(el)
		v := el.Value.(*entry[K, V]).val
		s.mu.Unlock()
		s.hits.Add(1)
		return v, nil
	}
	if c, ok := s.inflight[k]; ok {
		s.mu.Unlock()
		<-c.done
		s.coalesced.Add(1)
		return c.val, c.err
	}
	c := &call[V]{done: make(chan struct{})}
	s.inflight[k] = c
	s.mu.Unlock()

	start := time.Now()
	c.val, c.err = compute()
	s.computeNS.Add(time.Since(start).Nanoseconds())
	s.misses.Add(1)

	s.mu.Lock()
	delete(s.inflight, k)
	if c.err == nil {
		s.items[k] = s.ll.PushFront(&entry[K, V]{key: k, val: c.val})
		for s.max > 0 && s.ll.Len() > s.max {
			back := s.ll.Back()
			e := back.Value.(*entry[K, V])
			s.ll.Remove(back)
			delete(s.items, e.key)
			s.evictions.Add(1)
			if s.onEvict != nil {
				s.onEvict(e.key, e.val)
			}
		}
	}
	s.mu.Unlock()
	close(c.done)
	return c.val, c.err
}

// len returns the number of resident artifacts.
func (s *store[K, V]) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

func (s *store[K, V]) stats(stage string) StageStats {
	return StageStats{
		Stage:       stage,
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Coalesced:   s.coalesced.Load(),
		Evictions:   s.evictions.Load(),
		Entries:     s.len(),
		ComputeTime: time.Duration(s.computeNS.Load()),
	}
}
