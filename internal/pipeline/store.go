package pipeline

import (
	"container/list"
	"sync"
	"time"

	"amdgpubench/internal/obs"
)

// store is a bounded, content-addressed artifact store: an LRU map with
// singleflight deduplication. Concurrent gets of the same key share one
// computation — the worker pool behind a sweep never compiles or replays
// the same artifact twice at the same time — and completed artifacts are
// retained up to max entries, evicting least-recently-used first.
//
// Values must be immutable once stored: every hit returns the same
// artifact to every caller.
//
// Counters live in the pipeline's obs registry (resolved once at
// construction, updated with one atomic add per event — the same cost as
// the ad-hoc atomics they replaced), so `-cache-stats`, `-metrics` and
// the progress reporter all read one set of numbers.
type store[K comparable, V any] struct {
	max      int
	disabled bool
	// onEvict, when non-nil, runs (with mu held) for every evicted
	// entry; it must not re-enter the store.
	onEvict func(K, V)
	// tierLoad/tierStore, when non-nil, attach a lower store level (the
	// persistent on-disk tier): a memory miss tries tierLoad before
	// computing, and a computed value writes through tierStore. Both run
	// outside mu, inside the singleflight window — concurrent gets of
	// one key do at most one disk probe. A value served by tierLoad is
	// NOT written back through tierStore (it is already down there).
	tierLoad  func(K) (V, bool)
	tierStore func(K, V)

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	items    map[K]*list.Element
	inflight map[K]*call[V]

	hits      *obs.Counter
	misses    *obs.Counter
	coalesced *obs.Counter
	evictions *obs.Counter
	computeNS *obs.Counter
	entries   *obs.Gauge
	latency   *obs.Histogram
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// call is one in-flight computation; waiters block on done.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

func newStore[K comparable, V any](stage string, reg *obs.Registry, max int, disabled bool, onEvict func(K, V)) *store[K, V] {
	prefix := "pipeline." + stage + "."
	return &store[K, V]{
		max:       max,
		disabled:  disabled,
		onEvict:   onEvict,
		ll:        list.New(),
		items:     make(map[K]*list.Element),
		inflight:  make(map[K]*call[V]),
		hits:      reg.Counter(prefix + "hits"),
		misses:    reg.Counter(prefix + "misses"),
		coalesced: reg.Counter(prefix + "coalesced"),
		evictions: reg.Counter(prefix + "evictions"),
		computeNS: reg.Counter(prefix + "compute_ns"),
		entries:   reg.Gauge(prefix + "entries"),
		latency:   reg.Histogram(prefix+"compute_latency_ns", obs.DefaultLatencyBuckets()),
	}
}

// observeCompute charges one miss's computation to the stage's counters.
func (s *store[K, V]) observeCompute(d time.Duration) {
	ns := d.Nanoseconds()
	s.computeNS.Add(ns)
	s.latency.Observe(ns)
}

// get returns the artifact for k, computing it at most once across
// concurrent callers. Errors are returned to every waiter but never
// cached: a failed computation retries on the next get.
func (s *store[K, V]) get(k K, compute func() (V, error)) (V, error) {
	if s.disabled {
		start := time.Now()
		v, err := compute()
		s.observeCompute(time.Since(start))
		s.misses.Add(1)
		return v, err
	}

	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		s.ll.MoveToFront(el)
		v := el.Value.(*entry[K, V]).val
		s.mu.Unlock()
		s.hits.Add(1)
		return v, nil
	}
	if c, ok := s.inflight[k]; ok {
		s.mu.Unlock()
		<-c.done
		s.coalesced.Add(1)
		return c.val, c.err
	}
	c := &call[V]{done: make(chan struct{})}
	s.inflight[k] = c
	s.mu.Unlock()

	fromTier := false
	if s.tierLoad != nil {
		c.val, fromTier = s.tierLoad(k)
	}
	if !fromTier {
		start := time.Now()
		c.val, c.err = compute()
		s.observeCompute(time.Since(start))
		if c.err == nil && s.tierStore != nil {
			s.tierStore(k, c.val)
		}
	}
	s.misses.Add(1)

	s.mu.Lock()
	delete(s.inflight, k)
	if c.err == nil {
		s.items[k] = s.ll.PushFront(&entry[K, V]{key: k, val: c.val})
		for s.max > 0 && s.ll.Len() > s.max {
			back := s.ll.Back()
			e := back.Value.(*entry[K, V])
			s.ll.Remove(back)
			delete(s.items, e.key)
			s.evictions.Add(1)
			if s.onEvict != nil {
				s.onEvict(e.key, e.val)
			}
		}
		s.entries.Set(int64(s.ll.Len()))
	}
	s.mu.Unlock()
	close(c.done)
	return c.val, c.err
}

// len returns the number of resident artifacts.
func (s *store[K, V]) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

func (s *store[K, V]) stats(stage string) StageStats {
	return StageStats{
		Stage:       stage,
		Hits:        uint64(s.hits.Load()),
		Misses:      uint64(s.misses.Load()),
		Coalesced:   uint64(s.coalesced.Load()),
		Evictions:   uint64(s.evictions.Load()),
		Entries:     s.len(),
		ComputeTime: time.Duration(s.computeNS.Load()),
	}
}
