package pipeline

import (
	"testing"

	"amdgpubench/internal/cache"
	"amdgpubench/internal/device"
	"amdgpubench/internal/raster"
)

func snapshotTraceConfigs(t *testing.T) []cache.TraceConfig {
	t.Helper()
	block, err := raster.ComputeOrder(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	return []cache.TraceConfig{
		{Spec: device.Lookup(device.RV770), Order: raster.PixelOrder(), W: 256, H: 256, ElemBytes: 4, ResidentWaves: 16},
		{Spec: device.Lookup(device.RV870), Order: block, W: 192, H: 128, ElemBytes: 16, ResidentWaves: 8, LinearLayout: true},
	}
}

// TestReplayIncrementalMatchesScratch is the prefix-snapshot identity at
// the pipeline layer: a dense ascending input-count sweep served through
// Pipeline.Replay — where every point after the first resumes the
// family's snapshot — must be bit-identical to a cold cache.Replay of
// each point, and the snapshot store must actually have served hits.
func TestReplayIncrementalMatchesScratch(t *testing.T) {
	p := New(Options{})
	for _, base := range snapshotTraceConfigs(t) {
		for n := 1; n <= 24; n++ {
			tc := base
			tc.NumInputs = n
			got, err := p.Replay(tc)
			if err != nil {
				t.Fatal(err)
			}
			want, err := cache.Replay(tc)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%v at %d inputs: incremental %+v != scratch %+v", base.Order, n, got, want)
			}
		}
	}

	snap := p.Metrics().Snapshot()
	hits := snap.Get("pipeline.replay-prefix.hits")
	// Two families, 24 ascending points each: every point after a
	// family's first resumes its snapshot.
	if want := int64(2 * 23); hits != want {
		t.Errorf("prefix snapshot hits = %d, want %d", hits, want)
	}
	if reused := snap.Get("pipeline.replay-prefix.inputs_reused"); reused == 0 {
		t.Error("prefix snapshots reused no inputs across an ascending sweep")
	}
	// Each point advanced exactly its one-input delta except the first.
	if played := snap.Get("pipeline.replay-prefix.inputs_replayed"); played != 2*24 {
		t.Errorf("inputs_replayed = %d, want %d", played, 2*24)
	}
	st := p.Stats().Stage("replay-prefix")
	if st.Hits != uint64(hits) || st.Entries != 2 {
		t.Errorf("replay-prefix stats row %+v disagrees with metrics (hits=%d, families=2)", st, hits)
	}
}

// TestReplayIncrementalDescending: a snapshot deeper than the requested
// point cannot rewind, so a descending sweep must fall back to cold
// cursors — and still be bit-identical.
func TestReplayIncrementalDescending(t *testing.T) {
	p := New(Options{})
	base := snapshotTraceConfigs(t)[0]
	for n := 12; n >= 1; n-- {
		tc := base
		tc.NumInputs = n
		got, err := p.Replay(tc)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cache.Replay(tc)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("descending at %d inputs: incremental %+v != scratch %+v", n, got, want)
		}
	}
	snap := p.Metrics().Snapshot()
	if hits := snap.Get("pipeline.replay-prefix.hits"); hits != 0 {
		t.Errorf("descending sweep recorded %d prefix hits, want 0 (cursors cannot rewind)", hits)
	}
	if misses := snap.Get("pipeline.replay-prefix.misses"); misses != 12 {
		t.Errorf("descending sweep recorded %d prefix misses, want 12", misses)
	}
}

// TestReplaySnapshotEviction: the store is LRU-bounded per prefix
// family; overflowing the bound evicts the least recently used family
// without affecting correctness.
func TestReplaySnapshotEviction(t *testing.T) {
	p := New(Options{ReplaySnapshotEntries: 1})
	cfgs := snapshotTraceConfigs(t)
	for n := 1; n <= 4; n++ {
		for _, base := range cfgs {
			tc := base
			tc.NumInputs = n
			got, err := p.Replay(tc)
			if err != nil {
				t.Fatal(err)
			}
			want, err := cache.Replay(tc)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%v at %d inputs under eviction pressure: %+v != %+v", base.Order, n, got, want)
			}
		}
	}
	snap := p.Metrics().Snapshot()
	if ev := snap.Get("pipeline.replay-prefix.evictions"); ev == 0 {
		t.Error("alternating two families through a 1-entry store evicted nothing")
	}
	if entries := snap.Get("pipeline.replay-prefix.entries"); entries != 1 {
		t.Errorf("store holds %d entries, bound is 1", entries)
	}
}

// TestReplayIncrementalDisabled: -no-cache turns incremental replay off
// with the rest of the artifact caching; the disabled path is the
// one-shot cache.Replay and the snapshot store stays untouched. This is
// the lever the figure bit-identity tests pull to compare incremental
// against from-scratch end to end.
func TestReplayIncrementalDisabled(t *testing.T) {
	p := New(Options{Disabled: true})
	base := snapshotTraceConfigs(t)[0]
	for n := 1; n <= 6; n++ {
		tc := base
		tc.NumInputs = n
		got, err := p.Replay(tc)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cache.Replay(tc)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("disabled pipeline at %d inputs: %+v != %+v", n, got, want)
		}
	}
	snap := p.Metrics().Snapshot()
	for _, name := range []string{"hits", "misses", "inputs_replayed"} {
		if v := snap.Get("pipeline.replay-prefix." + name); v != 0 {
			t.Errorf("disabled pipeline touched snapshot store: %s = %d", name, v)
		}
	}
}
