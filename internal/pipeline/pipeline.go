// Package pipeline decomposes the launch path into an explicit staged
// pipeline with content-addressed artifact caching. A timed kernel launch
// is five stages, each producing an immutable, hashable artifact:
//
//	Generate (kerngen)  parameters        -> IL kernel
//	Compile  (ilc)      IL text + device  -> ISA program
//	Trace    (raster)   program + domain  -> fetch-trace signature
//	Replay   (cache)    trace signature   -> cache replay statistics
//	Simulate (sim)      program + replay  -> timing result
//
// Generate, Compile, Replay and Simulate artifacts are memoized in
// bounded LRU stores keyed by content: compile artifacts by the kernel's
// structural hash (the SHA-256 of its canonical binary encoding — no
// text round-trip) plus the device architecture, its clause
// limits and the compiler options; replay artifacts by the fetch
// signature of the ISA program, the raster order, the domain and the
// cache geometry (plus cache-relevant ablations). Each store coalesces
// concurrent computations of the same key (singleflight), so a worker
// pool sweeping hundreds of points never computes the same artifact
// twice at the same time. Every stage carries hit/miss/latency counters,
// surfaced through Stats and `amdmb -cache-stats`.
//
// Because every stage is a pure function of its key, serving an artifact
// from the store is bit-identical to recomputing it: figures produced
// with caching enabled match the cache-disabled, single-worker run
// exactly (internal/core's determinism tests prove it).
//
// Fault injection bypasses the Simulate store in both directions: a
// launch struck by a throttle or hang fault is computed outside the
// store and its result is never cached, so a degraded run can neither be
// served from cache nor poison it. Compile and Replay artifacts are
// fault-independent (faults perturb timing and data, never the compiled
// program or its address trace) and stay shared.
package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"amdgpubench/internal/cache"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/isa"
	"amdgpubench/internal/kerngen"
	"amdgpubench/internal/obs"
	"amdgpubench/internal/raster"
	"amdgpubench/internal/sim"
)

// Options sizes the pipeline's artifact stores. Zero fields take the
// defaults below.
type Options struct {
	// Disabled turns memoization off: every stage recomputes every
	// artifact. Results are bit-identical either way; the flag exists
	// for baselines and cache-vs-recompute benchmarks.
	Disabled bool
	// Entry bounds per LRU store.
	GenerateEntries int
	CompileEntries  int
	ReplayEntries   int
	SimulateEntries int
	// ReplaySnapshotEntries bounds the replay prefix-snapshot store: the
	// deepest resumable replay cursor per trace-prefix family, cloned to
	// seed later points of a dense input sweep. Each entry holds three
	// cloned cache models (the L2's tag array dominates, ~64KB on RV770),
	// so the default of 64 caps snapshot state at a few MB.
	ReplaySnapshotEntries int
	// Metrics is the registry the per-stage counters, gauges and latency
	// histograms register into; nil gets the pipeline its own registry,
	// so counters (and Stats) always work.
	Metrics *obs.Registry
	// PersistDir, when non-empty, attaches the persistent on-disk tier
	// under the Simulate store (see persist.go): results missing in
	// memory load from <PersistDir>/simulate before computing, and
	// computed results write through crash-atomically. Disabled turns
	// the tier off along with everything else.
	PersistDir string
}

const (
	defaultGenerateEntries       = 4096
	defaultCompileEntries        = 4096
	defaultReplayEntries         = 1024
	defaultSimulateEntries       = 8192
	defaultReplaySnapshotEntries = 64
)

// Pipeline stages launches and memoizes their artifacts. It is safe for
// concurrent use; cal contexts and core suites are its clients.
type Pipeline struct {
	disabled bool
	metrics  *obs.Registry

	generate *store[generateKey, *il.Kernel]
	compile  *store[compileKey, *isa.Program]
	replay   *store[replayKey, cache.TraceStats]
	simulate *store[simulateKey, sim.Result]

	// snapshots resumes replays incrementally: per trace-prefix family it
	// keeps the deepest replay cursor, so adjacent points of an
	// input-count sweep replay only their delta (see snapshot.go).
	snapshots *snapshotStore

	// progHash content-addresses compiled programs by identity: Compile
	// stores each artifact's key hash under its pointer so Simulate can
	// key results without re-hashing the program. Entries die with their
	// program's eviction from the compile store.
	progHash sync.Map // *isa.Program -> [32]byte

	// The Trace stage is a pure derivation with nothing worth storing;
	// it keeps plain counters. simBypassed counts Simulate computations
	// that skipped the store (fault-injected or unhashable programs).
	traceCount  *obs.Counter
	traceNS     *obs.Counter
	simBypassed *obs.Counter
	simBypassNS *obs.Counter
}

// New builds a pipeline with the given store bounds.
func New(opts Options) *Pipeline {
	if opts.GenerateEntries <= 0 {
		opts.GenerateEntries = defaultGenerateEntries
	}
	if opts.CompileEntries <= 0 {
		opts.CompileEntries = defaultCompileEntries
	}
	if opts.ReplayEntries <= 0 {
		opts.ReplayEntries = defaultReplayEntries
	}
	if opts.SimulateEntries <= 0 {
		opts.SimulateEntries = defaultSimulateEntries
	}
	if opts.ReplaySnapshotEntries <= 0 {
		opts.ReplaySnapshotEntries = defaultReplaySnapshotEntries
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	p := &Pipeline{
		disabled:    opts.Disabled,
		metrics:     reg,
		traceCount:  reg.Counter("pipeline.trace.derivations"),
		traceNS:     reg.Counter("pipeline.trace.compute_ns"),
		simBypassed: reg.Counter("pipeline.simulate.bypassed"),
		simBypassNS: reg.Counter("pipeline.simulate.bypass_ns"),
	}
	p.generate = newStore[generateKey, *il.Kernel]("generate", reg, opts.GenerateEntries, opts.Disabled, nil)
	p.compile = newStore[compileKey, *isa.Program]("compile", reg, opts.CompileEntries, opts.Disabled, func(_ compileKey, prog *isa.Program) {
		p.progHash.Delete(prog)
	})
	p.replay = newStore[replayKey, cache.TraceStats]("replay", reg, opts.ReplayEntries, opts.Disabled, nil)
	p.snapshots = newSnapshotStore(reg, opts.ReplaySnapshotEntries)
	p.simulate = newStore[simulateKey, sim.Result]("simulate", reg, opts.SimulateEntries, opts.Disabled, nil)
	if opts.PersistDir != "" && !opts.Disabled {
		t := newPersistTier(opts.PersistDir, reg)
		p.simulate.tierLoad = t.load
		p.simulate.tierStore = t.store
	}
	return p
}

// Enabled reports whether memoization is on.
func (p *Pipeline) Enabled() bool { return !p.disabled }

// Metrics returns the registry the pipeline's counters live in — the
// one `-metrics` dumps. Clients (cal contexts, the sweep runner)
// register their own counters into it so one snapshot covers the whole
// launch path.
func (p *Pipeline) Metrics() *obs.Registry { return p.metrics }

// ---- Stage 1: Generate ----

// Generator names a kerngen kernel generator; with its Params it is the
// Generate stage's content address.
type Generator int

const (
	GenGeneric Generator = iota
	GenALUFetch
	GenReadLatency
	GenWriteLatency
	GenDomain
	GenRegisterUsage
	GenClauseUsage
)

// String names the generator.
func (g Generator) String() string {
	switch g {
	case GenGeneric:
		return "generic"
	case GenALUFetch:
		return "alufetch"
	case GenReadLatency:
		return "readlatency"
	case GenWriteLatency:
		return "writelatency"
	case GenDomain:
		return "domain"
	case GenRegisterUsage:
		return "registerusage"
	case GenClauseUsage:
		return "clauseusage"
	}
	return "?"
}

func (g Generator) fn() (func(kerngen.Params) (*il.Kernel, error), error) {
	switch g {
	case GenGeneric:
		return kerngen.Generic, nil
	case GenALUFetch:
		return kerngen.ALUFetch, nil
	case GenReadLatency:
		return kerngen.ReadLatency, nil
	case GenWriteLatency:
		return kerngen.WriteLatency, nil
	case GenDomain:
		return kerngen.Domain, nil
	case GenRegisterUsage:
		return kerngen.RegisterUsage, nil
	case GenClauseUsage:
		return kerngen.ClauseUsage, nil
	}
	return nil, fmt.Errorf("pipeline: unknown generator %d", int(g))
}

type generateKey struct {
	gen    Generator
	params kerngen.Params
}

// Generate runs the named kerngen generator, memoized on (generator,
// params). The returned kernel is shared and must be treated as
// immutable.
func (p *Pipeline) Generate(g Generator, params kerngen.Params) (*il.Kernel, error) {
	fn, err := g.fn()
	if err != nil {
		return nil, err
	}
	return p.generate.get(generateKey{gen: g, params: params}, func() (*il.Kernel, error) {
		return fn(params)
	})
}

// ---- Stage 2: Compile ----

// compileKey is the content address of a compiled program: the kernel's
// structural hash (il.Kernel.Hash — the SHA-256 of its canonical binary
// encoding, no text serialization), the device architecture, the spec
// fields the compiler actually reads (clause limits, compute support),
// and the compiler options. Unrelated spec differences — clocks, cache
// sizes — do not fragment the store.
type compileKey struct {
	kernelHash      [sha256.Size]byte
	arch            device.Arch
	supportsCompute bool
	maxFetchesTEX   int
	maxSlotsALU     int
	opts            ilc.Options
}

// hash folds the whole key into one digest — the program's content
// address, reused by the Simulate stage. Every non-hash field is packed
// into a fixed-width binary trailer with explicit writes; nothing here
// goes through reflection or text formatting.
func (k compileKey) hash() [sha256.Size]byte {
	var buf [sha256.Size + 3*8 + 3]byte
	copy(buf[:], k.kernelHash[:])
	le := binary.LittleEndian
	le.PutUint64(buf[sha256.Size:], uint64(k.arch))
	le.PutUint64(buf[sha256.Size+8:], uint64(int64(k.maxFetchesTEX)))
	le.PutUint64(buf[sha256.Size+16:], uint64(int64(k.maxSlotsALU)))
	buf[sha256.Size+24] = boolByte(k.supportsCompute)
	buf[sha256.Size+25] = boolByte(k.opts.NoPVForwarding)
	buf[sha256.Size+26] = boolByte(k.opts.NoClauseTemps)
	return sha256.Sum256(buf[:])
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Compile lowers an IL kernel for a device, memoized on the kernel's
// structural hash plus the compile-relevant device parameters and
// options. The returned program is shared and immutable. A store hit does
// zero serialization work: the key is built from the kernel's binary
// encoding without ever rendering IL text.
func (p *Pipeline) Compile(k *il.Kernel, spec device.Spec, opts ilc.Options) (*isa.Program, error) {
	key := compileKey{
		kernelHash:      k.Hash(),
		arch:            spec.Arch,
		supportsCompute: spec.SupportsCompute,
		maxFetchesTEX:   spec.MaxFetchesPerTEXClause,
		maxSlotsALU:     spec.MaxSlotsPerALUClause,
		opts:            opts,
	}
	prog, err := p.compile.get(key, func() (*isa.Program, error) {
		return ilc.CompileWith(k, spec, opts)
	})
	if err != nil {
		return nil, err
	}
	if !p.disabled {
		// Loading before storing keeps the hot (hit) path free of the
		// interface boxing sync.Map.Store would do on every launch.
		if _, ok := p.progHash.Load(prog); !ok {
			p.progHash.Store(prog, key.hash())
		}
	}
	return prog, nil
}

// ---- Stage 3: Trace ----

// Trace derives the fetch-trace signature of a simulation config — the
// replay stage's input. ok is false when the program fetches nothing
// through the texture cache.
func (p *Pipeline) Trace(cfg sim.Config) (cache.TraceConfig, bool) {
	start := time.Now()
	tc, ok := sim.TraceConfigFor(cfg)
	p.traceNS.Add(time.Since(start).Nanoseconds())
	p.traceCount.Add(1)
	return tc, ok
}

// ---- Stage 4: Replay ----

// replayKey is the content address of a cache replay: the fetch
// signature and domain walk plus the cache geometry the replay touches.
type replayKey struct {
	order         raster.Order
	w, h          int
	elemBytes     int
	numInputs     int
	residentWaves int
	firstWave     int
	linear        bool
	// Cache geometry: L1 and L2 shape plus the TEX-clause grouping that
	// sets the replay's interleave.
	l1Bytes, l1Line, l1Ways int
	l2Bytes, l2Ways         int
	maxFetchesTEX           int
	// fetchSeq digests a non-identity fetch schedule (cache.TraceConfig.
	// FetchRes): hierarchy-dissection kernels that revisit surfaces get
	// their own replay identity — and their own prefix-snapshot family —
	// per schedule. Zero for the identity schedule, so every pre-existing
	// replay key is unchanged.
	fetchSeq [sha256.Size]byte
}

func replayKeyFor(tc cache.TraceConfig) replayKey {
	k := replayKey{
		order:         tc.Order,
		w:             tc.W,
		h:             tc.H,
		elemBytes:     tc.ElemBytes,
		numInputs:     tc.NumInputs,
		residentWaves: tc.ResidentWaves,
		firstWave:     tc.FirstWave,
		linear:        tc.LinearLayout,
		l1Bytes:       tc.Spec.L1CacheBytes,
		l1Line:        tc.Spec.L1LineBytes,
		l1Ways:        tc.Spec.L1Ways,
		l2Bytes:       tc.Spec.L2CacheBytes,
		l2Ways:        tc.Spec.L2Ways,
		maxFetchesTEX: tc.Spec.MaxFetchesPerTEXClause,
	}
	if tc.FetchRes != nil {
		h := sha256.New()
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(len(tc.FetchRes)))
		h.Write(buf[:])
		for _, surf := range tc.FetchRes {
			binary.LittleEndian.PutUint64(buf[:], uint64(int64(surf)))
			h.Write(buf[:])
		}
		h.Sum(k.fetchSeq[:0])
	}
	return k
}

// Replay runs the trace through the cache model, memoized on the fetch
// signature, raster order, domain and cache geometry. Kernels that share
// a fetch trace — the whole ALU:Fetch ratio sweep of Fig. 7, say, where
// only the ALU op count varies — share one replay artifact. Misses
// compute incrementally: a dense input-count sweep resumes the family's
// prefix snapshot and replays only the delta (see snapshot.go), which is
// bit-identical to a cold replay because the N-input stream is a strict
// prefix of the N+1-input stream.
func (p *Pipeline) Replay(tc cache.TraceConfig) (cache.TraceStats, error) {
	return p.replay.get(replayKeyFor(tc), func() (cache.TraceStats, error) {
		return p.replayIncremental(tc)
	})
}

// ---- Stage 5: Simulate ----

// simulateKey content-addresses a timing result: the program's content
// hash plus everything else the simulator reads. The full device spec
// participates because timing depends on nearly all of it.
type simulateKey struct {
	progHash   [sha256.Size]byte
	spec       device.Spec
	order      raster.Order
	w, h       int
	iterations int
	ablate     sim.Ablations
	watchdog   uint64
}

// Simulate times a compiled kernel, routing the replay stage through the
// artifact stores and memoizing the final result. Fault-injected
// configurations — a hang or a throttled clock — bypass the result
// store entirely: they are recomputed every time and never cached, so a
// degraded run can neither be served stale nor poison later launches.
// Programs that did not come out of this pipeline's Compile stage have
// no content address and also bypass the result store (their replay
// stage still memoizes).
func (p *Pipeline) Simulate(cfg sim.Config) (sim.Result, error) {
	return p.SimulateSpan(obs.Span{}, cfg)
}

// SimulateSpan is Simulate with a parent span: each stage the launch
// passes through — trace, replay, the simulator run — records a child
// span on the launch's track, which is how `amdmb -trace` shows a sweep
// as per-launch lanes of nested stage spans. The zero Span traces
// nothing and costs nothing.
func (p *Pipeline) SimulateSpan(sp obs.Span, cfg sim.Config) (sim.Result, error) {
	// Trace + Replay: serve the cache statistics from the artifact store
	// so the simulator skips the trace-driven replay.
	tsp := sp.Child("trace").Cat("stage")
	tc, ok := p.Trace(cfg)
	tsp.End()
	if ok {
		rsp := sp.Child("replay").Cat("stage")
		st, err := p.Replay(tc)
		rsp.End()
		if err != nil {
			return sim.Result{}, err
		}
		cfg.Trace = &st
	}

	faulted := cfg.Hang != nil || (cfg.ClockFactor != 0 && cfg.ClockFactor != 1)
	hash, addressed := p.hashOf(cfg.Prog)
	if p.disabled || faulted || !addressed {
		xsp := sp.Child("simulate").Cat("stage")
		start := time.Now()
		res, err := sim.Run(cfg)
		p.simBypassNS.Add(time.Since(start).Nanoseconds())
		p.simBypassed.Add(1)
		xsp.End()
		return res, err
	}

	key := simulateKey{
		progHash:   hash,
		spec:       cfg.Spec,
		order:      cfg.Order,
		w:          cfg.W,
		h:          cfg.H,
		iterations: cfg.Iterations,
		ablate:     cfg.Ablate,
		watchdog:   cfg.Watchdog,
	}
	xsp := sp.Child("simulate").Cat("stage")
	res, err := p.simulate.get(key, func() (sim.Result, error) {
		return sim.Run(cfg)
	})
	xsp.End()
	return res, err
}

// hashOf returns the content address Compile recorded for prog.
func (p *Pipeline) hashOf(prog *isa.Program) ([sha256.Size]byte, bool) {
	if prog == nil {
		return [sha256.Size]byte{}, false
	}
	v, ok := p.progHash.Load(prog)
	if !ok {
		return [sha256.Size]byte{}, false
	}
	return v.([sha256.Size]byte), true
}

// Stats snapshots every stage's counters.
func (p *Pipeline) Stats() Stats {
	simStats := p.simulate.stats("simulate")
	simStats.Bypassed = uint64(p.simBypassed.Load())
	simStats.ComputeTime += time.Duration(p.simBypassNS.Load())
	return Stats{
		Enabled: !p.disabled,
		Stages: []StageStats{
			p.generate.stats("generate"),
			p.compile.stats("compile"),
			{
				Stage:       "trace",
				Misses:      uint64(p.traceCount.Load()),
				ComputeTime: time.Duration(p.traceNS.Load()),
			},
			p.replay.stats("replay"),
			p.snapshots.stats(),
			simStats,
		},
	}
}
