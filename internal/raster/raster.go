// Package raster maps wavefront lanes to domain coordinates, in the two
// orders the paper contrasts. Pixel shader mode walks the domain the way
// the hardware rasterizer does — in 8x8 screen tiles, each wavefront
// covering one tile as sixteen 2x2 quads — which matches the tiled layout
// of textures in memory and therefore the texture cache. Compute shader
// mode is linear: the programmer picks a block shape, and the naive 64x1
// block the paper uses by default walks one long row per wavefront, while
// the optimized 4x16 block recovers two-dimensional locality (Figs. 7/8).
//
// The package also defines the tiled texture address layout that the cache
// model replays fetch traces against.
package raster

import (
	"fmt"

	"amdgpubench/internal/il"
)

// TileDim is the edge of the rasterizer/texture micro-tile in texels. One
// wavefront in pixel shader mode covers exactly one 8x8 tile.
const TileDim = 8

// WavefrontSize is the number of threads per wavefront on every chip the
// suite targets.
const WavefrontSize = 64

// Order describes one walk of a 2D domain.
type Order struct {
	Mode   il.ShaderMode
	BlockW int // compute-mode block width (threads)
	BlockH int // compute-mode block height
}

// PixelOrder returns the rasterizer's tiled walk.
func PixelOrder() Order { return Order{Mode: il.Pixel, BlockW: TileDim, BlockH: TileDim} }

// ComputeOrder returns a linear compute-mode walk with the given block
// shape. The block must hold exactly one wavefront (64 threads), as in the
// paper's 64x1 and 4x16 configurations.
func ComputeOrder(bw, bh int) (Order, error) {
	if bw <= 0 || bh <= 0 || bw*bh != WavefrontSize {
		return Order{}, fmt.Errorf("raster: block %dx%d does not hold one %d-thread wavefront", bw, bh, WavefrontSize)
	}
	return Order{Mode: il.Compute, BlockW: bw, BlockH: bh}, nil
}

// Naive64x1 is the paper's default compute-mode block.
func Naive64x1() Order {
	o, _ := ComputeOrder(64, 1)
	return o
}

// Block4x16 is the paper's optimized compute-mode block.
func Block4x16() Order {
	o, _ := ComputeOrder(4, 16)
	return o
}

// String names the order, e.g. "pixel(8x8 tiles)" or "compute(64x1)".
func (o Order) String() string {
	if o.Mode == il.Pixel {
		return "pixel(8x8 tiles)"
	}
	return fmt.Sprintf("compute(%dx%d)", o.BlockW, o.BlockH)
}

// padded rounds v up to a multiple of m.
func padded(v, m int) int { return (v + m - 1) / m * m }

// WavefrontCount returns how many wavefronts cover a WxH domain. Compute
// mode pads each block dimension up (the paper: "the compute shader mode
// requires that the elements be padded to 64"); pixel mode pads to tiles.
func (o Order) WavefrontCount(w, h int) int {
	if o.Mode == il.Pixel {
		return (padded(w, TileDim) / TileDim) * (padded(h, TileDim) / TileDim)
	}
	return (padded(w, o.BlockW) / o.BlockW) * (padded(h, o.BlockH) / o.BlockH)
}

// Thread returns the domain coordinates of one lane of one wavefront.
// Coordinates may fall outside the domain when the walk pads; callers that
// generate memory traces clamp or skip those threads.
func (o Order) Thread(w, h, wave, lane int) (x, y int) {
	if o.Mode == il.Pixel {
		tilesPerRow := padded(w, TileDim) / TileDim
		tx, ty := wave%tilesPerRow, wave/tilesPerRow
		// Lanes form sixteen 2x2 quads, quad-major across the tile.
		quad, qlane := lane/4, lane%4
		qx, qy := quad%(TileDim/2), quad/(TileDim/2)
		return tx*TileDim + qx*2 + qlane%2, ty*TileDim + qy*2 + qlane/2
	}
	blocksPerRow := padded(w, o.BlockW) / o.BlockW
	bx, by := wave%blocksPerRow, wave/blocksPerRow
	return bx*o.BlockW + lane%o.BlockW, by*o.BlockH + lane/o.BlockW
}

// Quad returns the 2x2 quad index of a lane (0..15); the texture units
// operate at quad granularity.
func Quad(lane int) int { return lane / 4 }

// Layout describes a tiled texture: elements stored in TileDim x TileDim
// tiles, tiles row-major across the (padded) surface. This is the layout
// the texture cache sees; pixel-mode wavefronts touch one tile each, while
// a 64x1 compute wavefront touches the top row of eight different tiles —
// the mechanism behind the paper's "only half the cache is used" remark.
type Layout struct {
	W, H      int // element dimensions (padded internally)
	ElemBytes int
	Base      uint64 // base address of the surface
}

// Address returns the byte address of element (x, y).
func (l Layout) Address(x, y int) uint64 {
	tilesPerRow := padded(l.W, TileDim) / TileDim
	tx, ty := x/TileDim, y/TileDim
	lx, ly := x%TileDim, y%TileDim
	tile := ty*tilesPerRow + tx
	idx := tile*TileDim*TileDim + ly*TileDim + lx
	return l.Base + uint64(idx*l.ElemBytes)
}

// LinearAddress returns the byte address of element (x, y) under a plain
// row-major layout, which is how uncached global buffers are addressed.
func (l Layout) LinearAddress(x, y int) uint64 {
	return l.Base + uint64((y*l.W+x)*l.ElemBytes)
}

// SizeBytes returns the padded surface size.
func (l Layout) SizeBytes() int {
	return padded(l.W, TileDim) * padded(l.H, TileDim) * l.ElemBytes
}
