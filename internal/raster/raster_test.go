package raster

import (
	"testing"
	"testing/quick"

	"amdgpubench/internal/il"
)

func TestComputeOrderValidation(t *testing.T) {
	if _, err := ComputeOrder(0, 64); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := ComputeOrder(8, 16); err == nil {
		t.Error("128-thread block accepted")
	}
	if o, err := ComputeOrder(4, 16); err != nil || o.BlockW != 4 || o.BlockH != 16 {
		t.Errorf("4x16 rejected: %v", err)
	}
}

func TestOrderStrings(t *testing.T) {
	if PixelOrder().String() != "pixel(8x8 tiles)" {
		t.Error("pixel order name")
	}
	if Naive64x1().String() != "compute(64x1)" {
		t.Error("64x1 order name")
	}
	if Block4x16().String() != "compute(4x16)" {
		t.Error("4x16 order name")
	}
}

func TestWavefrontCount(t *testing.T) {
	cases := []struct {
		o    Order
		w, h int
		want int
	}{
		{PixelOrder(), 1024, 1024, 128 * 128},
		{PixelOrder(), 8, 8, 1},
		{PixelOrder(), 9, 8, 2}, // padded to two tiles wide
		{Naive64x1(), 1024, 1024, 16 * 1024},
		{Naive64x1(), 65, 1, 2}, // padded to 128 wide
		{Block4x16(), 1024, 1024, 256 * 64},
		{Block4x16(), 4, 16, 1},
	}
	for _, c := range cases {
		if got := c.o.WavefrontCount(c.w, c.h); got != c.want {
			t.Errorf("%v over %dx%d: waves = %d, want %d", c.o, c.w, c.h, got, c.want)
		}
	}
}

// TestThreadCoverage: every domain position is visited exactly once when
// the domain tiles evenly — a property check over all three orders.
func TestThreadCoverage(t *testing.T) {
	const w, h = 64, 32
	for _, o := range []Order{PixelOrder(), Naive64x1(), Block4x16()} {
		seen := make(map[[2]int]int)
		waves := o.WavefrontCount(w, h)
		for wv := 0; wv < waves; wv++ {
			for lane := 0; lane < WavefrontSize; lane++ {
				x, y := o.Thread(w, h, wv, lane)
				if x < 0 || x >= w || y < 0 || y >= h {
					t.Fatalf("%v: thread (%d,%d) outside evenly-tiled domain", o, x, y)
				}
				seen[[2]int{x, y}]++
			}
		}
		if len(seen) != w*h {
			t.Fatalf("%v: covered %d positions, want %d", o, len(seen), w*h)
		}
		for pos, n := range seen {
			if n != 1 {
				t.Fatalf("%v: position %v visited %d times", o, pos, n)
			}
		}
	}
}

func TestPixelWavefrontIsOneTile(t *testing.T) {
	o := PixelOrder()
	for lane := 0; lane < WavefrontSize; lane++ {
		x, y := o.Thread(1024, 1024, 0, lane)
		if x >= TileDim || y >= TileDim {
			t.Fatalf("lane %d at (%d,%d) escapes the first 8x8 tile", lane, x, y)
		}
	}
	// Second wavefront is the next tile to the right.
	x, y := o.Thread(1024, 1024, 1, 0)
	if x != TileDim || y != 0 {
		t.Fatalf("wave 1 lane 0 at (%d,%d), want (8,0)", x, y)
	}
}

func TestPixelQuadStructure(t *testing.T) {
	// Lanes 0..3 form a 2x2 quad.
	o := PixelOrder()
	want := [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	for lane := 0; lane < 4; lane++ {
		x, y := o.Thread(64, 64, 0, lane)
		if x != want[lane][0] || y != want[lane][1] {
			t.Errorf("lane %d at (%d,%d), want %v", lane, x, y, want[lane])
		}
	}
	if Quad(0) != 0 || Quad(3) != 0 || Quad(4) != 1 || Quad(63) != 15 {
		t.Error("quad indexing wrong")
	}
}

func Test64x1WavefrontIsOneRow(t *testing.T) {
	o := Naive64x1()
	for lane := 0; lane < WavefrontSize; lane++ {
		x, y := o.Thread(1024, 1024, 0, lane)
		if x != lane || y != 0 {
			t.Fatalf("lane %d at (%d,%d), want (%d,0)", lane, x, y, lane)
		}
	}
}

func Test4x16WavefrontShape(t *testing.T) {
	o := Block4x16()
	minX, maxX, minY, maxY := 1<<30, -1, 1<<30, -1
	for lane := 0; lane < WavefrontSize; lane++ {
		x, y := o.Thread(1024, 1024, 0, lane)
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	if minX != 0 || maxX != 3 || minY != 0 || maxY != 15 {
		t.Fatalf("4x16 wavefront bounds x[%d,%d] y[%d,%d]", minX, maxX, minY, maxY)
	}
}

func TestOrderModes(t *testing.T) {
	if PixelOrder().Mode != il.Pixel || Naive64x1().Mode != il.Compute {
		t.Error("order modes wrong")
	}
}

func TestTiledAddressBijective(t *testing.T) {
	l := Layout{W: 32, H: 24, ElemBytes: 4, Base: 1 << 20}
	seen := make(map[uint64]bool)
	for y := 0; y < l.H; y++ {
		for x := 0; x < l.W; x++ {
			a := l.Address(x, y)
			if seen[a] {
				t.Fatalf("address collision at (%d,%d)", x, y)
			}
			seen[a] = true
			if a < l.Base || a >= l.Base+uint64(l.SizeBytes()) {
				t.Fatalf("address %d outside surface", a)
			}
			if a%uint64(l.ElemBytes) != 0 {
				t.Fatalf("misaligned address %d", a)
			}
		}
	}
}

func TestTiledAddressLocality(t *testing.T) {
	// All 64 elements of one 8x8 tile are contiguous — a pixel-mode
	// wavefront touches exactly tileBytes consecutive bytes.
	l := Layout{W: 64, H: 64, ElemBytes: 4}
	lo, hi := ^uint64(0), uint64(0)
	for y := 0; y < TileDim; y++ {
		for x := 0; x < TileDim; x++ {
			a := l.Address(x, y)
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
	}
	if hi-lo != uint64(TileDim*TileDim*4-4) {
		t.Fatalf("tile spans [%d,%d], not contiguous", lo, hi)
	}
}

func TestLinearAddress(t *testing.T) {
	l := Layout{W: 16, H: 4, ElemBytes: 4, Base: 100}
	if l.LinearAddress(0, 0) != 100 {
		t.Error("base wrong")
	}
	if l.LinearAddress(3, 2) != 100+uint64((2*16+3)*4) {
		t.Error("row-major arithmetic wrong")
	}
}

func TestThreadQuickProperties(t *testing.T) {
	// Any lane of any wave maps inside the padded surface.
	o := Block4x16()
	f := func(wave uint8, lane uint8) bool {
		x, y := o.Thread(256, 256, int(wave)%o.WavefrontCount(256, 256), int(lane)%64)
		return x >= 0 && x < 256 && y >= 0 && y < 256
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
