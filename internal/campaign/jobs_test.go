package campaign

import (
	"strings"
	"sync"
	"testing"
	"time"

	"amdgpubench/internal/core"
)

// jobSuite is the daemon-shaped configuration: one timing iteration, a
// clamped domain, and — unlike testSuite — the artifact caches ON,
// because cross-request sharing through those caches is exactly what
// the job registry exists to exercise.
func jobSuite(maxDomain int) *core.Suite {
	s := core.NewSuite()
	s.Iterations = 1
	s.MaxDomain = maxDomain
	return s
}

func waitJob(t *testing.T, j *Job) JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s did not finish", j.ID())
	}
	return j.Status()
}

// localFigureCSVs runs the named figures on a FRESH suite — the
// pre-daemon, single-tenant path — and returns each figure's CSV.
func localFigureCSVs(t *testing.T, maxDomain int, names ...string) map[string]string {
	t.Helper()
	s := jobSuite(maxDomain)
	res, err := mustPlan(t, s, Options{}, names...).Run(s)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(res.Figures))
	for i, fig := range res.Figures {
		out[names[i]] = fig.CSV()
	}
	return out
}

// TestJobsConcurrentSharedSuite is the daemon's core promise: two
// clients with overlapping figure sets run concurrently on ONE suite,
// each gets figures byte-identical to a solo run on a fresh suite, and
// the overlap (fig8 appears in both) is served from the shared pipeline
// caches rather than simulated twice.
func TestJobsConcurrentSharedSuite(t *testing.T) {
	const maxDomain = 16
	s := jobSuite(maxDomain)
	js := NewJobs(s)

	ja, err := js.Submit(Request{Figs: []string{"fig7", "fig8"}})
	if err != nil {
		t.Fatal(err)
	}
	jb, err := js.Submit(Request{Figs: []string{"fig8", "fig11"}})
	if err != nil {
		t.Fatal(err)
	}
	stA, stB := waitJob(t, ja), waitJob(t, jb)
	for _, st := range []JobStatus{stA, stB} {
		if st.State != JobDone {
			t.Fatalf("job %s state %q (error %q), want done", st.ID, st.State, st.Error)
		}
		if st.FailedUnits != 0 {
			t.Fatalf("job %s failed %d units", st.ID, st.FailedUnits)
		}
		if st.Executed != st.Units {
			t.Fatalf("job %s executed %d of %d units", st.ID, st.Executed, st.Units)
		}
	}

	wantA := localFigureCSVs(t, maxDomain, "fig7", "fig8")
	wantB := localFigureCSVs(t, maxDomain, "fig8", "fig11")
	for _, tc := range []struct {
		job  *Job
		want map[string]string
	}{{ja, wantA}, {jb, wantB}} {
		for name, want := range tc.want {
			fig, ok := tc.job.Figure(name)
			if !ok {
				t.Fatalf("job %s has no figure %q", tc.job.ID(), name)
			}
			if got := fig.CSV(); got != want {
				t.Fatalf("job %s figure %q differs from a solo fresh-suite run:\n--- daemon ---\n%s\n--- solo ---\n%s", tc.job.ID(), name, got, want)
			}
		}
	}

	// The shared fig8: whichever job simulates a point first, the other
	// job's identical key is served by the memory cache or coalesced
	// into the in-flight compute — visible as cache traffic, and as
	// fewer simulate misses than the two jobs' summed unit counts.
	snap := s.Metrics().Snapshot()
	shared := snap.Get("pipeline.simulate.hits") + snap.Get("pipeline.simulate.coalesced")
	if shared == 0 {
		t.Fatal("no simulate cache sharing between overlapping concurrent jobs")
	}
	if misses := snap.Get("pipeline.simulate.misses"); misses >= int64(stA.Units+stB.Units) {
		t.Fatalf("simulate.misses = %d with %d+%d units: overlap was not deduplicated", misses, stA.Units, stB.Units)
	}
	if got := snap.Get("campaign.jobs.completed"); got != 2 {
		t.Fatalf("campaign.jobs.completed = %d, want 2", got)
	}
	if got := snap.Get("campaign.jobs.running"); got != 0 {
		t.Fatalf("campaign.jobs.running = %d after both jobs settled, want 0", got)
	}
	if got := len(js.List()); got != 2 {
		t.Fatalf("List returned %d jobs, want 2", got)
	}
}

// TestJobsCancel gates the first kernel launch, cancels the job while
// it is blocked there, and checks the job settles to cancelled — not
// failed — without touching the registry's other accounting.
func TestJobsCancel(t *testing.T) {
	s := jobSuite(16)
	var once sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	s.BeforeLaunch = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	js := NewJobs(s)
	j, err := js.Submit(Request{Figs: []string{"fig7"}})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	if !js.Cancel(j.ID()) {
		t.Fatal("Cancel refused a running job")
	}
	close(release)
	st := waitJob(t, j)
	if st.State != JobCancelled {
		t.Fatalf("state %q (error %q), want cancelled", st.State, st.Error)
	}
	if js.Cancel(j.ID()) {
		t.Fatal("Cancel of a settled job should report false")
	}
	if _, ok := j.Figure("fig7"); ok {
		t.Fatal("cancelled job served a figure")
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Get("campaign.jobs.cancelled"); got != 1 {
		t.Fatalf("campaign.jobs.cancelled = %d, want 1", got)
	}
	if got := snap.Get("campaign.jobs.failed"); got != 0 {
		t.Fatalf("campaign.jobs.failed = %d, want 0", got)
	}
	if got := snap.Get("campaign.jobs.running"); got != 0 {
		t.Fatalf("campaign.jobs.running = %d, want 0", got)
	}
}

// TestJobsArchFilter restricts a card-major figure to one architecture
// and checks every surviving series belongs to it.
func TestJobsArchFilter(t *testing.T) {
	s := jobSuite(16)
	js := NewJobs(s)
	j, err := js.Submit(Request{Figs: []string{"fig7"}, Archs: []string{"4870"}, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j); st.State != JobDone {
		t.Fatalf("state %q (error %q), want done", st.State, st.Error)
	}
	fig, ok := j.Figure("fig7")
	if !ok {
		t.Fatal("no fig7 on a done job")
	}
	if len(fig.Series) == 0 {
		t.Fatal("filtered figure has no series")
	}
	for _, sr := range fig.Series {
		if !strings.HasPrefix(sr.Label, "4870 ") {
			t.Fatalf("series %q survived a 4870-only filter", sr.Label)
		}
	}
}

// TestSubmitValidation: every malformed request fails synchronously,
// before a job exists.
func TestSubmitValidation(t *testing.T) {
	s := jobSuite(16)
	js := NewJobs(s)
	cases := []struct {
		name string
		req  Request
	}{
		{"no figures", Request{}},
		{"blank figures", Request{Figs: []string{" ", ""}}},
		{"unknown figure", Request{Figs: []string{"fig99"}}},
		{"unknown glob", Request{Figs: []string{"zfig*"}}},
		{"unknown arch", Request{Figs: []string{"fig7"}, Archs: []string{"vega"}}},
		{"positional figure arch-filtered", Request{Figs: []string{"trans"}, Archs: []string{"4870"}}},
		{"hier figure arch-filtered", Request{Figs: []string{"hier-lat"}, Archs: []string{"RV770"}}},
		{"iterations mismatch", Request{Figs: []string{"fig7"}, Iterations: 2}},
		{"negative max_domain", Request{Figs: []string{"fig7"}, MaxDomain: -1}},
	}
	for _, tc := range cases {
		if _, err := js.Submit(tc.req); err == nil {
			t.Errorf("%s: Submit accepted %+v", tc.name, tc.req)
		}
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Get("campaign.jobs.submitted"); got != 0 {
		t.Fatalf("campaign.jobs.submitted = %d after only rejected requests, want 0", got)
	}
	if got := len(js.List()); got != 0 {
		t.Fatalf("List returned %d jobs after only rejected requests, want 0", got)
	}
	if _, ok := js.Get("c000001"); ok {
		t.Fatal("a rejected request left a registered job")
	}
}
