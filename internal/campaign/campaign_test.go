package campaign

import (
	"errors"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"amdgpubench/internal/core"
)

// testSuite mirrors the CLI's fast-test configuration: one timing
// iteration and the artifact caches off, so dedup wins in these tests
// come from the scheduler, never from a warm cache.
func testSuite(maxDomain int) *core.Suite {
	s := core.NewSuite()
	s.Iterations = 1
	s.MaxDomain = maxDomain
	s.DisableArtifactCache = true
	return s
}

func mustSpecs(t *testing.T, s *core.Suite, names ...string) []Spec {
	t.Helper()
	specs, err := Specs(s, names)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func mustPlan(t *testing.T, s *core.Suite, opts Options, names ...string) *Plan {
	t.Helper()
	p, err := NewPlan(mustSpecs(t, s, names...), opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPlanInvariants checks the structural soundness of a plan on the
// flagship bundle: every figure point is subscribed to exactly one unit,
// every unit ref points back at it, and the per-level uniques are
// consistent with the dedup accounting.
func TestPlanInvariants(t *testing.T) {
	s := testSuite(0)
	p := mustPlan(t, s, Options{}, "fig7", "fig8", "fig11", "fig16")

	refs := 0
	for ui, u := range p.Units {
		if len(u.Refs) == 0 {
			t.Fatalf("unit %d has no subscribers", ui)
		}
		refs += len(u.Refs)
		for _, r := range u.Refs {
			if p.UnitOf(r.Spec, r.Point) != ui {
				t.Fatalf("unit %d ref %+v does not map back", ui, r)
			}
		}
	}
	if refs != p.Stats.Points {
		t.Fatalf("refs %d != points %d", refs, p.Stats.Points)
	}
	for si, sp := range p.Specs {
		for pi := range sp.Figure.Points {
			ui := p.UnitOf(si, pi)
			found := false
			for _, r := range p.Units[ui].Refs {
				if r.Spec == si && r.Point == pi {
					found = true
				}
			}
			if !found {
				t.Fatalf("point %d/%d not in unit %d refs", si, pi, ui)
			}
		}
	}
	if got := p.Stats.Launch.Unique; got != len(p.Units) {
		t.Fatalf("launch unique %d != units %d", got, len(p.Units))
	}
	// The bundle's cross-figure sharing is at the compile and kernel
	// levels (fig8 = fig7's compute kernels under another block shape),
	// not the launch level — the reason the DAG has three levels at all.
	if p.Stats.Launch.Deduped != 0 {
		t.Fatalf("flagship bundle unexpectedly shares launches: %+v", p.Stats.Launch)
	}
	if p.Stats.Compile.Deduped == 0 || p.Stats.Kernel.Deduped == 0 {
		t.Fatalf("expected compile+kernel dedup, got %+v", p.Stats)
	}
	if p.Stats.DedupedTotal() == 0 {
		t.Fatal("flagship bundle must dedup")
	}
}

// TestPlanLaunchDedup pins the one pair in the default registry that
// shares whole launches: fig16 and clausectl both start at step 0, where
// the control variant's clause reordering is a no-op and the generated
// kernels hash identically.
func TestPlanLaunchDedup(t *testing.T) {
	s := testSuite(0)
	p := mustPlan(t, s, Options{}, "fig16", "clausectl")
	if p.Stats.Launch.Deduped == 0 {
		t.Fatalf("fig16+clausectl should share launch units: %+v", p.Stats)
	}
	if p.Stats.Launch.Unique+p.Stats.Launch.Deduped != p.Stats.Points {
		t.Fatalf("launch accounting inconsistent: %+v", p.Stats)
	}
	shared := 0
	for _, u := range p.Units {
		if len(u.Refs) > 1 {
			shared++
			specs := map[int]bool{}
			for _, r := range u.Refs {
				specs[r.Spec] = true
			}
			if len(specs) != 2 {
				t.Fatalf("shared unit %+v not cross-figure", u.Refs)
			}
		}
	}
	if shared != p.Stats.Launch.Deduped {
		t.Fatalf("shared units %d != launch deduped %d", shared, p.Stats.Launch.Deduped)
	}
}

// TestPlanDeterministic replans the same bundle on fresh suites and
// demands an identical rendered schedule — the property the campaign
// checkpoint signature stands on.
func TestPlanDeterministic(t *testing.T) {
	render := func() string {
		var b strings.Builder
		RenderPlan(&b, mustPlan(t, testSuite(0), Options{}, "fig16", "clausectl", "fig11"))
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("replanning the same specs produced a different schedule")
	}
}

// TestPlanMaxDomainClamp clamps a domain-size sweep at plan time: every
// unit respects the cap, collapsed points dedup within the figure, and
// fan-out still serves every original point.
func TestPlanMaxDomainClamp(t *testing.T) {
	s := testSuite(8)
	p := mustPlan(t, s, Options{MaxDomain: 8}, "fig15a")
	for _, u := range p.Units {
		if u.Point.W > 8 || u.Point.H > 8 {
			t.Fatalf("unit domain %dx%d exceeds clamp", u.Point.W, u.Point.H)
		}
	}
	if len(p.Units) >= p.Stats.Points {
		t.Fatalf("clamp should collapse domain points: %d units for %d points", len(p.Units), p.Stats.Points)
	}
	res, err := p.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Runs[0]); got != p.Stats.Points {
		t.Fatalf("fan-out served %d of %d points", got, p.Stats.Points)
	}
}

// TestCampaignMatchesSequential is the headline correctness property:
// scheduling fig16+clausectl through the deduped DAG yields figures
// bit-identical to running each alone, with the artifact caches off so
// nothing can hide behind cache hits.
func TestCampaignMatchesSequential(t *testing.T) {
	const clamp = 64
	s := testSuite(clamp)
	p := mustPlan(t, s, Options{MaxDomain: clamp}, "fig16", "clausectl")
	res, err := p.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() != 0 {
		t.Fatalf("%d units failed", res.Failed())
	}

	direct16, _, err := testSuite(clamp).Fig16()
	if err != nil {
		t.Fatal(err)
	}
	directCtl, _, err := testSuite(clamp).ClauseControl()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Figures[0].CSV(), direct16.CSV(); got != want {
		t.Errorf("fig16 diverged from sequential run:\ncampaign:\n%s\nsequential:\n%s", got, want)
	}
	if got, want := res.Figures[1].CSV(), directCtl.CSV(); got != want {
		t.Errorf("clausectl diverged from sequential run:\ncampaign:\n%s\nsequential:\n%s", got, want)
	}
	if res.Executed != len(p.Units) {
		t.Fatalf("executed %d of %d units with no checkpoint armed", res.Executed, len(p.Units))
	}
}

// TestCampaignCounters checks the campaign.* metric family against the
// plan's own accounting.
func TestCampaignCounters(t *testing.T) {
	s := testSuite(32)
	p := mustPlan(t, s, Options{MaxDomain: 32}, "fig16", "clausectl")
	res, err := p.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Metrics().Snapshot()
	want := map[string]int64{
		"campaign.figures.planned": int64(p.Stats.Figures),
		"campaign.points.planned":  int64(p.Stats.Points),
		"campaign.points.deduped":  int64(p.Stats.DedupedTotal()),
		"campaign.points.fanout":   int64(p.Stats.Points),
		"campaign.units.planned":   int64(len(p.Units)),
		"campaign.units.executed":  int64(res.Executed),
		"campaign.units.completed": int64(res.Executed - res.Failed()),
		"campaign.units.failed":    int64(res.Failed()),
	}
	for name, val := range want {
		if got := snap.Get(name); got != val {
			t.Errorf("%s = %d, want %d", name, got, val)
		}
	}
	if snap.Get("campaign.points.deduped") == 0 {
		t.Error("fig16+clausectl campaign should report dedup")
	}
}

// TestCampaignCheckpointResume kills a campaign mid-flight and resumes
// it: the resumed invocation must restore the finished units from the
// (single, crash-atomic) sweep checkpoint, execute strictly fewer units
// than the plan, and still produce sequential-identical figures.
func TestCampaignCheckpointResume(t *testing.T) {
	const clamp = 64
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")

	victim := testSuite(clamp)
	victim.Workers = 2
	victim.Checkpoint = ckpt
	var launches atomic.Int64
	victim.BeforeLaunch = func() {
		if launches.Add(1) == 6 {
			victim.Interrupt()
		}
	}
	vp := mustPlan(t, victim, Options{MaxDomain: clamp}, "fig16", "clausectl")
	if _, err := vp.Run(victim); !errors.Is(err, core.ErrSweepInterrupted) {
		t.Fatalf("victim campaign: got %v, want ErrSweepInterrupted", err)
	}

	resumed := testSuite(clamp)
	resumed.Checkpoint = ckpt
	rp := mustPlan(t, resumed, Options{MaxDomain: clamp}, "fig16", "clausectl")
	res, err := rp.Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed >= len(rp.Units) {
		t.Fatalf("resume executed all %d units — checkpoint restored nothing", len(rp.Units))
	}

	direct16, _, err := testSuite(clamp).Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if res.Figures[0].CSV() != direct16.CSV() {
		t.Error("resumed campaign fig16 diverged from sequential run")
	}
}

// TestCampaignInterruptPropagates pins the error identity contract.
func TestCampaignInterruptPropagates(t *testing.T) {
	s := testSuite(32)
	s.Workers = 1
	var launches atomic.Int64
	s.BeforeLaunch = func() {
		if launches.Add(1) == 2 {
			s.Interrupt()
		}
	}
	p := mustPlan(t, s, Options{MaxDomain: 32}, "fig16")
	_, err := p.Run(s)
	if !errors.Is(err, core.ErrSweepInterrupted) {
		t.Fatalf("got %v, want core.ErrSweepInterrupted", err)
	}
}

// TestSpecsRejectsBadNames pins the registry's error behavior.
func TestSpecsRejectsBadNames(t *testing.T) {
	s := testSuite(0)
	if _, err := Specs(s, []string{"fig99"}); err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("unknown name: got %v", err)
	}
	if _, err := Specs(s, []string{"fig7", "fig7"}); err == nil || !strings.Contains(err.Error(), "listed twice") {
		t.Fatalf("duplicate name: got %v", err)
	}
}

// TestFigureNamesCoverRegistry keeps the advertised name list in sync.
func TestFigureNamesCoverRegistry(t *testing.T) {
	names := FigureNames()
	if len(names) != len(builders) {
		t.Fatalf("FigureNames lists %d of %d builders", len(names), len(builders))
	}
	s := testSuite(16)
	for _, n := range names {
		if _, err := Specs(s, []string{n}); err != nil {
			t.Errorf("registry name %q does not plan: %v", n, err)
		}
	}
}
