package campaign

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"

	"amdgpubench/internal/core"
	"amdgpubench/internal/report"
)

// Campaign metrics, on the suite's shared registry next to the
// core.sweep.* family:
//
//	campaign.figures.planned  — figures in the plan
//	campaign.points.planned   — figure points before dedup
//	campaign.points.deduped   — cross-figure pipeline executions avoided
//	                            (all three DAG levels; Stats.DedupedTotal)
//	campaign.points.fanout    — figure points served by fanning units out
//	campaign.units.planned    — launch units scheduled
//	campaign.units.executed   — units that actually ran (not restored
//	                            from the campaign checkpoint)
//	campaign.units.completed  — executed units that resolved cleanly
//	campaign.units.failed     — executed units that resolved to a
//	                            failure record

// Result is one executed campaign: per-spec figures and fanned-out runs
// (parallel to Plan.Specs), the raw per-unit runs in scheduled order,
// and the accounting.
type Result struct {
	Figures []*report.Figure
	Runs    [][]core.Run
	// UnitRuns[i] is the run for Plan.Units[i], before fan-out — its Card
	// and X are the representative subscriber's.
	UnitRuns []core.Run
	Stats    Stats
	// Executed counts units that ran this invocation; Scheduled minus
	// Executed were restored from the campaign checkpoint.
	Executed int
	// Scheduled counts the units this invocation was responsible for:
	// every unit when unsharded, the shard's interleaved slice otherwise.
	Scheduled int
	// Shard/Shards record the partition this result covers; 0/1 means
	// the whole campaign.
	Shard, Shards int
}

// Failed counts units that resolved to failure records.
func (r *Result) Failed() int {
	n := 0
	for _, run := range r.UnitRuns {
		if run.Failed() {
			n++
		}
	}
	return n
}

// Run executes the plan on the suite as ONE resilient sweep over the
// deduplicated units, then fans every unit's run back out to its
// subscribing figure points and finishes each spec's figure. Because the
// whole campaign is a single sweep, the suite's checkpoint (when armed)
// is campaign-granular: a kill mid-campaign resumes across figure
// boundaries through the existing crash-atomic save path, and the
// deterministic unit order keeps the sweep signature stable between the
// killed and resumed invocations.
//
// Fan-out copies the unit's run per subscriber, overriding Card and X
// with the subscriber's own coordinates (dedup must not relabel a
// figure's series); failed units fan their failure record out the same
// way, so per-figure failure accounting matches a sequential run. The
// returned error is the sweep's own (fatal pipeline errors, or
// core.ErrSweepInterrupted verbatim so callers can errors.Is on it).
func (p *Plan) Run(s *core.Suite) (*Result, error) {
	return p.runShard(context.Background(), s, 0, 1, nil)
}

// RunCtx is Run bound to a context and an optional progress callback,
// for callers running several campaigns on ONE shared suite — the
// daemon above all. Cancelling ctx interrupts just this campaign's
// sweep (core.ErrSweepInterrupted comes back verbatim), unlike
// Suite.Interrupt which stops every sweep in flight. progress, when
// non-nil, is called from worker goroutines after each executed unit
// resolves, with the cumulative executed and failed unit counts — it
// must be safe for concurrent calls.
func (p *Plan) RunCtx(ctx context.Context, s *core.Suite, progress func(executed, failed int)) (*Result, error) {
	return p.runShard(ctx, s, 0, 1, progress)
}

// RunShard executes one shard of the plan: of the scheduled unit
// sequence, only units with index i%shards == shard run. The shard's
// checkpoint (the suite's, when armed) records its runs at their GLOBAL
// unit indices under the full campaign's signature, so shard files
// merge (core.MergeCheckpoints) into a checkpoint the unsharded run
// restores completely — producing figures byte-identical to a run that
// never sharded. Because one shard holds only a slice of every figure's
// points, RunShard assembles no figures: Result.Figures and Result.Runs
// stay nil, and the caller combines shards through the checkpoint, not
// by stitching partial figures.
func (p *Plan) RunShard(s *core.Suite, shard, shards int) (*Result, error) {
	if shards < 1 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("campaign: shard %d/%d out of range", shard, shards)
	}
	return p.runShard(context.Background(), s, shard, shards, nil)
}

func (p *Plan) runShard(ctx context.Context, s *core.Suite, shard, shards int, progress func(executed, failed int)) (*Result, error) {
	m := s.Metrics()
	m.Counter("campaign.figures.planned").Add(int64(p.Stats.Figures))
	m.Counter("campaign.points.planned").Add(int64(p.Stats.Points))
	m.Counter("campaign.points.deduped").Add(int64(p.Stats.DedupedTotal()))
	m.Counter("campaign.units.planned").Add(int64(len(p.Units)))
	unitsExecuted := m.Counter("campaign.units.executed")
	unitsCompleted := m.Counter("campaign.units.completed")
	unitsFailed := m.Counter("campaign.units.failed")
	fanout := m.Counter("campaign.points.fanout")

	root := s.Tracer.Begin("campaign").Cat("campaign").
		Arg("figures", strconv.Itoa(p.Stats.Figures)).
		Arg("points", strconv.Itoa(p.Stats.Points)).
		Arg("units", strconv.Itoa(len(p.Units))).
		Arg("deduped", strconv.Itoa(p.Stats.DedupedTotal()))
	if shards > 1 {
		root.Arg("shard", fmt.Sprintf("%d/%d", shard, shards))
	}
	defer root.End()

	// Every shard builds the FULL unit list: the sweep signature — hence
	// the checkpoint identity — must cover the whole campaign.
	kps := make([]core.KernelPoint, len(p.Units))
	for i, u := range p.Units {
		kps[i] = u.Point
	}
	scheduled := 0
	for i := range kps {
		if shards <= 1 || i%shards == shard {
			scheduled++
		}
	}

	// The observe hook runs on worker goroutines: counters are atomic and
	// the tracer is concurrency-safe, so no extra locking here. Restored
	// units are never observed, which is exactly what makes
	// campaign.units.executed the "ran this invocation" count.
	var executed, failedUnits atomic.Int64
	observe := func(i int) func(core.Run) {
		executed.Add(1)
		unitsExecuted.Inc()
		u := &p.Units[i]
		sp := s.Tracer.Begin("unit").Cat("campaign").
			Arg("kernel", u.Point.K.Name).
			Arg("card", u.Point.Card.Label()).
			Arg("refs", strconv.Itoa(len(u.Refs)))
		return func(run core.Run) {
			if run.Failed() {
				unitsFailed.Inc()
				failedUnits.Add(1)
			} else {
				unitsCompleted.Inc()
			}
			sp.End()
			if progress != nil {
				progress(int(executed.Load()), int(failedUnits.Load()))
			}
		}
	}

	unitRuns, err := s.RunKernelPointsShardedCtx(ctx, kps, observe, shard, shards)
	if err != nil {
		return nil, err
	}

	res := &Result{
		UnitRuns:  unitRuns,
		Stats:     p.Stats,
		Executed:  int(executed.Load()),
		Scheduled: scheduled,
		Shard:     shard,
		Shards:    shards,
	}
	if shards > 1 {
		// A shard holds only a slice of every figure; figures assemble
		// from the merged checkpoint in the follow-up unsharded run.
		return res, nil
	}
	for si := range p.Specs {
		spec := p.Specs[si].Figure
		figRuns := make([]core.Run, len(spec.Points))
		for pi, pt := range spec.Points {
			run := unitRuns[p.unitOf[si][pi]]
			run.Card = pt.Card
			run.X = pt.X
			figRuns[pi] = run
		}
		fanout.Add(int64(len(figRuns)))
		spec.FinishInto(figRuns)
		res.Figures = append(res.Figures, spec.Fig)
		res.Runs = append(res.Runs, figRuns)
	}
	return res, nil
}
