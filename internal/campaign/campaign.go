// Package campaign is the suite's campaign scheduler: it accepts
// declarative figure specs (core.FigureSpec, the same specs the figure
// methods run one at a time), expands them into a deduplicated DAG of
// work units, schedules the units as one batch on the resilient sweep
// runner, and fans each unit's result back out to every subscribing
// figure point.
//
// The DAG has three levels, mirroring the pipeline's artifact identity:
//
//	kernel units   — one per distinct il.Kernel.Hash (Generate stage)
//	compile units  — one per (kernel hash, arch) (Compile stage)
//	launch units   — one per (kernel hash, arch, walk order, domain):
//	                 the full execution identity of a sweep point, since
//	                 a Run is a deterministic function of exactly those
//	                 coordinates plus the suite's iteration count
//
// Only launch units are scheduled; the kernel and compile levels exist
// because cross-figure sharing mostly happens there (Fig. 8's kernels
// are Fig. 7's compute kernels under a different block shape — a
// different walk order, so a different launch, but the same compiled
// artifact). The plan's dedup statistics count, per level, how many
// pipeline executions the campaign avoids versus running each figure's
// sweep on its own; `campaign.points.deduped` surfaces the total.
//
// Scheduling a campaign as ONE sweep also makes checkpointing campaign-
// granular for free: the whole multi-figure unit sequence runs through a
// single core.Suite sweep, so the existing crash-atomic, quarantining
// JSON checkpoint covers the campaign end to end — there is no second,
// weaker checkpoint writer in this package.
package campaign

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sort"

	"amdgpubench/internal/core"
	"amdgpubench/internal/device"
	"amdgpubench/internal/raster"
)

// Spec is one figure request in a campaign: a display name plus the
// declaratively planned figure. Build specs with the core builders
// (Suite.Fig7Spec, …) or the name registry (Specs).
type Spec struct {
	Name   string
	Figure core.FigureSpec
}

// Options tunes planning.
type Options struct {
	// MaxDomain, when positive, clamps every point's domain to at most
	// MaxDomain x MaxDomain at plan time — before dedup keys and the
	// scheduled order (hence the checkpoint signature) are computed, so a
	// clamped campaign dedups collapsed domains and resumes consistently.
	// Run the plan on a suite with the same MaxDomain; the suite-level
	// clamp is then a no-op.
	MaxDomain int
}

// launchKey is a launch unit's identity: everything a Run deterministically
// depends on besides the suite's iteration count.
type launchKey struct {
	hash  [sha256.Size]byte
	arch  device.Arch
	order raster.Order
	w, h  int
}

// compileKey is a compile unit's identity, matching the pipeline's
// compile-stage artifact key.
type compileKey struct {
	hash [sha256.Size]byte
	arch device.Arch
}

// Ref is one subscribing figure point: Plan.Specs[Spec].Figure.Points[Point].
type Ref struct {
	Spec  int
	Point int
}

// Unit is one deduplicated launch: a representative point (the first
// subscriber, domain clamped) plus every figure point its result fans
// out to.
type Unit struct {
	Point core.KernelPoint
	Refs  []Ref
	key   launchKey
}

// LevelStats summarizes one DAG level.
type LevelStats struct {
	// Unique is the number of distinct units across the whole campaign —
	// what actually executes (launch level) or materializes through the
	// artifact cache (compile/kernel levels).
	Unique int
	// Deduped is the cross-figure saving at this level: the sum over
	// figures of each figure's own distinct units, minus Unique — the
	// executions running the figures sequentially on cold caches would
	// have performed that the campaign provably does not.
	Deduped int
}

// Stats are a plan's headline numbers.
type Stats struct {
	Figures int
	Points  int
	Launch  LevelStats
	Compile LevelStats
	Kernel  LevelStats
}

// DedupedTotal is the cross-figure pipeline executions avoided across
// every DAG level — the value of the campaign.points.deduped counter.
func (st Stats) DedupedTotal() int {
	return st.Launch.Deduped + st.Compile.Deduped + st.Kernel.Deduped
}

// Plan is a scheduled campaign: the input specs, the deduplicated launch
// units in execution order, and the subscription mapping back to figure
// points. A Plan is single-use — Run assembles series into the specs'
// figure templates.
type Plan struct {
	Specs []Spec
	Units []Unit
	Stats Stats
	// unitOf[spec][point] is the scheduled unit serving that figure point.
	unitOf [][]int
}

// specName names spec si for error messages.
func specName(sp Spec, si int) string {
	if sp.Name != "" {
		return sp.Name
	}
	return fmt.Sprintf("spec %d", si)
}

// NewPlan expands specs into a deduplicated, prioritized unit schedule.
// Planning validates every point up front — a nil kernel or an invalid
// compute block fails here, before anything executes.
func NewPlan(specs []Spec, opts Options) (*Plan, error) {
	p := &Plan{Specs: specs, unitOf: make([][]int, len(specs))}
	p.Stats.Figures = len(specs)

	launchIdx := make(map[launchKey]int)
	compileAcross := make(map[compileKey]struct{})
	kernelAcross := make(map[[sha256.Size]byte]struct{})
	launchWithin, compileWithin, kernelWithin := 0, 0, 0

	for si, sp := range specs {
		figLaunch := make(map[launchKey]struct{})
		figCompile := make(map[compileKey]struct{})
		figKernel := make(map[[sha256.Size]byte]struct{})
		p.unitOf[si] = make([]int, len(sp.Figure.Points))
		for pi, pt := range sp.Figure.Points {
			if pt.K == nil {
				return nil, fmt.Errorf("campaign: %s point %d has no kernel", specName(sp, si), pi)
			}
			order, err := pt.Card.Order()
			if err != nil {
				return nil, fmt.Errorf("campaign: %s point %d: %w", specName(sp, si), pi, err)
			}
			w, h := pt.W, pt.H
			if opts.MaxDomain > 0 {
				if w > opts.MaxDomain {
					w = opts.MaxDomain
				}
				if h > opts.MaxDomain {
					h = opts.MaxDomain
				}
			}
			sum := pt.K.Hash()
			lk := launchKey{hash: sum, arch: pt.Card.Arch, order: order, w: w, h: h}
			ui, ok := launchIdx[lk]
			if !ok {
				ui = len(p.Units)
				launchIdx[lk] = ui
				rep := pt
				rep.W, rep.H = w, h
				p.Units = append(p.Units, Unit{Point: rep, key: lk})
			}
			p.Units[ui].Refs = append(p.Units[ui].Refs, Ref{Spec: si, Point: pi})
			p.unitOf[si][pi] = ui

			ck := compileKey{hash: sum, arch: pt.Card.Arch}
			figLaunch[lk] = struct{}{}
			figCompile[ck] = struct{}{}
			figKernel[sum] = struct{}{}
			compileAcross[ck] = struct{}{}
			kernelAcross[sum] = struct{}{}
			p.Stats.Points++
		}
		launchWithin += len(figLaunch)
		compileWithin += len(figCompile)
		kernelWithin += len(figKernel)
	}

	p.Stats.Launch = LevelStats{Unique: len(p.Units), Deduped: launchWithin - len(p.Units)}
	p.Stats.Compile = LevelStats{Unique: len(compileAcross), Deduped: compileWithin - len(compileAcross)}
	p.Stats.Kernel = LevelStats{Unique: len(kernelAcross), Deduped: kernelWithin - len(kernelAcross)}

	p.prioritize()
	return p, nil
}

// prioritize fixes the execution order: most-subscribed units first (a
// shared unit's failure poisons several figures, so surface it early —
// and the most-reused compile artifacts warm the cache first), then
// arch-major batches for device-context locality, then a total
// deterministic order over the remaining key fields. Determinism is
// load-bearing, not cosmetic: the scheduled sequence is what the
// campaign checkpoint signature fingerprints, so replanning the same
// specs must reproduce the same order for a resume to attach.
func (p *Plan) prioritize() {
	idx := make([]int, len(p.Units))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		return unitLess(p.Units[idx[x]], p.Units[idx[y]])
	})
	perm := make([]int, len(idx))
	units := make([]Unit, len(idx))
	for newi, oldi := range idx {
		perm[oldi] = newi
		units[newi] = p.Units[oldi]
	}
	p.Units = units
	for si := range p.unitOf {
		for pi := range p.unitOf[si] {
			p.unitOf[si][pi] = perm[p.unitOf[si][pi]]
		}
	}
}

// unitLess is the scheduling priority. Launch keys are unique per unit,
// so this is a strict total order.
func unitLess(a, b Unit) bool {
	if len(a.Refs) != len(b.Refs) {
		return len(a.Refs) > len(b.Refs)
	}
	if a.key.arch != b.key.arch {
		return a.key.arch < b.key.arch
	}
	if c := bytes.Compare(a.key.hash[:], b.key.hash[:]); c != 0 {
		return c < 0
	}
	if a.key.order.Mode != b.key.order.Mode {
		return a.key.order.Mode < b.key.order.Mode
	}
	if a.key.order.BlockW != b.key.order.BlockW {
		return a.key.order.BlockW < b.key.order.BlockW
	}
	if a.key.order.BlockH != b.key.order.BlockH {
		return a.key.order.BlockH < b.key.order.BlockH
	}
	if a.key.w != b.key.w {
		return a.key.w < b.key.w
	}
	return a.key.h < b.key.h
}

// UnitOf returns the scheduled unit index serving spec si's point pi.
func (p *Plan) UnitOf(si, pi int) int { return p.unitOf[si][pi] }

// Shared reports how many of spec si's points ride units that another
// spec also subscribes to.
func (p *Plan) Shared(si int) int {
	n := 0
	for _, ui := range p.unitOf[si] {
		for _, r := range p.Units[ui].Refs {
			if r.Spec != si {
				n++
				break
			}
		}
	}
	return n
}
