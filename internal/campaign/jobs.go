package campaign

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"amdgpubench/internal/core"
	"amdgpubench/internal/device"
	"amdgpubench/internal/obs"
	"amdgpubench/internal/report"
	"amdgpubench/internal/sim"
)

// The job registry: the daemon-facing face of the scheduler. A Request
// is what a client POSTs; Jobs validates and plans it synchronously
// (bad requests fail before anything runs), executes the plan on the
// ONE shared suite in a goroutine, and tracks it under a job ID for
// status polling, figure retrieval and cancellation. Everything that
// makes the daemon's multiplexing work is already below this layer: the
// pipeline's content-addressed stores dedup artifacts ACROSS concurrent
// jobs (two clients sweeping overlapping figures compile and simulate
// shared points once), and per-job contexts cancel one campaign without
// touching its neighbors (Plan.RunCtx / RunKernelPointsShardedCtx).
//
// Job metrics, on the suite's shared registry:
//
//	campaign.jobs.submitted — accepted requests
//	campaign.jobs.completed — jobs that finished cleanly
//	campaign.jobs.failed    — jobs that died on a fatal sweep error
//	campaign.jobs.cancelled — jobs stopped by Cancel
//	campaign.jobs.running   — gauge of in-flight jobs

// Request is one campaign submission.
type Request struct {
	// Figs names the figures to run, in output order; trailing-'*' globs
	// expand as in `amdmb campaign -figs`.
	Figs []string `json:"figs"`
	// Archs, when non-empty, restricts every figure to the named
	// architectures ("RV770" or the card name "4870", case-insensitive).
	// Figures whose series assembly is positional (trans, blocks,
	// consts, hier-*) reject filtering rather than mislabel series.
	Archs []string `json:"archs,omitempty"`
	// MaxDomain, when positive, clamps every sweep domain to at most
	// MaxDomain x MaxDomain at plan time. The daemon may impose a
	// tighter ceiling of its own.
	MaxDomain int `json:"max_domain,omitempty"`
	// Iterations must be zero or equal to the daemon's fixed iteration
	// count: iterations feed every sweep signature and simulate key, so
	// one shared suite runs one iteration setting.
	Iterations int `json:"iterations,omitempty"`
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// JobStatus is one job's externally visible state — what the daemon
// serializes for GET /v1/campaigns/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Figs  []string `json:"figs"`
	Error string   `json:"error,omitempty"`
	// Units is the deduplicated launch-unit count; Executed and
	// FailedUnits advance live while the job runs.
	Units       int `json:"units"`
	Executed    int `json:"executed"`
	FailedUnits int `json:"failed_units"`
	// Deduped is the plan's cross-figure dedup total (see Stats).
	Deduped int `json:"deduped"`
}

// Job is one submitted campaign. Fields set at submit time (id, figs,
// plan) are immutable; the mutable state lives behind the registry's
// lock.
type Job struct {
	id   string
	figs []string // expanded figure names, output order
	plan *Plan

	cancel context.CancelFunc
	done   chan struct{} // closed when the run goroutine exits

	mu        sync.Mutex
	state     JobState
	err       string
	executed  int
	failedU   int
	cancelReq bool
	figures   map[string]*report.Figure // by figure name, when done
}

// ID returns the job's registry key.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:          j.id,
		State:       j.state,
		Figs:        append([]string(nil), j.figs...),
		Error:       j.err,
		Units:       len(j.plan.Units),
		Executed:    j.executed,
		FailedUnits: j.failedU,
		Deduped:     j.plan.Stats.DedupedTotal(),
	}
}

// Figure returns the named finished figure. ok is false until the job
// is done (figures assemble only from a complete unit set) or when the
// name is not part of the job.
func (j *Job) Figure(name string) (*report.Figure, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	fig, ok := j.figures[name]
	return fig, ok
}

// Jobs is the registry: a shared suite plus every job submitted to it.
type Jobs struct {
	suite *core.Suite

	submitted *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	cancelled *obs.Counter
	running   *obs.Gauge

	mu   sync.Mutex
	seq  int
	jobs map[string]*Job
}

// NewJobs builds a registry around the shared suite.
func NewJobs(s *core.Suite) *Jobs {
	m := s.Metrics()
	return &Jobs{
		suite:     s,
		submitted: m.Counter("campaign.jobs.submitted"),
		completed: m.Counter("campaign.jobs.completed"),
		failed:    m.Counter("campaign.jobs.failed"),
		cancelled: m.Counter("campaign.jobs.cancelled"),
		running:   m.Gauge("campaign.jobs.running"),
		jobs:      make(map[string]*Job),
	}
}

// noArchFilter lists figures whose Finish assembles series by point
// POSITION (parallel label slices, per-index converters): dropping
// points would relabel the survivors, so these reject Archs filtering.
// Figures assembled card-major from the runs themselves (AssembleSeries
// and the register-usage re-key) filter safely.
var noArchFilter = map[string]bool{
	"trans":       true,
	"blocks":      true,
	"consts":      true,
	"hier-lat":    true,
	"hier-wset":   true,
	"hier-line":   true,
	"hier-stride": true,
}

// effectiveIterations maps the zero value to the paper's default, so a
// client naming the default explicitly matches a daemon left on it.
func effectiveIterations(n int) int {
	if n == 0 {
		return sim.DefaultIterations
	}
	return n
}

// parseArchs resolves request arch names against the device table.
func parseArchs(names []string) (map[device.Arch]bool, error) {
	if len(names) == 0 {
		return nil, nil
	}
	set := make(map[device.Arch]bool, len(names))
	for _, name := range names {
		found := false
		for _, spec := range device.All() {
			if strings.EqualFold(name, spec.Arch.String()) || name == spec.Arch.CardName() {
				set[spec.Arch] = true
				found = true
				break
			}
		}
		if !found {
			var known []string
			for _, spec := range device.All() {
				known = append(known, spec.Arch.String())
			}
			sort.Strings(known)
			return nil, fmt.Errorf("campaign: unknown arch %q (have %s)", name, strings.Join(known, ", "))
		}
	}
	return set, nil
}

// filterSpecs restricts every figure to the requested architectures.
func filterSpecs(specs []Spec, archs map[device.Arch]bool) ([]Spec, error) {
	if archs == nil {
		return specs, nil
	}
	out := make([]Spec, len(specs))
	for i, sp := range specs {
		if noArchFilter[sp.Name] {
			return nil, fmt.Errorf("campaign: figure %q assembles series positionally and cannot be arch-filtered", sp.Name)
		}
		kept := sp.Figure.Points[:0:0]
		for _, pt := range sp.Figure.Points {
			if archs[pt.Card.Arch] {
				kept = append(kept, pt)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("campaign: arch filter leaves figure %q with no points", sp.Name)
		}
		sp.Figure.Points = kept
		out[i] = sp
	}
	return out, nil
}

// Submit validates, plans and launches a request. Validation and
// planning run synchronously — an unknown figure, a bad arch, an
// iteration mismatch or an empty filter result all fail here, before
// the job exists — and the sweep itself starts in a goroutine. The
// returned job is already registered and running.
func (js *Jobs) Submit(req Request) (*Job, error) {
	if len(req.Figs) == 0 {
		return nil, errors.New("campaign: request names no figures")
	}
	if have := effectiveIterations(js.suite.Iterations); req.Iterations != 0 && effectiveIterations(req.Iterations) != have {
		return nil, fmt.Errorf("campaign: iterations %d unavailable: this service runs iterations=%d (iteration count is part of every cache identity, so one shared suite runs exactly one setting)",
			req.Iterations, have)
	}
	if req.MaxDomain < 0 {
		return nil, fmt.Errorf("campaign: negative max_domain %d", req.MaxDomain)
	}
	var names []string
	for _, n := range req.Figs {
		n = strings.ToLower(strings.TrimSpace(n))
		if n == "" {
			continue
		}
		if !strings.HasSuffix(n, "*") && !Known(n) {
			return nil, fmt.Errorf("campaign: unknown figure %q (have %s)", n, strings.Join(FigureNames(), ", "))
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, errors.New("campaign: request names no figures")
	}
	names, err := Expand(names)
	if err != nil {
		return nil, err
	}
	archs, err := parseArchs(req.Archs)
	if err != nil {
		return nil, err
	}
	specs, err := Specs(js.suite, names)
	if err != nil {
		return nil, err
	}
	specs, err = filterSpecs(specs, archs)
	if err != nil {
		return nil, err
	}
	plan, err := NewPlan(specs, Options{MaxDomain: req.MaxDomain})
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		figs:   names,
		plan:   plan,
		cancel: cancel,
		done:   make(chan struct{}),
		state:  JobRunning,
	}
	js.mu.Lock()
	js.seq++
	j.id = fmt.Sprintf("c%06d", js.seq)
	js.jobs[j.id] = j
	js.mu.Unlock()
	js.submitted.Inc()
	js.running.Add(1)

	go js.run(ctx, j)
	return j, nil
}

// run executes one job's plan to completion and records the outcome.
func (js *Jobs) run(ctx context.Context, j *Job) {
	defer close(j.done)
	defer js.running.Add(-1)
	res, err := j.plan.RunCtx(ctx, js.suite, func(executed, failed int) {
		j.mu.Lock()
		j.executed, j.failedU = executed, failed
		j.mu.Unlock()
	})
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		j.state = JobDone
		j.figures = make(map[string]*report.Figure, len(res.Figures))
		for i, fig := range res.Figures {
			j.figures[j.plan.Specs[i].Name] = fig
		}
		js.completed.Inc()
	case errors.Is(err, core.ErrSweepInterrupted) && j.cancelReq:
		j.state = JobCancelled
		j.err = "cancelled"
		js.cancelled.Inc()
	default:
		j.state = JobFailed
		j.err = err.Error()
		js.failed.Inc()
	}
}

// Get returns a registered job.
func (js *Jobs) Get(id string) (*Job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	return j, ok
}

// List snapshots every job's status, newest first.
func (js *Jobs) List() []JobStatus {
	js.mu.Lock()
	jobs := make([]*Job, 0, len(js.jobs))
	for _, j := range js.jobs {
		jobs = append(jobs, j)
	}
	js.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID > out[b].ID })
	return out
}

// Cancel interrupts a running job's sweep; the job settles to
// JobCancelled once its in-flight points drain. Cancelling a finished
// or already-cancelled job reports false.
func (js *Jobs) Cancel(id string) bool {
	j, ok := js.Get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	if j.state != JobRunning {
		j.mu.Unlock()
		return false
	}
	j.cancelReq = true
	j.mu.Unlock()
	j.cancel()
	return true
}
