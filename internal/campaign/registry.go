package campaign

import (
	"fmt"
	"sort"
	"strings"

	"amdgpubench/internal/core"
	"amdgpubench/internal/device"
	"amdgpubench/internal/hier"
)

// The name registry maps the CLI's figure names to their spec builders,
// with the same canonical configurations cmd/amdmb's per-figure
// experiments use — `amdmb campaign -figs fig7,fig8` must plan exactly
// the sweeps `amdmb fig7 fig8` would run.

// Builder plans one figure on a suite.
type Builder func(*core.Suite) (core.FigureSpec, error)

var builders = map[string]Builder{
	"fig7":      (*core.Suite).Fig7Spec,
	"fig8":      (*core.Suite).Fig8Spec,
	"fig9":      (*core.Suite).Fig9Spec,
	"fig10":     (*core.Suite).Fig10Spec,
	"fig11":     (*core.Suite).Fig11Spec,
	"fig12":     (*core.Suite).Fig12Spec,
	"fig13":     (*core.Suite).Fig13Spec,
	"fig14":     (*core.Suite).Fig14Spec,
	"fig15a":    (*core.Suite).Fig15PixelSpec,
	"fig15b":    (*core.Suite).Fig15ComputeSpec,
	"fig16":     (*core.Suite).Fig16Spec,
	"fig17":     (*core.Suite).Fig17Spec,
	"clausectl": (*core.Suite).ClauseControlSpec,
	"trans": func(s *core.Suite) (core.FigureSpec, error) {
		return s.TransThroughputSpec(core.TransThroughputConfig{Arch: device.RV770})
	},
	"blocks": func(s *core.Suite) (core.FigureSpec, error) {
		return s.BlockSizeSpec(core.BlockSizeConfig{})
	},
	"consts": func(s *core.Suite) (core.FigureSpec, error) {
		return s.ConstantsSpec(core.ConstantsConfig{Arch: device.RV770})
	},
	"hier-lat":    hier.LatencyLadderSpec,
	"hier-wset":   hier.WorkingSetSpec,
	"hier-line":   hier.LineBlendSpec,
	"hier-stride": hier.StrideResonanceSpec,
}

// Known reports whether Specs accepts the name.
func Known(name string) bool {
	_, ok := builders[name]
	return ok
}

// FigureNames lists every name Specs accepts, sorted.
func FigureNames() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Expand resolves glob names: a trailing '*' matches every known
// figure with the prefix, in sorted order ("hier-*" plans the whole
// hierarchy dissection). Matches a glob already produced are not
// repeated; a glob matching nothing is an error. Non-glob names pass
// through untouched.
func Expand(names []string) ([]string, error) {
	var out []string
	emitted := make(map[string]bool, len(names))
	for _, name := range names {
		if !strings.HasSuffix(name, "*") {
			out = append(out, name)
			emitted[name] = true
			continue
		}
		prefix := strings.TrimSuffix(name, "*")
		matched := false
		for _, known := range FigureNames() {
			if strings.HasPrefix(known, prefix) {
				matched = true
				if !emitted[known] {
					out = append(out, known)
					emitted[known] = true
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("campaign: glob %q matches no figure (have %s)", name, strings.Join(FigureNames(), ", "))
		}
	}
	return out, nil
}

// Specs plans the named figures on the suite, in the order given,
// expanding trailing-'*' globs first. An unknown name fails with the
// accepted names listed; duplicates fail too — the scheduler fans one
// result out to many figures, but two copies of the same figure in one
// campaign is almost certainly a typo.
func Specs(s *core.Suite, names []string) ([]Spec, error) {
	names, err := Expand(names)
	if err != nil {
		return nil, err
	}
	specs := make([]Spec, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		b, ok := builders[name]
		if !ok {
			return nil, fmt.Errorf("campaign: unknown figure %q (have %s)", name, strings.Join(FigureNames(), ", "))
		}
		if seen[name] {
			return nil, fmt.Errorf("campaign: figure %q listed twice", name)
		}
		seen[name] = true
		fig, err := b(s)
		if err != nil {
			return nil, fmt.Errorf("campaign: planning %s: %w", name, err)
		}
		specs = append(specs, Spec{Name: name, Figure: fig})
	}
	return specs, nil
}
