package campaign

import (
	"fmt"
	"io"
	"strings"
)

// RenderPlan writes the human-readable dry-run: the dedup summary, one
// line per figure, and the full scheduled unit listing. The rendering is
// deterministic (the plan is), so `amdmb campaign -plan` output is
// golden-pinned in cmd/amdmb's tests — change the format and the golden
// together.
func RenderPlan(w io.Writer, p *Plan) {
	st := p.Stats
	fmt.Fprintf(w, "campaign plan: %d figures, %d points\n", st.Figures, st.Points)
	fmt.Fprintf(w, "  launch units:  %4d scheduled   %4d deduped across figures\n", st.Launch.Unique, st.Launch.Deduped)
	fmt.Fprintf(w, "  compile units: %4d distinct    %4d deduped across figures\n", st.Compile.Unique, st.Compile.Deduped)
	fmt.Fprintf(w, "  kernel units:  %4d distinct    %4d deduped across figures\n", st.Kernel.Unique, st.Kernel.Deduped)
	fmt.Fprintf(w, "  dedup savings: %d pipeline executions avoided vs sequential figures\n", st.DedupedTotal())
	fmt.Fprintln(w, "figures:")
	for si, sp := range p.Specs {
		fmt.Fprintf(w, "  %-10s %4d points, %4d on shared units\n",
			sp.Name, len(sp.Figure.Points), p.Shared(si))
	}
	fmt.Fprintln(w, "schedule:")
	for i, u := range p.Units {
		sum := u.Point.K.Hash()
		fmt.Fprintf(w, "  %04d refs=%d kernel=%s hash=%x card=%q x=%g domain=%dx%d subs=%s\n",
			i, len(u.Refs), u.Point.K.Name, sum[:8], u.Point.Card.Label(),
			u.Point.X, u.Point.W, u.Point.H, p.subs(u))
	}
}

// subs renders a unit's subscribers as name[point] terms.
func (p *Plan) subs(u Unit) string {
	terms := make([]string, len(u.Refs))
	for i, r := range u.Refs {
		terms[i] = fmt.Sprintf("%s[%d]", specName(p.Specs[r.Spec], r.Spec), r.Point)
	}
	return strings.Join(terms, ",")
}
