package interp

import (
	"testing"

	"amdgpubench/internal/il"
	"amdgpubench/internal/isa"
)

func env() Env {
	return Env{W: 8, H: 8, Input: func(res, x, y, l int) float32 {
		return float32(res*100+y*8+x) + float32(l)*0.25
	}}
}

func TestRunILSumChain(t *testing.T) {
	k := &il.Kernel{
		Name: "sum3", Mode: il.Pixel, Type: il.Float,
		NumInputs: 3, NumOutputs: 1,
		Code: []il.Instr{
			{Op: il.OpSample, Dst: 0, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0},
			{Op: il.OpSample, Dst: 1, SrcA: il.NoReg, SrcB: il.NoReg, Res: 1},
			{Op: il.OpSample, Dst: 2, SrcA: il.NoReg, SrcB: il.NoReg, Res: 2},
			{Op: il.OpAdd, Dst: 3, SrcA: 0, SrcB: 1, Res: -1},
			{Op: il.OpAdd, Dst: 4, SrcA: 3, SrcB: 2, Res: -1},
			{Op: il.OpExport, Dst: il.NoReg, SrcA: 4, SrcB: il.NoReg, Res: 0},
		},
	}
	out, err := RunIL(k, env(), Thread{X: 2, Y: 3})
	if err != nil {
		t.Fatal(err)
	}
	// inputs at (2,3): 26, 126, 226 -> 378.
	if got := out[0][0]; got != 378 {
		t.Fatalf("output = %v, want 378", got)
	}
}

func TestRunILMulMov(t *testing.T) {
	k := &il.Kernel{
		Name: "mm", Mode: il.Pixel, Type: il.Float4,
		NumInputs: 2, NumOutputs: 1,
		Code: []il.Instr{
			{Op: il.OpSample, Dst: 0, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0},
			{Op: il.OpSample, Dst: 1, SrcA: il.NoReg, SrcB: il.NoReg, Res: 1},
			{Op: il.OpMul, Dst: 2, SrcA: 0, SrcB: 1, Res: -1},
			{Op: il.OpMov, Dst: 3, SrcA: 2, SrcB: il.NoReg, Res: -1},
			{Op: il.OpExport, Dst: il.NoReg, SrcA: 3, SrcB: il.NoReg, Res: 0},
		},
	}
	out, err := RunIL(k, env(), Thread{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 4; l++ {
		a := float32(0) + float32(l)*0.25
		b := float32(100) + float32(l)*0.25
		if out[0][l] != a*b {
			t.Errorf("lane %d = %v, want %v", l, out[0][l], a*b)
		}
	}
}

func TestRunILRejectsInvalidKernel(t *testing.T) {
	k := &il.Kernel{Name: "bad", NumInputs: 0, NumOutputs: 0}
	if _, err := RunIL(k, env(), Thread{}); err == nil {
		t.Fatal("invalid kernel executed")
	}
}

// handISA builds a small program by hand to pin PV/PS/temp semantics.
func handISA() *isa.Program {
	g := func(i, c int) isa.Operand { return isa.Operand{Kind: isa.KGPR, Index: i, Chan: c} }
	return &isa.Program{
		Name: "hand", Mode: il.Pixel, Type: il.Float, GPRCount: 3,
		Clauses: []isa.Clause{
			{Kind: isa.ClauseTEX, Fetches: []isa.Fetch{
				{Dst: 1, Coord: 0, Resource: 0, ElemBytes: 4},
				{Dst: 2, Coord: 0, Resource: 1, ElemBytes: 4},
			}},
			{Kind: isa.ClauseALU, Bundles: []isa.Bundle{
				// b0: x: ADD ____(PV.x) = R1.x + R2.x ; t: MUL PS = R1.x * R2.x
				{Ops: []isa.ScalarOp{
					{Slot: isa.SlotX, Op: isa.AAdd, Dst: isa.Operand{Kind: isa.KNone}, Src0: g(1, 0), Src1: g(2, 0)},
					{Slot: isa.SlotT, Op: isa.AMul, Dst: isa.Operand{Kind: isa.KNone}, Src0: g(1, 0), Src1: g(2, 0)},
				}},
				// b1: x: ADD T0.x = PV.x + PS
				{Ops: []isa.ScalarOp{
					{Slot: isa.SlotX, Op: isa.AAdd,
						Dst:  isa.Operand{Kind: isa.KTemp, Index: 0, Chan: 0},
						Src0: isa.Operand{Kind: isa.KPV, Chan: 0},
						Src1: isa.Operand{Kind: isa.KPS}},
				}},
				// b2: x: MOV R1.x = T0.x
				{Ops: []isa.ScalarOp{
					{Slot: isa.SlotX, Op: isa.AMov, Dst: g(1, 0), Src0: isa.Operand{Kind: isa.KTemp, Index: 0, Chan: 0}},
				}},
			}},
			{Kind: isa.ClauseEXP, Exports: []isa.Export{{Target: 0, Src: 1, ElemBytes: 4}}},
		},
	}
}

func TestRunISAPVPSAndTemps(t *testing.T) {
	out, err := RunISA(handISA(), env(), Thread{X: 1, Y: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := float32(9)   // input 0 at (1,1)
	b := float32(109) // input 1 at (1,1)
	want := (a + b) + a*b
	if out[0][0] != want {
		t.Fatalf("output = %v, want %v", out[0][0], want)
	}
}

func TestRunISACoordinatePreload(t *testing.T) {
	// A program that exports R0 directly must produce the thread coords.
	p := &isa.Program{
		Name: "coords", Mode: il.Pixel, Type: il.Float4, GPRCount: 1,
		Clauses: []isa.Clause{
			{Kind: isa.ClauseEXP, Exports: []isa.Export{{Target: 0, Src: 0, ElemBytes: 16}}},
		},
	}
	out, err := RunISA(p, env(), Thread{X: 5, Y: 7})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 5 || out[0][1] != 7 {
		t.Fatalf("coordinate register = %v, want [5 7 ...]", out[0])
	}
}

func TestRunISAClauseTempsDoNotSurviveClauses(t *testing.T) {
	// Write T0 in one clause, read it in the next: the value must be
	// gone (cleared to zero), because clause temporaries are only live
	// inside their clause (Section II-A of the paper).
	g := func(i, c int) isa.Operand { return isa.Operand{Kind: isa.KGPR, Index: i, Chan: c} }
	tmp := isa.Operand{Kind: isa.KTemp, Index: 0, Chan: 0}
	p := &isa.Program{
		Name: "tdeath", Mode: il.Pixel, Type: il.Float, GPRCount: 2,
		Clauses: []isa.Clause{
			{Kind: isa.ClauseTEX, Fetches: []isa.Fetch{{Dst: 1, Coord: 0, Resource: 0, ElemBytes: 4}}},
			{Kind: isa.ClauseALU, Bundles: []isa.Bundle{
				{Ops: []isa.ScalarOp{{Slot: isa.SlotX, Op: isa.AMov, Dst: tmp, Src0: g(1, 0)}}},
			}},
			// A TEX clause interrupts, ending the ALU clause.
			{Kind: isa.ClauseTEX, Fetches: []isa.Fetch{{Dst: 0, Coord: 0, Resource: 0, ElemBytes: 4}}},
			{Kind: isa.ClauseALU, Bundles: []isa.Bundle{
				{Ops: []isa.ScalarOp{{Slot: isa.SlotX, Op: isa.AMov, Dst: g(1, 0), Src0: tmp}}},
			}},
			{Kind: isa.ClauseEXP, Exports: []isa.Export{{Target: 0, Src: 1, ElemBytes: 4}}},
		},
	}
	out, err := RunISA(p, env(), Thread{X: 3, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 0 {
		t.Fatalf("clause temp survived a clause boundary: output = %v", out[0][0])
	}
}

func TestRunISAOutOfRangeGPR(t *testing.T) {
	p := handISA()
	p.GPRCount = 1 // fetches write R1/R2 which no longer exist
	if _, err := RunISA(p, env(), Thread{}); err == nil {
		t.Fatal("out-of-range GPR accepted")
	}
}

func TestOutputsEqual(t *testing.T) {
	a := map[int]Vec4{0: {1, 2, 3, 4}}
	b := map[int]Vec4{0: {1, 9, 9, 9}}
	if !OutputsEqual(a, b, 1) {
		t.Error("lane-0 comparison should match")
	}
	if OutputsEqual(a, b, 4) {
		t.Error("4-lane comparison should differ")
	}
	if OutputsEqual(a, map[int]Vec4{}, 1) {
		t.Error("size mismatch should differ")
	}
	if OutputsEqual(a, map[int]Vec4{1: {1}}, 1) {
		t.Error("key mismatch should differ")
	}
}
