package interp

// Edge cases promoted from fuzzing. FuzzCompileDifferential (in
// internal/conformance) drives the two interpreters with generated
// kernels; the shapes below are the interpreter-level behaviours those
// runs depend on but that no compiled program happens to pin directly —
// operand-class rejection, co-issue read-before-write semantics, the
// forwarding network's channel mapping, and bitwise NaN/Inf comparison.

import (
	"math"
	"testing"

	"amdgpubench/internal/il"
	"amdgpubench/internal/isa"
)

func flatEnv(v float32) Env {
	return Env{
		W: 4, H: 4,
		Input: func(res, x, y, l int) float32 { return v },
	}
}

func oneBundleProg(gprs int, ops ...isa.ScalarOp) *isa.Program {
	return &isa.Program{
		Name: "edge", Mode: il.Pixel, Type: il.Float, GPRCount: gprs,
		Clauses: []isa.Clause{{Kind: isa.ClauseALU, Bundles: []isa.Bundle{{Ops: ops}}}},
	}
}

// TestRunISARejectsBadOperands: Validate only checks structure, so the
// interpreter itself must reject operand storage the hardware has no
// read or write port for. The fuzzer found each of these reachable
// through hand-built (not compiler-built) programs.
func TestRunISARejectsBadOperands(t *testing.T) {
	g := func(idx, ch int) isa.Operand { return isa.Operand{Kind: isa.KGPR, Index: idx, Chan: ch} }
	cases := []struct {
		name string
		prog *isa.Program
	}{
		{"read GPR beyond count", oneBundleProg(2,
			isa.ScalarOp{Slot: isa.SlotX, Op: isa.AMov, Dst: g(1, 0), Src0: g(7, 0)})},
		{"write GPR beyond count", oneBundleProg(2,
			isa.ScalarOp{Slot: isa.SlotX, Op: isa.AMov, Dst: g(7, 0), Src0: g(0, 0)})},
		{"read clause temp T2", oneBundleProg(2,
			isa.ScalarOp{Slot: isa.SlotX, Op: isa.AMov, Dst: g(1, 0), Src0: isa.Operand{Kind: isa.KTemp, Index: 2}})},
		{"write clause temp T2", oneBundleProg(2,
			isa.ScalarOp{Slot: isa.SlotX, Op: isa.AMov, Dst: isa.Operand{Kind: isa.KTemp, Index: 2}, Src0: g(0, 0)})},
		{"write to PV", oneBundleProg(2,
			isa.ScalarOp{Slot: isa.SlotX, Op: isa.AMov, Dst: isa.Operand{Kind: isa.KPV}, Src0: g(0, 0)})},
		{"write to constant file", oneBundleProg(2,
			isa.ScalarOp{Slot: isa.SlotX, Op: isa.AMov, Dst: isa.Operand{Kind: isa.KConst}, Src0: g(0, 0)})},
		{"fetch beyond GPR count", &isa.Program{
			Mode: il.Pixel, Type: il.Float, GPRCount: 2,
			Clauses: []isa.Clause{{Kind: isa.ClauseTEX, Fetches: []isa.Fetch{{Dst: 5}}}},
		}},
		{"export beyond GPR count", &isa.Program{
			Mode: il.Pixel, Type: il.Float, GPRCount: 2,
			Clauses: []isa.Clause{{Kind: isa.ClauseEXP, Exports: []isa.Export{{Src: 5}}}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.prog.Validate(); err != nil {
				t.Fatalf("fixture must pass structural validation: %v", err)
			}
			if _, err := RunISA(tc.prog, flatEnv(1), Thread{}); err == nil {
				t.Error("RunISA accepted a program with an illegal operand")
			}
		})
	}
}

// TestCoIssueReadsPreBundleState: all slots in a bundle read register
// state from before the bundle, so a two-MOV swap works without a
// temporary — the co-issue semantics the compiler's PV forwarding
// depends on.
func TestCoIssueReadsPreBundleState(t *testing.T) {
	g := func(idx, ch int) isa.Operand { return isa.Operand{Kind: isa.KGPR, Index: idx, Chan: ch} }
	p := &isa.Program{
		Name: "swap", Mode: il.Pixel, Type: il.Float, GPRCount: 3,
		Clauses: []isa.Clause{
			{Kind: isa.ClauseALU, Bundles: []isa.Bundle{{Ops: []isa.ScalarOp{
				{Slot: isa.SlotX, Op: isa.AMov, Dst: g(1, 0), Src0: g(2, 0)},
				{Slot: isa.SlotY, Op: isa.AMov, Dst: g(2, 0), Src0: g(1, 0)},
			}}}},
			{Kind: isa.ClauseEXP, Exports: []isa.Export{{Target: 0, Src: 1}, {Target: 1, Src: 2}}},
		},
	}
	// Pre-load via a fetch clause would overwrite both; instead use the
	// coordinate preload (R0 = x,y) and MOVs in a prior bundle.
	p.Clauses = append([]isa.Clause{{Kind: isa.ClauseALU, Bundles: []isa.Bundle{{Ops: []isa.ScalarOp{
		{Slot: isa.SlotX, Op: isa.AMov, Dst: g(1, 0), Src0: g(0, 0)}, // R1.x = x = 3
		{Slot: isa.SlotY, Op: isa.AMov, Dst: g(2, 0), Src0: g(0, 1)}, // R2.x = y = 9
	}}}}}, p.Clauses...)
	out, err := RunISA(p, flatEnv(0), Thread{X: 3, Y: 9})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 9 || out[1][0] != 3 {
		t.Errorf("swap failed: got R1=%v R2=%v, want 9 and 3", out[0][0], out[1][0])
	}
}

// TestPVChannelFollowsSlot: the PV register's channel is the issuing
// slot, not the destination operand — a z-slot op is readable as PV.z
// even when its architectural destination was R5.x.
func TestPVChannelFollowsSlot(t *testing.T) {
	g := func(idx, ch int) isa.Operand { return isa.Operand{Kind: isa.KGPR, Index: idx, Chan: ch} }
	p := &isa.Program{
		Name: "pvchan", Mode: il.Pixel, Type: il.Float, GPRCount: 3,
		Clauses: []isa.Clause{
			{Kind: isa.ClauseALU, Bundles: []isa.Bundle{
				{Ops: []isa.ScalarOp{
					{Slot: isa.SlotZ, Op: isa.AAdd, Dst: g(1, 0), Src0: g(0, 0), Src1: g(0, 1)},
				}},
				{Ops: []isa.ScalarOp{
					{Slot: isa.SlotX, Op: isa.AMov, Dst: g(2, 0), Src0: isa.Operand{Kind: isa.KPV, Chan: 2}},
				}},
			}},
			{Kind: isa.ClauseEXP, Exports: []isa.Export{{Target: 0, Src: 2}}},
		},
	}
	out, err := RunISA(p, flatEnv(0), Thread{X: 4, Y: 6})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 10 {
		t.Errorf("PV.z read %v, want 10 (= x + y)", out[0][0])
	}
}

// TestTranscendentalSpecials: rcp(0) and rsq(negative) produce Inf/NaN;
// both interpreters must agree bitwise so the differential oracle's
// OutputsEqual does not flag correct compilations of degenerate math.
func TestTranscendentalSpecials(t *testing.T) {
	mk := func(op il.Opcode) *il.Kernel {
		return &il.Kernel{
			Name: "special", Mode: il.Pixel, Type: il.Float,
			NumInputs: 1, NumOutputs: 1,
			InputSpace: il.TextureSpace, OutSpace: il.TextureSpace,
			Code: []il.Instr{
				{Op: il.OpSample, Dst: 0, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0},
				{Op: op, Dst: 1, SrcA: 0, SrcB: il.NoReg, Res: -1},
				{Op: il.OpExport, Dst: il.NoReg, SrcA: 1, SrcB: il.NoReg, Res: 0},
			},
		}
	}
	cases := []struct {
		name  string
		op    il.Opcode
		in    float32
		check func(float32) bool
	}{
		{"rcp of zero is +Inf", il.OpRcp, 0, func(v float32) bool { return math.IsInf(float64(v), 1) }},
		{"rcp of -0 is -Inf", il.OpRcp, float32(math.Copysign(0, -1)), func(v float32) bool { return math.IsInf(float64(v), -1) }},
		{"rsq of negative is NaN", il.OpRsq, -4, func(v float32) bool { return math.IsNaN(float64(v)) }},
		{"rsq of zero is +Inf", il.OpRsq, 0, func(v float32) bool { return math.IsInf(float64(v), 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := mk(tc.op)
			out, err := RunIL(k, flatEnv(tc.in), Thread{})
			if err != nil {
				t.Fatal(err)
			}
			v := out[0][0]
			if !tc.check(v) {
				t.Errorf("RunIL(%v, %v) = %v", tc.op, tc.in, v)
			}
			// The same value must compare equal to itself bitwise.
			if !OutputsEqual(out, out, 1) {
				t.Error("OutputsEqual rejects identical NaN/Inf outputs")
			}
		})
	}
}

// TestOutputsEqualKeyMismatch: equal sizes with different key sets must
// not compare equal — a miscompile that redirects a store to another
// output keeps len() identical.
func TestOutputsEqualKeyMismatch(t *testing.T) {
	a := map[int]Vec4{0: {1}}
	b := map[int]Vec4{1: {1}}
	if OutputsEqual(a, b, 1) {
		t.Error("OutputsEqual matched maps with disjoint keys")
	}
	if OutputsEqual(a, map[int]Vec4{0: {1}, 1: {2}}, 1) {
		t.Error("OutputsEqual matched maps of different sizes")
	}
	// Lanes beyond the comparison width are ignored: a float kernel's
	// scratch lanes may differ between IL and ISA execution.
	if !OutputsEqual(map[int]Vec4{0: {1, 9}}, map[int]Vec4{0: {1, 7}}, 1) {
		t.Error("OutputsEqual compared lanes beyond the requested width")
	}
}

// TestNilConstReadsAsZero: both the IL constant ops and the ISA constant
// file read zero through a nil Env.Const — the fuzzer relies on this
// when it generates kernels with constants but the harness supplies a
// minimal environment.
func TestNilConstReadsAsZero(t *testing.T) {
	k := &il.Kernel{
		Name: "nilconst", Mode: il.Pixel, Type: il.Float,
		NumInputs: 1, NumOutputs: 1, NumConsts: 1,
		InputSpace: il.TextureSpace, OutSpace: il.TextureSpace,
		Code: []il.Instr{
			{Op: il.OpSample, Dst: 0, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0},
			{Op: il.OpAddC, Dst: 1, SrcA: 0, SrcB: il.NoReg, Res: 0},
			{Op: il.OpMulC, Dst: 2, SrcA: 1, SrcB: il.NoReg, Res: 0},
			{Op: il.OpExport, Dst: il.NoReg, SrcA: 2, SrcB: il.NoReg, Res: 0},
		},
	}
	out, err := RunIL(k, flatEnv(5), Thread{})
	if err != nil {
		t.Fatal(err)
	}
	// (5 + 0) * 0 = 0
	if out[0][0] != 0 {
		t.Errorf("nil Const: got %v, want 0", out[0][0])
	}
}
