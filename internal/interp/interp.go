// Package interp provides reference interpreters for IL kernels and for
// compiled ISA programs. They exist for verification: the compiler test
// suite proves, property-style, that ilc.Compile preserves semantics by
// running random kernels through both interpreters and comparing outputs
// element for element. The interpreters execute one thread at a time; they
// model architectural state (GPRs, the PV/PS previous-result registers,
// clause temporaries) but not timing.
package interp

import (
	"fmt"
	"math"

	"amdgpubench/internal/il"
	"amdgpubench/internal/isa"
)

// Vec4 is one 128-bit register value, four float32 lanes.
type Vec4 [4]float32

// Env supplies input data for a kernel execution.
type Env struct {
	W, H int
	// Input returns the element of input resource res at domain position
	// (x, y), lane l. Texture samples and global loads read through the
	// same function; the timing difference between the paths is not the
	// interpreter's concern.
	Input func(res, x, y, l int) float32
	// Const returns constant-buffer element cb0[idx] lane l; nil reads
	// as zero.
	Const func(idx, l int) float32
}

func (e Env) constAt(idx, l int) float32 {
	if e.Const == nil {
		return 0
	}
	return e.Const(idx, l)
}

// Thread identifies the domain position being executed.
type Thread struct{ X, Y int }

// RunIL executes an IL kernel for one thread and returns the values
// written to each output, indexed by output resource.
func RunIL(k *il.Kernel, env Env, th Thread) (map[int]Vec4, error) {
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("interp: %w", err)
	}
	regs := make([]Vec4, k.NumTemps())
	out := make(map[int]Vec4)
	lanes := k.Type.Lanes()
	for i, in := range k.Code {
		switch in.Op {
		case il.OpSample, il.OpGlobalLoad:
			var v Vec4
			for l := 0; l < lanes; l++ {
				v[l] = env.Input(in.Res, th.X, th.Y, l)
			}
			regs[in.Dst] = v
		case il.OpAdd:
			var v Vec4
			for l := 0; l < lanes; l++ {
				v[l] = regs[in.SrcA][l] + regs[in.SrcB][l]
			}
			regs[in.Dst] = v
		case il.OpSub:
			var v Vec4
			for l := 0; l < lanes; l++ {
				v[l] = regs[in.SrcA][l] - regs[in.SrcB][l]
			}
			regs[in.Dst] = v
		case il.OpMul:
			var v Vec4
			for l := 0; l < lanes; l++ {
				v[l] = regs[in.SrcA][l] * regs[in.SrcB][l]
			}
			regs[in.Dst] = v
		case il.OpMov:
			regs[in.Dst] = regs[in.SrcA]
		case il.OpRcp:
			var v Vec4
			for l := 0; l < lanes; l++ {
				v[l] = 1 / regs[in.SrcA][l]
			}
			regs[in.Dst] = v
		case il.OpRsq:
			var v Vec4
			for l := 0; l < lanes; l++ {
				v[l] = 1 / float32(math.Sqrt(float64(regs[in.SrcA][l])))
			}
			regs[in.Dst] = v
		case il.OpAddC:
			var v Vec4
			for l := 0; l < lanes; l++ {
				v[l] = regs[in.SrcA][l] + env.constAt(in.Res, l)
			}
			regs[in.Dst] = v
		case il.OpMulC:
			var v Vec4
			for l := 0; l < lanes; l++ {
				v[l] = regs[in.SrcA][l] * env.constAt(in.Res, l)
			}
			regs[in.Dst] = v
		case il.OpExport, il.OpGlobalStore:
			out[in.Res] = regs[in.SrcA]
		default:
			return nil, fmt.Errorf("interp: instruction %d: unknown opcode %v", i, in.Op)
		}
	}
	return out, nil
}

// machine is the per-thread architectural state of the ISA interpreter.
type machine struct {
	gpr []Vec4
	t   [2]Vec4 // clause temporaries; cleared at clause boundaries
	pv  Vec4    // previous bundle's vector results
	ps  float32 // previous bundle's t-slot result
	env Env     // for constant-file reads
}

func (m *machine) read(o isa.Operand) (float32, error) {
	switch o.Kind {
	case isa.KGPR:
		if o.Index < 0 || o.Index >= len(m.gpr) {
			return 0, fmt.Errorf("interp: GPR R%d out of range (program declared %d)", o.Index, len(m.gpr))
		}
		return m.gpr[o.Index][o.Chan], nil
	case isa.KPV:
		return m.pv[o.Chan], nil
	case isa.KPS:
		return m.ps, nil
	case isa.KTemp:
		if o.Index < 0 || o.Index > 1 {
			return 0, fmt.Errorf("interp: clause temp T%d out of range", o.Index)
		}
		return m.t[o.Index][o.Chan], nil
	case isa.KZero:
		return 0, nil
	case isa.KConst:
		return m.env.constAt(o.Index, o.Chan), nil
	}
	return 0, fmt.Errorf("interp: read of operand kind %d", o.Kind)
}

func (m *machine) write(o isa.Operand, v float32) error {
	switch o.Kind {
	case isa.KNone:
		return nil // PV-only destination
	case isa.KGPR:
		if o.Index < 0 || o.Index >= len(m.gpr) {
			return fmt.Errorf("interp: GPR R%d out of range on write", o.Index)
		}
		m.gpr[o.Index][o.Chan] = v
		return nil
	case isa.KTemp:
		if o.Index < 0 || o.Index > 1 {
			return fmt.Errorf("interp: clause temp T%d out of range on write", o.Index)
		}
		m.t[o.Index][o.Chan] = v
		return nil
	}
	return fmt.Errorf("interp: write to operand kind %d", o.Kind)
}

// RunISA executes a compiled program for one thread. The coordinate
// register (R0 by compiler convention) is pre-loaded with the thread
// position, as the rasterizer / dispatcher would.
func RunISA(p *isa.Program, env Env, th Thread) (map[int]Vec4, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("interp: %w", err)
	}
	n := p.GPRCount
	if n < 1 {
		n = 1
	}
	m := &machine{gpr: make([]Vec4, n), env: env}
	m.gpr[0] = Vec4{float32(th.X), float32(th.Y), 0, 0}
	lanes := p.Type.Lanes()
	out := make(map[int]Vec4)

	for ci := range p.Clauses {
		c := &p.Clauses[ci]
		// Clause temporaries are live only inside their clause: they are
		// taken from the register pool per slot and do not hold values
		// across clauses (Section II-A). Model that by clearing them.
		m.t = [2]Vec4{}
		switch c.Kind {
		case isa.ClauseTEX:
			for _, f := range c.Fetches {
				if f.Dst >= len(m.gpr) {
					return nil, fmt.Errorf("interp: fetch writes R%d beyond GPR count %d", f.Dst, len(m.gpr))
				}
				var v Vec4
				for l := 0; l < lanes; l++ {
					v[l] = env.Input(f.Resource, th.X, th.Y, l)
				}
				m.gpr[f.Dst] = v
			}
		case isa.ClauseALU:
			for bi := range c.Bundles {
				b := &c.Bundles[bi]
				// Co-issue: all slot reads observe pre-bundle state.
				results := make([]float32, len(b.Ops))
				for oi, op := range b.Ops {
					a, err := m.read(op.Src0)
					if err != nil {
						return nil, err
					}
					var bv float32
					if !op.Op.Unary() {
						bv, err = m.read(op.Src1)
						if err != nil {
							return nil, err
						}
					}
					switch op.Op {
					case isa.AAdd:
						results[oi] = a + bv
					case isa.ASub:
						results[oi] = a - bv
					case isa.AMul:
						results[oi] = a * bv
					case isa.AMov:
						results[oi] = a
					case isa.ARcp:
						results[oi] = 1 / a
					case isa.ARsq:
						results[oi] = 1 / float32(math.Sqrt(float64(a)))
					}
				}
				// Commit: destinations, then the PV/PS forwarding network.
				var newPV Vec4 = m.pv
				newPS := m.ps
				for oi, op := range b.Ops {
					if err := m.write(op.Dst, results[oi]); err != nil {
						return nil, err
					}
					if op.Slot == isa.SlotT {
						newPS = results[oi]
					} else {
						newPV[int(op.Slot)] = results[oi]
					}
				}
				m.pv, m.ps = newPV, newPS
			}
		case isa.ClauseEXP, isa.ClauseMEM:
			for _, e := range c.Exports {
				if e.Src >= len(m.gpr) {
					return nil, fmt.Errorf("interp: export reads R%d beyond GPR count %d", e.Src, len(m.gpr))
				}
				out[e.Target] = m.gpr[e.Src]
			}
		}
	}
	return out, nil
}

// OutputsEqual compares two output maps over the first `lanes` lanes.
// Comparison is bitwise so that identically-computed NaNs and infinities
// (reachable through rcp/rsq of zero or negative values) compare equal.
func OutputsEqual(a, b map[int]Vec4, lanes int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			return false
		}
		for l := 0; l < lanes; l++ {
			if math.Float32bits(va[l]) != math.Float32bits(vb[l]) {
				return false
			}
		}
	}
	return true
}
