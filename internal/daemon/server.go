// Package daemon is the HTTP face of the campaign scheduler: the amdmbd
// binary wraps a Server around one shared core.Suite, and every client
// request becomes a campaign.Jobs submission on it. Keeping the handler
// here (not in cmd/amdmbd) lets the remote-client tests exercise the
// real wire protocol in-process with httptest.
//
// The API is deliberately small and versioned:
//
//	POST   /v1/campaigns                      submit a campaign.Request — 202 + status
//	GET    /v1/campaigns                      all job statuses, newest first
//	GET    /v1/campaigns/{id}                 one job's status
//	DELETE /v1/campaigns/{id}                 cancel a running job — 202 + status
//	GET    /v1/campaigns/{id}/figures/{fig}.csv  a done job's figure as CSV
//	GET    /v1/metrics                        the suite's obs snapshot as JSON
//	GET    /v1/healthz                        liveness probe
//
// Errors are JSON {"error": "..."} with conventional codes: 400 for a
// request the registry rejects, 404 for unknown jobs and figures, 409
// for a figure requested before its job is done (or after it failed)
// and for cancelling a settled job. The daemon.http.requests counter on
// the shared registry counts every request, so /v1/metrics exposes the
// server's own traffic alongside the pipeline and campaign numbers.
package daemon

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	"amdgpubench/internal/campaign"
	"amdgpubench/internal/obs"
)

// maxRequestBody bounds a campaign submission; real requests are a few
// hundred bytes.
const maxRequestBody = 1 << 20

// Server handles the /v1 campaign API over one shared job registry.
type Server struct {
	jobs     *campaign.Jobs
	reg      *obs.Registry
	log      *log.Logger
	requests *obs.Counter
	mux      *http.ServeMux
}

// NewServer wires the routes. reg should be the shared suite's registry
// so /v1/metrics reports pipeline, campaign and HTTP numbers together;
// logger may be nil for silence.
func NewServer(jobs *campaign.Jobs, reg *obs.Registry, logger *log.Logger) *Server {
	s := &Server{
		jobs:     jobs,
		reg:      reg,
		log:      logger,
		requests: reg.Counter("daemon.http.requests"),
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/campaigns", s.submit)
	s.mux.HandleFunc("GET /v1/campaigns", s.list)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.status)
	s.mux.HandleFunc("DELETE /v1/campaigns/{id}", s.cancel)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/figures/{fig}", s.figure)
	s.mux.HandleFunc("GET /v1/metrics", s.metrics)
	s.mux.HandleFunc("GET /v1/healthz", s.healthz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	s.mux.ServeHTTP(w, r)
}

func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req campaign.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	job, err := s.jobs.Submit(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := job.Status()
	s.logf("campaign %s: %s (%d units, %d deduped)", st.ID, strings.Join(st.Figs, ","), st.Units, st.Deduped)
	w.Header().Set("Location", "/v1/campaigns/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", id)
		return
	}
	if !s.jobs.Cancel(id) {
		writeError(w, http.StatusConflict, "campaign %s already settled (%s)", id, job.Status().State)
		return
	}
	s.logf("campaign %s: cancel requested", id)
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) figure(w http.ResponseWriter, r *http.Request) {
	id, fig := r.PathValue("id"), r.PathValue("fig")
	job, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", id)
		return
	}
	name, isCSV := strings.CutSuffix(fig, ".csv")
	if !isCSV {
		writeError(w, http.StatusNotFound, "figures are served as %q", name+".csv")
		return
	}
	switch st := job.Status(); st.State {
	case campaign.JobRunning:
		writeError(w, http.StatusConflict, "campaign %s still running (%d/%d units)", id, st.Executed, st.Units)
		return
	case campaign.JobFailed, campaign.JobCancelled:
		writeError(w, http.StatusConflict, "campaign %s %s: %s", id, st.State, st.Error)
		return
	}
	figure, ok := job.Figure(name)
	if !ok {
		writeError(w, http.StatusNotFound, "campaign %s has no figure %q", id, name)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	_, _ = io.WriteString(w, figure.CSV())
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	data, err := s.reg.Snapshot().JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(data, '\n'))
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}
