package daemon

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"amdgpubench/internal/campaign"
	"amdgpubench/internal/core"
)

func newTestSuite(cacheDir string) *core.Suite {
	s := core.NewSuite()
	s.Iterations = 1
	s.MaxDomain = 16
	s.PersistDir = cacheDir
	return s
}

func startServer(s *core.Suite) *httptest.Server {
	return httptest.NewServer(NewServer(campaign.NewJobs(s), s.Metrics(), nil))
}

func postCampaign(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// submitAndWait posts a request and polls until the job settles.
func submitAndWait(t *testing.T, ts *httptest.Server, body string) campaign.JobStatus {
	t.Helper()
	resp, data := postCampaign(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, data)
	}
	var st campaign.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if want := "/v1/campaigns/" + st.ID; resp.Header.Get("Location") != want {
		t.Fatalf("Location = %q, want %q", resp.Header.Get("Location"), want)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for st.State == campaign.JobRunning {
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s did not settle", st.ID)
		}
		time.Sleep(20 * time.Millisecond)
		resp, data = get(t, ts, "/v1/campaigns/"+st.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %s: %s", resp.Status, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// metricValue pulls one counter out of the /v1/metrics JSON — the same
// numbers a monitoring scrape would see.
func metricValue(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, data := get(t, ts, "/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TestServerEndToEndWithRestart is the tentpole's acceptance walk: a
// campaign over HTTP, its CSVs served; then the daemon "restarts" (new
// suite, same cache dir) and the same campaign replays from the
// persistent tier — ≥90% simulate hit rate, byte-identical CSVs.
func TestServerEndToEndWithRestart(t *testing.T) {
	dir := t.TempDir()
	const reqBody = `{"figs": ["fig7", "fig8"], "iterations": 1}`

	s1 := newTestSuite(dir)
	ts1 := startServer(s1)
	st := submitAndWait(t, ts1, reqBody)
	if st.State != campaign.JobDone {
		t.Fatalf("state %q (error %q)", st.State, st.Error)
	}

	csv1 := make(map[string]string)
	for _, fig := range []string{"fig7", "fig8"} {
		resp, data := get(t, ts1, "/v1/campaigns/"+st.ID+"/figures/"+fig+".csv")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("figure %s: %s: %s", fig, resp.Status, data)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
			t.Fatalf("figure content-type %q", ct)
		}
		csv1[fig] = string(data)
	}
	if resp, _ := get(t, ts1, "/v1/campaigns/"+st.ID+"/figures/fig11.csv"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("figure outside the job: %s, want 404", resp.Status)
	}
	if resp, _ := get(t, ts1, "/v1/campaigns/"+st.ID+"/figures/fig7"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("figure without .csv: %s, want 404", resp.Status)
	}
	if resp, _ := get(t, ts1, "/v1/campaigns/zzz"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: %s, want 404", resp.Status)
	}
	resp, data := get(t, ts1, "/v1/campaigns")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %s", resp.Status)
	}
	var list []campaign.JobStatus
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v, want the one job", list)
	}
	if got := metricValue(t, ts1, "daemon.http.requests"); got == 0 {
		t.Fatal("daemon.http.requests not counting")
	}
	if resp, _ := get(t, ts1, "/v1/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	ts1.Close()

	// The restart: a brand-new suite and server over the same cache dir.
	// Nothing is warm in memory; everything replays from disk.
	s2 := newTestSuite(dir)
	ts2 := startServer(s2)
	defer ts2.Close()
	st2 := submitAndWait(t, ts2, reqBody)
	if st2.State != campaign.JobDone {
		t.Fatalf("restart state %q (error %q)", st2.State, st2.Error)
	}
	for fig, want := range csv1 {
		resp, data := get(t, ts2, "/v1/campaigns/"+st2.ID+"/figures/"+fig+".csv")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("restart figure %s: %s", fig, resp.Status)
		}
		if string(data) != want {
			t.Fatalf("restart figure %s differs from the pre-restart serve:\n--- restart ---\n%s\n--- original ---\n%s", fig, data, want)
		}
	}
	hits := metricValue(t, ts2, "pipeline.persist.hits")
	misses := metricValue(t, ts2, "pipeline.persist.misses")
	if hits+misses == 0 {
		t.Fatal("restarted daemon recorded no persistent-tier traffic")
	}
	if rate := float64(hits) / float64(hits+misses); rate < 0.9 {
		t.Fatalf("persistent hit rate %.2f (%d hits, %d misses) after restart, want >= 0.9", rate, hits, misses)
	}
}

func TestServerRejectsBadSubmissions(t *testing.T) {
	ts := startServer(newTestSuite(""))
	defer ts.Close()
	cases := []struct {
		name string
		body string
	}{
		{"garbage", `{nope`},
		{"unknown field", `{"figs": ["fig7"], "shards": 2}`},
		{"no figures", `{"figs": []}`},
		{"unknown figure", `{"figs": ["fig99"]}`},
		{"iterations mismatch", `{"figs": ["fig7"], "iterations": 77}`},
		{"unfilterable figure", `{"figs": ["trans"], "archs": ["4870"]}`},
	}
	for _, tc := range cases {
		resp, data := postCampaign(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %s, want 400", tc.name, resp.Status)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q is not the API's JSON shape", tc.name, data)
		}
	}
}

// TestServerCancelAndConflicts drives the 409 paths deterministically
// by gating the first kernel launch: the figure endpoint conflicts
// while the job runs, DELETE cancels it, and a second DELETE conflicts.
func TestServerCancelAndConflicts(t *testing.T) {
	s := newTestSuite("")
	var once sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	s.BeforeLaunch = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	ts := startServer(s)
	defer ts.Close()

	resp, data := postCampaign(t, ts, `{"figs": ["fig7"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, data)
	}
	var st campaign.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	<-entered

	if resp, _ := get(t, ts, "/v1/campaigns/"+st.ID+"/figures/fig7.csv"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("figure of a running job: %s, want 409", resp.Status)
	}
	del := func() int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+st.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(); code != http.StatusAccepted {
		t.Fatalf("cancel: %d, want 202", code)
	}
	close(release)
	deadline := time.Now().Add(time.Minute)
	for st.State == campaign.JobRunning {
		if time.Now().After(deadline) {
			t.Fatal("cancelled job did not settle")
		}
		time.Sleep(10 * time.Millisecond)
		_, data = get(t, ts, "/v1/campaigns/"+st.ID)
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
	}
	if st.State != campaign.JobCancelled {
		t.Fatalf("state %q, want cancelled", st.State)
	}
	if code := del(); code != http.StatusConflict {
		t.Fatalf("second cancel: %d, want 409", code)
	}
	if resp, _ := get(t, ts, "/v1/campaigns/"+st.ID+"/figures/fig7.csv"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("figure of a cancelled job: %s, want 409", resp.Status)
	}
}

// TestServerConcurrentClients mirrors the registry-level test at the
// HTTP layer: overlapping submissions from two goroutines, both served,
// cross-request dedup visible in the shared metrics.
func TestServerConcurrentClients(t *testing.T) {
	s := newTestSuite("")
	ts := startServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	states := make([]campaign.JobStatus, 2)
	errs := make([]error, 2)
	for i, body := range []string{`{"figs": ["fig7", "fig8"]}`, `{"figs": ["fig8", "fig11"]}`} {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("client %d: %v", i, r)
				}
			}()
			resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs[i] = fmt.Errorf("client %d: %s: %s", i, resp.Status, data)
				return
			}
			var st campaign.JobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				errs[i] = err
				return
			}
			deadline := time.Now().Add(2 * time.Minute)
			for st.State == campaign.JobRunning && time.Now().Before(deadline) {
				time.Sleep(20 * time.Millisecond)
				r2, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID)
				if err != nil {
					errs[i] = err
					return
				}
				d2, _ := io.ReadAll(r2.Body)
				r2.Body.Close()
				if err := json.Unmarshal(d2, &st); err != nil {
					errs[i] = err
					return
				}
			}
			states[i] = st
		}(i, body)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if states[i].State != campaign.JobDone {
			t.Fatalf("client %d state %q (error %q)", i, states[i].State, states[i].Error)
		}
	}
	if shared := metricValue(t, ts, "pipeline.simulate.hits") + metricValue(t, ts, "pipeline.simulate.coalesced"); shared == 0 {
		t.Fatal("no cache sharing between concurrent HTTP clients")
	}
}
