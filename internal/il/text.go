package il

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// asmBufPool recycles assembly buffers: Assemble sits on the launch hot
// path (every compile-store miss serializes its kernel), so the working
// buffer must not be reallocated per call.
var asmBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 1024); return &b },
}

// Assemble renders the kernel as IL-style assembly text. The format round
// trips through Parse, which the property tests rely on. The output is
// pinned byte-for-byte by TestAssembleGolden; the single allocation per
// call is the returned string itself.
func Assemble(k *Kernel) string {
	bp := asmBufPool.Get().(*[]byte)
	b := AppendAssemble((*bp)[:0], k)
	s := string(b)
	*bp = b
	asmBufPool.Put(bp)
	return s
}

// AppendAssemble appends the kernel's assembly text to dst and returns the
// extended slice. It is the allocation-free core of Assemble.
func AppendAssemble(dst []byte, k *Kernel) []byte {
	if k.Mode == Compute {
		dst = append(dst, "il_cs_2_0 ; kernel "...)
	} else {
		dst = append(dst, "il_ps_2_0 ; kernel "...)
	}
	dst = append(dst, k.Name...)
	dst = append(dst, "\ndcl_type "...)
	dst = append(dst, k.Type.String()...)
	if k.Mode == Pixel {
		dst = append(dst, "\ndcl_input_position_interp(linear_noperspective) vWinCoord0\n"...)
	} else {
		dst = append(dst, "\ndcl_thread_id vTid\n"...)
	}
	for i := 0; i < k.NumInputs; i++ {
		if k.InputSpace == TextureSpace {
			dst = append(dst, "dcl_resource_id("...)
			dst = strconv.AppendInt(dst, int64(i), 10)
			dst = append(dst, ")_type(2d)_fmt("...)
			dst = append(dst, k.Type.String()...)
			dst = append(dst, ")\n"...)
		} else {
			dst = appendRawUAV(dst, i, k.Type, " ; input buffer\n")
		}
	}
	for i := 0; i < k.NumOutputs; i++ {
		if k.OutSpace == TextureSpace {
			dst = append(dst, "dcl_output o"...)
			dst = strconv.AppendInt(dst, int64(i), 10)
			dst = append(dst, '\n')
		} else {
			dst = appendRawUAV(dst, k.NumInputs+i, k.Type, " ; output buffer\n")
		}
	}
	if k.NumConsts > 0 {
		dst = append(dst, "dcl_cb cb0["...)
		dst = strconv.AppendInt(dst, int64(k.NumConsts), 10)
		dst = append(dst, "]\n"...)
	}
	for i := range k.Code {
		dst = appendInstr(dst, k.Code[i])
		dst = append(dst, '\n')
	}
	dst = append(dst, "end\n"...)
	return dst
}

func appendRawUAV(dst []byte, id int, t DataType, trailer string) []byte {
	dst = append(dst, "dcl_raw_uav_id("...)
	dst = strconv.AppendInt(dst, int64(id), 10)
	dst = append(dst, ")_fmt("...)
	dst = append(dst, t.String()...)
	dst = append(dst, ')')
	dst = append(dst, trailer...)
	return dst
}

// Parse reads assembly produced by Assemble back into a Kernel. It is a
// line-oriented parser: declarations first, then instructions, then "end".
func Parse(src string) (*Kernel, error) {
	k := &Kernel{}
	sawHeader := false
	sawEnd := false
	sc := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, ";"); i >= 0 {
			if strings.HasPrefix(strings.TrimSpace(line[i:]), "; kernel ") {
				k.Name = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line[i:]), "; kernel"))
			}
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if sawEnd {
			return nil, fmt.Errorf("il: line %d: content after end", lineNo)
		}
		fields := strings.Fields(line)
		head := fields[0]
		switch {
		case head == "il_ps_2_0" || head == "il_cs_2_0":
			if sawHeader {
				return nil, fmt.Errorf("il: line %d: duplicate header", lineNo)
			}
			sawHeader = true
			if head == "il_cs_2_0" {
				k.Mode = Compute
			}
		case head == "dcl_type":
			if len(fields) != 2 {
				return nil, fmt.Errorf("il: line %d: malformed dcl_type", lineNo)
			}
			switch fields[1] {
			case "float":
				k.Type = Float
			case "float4":
				k.Type = Float4
			default:
				return nil, fmt.Errorf("il: line %d: unknown data type %q", lineNo, fields[1])
			}
		case strings.HasPrefix(head, "dcl_input_position"), head == "dcl_thread_id":
			// Coordinate register declarations carry no extra state.
		case strings.HasPrefix(head, "dcl_resource_id("):
			k.NumInputs++
			k.InputSpace = TextureSpace
		case strings.HasPrefix(head, "dcl_raw_uav_id("):
			// Raw UAVs are inputs until outputs start being declared; the
			// assembler writes inputs before outputs, and instruction
			// stream validation settles the split. Track via comment-free
			// heuristic: count them as inputs now, fix up below from the
			// instruction stream.
			k.NumInputs++
			k.InputSpace = GlobalSpace
		case strings.HasPrefix(head, "dcl_output"):
			k.NumOutputs++
			k.OutSpace = TextureSpace
		case head == "dcl_cb":
			if len(fields) != 2 {
				return nil, fmt.Errorf("il: line %d: malformed dcl_cb", lineNo)
			}
			n, err := parseBracketCount(fields[1])
			if err != nil {
				return nil, fmt.Errorf("il: line %d: %v", lineNo, err)
			}
			k.NumConsts = n
		case head == "end":
			sawEnd = true
		default:
			in, err := parseInstr(fields)
			if err != nil {
				return nil, fmt.Errorf("il: line %d: %v", lineNo, err)
			}
			k.Code = append(k.Code, in)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("il: scanning source: %v", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("il: missing il_ps/il_cs header")
	}
	if !sawEnd {
		return nil, fmt.Errorf("il: missing end")
	}
	fixupUAVSplit(k)
	return k, nil
}

// fixupUAVSplit repairs NumInputs/NumOutputs for global-memory kernels: the
// assembler declares input UAVs then output UAVs with consecutive ids, and
// the instruction stream tells us how many of each there really are.
func fixupUAVSplit(k *Kernel) {
	maxStore := -1
	anyStore := false
	globalOut := false
	for _, in := range k.Code {
		// Loads settle the input space authoritatively; a kernel with
		// texture inputs and UAV outputs would otherwise have had its
		// InputSpace clobbered by the output declarations.
		if in.Op == OpSample {
			k.InputSpace = TextureSpace
		}
		if in.Op == OpGlobalLoad {
			k.InputSpace = GlobalSpace
		}
		if in.Op.IsStore() {
			anyStore = true
			if in.Res > maxStore {
				maxStore = in.Res
			}
			if in.Op == OpGlobalStore {
				globalOut = true
			}
		}
	}
	if !anyStore {
		return
	}
	if globalOut {
		k.OutSpace = GlobalSpace
		// Output UAV declarations were miscounted as inputs.
		k.NumOutputs = maxStore + 1
		k.NumInputs -= k.NumOutputs
	}
}

func parseBracketCount(tok string) (int, error) {
	open := strings.Index(tok, "[")
	close := strings.Index(tok, "]")
	if open < 0 || close < open {
		return 0, fmt.Errorf("malformed count %q", tok)
	}
	return strconv.Atoi(tok[open+1 : close])
}

func parseReg(tok string) (Reg, error) {
	tok = strings.TrimSuffix(tok, ",")
	if !strings.HasPrefix(tok, "r") {
		return NoReg, fmt.Errorf("expected register, got %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil {
		return NoReg, fmt.Errorf("bad register %q: %v", tok, err)
	}
	return Reg(n), nil
}

func parseResSuffix(head, prefix string) (int, error) {
	rest := strings.TrimPrefix(head, prefix)
	return parseParenInt(rest)
}

func parseParenInt(s string) (int, error) {
	open := strings.Index(s, "(")
	close := strings.Index(s, ")")
	if open < 0 || close < open {
		return 0, fmt.Errorf("malformed resource reference %q", s)
	}
	return strconv.Atoi(s[open+1 : close])
}

func parseInstr(fields []string) (Instr, error) {
	head := fields[0]
	switch {
	case strings.HasPrefix(head, "sample_resource"):
		if len(fields) < 2 {
			return Instr{}, fmt.Errorf("%s needs a destination register", head)
		}
		res, err := parseResSuffix(head, "sample_resource")
		if err != nil {
			return Instr{}, err
		}
		dst, err := parseReg(fields[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpSample, Dst: dst, SrcA: NoReg, SrcB: NoReg, Res: res}, nil
	case strings.HasPrefix(head, "gload_buffer"):
		if len(fields) < 2 {
			return Instr{}, fmt.Errorf("%s needs a destination register", head)
		}
		res, err := parseResSuffix(head, "gload_buffer")
		if err != nil {
			return Instr{}, err
		}
		dst, err := parseReg(fields[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpGlobalLoad, Dst: dst, SrcA: NoReg, SrcB: NoReg, Res: res}, nil
	case head == "add" || head == "sub" || head == "mul":
		if len(fields) != 4 {
			return Instr{}, fmt.Errorf("%s needs dst and two sources", head)
		}
		dst, err := parseReg(fields[1])
		if err != nil {
			return Instr{}, err
		}
		a, err := parseReg(fields[2])
		if err != nil {
			return Instr{}, err
		}
		b, err := parseReg(fields[3])
		if err != nil {
			return Instr{}, err
		}
		op := OpAdd
		switch head {
		case "sub":
			op = OpSub
		case "mul":
			op = OpMul
		}
		return Instr{Op: op, Dst: dst, SrcA: a, SrcB: b, Res: -1}, nil
	case head == "addc" || head == "mulc":
		if len(fields) != 4 {
			return Instr{}, fmt.Errorf("%s needs dst, source and constant", head)
		}
		dst, err := parseReg(fields[1])
		if err != nil {
			return Instr{}, err
		}
		a, err := parseReg(fields[2])
		if err != nil {
			return Instr{}, err
		}
		c, err := parseBracketCount(fields[3])
		if err != nil {
			return Instr{}, fmt.Errorf("bad constant reference %q: %v", fields[3], err)
		}
		op := OpAddC
		if head == "mulc" {
			op = OpMulC
		}
		return Instr{Op: op, Dst: dst, SrcA: a, SrcB: NoReg, Res: c}, nil
	case head == "mov" || head == "rcp" || head == "rsq":
		if len(fields) != 3 {
			return Instr{}, fmt.Errorf("%s needs dst and one source", head)
		}
		dst, err := parseReg(fields[1])
		if err != nil {
			return Instr{}, err
		}
		a, err := parseReg(fields[2])
		if err != nil {
			return Instr{}, err
		}
		op := OpMov
		switch head {
		case "rcp":
			op = OpRcp
		case "rsq":
			op = OpRsq
		}
		return Instr{Op: op, Dst: dst, SrcA: a, SrcB: NoReg, Res: -1}, nil
	case head == "export":
		if len(fields) != 3 {
			return Instr{}, fmt.Errorf("export needs an output and a source")
		}
		oTok := strings.TrimSuffix(fields[1], ",")
		if !strings.HasPrefix(oTok, "o") {
			return Instr{}, fmt.Errorf("export target %q is not an output", oTok)
		}
		res, err := strconv.Atoi(oTok[1:])
		if err != nil {
			return Instr{}, fmt.Errorf("bad output %q: %v", oTok, err)
		}
		src, err := parseReg(fields[2])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpExport, Dst: NoReg, SrcA: src, SrcB: NoReg, Res: res}, nil
	case strings.HasPrefix(head, "gstore_buffer"):
		if len(fields) < 2 {
			return Instr{}, fmt.Errorf("%s needs a source register", head)
		}
		res, err := parseResSuffix(head, "gstore_buffer")
		if err != nil {
			return Instr{}, err
		}
		src, err := parseReg(fields[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpGlobalStore, Dst: NoReg, SrcA: src, SrcB: NoReg, Res: res}, nil
	}
	return Instr{}, fmt.Errorf("unknown instruction %q", head)
}
