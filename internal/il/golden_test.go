package il

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

// goldenPixel exercises every pixel-mode declaration and instruction form.
func goldenPixel() *Kernel {
	return &Kernel{
		Name: "golden_px", Mode: Pixel, Type: Float4,
		NumInputs: 2, NumOutputs: 1,
		InputSpace: TextureSpace, OutSpace: TextureSpace,
		NumConsts: 3,
		Code: []Instr{
			{Op: OpSample, Dst: 0, SrcA: NoReg, SrcB: NoReg, Res: 0},
			{Op: OpSample, Dst: 1, SrcA: NoReg, SrcB: NoReg, Res: 1},
			{Op: OpAdd, Dst: 2, SrcA: 0, SrcB: 1, Res: -1},
			{Op: OpSub, Dst: 3, SrcA: 2, SrcB: 0, Res: -1},
			{Op: OpMul, Dst: 4, SrcA: 3, SrcB: 1, Res: -1},
			{Op: OpMov, Dst: 5, SrcA: 4, SrcB: NoReg, Res: -1},
			{Op: OpRcp, Dst: 6, SrcA: 5, SrcB: NoReg, Res: -1},
			{Op: OpRsq, Dst: 7, SrcA: 6, SrcB: NoReg, Res: -1},
			{Op: OpAddC, Dst: 8, SrcA: 7, SrcB: NoReg, Res: 1},
			{Op: OpMulC, Dst: 9, SrcA: 8, SrcB: NoReg, Res: 2},
			{Op: OpExport, Dst: NoReg, SrcA: 9, SrcB: NoReg, Res: 0},
		},
	}
}

// goldenCompute exercises the compute-mode/global-memory forms.
func goldenCompute() *Kernel {
	return &Kernel{
		Name: "golden_cs", Mode: Compute, Type: Float,
		NumInputs: 1, NumOutputs: 2,
		InputSpace: GlobalSpace, OutSpace: GlobalSpace,
		Code: []Instr{
			{Op: OpGlobalLoad, Dst: 0, SrcA: NoReg, SrcB: NoReg, Res: 0},
			{Op: OpMov, Dst: 1, SrcA: 0, SrcB: NoReg, Res: -1},
			{Op: OpGlobalStore, Dst: NoReg, SrcA: 0, SrcB: NoReg, Res: 0},
			{Op: OpGlobalStore, Dst: NoReg, SrcA: 1, SrcB: NoReg, Res: 1},
		},
	}
}

// TestAssembleGolden pins Assemble's output byte for byte. The strings
// below were produced by the original fmt.Fprintf-based assembler; the
// strconv.Append rewrite must reproduce them exactly, because compiled
// kernels and compile-cache keys historically content-addressed this text.
func TestAssembleGolden(t *testing.T) {
	const wantPixel = "il_ps_2_0 ; kernel golden_px\n" +
		"dcl_type float4\n" +
		"dcl_input_position_interp(linear_noperspective) vWinCoord0\n" +
		"dcl_resource_id(0)_type(2d)_fmt(float4)\n" +
		"dcl_resource_id(1)_type(2d)_fmt(float4)\n" +
		"dcl_output o0\n" +
		"dcl_cb cb0[3]\n" +
		"sample_resource(0) r0, vWinCoord0\n" +
		"sample_resource(1) r1, vWinCoord0\n" +
		"add r2, r0, r1\n" +
		"sub r3, r2, r0\n" +
		"mul r4, r3, r1\n" +
		"mov r5, r4\n" +
		"rcp r6, r5\n" +
		"rsq r7, r6\n" +
		"addc r8, r7, cb0[1]\n" +
		"mulc r9, r8, cb0[2]\n" +
		"export o0, r9\n" +
		"end\n"
	const wantCompute = "il_cs_2_0 ; kernel golden_cs\n" +
		"dcl_type float\n" +
		"dcl_thread_id vTid\n" +
		"dcl_raw_uav_id(0)_fmt(float) ; input buffer\n" +
		"dcl_raw_uav_id(1)_fmt(float) ; output buffer\n" +
		"dcl_raw_uav_id(2)_fmt(float) ; output buffer\n" +
		"gload_buffer(0) r0, vTid\n" +
		"mov r1, r0\n" +
		"gstore_buffer(0) r0, vTid\n" +
		"gstore_buffer(1) r1, vTid\n" +
		"end\n"

	if got := Assemble(goldenPixel()); got != wantPixel {
		t.Errorf("pixel kernel assembly changed:\ngot:\n%s\nwant:\n%s", got, wantPixel)
	}
	if got := Assemble(goldenCompute()); got != wantCompute {
		t.Errorf("compute kernel assembly changed:\ngot:\n%s\nwant:\n%s", got, wantCompute)
	}
}

// TestAppendAssembleMatchesAssemble proves the append core and the
// string-returning wrapper agree, including when appending after a prefix.
func TestAppendAssembleMatchesAssemble(t *testing.T) {
	k := goldenPixel()
	got := AppendAssemble([]byte("prefix|"), k)
	want := "prefix|" + Assemble(k)
	if string(got) != want {
		t.Errorf("AppendAssemble with prefix = %q, want %q", got, want)
	}
}

// TestHashMatchesEncoding pins Hash to the SHA-256 of AppendBinary.
func TestHashMatchesEncoding(t *testing.T) {
	for _, k := range []*Kernel{goldenPixel(), goldenCompute()} {
		want := sha256.Sum256(k.AppendBinary(nil))
		if got := k.Hash(); got != want {
			t.Errorf("kernel %q: Hash() != sha256(AppendBinary())", k.Name)
		}
		h := sha256.New()
		k.HashInto(h)
		if !bytes.Equal(h.Sum(nil), want[:]) {
			t.Errorf("kernel %q: HashInto disagrees with Hash", k.Name)
		}
	}
}

// TestHashDistinguishesKernels checks the structural hash separates
// kernels that differ in exactly one field — the collision-safety property
// the compile cache's correctness rests on.
func TestHashDistinguishesKernels(t *testing.T) {
	base := goldenPixel()
	baseHash := base.Hash()

	mutations := map[string]func(*Kernel){
		"name":       func(k *Kernel) { k.Name = "other" },
		"mode":       func(k *Kernel) { k.Mode = Compute },
		"type":       func(k *Kernel) { k.Type = Float },
		"inputs":     func(k *Kernel) { k.NumInputs++ },
		"outputs":    func(k *Kernel) { k.NumOutputs++ },
		"inspace":    func(k *Kernel) { k.InputSpace = GlobalSpace },
		"outspace":   func(k *Kernel) { k.OutSpace = GlobalSpace },
		"consts":     func(k *Kernel) { k.NumConsts++ },
		"op":         func(k *Kernel) { k.Code[2].Op = OpMul },
		"dst":        func(k *Kernel) { k.Code[2].Dst = 11 },
		"srca":       func(k *Kernel) { k.Code[2].SrcA = 1 },
		"srcb":       func(k *Kernel) { k.Code[2].SrcB = 0 },
		"res":        func(k *Kernel) { k.Code[0].Res = 1 },
		"drop-instr": func(k *Kernel) { k.Code = k.Code[:len(k.Code)-1] },
	}
	for name, mutate := range mutations {
		k := goldenPixel()
		mutate(k)
		if k.Hash() == baseHash {
			t.Errorf("mutation %q did not change the structural hash", name)
		}
	}

	// Same structure must hash identically across fresh values.
	if goldenPixel().Hash() != baseHash {
		t.Error("identical kernels produced different hashes")
	}
}

// TestHashNameLengthPrefix guards the injectivity of the encoding at its
// only variable-width point: the name. Moving a byte between the name and
// the fields after it must change the hash.
func TestHashNameLengthPrefix(t *testing.T) {
	a := &Kernel{Name: "ab", NumOutputs: 1}
	b := &Kernel{Name: "a", NumOutputs: 1}
	if a.Hash() == b.Hash() {
		t.Error("length-prefixed names failed to separate encodings")
	}
}
