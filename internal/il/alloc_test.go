package il

import "testing"

// The assembler and hasher sit on the launch hot path: both must stay
// allocation-free in steady state (Assemble's one allocation is the
// returned string itself; the work buffers are pooled).

func TestAssembleAllocs(t *testing.T) {
	k := goldenPixel()
	Assemble(k) // warm the buffer pool
	allocs := testing.AllocsPerRun(100, func() { Assemble(k) })
	if allocs > 1 {
		t.Errorf("Assemble allocates %.1f objects/op, want <= 1 (the returned string)", allocs)
	}
}

func TestHashAllocs(t *testing.T) {
	k := goldenCompute()
	k.Hash() // warm the encode-buffer pool
	allocs := testing.AllocsPerRun(100, func() { k.Hash() })
	if allocs > 0 {
		t.Errorf("Hash allocates %.1f objects/op, want 0", allocs)
	}
}
