package il

import (
	"strings"
	"testing"
)

// chainKernel builds the paper's generic dependency-chain kernel (Fig. 3)
// directly: sample all inputs, fold them into a chain of adds, continue the
// chain for extra ALU ops, export the tail.
func chainKernel(inputs, extraALU int, mode ShaderMode, dt DataType, inSpace, outSpace MemSpace) *Kernel {
	k := &Kernel{
		Name: "chain", Mode: mode, Type: dt,
		NumInputs: inputs, NumOutputs: 1,
		InputSpace: inSpace, OutSpace: outSpace,
	}
	fetchOp := OpSample
	if inSpace == GlobalSpace {
		fetchOp = OpGlobalLoad
	}
	r := Reg(0)
	for i := 0; i < inputs; i++ {
		k.Code = append(k.Code, Instr{Op: fetchOp, Dst: r, SrcA: NoReg, SrcB: NoReg, Res: i})
		r++
	}
	// Fold inputs.
	acc := Reg(0)
	for i := 1; i < inputs; i++ {
		k.Code = append(k.Code, Instr{Op: OpAdd, Dst: r, SrcA: acc, SrcB: Reg(i), Res: -1})
		acc = r
		r++
	}
	prev := acc
	prev2 := acc
	if inputs >= 2 {
		prev2 = acc - 1
	}
	for i := 0; i < extraALU; i++ {
		k.Code = append(k.Code, Instr{Op: OpAdd, Dst: r, SrcA: prev, SrcB: prev2, Res: -1})
		prev2 = prev
		prev = r
		r++
	}
	storeOp := OpExport
	if outSpace == GlobalSpace {
		storeOp = OpGlobalStore
	}
	k.Code = append(k.Code, Instr{Op: storeOp, Dst: NoReg, SrcA: prev, SrcB: NoReg, Res: 0})
	return k
}

func TestDataType(t *testing.T) {
	if Float.Bytes() != 4 || Float4.Bytes() != 16 {
		t.Error("element sizes wrong")
	}
	if Float.Lanes() != 1 || Float4.Lanes() != 4 {
		t.Error("lane counts wrong")
	}
	if Float.String() != "float" || Float4.String() != "float4" {
		t.Error("names wrong")
	}
}

func TestModeAndSpaceNames(t *testing.T) {
	if Pixel.String() != "pixel" || Compute.String() != "compute" {
		t.Error("shader mode names wrong")
	}
	if TextureSpace.String() != "texture" || GlobalSpace.String() != "global" {
		t.Error("memory space names wrong")
	}
}

func TestCounts(t *testing.T) {
	k := chainKernel(4, 5, Pixel, Float, TextureSpace, TextureSpace)
	c := k.Counts()
	if c.Fetch != 4 {
		t.Errorf("Fetch = %d, want 4", c.Fetch)
	}
	if c.ALU != 3+5 { // 3 folds + 5 chain ops
		t.Errorf("ALU = %d, want 8", c.ALU)
	}
	if c.Store != 1 {
		t.Errorf("Store = %d, want 1", c.Store)
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	cases := []*Kernel{
		chainKernel(2, 0, Pixel, Float, TextureSpace, TextureSpace),
		chainKernel(8, 20, Pixel, Float4, TextureSpace, TextureSpace),
		chainKernel(8, 20, Pixel, Float, GlobalSpace, TextureSpace),
		chainKernel(8, 20, Pixel, Float, GlobalSpace, GlobalSpace),
		chainKernel(16, 4, Compute, Float4, TextureSpace, GlobalSpace),
		chainKernel(16, 4, Compute, Float, GlobalSpace, GlobalSpace),
	}
	for i, k := range cases {
		if err := k.Validate(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestValidateRejectsComputeStreamingStore(t *testing.T) {
	// The paper: compute shader mode does not support streaming stores,
	// only global memory output.
	k := chainKernel(2, 0, Compute, Float, TextureSpace, TextureSpace)
	if err := k.Validate(); err == nil {
		t.Fatal("compute-mode color buffer export accepted")
	}
}

func TestValidateRejectsDoubleAssignment(t *testing.T) {
	k := chainKernel(2, 2, Pixel, Float, TextureSpace, TextureSpace)
	k.Code[2].Dst = Reg(0) // clobber an input register
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "assigned twice") {
		t.Fatalf("double assignment accepted (err=%v)", err)
	}
}

func TestValidateRejectsUseBeforeDef(t *testing.T) {
	k := &Kernel{
		Name: "bad", NumInputs: 1, NumOutputs: 1,
		Code: []Instr{
			{Op: OpSample, Dst: 0, SrcA: NoReg, SrcB: NoReg, Res: 0},
			{Op: OpAdd, Dst: 1, SrcA: 0, SrcB: 5, Res: -1},
			{Op: OpExport, Dst: NoReg, SrcA: 1, SrcB: NoReg, Res: 0},
		},
	}
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "before definition") {
		t.Fatalf("use before def accepted (err=%v)", err)
	}
}

func TestValidateRejectsUnusedInput(t *testing.T) {
	// The paper: every declared and sampled input has to be used or the
	// compiler optimizes it out; we enforce that it is at least sampled.
	k := chainKernel(2, 0, Pixel, Float, TextureSpace, TextureSpace)
	k.NumInputs = 3
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "never sampled") {
		t.Fatalf("unused input accepted (err=%v)", err)
	}
}

func TestValidateRejectsNoOutput(t *testing.T) {
	// A kernel has to have an output to be valid, otherwise the compiler
	// optimizes the kernel away.
	k := chainKernel(2, 0, Pixel, Float, TextureSpace, TextureSpace)
	k.Code = k.Code[:len(k.Code)-1]
	if err := k.Validate(); err == nil {
		t.Fatal("output-less kernel accepted")
	}
}

func TestValidateRejectsBadResourceIndex(t *testing.T) {
	k := chainKernel(2, 0, Pixel, Float, TextureSpace, TextureSpace)
	k.Code[0].Res = 7
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad input index accepted (err=%v)", err)
	}
	k2 := chainKernel(2, 0, Pixel, Float, TextureSpace, TextureSpace)
	k2.Code[len(k2.Code)-1].Res = 3
	if err := k2.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad output index accepted (err=%v)", err)
	}
}

func TestValidateRejectsSpaceMismatch(t *testing.T) {
	k := chainKernel(2, 0, Pixel, Float, TextureSpace, TextureSpace)
	k.InputSpace = GlobalSpace // but code samples textures
	if err := k.Validate(); err == nil {
		t.Fatal("sample against global input space accepted")
	}
}

func TestNumTemps(t *testing.T) {
	k := chainKernel(3, 2, Pixel, Float, TextureSpace, TextureSpace)
	// 3 samples + 2 folds + 2 chain ops = temps r0..r6.
	if got := k.NumTemps(); got != 7 {
		t.Errorf("NumTemps = %d, want 7", got)
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpSample, Dst: 1, SrcA: NoReg, SrcB: NoReg, Res: 2}, "sample_resource(2) r1, vWinCoord0"},
		{Instr{Op: OpGlobalLoad, Dst: 0, SrcA: NoReg, SrcB: NoReg, Res: 0}, "gload_buffer(0) r0, vTid"},
		{Instr{Op: OpAdd, Dst: 2, SrcA: 0, SrcB: 1, Res: -1}, "add r2, r0, r1"},
		{Instr{Op: OpMul, Dst: 2, SrcA: 0, SrcB: 1, Res: -1}, "mul r2, r0, r1"},
		{Instr{Op: OpMov, Dst: 2, SrcA: 0, Res: -1}, "mov r2, r0"},
		{Instr{Op: OpExport, Dst: NoReg, SrcA: 3, SrcB: NoReg, Res: 0}, "export o0, r3"},
		{Instr{Op: OpGlobalStore, Dst: NoReg, SrcA: 3, SrcB: NoReg, Res: 1}, "gstore_buffer(1) r3, vTid"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestOpcodeClassification(t *testing.T) {
	fetches := []Opcode{OpSample, OpGlobalLoad}
	alus := []Opcode{OpAdd, OpMul, OpMov}
	stores := []Opcode{OpExport, OpGlobalStore}
	for _, o := range fetches {
		if !o.IsFetch() || o.IsALU() || o.IsStore() {
			t.Errorf("%v misclassified", o)
		}
	}
	for _, o := range alus {
		if o.IsFetch() || !o.IsALU() || o.IsStore() {
			t.Errorf("%v misclassified", o)
		}
	}
	for _, o := range stores {
		if o.IsFetch() || o.IsALU() || !o.IsStore() {
			t.Errorf("%v misclassified", o)
		}
	}
}
