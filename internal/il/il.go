// Package il models AMD's Intermediate Language (IL), the portable kernel
// language the paper's micro-benchmarks are generated in (Section III).
// Only the slice of IL the suite needs is modelled: resource declarations,
// texture sampling, uncached global loads/stores, a handful of scalar ALU
// operations forming dependency chains, and exports to color buffers.
//
// Kernels are single-assignment: every temporary register rN is written by
// exactly one instruction. The paper's generated kernels (Figs. 3 and 6)
// have this form naturally, and it keeps liveness analysis in the IL->ISA
// compiler exact rather than approximate.
package il

import (
	"fmt"
	"strconv"
)

// DataType is the element type of a kernel's inputs and outputs. The paper
// runs every micro-benchmark for both float and float4; the dependency
// chain prevents VLIW packing, so the ALU instruction count is the same
// for both, but fetch and store traffic scale with the element size.
type DataType int

const (
	// Float is a 32-bit scalar element.
	Float DataType = iota
	// Float4 is a 128-bit 4-vector element, one full GPR per value.
	Float4
)

// Bytes returns the element size in bytes.
func (d DataType) Bytes() int {
	if d == Float4 {
		return 16
	}
	return 4
}

// Lanes returns the number of 32-bit lanes in the element.
func (d DataType) Lanes() int {
	if d == Float4 {
		return 4
	}
	return 1
}

// String returns "float" or "float4".
func (d DataType) String() string {
	if d == Float4 {
		return "float4"
	}
	return "float"
}

// ShaderMode selects pixel shader or compute shader execution. Pixel mode
// walks the domain in the rasterizer's tiled order and may export to color
// buffers (streaming stores); compute mode is linear, the programmer picks
// the block shape, and only global memory writes are available.
type ShaderMode int

const (
	// Pixel shader mode.
	Pixel ShaderMode = iota
	// Compute shader mode.
	Compute
)

// String returns "pixel" or "compute".
func (m ShaderMode) String() string {
	if m == Compute {
		return "compute"
	}
	return "pixel"
}

// MemSpace says where a kernel's inputs come from or outputs go to.
type MemSpace int

const (
	// TextureSpace reads inputs through the texture units and L1 caches,
	// or writes outputs as streaming stores to color buffers.
	TextureSpace MemSpace = iota
	// GlobalSpace reads or writes uncached global memory.
	GlobalSpace
)

// String returns "texture" or "global".
func (s MemSpace) String() string {
	if s == GlobalSpace {
		return "global"
	}
	return "texture"
}

// Opcode enumerates the IL instructions the suite generates.
type Opcode int

const (
	// OpSample fetches one element of input resource Res at the thread's
	// domain position into Dst (texture path).
	OpSample Opcode = iota
	// OpGlobalLoad reads one element of input buffer Res at the thread's
	// linear index into Dst (uncached global path).
	OpGlobalLoad
	// OpAdd computes Dst = SrcA + SrcB.
	OpAdd
	// OpSub computes Dst = SrcA - SrcB.
	OpSub
	// OpMul computes Dst = SrcA * SrcB.
	OpMul
	// OpMov copies SrcA to Dst.
	OpMov
	// OpRcp computes Dst = 1 / SrcA. Transcendental: executes only on the
	// t stream core of a thread processor (one scalar lane per bundle).
	OpRcp
	// OpRsq computes Dst = 1 / sqrt(SrcA). Transcendental, like OpRcp.
	OpRsq
	// OpAddC computes Dst = SrcA + cb0[Res]: the second operand comes from
	// the constant buffer (Res holds the element index). Constants occupy
	// no general purpose registers and cause no fetch traffic.
	OpAddC
	// OpMulC computes Dst = SrcA * cb0[Res].
	OpMulC
	// OpExport writes SrcA to color buffer Res (streaming store; pixel
	// shader mode only).
	OpExport
	// OpGlobalStore writes SrcA to output buffer Res at the thread's
	// linear index (uncached global path).
	OpGlobalStore
)

var opNames = [...]string{
	OpSample:      "sample",
	OpGlobalLoad:  "gload",
	OpAdd:         "add",
	OpSub:         "sub",
	OpMul:         "mul",
	OpMov:         "mov",
	OpRcp:         "rcp",
	OpRsq:         "rsq",
	OpAddC:        "addc",
	OpMulC:        "mulc",
	OpExport:      "export",
	OpGlobalStore: "gstore",
}

// String returns the assembly mnemonic.
func (o Opcode) String() string {
	if o >= 0 && int(o) < len(opNames) {
		return opNames[o]
	}
	return "op(" + strconv.Itoa(int(o)) + ")"
}

// IsFetch reports whether the opcode reads an input resource.
func (o Opcode) IsFetch() bool { return o == OpSample || o == OpGlobalLoad }

// IsStore reports whether the opcode writes an output resource.
func (o Opcode) IsStore() bool { return o == OpExport || o == OpGlobalStore }

// IsALU reports whether the opcode executes on the stream cores.
func (o Opcode) IsALU() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpMov, OpRcp, OpRsq, OpAddC, OpMulC:
		return true
	}
	return false
}

// ReadsConst reports whether the opcode's second operand is a constant
// buffer element (held in Res).
func (o Opcode) ReadsConst() bool { return o == OpAddC || o == OpMulC }

// IsTrans reports whether the opcode is transcendental and therefore
// restricted to the t stream core.
func (o Opcode) IsTrans() bool { return o == OpRcp || o == OpRsq }

// NumSrcs returns how many register source operands the opcode reads.
func (o Opcode) NumSrcs() int {
	switch o {
	case OpAdd, OpSub, OpMul:
		return 2
	case OpMov, OpRcp, OpRsq, OpExport, OpGlobalStore, OpAddC, OpMulC:
		return 1
	}
	return 0
}

// Reg is a virtual temporary register index (r0, r1, ...). The compiler
// maps these onto physical GPRs, PV forwarding and clause temporaries.
type Reg int

// String returns the assembly spelling, e.g. "r12".
func (r Reg) String() string { return "r" + strconv.Itoa(int(r)) }

// NoReg marks an unused operand slot.
const NoReg Reg = -1

// Instr is one IL instruction.
type Instr struct {
	Op   Opcode
	Dst  Reg // destination temp; NoReg for stores
	SrcA Reg // first source temp; NoReg when unused
	SrcB Reg // second source temp; NoReg when unused
	Res  int // resource index for sample/gload/export/gstore; -1 otherwise
}

// String renders the instruction in assembly form.
func (in Instr) String() string { return string(appendInstr(nil, in)) }

// appendInstr appends the instruction's assembly form to dst. It is the
// shared renderer behind Instr.String and Assemble; keeping it fmt-free
// keeps kernel serialization off the allocator.
func appendInstr(dst []byte, in Instr) []byte {
	appendReg := func(dst []byte, r Reg) []byte {
		dst = append(dst, 'r')
		return strconv.AppendInt(dst, int64(r), 10)
	}
	switch in.Op {
	case OpSample:
		dst = append(dst, "sample_resource("...)
		dst = strconv.AppendInt(dst, int64(in.Res), 10)
		dst = append(dst, ") "...)
		dst = appendReg(dst, in.Dst)
		dst = append(dst, ", vWinCoord0"...)
	case OpGlobalLoad:
		dst = append(dst, "gload_buffer("...)
		dst = strconv.AppendInt(dst, int64(in.Res), 10)
		dst = append(dst, ") "...)
		dst = appendReg(dst, in.Dst)
		dst = append(dst, ", vTid"...)
	case OpAdd, OpSub, OpMul:
		dst = append(dst, in.Op.String()...)
		dst = append(dst, ' ')
		dst = appendReg(dst, in.Dst)
		dst = append(dst, ", "...)
		dst = appendReg(dst, in.SrcA)
		dst = append(dst, ", "...)
		dst = appendReg(dst, in.SrcB)
	case OpMov, OpRcp, OpRsq:
		dst = append(dst, in.Op.String()...)
		dst = append(dst, ' ')
		dst = appendReg(dst, in.Dst)
		dst = append(dst, ", "...)
		dst = appendReg(dst, in.SrcA)
	case OpAddC, OpMulC:
		dst = append(dst, in.Op.String()...)
		dst = append(dst, ' ')
		dst = appendReg(dst, in.Dst)
		dst = append(dst, ", "...)
		dst = appendReg(dst, in.SrcA)
		dst = append(dst, ", cb0["...)
		dst = strconv.AppendInt(dst, int64(in.Res), 10)
		dst = append(dst, ']')
	case OpExport:
		dst = append(dst, "export o"...)
		dst = strconv.AppendInt(dst, int64(in.Res), 10)
		dst = append(dst, ", "...)
		dst = appendReg(dst, in.SrcA)
	case OpGlobalStore:
		dst = append(dst, "gstore_buffer("...)
		dst = strconv.AppendInt(dst, int64(in.Res), 10)
		dst = append(dst, ") "...)
		dst = appendReg(dst, in.SrcA)
		dst = append(dst, ", vTid"...)
	default:
		dst = append(dst, '?')
		dst = append(dst, in.Op.String()...)
	}
	return dst
}

// Kernel is a complete IL program plus its interface declarations.
type Kernel struct {
	Name string
	Mode ShaderMode
	Type DataType

	NumInputs  int      // declared input resources (textures or buffers)
	NumOutputs int      // declared outputs (color buffers or buffers)
	InputSpace MemSpace // where inputs are read from
	OutSpace   MemSpace // where outputs are written to
	NumConsts  int      // declared constant-buffer elements

	Code []Instr
}

// Counts summarises the instruction mix of a kernel.
type Counts struct {
	Fetch int // sample + gload
	ALU   int // add + mul + mov
	Store int // export + gstore
}

// Counts tallies the kernel's instruction mix.
func (k *Kernel) Counts() Counts {
	var c Counts
	for _, in := range k.Code {
		switch {
		case in.Op.IsFetch():
			c.Fetch++
		case in.Op.IsALU():
			c.ALU++
		case in.Op.IsStore():
			c.Store++
		}
	}
	return c
}

// NumTemps returns the number of distinct temporary registers written.
func (k *Kernel) NumTemps() int {
	high := -1
	for _, in := range k.Code {
		if in.Dst != NoReg && int(in.Dst) > high {
			high = int(in.Dst)
		}
	}
	return high + 1
}

// Validate checks that the kernel is well formed: single assignment,
// no use before definition, resource indices within declared bounds,
// at least one output written (the paper notes a kernel without an output
// is optimized away entirely), every declared input used, and memory
// spaces consistent with the shader mode (no streaming stores in compute
// mode, which only supports global memory output).
func (k *Kernel) Validate() error {
	if k.NumInputs < 0 || k.NumOutputs <= 0 {
		return fmt.Errorf("il: kernel %q: needs at least one output and non-negative inputs", k.Name)
	}
	if k.Mode == Compute && k.OutSpace == TextureSpace {
		return fmt.Errorf("il: kernel %q: compute shader mode cannot export to color buffers", k.Name)
	}
	defined := make([]bool, k.NumTemps())
	inputUsed := make([]bool, k.NumInputs)
	outputWritten := make([]bool, k.NumOutputs)
	use := func(r Reg, i int) error {
		if r == NoReg {
			return fmt.Errorf("il: kernel %q instr %d: missing source operand", k.Name, i)
		}
		if int(r) >= len(defined) || !defined[r] {
			return fmt.Errorf("il: kernel %q instr %d: use of %s before definition", k.Name, i, r)
		}
		return nil
	}
	for i, in := range k.Code {
		switch in.Op {
		case OpSample, OpGlobalLoad:
			if in.Res < 0 || in.Res >= k.NumInputs {
				return fmt.Errorf("il: kernel %q instr %d: input resource %d out of range [0,%d)", k.Name, i, in.Res, k.NumInputs)
			}
			if wantGlobal := in.Op == OpGlobalLoad; wantGlobal != (k.InputSpace == GlobalSpace) {
				return fmt.Errorf("il: kernel %q instr %d: %s disagrees with declared input space %s", k.Name, i, in.Op, k.InputSpace)
			}
			inputUsed[in.Res] = true
		case OpAdd, OpSub, OpMul:
			if err := use(in.SrcA, i); err != nil {
				return err
			}
			if err := use(in.SrcB, i); err != nil {
				return err
			}
		case OpMov, OpRcp, OpRsq:
			if err := use(in.SrcA, i); err != nil {
				return err
			}
			if in.SrcB != NoReg {
				return fmt.Errorf("il: kernel %q instr %d: %v takes one source", k.Name, i, in.Op)
			}
		case OpAddC, OpMulC:
			if err := use(in.SrcA, i); err != nil {
				return err
			}
			if in.SrcB != NoReg {
				return fmt.Errorf("il: kernel %q instr %d: %v takes one register source", k.Name, i, in.Op)
			}
			if in.Res < 0 || in.Res >= k.NumConsts {
				return fmt.Errorf("il: kernel %q instr %d: constant cb0[%d] out of range [0,%d)", k.Name, i, in.Res, k.NumConsts)
			}
		case OpExport, OpGlobalStore:
			if in.Res < 0 || in.Res >= k.NumOutputs {
				return fmt.Errorf("il: kernel %q instr %d: output resource %d out of range [0,%d)", k.Name, i, in.Res, k.NumOutputs)
			}
			if wantGlobal := in.Op == OpGlobalStore; wantGlobal != (k.OutSpace == GlobalSpace) {
				return fmt.Errorf("il: kernel %q instr %d: %s disagrees with declared output space %s", k.Name, i, in.Op, k.OutSpace)
			}
			if err := use(in.SrcA, i); err != nil {
				return err
			}
			outputWritten[in.Res] = true
		default:
			return fmt.Errorf("il: kernel %q instr %d: unknown opcode %v", k.Name, i, in.Op)
		}
		if in.Dst != NoReg {
			if in.Op.IsStore() {
				return fmt.Errorf("il: kernel %q instr %d: store with destination register", k.Name, i)
			}
			if defined[in.Dst] {
				return fmt.Errorf("il: kernel %q instr %d: %s assigned twice (kernels are single-assignment)", k.Name, i, in.Dst)
			}
			defined[in.Dst] = true
		} else if !in.Op.IsStore() {
			return fmt.Errorf("il: kernel %q instr %d: %v needs a destination", k.Name, i, in.Op)
		}
	}
	for res, used := range inputUsed {
		if !used {
			return fmt.Errorf("il: kernel %q: input %d declared but never sampled (the CAL compiler would eliminate it)", k.Name, res)
		}
	}
	for res, w := range outputWritten {
		if !w {
			return fmt.Errorf("il: kernel %q: output %d never written (kernel would be optimized away)", k.Name, res)
		}
	}
	return nil
}
