package il_test

import (
	"fmt"

	"amdgpubench/internal/il"
)

// ExampleAssemble shows the IL text form of a minimal two-input sum
// kernel — the shape every micro-benchmark kernel extends.
func ExampleAssemble() {
	k := &il.Kernel{
		Name: "sum2", Mode: il.Pixel, Type: il.Float,
		NumInputs: 2, NumOutputs: 1,
		Code: []il.Instr{
			{Op: il.OpSample, Dst: 0, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0},
			{Op: il.OpSample, Dst: 1, SrcA: il.NoReg, SrcB: il.NoReg, Res: 1},
			{Op: il.OpAdd, Dst: 2, SrcA: 0, SrcB: 1, Res: -1},
			{Op: il.OpExport, Dst: il.NoReg, SrcA: 2, SrcB: il.NoReg, Res: 0},
		},
	}
	fmt.Print(il.Assemble(k))
	// Output:
	// il_ps_2_0 ; kernel sum2
	// dcl_type float
	// dcl_input_position_interp(linear_noperspective) vWinCoord0
	// dcl_resource_id(0)_type(2d)_fmt(float)
	// dcl_resource_id(1)_type(2d)_fmt(float)
	// dcl_output o0
	// sample_resource(0) r0, vWinCoord0
	// sample_resource(1) r1, vWinCoord0
	// add r2, r0, r1
	// export o0, r2
	// end
}
