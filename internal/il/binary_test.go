package il

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	k := chainKernel(5, 12, Pixel, Float4, TextureSpace, TextureSpace)
	k.Name = "roundtrip"
	k.NumConsts = 3
	data, err := EncodeBinary(k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, k) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, k)
	}
}

func TestBinaryRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		mode := Pixel
		outSp := TextureSpace
		if rng.Intn(2) == 1 {
			mode = Compute
			outSp = GlobalSpace
		}
		inSp := TextureSpace
		if rng.Intn(2) == 1 {
			inSp = GlobalSpace
		}
		dt := Float
		if rng.Intn(2) == 1 {
			dt = Float4
		}
		k := chainKernel(1+rng.Intn(20), rng.Intn(50), mode, dt, inSp, outSp)
		k.Name = "rnd"
		data, err := EncodeBinary(k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := DecodeBinary(data)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(got, k) {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
}

func TestBinaryRejectsInvalidKernel(t *testing.T) {
	k := chainKernel(2, 0, Pixel, Float, TextureSpace, TextureSpace)
	k.Code = k.Code[:len(k.Code)-1] // drop the export
	if _, err := EncodeBinary(k); err == nil {
		t.Fatal("invalid kernel encoded")
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	good, err := EncodeBinary(chainKernel(2, 3, Pixel, Float, TextureSpace, TextureSpace))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("XXXX"), good[4:]...)},
		{"truncated header", good[:6]},
		{"truncated body", good[:len(good)-3]},
		{"trailing garbage", append(append([]byte{}, good...), 1, 2, 3)},
	}
	for _, c := range cases {
		if _, err := DecodeBinary(c.data); err == nil {
			t.Errorf("%s: decode accepted corrupt stream", c.name)
		}
	}
	// Corrupt the mode byte.
	bad := append([]byte{}, good...)
	bad[4] = 9
	if _, err := DecodeBinary(bad); err == nil {
		t.Error("bad shader mode accepted")
	}
	// Corrupt an opcode so validation must catch it.
	bad = append([]byte{}, good...)
	bad[len(bad)-17] = 200
	if _, err := DecodeBinary(bad); err == nil {
		t.Error("bad opcode accepted")
	}
}

func TestBinaryDeterministic(t *testing.T) {
	k := chainKernel(4, 9, Pixel, Float, GlobalSpace, GlobalSpace)
	a, err := EncodeBinary(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeBinary(k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic")
	}
}
