package il

// Binary kernel encoding. The StreamSDK shipped kernels as binary IL
// streams; this codec gives modules a compact, versioned serialized form
// (used, e.g., to cache compiled micro-benchmark kernels between runs).
// The format is little-endian:
//
//	magic   uint32  'A','I','L','1'
//	mode    uint8
//	type    uint8
//	inSpace uint8
//	outSpace uint8
//	inputs  uint16
//	outputs uint16
//	consts  uint16
//	nameLen uint16, name bytes
//	count   uint32, then per instruction:
//	  op    uint8
//	  dst   int32 (-1 = none)
//	  srcA  int32
//	  srcB  int32
//	  res   int32

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// binaryMagic identifies the format and version.
var binaryMagic = [4]byte{'A', 'I', 'L', '1'}

// EncodeBinary serializes a kernel. The kernel is validated first; only
// well-formed kernels round trip.
func EncodeBinary(k *Kernel) ([]byte, error) {
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("il: encode: %w", err)
	}
	if len(k.Name) > 0xFFFF {
		return nil, fmt.Errorf("il: encode: kernel name too long (%d bytes)", len(k.Name))
	}
	var b bytes.Buffer
	b.Write(binaryMagic[:])
	b.WriteByte(byte(k.Mode))
	b.WriteByte(byte(k.Type))
	b.WriteByte(byte(k.InputSpace))
	b.WriteByte(byte(k.OutSpace))
	var hdr [8]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(k.NumInputs))
	binary.LittleEndian.PutUint16(hdr[2:], uint16(k.NumOutputs))
	binary.LittleEndian.PutUint16(hdr[4:], uint16(k.NumConsts))
	binary.LittleEndian.PutUint16(hdr[6:], uint16(len(k.Name)))
	b.Write(hdr[:])
	b.WriteString(k.Name)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(k.Code)))
	b.Write(cnt[:])
	for _, in := range k.Code {
		b.WriteByte(byte(in.Op))
		var rec [16]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(int32(in.Dst)))
		binary.LittleEndian.PutUint32(rec[4:], uint32(int32(in.SrcA)))
		binary.LittleEndian.PutUint32(rec[8:], uint32(int32(in.SrcB)))
		binary.LittleEndian.PutUint32(rec[12:], uint32(int32(in.Res)))
		b.Write(rec[:])
	}
	return b.Bytes(), nil
}

// DecodeBinary parses a kernel serialized by EncodeBinary and validates
// the result, so a corrupted stream cannot produce an ill-formed kernel.
func DecodeBinary(data []byte) (*Kernel, error) {
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != binaryMagic {
		return nil, fmt.Errorf("il: decode: bad magic")
	}
	var fixed [4]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("il: decode: truncated header")
	}
	k := &Kernel{
		Mode:       ShaderMode(fixed[0]),
		Type:       DataType(fixed[1]),
		InputSpace: MemSpace(fixed[2]),
		OutSpace:   MemSpace(fixed[3]),
	}
	if k.Mode != Pixel && k.Mode != Compute {
		return nil, fmt.Errorf("il: decode: bad shader mode %d", fixed[0])
	}
	if k.Type != Float && k.Type != Float4 {
		return nil, fmt.Errorf("il: decode: bad data type %d", fixed[1])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("il: decode: truncated counts")
	}
	k.NumInputs = int(binary.LittleEndian.Uint16(hdr[0:]))
	k.NumOutputs = int(binary.LittleEndian.Uint16(hdr[2:]))
	k.NumConsts = int(binary.LittleEndian.Uint16(hdr[4:]))
	nameLen := int(binary.LittleEndian.Uint16(hdr[6:]))
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil && nameLen > 0 {
		return nil, fmt.Errorf("il: decode: truncated name")
	}
	k.Name = string(name)
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, fmt.Errorf("il: decode: truncated instruction count")
	}
	n := binary.LittleEndian.Uint32(cnt[:])
	if n > 1<<20 {
		return nil, fmt.Errorf("il: decode: unreasonable instruction count %d", n)
	}
	k.Code = make([]Instr, 0, n)
	for i := uint32(0); i < n; i++ {
		op, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("il: decode: truncated instruction %d", i)
		}
		var rec [16]byte
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("il: decode: truncated instruction %d", i)
		}
		k.Code = append(k.Code, Instr{
			Op:   Opcode(op),
			Dst:  Reg(int32(binary.LittleEndian.Uint32(rec[0:]))),
			SrcA: Reg(int32(binary.LittleEndian.Uint32(rec[4:]))),
			SrcB: Reg(int32(binary.LittleEndian.Uint32(rec[8:]))),
			Res:  int(int32(binary.LittleEndian.Uint32(rec[12:]))),
		})
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("il: decode: %d trailing bytes", r.Len())
	}
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("il: decode: %w", err)
	}
	return k, nil
}
