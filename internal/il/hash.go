package il

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sync"
)

// hashEncodingVersion tags the canonical binary encoding; bump it whenever
// the Kernel struct gains a field that must participate in the content
// address, so stale cross-version hashes can never collide with new ones.
const hashEncodingVersion = 1

// encodeBufPool recycles the scratch buffers Hash encodes kernels into.
var encodeBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 2048); return &b },
}

// AppendBinary appends the kernel's canonical fixed binary encoding to dst
// and returns the extended slice. The encoding is injective: the name is
// length-prefixed and every other field is fixed-width, so two structurally
// different kernels always encode to different byte strings. That makes
// Hash exactly as collision-resistant as SHA-256 itself, without ever
// rendering the kernel to assembly text.
func (k *Kernel) AppendBinary(dst []byte) []byte {
	var scratch [10 * 8]byte
	le := binary.LittleEndian

	dst = append(dst, hashEncodingVersion)
	le.PutUint64(scratch[:], uint64(len(k.Name)))
	dst = append(dst, scratch[:8]...)
	dst = append(dst, k.Name...)

	le.PutUint64(scratch[0:], uint64(k.Mode))
	le.PutUint64(scratch[8:], uint64(k.Type))
	le.PutUint64(scratch[16:], uint64(int64(k.NumInputs)))
	le.PutUint64(scratch[24:], uint64(int64(k.NumOutputs)))
	le.PutUint64(scratch[32:], uint64(k.InputSpace))
	le.PutUint64(scratch[40:], uint64(k.OutSpace))
	le.PutUint64(scratch[48:], uint64(int64(k.NumConsts)))
	le.PutUint64(scratch[56:], uint64(int64(len(k.Code))))
	dst = append(dst, scratch[:64]...)

	for i := range k.Code {
		in := &k.Code[i]
		le.PutUint64(scratch[0:], uint64(in.Op))
		le.PutUint64(scratch[8:], uint64(int64(in.Dst)))
		le.PutUint64(scratch[16:], uint64(int64(in.SrcA)))
		le.PutUint64(scratch[24:], uint64(int64(in.SrcB)))
		le.PutUint64(scratch[32:], uint64(int64(in.Res)))
		dst = append(dst, scratch[:40]...)
	}
	return dst
}

// Hash returns the kernel's structural content address: the SHA-256 of its
// canonical binary encoding. It is the compile pipeline's cache key — two
// kernels share a hash exactly when Assemble would render them to identical
// text, but computing it does no text serialization and, in steady state,
// no allocation.
func (k *Kernel) Hash() [sha256.Size]byte {
	bp := encodeBufPool.Get().(*[]byte)
	b := k.AppendBinary((*bp)[:0])
	sum := sha256.Sum256(b)
	*bp = b
	encodeBufPool.Put(bp)
	return sum
}

// HashInto streams the kernel's canonical binary encoding into an
// incremental hash, for callers folding a kernel into a larger digest.
func (k *Kernel) HashInto(h hash.Hash) {
	bp := encodeBufPool.Get().(*[]byte)
	b := k.AppendBinary((*bp)[:0])
	h.Write(b)
	*bp = b
	encodeBufPool.Put(bp)
}
