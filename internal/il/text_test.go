package il

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestAssembleContainsDeclarations(t *testing.T) {
	k := chainKernel(3, 2, Pixel, Float4, TextureSpace, TextureSpace)
	k.NumConsts = 2
	asm := Assemble(k)
	for _, want := range []string{
		"il_ps_2_0",
		"dcl_type float4",
		"dcl_input_position",
		"dcl_resource_id(0)",
		"dcl_resource_id(2)",
		"dcl_output o0",
		"dcl_cb cb0[2]",
		"sample_resource(0) r0, vWinCoord0",
		"export o0, r",
		"end",
	} {
		if !strings.Contains(asm, want) {
			t.Errorf("assembly missing %q:\n%s", want, asm)
		}
	}
}

func TestAssembleComputeHeader(t *testing.T) {
	k := chainKernel(2, 0, Compute, Float, TextureSpace, GlobalSpace)
	asm := Assemble(k)
	if !strings.Contains(asm, "il_cs_2_0") {
		t.Error("compute kernel missing il_cs header")
	}
	if !strings.Contains(asm, "dcl_thread_id vTid") {
		t.Error("compute kernel missing thread id declaration")
	}
	if !strings.Contains(asm, "gstore_buffer(0)") {
		t.Error("compute kernel missing global store")
	}
}

func roundTrip(t *testing.T, k *Kernel) *Kernel {
	t.Helper()
	asm := Assemble(k)
	got, err := Parse(asm)
	if err != nil {
		t.Fatalf("Parse failed: %v\nsource:\n%s", err, asm)
	}
	return got
}

func TestRoundTripVariants(t *testing.T) {
	variants := []*Kernel{
		chainKernel(2, 0, Pixel, Float, TextureSpace, TextureSpace),
		chainKernel(8, 31, Pixel, Float4, TextureSpace, TextureSpace),
		chainKernel(8, 31, Pixel, Float4, GlobalSpace, TextureSpace),
		chainKernel(8, 31, Pixel, Float, TextureSpace, GlobalSpace),
		chainKernel(5, 3, Pixel, Float, GlobalSpace, GlobalSpace),
		chainKernel(16, 64, Compute, Float4, TextureSpace, GlobalSpace),
		chainKernel(16, 64, Compute, Float, GlobalSpace, GlobalSpace),
	}
	for i, k := range variants {
		k.Name = "chain"
		got := roundTrip(t, k)
		if got.Mode != k.Mode || got.Type != k.Type {
			t.Errorf("variant %d: mode/type mismatch: got %v/%v want %v/%v", i, got.Mode, got.Type, k.Mode, k.Type)
		}
		if got.NumInputs != k.NumInputs || got.NumOutputs != k.NumOutputs {
			t.Errorf("variant %d: i/o counts: got %d/%d want %d/%d", i, got.NumInputs, got.NumOutputs, k.NumInputs, k.NumOutputs)
		}
		if got.InputSpace != k.InputSpace || got.OutSpace != k.OutSpace {
			t.Errorf("variant %d: spaces: got %v/%v want %v/%v", i, got.InputSpace, got.OutSpace, k.InputSpace, k.OutSpace)
		}
		if !reflect.DeepEqual(got.Code, k.Code) {
			t.Errorf("variant %d: code differs\ngot:  %v\nwant: %v", i, got.Code, k.Code)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("variant %d: parsed kernel invalid: %v", i, err)
		}
	}
}

// TestRoundTripRandom is a property test: random valid chain kernels must
// survive Assemble -> Parse with identical structure.
func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		inputs := 1 + rng.Intn(32)
		extra := rng.Intn(100)
		mode := Pixel
		if rng.Intn(2) == 1 {
			mode = Compute
		}
		dt := Float
		if rng.Intn(2) == 1 {
			dt = Float4
		}
		inSp := TextureSpace
		if rng.Intn(2) == 1 {
			inSp = GlobalSpace
		}
		outSp := TextureSpace
		if mode == Compute || rng.Intn(2) == 1 {
			outSp = GlobalSpace
		}
		k := chainKernel(inputs, extra, mode, dt, inSp, outSp)
		if err := k.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid kernel: %v", trial, err)
		}
		got := roundTrip(t, k)
		if !reflect.DeepEqual(got.Code, k.Code) ||
			got.NumInputs != k.NumInputs || got.NumOutputs != k.NumOutputs ||
			got.InputSpace != k.InputSpace || got.OutSpace != k.OutSpace ||
			got.Mode != k.Mode || got.Type != k.Type {
			t.Fatalf("trial %d: round trip mismatch (inputs=%d extra=%d mode=%v dt=%v in=%v out=%v)",
				trial, inputs, extra, mode, dt, inSp, outSp)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no header", "add r2, r0, r1\nend\n"},
		{"no end", "il_ps_2_0\n"},
		{"duplicate header", "il_ps_2_0\nil_ps_2_0\nend\n"},
		{"content after end", "il_ps_2_0\nend\nadd r2, r0, r1\n"},
		{"bad type", "il_ps_2_0\ndcl_type float8\nend\n"},
		{"bad instruction", "il_ps_2_0\nfrobnicate r0\nend\n"},
		{"bad register", "il_ps_2_0\nadd rX, r0, r1\nend\n"},
		{"short add", "il_ps_2_0\nadd r2, r0\nend\n"},
		{"bad export target", "il_ps_2_0\nexport r0, r1\nend\n"},
		{"bad cb", "il_ps_2_0\ndcl_cb cb0[x]\nend\n"},
		// Fuzz-found: operand-less instructions and a bare dcl_cb used to
		// index past the field slice and panic instead of erroring.
		{"sample without dst", "il_ps_2_0\nsample_resource(0)\nend\n"},
		{"gload without dst", "il_ps_2_0\ngload_buffer(0)\nend\n"},
		{"gstore without src", "il_ps_2_0\ngstore_buffer(0)\nend\n"},
		{"bare dcl_cb", "il_ps_2_0\ndcl_cb\nend\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: Parse accepted malformed input", c.name)
		}
	}
}

func TestParseKernelName(t *testing.T) {
	k := chainKernel(2, 1, Pixel, Float, TextureSpace, TextureSpace)
	k.Name = "alu_fetch_r2.0"
	got := roundTrip(t, k)
	if got.Name != k.Name {
		t.Errorf("name = %q, want %q", got.Name, k.Name)
	}
}

func TestRoundTripConstOps(t *testing.T) {
	k := chainKernel(2, 0, Pixel, Float, TextureSpace, TextureSpace)
	k.NumConsts = 4
	// Splice a constant op into the chain before the export.
	exp := k.Code[len(k.Code)-1]
	tail := k.Code[len(k.Code)-2].Dst
	k.Code = append(k.Code[:len(k.Code)-1],
		Instr{Op: OpAddC, Dst: tail + 1, SrcA: tail, SrcB: NoReg, Res: 3},
		Instr{Op: OpMulC, Dst: tail + 2, SrcA: tail + 1, SrcB: NoReg, Res: 0},
		Instr{Op: exp.Op, Dst: NoReg, SrcA: tail + 2, SrcB: NoReg, Res: 0},
	)
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	asm := Assemble(k)
	if !strings.Contains(asm, "addc") || !strings.Contains(asm, "cb0[3]") {
		t.Fatalf("assembly missing constant ops:\n%s", asm)
	}
	got := roundTrip(t, k)
	if !reflect.DeepEqual(got.Code, k.Code) {
		t.Fatalf("constant ops did not round trip:\ngot  %v\nwant %v", got.Code, k.Code)
	}
}
