package device

import (
	"testing"
	"testing/quick"
)

func TestTableIValues(t *testing.T) {
	// Table I of the paper, verbatim.
	cases := []struct {
		arch  Arch
		alus  int
		tex   int
		simds int
		core  int
		mem   int
		kind  string
	}{
		{RV670, 320, 16, 4, 750, 1000, "DDR4"},
		{RV770, 800, 40, 10, 750, 900, "DDR5"},
		{RV870, 1600, 80, 20, 850, 1200, "DDR5"},
	}
	for _, c := range cases {
		s := Lookup(c.arch)
		if s.ALUs != c.alus {
			t.Errorf("%s ALUs = %d, want %d", c.arch, s.ALUs, c.alus)
		}
		if s.TextureUnits != c.tex {
			t.Errorf("%s texture units = %d, want %d", c.arch, s.TextureUnits, c.tex)
		}
		if s.SIMDEngines != c.simds {
			t.Errorf("%s SIMD engines = %d, want %d", c.arch, s.SIMDEngines, c.simds)
		}
		if s.CoreClockMHz != c.core {
			t.Errorf("%s core clock = %d, want %d", c.arch, s.CoreClockMHz, c.core)
		}
		if s.MemClockMHz != c.mem {
			t.Errorf("%s mem clock = %d, want %d", c.arch, s.MemClockMHz, c.mem)
		}
		if s.MemKind.String() != c.kind {
			t.Errorf("%s mem kind = %s, want %s", c.arch, s.MemKind, c.kind)
		}
	}
}

func TestAllSpecsValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Arch, err)
		}
	}
}

func TestAllOrderAndNames(t *testing.T) {
	specs := All()
	if len(specs) != 3 {
		t.Fatalf("All() returned %d specs, want 3", len(specs))
	}
	wantNames := []string{"RV670", "RV770", "RV870"}
	wantCards := []string{"3870", "4870", "5870"}
	for i, s := range specs {
		if s.Arch.String() != wantNames[i] {
			t.Errorf("spec %d arch = %s, want %s", i, s.Arch, wantNames[i])
		}
		if s.Arch.CardName() != wantCards[i] {
			t.Errorf("spec %d card = %s, want %s", i, s.Arch.CardName(), wantCards[i])
		}
	}
}

func TestUnknownArchString(t *testing.T) {
	if got := Arch(99).String(); got != "Arch(99)" {
		t.Errorf("Arch(99).String() = %q", got)
	}
	if got := Arch(99).CardName(); got != "unknown" {
		t.Errorf("Arch(99).CardName() = %q", got)
	}
}

func TestLookupUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Lookup of unknown arch did not panic")
		}
	}()
	Lookup(Arch(42))
}

func TestRegistersPerThread(t *testing.T) {
	// Paper: 16k regs / SIMD, 64 threads / wavefront => 256 GPRs per
	// thread, and a 5-register kernel schedules 256/5 = 51 wavefronts
	// (clamped to the hardware's resident-wave cap here).
	s := Lookup(RV770)
	if got := s.RegistersPerThread(); got != 256 {
		t.Fatalf("RegistersPerThread = %d, want 256", got)
	}
	if got := s.RegistersPerSIMD; got != 16384 {
		t.Fatalf("RegistersPerSIMD = %d, want 16384", got)
	}
}

func TestWavefrontsForGPRs(t *testing.T) {
	s := Lookup(RV770)
	cases := []struct{ gprs, want int }{
		{0, s.MaxWavesPerSIMD}, // no pressure: cap
		{1, s.MaxWavesPerSIMD}, // 256 raw, clamped
		{5, s.MaxWavesPerSIMD}, // paper's 51, clamped to cap
		{8, 32},                // 256/8 = 32
		{16, 16},               // 256/16
		{64, 4},                // register-usage benchmark baseline
		{257, 1},               // oversubscribed: still runs one wave
		{10000, 1},             // pathological
	}
	for _, c := range cases {
		if got := s.WavefrontsForGPRs(c.gprs); got != c.want {
			t.Errorf("WavefrontsForGPRs(%d) = %d, want %d", c.gprs, got, c.want)
		}
	}
}

func TestWavefrontsForGPRsBounds(t *testing.T) {
	s := Lookup(RV870)
	f := func(gprs uint8) bool {
		w := s.WavefrontsForGPRs(int(gprs))
		return w >= 1 && w <= s.MaxWavesPerSIMD
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWavefrontsForGPRsMonotone(t *testing.T) {
	s := Lookup(RV770)
	prev := s.WavefrontsForGPRs(1)
	for g := 2; g <= 300; g++ {
		cur := s.WavefrontsForGPRs(g)
		if cur > prev {
			t.Fatalf("wavefronts increased from %d to %d when GPRs grew to %d", prev, cur, g)
		}
		prev = cur
	}
}

func TestCyclesPerALUBundle(t *testing.T) {
	for _, s := range All() {
		if got := s.CyclesPerALUBundle(); got != 4 {
			t.Errorf("%s: CyclesPerALUBundle = %d, want 4 (64 threads / 16 TPs)", s.Arch, got)
		}
	}
}

func TestFetchIssueCycles(t *testing.T) {
	s := Lookup(RV770)
	// float: 64 threads x 4B over 4 units x 4B/cycle = 16 cycles. This is
	// the 4:1 balance behind the SKA's "1.0" ALU:Fetch ratio.
	if got := s.FetchIssueCycles(4); got != 16 {
		t.Fatalf("FetchIssueCycles(float) = %d, want 16", got)
	}
	// float4 moves 4x the bytes -> 4x the occupancy.
	if got := s.FetchIssueCycles(16); got != 64 {
		t.Fatalf("FetchIssueCycles(float4) = %d, want 64", got)
	}
	if got := s.FetchIssueCycles(0); got != 1 {
		t.Fatalf("FetchIssueCycles(0) = %d, want clamp to 1", got)
	}
}

func TestALUsPerSIMD(t *testing.T) {
	want := map[Arch]int{RV670: 80, RV770: 80, RV870: 80}
	for _, s := range All() {
		if got := s.ALUsPerSIMD(); got != want[s.Arch] {
			t.Errorf("%s ALUsPerSIMD = %d, want %d", s.Arch, got, want[s.Arch])
		}
	}
}

func TestMemBandwidthOrdering(t *testing.T) {
	// The GDDR5 boards must have much more bandwidth per core cycle than
	// the GDDR3-class 3870; the 5870 the most in absolute terms.
	b670 := Lookup(RV670).MemBandwidthBytesPerCoreCycle()
	b770 := Lookup(RV770).MemBandwidthBytesPerCoreCycle()
	b870 := Lookup(RV870).MemBandwidthBytesPerCoreCycle()
	if !(b670 < b770) {
		t.Errorf("bandwidth ordering: RV670 (%.1f) should be < RV770 (%.1f)", b670, b770)
	}
	if b870 <= 0 || b770 <= 0 {
		t.Fatal("bandwidth must be positive")
	}
}

func TestL1Geometry(t *testing.T) {
	// RV870 has half the RV770's cache with double the line size.
	r770, r870 := Lookup(RV770), Lookup(RV870)
	if r870.L1CacheBytes*2 != r770.L1CacheBytes {
		t.Errorf("RV870 L1 (%d) should be half of RV770's (%d)", r870.L1CacheBytes, r770.L1CacheBytes)
	}
	if r870.L1LineBytes != 2*r770.L1LineBytes {
		t.Errorf("RV870 line (%d) should be double RV770's (%d)", r870.L1LineBytes, r770.L1LineBytes)
	}
	for _, s := range All() {
		if s.L1Sets()*s.L1LineBytes*s.L1Ways != s.L1CacheBytes {
			t.Errorf("%s: sets x line x ways != cache bytes", s.Arch)
		}
	}
}

func TestComputeSupport(t *testing.T) {
	if Lookup(RV670).SupportsCompute {
		t.Error("RV670 must not support compute shader mode")
	}
	if !Lookup(RV770).SupportsCompute || !Lookup(RV870).SupportsCompute {
		t.Error("RV770 and RV870 must support compute shader mode")
	}
}

func TestValidateCatchesBrokenSpecs(t *testing.T) {
	base := Lookup(RV770)
	mutate := []func(*Spec){
		func(s *Spec) { s.SIMDEngines = 0 },
		func(s *Spec) { s.ALUs = 801 },
		func(s *Spec) { s.TextureUnits = 39 },
		func(s *Spec) { s.WavefrontSize = 63 },
		func(s *Spec) { s.RegistersPerSIMD = 16383 },
		func(s *Spec) { s.L1Ways = 3 },
		func(s *Spec) { s.MaxFetchesPerTEXClause = 0 },
		func(s *Spec) { s.CoreClockMHz = 0 },
	}
	for i, m := range mutate {
		s := base
		m(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted a broken spec", i)
		}
	}
}
