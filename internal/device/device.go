// Package device describes the AMD GPU generations targeted by the
// micro-benchmark suite: the RV670 (Radeon HD 3870), RV770 (HD 4870) and
// RV870 (HD 5870). The figures in Table I of the paper, plus the cache and
// memory geometry the paper discusses qualitatively, are captured here as
// static parameter tables. Everything downstream — the IL compiler's
// resource limits, the timing simulator's resource widths, the cache
// model's shape — is derived from a Spec.
package device

import "fmt"

// Arch identifies one of the three StreamSDK-capable GPU generations.
type Arch int

const (
	// RV670 is the Radeon HD 3870 generation (no compute shader support).
	RV670 Arch = iota
	// RV770 is the Radeon HD 4870 generation.
	RV770
	// RV870 is the Radeon HD 5870 (Evergreen) generation.
	RV870
)

// String returns the ASIC name, e.g. "RV770".
func (a Arch) String() string {
	switch a {
	case RV670:
		return "RV670"
	case RV770:
		return "RV770"
	case RV870:
		return "RV870"
	}
	return fmt.Sprintf("Arch(%d)", int(a))
}

// CardName returns the consumer board the paper tested the ASIC on.
func (a Arch) CardName() string {
	switch a {
	case RV670:
		return "3870"
	case RV770:
		return "4870"
	case RV870:
		return "5870"
	}
	return "unknown"
}

// MemoryKind is the DRAM technology on the board.
type MemoryKind int

const (
	// GDDR3 class memory: the slow, narrow path of the HD 3870 board the
	// paper measured (the paper's text calls the 3870's memory DDR3-class
	// even though Table I lists DDR4; either way it is far slower than
	// the GDDR5 of the later boards, which is the behaviour we model).
	GDDR3 MemoryKind = iota
	// GDDR5 class memory used by the HD 4870 and HD 5870.
	GDDR5
)

// String returns the JEDEC-style name.
func (m MemoryKind) String() string {
	if m == GDDR3 {
		return "DDR4"
	}
	return "DDR5"
}

// Spec is the full parameter table for one GPU. The first block is Table I
// of the paper verbatim; the rest are microarchitectural constants the
// paper establishes in prose (thread organization, register file, clause
// limits) or that we need to give the caches and DRAM concrete shape.
type Spec struct {
	Arch Arch

	// Table I fields.
	ALUs         int        // total stream cores (5-wide VLIW lanes included)
	TextureUnits int        // total texture fetch units
	SIMDEngines  int        // SIMD engine count
	CoreClockMHz int        // engine clock
	MemClockMHz  int        // memory clock
	MemKind      MemoryKind // DRAM technology

	// Thread organization (Section II-A).
	WavefrontSize    int // threads per wavefront (64 on all three chips)
	ThreadProcessors int // thread processors per SIMD engine (16)
	TexUnitsPerSIMD  int // texture fetch units per SIMD engine (4)
	SlotsPerTP       int // odd/even wavefront slots per thread processor

	// Register file (Section II-B): 128-bit general purpose registers.
	RegistersPerSIMD int // 128-bit GPRs per SIMD engine (16K on RV770)
	MaxWavesPerSIMD  int // scheduler cap on resident wavefronts per SIMD

	// ISA clause limits (R700-family ISA reference).
	MaxFetchesPerTEXClause int // fetch instructions per TEX clause
	MaxSlotsPerALUClause   int // VLIW bundles per ALU clause
	ClauseTempsPerSlot     int // temporary clause registers per slot

	// Texture L1 cache, per SIMD engine. The paper: RV870 has half the
	// cache of the RV770 but double the line size.
	L1CacheBytes int
	L1LineBytes  int
	L1Ways       int

	// Shared texture L2 cache (aggregated across memory channels). L1
	// misses that hit here avoid DRAM entirely — they refill at L2
	// bandwidth with no row-activation cost.
	L2CacheBytes int
	L2Ways       int
	// L2BytesPerUnitCycle is one SIMD's share of L2 fill bandwidth in
	// bytes per core cycle.
	L2BytesPerCycle int

	// Memory system shape.
	MemChannels       int // DRAM channels
	MemBusBitsPerChan int // bus width per channel
	GlobalReadLatency int // uncached global read round trip, core cycles
	TexMissLatency    int // L1 miss service latency, core cycles
	TexHitLatency     int // L1 hit latency, core cycles

	// Delivery bandwidth from the texture path into a SIMD, in bytes per
	// texture unit per cycle. 4 bytes/unit/cycle makes one float fetch
	// across a 64-thread wavefront occupy 16 cycles on 4 units, which is
	// exactly the 4:1 ALU-op:fetch balance the SKA's 1.0 ratio encodes.
	TexBytesPerUnitCycle int

	// Export/ROP path for streaming stores (pixel shader color buffers):
	// cycles for one export instruction to drain a wavefront's worth of
	// one output, assuming burst-friendly consecutive addresses.
	StreamStoreCycles int

	// SupportsCompute reports compute shader mode availability; the RV670
	// supports global memory reads/writes but not compute shader mode.
	SupportsCompute bool
}

// Lookup returns the Spec for an architecture.
func Lookup(a Arch) Spec {
	switch a {
	case RV670:
		return rv670
	case RV770:
		return rv770
	case RV870:
		return rv870
	}
	panic(fmt.Sprintf("device: unknown architecture %d", int(a)))
}

// All returns the three StreamSDK generations in paper order.
func All() []Spec { return []Spec{rv670, rv770, rv870} }

var rv670 = Spec{
	Arch:         RV670,
	ALUs:         320,
	TextureUnits: 16,
	SIMDEngines:  4,
	CoreClockMHz: 750,
	MemClockMHz:  1000,
	MemKind:      GDDR3,

	WavefrontSize:    64,
	ThreadProcessors: 16,
	TexUnitsPerSIMD:  4,
	SlotsPerTP:       2,

	RegistersPerSIMD: 16384,
	MaxWavesPerSIMD:  24,

	MaxFetchesPerTEXClause: 8,
	MaxSlotsPerALUClause:   128,
	ClauseTempsPerSlot:     2,

	L1CacheBytes: 16 * 1024,
	L1LineBytes:  64,
	L1Ways:       8,

	L2CacheBytes:    128 * 1024,
	L2Ways:          16,
	L2BytesPerCycle: 32,

	MemChannels:       4,
	MemBusBitsPerChan: 64,
	GlobalReadLatency: 1100,
	TexMissLatency:    850,
	TexHitLatency:     180,

	TexBytesPerUnitCycle: 4,
	StreamStoreCycles:    40,

	SupportsCompute: false,
}

var rv770 = Spec{
	Arch:         RV770,
	ALUs:         800,
	TextureUnits: 40,
	SIMDEngines:  10,
	CoreClockMHz: 750,
	MemClockMHz:  900,
	MemKind:      GDDR5,

	WavefrontSize:    64,
	ThreadProcessors: 16,
	TexUnitsPerSIMD:  4,
	SlotsPerTP:       2,

	RegistersPerSIMD: 16384,
	MaxWavesPerSIMD:  32,

	MaxFetchesPerTEXClause: 8,
	MaxSlotsPerALUClause:   128,
	ClauseTempsPerSlot:     2,

	L1CacheBytes: 16 * 1024,
	L1LineBytes:  64,
	L1Ways:       8,

	L2CacheBytes:    256 * 1024,
	L2Ways:          16,
	L2BytesPerCycle: 32,

	MemChannels:       4,
	MemBusBitsPerChan: 64,
	GlobalReadLatency: 520,
	TexMissLatency:    750,
	TexHitLatency:     170,

	TexBytesPerUnitCycle: 4,
	StreamStoreCycles:    24,

	SupportsCompute: true,
}

var rv870 = Spec{
	Arch:         RV870,
	ALUs:         1600,
	TextureUnits: 80,
	SIMDEngines:  20,
	CoreClockMHz: 850,
	MemClockMHz:  1200,
	MemKind:      GDDR5,

	WavefrontSize:    64,
	ThreadProcessors: 16,
	TexUnitsPerSIMD:  4,
	SlotsPerTP:       2,

	RegistersPerSIMD: 16384,
	MaxWavesPerSIMD:  32,

	MaxFetchesPerTEXClause: 8,
	MaxSlotsPerALUClause:   128,
	ClauseTempsPerSlot:     2,

	// Half the cache of the RV770, double the line size (Section IV-A).
	L1CacheBytes: 8 * 1024,
	L1LineBytes:  128,
	L1Ways:       4,

	L2CacheBytes:    512 * 1024,
	L2Ways:          16,
	L2BytesPerCycle: 32,

	MemChannels:       8,
	MemBusBitsPerChan: 32,
	GlobalReadLatency: 480,
	TexMissLatency:    650,
	TexHitLatency:     160,

	TexBytesPerUnitCycle: 4,
	StreamStoreCycles:    20,

	SupportsCompute: true,
}

// ALUsPerSIMD returns the stream cores on one SIMD engine (80 on RV770:
// 16 thread processors x 5-wide VLIW).
func (s Spec) ALUsPerSIMD() int { return s.ALUs / s.SIMDEngines }

// RegistersPerThread returns the 128-bit GPRs available to each thread of
// a single resident wavefront (256 on all three chips: 16K regs / 64
// threads), the figure the paper uses for the 256/5 = 51 wavefront example.
func (s Spec) RegistersPerThread() int { return s.RegistersPerSIMD / s.WavefrontSize }

// WavefrontsForGPRs returns how many wavefronts can be co-resident on one
// SIMD engine when each thread of each wavefront holds gprs live registers.
// The result is clamped to [1, MaxWavesPerSIMD]; a kernel always gets at
// least one wavefront even if it oversubscribes the file.
func (s Spec) WavefrontsForGPRs(gprs int) int {
	if gprs <= 0 {
		return s.MaxWavesPerSIMD
	}
	w := s.RegistersPerThread() / gprs
	if w < 1 {
		w = 1
	}
	if w > s.MaxWavesPerSIMD {
		w = s.MaxWavesPerSIMD
	}
	return w
}

// CyclesPerALUBundle returns the SIMD-cycles one VLIW bundle occupies for a
// full wavefront: 64 threads over 16 thread processors = 4 cycles.
func (s Spec) CyclesPerALUBundle() int { return s.WavefrontSize / s.ThreadProcessors }

// FetchIssueCycles returns the texture-pipe occupancy, in cycles, of one
// fetch instruction for a full wavefront moving elemBytes per thread:
// wavefrontSize*elemBytes spread over the SIMD's texture units at
// TexBytesPerUnitCycle each. For 4-byte floats this is 16 cycles, giving
// the canonical 4 ALU ops : 1 fetch balance; float4 costs 4x as much,
// which is what pushes the float4 ALU:Fetch crossover to ~4x the float one.
func (s Spec) FetchIssueCycles(elemBytes int) int {
	bytes := s.WavefrontSize * elemBytes
	perCycle := s.TexUnitsPerSIMD * s.TexBytesPerUnitCycle
	c := (bytes + perCycle - 1) / perCycle
	if c < 1 {
		c = 1
	}
	return c
}

// MemBandwidthBytesPerCoreCycle returns the aggregate DRAM bandwidth
// expressed in bytes per core clock cycle, the unit the timing simulator
// works in. GDDR5 transfers 4 bits per clock per pin versus GDDR3's 2.
func (s Spec) MemBandwidthBytesPerCoreCycle() float64 {
	transfersPerClock := 2.0
	if s.MemKind == GDDR5 {
		transfersPerClock = 4.0
	}
	busBytes := float64(s.MemChannels*s.MemBusBitsPerChan) / 8.0
	bytesPerMemClock := busBytes * transfersPerClock
	return bytesPerMemClock * float64(s.MemClockMHz) / float64(s.CoreClockMHz)
}

// L1Sets returns the number of sets in the per-SIMD texture L1.
func (s Spec) L1Sets() int { return s.L1CacheBytes / (s.L1LineBytes * s.L1Ways) }

// Validate checks internal consistency of a Spec. The built-in chips are
// validated by the package tests; Validate is exported so synthetic
// "future generation" chips built by users of the suite can be checked.
func (s Spec) Validate() error {
	switch {
	case s.SIMDEngines <= 0:
		return fmt.Errorf("device %s: SIMDEngines must be positive", s.Arch)
	case s.ALUs%s.SIMDEngines != 0:
		return fmt.Errorf("device %s: ALUs (%d) not divisible by SIMD engines (%d)", s.Arch, s.ALUs, s.SIMDEngines)
	case s.TextureUnits != s.TexUnitsPerSIMD*s.SIMDEngines:
		return fmt.Errorf("device %s: texture units %d != %d per SIMD x %d engines", s.Arch, s.TextureUnits, s.TexUnitsPerSIMD, s.SIMDEngines)
	case s.WavefrontSize%s.ThreadProcessors != 0:
		return fmt.Errorf("device %s: wavefront size %d not divisible by thread processors %d", s.Arch, s.WavefrontSize, s.ThreadProcessors)
	case s.RegistersPerSIMD%s.WavefrontSize != 0:
		return fmt.Errorf("device %s: register file %d not divisible by wavefront size %d", s.Arch, s.RegistersPerSIMD, s.WavefrontSize)
	case s.L1LineBytes <= 0 || s.L1Ways <= 0 || s.L1CacheBytes%(s.L1LineBytes*s.L1Ways) != 0:
		return fmt.Errorf("device %s: L1 geometry %dB/%dB lines/%d ways does not tile", s.Arch, s.L1CacheBytes, s.L1LineBytes, s.L1Ways)
	case s.L2Ways <= 0 || s.L2CacheBytes%(s.L1LineBytes*s.L2Ways) != 0:
		return fmt.Errorf("device %s: L2 geometry %dB/%d ways does not tile with %dB lines", s.Arch, s.L2CacheBytes, s.L2Ways, s.L1LineBytes)
	case s.L2BytesPerCycle <= 0:
		return fmt.Errorf("device %s: L2 bandwidth must be positive", s.Arch)
	case s.MaxFetchesPerTEXClause <= 0 || s.MaxSlotsPerALUClause <= 0:
		return fmt.Errorf("device %s: clause limits must be positive", s.Arch)
	case s.CoreClockMHz <= 0 || s.MemClockMHz <= 0:
		return fmt.Errorf("device %s: clocks must be positive", s.Arch)
	}
	return nil
}
