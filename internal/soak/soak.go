package soak

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	sched "amdgpubench/internal/campaign"
	"amdgpubench/internal/conformance"
	"amdgpubench/internal/core"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/obs"
)

// Report is a campaign's outcome. Everything in it except Elapsed is a
// deterministic function of the Config (Duration-bounded campaigns
// excepted: their step count depends on the wall clock, but every step
// they did run is seed-determined).
type Report struct {
	Seed       int64
	Steps      int
	Points     int
	Failures   int // per-point failure records (injected faults, timeouts)
	Launches   int64
	Kills      int // kill/resume cycles that actually interrupted a sweep
	Churned    int64
	Violations []Violation
	Bundles    []string
	Elapsed    time.Duration
}

// Ok reports whether every oracle held.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// campaign is the running state behind Run.
type campaign struct {
	cfg     Config
	suite   *core.Suite
	tracer  *obs.Tracer
	scratch string
	report  *Report
	// sweptPoints/sweptFailed mirror what the campaign pushed through
	// the long-lived suite; the metrics oracle checks the suite's own
	// counters against them. They count scheduled units — what the sweep
	// runner actually resolved — not fanned-out points, since soak sweeps
	// route through the campaign scheduler like everything else.
	sweptPoints int64
	sweptFailed int64
	churned     atomic.Int64
}

// Run executes the campaign cfg describes and returns its report. A
// non-nil error is an infrastructure failure (a fatal sweep error, an
// unwritable bundle); oracle violations are not errors — they are the
// campaign's findings, in Report.Violations.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	start := time.Now()

	scratch := cfg.ScratchDir
	if scratch == "" {
		dir, err := os.MkdirTemp("", "amdmb-soak-*")
		if err != nil {
			return nil, fmt.Errorf("soak: scratch dir: %w", err)
		}
		defer os.RemoveAll(dir)
		scratch = dir
	}

	c := &campaign{
		cfg:     cfg,
		suite:   newSuite(cfg),
		scratch: scratch,
		report:  &Report{Seed: cfg.Seed},
	}
	if cfg.Trace {
		c.tracer = obs.NewTracer()
		c.suite.Tracer = c.tracer
	}

	for i := 0; cfg.Steps <= 0 || i < cfg.Steps; i++ {
		if cfg.Duration > 0 && time.Since(start) >= cfg.Duration {
			break
		}
		st := planStep(cfg, i)
		if err := c.runStep(st); err != nil {
			return c.report, err
		}
		c.report.Steps++
		if c.cfg.Out != nil {
			verdict := "ok"
			if n := c.stepViolations(st.Index); n > 0 {
				verdict = fmt.Sprintf("VIOLATIONS=%d", n)
			}
			fmt.Fprintf(c.cfg.Out, "step %d %s points=%d %s\n",
				st.Index, st.Scenario, len(st.points), verdict)
		}
		if cfg.FailFast && !c.report.Ok() {
			break
		}
	}
	c.report.Launches = c.suite.KernelLaunches()
	c.report.Churned = c.churned.Load()
	c.report.Elapsed = time.Since(start)
	return c.report, nil
}

// newSuite builds a suite configured for campaigning: single-iteration
// timings (soak wants launch volume, not the paper's 5000-iteration
// steady state) and a tight watchdog so injected hangs fail in
// microseconds of simulated time instead of the default budget.
func newSuite(cfg Config) *core.Suite {
	s := core.NewSuite()
	s.Iterations = 1
	s.Workers = cfg.Workers
	s.Retries = cfg.Retries
	s.RetryBackoff = 50 * time.Microsecond
	s.DeadlineCycles = 1 << 22
	s.Faults = cfg.Faults
	s.MaxDomain = cfg.MaxDomain
	return s
}

// stepViolations counts violations recorded for step i.
func (c *campaign) stepViolations(i int) int {
	n := 0
	for _, v := range c.report.Violations {
		if v.Step == i {
			n++
		}
	}
	return n
}

// runStep executes one step: churn up, scenario, churn down, oracles.
func (c *campaign) runStep(st step) error {
	stopChurn := c.startChurn(st.Index)
	var (
		runs []core.Run
		err  error
	)
	switch st.Scenario {
	case ScenarioKillResume:
		runs, err = c.runKillResume(st)
	default:
		var res *sched.Result
		res, err = runScheduled(c.suite, st)
		if err == nil {
			runs = res.Runs[0]
			c.sweptPoints += int64(len(res.UnitRuns))
			for _, r := range res.UnitRuns {
				if r.Failed() {
					c.sweptFailed++
				}
			}
		}
	}
	stopChurn()
	if err != nil {
		return fmt.Errorf("soak: step %d (%s): %w", st.Index, st.Scenario, err)
	}
	c.report.Points += len(runs)
	for _, r := range runs {
		if r.Failed() {
			c.report.Failures++
		}
	}
	c.runOracles(st, runs)
	return nil
}

// startChurn spawns cfg.ChurnWorkers goroutines compiling random
// kernels through the campaign suite's shared pipeline, hammering the
// artifact caches while the sweep runs. The kernels are seed-derived
// (deterministic set per step); only scheduling varies, and no oracle
// depends on scheduling. The returned stop joins the workers — oracles
// run on a quiescent suite.
func (c *campaign) startChurn(stepIdx int) (stop func()) {
	if c.cfg.ChurnWorkers <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.ChurnWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(mix(uint64(c.cfg.Seed) ^ mix(uint64(stepIdx)*31+uint64(w))))))
			for {
				select {
				case <-done:
					return
				default:
				}
				k := conformance.RandomKernel(rng)
				spec := conformance.SpecFor(k, uint8(rng.Intn(256)))
				if _, err := c.suite.Pipeline().Compile(k, spec, ilc.Options{}); err == nil {
					c.churned.Add(1)
				}
			}
		}(w)
	}
	return func() {
		close(done)
		wg.Wait()
	}
}

// runScheduled drives a step's sweep through the campaign scheduler —
// the same planning, dedup and fan-out path `amdmb campaign` takes —
// as a single-spec plan. planStep already clamped the domains, so the
// plan's own clamp is a no-op; a generated-kernel hash collision within
// the step dedups here, and the differential oracles then check the
// fanned-out results against direct reference sweeps.
func runScheduled(s *core.Suite, st step) (*sched.Result, error) {
	spec := sched.Spec{
		Name:   fmt.Sprintf("step%03d", st.Index),
		Figure: core.FigureSpec{Points: st.points},
	}
	plan, err := sched.NewPlan([]sched.Spec{spec}, sched.Options{})
	if err != nil {
		return nil, err
	}
	return plan.Run(s)
}

// runKillResume is one crash/resume cycle, in-process: a fresh suite
// runs the step's points as a campaign against a checkpoint and is
// Interrupted at the KillAt-th launch; a second fresh suite replans the
// same campaign and resumes the checkpoint to completion (the
// scheduler's deterministic unit order is what keeps the two plans'
// sweep signatures identical); the resumed results are the step's
// results. The checkpoint-identity oracle then compares them
// bit-for-bit against an uninterrupted reference sweep (runOracles).
// Fresh suites keep the cycle honest — the resume may not lean on the
// killed sweep's warm caches — while the campaign suite's launch
// accounting stays consistent for the metrics oracle.
func (c *campaign) runKillResume(st step) ([]core.Run, error) {
	ck := filepath.Join(c.scratch, fmt.Sprintf("step%03d.ckpt", st.Index))
	defer os.Remove(ck)
	defer os.Remove(ck + ".corrupt")

	victim := newSuite(c.cfg)
	victim.Checkpoint = ck
	var launches atomic.Int64
	victim.BeforeLaunch = func() {
		if launches.Add(1) == int64(st.KillAt) {
			victim.Interrupt()
		}
	}
	_, err := runScheduled(victim, st)
	switch {
	case errors.Is(err, core.ErrSweepInterrupted):
		c.report.Kills++
	case err != nil:
		return nil, err
	}
	// The checkpoint quarantine path must never fire here: every save is
	// crash-atomic and the interrupt is a clean cancellation.
	if _, err := os.Stat(ck + ".corrupt"); err == nil {
		return nil, fmt.Errorf("kill/resume quarantined a checkpoint at step %d", st.Index)
	}

	resumed := newSuite(c.cfg)
	resumed.Checkpoint = ck
	res, err := runScheduled(resumed, st)
	if err != nil {
		return nil, err
	}
	return res.Runs[0], nil
}
