package soak

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"amdgpubench/internal/fault"
	"amdgpubench/internal/il"
)

// smokeConfig is a campaign small enough for unit tests but with every
// adversity armed: faults, kill/resume, churn.
func smokeConfig(t *testing.T) Config {
	plan, err := fault.Parse("seed=5;transient:prob=0.2;hang:prob=0.05")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Seed:           11,
		Steps:          3,
		KernelsPerStep: 3,
		Faults:         plan,
		KillEvery:      2,
		ChurnWorkers:   2,
		Workers:        2,
		Trace:          true,
		MaxDomain:      48,
	}
}

func TestCampaignHoldsAllOracles(t *testing.T) {
	cfg := smokeConfig(t)
	var out bytes.Buffer
	cfg.Out = &out
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Steps != cfg.Steps {
		t.Errorf("ran %d steps, want %d", rep.Steps, cfg.Steps)
	}
	if want := cfg.Steps * cfg.KernelsPerStep; rep.Points != want {
		t.Errorf("swept %d points, want %d", rep.Points, want)
	}
	if rep.Kills == 0 {
		t.Error("no kill/resume cycle interrupted a sweep")
	}
	if rep.Churned == 0 {
		t.Error("churn workers compiled nothing")
	}
	if rep.Launches == 0 {
		t.Error("campaign suite issued no launches")
	}
	for i := 0; i < cfg.Steps; i++ {
		if !strings.Contains(out.String(), fmt.Sprintf("step %d ", i)) {
			t.Errorf("progress output missing step %d:\n%s", i, out.String())
		}
	}
}

// TestCampaignReproducible is the acceptance criterion: the same seed
// is the same campaign — same points, same failures, same launch count,
// same (absent) violations — under faults, kills and churn.
func TestCampaignReproducible(t *testing.T) {
	cfg := smokeConfig(t)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Elapsed and Churned are wall-clock shaped; everything else must
	// match bit for bit.
	a.Elapsed, b.Elapsed = 0, 0
	a.Churned, b.Churned = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different campaigns:\n a: %+v\n b: %+v", a, b)
	}
}

func TestCampaignDurationBound(t *testing.T) {
	cfg := Config{Seed: 3, Duration: time.Nanosecond, KernelsPerStep: 1}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 0 {
		t.Fatalf("an expired duration still ran %d steps", rep.Steps)
	}
}

// TestInjectedViolationShrinksToBundle drives the whole failure path:
// a planted oracle violation must come out as a shrunk kernel in a
// replayable repro bundle.
func TestInjectedViolationShrinksToBundle(t *testing.T) {
	bundles := t.TempDir()
	cfg := Config{
		Seed:           21,
		Steps:          1,
		KernelsPerStep: 2,
		Workers:        1,
		BundleDir:      bundles,
		FailFast:       true,
		// Any kernel that fetches is "broken": shrinking can strip the
		// ALU and store freight but must keep a fetch, so the minimized
		// kernel stays small and still trips the oracle.
		TestOracle: func(k *il.Kernel) error {
			if k.Counts().Fetch > 0 {
				return errors.New("planted: kernel fetches")
			}
			return nil
		},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("planted violation not caught")
	}
	var v Violation
	for _, got := range rep.Violations {
		if got.Oracle == OracleInjected {
			v = got
		}
	}
	if v.Oracle == "" {
		t.Fatalf("no injected violation in %+v", rep.Violations)
	}
	if v.Kernel == nil || v.Bundle == "" {
		t.Fatalf("violation missing kernel or bundle: %+v", v)
	}
	if v.ShrunkFrom < len(v.Kernel.Code) {
		t.Errorf("shrunk kernel grew: %d -> %d instructions", v.ShrunkFrom, len(v.Kernel.Code))
	}
	if err := v.Kernel.Validate(); err != nil {
		t.Errorf("shrunk kernel invalid: %v", err)
	}
	if cfg.TestOracle(v.Kernel) == nil {
		t.Error("shrunk kernel no longer trips the oracle")
	}

	// The bundle must load, carry the kernel, and replay to the same
	// failure with the oracle armed — and to success without it.
	b, k, err := LoadBundle(v.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if b.Oracle != OracleInjected || b.Seed != cfg.Seed || k == nil {
		t.Fatalf("bundle metadata: %+v kernel=%v", b, k)
	}
	if sumA, sumB := k.Hash(), v.Kernel.Hash(); sumA != sumB {
		t.Error("bundle kernel is not the shrunk kernel")
	}
	err = ReplayBundle(v.Bundle, Config{TestOracle: cfg.TestOracle})
	if err == nil || !strings.Contains(err.Error(), "still reproduces") {
		t.Errorf("replay with the oracle armed: %v, want still-reproduces", err)
	}
	if err := ReplayBundle(v.Bundle, Config{TestOracle: func(*il.Kernel) error { return nil }}); err != nil {
		t.Errorf("replay with a fixed oracle: %v, want nil", err)
	}
	for _, f := range []string{"bundle.json", "kernel.il", "README.md"} {
		if _, err := os.Stat(filepath.Join(v.Bundle, f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}
}

func TestFailFastStopsCampaign(t *testing.T) {
	cfg := Config{
		Seed: 4, Steps: 5, KernelsPerStep: 1, Workers: 1, FailFast: true,
		TestOracle: func(*il.Kernel) error { return errors.New("always") },
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 1 {
		t.Fatalf("fail-fast campaign ran %d steps, want 1", rep.Steps)
	}
}

// TestKillResumeIsDeterministicallyInterrupted pins the in-process
// crash cycle: with serial workers the interrupt ordinal is exact, the
// sweep must come back ErrSweepInterrupted inside runKillResume, and
// the resumed results must pass the checkpoint-identity oracle.
func TestKillResumeEveryStep(t *testing.T) {
	cfg := Config{Seed: 17, Steps: 2, KernelsPerStep: 3, KillEvery: 1, Workers: 1}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kills != cfg.Steps {
		t.Errorf("%d kills across %d killresume steps", rep.Kills, cfg.Steps)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Points != cfg.Steps*cfg.KernelsPerStep {
		t.Errorf("resumed sweeps returned %d points, want %d", rep.Points, cfg.Steps*cfg.KernelsPerStep)
	}
}

// TestMetricsOracleCatchesSkew plants a skew between the campaign's
// bookkeeping and the suite's counters and demands the metrics oracle
// notice: the oracle guards real accounting, not tautologies.
func TestMetricsOracleCatchesSkew(t *testing.T) {
	cfg := Config{Seed: 8, Steps: 1, KernelsPerStep: 2, Workers: 1}.withDefaults()
	c := &campaign{cfg: cfg, suite: newSuite(cfg), report: &Report{Seed: cfg.Seed}}
	st := planStep(cfg, 0)
	runs, err := c.suite.RunKernelPoints(st.points)
	if err != nil {
		t.Fatal(err)
	}
	c.sweptPoints = int64(len(runs)) + 1 // the lie
	c.checkMetrics(st)
	if len(c.report.Violations) == 0 {
		t.Fatal("metrics oracle blessed skewed accounting")
	}
	if c.report.Violations[0].Oracle != OracleMetrics {
		t.Fatalf("violation: %+v", c.report.Violations[0])
	}
}
