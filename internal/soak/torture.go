package soak

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"time"
)

// Crash torture is the out-of-process half of the kill/resume story:
// where the in-process cycles (runKillResume) prove a cleanly cancelled
// sweep resumes, torture proves a SIGKILLed *process* does — the kill
// lands at whatever instant the checkpoint writer happens to be in,
// which is exactly what the crash-atomic save protocol must survive.
// The harness runs a child amdmb sweep against a checkpoint, waits for
// it to make progress, kills it without ceremony, and repeats; the
// final run must complete cleanly with zero quarantined checkpoints,
// and the caller compares its output bit-for-bit against an
// uninterrupted run.

// TortureConfig parameterises a torture session.
type TortureConfig struct {
	// NewChild builds the child command for each cycle. Every cycle's
	// command must describe the same sweep against Checkpoint, or resume
	// signatures will not match and nothing is being tested.
	NewChild func(cycle int) *exec.Cmd
	// Checkpoint is the checkpoint file the children share; progress is
	// measured by its record count growing.
	Checkpoint string
	// Cycles is how many SIGKILLs to land; zero means 3.
	Cycles int
	// Poll is the progress-poll interval; zero means 10ms.
	Poll time.Duration
	// Timeout bounds each cycle's wait for progress (and the final clean
	// run); zero means 2 minutes.
	Timeout time.Duration
	// Out, when non-nil, receives one line per cycle.
	Out io.Writer
}

// TortureResult is a session's outcome.
type TortureResult struct {
	// Kills counts children SIGKILLed after making checkpoint progress.
	Kills int
	// CleanExits counts children that finished the sweep before the kill
	// landed (the sweep ran out of points to torture).
	CleanExits int
	// Quarantined counts .corrupt checkpoint files found afterwards —
	// every one is a torn write the atomic save protocol let through,
	// and the caller should treat any nonzero count as a failure.
	Quarantined int
	// Restored is the checkpoint record count the final clean run
	// started from.
	Restored int
}

// Torture runs the session: Cycles kills, then one run to completion.
func Torture(cfg TortureConfig) (*TortureResult, error) {
	if cfg.NewChild == nil || cfg.Checkpoint == "" {
		return nil, fmt.Errorf("soak: torture needs NewChild and Checkpoint")
	}
	cycles := cfg.Cycles
	if cycles <= 0 {
		cycles = 3
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}

	res := &TortureResult{}
	for cycle := 0; cycle < cycles; cycle++ {
		base := checkpointRecords(cfg.Checkpoint)
		cmd := cfg.NewChild(cycle)
		if err := cmd.Start(); err != nil {
			return res, fmt.Errorf("soak: torture cycle %d: %w", cycle, err)
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()

		deadline := time.Now().Add(timeout)
		killed := false
	wait:
		for {
			select {
			case err := <-exited:
				// The child finished (or died) before we saw progress.
				if err != nil {
					return res, fmt.Errorf("soak: torture cycle %d: child failed before kill: %w", cycle, err)
				}
				res.CleanExits++
				break wait
			default:
			}
			if checkpointRecords(cfg.Checkpoint) > base {
				// Progress observed: kill mid-sweep, quite possibly
				// mid-checkpoint-save.
				_ = cmd.Process.Kill()
				<-exited
				res.Kills++
				killed = true
				break wait
			}
			if time.Now().After(deadline) {
				_ = cmd.Process.Kill()
				<-exited
				return res, fmt.Errorf("soak: torture cycle %d: no checkpoint progress within %v", cycle, timeout)
			}
			time.Sleep(poll)
		}
		if cfg.Out != nil {
			verb := "killed"
			if !killed {
				verb = "finished clean"
			}
			fmt.Fprintf(cfg.Out, "torture cycle %d: %s at %d checkpointed points\n",
				cycle, verb, checkpointRecords(cfg.Checkpoint))
		}
		if !killed {
			break // nothing left to torture
		}
	}

	// The survivor: run to completion from whatever the kills left.
	res.Restored = checkpointRecords(cfg.Checkpoint)
	final := cfg.NewChild(cycles)
	done := make(chan error, 1)
	if err := final.Start(); err != nil {
		return res, fmt.Errorf("soak: torture final run: %w", err)
	}
	go func() { done <- final.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return res, fmt.Errorf("soak: torture final run failed: %w", err)
		}
	case <-time.After(timeout):
		_ = final.Process.Kill()
		<-done
		return res, fmt.Errorf("soak: torture final run exceeded %v", timeout)
	}

	res.Quarantined = countQuarantined(cfg.Checkpoint)
	return res, nil
}

// checkpointRecords counts completed points in a checkpoint file. The
// save protocol renames complete files into place, so any parse failure
// here is either mid-session absence (0) or exactly the torn write the
// torture session exists to catch — the final countQuarantined pass
// will see its quarantine.
func checkpointRecords(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	var f struct {
		Runs map[string]json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return 0
	}
	return len(f.Runs)
}

// countQuarantined counts quarantined checkpoint files next to path.
func countQuarantined(path string) int {
	matches, err := filepath.Glob(path + "*.corrupt")
	if err != nil {
		return 0
	}
	return len(matches)
}
