package soak

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"amdgpubench/internal/fault"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenConfig is the pinned reference scenario: faults, kill cycles
// and an injected-oracle-free plan at seed 42. Its rendering lives in
// testdata/plan_seed42.golden; regenerate with `go test ./internal/soak
// -run TestPlanGolden -update` and eyeball the diff — a plan change
// invalidates every recorded repro bundle's seed.
func goldenConfig(t *testing.T) Config {
	plan, err := fault.Parse("seed=9;transient:prob=0.2;hang:prob=0.1,clause=1")
	if err != nil {
		t.Fatal(err)
	}
	return Config{Seed: 42, KernelsPerStep: 3, KillEvery: 3, Faults: plan, Trace: true}
}

func TestPlanGolden(t *testing.T) {
	var buf bytes.Buffer
	RenderPlan(&buf, Plan(goldenConfig(t), 4))
	path := filepath.Join("testdata", "plan_seed42.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("plan drifted from golden.\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestPlanDeterministic(t *testing.T) {
	cfg := goldenConfig(t)
	a, b := Plan(cfg, 6), Plan(cfg, 6)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two plans from one config differ")
	}
	// Step contents depend only on (seed, index): a longer plan is an
	// extension, not a reshuffle — what lets a duration-bounded campaign
	// be a prefix of the unbounded one.
	if long := Plan(cfg, 10); !reflect.DeepEqual(a, long[:6]) {
		t.Fatal("plan prefix changed when the horizon grew")
	}
}

func TestPlanSeedChangesEverything(t *testing.T) {
	cfg := goldenConfig(t)
	a := Plan(cfg, 3)
	cfg.Seed = 43
	b := Plan(cfg, 3)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlanScenarioCadence(t *testing.T) {
	cfg := goldenConfig(t) // KillEvery=3
	steps := Plan(cfg, 7)
	for _, st := range steps {
		want := ScenarioSweep
		if (st.Index+1)%3 == 0 {
			want = ScenarioKillResume
		}
		if st.Scenario != want {
			t.Errorf("step %d scenario %q, want %q", st.Index, st.Scenario, want)
		}
		if st.Scenario == ScenarioKillResume {
			if st.KillAt < 1 || st.KillAt >= len(st.Points) {
				t.Errorf("step %d kill_at=%d outside (0,%d)", st.Index, st.KillAt, len(st.Points))
			}
			if !hasOracle(st, OracleCheckpoint) {
				t.Errorf("step %d killresume without checkpoint-identity oracle", st.Index)
			}
		}
		if st.Probe < 0 || st.Probe >= len(st.Points) {
			t.Errorf("step %d probe=%d out of range", st.Index, st.Probe)
		}
		if !hasOracle(st, OracleDeterminism) || !hasOracle(st, OracleMetrics) {
			t.Errorf("step %d missing a standing oracle: %v", st.Index, st.Oracles)
		}
	}
}

func hasOracle(st StepPlan, name string) bool {
	for _, o := range st.Oracles {
		if o == name {
			return true
		}
	}
	return false
}

func TestPlanMaxDomainClampsPoints(t *testing.T) {
	cfg := goldenConfig(t)
	cfg.MaxDomain = 32
	for _, st := range Plan(cfg, 4) {
		for _, p := range st.Points {
			if p.W > 32 || p.H > 32 {
				t.Fatalf("step %d point %s domain %dx%d exceeds clamp", st.Index, p.Kernel, p.W, p.H)
			}
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Steps != 8 || cfg.KernelsPerStep != 4 || cfg.Retries != 2 {
		t.Fatalf("defaults: %+v", cfg)
	}
	timed := Config{Duration: time.Second}.withDefaults()
	if timed.Steps != 0 {
		t.Fatalf("duration-bounded campaign grew a step bound: %+v", timed)
	}
}
