// Package soak drives adversarial stress campaigns against the whole
// suite: seeded random kernels (the conformance generator's full IL
// surface) pushed through the real launch pipeline under deterministic
// fault injection, in-process kill/checkpoint/resume cycles, and
// concurrent artifact-cache churn, with continuous invariant oracles
// checking bitwise determinism, replay conservation, metrics/trace
// accounting and checkpoint identity after every step. An oracle
// violation is shrunk to a minimal kernel (internal/conformance) and
// written as a replayable repro bundle.
//
// Everything a campaign does derives from one seed: step i's kernels,
// cards, domains, fault draws, kill ordinals and oracle probes all come
// from a splitmix-derived per-step rng, so `soak -seed S` twice is the
// same campaign twice — the property every repro bundle leans on.
package soak

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"amdgpubench/internal/cache"
	"amdgpubench/internal/conformance"
	"amdgpubench/internal/core"
	"amdgpubench/internal/device"
	"amdgpubench/internal/fault"
	"amdgpubench/internal/il"
	"amdgpubench/internal/raster"
)

// Config parameterises a campaign. The zero value is usable: an 8-step,
// fault-free, churn-free campaign at seed 0.
type Config struct {
	// Seed determines the entire campaign: kernels, fault schedule, kill
	// ordinals, oracle probes.
	Seed int64
	// Steps bounds the campaign length; zero with a zero Duration means 8.
	Steps int
	// Duration, when positive, stops the campaign once elapsed (checked
	// between steps). Step contents still depend only on Seed and the
	// step index, so a duration-bounded campaign is a prefix of the
	// equivalent unbounded one.
	Duration time.Duration
	// KernelsPerStep is the sweep width per step; zero means 4.
	KernelsPerStep int
	// Faults arms deterministic fault injection on every launch.
	Faults *fault.Plan
	// KillEvery makes every KillEvery-th step a kill/checkpoint/resume
	// cycle: the sweep is interrupted at a deterministic launch ordinal,
	// resumed from its checkpoint, and the resumed results are compared
	// bit-for-bit against an uninterrupted reference. Zero disables.
	KillEvery int
	// ChurnWorkers runs that many goroutines compiling random kernels
	// against the campaign suite's shared artifact caches while each
	// sweep is in flight — contention the caches must absorb without
	// changing any result. Zero disables.
	ChurnWorkers int
	// Workers bounds sweep parallelism (core.Suite.Workers).
	Workers int
	// Retries bounds transient-fault retries per point; zero means 2.
	Retries int
	// MaxDomain clamps every sweep point's domain (core.Suite.MaxDomain).
	MaxDomain int
	// Trace arms a span tracer on the campaign suite and the trace
	// consistency oracle. Span memory grows with campaign length; leave
	// it off for hours-long runs.
	Trace bool
	// ScratchDir holds kill/resume checkpoints; empty means a temp dir
	// removed when the campaign ends.
	ScratchDir string
	// BundleDir receives repro bundles for oracle violations; empty
	// disables bundle writing (violations are still reported).
	BundleDir string
	// Out, when non-nil, receives one deterministic progress line per
	// step.
	Out io.Writer
	// FailFast stops the campaign at the first oracle violation.
	FailFast bool
	// TestOracle, when non-nil, is an extra per-kernel oracle — the test
	// hook the acceptance criteria require: an injected violation must
	// flow through shrinking into a replayable bundle exactly like a
	// real one.
	TestOracle func(*il.Kernel) error
}

// Scenario names for StepPlan.Scenario.
const (
	ScenarioSweep      = "sweep"
	ScenarioKillResume = "killresume"
)

// Oracle names, as they appear in StepPlan.Oracles, Violation.Oracle and
// bundle metadata.
const (
	OracleDeterminism  = "determinism"
	OracleConservation = "conservation"
	OracleMetrics      = "metrics"
	OracleTrace        = "trace"
	OracleCheckpoint   = "checkpoint-identity"
	OracleInjected     = "injected"
)

// PointPlan is one planned sweep point, as rendered in the campaign
// plan: which kernel (name plus structural hash prefix) runs on which
// card at which domain, and what the fault plan will inject on its
// first attempt.
type PointPlan struct {
	Kernel string
	Hash   string // first 8 bytes of il.Kernel.Hash, hex
	Card   string
	X      float64
	W, H   int
	Inject string // attempt-0 fault draw; "none" when clear
}

// StepPlan is one planned campaign step.
type StepPlan struct {
	Index    int
	Scenario string
	// KillAt is the launch ordinal the kill/resume scenario interrupts
	// at (1 = before the first launch completes); zero for sweep steps.
	KillAt int
	// Probe is the point index the determinism oracle replays.
	Probe   int
	Oracles []string
	Points  []PointPlan
}

// step is a fully materialised plan step: the rendered StepPlan plus
// everything execution needs. All randomness is drawn here, in one
// fixed order, so planning and execution cannot disagree.
type step struct {
	StepPlan
	points   []core.KernelPoint
	consGeom cache.TraceConfig
}

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.Steps <= 0 && c.Duration <= 0 {
		c.Steps = 8
	}
	if c.KernelsPerStep <= 0 {
		c.KernelsPerStep = 4
	}
	if c.Retries <= 0 {
		c.Retries = 2
	}
	return c
}

// mix is splitmix64's finalizer: the per-step seed derivation.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// stepRNG derives step i's generator from the campaign seed. Each step
// is independent: step 7 of a 30s campaign is step 7 of a 30-step one.
func stepRNG(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix(uint64(seed) ^ mix(uint64(i)+1)))))
}

// soakDomains are the domain edge lengths campaigns sweep. Small enough
// that a smoke campaign's step is sub-second, large enough to cross
// wavefront and tile boundaries.
var soakDomains = []int{32, 48, 64}

// planStep materialises step i of the campaign cfg describes. It is a
// pure function of (cfg.Seed, cfg knobs, i).
func planStep(cfg Config, i int) step {
	rng := stepRNG(cfg.Seed, i)
	st := step{StepPlan: StepPlan{Index: i, Scenario: ScenarioSweep}}
	if cfg.KillEvery > 0 && (i+1)%cfg.KillEvery == 0 {
		st.Scenario = ScenarioKillResume
	}

	for j := 0; j < cfg.KernelsPerStep; j++ {
		k := conformance.RandomKernel(rng)
		spec := conformance.SpecFor(k, uint8(rng.Intn(256)))
		card := core.Card{Arch: spec.Arch, Mode: k.Mode, Type: k.Type}
		if k.Mode == il.Compute && rng.Intn(2) == 1 {
			card.BlockW, card.BlockH = 4, 16
		}
		w := soakDomains[rng.Intn(len(soakDomains))]
		h := soakDomains[rng.Intn(len(soakDomains))]
		if cfg.MaxDomain > 0 {
			if w > cfg.MaxDomain {
				w = cfg.MaxDomain
			}
			if h > cfg.MaxDomain {
				h = cfg.MaxDomain
			}
		}
		x := float64(i*100 + j)
		st.points = append(st.points, core.KernelPoint{Card: card, X: x, K: k, W: w, H: h})

		sum := k.Hash()
		st.Points = append(st.Points, PointPlan{
			Kernel: k.Name,
			Hash:   fmt.Sprintf("%x", sum[:8]),
			Card:   card.Label(),
			X:      x,
			W:      w,
			H:      h,
			Inject: cfg.Faults.Draw(k.Name, fault.Key(k.Name, card.Arch.String(), w, h, 0)).String(),
		})
	}

	if st.Scenario == ScenarioKillResume {
		// Interrupt somewhere strictly inside the sweep: after at least
		// one launch has been requested, before the last could be.
		st.KillAt = 1 + rng.Intn(maxInt(1, len(st.points)-1))
	}
	st.Probe = rng.Intn(len(st.points))
	st.consGeom = conservationGeom(rng)

	st.Oracles = []string{OracleDeterminism, OracleConservation, OracleMetrics}
	if cfg.Trace {
		st.Oracles = append(st.Oracles, OracleTrace)
	}
	if st.Scenario == ScenarioKillResume {
		st.Oracles = append(st.Oracles, OracleCheckpoint)
	}
	if cfg.TestOracle != nil {
		st.Oracles = append(st.Oracles, OracleInjected)
	}
	return st
}

// conservationGeom draws a replay geometry for the conservation oracle:
// arbitrary device, walk order, domain and residency, always valid for
// CheckReplayConservation.
func conservationGeom(rng *rand.Rand) cache.TraceConfig {
	all := device.All()
	spec := all[rng.Intn(len(all))]
	order := raster.PixelOrder()
	switch rng.Intn(3) {
	case 1:
		order = raster.Naive64x1()
	case 2:
		order = raster.Block4x16()
	}
	elem := 4
	if rng.Intn(2) == 1 {
		elem = 16
	}
	return cache.TraceConfig{
		Spec:          spec,
		Order:         order,
		W:             16 * (1 + rng.Intn(4)),
		H:             16 * (1 + rng.Intn(4)),
		ElemBytes:     elem,
		NumInputs:     1 + rng.Intn(3),
		ResidentWaves: 1 + rng.Intn(4),
		LinearLayout:  rng.Intn(2) == 1,
	}
}

// Plan returns the first n steps of the campaign cfg describes, without
// executing anything. `amdmb soak -plan` prints it; the plan golden test
// pins it against drift, because a silent plan change invalidates every
// recorded repro bundle's seed.
func Plan(cfg Config, n int) []StepPlan {
	cfg = cfg.withDefaults()
	out := make([]StepPlan, n)
	for i := 0; i < n; i++ {
		out[i] = planStep(cfg, i).StepPlan
	}
	return out
}

// RenderPlan renders steps the way `amdmb soak -plan` prints them: one
// line per step, one indented line per point. The format is pinned by
// testdata/plan_seed42.golden.
func RenderPlan(w io.Writer, steps []StepPlan) {
	for _, st := range steps {
		fmt.Fprintf(w, "step %d %s", st.Index, st.Scenario)
		if st.Scenario == ScenarioKillResume {
			fmt.Fprintf(w, " kill_at=%d", st.KillAt)
		}
		fmt.Fprintf(w, " probe=%d oracles=%s\n", st.Probe, strings.Join(st.Oracles, ","))
		for j, p := range st.Points {
			fmt.Fprintf(w, "  point %d %s hash=%s card=%q x=%g domain=%dx%d inject=%s\n",
				j, p.Kernel, p.Hash, p.Card, p.X, p.W, p.H, p.Inject)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
