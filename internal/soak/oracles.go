package soak

import (
	"fmt"

	"amdgpubench/internal/conformance"
	"amdgpubench/internal/core"
	"amdgpubench/internal/il"
)

// Violation is one invariant the campaign caught breaking: which
// oracle, at which step, with enough detail to read and — when a kernel
// is implicated — the (shrunk) kernel and sweep coordinates to replay
// it from a bundle.
type Violation struct {
	Oracle string
	Step   int
	Detail string
	// Kernel is the implicated kernel after shrinking, nil for oracles
	// that are not kernel-specific (conservation, metrics, trace).
	Kernel *il.Kernel
	// ShrunkFrom is the implicated kernel's instruction count before
	// shrinking (0 when no kernel or shrinking did not apply).
	ShrunkFrom int
	// Point is the sweep coordinate the violation reproduces at.
	Point core.KernelPoint
	// Bundle is the repro bundle directory, when one was written.
	Bundle string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s oracle violated at step %d: %s", v.Oracle, v.Step, v.Detail)
}

// runOracles checks every oracle the step planned against its results.
// The suite is quiescent: the sweep returned and churn is joined, so
// counter snapshots are stable.
func (c *campaign) runOracles(st step, runs []core.Run) {
	for _, o := range st.Oracles {
		switch o {
		case OracleDeterminism:
			c.checkDeterminism(st, runs)
		case OracleConservation:
			c.checkConservation(st)
		case OracleMetrics:
			c.checkMetrics(st)
		case OracleTrace:
			c.checkTrace(st)
		case OracleCheckpoint:
			c.checkCheckpointIdentity(st, runs)
		case OracleInjected:
			c.checkInjected(st)
		}
	}
}

// record registers a violation, shrinking the implicated kernel when a
// predicate is supplied and writing a repro bundle when BundleDir is
// set. pred must hold on the original kernel; Shrink returns the
// original unchanged if it somehow does not.
func (c *campaign) record(v Violation, pred conformance.Pred) {
	if v.Kernel != nil && pred != nil {
		v.ShrunkFrom = len(v.Kernel.Code)
		v.Kernel = conformance.Shrink(v.Kernel, pred)
		v.Point.K = v.Kernel
	}
	if c.cfg.BundleDir != "" {
		dir, err := writeBundle(c.cfg, v)
		if err != nil {
			v.Detail += fmt.Sprintf(" (bundle write failed: %v)", err)
		} else {
			v.Bundle = dir
			c.report.Bundles = append(c.report.Bundles, dir)
		}
	}
	c.report.Violations = append(c.report.Violations, v)
}

// checkDeterminism replays the step's probe point on a fresh suite with
// the artifact caches disabled and demands a bitwise-identical Run. The
// campaign suite is warm — its caches have served hundreds of launches
// under churn — so this is the cached-vs-uncached identity the pipeline
// promises, checked continuously under adversity.
func (c *campaign) checkDeterminism(st step, runs []core.Run) {
	if len(runs) == 0 {
		return
	}
	p := st.points[st.Probe]
	got := runs[st.Probe]
	ref, err := c.referenceRun(p)
	if err != nil {
		c.record(Violation{
			Oracle: OracleDeterminism, Step: st.Index, Kernel: p.K, Point: p,
			Detail: fmt.Sprintf("reference recompute of %s at x=%g failed: %v", p.K.Name, p.X, err),
		}, nil)
		return
	}
	if got != ref {
		v := Violation{
			Oracle: OracleDeterminism, Step: st.Index, Kernel: p.K, Point: p,
			Detail: fmt.Sprintf("probe %s at x=%g diverged from reference recompute:\n  campaign:  %+v\n  reference: %+v",
				p.K.Name, p.X, got, ref),
		}
		c.record(v, c.determinismPred(p))
	}
}

// referenceRun recomputes one point from scratch: fresh suite, caches
// off, same fault plan and launch policy.
func (c *campaign) referenceRun(p core.KernelPoint) (core.Run, error) {
	s := newSuite(c.cfg)
	s.DisableArtifactCache = true
	runs, err := s.RunKernelPoints([]core.KernelPoint{p})
	if err != nil {
		return core.Run{}, err
	}
	return runs[0], nil
}

// determinismPred rebuilds the divergence check for shrink candidates:
// does a fresh cached run of the candidate kernel still disagree with a
// fresh uncached one at the probe's coordinates?
func (c *campaign) determinismPred(p core.KernelPoint) conformance.Pred {
	return func(k *il.Kernel) bool {
		q := p
		q.K = k
		cached := newSuite(c.cfg)
		a, err := cached.RunKernelPoints([]core.KernelPoint{q})
		if err != nil {
			return false
		}
		b, err := c.referenceRun(q)
		if err != nil {
			return false
		}
		return a[0] != b
	}
}

// checkConservation runs the replay conservation laws on the step's
// drawn geometry: every fetch the trace issues must be accounted hit or
// miss, bytes must balance, no negative counters — regardless of
// device, walk order, residency or layout.
func (c *campaign) checkConservation(st step) {
	if err := conformance.CheckReplayConservation(st.consGeom); err != nil {
		c.record(Violation{
			Oracle: OracleConservation, Step: st.Index,
			Detail: fmt.Sprintf("geometry %s %dx%d waves=%d elem=%dB: %v",
				st.consGeom.Spec.Arch, st.consGeom.W, st.consGeom.H,
				st.consGeom.ResidentWaves, st.consGeom.ElemBytes, err),
		}, nil)
	}
}

// checkMetrics cross-checks three independent accountings of the same
// campaign: the suite's own launch counter vs the cal layer's metric,
// the sweep counters vs the campaign's own point bookkeeping, and the
// pipeline stores' internal counters vs their obs-registry mirrors.
func (c *campaign) checkMetrics(st step) {
	snap := c.suite.Metrics().Snapshot()
	fail := func(detail string) {
		c.record(Violation{Oracle: OracleMetrics, Step: st.Index, Detail: detail}, nil)
	}
	if got, want := snap.Get("cal.launches"), c.suite.KernelLaunches(); got != want {
		fail(fmt.Sprintf("cal.launches=%d but suite issued %d", got, want))
	}
	done := snap.Get("core.sweep.points.completed")
	failed := snap.Get("core.sweep.points.failed")
	if done+failed != c.sweptPoints {
		fail(fmt.Sprintf("sweep counters completed=%d failed=%d but campaign swept %d points",
			done, failed, c.sweptPoints))
	}
	if failed != c.sweptFailed {
		fail(fmt.Sprintf("core.sweep.points.failed=%d but campaign recorded %d failures",
			failed, c.sweptFailed))
	}
	stats := c.suite.CacheStats()
	for _, stage := range []string{"generate", "compile", "replay", "simulate"} {
		ss := stats.Stage(stage)
		for name, pair := range map[string][2]int64{
			"hits":      {snap.Get("pipeline." + stage + ".hits"), int64(ss.Hits)},
			"misses":    {snap.Get("pipeline." + stage + ".misses"), int64(ss.Misses)},
			"coalesced": {snap.Get("pipeline." + stage + ".coalesced"), int64(ss.Coalesced)},
			"evictions": {snap.Get("pipeline." + stage + ".evictions"), int64(ss.Evictions)},
		} {
			if pair[0] != pair[1] {
				fail(fmt.Sprintf("pipeline.%s.%s metric=%d but store reports %d",
					stage, name, pair[0], pair[1]))
			}
		}
	}
}

// checkTrace demands one root "launch" span per launch the suite
// issued: a launch the tracer missed (or invented) is an observability
// lie waiting to mislead a profile.
func (c *campaign) checkTrace(st step) {
	if c.tracer == nil {
		return
	}
	spans := int64(0)
	for _, sp := range c.tracer.Snapshot() {
		if sp.Name == "launch" {
			spans++
		}
	}
	if want := c.suite.KernelLaunches(); spans != want {
		c.record(Violation{
			Oracle: OracleTrace, Step: st.Index,
			Detail: fmt.Sprintf("%d launch spans recorded for %d launches", spans, want),
		}, nil)
	}
}

// checkCheckpointIdentity compares the kill/resume cycle's results
// against an uninterrupted reference sweep of the same points on a
// fresh suite: resuming from a checkpoint must be invisible in the
// output, bit for bit, Run for Run.
func (c *campaign) checkCheckpointIdentity(st step, runs []core.Run) {
	ref, err := newSuite(c.cfg).RunKernelPoints(st.points)
	if err != nil {
		c.record(Violation{
			Oracle: OracleCheckpoint, Step: st.Index,
			Detail: fmt.Sprintf("uninterrupted reference sweep failed: %v", err),
		}, nil)
		return
	}
	for i := range ref {
		if runs[i] != ref[i] {
			p := st.points[i]
			c.record(Violation{
				Oracle: OracleCheckpoint, Step: st.Index, Kernel: p.K, Point: p,
				Detail: fmt.Sprintf("point %d (%s at x=%g) after kill@%d+resume:\n  resumed:   %+v\n  reference: %+v",
					i, p.K.Name, p.X, st.KillAt, runs[i], ref[i]),
			}, nil)
		}
	}
}

// checkInjected runs the configured test oracle over the step's
// kernels. It exists to prove the violation path end to end: a fault
// planted here must come out the other side as a shrunk, replayable
// bundle.
func (c *campaign) checkInjected(st step) {
	for _, p := range st.points {
		if err := c.cfg.TestOracle(p.K); err != nil {
			c.record(Violation{
				Oracle: OracleInjected, Step: st.Index, Kernel: p.K, Point: p,
				Detail: fmt.Sprintf("injected oracle rejected %s: %v", p.K.Name, err),
			}, func(k *il.Kernel) bool { return c.cfg.TestOracle(k) != nil })
			return // one bundle per step is plenty
		}
	}
}
