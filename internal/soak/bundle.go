package soak

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"amdgpubench/internal/core"
	"amdgpubench/internal/device"
	"amdgpubench/internal/fault"
	"amdgpubench/internal/il"
)

// A repro bundle is a self-contained directory describing one oracle
// violation well enough to replay it: the campaign seed and fault plan,
// the implicated (shrunk) kernel as IL text, the sweep coordinates, and
// a README a human can act on without reading this package. The layout
// follows the benchmark-artifact convention of shipping inputs, the
// collection recipe and the observed result together.
//
//	<dir>/bundle.json  — machine-readable metadata (BundleVersion)
//	<dir>/kernel.il    — il.Assemble of the shrunk kernel, when one exists
//	<dir>/README.md    — what broke, how it was found, how to replay it

// BundleVersion is bumped when bundle.json's schema changes.
const BundleVersion = 1

// Bundle is bundle.json's schema.
type Bundle struct {
	Version int    `json:"version"`
	Oracle  string `json:"oracle"`
	Seed    int64  `json:"seed"`
	Step    int    `json:"step"`
	Detail  string `json:"detail"`
	// FaultPlan is the campaign's fault plan in fault.Parse syntax;
	// empty when no faults were armed.
	FaultPlan string `json:"fault_plan,omitempty"`
	// Sweep coordinates of the implicated point, when the violation is
	// kernel-specific.
	Arch     string  `json:"arch,omitempty"`
	Mode     string  `json:"mode,omitempty"`
	DataType string  `json:"data_type,omitempty"`
	BlockW   int     `json:"block_w,omitempty"`
	BlockH   int     `json:"block_h,omitempty"`
	X        float64 `json:"x,omitempty"`
	W        int     `json:"w,omitempty"`
	H        int     `json:"h,omitempty"`
	// KernelFile names the IL file; ShrunkFrom is the instruction count
	// before minimization (0 = shrinking did not apply).
	KernelFile string `json:"kernel_file,omitempty"`
	ShrunkFrom int    `json:"shrunk_from,omitempty"`
	// Repro is the command that re-runs the originating campaign.
	Repro string `json:"repro"`
}

// writeBundle renders a violation into cfg.BundleDir and returns the
// bundle directory.
func writeBundle(cfg Config, v Violation) (string, error) {
	dir := filepath.Join(cfg.BundleDir, fmt.Sprintf("step%03d_%s", v.Step, v.Oracle))
	for i := 1; ; i++ {
		if _, err := os.Stat(dir); os.IsNotExist(err) {
			break
		}
		dir = filepath.Join(cfg.BundleDir, fmt.Sprintf("step%03d_%s_%d", v.Step, v.Oracle, i))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}

	b := Bundle{
		Version: BundleVersion,
		Oracle:  v.Oracle,
		Seed:    cfg.Seed,
		Step:    v.Step,
		Detail:  v.Detail,
		Repro:   reproCommand(cfg, v),
	}
	if cfg.Faults != nil {
		b.FaultPlan = cfg.Faults.String()
	}
	if v.Kernel != nil {
		b.Arch = v.Point.Card.Arch.String()
		b.Mode = modeName(v.Point.Card.Mode)
		b.DataType = typeName(v.Point.Card.Type)
		b.BlockW, b.BlockH = v.Point.Card.BlockW, v.Point.Card.BlockH
		b.X, b.W, b.H = v.Point.X, v.Point.W, v.Point.H
		b.KernelFile = "kernel.il"
		b.ShrunkFrom = v.ShrunkFrom
		if err := os.WriteFile(filepath.Join(dir, "kernel.il"),
			[]byte(il.Assemble(v.Kernel)), 0o644); err != nil {
			return "", err
		}
	}

	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, "bundle.json"), append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte(bundleReadme(b)), 0o644); err != nil {
		return "", err
	}
	return dir, nil
}

// reproCommand renders the campaign invocation that found the
// violation. Replaying up to and including the violating step suffices;
// every step is independent of the ones before it.
func reproCommand(cfg Config, v Violation) string {
	cmd := fmt.Sprintf("amdmb soak -seed %d -steps %d", cfg.Seed, v.Step+1)
	if cfg.Faults != nil {
		cmd += fmt.Sprintf(" -faults %q", cfg.Faults.String())
	}
	if cfg.KillEvery > 0 {
		cmd += fmt.Sprintf(" -kill-every %d", cfg.KillEvery)
	}
	if cfg.ChurnWorkers > 0 {
		cmd += fmt.Sprintf(" -churn %d", cfg.ChurnWorkers)
	}
	if cfg.MaxDomain > 0 {
		cmd += fmt.Sprintf(" -max-domain %d", cfg.MaxDomain)
	}
	return cmd
}

func bundleReadme(b Bundle) string {
	s := "# Soak repro bundle\n\n" +
		fmt.Sprintf("The `%s` oracle was violated at step %d of the soak campaign seeded %d.\n\n", b.Oracle, b.Step, b.Seed) +
		"## What is here\n\n" +
		"- `bundle.json` — machine-readable metadata (`soak.Bundle`, version " + fmt.Sprint(b.Version) + ")\n"
	if b.KernelFile != "" {
		s += fmt.Sprintf("- `%s` — the implicated IL kernel", b.KernelFile)
		if b.ShrunkFrom > 0 {
			s += fmt.Sprintf(", shrunk from %d instructions by the conformance minimizer", b.ShrunkFrom)
		}
		s += "\n"
	}
	s += "\n## Observed\n\n```\n" + b.Detail + "\n```\n\n## Replay\n\n```\n" + b.Repro + "\n```\n"
	if b.KernelFile != "" {
		s += fmt.Sprintf("\nThe kernel ran on %s in %s mode (%s) over a %dx%d domain at x=%g.\n",
			b.Arch, b.Mode, b.DataType, b.W, b.H, b.X)
	}
	if b.FaultPlan != "" {
		s += fmt.Sprintf("\nFault plan in effect: `%s`.\n", b.FaultPlan)
	}
	return s
}

// LoadBundle reads a bundle directory back: metadata plus the parsed
// kernel, when one is included.
func LoadBundle(dir string) (*Bundle, *il.Kernel, error) {
	data, err := os.ReadFile(filepath.Join(dir, "bundle.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("soak: %w", err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, nil, fmt.Errorf("soak: bundle.json: %w", err)
	}
	if b.Version != BundleVersion {
		return nil, nil, fmt.Errorf("soak: bundle version %d, want %d", b.Version, BundleVersion)
	}
	var k *il.Kernel
	if b.KernelFile != "" {
		src, err := os.ReadFile(filepath.Join(dir, b.KernelFile))
		if err != nil {
			return nil, nil, fmt.Errorf("soak: %w", err)
		}
		k, err = il.Parse(string(src))
		if err != nil {
			return nil, nil, fmt.Errorf("soak: %s: %w", b.KernelFile, err)
		}
	}
	return &b, k, nil
}

// ReplayBundle re-runs a bundle's oracle against its recorded kernel
// and coordinates. It returns nil when the violation no longer
// reproduces (fixed), and a descriptive error when it still does — the
// shape `amdmb soak -replay <dir>` and the regression tests want.
// Replaying an "injected" bundle requires the same TestOracle in cfg.
func ReplayBundle(dir string, cfg Config) error {
	b, k, err := LoadBundle(dir)
	if err != nil {
		return err
	}
	cfg.Seed = b.Seed
	if b.FaultPlan != "" && cfg.Faults == nil {
		cfg.Faults, err = fault.Parse(b.FaultPlan)
		if err != nil {
			return fmt.Errorf("soak: bundle fault plan %q: %w", b.FaultPlan, err)
		}
	}
	cfg = cfg.withDefaults()

	switch b.Oracle {
	case OracleInjected:
		if cfg.TestOracle == nil {
			return fmt.Errorf("soak: replaying an injected-oracle bundle needs cfg.TestOracle")
		}
		if k == nil {
			return fmt.Errorf("soak: injected bundle has no kernel")
		}
		if oerr := cfg.TestOracle(k); oerr != nil {
			return fmt.Errorf("soak: bundle still reproduces: %v", oerr)
		}
		return nil
	case OracleDeterminism:
		if k == nil {
			return fmt.Errorf("soak: determinism bundle has no kernel")
		}
		p, err := bundlePoint(b, k)
		if err != nil {
			return err
		}
		c := &campaign{cfg: cfg}
		if c.determinismPred(p)(k) {
			return fmt.Errorf("soak: bundle still reproduces: cached and uncached runs of %s diverge", k.Name)
		}
		return nil
	default:
		return fmt.Errorf("soak: oracle %q bundles are evidence, not replayable checks", b.Oracle)
	}
}

// bundlePoint reconstructs the sweep point a bundle recorded.
func bundlePoint(b *Bundle, k *il.Kernel) (core.KernelPoint, error) {
	var arch device.Arch
	found := false
	for _, spec := range device.All() {
		if spec.Arch.String() == b.Arch {
			arch = spec.Arch
			found = true
		}
	}
	if !found {
		return core.KernelPoint{}, fmt.Errorf("soak: bundle names unknown arch %q", b.Arch)
	}
	card := core.Card{Arch: arch, Mode: k.Mode, Type: k.Type, BlockW: b.BlockW, BlockH: b.BlockH}
	return core.KernelPoint{Card: card, X: b.X, K: k, W: b.W, H: b.H}, nil
}

func modeName(m il.ShaderMode) string {
	if m == il.Compute {
		return "compute"
	}
	return "pixel"
}

func typeName(t il.DataType) string {
	if t == il.Float4 {
		return "float4"
	}
	return "float"
}
