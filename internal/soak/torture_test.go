package soak

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"

	"amdgpubench/internal/core"
)

// The crash-torture test re-executes its own test binary as the victim:
// TestMain diverts into tortureChild when the marker env var is set, so
// the child is a real OS process running a real checkpointed sweep that
// a real SIGKILL lands on — no in-process simulation of "crash".

const (
	childEnvMarker     = "AMDMB_SOAK_TORTURE_CHILD"
	childEnvCheckpoint = "AMDMB_SOAK_CHILD_CHECKPOINT"
	childEnvOut        = "AMDMB_SOAK_CHILD_OUT"
)

func TestMain(m *testing.M) {
	if os.Getenv(childEnvMarker) == "1" {
		os.Exit(tortureChild())
	}
	os.Exit(m.Run())
}

// childPoints is the sweep every torture child runs: one campaign
// step's worth of seeded kernels, wide enough (24 points) that three
// kills always land mid-sweep.
func childPoints() []core.KernelPoint {
	cfg := Config{Seed: 1234, KernelsPerStep: 24, MaxDomain: 48}.withDefaults()
	return planStep(cfg, 0).points
}

// tortureChild runs the fixed sweep against the inherited checkpoint
// and writes the runs as JSON. It slows each launch a little so the
// parent's progress poll always catches a mid-sweep instant to kill.
func tortureChild() int {
	s := core.NewSuite()
	s.Iterations = 1
	s.Workers = 2
	s.Retries = 2
	s.DeadlineCycles = 1 << 22
	s.Checkpoint = os.Getenv(childEnvCheckpoint)
	// Save per point: the parent observes progress through checkpoint
	// growth, and every save is another instant for a kill to tear. The
	// default debounce would batch 8 points per write — fewer kill
	// windows, and the last batch can land so close to exit that the
	// final cycle's kill misses the child entirely.
	s.CheckpointFlushEvery = 1
	s.BeforeLaunch = func() { time.Sleep(3 * time.Millisecond) }
	runs, err := s.RunKernelPoints(childPoints())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	data, err := json.MarshalIndent(runs, "", " ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(os.Getenv(childEnvOut), data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// TestTortureSurvivesRepeatedSIGKILL is the acceptance criterion: three
// consecutive SIGKILL/resume cycles, zero quarantined checkpoints, and
// the survivor's results bit-identical to an uninterrupted run.
func TestTortureSurvivesRepeatedSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	ck := dir + "/torture.ckpt"
	out := dir + "/tortured.json"

	child := func(cycle int) *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			childEnvMarker+"=1",
			childEnvCheckpoint+"="+ck,
			childEnvOut+"="+out,
		)
		cmd.Stderr = os.Stderr
		return cmd
	}

	var log bytes.Buffer
	res, err := Torture(TortureConfig{
		NewChild:   child,
		Checkpoint: ck,
		Cycles:     3,
		Poll:       time.Millisecond,
		Timeout:    90 * time.Second,
		Out:        &log,
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, log.String())
	}
	if res.Kills != 3 {
		t.Errorf("landed %d kills, want 3 (%d clean exits)\n%s", res.Kills, res.CleanExits, log.String())
	}
	if res.Quarantined != 0 {
		t.Errorf("%d checkpoints quarantined after SIGKILL torture; the atomic save protocol tore", res.Quarantined)
	}
	if res.Restored == 0 {
		t.Error("final run restored nothing: the kills never preserved progress")
	}

	tortured, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference: same sweep, fresh checkpoint, no kills.
	refOut := dir + "/reference.json"
	refCmd := exec.Command(os.Args[0])
	refCmd.Env = append(os.Environ(),
		childEnvMarker+"=1",
		childEnvCheckpoint+"="+dir+"/reference.ckpt",
		childEnvOut+"="+refOut,
	)
	refCmd.Stderr = os.Stderr
	if err := refCmd.Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	reference, err := os.ReadFile(refOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tortured, reference) {
		t.Errorf("tortured results differ from uninterrupted reference\n tortured:  %d bytes\n reference: %d bytes",
			len(tortured), len(reference))
	}
}

func TestTortureConfigValidation(t *testing.T) {
	if _, err := Torture(TortureConfig{}); err == nil {
		t.Fatal("empty torture config accepted")
	}
}

func TestCheckpointRecordsCounts(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/ck.json"
	if n := checkpointRecords(path); n != 0 {
		t.Fatalf("missing file counted %d records", n)
	}
	if err := os.WriteFile(path, []byte(`{"signature":"x","runs":{"0":{},"1":{}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := checkpointRecords(path); n != 2 {
		t.Fatalf("counted %d records, want 2", n)
	}
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := checkpointRecords(path); n != 0 {
		t.Fatalf("torn file counted %d records", n)
	}
}
