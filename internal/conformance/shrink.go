package conformance

import "amdgpubench/internal/il"

// Pred reports whether a kernel still exhibits the failure being
// minimized. Shrink only ever evaluates it on kernels that pass
// il.Kernel.Validate, so a predicate wrapping an oracle never confuses
// "invalid shrink candidate" with "still failing".
type Pred func(*il.Kernel) bool

// shrinkEvalBudget caps predicate evaluations per Shrink call. Predicates
// typically compile and interpret the candidate, so this bounds total
// shrink cost; the transformation lattice itself terminates without it.
const shrinkEvalBudget = 20000

// Shrink greedily minimizes a failing kernel while pred keeps holding.
// It repeats passes over a fixed transformation set — instruction removal
// with use rewiring, output dropping, float4->float and compute->pixel
// and global->texture flattening, constant-buffer collapse, and opcode
// weakening to mov — until a full sweep makes no progress. Every
// transformation strictly decreases the measure
//
//	10000*len(Code) + 100*(inputs+outputs+consts) + 10*flags + nonMovALU
//
// so termination does not depend on the evaluation budget. If pred does
// not hold on k itself, k is returned unchanged.
func Shrink(k *il.Kernel, pred Pred) *il.Kernel {
	if !pred(k) {
		return k
	}
	cur := cloneKernel(k)
	budget := shrinkEvalBudget
	try := func(cand *il.Kernel) bool {
		if cand == nil || budget <= 0 || cand.Validate() != nil {
			return false
		}
		budget--
		return pred(cand)
	}

	for progress := true; progress && budget > 0; {
		progress = false
		// Remove instructions back to front: later instructions have fewer
		// dependents, so backward scans converge in fewer sweeps.
		for i := len(cur.Code) - 1; i >= 0 && budget > 0; i-- {
			if cand := removeInstr(cur, i); try(cand) {
				cur, progress = cand, true
			}
		}
		for o := cur.NumOutputs - 1; o >= 1 && budget > 0; o-- {
			if cand := dropOutput(cur, o); try(cand) {
				cur, progress = cand, true
			}
		}
		for _, cand := range flatten(cur) {
			if try(cand) {
				cur, progress = cand, true
			}
		}
		for i := 0; i < len(cur.Code) && budget > 0; i++ {
			if cand := weakenToMov(cur, i); try(cand) {
				cur, progress = cand, true
			}
		}
	}

	// Cosmetic-only final step: compact register numbering so the report
	// reads r0,r1,... in definition order. Renaming is semantics-preserving
	// at the IL level, but the predicate may inspect compiled artifacts, so
	// keep the renamed form only if it still fails.
	if cand := compactRegisters(cur); try(cand) {
		cur = cand
	}
	cur.Name = k.Name + "_shrunk"
	return cur
}

func cloneKernel(k *il.Kernel) *il.Kernel {
	c := *k
	c.Code = append([]il.Instr(nil), k.Code...)
	return &c
}

// removeInstr deletes instruction i, rewiring any later use of its
// destination to the instruction's own first source (collapsing the op
// out of its chain) or, for fetches, to the nearest earlier definition.
// A fetch whose input resource has no other fetch also undeclares that
// input. Returns nil when the removal cannot produce a valid kernel.
func removeInstr(k *il.Kernel, i int) *il.Kernel {
	in := k.Code[i]
	if in.Op.IsStore() {
		// A store is removable only when a sibling store keeps its output
		// written; single stores disappear via dropOutput instead.
		siblings := 0
		for _, x := range k.Code {
			if x.Op.IsStore() && x.Res == in.Res {
				siblings++
			}
		}
		if siblings < 2 {
			return nil
		}
		c := cloneKernel(k)
		c.Code = append(c.Code[:i], c.Code[i+1:]...)
		return c
	}

	repl := in.SrcA
	if repl == il.NoReg {
		for j := i - 1; j >= 0; j-- {
			if k.Code[j].Dst != il.NoReg {
				repl = k.Code[j].Dst
				break
			}
		}
	}
	used := false
	for _, x := range k.Code[i+1:] {
		if x.SrcA == in.Dst || x.SrcB == in.Dst {
			used = true
			break
		}
	}
	if used && repl == il.NoReg {
		return nil
	}
	c := cloneKernel(k)
	c.Code = append(c.Code[:i], c.Code[i+1:]...)
	for j := i; j < len(c.Code); j++ {
		if c.Code[j].SrcA == in.Dst {
			c.Code[j].SrcA = repl
		}
		if c.Code[j].SrcB == in.Dst {
			c.Code[j].SrcB = repl
		}
	}
	if in.Op.IsFetch() {
		still := false
		for _, x := range c.Code {
			if x.Op.IsFetch() && x.Res == in.Res {
				still = true
				break
			}
		}
		if !still {
			c.NumInputs--
			for j := range c.Code {
				if c.Code[j].Op.IsFetch() && c.Code[j].Res > in.Res {
					c.Code[j].Res--
				}
			}
		}
	}
	return c
}

// dropOutput removes declared output o and every store to it. Requires
// o >= 1 so at least one output always remains.
func dropOutput(k *il.Kernel, o int) *il.Kernel {
	if k.NumOutputs <= 1 {
		return nil
	}
	c := cloneKernel(k)
	kept := c.Code[:0]
	for _, x := range c.Code {
		if x.Op.IsStore() {
			if x.Res == o {
				continue
			}
			if x.Res > o {
				x.Res--
			}
		}
		kept = append(kept, x)
	}
	c.Code = kept
	c.NumOutputs--
	return c
}

// flatten yields the single-flag simplifications: narrower data type,
// simpler shader mode, cached memory spaces, and constant-buffer collapse.
func flatten(k *il.Kernel) []*il.Kernel {
	var out []*il.Kernel
	if k.Type == il.Float4 {
		c := cloneKernel(k)
		c.Type = il.Float
		out = append(out, c)
	}
	if k.Mode == il.Compute {
		c := cloneKernel(k)
		c.Mode = il.Pixel
		out = append(out, c)
	}
	if k.InputSpace == il.GlobalSpace {
		c := cloneKernel(k)
		c.InputSpace = il.TextureSpace
		for j := range c.Code {
			if c.Code[j].Op == il.OpGlobalLoad {
				c.Code[j].Op = il.OpSample
			}
		}
		out = append(out, c)
	}
	if k.OutSpace == il.GlobalSpace && k.Mode == il.Pixel {
		c := cloneKernel(k)
		c.OutSpace = il.TextureSpace
		for j := range c.Code {
			if c.Code[j].Op == il.OpGlobalStore {
				c.Code[j].Op = il.OpExport
			}
		}
		out = append(out, c)
	}
	if k.NumConsts > 0 {
		anyUse, maxUse := false, 0
		for _, x := range k.Code {
			if x.Op.ReadsConst() {
				anyUse = true
				if x.Res > maxUse {
					maxUse = x.Res
				}
			}
		}
		switch {
		case !anyUse:
			c := cloneKernel(k)
			c.NumConsts = 0
			out = append(out, c)
		case k.NumConsts > maxUse+1:
			c := cloneKernel(k)
			c.NumConsts = maxUse + 1
			out = append(out, c)
		case k.NumConsts > 1:
			c := cloneKernel(k)
			for j := range c.Code {
				if c.Code[j].Op.ReadsConst() {
					c.Code[j].Res = 0
				}
			}
			c.NumConsts = 1
			out = append(out, c)
		}
	}
	return out
}

// weakenToMov replaces a non-mov ALU instruction with mov of its first
// source, testing whether the failure depends on the operation at all.
func weakenToMov(k *il.Kernel, i int) *il.Kernel {
	in := k.Code[i]
	if !in.Op.IsALU() || in.Op == il.OpMov {
		return nil
	}
	c := cloneKernel(k)
	c.Code[i] = il.Instr{Op: il.OpMov, Dst: in.Dst, SrcA: in.SrcA, SrcB: il.NoReg, Res: -1}
	return c
}

// compactRegisters renumbers destinations to r0,r1,... in definition
// order, closing the gaps earlier removals left.
func compactRegisters(k *il.Kernel) *il.Kernel {
	c := cloneKernel(k)
	remap := make(map[il.Reg]il.Reg)
	next := il.Reg(0)
	for j := range c.Code {
		in := &c.Code[j]
		if in.SrcA != il.NoReg {
			in.SrcA = remap[in.SrcA]
		}
		if in.SrcB != il.NoReg {
			in.SrcB = remap[in.SrcB]
		}
		if in.Dst != il.NoReg {
			remap[in.Dst] = next
			in.Dst = next
			next++
		}
	}
	return c
}
