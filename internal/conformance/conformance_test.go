package conformance

import (
	"math/rand"
	"strings"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/interp"
)

// TestDifferentialOracles is the suite's main property check: 600
// generator-produced kernels, each run through every oracle (round-trip,
// IL-vs-ISA differential, pipeline identity, disassembly determinism,
// DCE semantics) against a device cycled through the full spec table. A
// failure is shrunk before reporting so the log carries a minimal
// reproducer, not a 200-instruction haystack.
func TestDifferentialOracles(t *testing.T) {
	const trials = 600
	rng := rand.New(rand.NewSource(0xc0fe))
	specs := device.All()
	for i := 0; i < trials; i++ {
		k := RandomKernel(rng)
		spec := SpecFor(k, uint8(i))
		if err := CheckKernel(k, spec); err != nil {
			min := Shrink(k, func(c *il.Kernel) bool { return CheckKernel(c, spec) != nil })
			t.Fatalf("trial %d on %s: %v\nshrunk reproducer (%d instrs):\n%s",
				i, spec.Arch, err, len(min.Code), il.Assemble(min))
		}
	}
	_ = specs
}

// TestGeneratorCoverage pins the generator's breadth: across a fixed
// sample it must exercise every opcode, both modes, both data types, both
// memory spaces on each side, single-input and >=48-input kernels, and
// multi-hundred-instruction bodies. If a refactor narrows the generator,
// the differential oracles silently weaken — this test makes that loud.
func TestGeneratorCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := map[il.Opcode]int{}
	modes := map[il.ShaderMode]int{}
	types := map[il.DataType]int{}
	inSp := map[il.MemSpace]int{}
	outSp := map[il.MemSpace]int{}
	minIn, maxIn, maxCode := 1<<30, 0, 0
	for i := 0; i < 400; i++ {
		k := RandomKernel(rng)
		modes[k.Mode]++
		types[k.Type]++
		inSp[k.InputSpace]++
		outSp[k.OutSpace]++
		if k.NumInputs < minIn {
			minIn = k.NumInputs
		}
		if k.NumInputs > maxIn {
			maxIn = k.NumInputs
		}
		if len(k.Code) > maxCode {
			maxCode = len(k.Code)
		}
		for _, in := range k.Code {
			ops[in.Op]++
		}
	}
	for op := il.OpSample; op <= il.OpGlobalStore; op++ {
		if ops[op] == 0 {
			t.Errorf("generator never emitted %v", op)
		}
	}
	if len(modes) != 2 || len(types) != 2 || len(inSp) != 2 || len(outSp) != 2 {
		t.Errorf("generator missed a mode/type/space: modes=%v types=%v in=%v out=%v", modes, types, inSp, outSp)
	}
	if minIn != 1 {
		t.Errorf("generator never produced a single-input kernel (min %d)", minIn)
	}
	if maxIn < 48 {
		t.Errorf("generator never reached high register pressure (max inputs %d)", maxIn)
	}
	if maxCode < 150 {
		t.Errorf("generator never crossed the ALU clause split (max body %d)", maxCode)
	}
}

// TestGeneratorDeterministic: one seed, one kernel — the property the
// fuzz targets rely on to address kernels by seed.
func TestGeneratorDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := RandomKernel(rand.New(rand.NewSource(seed)))
		b := RandomKernel(rand.New(rand.NewSource(seed)))
		if a.Hash() != b.Hash() || il.Assemble(a) != il.Assemble(b) {
			t.Fatalf("seed %d produced two different kernels", seed)
		}
	}
}

// TestOraclesCatchInjectedMiscompile proves the differential oracle has
// teeth: compiling with PV forwarding force-disabled but comparing
// against a program compiled normally must diverge somewhere in a batch
// of generated kernels is NOT expected — both are correct compilations.
// Instead, inject a real semantic fault by swapping the stored register
// of a two-output kernel and confirm CheckRoundTrip stays quiet while
// the interpreter-level comparison catches it.
func TestOraclesCatchInjectedMiscompile(t *testing.T) {
	// Build a tiny kernel: two fetches, an add, two stores.
	k := &il.Kernel{
		Name: "inject", Mode: il.Pixel, Type: il.Float,
		NumInputs: 2, NumOutputs: 2,
		InputSpace: il.TextureSpace, OutSpace: il.TextureSpace,
		Code: []il.Instr{
			{Op: il.OpSample, Dst: 0, SrcA: il.NoReg, SrcB: il.NoReg, Res: 0},
			{Op: il.OpSample, Dst: 1, SrcA: il.NoReg, SrcB: il.NoReg, Res: 1},
			{Op: il.OpAdd, Dst: 2, SrcA: 0, SrcB: 1, Res: -1},
			{Op: il.OpExport, Dst: il.NoReg, SrcA: 2, SrcB: il.NoReg, Res: 0},
			{Op: il.OpExport, Dst: il.NoReg, SrcA: 1, SrcB: il.NoReg, Res: 1},
		},
	}
	spec := device.Lookup(device.RV770)
	if err := CheckKernel(k, spec); err != nil {
		t.Fatalf("clean kernel rejected: %v", err)
	}
	// "Miscompile": the program for a kernel whose store reads the wrong
	// register. The differential oracle compares the original kernel's IL
	// semantics against this program and must object.
	bad := cloneKernel(k)
	bad.Code[3].SrcA = 0
	prog, err := ilc.Compile(bad, spec)
	if err != nil {
		t.Fatal(err)
	}
	env := DefaultEnv()
	want, err := interp.RunIL(k, env, interp.Thread{X: 3, Y: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := interp.RunISA(prog, env, interp.Thread{X: 3, Y: 1})
	if err != nil {
		t.Fatal(err)
	}
	if interp.OutputsEqual(want, got, k.Type.Lanes()) {
		t.Fatal("differential comparison accepted a wrong-register store")
	}
}

// TestDivergenceErrorCarriesKernel: the error text must embed runnable
// assembly, the contract that makes fuzz crash logs self-contained.
func TestDivergenceErrorCarriesKernel(t *testing.T) {
	k := RandomKernel(rand.New(rand.NewSource(1)))
	d := &Divergence{Oracle: "differential", Detail: "boom", Kernel: k}
	msg := d.Error()
	for _, want := range []string{"differential", "boom", "_2_0 ; kernel ", "end\n", k.Name} {
		if !strings.Contains(msg, want) {
			t.Errorf("divergence error missing %q:\n%s", want, msg)
		}
	}
}
