package conformance

// Metamorphic invariants: properties relating a simulation or replay to a
// transformed variant of itself, checkable without knowing the true
// output. Where the differential oracles pin functional semantics, these
// pin the timing model — the part of the suite no reference interpreter
// can cross-check.

import (
	"fmt"

	"amdgpubench/internal/cache"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/isa"
	"amdgpubench/internal/raster"
	"amdgpubench/internal/sim"
)

// ExtendDependentALU returns a copy of k with a chain of n additional
// dependent add instructions spliced in immediately before the final
// store, which is rewired to consume the end of the chain. The chain
// serializes (each add reads the previous result), so it adds ALU work to
// the critical path without touching fetch or store traffic.
func ExtendDependentALU(k *il.Kernel, n int) *il.Kernel {
	c := cloneKernel(k)
	if n <= 0 {
		return c
	}
	last := -1
	for i, in := range c.Code {
		if in.Op.IsStore() {
			last = i
		}
	}
	reg := c.Code[last].SrcA
	base := il.Reg(c.NumTemps())
	chain := make([]il.Instr, n)
	for i := range chain {
		chain[i] = il.Instr{Op: il.OpAdd, Dst: base + il.Reg(i), SrcA: reg, SrcB: reg, Res: -1}
		reg = base + il.Reg(i)
	}
	code := make([]il.Instr, 0, len(c.Code)+n)
	code = append(code, c.Code[:last]...)
	code = append(code, chain...)
	code = append(code, c.Code[last:]...)
	code[last+n].SrcA = reg
	c.Code = code
	return c
}

// OrderFor returns a domain walk matching the kernel's shader mode: the
// rasterizer's tiled order for pixel kernels, the paper's 4x16 block for
// compute kernels.
func OrderFor(mode il.ShaderMode) raster.Order {
	if mode == il.Compute {
		return raster.Block4x16()
	}
	return raster.PixelOrder()
}

func simResult(k *il.Kernel, spec device.Spec, w, h int) (sim.Result, *isa.Program, error) {
	prog, err := ilc.Compile(k, spec)
	if err != nil {
		return sim.Result{}, nil, fmt.Errorf("compile: %w", err)
	}
	r, err := sim.Run(sim.Config{
		Spec: spec, Prog: prog, Order: OrderFor(k.Mode),
		W: w, H: h, Iterations: 1,
	})
	if err != nil {
		return sim.Result{}, nil, fmt.Errorf("sim: %w", err)
	}
	return r, prog, nil
}

// aluSlots counts scalar ALU slot occupancy across the program — the
// compiler-invariant measure of ALU work, independent of how the VLIW
// packer distributes it over bundles.
func aluSlots(p *isa.Program) int {
	n := 0
	for i := range p.Clauses {
		c := &p.Clauses[i]
		if c.Kind != isa.ClauseALU {
			continue
		}
		for _, b := range c.Bundles {
			n += len(b.Ops)
		}
	}
	return n
}

// monotonicJitter bounds the scheduling anomaly the event-driven batch
// simulator is allowed: greedy list scheduling is subject to Graham's
// anomalies, where adding work de-synchronizes the resident wavefronts'
// contention pattern and a batch finishes slightly sooner. Measured
// anomalies sit well under 1%; anything past 2% is a model bug, not
// scheduling jitter.
const monotonicJitter = 0.98

// CheckCycleMonotonic asserts that extending a kernel with chains of
// dependent ALU instructions cannot speed it up. The strict invariants:
// the compiled program's scalar ALU slot count grows by exactly the ops
// added (the compiler drops nothing), per-wavefront ALU occupancy never
// falls (the packer may absorb a short chain into half-empty bundles,
// so equality is legal), register footprint never shrinks, and occupancy
// never rises. Total cycles may wobble within the scheduling-jitter
// bound — both per step and against the base — but no further. The spec
// must support the kernel's shader mode.
func CheckCycleMonotonic(k *il.Kernel, spec device.Spec) error {
	const w, h = 128, 128
	fail := func(form string, args ...any) error {
		return fmt.Errorf("conformance: monotonic: %s on %s: %s\nkernel:\n%s",
			k.Name, spec.Arch, fmt.Sprintf(form, args...), il.Assemble(k))
	}
	base, baseProg, err := simResult(k, spec, w, h)
	if err != nil {
		return fail("base: %v", err)
	}
	baseSlots := aluSlots(baseProg)
	perWaveALU := func(r sim.Result) uint64 { return r.Counters.ALU / uint64(r.WavesPerSIMD) }
	prev, prevN := base, 0
	for _, n := range []int{4, 32, 160} {
		ext := ExtendDependentALU(k, n)
		if err := ext.Validate(); err != nil {
			return fail("extension by %d invalid: %v", n, err)
		}
		r, prog, err := simResult(ext, spec, w, h)
		if err != nil {
			return fail("+%d ALU: %v", n, err)
		}
		// Each added add is a vector op: one scalar slot per lane.
		if got, want := aluSlots(prog), baseSlots+n*k.Type.Lanes(); got != want {
			return fail("+%d dependent ALU ops compiled to %d scalar slots, want %d",
				n, got, want)
		}
		if perWaveALU(r) < perWaveALU(prev) {
			return fail("+%d dependent ALU ops lowered per-wave ALU occupancy (%d -> %d)",
				n, perWaveALU(prev), perWaveALU(r))
		}
		if r.GPRs < prev.GPRs {
			return fail("+%d dependent ALU ops shrank the register footprint (%d -> %d GPRs)",
				n, prev.GPRs, r.GPRs)
		}
		if r.WavesPerSIMD > prev.WavesPerSIMD {
			return fail("+%d dependent ALU ops raised occupancy (%d -> %d waves/SIMD)",
				n, prev.WavesPerSIMD, r.WavesPerSIMD)
		}
		if float64(r.Cycles) < float64(prev.Cycles)*monotonicJitter {
			return fail("+%d dependent ALU ops ran in %d cycles, beyond jitter below %d cycles at +%d",
				n, r.Cycles, prev.Cycles, prevN)
		}
		prev, prevN = r, n
	}
	if float64(prev.Cycles) < float64(base.Cycles)*monotonicJitter {
		return fail("+%d dependent ALU ops beat the base kernel beyond jitter (%d vs %d cycles)",
			prevN, prev.Cycles, base.Cycles)
	}
	return nil
}

// CheckDomainLinearity asserts that doubling the execution domain scales
// the per-iteration cycle count by ~2x once the constant
// sim.LaunchOverheadCycles is subtracted: the steady-state batch is
// replicated across the domain, so work scales with wavefront count. The
// tolerance absorbs remainder-batch rounding and domain-edge cache
// effects; [1.8, 2.2] holds comfortably for generator-produced kernels.
func CheckDomainLinearity(k *il.Kernel, spec device.Spec, lo, hi float64) error {
	const w, h = 512, 512
	r1, _, err := simResult(k, spec, w, h)
	if err != nil {
		return fmt.Errorf("conformance: linearity: %w\nkernel:\n%s", err, il.Assemble(k))
	}
	r2, _, err := simResult(k, spec, w, 2*h)
	if err != nil {
		return fmt.Errorf("conformance: linearity: doubled domain: %w\nkernel:\n%s", err, il.Assemble(k))
	}
	c1, c2 := r1.Cycles, r2.Cycles
	work1 := float64(c1 - sim.LaunchOverheadCycles)
	work2 := float64(c2 - sim.LaunchOverheadCycles)
	if work1 <= 0 {
		return fmt.Errorf("conformance: linearity: %s: no work beyond launch overhead (%d cycles)", k.Name, c1)
	}
	if ratio := work2 / work1; ratio < lo || ratio > hi {
		return fmt.Errorf(
			"conformance: linearity: %s on %s: doubling the domain scaled overhead-corrected cycles by %.3f, outside [%.2f, %.2f] (%d -> %d)\nkernel:\n%s",
			k.Name, spec.Arch, ratio, lo, hi, c1, c2, il.Assemble(k))
	}
	return nil
}

// CheckReplayConservation asserts the cache replay's conservation laws,
// which hold for every configuration: every access is a hit or a miss,
// every miss refills from exactly one of L2 or DRAM, fill traffic is
// miss count times line size, and the replay executes exactly one fetch
// per (input resource, resident wavefront) pair with at most a
// wavefront's worth of lane accesses each.
func CheckReplayConservation(cfg cache.TraceConfig) error {
	st, err := cache.Replay(cfg)
	if err != nil {
		return fmt.Errorf("conformance: replay: %w", err)
	}
	fail := func(form string, args ...any) error {
		return fmt.Errorf("conformance: replay conservation (%+v): "+form, append([]any{cfg}, args...)...)
	}
	if want := cfg.NumInputs * cfg.ResidentWaves; st.FetchExecs != want {
		return fail("FetchExecs %d != inputs x waves %d", st.FetchExecs, want)
	}
	if st.Hits+st.Misses != st.Accesses {
		return fail("Hits %d + Misses %d != Accesses %d", st.Hits, st.Misses, st.Accesses)
	}
	if st.L2Hits+st.L2Misses != st.Misses {
		return fail("L2Hits %d + L2Misses %d != Misses %d", st.L2Hits, st.L2Misses, st.Misses)
	}
	if st.MissBytes != st.Misses*cfg.Spec.L1LineBytes {
		return fail("MissBytes %d != Misses %d x line %d", st.MissBytes, st.Misses, cfg.Spec.L1LineBytes)
	}
	if st.DRAMBytes != st.L2Misses*cfg.Spec.L1LineBytes {
		return fail("DRAMBytes %d != L2Misses %d x line %d", st.DRAMBytes, st.L2Misses, cfg.Spec.L1LineBytes)
	}
	if st.Accesses > st.FetchExecs*raster.WavefrontSize {
		return fail("Accesses %d exceed %d lanes per fetch", st.Accesses, raster.WavefrontSize)
	}
	if st.RowActivations > st.L2Misses {
		return fail("RowActivations %d exceed L2Misses %d", st.RowActivations, st.L2Misses)
	}
	return nil
}

// CheckReplayRotationInvariance asserts hit counts are permutation-safe
// where the model says they must be: with the whole domain resident and
// caches large enough (made fully associative here, capacity beyond the
// surface footprint) every miss is compulsory — the first touch of each
// line — so rotating which wavefront leads the resident window cannot
// change any count except RowActivations, which is legitimately
// order-dependent and excluded.
func CheckReplayRotationInvariance(cfg cache.TraceConfig, rotations []int) error {
	cfg.ResidentWaves = cfg.Order.WavefrontCount(cfg.W, cfg.H)
	cfg.FirstWave = 0

	// Fully-associative caches sized past the total surface footprint:
	// one set, LRU over everything, so hits and misses depend only on the
	// set of lines touched, not the touch order.
	foot := raster.Layout{W: cfg.W, H: cfg.H, ElemBytes: cfg.ElemBytes}.SizeBytes() * cfg.NumInputs
	size := cfg.Spec.L1LineBytes
	for size < 4*foot {
		size *= 2
	}
	cfg.Spec.L1CacheBytes = size
	cfg.Spec.L1Ways = size / cfg.Spec.L1LineBytes
	cfg.Spec.L2CacheBytes = size
	cfg.Spec.L2Ways = size / cfg.Spec.L1LineBytes

	base, err := cache.Replay(cfg)
	if err != nil {
		return fmt.Errorf("conformance: rotation: %w", err)
	}
	base.RowActivations = 0
	for _, rot := range rotations {
		c := cfg
		c.FirstWave = rot
		st, err := cache.Replay(c)
		if err != nil {
			return fmt.Errorf("conformance: rotation by %d: %w", rot, err)
		}
		st.RowActivations = 0
		if st != base {
			return fmt.Errorf(
				"conformance: rotation: compulsory-miss replay is order-sensitive: FirstWave %d gives %+v, FirstWave 0 gives %+v (config %+v)",
				rot, st, base, c)
		}
	}
	return nil
}
