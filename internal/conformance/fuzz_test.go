package conformance

// Native fuzz targets. Each wraps the package's oracles so `go test
// -fuzz` explores beyond the fixed-seed property tests; during a plain
// `go test` run the targets execute their seed corpora (f.Add seeds plus
// the checked-in files under testdata/fuzz/<Name>/) as regression tests.
//
// Reproducing a failure: the fuzzer writes the crashing entry to
// testdata/fuzz/<Name>/<hash>; `go test -run=<Name>/<hash>` replays it.
// Failure reports embed the shrunk kernel's assembly, so the minimal
// reproducer is in the log before any manual work starts.

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"amdgpubench/internal/cache"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/raster"
)

// FuzzParseAssemble feeds arbitrary text to the IL parser. Whatever
// parses into a valid kernel must survive the Assemble->Parse round trip
// with an identical structural hash and a fixpoint text form; everything
// else must be rejected with an error, never a panic.
func FuzzParseAssemble(f *testing.F) {
	for seed := int64(1); seed <= 4; seed++ {
		f.Add(il.Assemble(RandomKernel(rand.New(rand.NewSource(seed)))))
	}
	f.Add("il_ps_2_0 ; kernel empty\ndcl_output o0\nend\n")
	f.Add("garbage\n")
	f.Fuzz(func(t *testing.T, src string) {
		k, err := il.Parse(src)
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		if k.Validate() != nil {
			return // parseable but not a well-formed kernel
		}
		if err := CheckRoundTrip(k); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzCompileDifferential addresses a generated kernel by (seed, spec
// selector) and runs the full oracle stack; a divergence is shrunk
// before reporting.
func FuzzCompileDifferential(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed, seed%3)
	}
	f.Fuzz(func(t *testing.T, seed, sel uint64) {
		k := RandomKernel(rand.New(rand.NewSource(int64(seed))))
		spec := SpecFor(k, uint8(sel))
		if err := CheckKernel(k, spec); err != nil {
			min := Shrink(k, func(c *il.Kernel) bool { return CheckKernel(c, spec) != nil })
			t.Fatalf("seed %d on %s: %v\nshrunk reproducer (%d instrs):\n%s",
				seed, spec.Arch, err, len(min.Code), il.Assemble(min))
		}
	})
}

// replayConfigFromBits decodes a packed uint64 into a bounded replay
// geometry, so the fuzzer explores domain shapes, input counts,
// residency and walk orders without ever leaving the valid range.
func replayConfigFromBits(geom uint64) cache.TraceConfig {
	specs := device.All()
	orders := []raster.Order{raster.PixelOrder(), raster.Naive64x1(), raster.Block4x16()}
	elem := 4
	if geom&(1<<30) != 0 {
		elem = 16
	}
	return cache.TraceConfig{
		Spec:          specs[(geom>>40)%uint64(len(specs))],
		Order:         orders[(geom>>32)%uint64(len(orders))],
		W:             int(1 + geom&0xFF),
		H:             int(1 + (geom>>8)&0xFF),
		ElemBytes:     elem,
		NumInputs:     int(1 + (geom>>16)&0x3F),
		ResidentWaves: int(1 + (geom>>24)&0x1F),
		FirstWave:     int((geom >> 48) & 0xFFFF),
	}
}

// FuzzReplay checks the cache replay's conservation laws over fuzzed
// geometries.
func FuzzReplay(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(0x0001_0002_0304_3F7F))
	f.Add(uint64(0xFFFF_0102_4011_1010))
	f.Fuzz(func(t *testing.T, geom uint64) {
		if err := CheckReplayConservation(replayConfigFromBits(geom)); err != nil {
			t.Fatal(err)
		}
	})
}

var updateCorpus = flag.Bool("update-corpus", false, "regenerate the checked-in seed corpora under testdata/fuzz")

// corpusEntry renders one corpus file in the "go test fuzz v1" format.
func corpusEntry(vals ...any) string {
	s := "go test fuzz v1\n"
	for _, v := range vals {
		switch v := v.(type) {
		case string:
			s += fmt.Sprintf("string(%s)\n", strconv.Quote(v))
		case uint64:
			s += fmt.Sprintf("uint64(%d)\n", v)
		default:
			panic(fmt.Sprintf("unsupported corpus value %T", v))
		}
	}
	return s
}

// seedCorpora is the checked-in corpus set: interesting kernels for the
// round-trip target (both modes, both spaces, consts, a parse-error
// probe), a seed spread for the differential target, and boundary
// geometries for the replay target.
func seedCorpora() map[string][]string {
	asm := func(seed int64) string {
		return corpusEntry(il.Assemble(RandomKernel(rand.New(rand.NewSource(seed)))))
	}
	m := map[string][]string{"FuzzParseAssemble": {
		corpusEntry("il_ps_2_0 ; kernel tiny\ndcl_type float\ndcl_resource_id(0)_type(2d)_fmt(float)\ndcl_output o0\nsample_resource(0) r0, vWinCoord0\nexport o0, r0\nend\n"),
		corpusEntry("il_cs_2_0 ; kernel nohdr\nend\n"),
		// Fuzz-found crashers, pinned: operand-less instructions and a
		// bare dcl_cb once indexed past the field slice.
		corpusEntry("il_ps_2_0\nsample_resource(0)\nend\n"),
		corpusEntry("il_ps_2_0\ngload_buffer(0)\nend\n"),
		corpusEntry("il_ps_2_0\ngstore_buffer(0)\nend\n"),
		corpusEntry("il_ps_2_0\ndcl_cb\nend\n"),
	}}
	for seed := int64(5); seed <= 12; seed++ {
		m["FuzzParseAssemble"] = append(m["FuzzParseAssemble"], asm(seed))
	}
	for seed := uint64(9); seed <= 24; seed++ {
		m["FuzzCompileDifferential"] = append(m["FuzzCompileDifferential"], corpusEntry(seed, seed%7))
	}
	m["FuzzReplay"] = []string{
		corpusEntry(uint64(0x3F3F)),                // 64x64 single input
		corpusEntry(uint64(0x0000_0001_073F_2063)), // clause-boundary inputs, padding domain
		corpusEntry(uint64(0x0010_0002_1F01_00FF)), // naive walk, high residency, 256-wide strip
		corpusEntry(uint64(0x2222_0000_4008_0840)), // float4, rotated window
	}
	return m
}

// TestSeedCorpus keeps testdata/fuzz in lockstep with seedCorpora: with
// -update-corpus it rewrites the files; without, it verifies they exist
// and match, so corpus drift fails loudly instead of silently fuzzing
// from a stale base.
func TestSeedCorpus(t *testing.T) {
	for target, entries := range seedCorpora() {
		dir := filepath.Join("testdata", "fuzz", target)
		if *updateCorpus {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			old, _ := filepath.Glob(filepath.Join(dir, "seed-*"))
			for _, f := range old {
				if err := os.Remove(f); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i, body := range entries {
			path := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
			if *updateCorpus {
				if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%s: %v (run `go test -run TestSeedCorpus -update-corpus ./internal/conformance` to regenerate)", path, err)
			}
			if string(got) != body {
				t.Errorf("%s is stale; regenerate with -update-corpus", path)
			}
		}
	}
}
