// Package conformance is the suite's verification subsystem. Every number
// the benchmarks report flows through IL generation -> ilc compilation ->
// cache replay -> simulation, and the hot-path rewrites those stages have
// absorbed make hand-picked test cases a thin defence. This package holds
// the systematic one:
//
//   - a seeded random-kernel generator (RandomKernel) covering the full IL
//     surface, strictly broader than the shapes kerngen emits;
//   - differential oracles (CheckKernel): the IL interpreter versus the
//     compiled-ISA interpreter element for element, Assemble->Parse
//     structural round-trips via Kernel.Hash, cached-versus-uncached
//     pipeline identity, disassembly and compiler determinism, and
//     dead-code elimination semantics;
//   - metamorphic invariants on the simulator and the cache replay
//     (metamorphic.go): monotonicity under added dependent ALU work,
//     domain-size linearity, replay conservation laws and rotation
//     invariance in the compulsory-miss regime;
//   - a counterexample shrinker (Shrink) that minimizes any failing kernel
//     before it is reported.
//
// The fuzz targets in this package expose the generator to `go test
// -fuzz`; a failing seed reproduces deterministically and shrinks to a
// few-instruction kernel. DESIGN.md section 10 documents the methodology.
package conformance

import (
	"fmt"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/interp"
	"amdgpubench/internal/isa"
	"amdgpubench/internal/pipeline"
)

// Divergence reports an oracle failure: which oracle tripped, what it saw,
// and the kernel (already shrunk by the caller, or raw) that triggered it.
type Divergence struct {
	Oracle string // "roundtrip", "differential", "pipeline", "disasm", "optimize"
	Detail string
	Kernel *il.Kernel
}

// Error renders the divergence with the offending kernel's assembly, so a
// fuzz crash report alone is enough to reproduce by hand.
func (d *Divergence) Error() string {
	return fmt.Sprintf("conformance: %s oracle: %s\nkernel:\n%s", d.Oracle, d.Detail, il.Assemble(d.Kernel))
}

// checkThreads are the domain positions every differential oracle executes:
// the origin, an axis edge, an interior point and the far corner of the
// DefaultEnv domain.
var checkThreads = []interp.Thread{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 5, Y: 3}, {X: 15, Y: 15}}

// DefaultEnv is the deterministic input environment the differential
// oracles run under. Values stay positive and moderate so rcp/rsq chains
// remain finite for many links; comparison is bitwise anyway, so the
// oracles stay sound even when a chain saturates to infinity.
func DefaultEnv() interp.Env {
	return interp.Env{
		W: 16, H: 16,
		Input: func(res, x, y, l int) float32 {
			return 0.5 + float32((res*31+x*7+y*13+l*3)%17)*0.25
		},
		Const: func(idx, l int) float32 {
			return 1 + float32((idx*5+l)%7)*0.5
		},
	}
}

// CheckKernel runs every differential oracle against one kernel and
// returns the first *Divergence, or nil when all oracles agree. The spec
// must support the kernel's shader mode.
func CheckKernel(k *il.Kernel, spec device.Spec) error {
	if err := CheckRoundTrip(k); err != nil {
		return err
	}
	if err := CheckCompileDifferential(k, spec); err != nil {
		return err
	}
	if err := CheckPipelineIdentity(k, spec); err != nil {
		return err
	}
	if err := CheckOptimizePreservesSemantics(k); err != nil {
		return err
	}
	return nil
}

// CheckRoundTrip asserts Assemble -> Parse is structurally lossless: the
// reparsed kernel's content hash (il.Kernel.Hash, the compile store's
// cache key) must equal the original's, and the assembly text must be a
// fixpoint. A violation means the cache could conflate or split kernels.
func CheckRoundTrip(k *il.Kernel) error {
	txt := il.Assemble(k)
	k2, err := il.Parse(txt)
	if err != nil {
		return &Divergence{Oracle: "roundtrip", Detail: fmt.Sprintf("Parse of assembled text failed: %v", err), Kernel: k}
	}
	if err := k2.Validate(); err != nil {
		return &Divergence{Oracle: "roundtrip", Detail: fmt.Sprintf("reparsed kernel invalid: %v", err), Kernel: k}
	}
	if k.Hash() != k2.Hash() {
		return &Divergence{
			Oracle: "roundtrip",
			Detail: fmt.Sprintf("structural hash changed across Assemble/Parse\nreparsed as:\n%s", il.Assemble(k2)),
			Kernel: k,
		}
	}
	if txt2 := il.Assemble(k2); txt2 != txt {
		return &Divergence{Oracle: "roundtrip", Detail: fmt.Sprintf("assembly text is not a fixpoint:\n%s", txt2), Kernel: k}
	}
	return nil
}

// CheckCompileDifferential compiles k and executes the IL and ISA
// interpreters element for element on the check threads; any bitwise
// output difference is a miscompile. It also asserts the compiler and the
// disassembler are deterministic: two independent compiles of the same
// kernel must disassemble identically.
func CheckCompileDifferential(k *il.Kernel, spec device.Spec) error {
	prog, err := ilc.CompileWith(k, spec, ilc.Options{})
	if err != nil {
		return &Divergence{Oracle: "differential", Detail: fmt.Sprintf("compile failed: %v", err), Kernel: k}
	}
	env := DefaultEnv()
	lanes := k.Type.Lanes()
	for _, th := range checkThreads {
		want, err := interp.RunIL(k, env, th)
		if err != nil {
			return &Divergence{Oracle: "differential", Detail: fmt.Sprintf("IL interpreter: %v", err), Kernel: k}
		}
		got, err := interp.RunISA(prog, env, th)
		if err != nil {
			return &Divergence{
				Oracle: "differential",
				Detail: fmt.Sprintf("ISA interpreter: %v\n%s", err, isa.Disassemble(prog)),
				Kernel: k,
			}
		}
		if !interp.OutputsEqual(want, got, lanes) {
			return &Divergence{
				Oracle: "differential",
				Detail: fmt.Sprintf("thread (%d,%d): IL %v != ISA %v\n%s", th.X, th.Y, want, got, isa.Disassemble(prog)),
				Kernel: k,
			}
		}
	}
	prog2, err := ilc.CompileWith(k, spec, ilc.Options{})
	if err != nil {
		return &Divergence{Oracle: "disasm", Detail: fmt.Sprintf("second compile failed: %v", err), Kernel: k}
	}
	d1, d2 := isa.Disassemble(prog), isa.Disassemble(prog2)
	if d1 != d2 {
		return &Divergence{Oracle: "disasm", Detail: fmt.Sprintf("compiler nondeterminism:\n%s\nvs\n%s", d1, d2), Kernel: k}
	}
	if again := isa.Disassemble(prog); again != d1 {
		return &Divergence{Oracle: "disasm", Detail: "Disassemble is not stable across calls", Kernel: k}
	}
	return nil
}

// CheckPipelineIdentity asserts the content-addressed compile store is
// invisible in results: a store hit must return the identical artifact,
// and a caching pipeline must produce the same program as a cache-disabled
// one.
func CheckPipelineIdentity(k *il.Kernel, spec device.Spec) error {
	cached := pipeline.New(pipeline.Options{})
	uncached := pipeline.New(pipeline.Options{Disabled: true})
	p1, err := cached.Compile(k, spec, ilc.Options{})
	if err != nil {
		return &Divergence{Oracle: "pipeline", Detail: fmt.Sprintf("cached compile failed: %v", err), Kernel: k}
	}
	p1b, err := cached.Compile(k, spec, ilc.Options{})
	if err != nil {
		return &Divergence{Oracle: "pipeline", Detail: fmt.Sprintf("cached recompile failed: %v", err), Kernel: k}
	}
	if p1 != p1b {
		return &Divergence{Oracle: "pipeline", Detail: "compile store hit returned a different artifact", Kernel: k}
	}
	p2, err := uncached.Compile(k, spec, ilc.Options{})
	if err != nil {
		return &Divergence{Oracle: "pipeline", Detail: fmt.Sprintf("uncached compile failed: %v", err), Kernel: k}
	}
	if d1, d2 := isa.Disassemble(p1), isa.Disassemble(p2); d1 != d2 {
		return &Divergence{Oracle: "pipeline", Detail: fmt.Sprintf("cached vs uncached programs differ:\n%s\nvs\n%s", d1, d2), Kernel: k}
	}
	return nil
}

// CheckOptimizePreservesSemantics runs dead-code elimination and asserts
// the optimized kernel computes bitwise-identical outputs — DCE may only
// remove work that never reaches a store. Because the pass renumbers
// surviving input resources, the optimized kernel runs under an
// environment remapped through the report's InputMap so both kernels
// read the same data.
func CheckOptimizePreservesSemantics(k *il.Kernel) error {
	opt, rep, err := ilc.Optimize(k)
	if err != nil {
		return &Divergence{Oracle: "optimize", Detail: fmt.Sprintf("Optimize failed: %v", err), Kernel: k}
	}
	if err := opt.Validate(); err != nil {
		return &Divergence{Oracle: "optimize", Detail: fmt.Sprintf("optimized kernel invalid: %v", err), Kernel: k}
	}
	env := DefaultEnv()
	optEnv := env
	if rep.InputMap != nil {
		inner := env.Input
		remap := rep.InputMap
		optEnv.Input = func(res, x, y, l int) float32 {
			return inner(remap[res], x, y, l)
		}
	}
	lanes := k.Type.Lanes()
	for _, th := range checkThreads {
		want, err := interp.RunIL(k, env, th)
		if err != nil {
			return &Divergence{Oracle: "optimize", Detail: fmt.Sprintf("IL interpreter: %v", err), Kernel: k}
		}
		got, err := interp.RunIL(opt, optEnv, th)
		if err != nil {
			return &Divergence{Oracle: "optimize", Detail: fmt.Sprintf("optimized IL interpreter: %v", err), Kernel: k}
		}
		if !interp.OutputsEqual(want, got, lanes) {
			return &Divergence{
				Oracle: "optimize",
				Detail: fmt.Sprintf("thread (%d,%d): original %v != optimized %v\noptimized:\n%s", th.X, th.Y, want, got, il.Assemble(opt)),
				Kernel: k,
			}
		}
	}
	return nil
}

// SpecFor picks a device spec compatible with the kernel's shader mode
// from an arbitrary selector byte, for seed-driven fuzzing: compute
// kernels never land on the compute-less RV670.
func SpecFor(k *il.Kernel, sel uint8) device.Spec {
	all := device.All()
	spec := all[int(sel)%len(all)]
	if k.Mode == il.Compute && !spec.SupportsCompute {
		spec = device.Lookup(device.RV770)
	}
	return spec
}
