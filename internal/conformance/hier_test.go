package conformance

import (
	"fmt"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/hier"
)

// TestHierLatencyMonotone: per-fetch latency never meaningfully drops as
// the working set grows, on every built-in device and a handful of
// synthetic geometries.
func TestHierLatencyMonotone(t *testing.T) {
	footprints := []int{2, 4, 8, 16, 32, 64, 128, 256, 512}
	for _, spec := range device.All() {
		spec := spec
		t.Run(spec.Arch.String(), func(t *testing.T) {
			t.Parallel()
			if err := CheckHierLatencyMonotone(spec, footprints); err != nil {
				t.Fatal(err)
			}
		})
	}
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("synth%02d", seed), func(t *testing.T) {
			t.Parallel()
			if err := CheckHierLatencyMonotone(hier.SynthSpec(seed), footprints); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}

// TestInferOrderInvariance: the recovered cache model does not depend on
// the order the stride probes run in.
func TestInferOrderInvariance(t *testing.T) {
	for _, spec := range device.All() {
		spec := spec
		t.Run(spec.Arch.String(), func(t *testing.T) {
			t.Parallel()
			if err := CheckInferOrderInvariance(spec, int64(spec.Arch)+31); err != nil {
				t.Fatal(err)
			}
		})
	}
}
