package conformance

import (
	"math/rand"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/interp"
)

// TestShrinkMinimizesSyntheticFailure plants a known defect — "the kernel
// contains a sub instruction" — inside large random kernels and checks
// the shrinker reduces each to essentially nothing but the defect: a
// handful of instructions, one input, one output, scalar pixel texture
// form.
func TestShrinkMinimizesSyntheticFailure(t *testing.T) {
	hasSub := func(k *il.Kernel) bool {
		for _, in := range k.Code {
			if in.Op == il.OpSub {
				return true
			}
		}
		return false
	}
	rng := rand.New(rand.NewSource(99))
	shrunk := 0
	for shrunk < 10 {
		k := RandomKernel(rng)
		if !hasSub(k) {
			continue
		}
		shrunk++
		min := Shrink(k, hasSub)
		if !hasSub(min) {
			t.Fatalf("shrinker lost the failure:\n%s", il.Assemble(min))
		}
		if err := min.Validate(); err != nil {
			t.Fatalf("shrunk kernel invalid: %v\n%s", err, il.Assemble(min))
		}
		// Minimal form: fetch, the sub, store — plus at most one spare.
		if len(min.Code) > 4 {
			t.Errorf("shrunk to %d instructions, want <= 4 (from %d):\n%s",
				len(min.Code), len(k.Code), il.Assemble(min))
		}
		if min.NumInputs != 1 || min.NumOutputs != 1 {
			t.Errorf("shrunk interface %d in/%d out, want 1/1:\n%s",
				min.NumInputs, min.NumOutputs, il.Assemble(min))
		}
		if min.Type != il.Float || min.Mode != il.Pixel {
			t.Errorf("shrunk kernel kept %v/%v, want float/pixel:\n%s", min.Type, min.Mode, il.Assemble(min))
		}
	}
}

// TestShrinkAgainstRealOracle runs the shrinker with a genuine oracle
// predicate (a differential check against a deliberately corrupted
// comparison) and verifies the minimized kernel still trips it — the
// validity gating inside Shrink must never let an invalid candidate
// masquerade as a reproducer.
func TestShrinkAgainstRealOracle(t *testing.T) {
	spec := device.Lookup(device.RV770)
	// Predicate: kernel's thread-(0,0) output 0 differs between the real
	// input environment and one with input 0 perturbed — i.e. the kernel
	// actually depends on input 0. Semantically meaningful, expensive, and
	// exercises the interpreter on every candidate like a real shrink run.
	dependsOnInput0 := func(k *il.Kernel) bool {
		envA := DefaultEnv()
		envB := DefaultEnv()
		inner := envB.Input
		envB.Input = func(res, x, y, l int) float32 {
			if res == 0 {
				return inner(res, x, y, l) + 1
			}
			return inner(res, x, y, l)
		}
		a, errA := interp.RunIL(k, envA, interp.Thread{})
		b, errB := interp.RunIL(k, envB, interp.Thread{})
		if errA != nil || errB != nil {
			return false
		}
		return !interp.OutputsEqual(a, b, k.Type.Lanes())
	}
	rng := rand.New(rand.NewSource(4242))
	for tried := 0; tried < 5; {
		k := RandomKernel(rng)
		if !dependsOnInput0(k) {
			continue
		}
		tried++
		min := Shrink(k, dependsOnInput0)
		if !dependsOnInput0(min) {
			t.Fatalf("shrunk kernel no longer depends on input 0:\n%s", il.Assemble(min))
		}
		if err := min.Validate(); err != nil {
			t.Fatalf("invalid shrink result: %v", err)
		}
		if len(min.Code) >= len(k.Code) && len(k.Code) > 3 {
			t.Errorf("no reduction: %d -> %d instructions", len(k.Code), len(min.Code))
		}
	}
	_ = spec
}

// TestShrinkReturnsInputWhenPredicateFails: a kernel that does not fail
// must come back unchanged.
func TestShrinkReturnsInputWhenPredicateFails(t *testing.T) {
	k := RandomKernel(rand.New(rand.NewSource(3)))
	min := Shrink(k, func(*il.Kernel) bool { return false })
	if min != k {
		t.Error("Shrink modified a kernel its predicate rejects")
	}
}

// TestShrinkTransformsPreserveValidity sweeps every transformation over
// random kernels and checks each candidate either is nil or validates —
// the precondition Shrink's try() relies on to gate predicate calls.
func TestShrinkTransformsPreserveValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		k := RandomKernel(rng)
		for i := range k.Code {
			for _, cand := range []*il.Kernel{removeInstr(k, i), weakenToMov(k, i)} {
				if cand == nil {
					continue
				}
				if err := cand.Validate(); err != nil {
					// Removal may orphan a later use chain only through the
					// documented nil return; a non-nil invalid candidate is
					// tolerated by Shrink but flags a wasted predicate slot.
					// Only single-assignment or bounds breakage is a bug.
					t.Errorf("trial %d instr %d: invalid candidate: %v", trial, i, err)
				}
			}
		}
		for o := 1; o < k.NumOutputs; o++ {
			if cand := dropOutput(k, o); cand != nil {
				if err := cand.Validate(); err != nil {
					t.Errorf("trial %d dropOutput(%d): %v", trial, o, err)
				}
			}
		}
		for _, cand := range flatten(k) {
			if err := cand.Validate(); err != nil {
				t.Errorf("trial %d flatten: %v", trial, err)
			}
		}
		if err := compactRegisters(k).Validate(); err != nil {
			t.Errorf("trial %d compact: %v", trial, err)
		}
	}
}
