package conformance

import (
	"fmt"
	"math/rand"

	"amdgpubench/internal/il"
)

// RandomKernel draws one pseudo-random, always-valid IL kernel from rng.
// The generator's coverage is deliberately broader than anything kerngen
// emits: every opcode (including sub, mov, rcp/rsq and the constant-buffer
// forms kerngen never chains through), both shader modes, both data types,
// both memory spaces on each side, dead values, scattered operand
// lifetimes, duplicate and mid-stream stores, multi-group fetch placement
// and ALU runs long enough to straddle the 128-bundle clause split. Edge
// register pressures (1 input up to 64 inputs) are sampled explicitly.
//
// The same rng always yields the same kernel, which is what lets the fuzz
// targets address kernels by a single seed. RandomKernel panics if it ever
// constructs a kernel il.Kernel.Validate rejects: that is a generator bug
// the fuzzers should surface, not mask.
func RandomKernel(rng *rand.Rand) *il.Kernel {
	mode := il.Pixel
	if rng.Intn(2) == 1 {
		mode = il.Compute
	}
	dt := il.Float
	if rng.Intn(2) == 1 {
		dt = il.Float4
	}
	inSp := il.TextureSpace
	if rng.Intn(3) == 0 {
		inSp = il.GlobalSpace
	}
	outSp := il.TextureSpace
	if mode == il.Compute || rng.Intn(3) == 0 {
		outSp = il.GlobalSpace
	}

	inputs := 1 + rng.Intn(8)
	switch rng.Intn(8) {
	case 0:
		inputs = 1 // minimal pressure: the whole kernel hangs off one fetch
	case 1:
		inputs = 16 + rng.Intn(49) // up to 64: the Fig. 16 pressure regime
	}
	outs := 1 + rng.Intn(4)
	if rng.Intn(8) == 0 {
		outs = 8 // the paper's write-latency maximum
	}
	consts := 0
	if rng.Intn(2) == 1 {
		consts = 1 + rng.Intn(8)
	}

	var aluBudget int
	switch rng.Intn(4) {
	case 0:
		aluBudget = 0 // fetch -> store direct: no ALU clause at all
	case 1, 2:
		aluBudget = 1 + rng.Intn(24)
	default:
		aluBudget = 100 + rng.Intn(200) // straddles MaxSlotsPerALUClause
	}
	// Chain bias produces PV/clause-temp-heavy kernels; without it operand
	// lifetimes scatter and the GPR allocator carries the load.
	chainBias := rng.Intn(3) > 0

	k := &il.Kernel{
		Name: fmt.Sprintf("conf%08x", rng.Uint32()),
		Mode: mode, Type: dt,
		NumInputs: inputs, NumOutputs: outs,
		InputSpace: inSp, OutSpace: outSp,
		NumConsts: consts,
	}
	fetchOp := il.OpSample
	if inSp == il.GlobalSpace {
		fetchOp = il.OpGlobalLoad
	}
	storeOp := il.OpExport
	if outSp == il.GlobalSpace {
		storeOp = il.OpGlobalStore
	}

	next := il.Reg(0)
	pick := func() il.Reg {
		if chainBias && rng.Intn(4) != 0 {
			return next - 1
		}
		return il.Reg(rng.Intn(int(next)))
	}
	emitALU := func(n int) {
		for ; n > 0; n-- {
			var in il.Instr
			c := rng.Intn(8)
			if consts == 0 && c >= 6 {
				c = rng.Intn(6)
			}
			switch c {
			case 0:
				in = il.Instr{Op: il.OpAdd, Dst: next, SrcA: pick(), SrcB: pick(), Res: -1}
			case 1:
				in = il.Instr{Op: il.OpSub, Dst: next, SrcA: pick(), SrcB: pick(), Res: -1}
			case 2:
				in = il.Instr{Op: il.OpMul, Dst: next, SrcA: pick(), SrcB: pick(), Res: -1}
			case 3:
				in = il.Instr{Op: il.OpMov, Dst: next, SrcA: pick(), SrcB: il.NoReg, Res: -1}
			case 4:
				in = il.Instr{Op: il.OpRcp, Dst: next, SrcA: pick(), SrcB: il.NoReg, Res: -1}
			case 5:
				in = il.Instr{Op: il.OpRsq, Dst: next, SrcA: pick(), SrcB: il.NoReg, Res: -1}
			case 6:
				in = il.Instr{Op: il.OpAddC, Dst: next, SrcA: pick(), SrcB: il.NoReg, Res: rng.Intn(consts)}
			default:
				in = il.Instr{Op: il.OpMulC, Dst: next, SrcA: pick(), SrcB: il.NoReg, Res: rng.Intn(consts)}
			}
			k.Code = append(k.Code, in)
			next++
		}
	}

	// Fetches arrive in shuffled resource order, split into groups with ALU
	// runs (and the occasional early store) between them — the interleaved
	// shape of the register-usage kernels, but irregular.
	fetchQ := rng.Perm(inputs)
	storeOrder := rng.Perm(outs)
	storesDone := 0
	aluLeft := aluBudget
	for len(fetchQ) > 0 {
		g := 1 + rng.Intn(minInt(12, len(fetchQ)))
		for i := 0; i < g; i++ {
			k.Code = append(k.Code, il.Instr{Op: fetchOp, Dst: next, SrcA: il.NoReg, SrcB: il.NoReg, Res: fetchQ[0]})
			fetchQ = fetchQ[1:]
			next++
		}
		if aluLeft > 0 && rng.Intn(2) == 1 {
			run := 1 + rng.Intn(aluLeft)
			emitALU(run)
			aluLeft -= run
		}
		if storesDone < outs-1 && rng.Intn(4) == 0 {
			k.Code = append(k.Code, il.Instr{Op: storeOp, Dst: il.NoReg, SrcA: pick(), SrcB: il.NoReg, Res: storeOrder[storesDone]})
			storesDone++
		}
	}
	emitALU(aluLeft)
	for ; storesDone < outs; storesDone++ {
		k.Code = append(k.Code, il.Instr{Op: storeOp, Dst: il.NoReg, SrcA: pick(), SrcB: il.NoReg, Res: storeOrder[storesDone]})
	}
	if rng.Intn(4) == 0 {
		// Duplicate store: the later write must win in every execution path.
		k.Code = append(k.Code, il.Instr{Op: storeOp, Dst: il.NoReg, SrcA: pick(), SrcB: il.NoReg, Res: rng.Intn(outs)})
	}

	if err := k.Validate(); err != nil {
		panic(fmt.Sprintf("conformance: generator produced invalid kernel: %v\n%s", err, il.Assemble(k)))
	}
	return k
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
