package conformance

import (
	"math/rand"
	"testing"

	"amdgpubench/internal/cache"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/raster"
)

// TestCycleMonotonicity: more serialized ALU work never simulates faster,
// across random kernels and every device.
func TestCycleMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 25; i++ {
		k := RandomKernel(rng)
		spec := SpecFor(k, uint8(i))
		if err := CheckCycleMonotonic(k, spec); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDomainLinearity: doubling the domain doubles overhead-corrected
// cycles within tolerance, across random kernels and every device.
func TestDomainLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 15; i++ {
		k := RandomKernel(rng)
		spec := SpecFor(k, uint8(i))
		if err := CheckDomainLinearity(k, spec, 1.8, 2.2); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExtendDependentALUShape pins what the transform claims: n more ALU
// instructions, identical fetch/store counts, still valid.
func TestExtendDependentALUShape(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 50; i++ {
		k := RandomKernel(rng)
		for _, n := range []int{0, 1, 7, 100} {
			ext := ExtendDependentALU(k, n)
			if err := ext.Validate(); err != nil {
				t.Fatalf("extension by %d invalid: %v\n%s", n, err, il.Assemble(ext))
			}
			c0, c1 := k.Counts(), ext.Counts()
			if c1.ALU != c0.ALU+n || c1.Fetch != c0.Fetch || c1.Store != c0.Store {
				t.Fatalf("extension by %d changed counts %+v -> %+v", n, c0, c1)
			}
		}
	}
}

// replayConfigs sweeps representative trace geometries: every device,
// both element sizes, all three domain walks, several input counts and
// residency levels, including clause-group boundaries (8 fetches per TEX
// clause) and padding-thread domains that do not tile evenly.
func replayConfigs() []cache.TraceConfig {
	var cfgs []cache.TraceConfig
	orders := []raster.Order{raster.PixelOrder(), raster.Naive64x1(), raster.Block4x16()}
	for _, spec := range device.All() {
		for _, elem := range []int{4, 16} {
			for oi, ord := range orders {
				cfgs = append(cfgs, cache.TraceConfig{
					Spec: spec, Order: ord,
					W: 128, H: 128, ElemBytes: elem,
					NumInputs:     1 + 3*oi, // 1, 4, 7: straddles nothing, then the 8-fetch clause edge below
					ResidentWaves: 4 + 4*oi,
				})
			}
		}
	}
	// Clause-boundary and degenerate shapes.
	rv770 := device.Lookup(device.RV770)
	cfgs = append(cfgs,
		cache.TraceConfig{Spec: rv770, Order: raster.PixelOrder(), W: 100, H: 52, ElemBytes: 4, NumInputs: 8, ResidentWaves: 3},
		cache.TraceConfig{Spec: rv770, Order: raster.PixelOrder(), W: 64, H: 64, ElemBytes: 16, NumInputs: 9, ResidentWaves: 16},
		cache.TraceConfig{Spec: rv770, Order: raster.Naive64x1(), W: 64, H: 3, ElemBytes: 4, NumInputs: 17, ResidentWaves: 1},
	)
	return cfgs
}

// TestReplayConservation: the replay's counting identities hold on every
// geometry in the sweep.
func TestReplayConservation(t *testing.T) {
	for _, cfg := range replayConfigs() {
		if err := CheckReplayConservation(cfg); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReplayRotationInvariance: with the whole domain resident and
// compulsory misses only, hit counts do not depend on which wavefront
// leads the resident window.
func TestReplayRotationInvariance(t *testing.T) {
	rv770 := device.Lookup(device.RV770)
	for _, cfg := range []cache.TraceConfig{
		{Spec: rv770, Order: raster.PixelOrder(), W: 64, H: 64, ElemBytes: 4, NumInputs: 2},
		{Spec: rv770, Order: raster.Block4x16(), W: 64, H: 64, ElemBytes: 16, NumInputs: 3},
		{Spec: device.Lookup(device.RV870), Order: raster.Naive64x1(), W: 128, H: 32, ElemBytes: 4, NumInputs: 5},
	} {
		if err := CheckReplayRotationInvariance(cfg, []int{1, 7, 33}); err != nil {
			t.Fatal(err)
		}
	}
}
