package conformance

// Memory-hierarchy metamorphic invariants: properties of the dissection
// probes (internal/hier) that hold for any cache geometry, checkable
// without knowing the geometry. They pin the two assumptions the
// inference rests on — growing a working set never makes fetches
// cheaper, and the recovered model is a property of the device, not of
// the order the probes happened to run in.

import (
	"fmt"
	"math/rand"

	"amdgpubench/internal/device"
	"amdgpubench/internal/hier"
	"amdgpubench/internal/il"
)

// hierMonotoneSlack is the tolerated downward wobble, in cycles per
// fetch, between consecutive footprints — rounding headroom only. The
// probes below hold the fetch count constant, so per-fetch overhead
// amortization is identical across the sweep and a drop beyond this
// bound means the timing model made a bigger footprint genuinely
// cheaper, which no hierarchy can do.
const hierMonotoneSlack = 3.0

// hierMonotoneFetches is the constant total chase length (surfaces x
// rounds) of the monotone sweep. Holding it fixed keeps every probe's
// slot count — and therefore the per-slot share of the ballast and
// clause-issue prologue — identical, isolating the working-set size as
// the only variable.
const hierMonotoneFetches = 1024

// CheckHierLatencyMonotone asserts that per-fetch latency is monotone
// non-decreasing in working-set size: a pointer-chase over kb+Δ KiB can
// never run meaningfully faster per fetch than an equally long chase
// over kb KiB on the same device. Footprints must be powers of two
// dividing hierMonotoneFetches, so rounds x surfaces stays constant.
func CheckHierLatencyMonotone(spec device.Spec, footprintsKB []int) error {
	m := hier.SimMeasurer(spec, 100)
	prev, prevKB := 0.0, 0
	for i, kb := range footprintsKB {
		if hierMonotoneFetches%kb != 0 {
			return fmt.Errorf("conformance: hier monotone: footprint %d KiB does not divide the fixed chase length %d", kb, hierMonotoneFetches)
		}
		p := hier.Probe{Type: il.Float4, SurfaceBytes: 1024, Surfaces: kb, Rounds: hierMonotoneFetches / kb, Batch: 1}
		lam, err := m(p)
		if err != nil {
			return fmt.Errorf("conformance: hier monotone: %s at %d KiB: %v", spec.Arch, kb, err)
		}
		if i > 0 && lam < prev-hierMonotoneSlack {
			return fmt.Errorf("conformance: hier monotone: %s: %d KiB ran at %.2f cycles/fetch, below %.2f at %d KiB",
				spec.Arch, kb, lam, prev, prevKB)
		}
		prev, prevKB = lam, kb
	}
	return nil
}

// CheckInferOrderInvariance asserts the recovered cache model is
// invariant under permutation of the inference's stride-probe schedule:
// shuffling the candidate-associativity order (the one part of the
// sweep whose order is configurable) must change nothing, because each
// probe's result depends only on the device, never on probe history.
func CheckInferOrderInvariance(spec device.Spec, seed int64) error {
	m := hier.SimMeasurer(spec, 100)
	base, err := hier.Infer(m, hier.Config{})
	if err != nil {
		return fmt.Errorf("conformance: hier order: %s base: %v", spec.Arch, err)
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 4; trial++ {
		cands := []int{2, 4, 8, 16}
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		inf, err := hier.Infer(m, hier.Config{WayCandidates: cands})
		if err != nil {
			return fmt.Errorf("conformance: hier order: %s candidates %v: %v", spec.Arch, cands, err)
		}
		if inf != base {
			return fmt.Errorf("conformance: hier order: %s: candidates %v inferred %+v, default order %+v",
				spec.Arch, cands, inf, base)
		}
	}
	return nil
}
