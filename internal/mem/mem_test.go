package mem

import (
	"testing"
	"testing/quick"

	"amdgpubench/internal/device"
)

func TestPipeFIFO(t *testing.T) {
	p := NewPipe("alu")
	g1, d1 := p.Acquire(0, 10)
	if g1 != 0 || d1 != 10 {
		t.Fatalf("first grant [%d,%d], want [0,10]", g1, d1)
	}
	// Second request arrives at 5, must wait until 10.
	g2, d2 := p.Acquire(5, 4)
	if g2 != 10 || d2 != 14 {
		t.Fatalf("queued grant [%d,%d], want [10,14]", g2, d2)
	}
	// Request after idle gap starts immediately.
	g3, d3 := p.Acquire(100, 1)
	if g3 != 100 || d3 != 101 {
		t.Fatalf("idle grant [%d,%d], want [100,101]", g3, d3)
	}
	if p.Busy() != 15 {
		t.Fatalf("busy = %d, want 15", p.Busy())
	}
	if p.Name() != "alu" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestPipeReset(t *testing.T) {
	p := NewPipe("x")
	p.Acquire(0, 7)
	p.Reset()
	if p.Busy() != 0 || p.NextFree() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestPipeNeverOverlaps(t *testing.T) {
	p := NewPipe("q")
	var lastDone uint64
	f := func(arrivals []uint16) bool {
		for _, a := range arrivals {
			g, d := p.Acquire(uint64(a), uint64(a%17)+1)
			if g < lastDone { // grants must not overlap previous service
				return false
			}
			lastDone = d
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewDRAMPerSIMDShare(t *testing.T) {
	s := device.Lookup(device.RV770)
	d, err := NewDRAM(s)
	if err != nil {
		t.Fatal(err)
	}
	want := s.MemBandwidthBytesPerCoreCycle() / float64(s.SIMDEngines)
	if d.BytesPerCycle != want {
		t.Fatalf("per-SIMD bandwidth = %v, want %v", d.BytesPerCycle, want)
	}
}

func TestDRAMOverheadByGeneration(t *testing.T) {
	d670, err := NewDRAM(device.Lookup(device.RV670))
	if err != nil {
		t.Fatal(err)
	}
	d770, err := NewDRAM(device.Lookup(device.RV770))
	if err != nil {
		t.Fatal(err)
	}
	if d670.ReadOverhead <= d770.ReadOverhead {
		t.Fatal("RV670 uncached read overhead should dwarf the GDDR5 parts'")
	}
	if d670.ReadLatency <= d770.ReadLatency {
		t.Fatal("RV670 global read latency should exceed RV770's")
	}
}

func TestTransferCyclesScalesWithBytes(t *testing.T) {
	d := &DRAM{BytesPerCycle: 16, RowPenalty: 24}
	if got := d.TransferCycles(1600, 0); got != 100 {
		t.Fatalf("1600B = %d cycles, want 100", got)
	}
	if got := d.TransferCycles(0, 0); got != 0 {
		t.Fatalf("empty transfer = %d cycles, want 0", got)
	}
	if got := d.TransferCycles(1, 0); got != 1 {
		t.Fatalf("tiny transfer = %d cycles, want clamp to 1", got)
	}
}

func TestBurstVsScatteredWrites(t *testing.T) {
	d := &DRAM{BytesPerCycle: 16, RowPenalty: 24}
	burst := d.BurstWriteCycles(4096)
	scattered := d.ScatteredWriteCycles(4096, 64)
	if !(burst < scattered) {
		t.Fatalf("burst (%d) not cheaper than scattered (%d)", burst, scattered)
	}
	// Burst cost is dominated by bandwidth: 4096/16 = 256 plus 2 rows.
	if burst != 256+2*24 {
		t.Fatalf("burst = %d cycles, want 304", burst)
	}
}

func TestGlobalReadIncludesOverhead(t *testing.T) {
	d := &DRAM{BytesPerCycle: 16, RowPenalty: 24, ReadOverhead: 96}
	got := d.GlobalReadCycles(256)
	want := uint64(256/16) + uint64(float64(24)*(256.0/2048.0)) + 96
	if got != want {
		t.Fatalf("global read = %d cycles, want %d", got, want)
	}
}

func TestWriteMonotoneInBytes(t *testing.T) {
	d := &DRAM{BytesPerCycle: 9.5, RowPenalty: 24}
	prev := uint64(0)
	for b := 64; b <= 1<<16; b *= 2 {
		c := d.BurstWriteCycles(b)
		if c < prev {
			t.Fatalf("burst cycles decreased at %dB", b)
		}
		prev = c
	}
}

func TestNewDRAMRejectsBrokenSpec(t *testing.T) {
	s := device.Lookup(device.RV770)
	s.SIMDEngines = 0
	if _, err := NewDRAM(s); err == nil {
		t.Fatal("zero-SIMD spec accepted")
	}
}
