// Package mem provides the shared-resource primitives of the timing
// simulator: serial pipes with FIFO grant and busy accounting (used for
// the ALU pipeline, texture pipeline, export path and memory controller of
// a SIMD engine), and the DRAM cost model that turns byte counts and row
// activations into cycles. Burst writes to consecutive addresses — the
// behaviour the paper's streaming-store micro-benchmark leans on — stream
// at full bandwidth, while scattered traffic pays per-row activation
// penalties.
package mem

import (
	"fmt"

	"amdgpubench/internal/device"
)

// Pipe is a serially-granted resource. Requests are granted in arrival
// order; each request occupies the pipe for its occupancy and the pipe
// accumulates busy cycles for bottleneck accounting.
type Pipe struct {
	name     string
	nextFree uint64
	busy     uint64
}

// NewPipe names a pipe for diagnostics.
func NewPipe(name string) *Pipe { return &Pipe{name: name} }

// Name returns the pipe's name.
func (p *Pipe) Name() string { return p.name }

// Acquire grants the pipe to a request arriving at now for occ cycles,
// returning the grant time and the time the pipe frees.
func (p *Pipe) Acquire(now, occ uint64) (grant, done uint64) {
	grant = now
	if p.nextFree > grant {
		grant = p.nextFree
	}
	done = grant + occ
	p.nextFree = done
	p.busy += occ
	return grant, done
}

// Busy returns accumulated busy cycles.
func (p *Pipe) Busy() uint64 { return p.busy }

// NextFree returns the cycle at which the pipe next idles.
func (p *Pipe) NextFree() uint64 { return p.nextFree }

// Reset clears scheduling state and counters.
func (p *Pipe) Reset() { p.nextFree, p.busy = 0, 0 }

// DRAM is the cycle-cost model of one chip's memory system as seen by a
// single SIMD engine: the chip's bandwidth divided evenly among engines
// (every engine runs the same kernel in these workloads), plus latency and
// row-activation constants.
type DRAM struct {
	// BytesPerCycle is this SIMD's share of DRAM bandwidth, in bytes per
	// core clock cycle.
	BytesPerCycle float64
	// RowPenalty is the cycle cost of opening a DRAM row (activation +
	// column-access overhead folded together).
	RowPenalty uint64
	// ReadLatency is the uncached global-read round trip in core cycles.
	ReadLatency uint64
	// ReadOverhead is the extra per-fetch-instruction occupancy of the
	// uncached read path; large on the RV670, whose global memory the
	// paper found dramatically slower than its texture path (Fig. 12).
	ReadOverhead uint64
}

// NewDRAM derives the per-SIMD DRAM model from a device spec.
func NewDRAM(spec device.Spec) (*DRAM, error) {
	if spec.SIMDEngines <= 0 {
		return nil, fmt.Errorf("mem: spec %s has no SIMD engines", spec.Arch)
	}
	bw := spec.MemBandwidthBytesPerCoreCycle() / float64(spec.SIMDEngines)
	if bw <= 0 {
		return nil, fmt.Errorf("mem: spec %s has non-positive bandwidth", spec.Arch)
	}
	d := &DRAM{
		BytesPerCycle: bw,
		RowPenalty:    24,
		ReadLatency:   uint64(spec.GlobalReadLatency),
	}
	if spec.MemKind == device.GDDR3 {
		// The RV670's uncached path is far slower than its texture path:
		// narrow transactions with heavy per-access overhead.
		d.ReadOverhead = 96
	} else {
		d.ReadOverhead = 8
	}
	return d, nil
}

// TransferCycles converts a transfer of n bytes touching the given number
// of newly-opened DRAM rows into occupancy cycles.
func (d *DRAM) TransferCycles(bytes int, activations float64) uint64 {
	if bytes <= 0 && activations <= 0 {
		return 0
	}
	c := float64(bytes)/d.BytesPerCycle + activations*float64(d.RowPenalty)
	if c < 1 {
		c = 1
	}
	return uint64(c)
}

// BurstWriteCycles is the occupancy of writing n consecutive bytes: pure
// bandwidth, one activation per touched row. The AMD GPUs allow burst
// writing when output addresses are consecutive (Section II-B), which is
// how every wavefront's linear stores behave.
func (d *DRAM) BurstWriteCycles(bytes int) uint64 {
	rows := float64(bytes) / 2048.0
	return d.TransferCycles(bytes, rows)
}

// ScatteredWriteCycles is the occupancy of writing n bytes spread over
// `chunks` discontiguous locations, each paying a row activation.
func (d *DRAM) ScatteredWriteCycles(bytes, chunks int) uint64 {
	return d.TransferCycles(bytes, float64(chunks))
}

// GlobalReadCycles is the occupancy of one uncached fetch instruction
// moving n consecutive bytes for a wavefront.
func (d *DRAM) GlobalReadCycles(bytes int) uint64 {
	rows := float64(bytes) / 2048.0
	return d.TransferCycles(bytes, rows) + d.ReadOverhead
}
