package sim

import (
	"testing"

	"amdgpubench/internal/cache"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/raster"
)

// TestRunAllocsWithSuppliedTrace pins the simulate stage's allocation
// budget on the path every memoized sweep point pays: replay statistics
// served by the pipeline (cfg.Trace set), so Run is the event loop plus
// fixed setup. The step slice and the ready list are pooled; a
// regression that allocates per event or per clause blows the budget.
func TestRunAllocsWithSuppliedTrace(t *testing.T) {
	spec := device.Lookup(device.RV770)
	prog := buildChain(t, spec, 4, 16, il.Pixel, il.Float4, il.TextureSpace, il.TextureSpace, 1)
	cfg := Config{
		Spec:       spec,
		Prog:       prog,
		Order:      raster.PixelOrder(),
		W:          1024,
		H:          1024,
		Iterations: 1,
	}
	tc, ok := TraceConfigFor(cfg)
	if !ok {
		t.Fatal("test kernel has no texture trace")
	}
	st, err := cache.Replay(tc)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = &st

	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// The DRAM model and the five pipes are per-run value setup; the
	// event loop itself must recycle its pooled state.
	if allocs > 10 {
		t.Errorf("Run with supplied trace allocates %.1f objects/op, want <= 10", allocs)
	}
}
