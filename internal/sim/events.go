package sim

import "sync"

// event is a wavefront becoming ready to issue its next clause.
type event struct {
	at     uint64
	wave   int
	clause int
}

// before orders events by (at, wave). Each wavefront has exactly one
// event in flight, so keys are unique and the order is total.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.wave < o.wave
}

// readyList is the batch loop's pending-event queue: a time-sorted
// slice drained from the front. It replaces a binary min-heap by
// exploiting the loop's monotonicity — simulated time only moves
// forward, so every pushed event is at or after the event being
// processed. In the common case the resident wavefronts progress in
// near-lockstep and a completed clause re-queues at or past the latest
// pending event: one bounds check and an append, no sift. Out-of-order
// completions (a cheap clause finishing under a slow one) scan backward
// from the tail, and the scan distance is bounded by the wavefront
// count, not the queue length. Pop order is identical to the heap's:
// ascending (at, wave).
type readyList struct {
	ev   []event
	head int // index of the next event to pop
}

func (r *readyList) len() int { return len(r.ev) - r.head }

// push inserts e keeping r.ev[head:] sorted ascending by (at, wave).
func (r *readyList) push(e event) {
	ev := r.ev
	n := len(ev)
	if n == r.head || !e.before(ev[n-1]) {
		// Latest pending event: append. When the backing array is full,
		// reclaim the already-popped prefix before growing it.
		if n == cap(ev) && r.head > 0 {
			m := copy(ev[:cap(ev)], ev[r.head:])
			ev = ev[:m]
			r.head = 0
		}
		r.ev = append(ev, e)
		return
	}
	i := n
	for i > r.head && e.before(ev[i-1]) {
		i--
	}
	ev = append(ev, event{})
	copy(ev[i+1:], ev[i:n])
	ev[i] = e
	r.ev = ev
}

// pop removes and returns the earliest pending event. The caller must
// ensure len() > 0.
func (r *readyList) pop() event {
	e := r.ev[r.head]
	r.head++
	if r.head == len(r.ev) {
		r.ev = r.ev[:0]
		r.head = 0
	}
	return e
}

// reset empties the list, keeping the backing array.
func (r *readyList) reset() {
	r.ev = r.ev[:0]
	r.head = 0
}

// readyPool recycles ready-list backing arrays across batches.
var readyPool = sync.Pool{
	New: func() any { return &readyList{ev: make([]event, 0, 64)} },
}
