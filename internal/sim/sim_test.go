package sim

import (
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/ilc"
	"amdgpubench/internal/isa"
	"amdgpubench/internal/raster"
)

// buildChain compiles the generic Fig. 3 kernel for tests.
func buildChain(t *testing.T, spec device.Spec, inputs, aluOps int, mode il.ShaderMode, dt il.DataType, inSp, outSp il.MemSpace, outs int) *isa.Program {
	t.Helper()
	k := &il.Kernel{
		Name: "t", Mode: mode, Type: dt,
		NumInputs: inputs, NumOutputs: outs,
		InputSpace: inSp, OutSpace: outSp,
	}
	fetchOp := il.OpSample
	if inSp == il.GlobalSpace {
		fetchOp = il.OpGlobalLoad
	}
	r := il.Reg(0)
	for i := 0; i < inputs; i++ {
		k.Code = append(k.Code, il.Instr{Op: fetchOp, Dst: r, SrcA: il.NoReg, SrcB: il.NoReg, Res: i})
		r++
	}
	acc := il.Reg(0)
	emitted := 0
	for i := 1; i < inputs && emitted < aluOps; i++ {
		k.Code = append(k.Code, il.Instr{Op: il.OpAdd, Dst: r, SrcA: acc, SrcB: il.Reg(i), Res: -1})
		acc = r
		r++
		emitted++
	}
	prev, prev2 := acc, acc
	if int(acc) >= 1 {
		prev2 = acc - 1
	}
	for emitted < aluOps {
		k.Code = append(k.Code, il.Instr{Op: il.OpAdd, Dst: r, SrcA: prev, SrcB: prev2, Res: -1})
		prev2, prev = prev, r
		r++
		emitted++
	}
	storeOp := il.OpExport
	if outSp == il.GlobalSpace {
		storeOp = il.OpGlobalStore
	}
	for o := 0; o < outs; o++ {
		k.Code = append(k.Code, il.Instr{Op: storeOp, Dst: il.NoReg, SrcA: prev, SrcB: il.NoReg, Res: o})
	}
	p, err := ilc.Compile(k, spec)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func runQuick(t *testing.T, spec device.Spec, p *isa.Program, order raster.Order) Result {
	t.Helper()
	r, err := Run(Config{Spec: spec, Prog: p, Order: order, W: 1024, H: 1024, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunValidatesConfig(t *testing.T) {
	spec := device.Lookup(device.RV770)
	p := buildChain(t, spec, 4, 16, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	if _, err := Run(Config{Spec: spec, Prog: nil, Order: raster.PixelOrder(), W: 64, H: 64}); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: 0, H: 64}); err == nil {
		t.Error("zero domain accepted")
	}
	if _, err := Run(Config{Spec: spec, Prog: p, Order: raster.Naive64x1(), W: 64, H: 64}); err == nil {
		t.Error("pixel program with compute order accepted")
	}
}

func TestComputeRejectedOnRV670(t *testing.T) {
	spec := device.Lookup(device.RV770)
	p := buildChain(t, spec, 4, 16, il.Compute, il.Float, il.TextureSpace, il.GlobalSpace, 1)
	if _, err := Run(Config{Spec: device.Lookup(device.RV670), Prog: p, Order: raster.Naive64x1(), W: 64, H: 64}); err == nil {
		t.Error("compute mode on RV670 accepted")
	}
}

func TestMoreALUOpsMoreTime(t *testing.T) {
	spec := device.Lookup(device.RV770)
	var prev uint64
	for _, ops := range []int{16, 64, 256, 1024} {
		p := buildChain(t, spec, 8, ops, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
		r := runQuick(t, spec, p, raster.PixelOrder())
		if r.Cycles < prev {
			t.Fatalf("cycles decreased when ALU ops grew to %d", ops)
		}
		prev = r.Cycles
	}
}

func TestBottleneckTransitions(t *testing.T) {
	// Few ALU ops on many fetches: fetch bound. Many ALU ops: ALU bound.
	spec := device.Lookup(device.RV770)
	fetchy := buildChain(t, spec, 16, 15, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	r := runQuick(t, spec, fetchy, raster.PixelOrder())
	if r.Bottleneck != BottleneckFetch {
		t.Errorf("16-input / 15-op kernel bottleneck = %v, want fetch", r.Bottleneck)
	}
	aluey := buildChain(t, spec, 2, 512, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	r = runQuick(t, spec, aluey, raster.PixelOrder())
	if r.Bottleneck != BottleneckALU {
		t.Errorf("2-input / 512-op kernel bottleneck = %v, want ALU", r.Bottleneck)
	}
}

func TestWriteBoundKernel(t *testing.T) {
	// Monte-Carlo shape (Section IV-C): few inputs, several global writes.
	spec := device.Lookup(device.RV770)
	p := buildChain(t, spec, 2, 8, il.Pixel, il.Float4, il.TextureSpace, il.GlobalSpace, 8)
	r := runQuick(t, spec, p, raster.PixelOrder())
	if r.Bottleneck != BottleneckMemory {
		t.Errorf("8-output kernel bottleneck = %v, want memory", r.Bottleneck)
	}
}

func TestOccupancyFollowsGPRs(t *testing.T) {
	spec := device.Lookup(device.RV770)
	small := buildChain(t, spec, 4, 32, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	big := buildChain(t, spec, 64, 32, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	rs := runQuick(t, spec, small, raster.PixelOrder())
	rb := runQuick(t, spec, big, raster.PixelOrder())
	if !(rs.WavesPerSIMD > rb.WavesPerSIMD) {
		t.Fatalf("4-input kernel occupancy %d not above 64-input kernel's %d", rs.WavesPerSIMD, rb.WavesPerSIMD)
	}
	if rb.WavesPerSIMD < 1 {
		t.Fatal("occupancy below 1")
	}
}

func TestIterationsScaleLinearly(t *testing.T) {
	spec := device.Lookup(device.RV770)
	p := buildChain(t, spec, 8, 32, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	r1, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: 512, H: 512, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	r10, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: 512, H: 512, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r10.Cycles != 10*r1.Cycles {
		t.Fatalf("10 iterations = %d cycles, want exactly 10x %d", r10.Cycles, r1.Cycles)
	}
}

func TestDefaultIterations(t *testing.T) {
	spec := device.Lookup(device.RV770)
	p := buildChain(t, spec, 4, 8, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	r0, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: 256, H: 256})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: 256, H: 256, Iterations: DefaultIterations})
	if err != nil {
		t.Fatal(err)
	}
	if r0.Cycles != r1.Cycles {
		t.Fatal("zero iterations did not default to 5000")
	}
}

func TestGenerationOrdering(t *testing.T) {
	// Same fetch-bound kernel: newer generations (more SIMDs) finish the
	// same domain faster (Fig. 11's per-chip ordering).
	var times []float64
	for _, a := range []device.Arch{device.RV670, device.RV770, device.RV870} {
		spec := device.Lookup(a)
		p := buildChain(t, spec, 16, 15, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
		r := runQuick(t, spec, p, raster.PixelOrder())
		times = append(times, r.Seconds)
	}
	if !(times[0] > times[1] && times[1] > times[2]) {
		t.Fatalf("per-generation times not decreasing: %v", times)
	}
}

func TestPixelFasterThanNaiveCompute(t *testing.T) {
	// Fig. 7: compute mode with the naive 64x1 block is slower than pixel
	// mode for the same fetch-bound kernel.
	spec := device.Lookup(device.RV770)
	pp := buildChain(t, spec, 16, 15, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	pc := buildChain(t, spec, 16, 15, il.Compute, il.Float, il.TextureSpace, il.GlobalSpace, 1)
	rp := runQuick(t, spec, pp, raster.PixelOrder())
	rc := runQuick(t, spec, pc, raster.Naive64x1())
	if !(rp.Seconds < rc.Seconds) {
		t.Fatalf("pixel %.3fs not faster than 64x1 compute %.3fs", rp.Seconds, rc.Seconds)
	}
}

func TestBlock4x16FasterThan64x1(t *testing.T) {
	// Fig. 8 vs Fig. 7 in compute mode.
	spec := device.Lookup(device.RV870)
	p := buildChain(t, spec, 16, 15, il.Compute, il.Float4, il.TextureSpace, il.GlobalSpace, 1)
	r64 := runQuick(t, spec, p, raster.Naive64x1())
	r416 := runQuick(t, spec, p, raster.Block4x16())
	if !(r416.Seconds < r64.Seconds) {
		t.Fatalf("4x16 %.3fs not faster than 64x1 %.3fs", r416.Seconds, r64.Seconds)
	}
}

func TestCountersConservation(t *testing.T) {
	spec := device.Lookup(device.RV770)
	p := buildChain(t, spec, 8, 64, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	r := runQuick(t, spec, p, raster.PixelOrder())
	c := r.Counters
	if c.ALU == 0 || c.TexIssue == 0 || c.TexFill == 0 {
		t.Fatalf("busy counters missing activity: %+v", c)
	}
	// The only non-fill DRAM traffic is the streaming store's writeback;
	// one float output per wavefront is a trickle next to the fills.
	if c.MemGlobal >= c.TexFill {
		t.Fatalf("store writeback (%d) out of proportion to fills (%d)", c.MemGlobal, c.TexFill)
	}
	if c.Export == 0 {
		t.Fatalf("streaming store kernel accrued no export busy: %+v", c)
	}
}

func TestBottleneckString(t *testing.T) {
	if BottleneckALU.String() != "ALU" || BottleneckFetch.String() != "fetch" ||
		BottleneckMemory.String() != "memory" || Bottleneck(9).String() != "?" {
		t.Error("bottleneck names wrong")
	}
}

func TestRV670GlobalReadMuchSlower(t *testing.T) {
	// Fig. 12's headline: the RV670's global memory reads are drastically
	// slower than its texture fetches; on the RV770 they are comparable
	// to the naive compute texture path.
	spec := device.Lookup(device.RV670)
	tex := buildChain(t, spec, 16, 15, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	glob := buildChain(t, spec, 16, 15, il.Pixel, il.Float, il.GlobalSpace, il.TextureSpace, 1)
	rt := runQuick(t, spec, tex, raster.PixelOrder())
	rg := runQuick(t, spec, glob, raster.PixelOrder())
	if !(rg.Seconds > 1.2*rt.Seconds) {
		t.Fatalf("RV670 global read %.3fs not well above texture %.3fs", rg.Seconds, rt.Seconds)
	}
}

func TestAblationSingleWavefrontSlower(t *testing.T) {
	spec := device.Lookup(device.RV770)
	p := buildChain(t, spec, 16, 64, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	base, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: 512, H: 512, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	abl, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: 512, H: 512, Iterations: 1,
		Ablate: Ablations{SingleWavefront: true}})
	if err != nil {
		t.Fatal(err)
	}
	if abl.WavesPerSIMD != 1 {
		t.Fatalf("ablated occupancy = %d, want 1", abl.WavesPerSIMD)
	}
	if !(abl.Cycles > 2*base.Cycles) {
		t.Fatalf("no latency-hiding benefit: %d vs %d cycles", abl.Cycles, base.Cycles)
	}
}

func TestAblationNoBurstWritesSlower(t *testing.T) {
	spec := device.Lookup(device.RV770)
	p := buildChain(t, spec, 2, 8, il.Pixel, il.Float4, il.TextureSpace, il.GlobalSpace, 8)
	base, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: 512, H: 512, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	abl, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: 512, H: 512, Iterations: 1,
		Ablate: Ablations{NoBurstWrites: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !(abl.Cycles > base.Cycles) {
		t.Fatalf("scattered writes not slower: %d vs %d cycles", abl.Cycles, base.Cycles)
	}
}

func TestAblationLinearTexturesNotFaster(t *testing.T) {
	spec := device.Lookup(device.RV770)
	p := buildChain(t, spec, 16, 15, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	base, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: 1024, H: 1024, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	abl, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: 1024, H: 1024, Iterations: 1,
		Ablate: Ablations{LinearTextures: true}})
	if err != nil {
		t.Fatal(err)
	}
	if abl.Cycles < base.Cycles {
		t.Fatalf("row-major textures beat the tiled layout: %d vs %d cycles", abl.Cycles, base.Cycles)
	}
}

func TestL2FillCounterPopulated(t *testing.T) {
	spec := device.Lookup(device.RV770)
	p := buildChain(t, spec, 16, 15, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	r, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: 1024, H: 1024, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.L2Fill == 0 {
		t.Fatal("texture kernel accrued no L2 fill occupancy")
	}
}

func TestBatchQuantizationStaircase(t *testing.T) {
	// Fig. 15's wobble mechanism: whole-domain time moves in dispatch
	// batches of (waves/SIMD x SIMDs) wavefronts, so growing the domain
	// by one tile does not always grow the time.
	spec := device.Lookup(device.RV770)
	p := buildChain(t, spec, 8, 320, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	var cycles []uint64
	for d := 256; d <= 512; d += 8 {
		r, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: d, H: d, Iterations: 1})
		if err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, r.Cycles)
	}
	if cycles[0] >= cycles[len(cycles)-1] {
		t.Fatal("time did not grow over the domain sweep")
	}
	// Quantization shows as non-uniform growth: the per-step increment
	// jumps when a domain increment spills into a new dispatch batch.
	minInc, maxInc := uint64(1<<62), uint64(0)
	for i := 1; i < len(cycles); i++ {
		inc := cycles[i] - cycles[i-1]
		if inc < minInc {
			minInc = inc
		}
		if inc > maxInc {
			maxInc = inc
		}
	}
	if maxInc < 2*minInc {
		t.Fatalf("growth too uniform for batch quantization: increments in [%d, %d]", minInc, maxInc)
	}
}

func TestLaunchOverheadFloor(t *testing.T) {
	// A tiny domain is dominated by the kernel invocation overhead the
	// paper works around by choosing realistic domains.
	spec := device.Lookup(device.RV770)
	p := buildChain(t, spec, 2, 1, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	r, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: 8, H: 8, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles < LaunchOverheadCycles {
		t.Fatalf("cycles %d below the launch overhead %d", r.Cycles, LaunchOverheadCycles)
	}
}

func TestSingleWavefrontHalvesALUThroughput(t *testing.T) {
	// Section II-A: one wavefront fills only one of the two thread
	// processor slots, so the ALU pipeline runs at half throughput.
	spec := device.Lookup(device.RV770)
	p := buildChain(t, spec, 2, 256, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	base, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: 256, H: 256, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(Config{Spec: spec, Prog: p, Order: raster.PixelOrder(), W: 256, H: 256, Iterations: 1,
		Ablate: Ablations{SingleWavefront: true}})
	if err != nil {
		t.Fatal(err)
	}
	// Per-batch ALU busy doubles per wavefront: the single-wave batch has
	// 1/Nth the waves, so compare per-wave occupancy.
	perWaveBase := float64(base.Counters.ALU) / float64(base.WavesPerSIMD)
	perWaveSingle := float64(single.Counters.ALU) / float64(single.WavesPerSIMD)
	if perWaveSingle != 2*perWaveBase {
		t.Fatalf("single-wave ALU occupancy %v, want exactly 2x %v", perWaveSingle, perWaveBase)
	}
}
