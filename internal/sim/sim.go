// Package sim is the timing simulator for compiled kernels on the modelled
// AMD GPUs. It executes the clause schedule of a resident wavefront set on
// one SIMD engine's resources — the ALU pipeline, the texture pipeline,
// the per-SIMD share of the DRAM system, and the export path — with an
// event-driven loop in which wavefronts hide latency by clause switching,
// exactly the mechanism Section II of the paper describes. Whole-domain,
// whole-experiment times come from replicating the steady-state batch
// across SIMD engines, dispatch batches and the suite's 5000 kernel
// iterations.
//
// The three bottlenecks the paper's micro-benchmarks classify (ALU
// throughput, texture fetch, memory access) are emergent here: each is a
// resource, and whichever pipe saturates paces the batch.
package sim

import (
	"container/heap"
	"fmt"

	"amdgpubench/internal/cache"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/isa"
	"amdgpubench/internal/mem"
	"amdgpubench/internal/raster"
)

// DefaultIterations is the paper's repetition count: every kernel of every
// micro-benchmark was executed 5000 times for stable timings.
const DefaultIterations = 5000

// launchOverheadCycles approximates per-invocation driver/dispatch cost;
// the paper notes kernel invocation time exceeds the execution time of a
// domain-of-one kernel, which is why realistic domains are used.
const launchOverheadCycles = 20000

// Ablations switches individual hardware mechanisms off so their
// contribution to the paper's results can be quantified (DESIGN.md §7).
type Ablations struct {
	// SingleWavefront caps residency at one wavefront per SIMD: no clause
	// switching, no latency hiding — the mechanism behind Fig. 16.
	SingleWavefront bool
	// NoBurstWrites makes every global/stream write pay a DRAM row
	// activation per cache-line-sized chunk instead of streaming — the
	// consecutive-address burst facility of Section II-B turned off.
	NoBurstWrites bool
	// LinearTextures stores textures row-major instead of tiled, breaking
	// the match between the rasterizer's walk and the cache.
	LinearTextures bool
}

// Config describes one kernel execution experiment.
type Config struct {
	Spec  device.Spec
	Prog  *isa.Program
	Order raster.Order
	W, H  int
	// Iterations is the number of kernel invocations to time; zero means
	// DefaultIterations.
	Iterations int
	// Ablate selectively disables hardware mechanisms.
	Ablate Ablations
}

// Counters holds per-resource busy cycles for one steady-state batch.
type Counters struct {
	ALU       uint64 // ALU pipeline
	TexIssue  uint64 // texture unit issue occupancy
	L2Fill    uint64 // L2 occupancy refilling texture L1 misses
	TexFill   uint64 // DRAM occupancy refilling texture L2 misses
	MemGlobal uint64 // DRAM occupancy of uncached global reads and writes
	Export    uint64 // streaming store (color buffer) path
}

// Bottleneck is the resource that limits a kernel, the classification the
// suite exists to produce.
type Bottleneck int

const (
	// BottleneckALU means the stream cores pace the kernel.
	BottleneckALU Bottleneck = iota
	// BottleneckFetch means the texture fetch path (issue or L1 fill)
	// paces the kernel.
	BottleneckFetch
	// BottleneckMemory means uncached global memory traffic or the store
	// path paces the kernel.
	BottleneckMemory
)

// String names the bottleneck.
func (b Bottleneck) String() string {
	switch b {
	case BottleneckALU:
		return "ALU"
	case BottleneckFetch:
		return "fetch"
	case BottleneckMemory:
		return "memory"
	}
	return "?"
}

// Result is the outcome of one simulated experiment.
type Result struct {
	Cycles       uint64  // total cycles across all iterations
	Seconds      float64 // Cycles at the core clock
	WavesPerSIMD int     // resident wavefronts (GPR-limited occupancy)
	GPRs         int     // per-thread register footprint
	TotalWaves   int     // wavefronts covering the domain
	Batches      int     // dispatch batches per SIMD
	HitRate      float64 // texture L1 hit rate (0 when no texture fetches)
	Counters     Counters
	Bottleneck   Bottleneck
}

// step is one clause converted to resource costs.
type step struct {
	aluOcc  uint64 // ALU pipe occupancy
	texOcc  uint64 // texture pipe occupancy
	l2Occ   uint64 // L2 fill occupancy (texture L1 refills)
	memOcc  uint64 // DRAM occupancy (fill or global traffic)
	expOcc  uint64 // export path occupancy
	latency uint64 // additional cycles until dependent clauses may start
	isFill  bool   // memOcc is texture fill (fetch path) traffic
}

// Run simulates the configured kernel and returns its timing.
func Run(cfg Config) (Result, error) {
	if cfg.Prog == nil {
		return Result{}, fmt.Errorf("sim: nil program")
	}
	if err := cfg.Prog.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	if err := cfg.Spec.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	if cfg.W <= 0 || cfg.H <= 0 {
		return Result{}, fmt.Errorf("sim: bad domain %dx%d", cfg.W, cfg.H)
	}
	if cfg.Prog.Mode != cfg.Order.Mode {
		return Result{}, fmt.Errorf("sim: program compiled for %s mode but order is %s", cfg.Prog.Mode, cfg.Order)
	}
	if cfg.Prog.Mode == il.Compute && !cfg.Spec.SupportsCompute {
		return Result{}, fmt.Errorf("sim: %s does not support compute shader mode", cfg.Spec.Arch)
	}
	iters := cfg.Iterations
	if iters == 0 {
		iters = DefaultIterations
	}

	dram, err := mem.NewDRAM(cfg.Spec)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}

	res := Result{GPRs: cfg.Prog.GPRCount}
	res.WavesPerSIMD = cfg.Spec.WavefrontsForGPRs(cfg.Prog.GPRCount)
	if cfg.Ablate.SingleWavefront {
		res.WavesPerSIMD = 1
	}
	res.TotalWaves = cfg.Order.WavefrontCount(cfg.W, cfg.H)

	// Texture-path statistics from the trace-driven cache replay.
	texFetches, elem := textureFootprint(cfg.Prog)
	var trace cache.TraceStats
	if texFetches > 0 {
		trace, err = cache.Replay(cache.TraceConfig{
			Spec:          cfg.Spec,
			Order:         cfg.Order,
			W:             cfg.W,
			H:             cfg.H,
			ElemBytes:     elem,
			NumInputs:     texFetches,
			ResidentWaves: res.WavesPerSIMD,
			LinearLayout:  cfg.Ablate.LinearTextures,
		})
		if err != nil {
			return Result{}, fmt.Errorf("sim: %w", err)
		}
		res.HitRate = trace.HitRate()
	}

	steps := buildSteps(cfg, dram, trace)

	// Steady-state batch on one SIMD, then replicate.
	wavesPerSIMDTotal := ceilDiv(res.TotalWaves, cfg.Spec.SIMDEngines)
	full := wavesPerSIMDTotal / res.WavesPerSIMD
	rem := wavesPerSIMDTotal % res.WavesPerSIMD
	res.Batches = full
	if rem > 0 {
		res.Batches++
	}

	makespan, counters := simulateBatch(steps, res.WavesPerSIMD)
	total := uint64(full) * makespan
	if rem > 0 {
		m2, _ := simulateBatch(steps, rem)
		total += m2
	}
	total += launchOverheadCycles

	res.Counters = counters
	res.Cycles = total * uint64(iters)
	res.Seconds = float64(res.Cycles) / (float64(cfg.Spec.CoreClockMHz) * 1e6)
	res.Bottleneck = classify(counters)
	return res, nil
}

// textureFootprint returns the number of texture (cached) fetch
// instructions and the element size of the program's fetches.
func textureFootprint(p *isa.Program) (n, elemBytes int) {
	elemBytes = p.Type.Bytes()
	for i := range p.Clauses {
		c := &p.Clauses[i]
		if c.Kind != isa.ClauseTEX {
			continue
		}
		for _, f := range c.Fetches {
			if !f.Global {
				n++
			}
		}
	}
	return n, elemBytes
}

// buildSteps converts each clause into resource costs.
func buildSteps(cfg Config, dram *mem.DRAM, trace cache.TraceStats) []step {
	spec := cfg.Spec
	// Each thread processor has an odd and an even wavefront slot; with a
	// single resident wavefront "only half the thread processor is used"
	// (Section II-A): the ALU pipeline cannot be filled back-to-back.
	aluPenalty := 1
	if spec.WavefrontsForGPRs(cfg.Prog.GPRCount) < spec.SlotsPerTP || cfg.Ablate.SingleWavefront {
		aluPenalty = 2
	}
	var steps []step
	for i := range cfg.Prog.Clauses {
		c := &cfg.Prog.Clauses[i]
		var s step
		switch c.Kind {
		case isa.ClauseALU:
			s.aluOcc = uint64(len(c.Bundles) * spec.CyclesPerALUBundle() * aluPenalty)
		case isa.ClauseTEX:
			for _, f := range c.Fetches {
				bytes := spec.WavefrontSize * f.ElemBytes
				if f.Global {
					// Uncached global read: address issue through the
					// texture units, traffic through DRAM.
					s.texOcc += 4
					s.memOcc += dram.GlobalReadCycles(bytes)
					if dram.ReadLatency > s.latency {
						s.latency = dram.ReadLatency
					}
				} else {
					s.texOcc += uint64(spec.FetchIssueCycles(f.ElemBytes))
					// L1 refills drain through the L2; the slice the L2
					// cannot absorb goes to DRAM and pays row activations.
					s.l2Occ += uint64(trace.MissBytesPerFetch() / float64(spec.L2BytesPerCycle))
					s.memOcc += dram.TransferCycles(
						int(trace.DRAMBytesPerFetch()),
						trace.ActivationsPerFetch())
					s.isFill = true
					// A wavefront's TEX clause completes at its slowest
					// fetch: with 64 threads per fetch the clause all but
					// certainly contains a miss, so the clause-switching
					// stall is the miss latency, not the per-access
					// average.
					missesPerFetch := 0.0
					if trace.FetchExecs > 0 {
						missesPerFetch = float64(trace.Misses) / float64(trace.FetchExecs)
					}
					lat := uint64(spec.TexMissLatency)
					if missesPerFetch < 1 {
						lat = uint64(missesPerFetch*float64(spec.TexMissLatency) +
							(1-missesPerFetch)*float64(spec.TexHitLatency))
					}
					if lat > s.latency {
						s.latency = lat
					}
				}
			}
		case isa.ClauseEXP:
			for _, e := range c.Exports {
				bytes := spec.WavefrontSize * e.ElemBytes
				s.expOcc += uint64(spec.StreamStoreCycles)
				s.memOcc += writeCycles(dram, bytes, cfg.Ablate.NoBurstWrites)
			}
		case isa.ClauseMEM:
			for _, e := range c.Exports {
				bytes := spec.WavefrontSize * e.ElemBytes
				s.memOcc += writeCycles(dram, bytes, cfg.Ablate.NoBurstWrites)
			}
		}
		steps = append(steps, s)
	}
	return steps
}

// writeCycles prices a wavefront's store: bursting at full bandwidth, or,
// under the no-burst ablation, paying a row activation per 64B chunk.
func writeCycles(dram *mem.DRAM, bytes int, noBurst bool) uint64 {
	if noBurst {
		return dram.ScatteredWriteCycles(bytes, (bytes+63)/64)
	}
	return dram.BurstWriteCycles(bytes)
}

// event is a wavefront becoming ready to issue its next clause.
type event struct {
	at     uint64
	wave   int
	clause int
}

type eventHeap []event

func (h eventHeap) Len() int      { return len(h) }
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].wave < h[j].wave
}
func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// simulateBatch runs `waves` wavefronts through the clause steps on one
// SIMD engine's pipes and returns the makespan and busy counters.
func simulateBatch(steps []step, waves int) (uint64, Counters) {
	alu := mem.NewPipe("alu")
	tex := mem.NewPipe("tex")
	l2 := mem.NewPipe("l2")
	dram := mem.NewPipe("mem")
	exp := mem.NewPipe("export")
	var fillBusy, globalBusy uint64

	h := make(eventHeap, 0, waves)
	for w := 0; w < waves; w++ {
		h = append(h, event{at: 0, wave: w, clause: 0})
	}
	heap.Init(&h)

	var makespan uint64
	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		if e.clause >= len(steps) {
			if e.at > makespan {
				makespan = e.at
			}
			continue
		}
		s := steps[e.clause]
		ready := e.at
		if s.aluOcc > 0 {
			_, done := alu.Acquire(ready, s.aluOcc)
			ready = done
		}
		if s.texOcc > 0 {
			_, done := tex.Acquire(ready, s.texOcc)
			ready = done
		}
		if s.l2Occ > 0 {
			_, done := l2.Acquire(ready, s.l2Occ)
			ready = done
		}
		if s.memOcc > 0 {
			_, done := dram.Acquire(ready, s.memOcc)
			ready = done
			if s.isFill {
				fillBusy += s.memOcc
			} else {
				globalBusy += s.memOcc
			}
		}
		if s.expOcc > 0 {
			_, done := exp.Acquire(ready, s.expOcc)
			ready = done
		}
		ready += s.latency
		heap.Push(&h, event{at: ready, wave: e.wave, clause: e.clause + 1})
	}

	return makespan, Counters{
		ALU:       alu.Busy(),
		TexIssue:  tex.Busy(),
		L2Fill:    l2.Busy(),
		TexFill:   fillBusy,
		MemGlobal: globalBusy,
		Export:    exp.Busy(),
	}
}

// classify maps busy counters to the paper's three bottleneck classes. The
// fetch path is the greater of issue and fill occupancy (they pipeline);
// memory covers global reads/writes and the store path.
func classify(c Counters) Bottleneck {
	fetch := c.TexIssue
	if c.L2Fill > fetch {
		fetch = c.L2Fill
	}
	if c.TexFill > fetch {
		fetch = c.TexFill
	}
	memory := c.MemGlobal + c.Export
	switch {
	case c.ALU >= fetch && c.ALU >= memory:
		return BottleneckALU
	case fetch >= memory:
		return BottleneckFetch
	default:
		return BottleneckMemory
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
