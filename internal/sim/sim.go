// Package sim is the timing simulator for compiled kernels on the modelled
// AMD GPUs. It executes the clause schedule of a resident wavefront set on
// one SIMD engine's resources — the ALU pipeline, the texture pipeline,
// the per-SIMD share of the DRAM system, and the export path — with an
// event-driven loop in which wavefronts hide latency by clause switching,
// exactly the mechanism Section II of the paper describes. Whole-domain,
// whole-experiment times come from replicating the steady-state batch
// across SIMD engines, dispatch batches and the suite's 5000 kernel
// iterations.
//
// The three bottlenecks the paper's micro-benchmarks classify (ALU
// throughput, texture fetch, memory access) are emergent here: each is a
// resource, and whichever pipe saturates paces the batch.
package sim

import (
	"fmt"
	"sync"

	"amdgpubench/internal/cache"
	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/isa"
	"amdgpubench/internal/mem"
	"amdgpubench/internal/raster"
)

// DefaultIterations is the paper's repetition count: every kernel of every
// micro-benchmark was executed 5000 times for stable timings.
const DefaultIterations = 5000

// LaunchOverheadCycles approximates per-invocation driver/dispatch cost;
// the paper notes kernel invocation time exceeds the execution time of a
// domain-of-one kernel, which is why realistic domains are used. It is
// exported so the conformance suite's domain-linearity invariant can
// subtract the per-launch constant before comparing cycle totals.
const LaunchOverheadCycles = 20000

// DefaultWatchdogBudget is the forward-progress cycle budget for one
// steady-state batch when Config.Watchdog is zero. Real batches finish in
// well under a billion cycles; a wavefront set that has not drained by
// 2^40 cycles is stuck, not slow.
const DefaultWatchdogBudget = uint64(1) << 40

// HangFault injects a clause that never retires: the issuing wavefront
// stalls forever, the failure mode a driver watchdog reset recovers on
// real hardware. Clause is the clause index; negative picks the last.
type HangFault struct {
	Clause int
}

// WatchdogError is the structured diagnostic the watchdog aborts with
// when a wavefront set stops retiring work within the cycle budget: which
// wavefront is stuck entering which clause, how far the batch got, and
// the per-pipe busy counters accumulated before the abort.
type WatchdogError struct {
	Wave     int      // the stuck wavefront
	Clause   int      // the clause it cannot complete
	Clauses  int      // total clauses in the kernel
	At       uint64   // the cycle the stuck event surfaced
	Budget   uint64   // the budget it exceeded
	Retired  int      // clause executions retired before the abort
	Waiting  int      // wavefronts still in flight (including the stuck one)
	Counters Counters // pipe busy cycles up to the abort
}

// Error renders the diagnostic.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf(
		"watchdog: no forward progress within %d cycles: wavefront %d stuck entering clause %d/%d at cycle %d (%d clause executions retired, %d wavefronts in flight)",
		e.Budget, e.Wave, e.Clause, e.Clauses, e.At, e.Retired, e.Waiting)
}

// Ablations switches individual hardware mechanisms off so their
// contribution to the paper's results can be quantified (DESIGN.md §7).
type Ablations struct {
	// SingleWavefront caps residency at one wavefront per SIMD: no clause
	// switching, no latency hiding — the mechanism behind Fig. 16.
	SingleWavefront bool
	// NoBurstWrites makes every global/stream write pay a DRAM row
	// activation per cache-line-sized chunk instead of streaming — the
	// consecutive-address burst facility of Section II-B turned off.
	NoBurstWrites bool
	// LinearTextures stores textures row-major instead of tiled, breaking
	// the match between the rasterizer's walk and the cache.
	LinearTextures bool
}

// Config describes one kernel execution experiment.
type Config struct {
	Spec  device.Spec
	Prog  *isa.Program
	Order raster.Order
	W, H  int
	// Iterations is the number of kernel invocations to time; zero means
	// DefaultIterations.
	Iterations int
	// Ablate selectively disables hardware mechanisms.
	Ablate Ablations
	// Watchdog is the forward-progress cycle budget per steady-state
	// batch; an event surfacing past it aborts the run with a
	// *WatchdogError. Zero means DefaultWatchdogBudget.
	Watchdog uint64
	// Hang, when non-nil, injects a clause that never retires (fault
	// injection); the watchdog is what must catch it.
	Hang *HangFault
	// ClockFactor scales the effective core clock, modelling a thermal
	// throttle event; 0 or 1 means nominal. Cycle counts are unaffected,
	// only Seconds stretches.
	ClockFactor float64
	// Trace, when non-nil, supplies precomputed cache-replay statistics
	// for the program's texture fetch stream; nil replays the trace
	// internally. The stats must come from a replay of exactly the
	// configuration TraceConfigFor derives — the staged pipeline uses
	// this to serve memoized replay artifacts into the simulation.
	Trace *cache.TraceStats
}

// TraceConfigFor derives the cache-replay configuration a simulation
// implies: the fetch signature of the compiled program (how many cached
// texture fetches, at what element size) combined with the domain walk,
// the resident-wavefront window and the cache-relevant ablations. It is
// the pipeline's Trace stage. ok is false when the program issues no
// cached texture fetches — such kernels have no replay stage — or the
// config is too malformed to trace.
func TraceConfigFor(cfg Config) (cache.TraceConfig, bool) {
	if cfg.Prog == nil || cfg.W <= 0 || cfg.H <= 0 {
		return cache.TraceConfig{}, false
	}
	texFetches, elem := textureFootprint(cfg.Prog)
	if texFetches == 0 {
		return cache.TraceConfig{}, false
	}
	waves := cfg.Spec.WavefrontsForGPRs(cfg.Prog.GPRCount)
	if cfg.Ablate.SingleWavefront {
		waves = 1
	}
	return cache.TraceConfig{
		Spec:          cfg.Spec,
		Order:         cfg.Order,
		W:             cfg.W,
		H:             cfg.H,
		ElemBytes:     elem,
		NumInputs:     texFetches,
		ResidentWaves: waves,
		LinearLayout:  cfg.Ablate.LinearTextures,
		FetchRes:      fetchSchedule(cfg.Prog),
	}, true
}

// fetchSchedule extracts the per-slot resource schedule of the program's
// cached fetch stream. A kernel that samples each input exactly once in
// declaration order — every kerngen kernel — has the identity schedule,
// returned as nil so its trace identity (and every memoized replay keyed
// on it) is unchanged. The hierarchy-dissection kernels revisit inputs
// (pointer-chase rounds), and their non-identity schedules replay against
// the packed arena cache.TraceConfig documents.
func fetchSchedule(p *isa.Program) []int {
	var seq []int
	identity := true
	for i := range p.Clauses {
		c := &p.Clauses[i]
		if c.Kind != isa.ClauseTEX {
			continue
		}
		for _, f := range c.Fetches {
			if f.Global {
				continue
			}
			if f.Resource != len(seq) {
				identity = false
			}
			seq = append(seq, f.Resource)
		}
	}
	if identity {
		return nil
	}
	return seq
}

// Counters holds per-resource busy cycles for one steady-state batch.
type Counters struct {
	ALU       uint64 // ALU pipeline
	TexIssue  uint64 // texture unit issue occupancy
	L2Fill    uint64 // L2 occupancy refilling texture L1 misses
	TexFill   uint64 // DRAM occupancy refilling texture L2 misses
	MemGlobal uint64 // DRAM occupancy of uncached global reads and writes
	Export    uint64 // streaming store (color buffer) path
}

// Bottleneck is the resource that limits a kernel, the classification the
// suite exists to produce.
type Bottleneck int

const (
	// BottleneckALU means the stream cores pace the kernel.
	BottleneckALU Bottleneck = iota
	// BottleneckFetch means the texture fetch path (issue or L1 fill)
	// paces the kernel.
	BottleneckFetch
	// BottleneckMemory means uncached global memory traffic or the store
	// path paces the kernel.
	BottleneckMemory
)

// String names the bottleneck.
func (b Bottleneck) String() string {
	switch b {
	case BottleneckALU:
		return "ALU"
	case BottleneckFetch:
		return "fetch"
	case BottleneckMemory:
		return "memory"
	}
	return "?"
}

// Result is the outcome of one simulated experiment.
type Result struct {
	Cycles       uint64  // total cycles across all iterations
	Seconds      float64 // Cycles at the core clock
	WavesPerSIMD int     // resident wavefronts (GPR-limited occupancy)
	GPRs         int     // per-thread register footprint
	TotalWaves   int     // wavefronts covering the domain
	Batches      int     // dispatch batches per SIMD
	HitRate      float64 // texture L1 hit rate (0 when no texture fetches)
	Counters     Counters
	Bottleneck   Bottleneck
}

// step is one clause converted to resource costs.
type step struct {
	aluOcc  uint64 // ALU pipe occupancy
	texOcc  uint64 // texture pipe occupancy
	l2Occ   uint64 // L2 fill occupancy (texture L1 refills)
	memOcc  uint64 // DRAM occupancy (fill or global traffic)
	expOcc  uint64 // export path occupancy
	latency uint64 // additional cycles until dependent clauses may start
	isFill  bool   // memOcc is texture fill (fetch path) traffic
}

// Run simulates the configured kernel and returns its timing.
func Run(cfg Config) (Result, error) {
	if cfg.Prog == nil {
		return Result{}, fmt.Errorf("sim: nil program")
	}
	if err := cfg.Prog.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	if err := cfg.Spec.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	if cfg.W <= 0 || cfg.H <= 0 {
		return Result{}, fmt.Errorf("sim: bad domain %dx%d", cfg.W, cfg.H)
	}
	if cfg.Prog.Mode != cfg.Order.Mode {
		return Result{}, fmt.Errorf("sim: program compiled for %s mode but order is %s", cfg.Prog.Mode, cfg.Order)
	}
	if cfg.Prog.Mode == il.Compute && !cfg.Spec.SupportsCompute {
		return Result{}, fmt.Errorf("sim: %s does not support compute shader mode", cfg.Spec.Arch)
	}
	iters := cfg.Iterations
	if iters == 0 {
		iters = DefaultIterations
	}

	dram, err := mem.NewDRAM(cfg.Spec)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}

	res := Result{GPRs: cfg.Prog.GPRCount}
	res.WavesPerSIMD = cfg.Spec.WavefrontsForGPRs(cfg.Prog.GPRCount)
	if cfg.Ablate.SingleWavefront {
		res.WavesPerSIMD = 1
	}
	res.TotalWaves = cfg.Order.WavefrontCount(cfg.W, cfg.H)

	// Texture-path statistics from the trace-driven cache replay: either
	// the pipeline's memoized replay artifact, or a fresh replay of the
	// fetch trace TraceConfigFor derives.
	var trace cache.TraceStats
	if tc, ok := TraceConfigFor(cfg); ok {
		if cfg.Trace != nil {
			trace = *cfg.Trace
		} else {
			trace, err = cache.Replay(tc)
			if err != nil {
				return Result{}, fmt.Errorf("sim: %w", err)
			}
		}
		res.HitRate = trace.HitRate()
	}

	// The step slice is scratch: Run is on the launch hot path (every
	// simulate-store miss lands here), so the slice is pooled rather than
	// reallocated per call.
	sp := stepsPool.Get().(*[]step)
	steps := buildSteps(cfg, dram, trace, (*sp)[:0])
	defer func() {
		*sp = steps
		stepsPool.Put(sp)
	}()

	// Steady-state batch on one SIMD, then replicate.
	wavesPerSIMDTotal := ceilDiv(res.TotalWaves, cfg.Spec.SIMDEngines)
	full := wavesPerSIMDTotal / res.WavesPerSIMD
	rem := wavesPerSIMDTotal % res.WavesPerSIMD
	res.Batches = full
	if rem > 0 {
		res.Batches++
	}

	budget := cfg.Watchdog
	if budget == 0 {
		budget = DefaultWatchdogBudget
	}
	hang := -1
	if cfg.Hang != nil {
		hang = cfg.Hang.Clause
		if hang < 0 || hang >= len(steps) {
			hang = len(steps) - 1
		}
	}

	makespan, counters, wderr := simulateBatch(steps, res.WavesPerSIMD, budget, hang)
	if wderr != nil {
		return Result{}, fmt.Errorf("sim: %w", wderr)
	}
	total := uint64(full) * makespan
	if rem > 0 {
		m2, _, wderr2 := simulateBatch(steps, rem, budget, hang)
		if wderr2 != nil {
			return Result{}, fmt.Errorf("sim: %w", wderr2)
		}
		total += m2
	}
	total += LaunchOverheadCycles

	clock := float64(cfg.Spec.CoreClockMHz) * 1e6
	if cfg.ClockFactor > 0 && cfg.ClockFactor != 1 {
		clock *= cfg.ClockFactor
	}
	res.Counters = counters
	res.Cycles = total * uint64(iters)
	res.Seconds = float64(res.Cycles) / clock
	res.Bottleneck = classify(counters)
	return res, nil
}

// textureFootprint returns the number of texture (cached) fetch
// instructions and the element size of the program's fetches.
func textureFootprint(p *isa.Program) (n, elemBytes int) {
	elemBytes = p.Type.Bytes()
	for i := range p.Clauses {
		c := &p.Clauses[i]
		if c.Kind != isa.ClauseTEX {
			continue
		}
		for _, f := range c.Fetches {
			if !f.Global {
				n++
			}
		}
	}
	return n, elemBytes
}

// stepsPool recycles the per-run step slices across simulations.
var stepsPool = sync.Pool{
	New: func() any { s := make([]step, 0, 64); return &s },
}

// buildSteps converts each clause into resource costs, appending onto
// steps (usually a pooled slice). The trace-derived per-fetch costs —
// fill occupancy, DRAM traffic, clause-switching latency — are the same
// for every cached fetch of the program, so they are computed once here
// rather than once per fetch per clause.
func buildSteps(cfg Config, dram *mem.DRAM, trace cache.TraceStats, steps []step) []step {
	spec := cfg.Spec
	// Each thread processor has an odd and an even wavefront slot; with a
	// single resident wavefront "only half the thread processor is used"
	// (Section II-A): the ALU pipeline cannot be filled back-to-back.
	aluPenalty := 1
	if spec.WavefrontsForGPRs(cfg.Prog.GPRCount) < spec.SlotsPerTP || cfg.Ablate.SingleWavefront {
		aluPenalty = 2
	}

	// Invariants of every cached (texture-path) fetch in the program.
	// L1 refills drain through the L2; the slice the L2 cannot absorb
	// goes to DRAM and pays row activations.
	l2OccPerFetch := uint64(trace.MissBytesPerFetch() / float64(spec.L2BytesPerCycle))
	memOccPerFetch := dram.TransferCycles(
		int(trace.DRAMBytesPerFetch()),
		trace.ActivationsPerFetch())
	// A wavefront's TEX clause completes at its slowest fetch: with 64
	// threads per fetch the clause all but certainly contains a miss, so
	// the clause-switching stall is the miss latency, not the per-access
	// average.
	missesPerFetch := 0.0
	if trace.FetchExecs > 0 {
		missesPerFetch = float64(trace.Misses) / float64(trace.FetchExecs)
	}
	texLatency := uint64(spec.TexMissLatency)
	if missesPerFetch < 1 {
		texLatency = uint64(missesPerFetch*float64(spec.TexMissLatency) +
			(1-missesPerFetch)*float64(spec.TexHitLatency))
	}

	for i := range cfg.Prog.Clauses {
		c := &cfg.Prog.Clauses[i]
		var s step
		switch c.Kind {
		case isa.ClauseALU:
			s.aluOcc = uint64(len(c.Bundles) * spec.CyclesPerALUBundle() * aluPenalty)
		case isa.ClauseTEX:
			for _, f := range c.Fetches {
				if f.Global {
					// Uncached global read: address issue through the
					// texture units, traffic through DRAM.
					bytes := spec.WavefrontSize * f.ElemBytes
					s.texOcc += 4
					s.memOcc += dram.GlobalReadCycles(bytes)
					if dram.ReadLatency > s.latency {
						s.latency = dram.ReadLatency
					}
				} else {
					s.texOcc += uint64(spec.FetchIssueCycles(f.ElemBytes))
					s.l2Occ += l2OccPerFetch
					s.memOcc += memOccPerFetch
					s.isFill = true
					if texLatency > s.latency {
						s.latency = texLatency
					}
				}
			}
		case isa.ClauseEXP:
			for _, e := range c.Exports {
				bytes := spec.WavefrontSize * e.ElemBytes
				s.expOcc += uint64(spec.StreamStoreCycles)
				s.memOcc += writeCycles(dram, bytes, cfg.Ablate.NoBurstWrites)
			}
		case isa.ClauseMEM:
			for _, e := range c.Exports {
				bytes := spec.WavefrontSize * e.ElemBytes
				s.memOcc += writeCycles(dram, bytes, cfg.Ablate.NoBurstWrites)
			}
		}
		steps = append(steps, s)
	}
	return steps
}

// writeCycles prices a wavefront's store: bursting at full bandwidth, or,
// under the no-burst ablation, paying a row activation per 64B chunk.
func writeCycles(dram *mem.DRAM, bytes int, noBurst bool) uint64 {
	if noBurst {
		return dram.ScatteredWriteCycles(bytes, (bytes+63)/64)
	}
	return dram.BurstWriteCycles(bytes)
}

// simulateBatch runs `waves` wavefronts through the clause steps on one
// SIMD engine's pipes and returns the makespan and busy counters. The
// budget is the forward-progress watchdog: the event-driven loop only
// ever advances time, so the first event surfacing past the budget
// proves the remaining wavefronts cannot retire within it, and the batch
// aborts with a structured diagnostic instead of spinning. A hang index
// >= 0 injects a clause that never completes (its issuing wavefront's
// next event lands beyond the budget), which is exactly the failure the
// watchdog exists to catch.
//
// Pending events live in a time-sorted ready list (events.go) rather
// than a heap: every re-queued event is at or after the event being
// processed, so the steady state is an O(1) append at the tail, and pop
// order — ascending (at, wave) — is identical to the heap it replaced,
// keeping results bit-identical.
func simulateBatch(steps []step, waves int, budget uint64, hang int) (uint64, Counters, *WatchdogError) {
	alu := mem.NewPipe("alu")
	tex := mem.NewPipe("tex")
	l2 := mem.NewPipe("l2")
	dram := mem.NewPipe("mem")
	exp := mem.NewPipe("export")
	var fillBusy, globalBusy uint64

	rl := readyPool.Get().(*readyList)
	rl.reset()
	defer readyPool.Put(rl)
	// Appending events in (at=0, wave ascending) order already satisfies
	// the sort invariant; no separate init pass is needed.
	for w := 0; w < waves; w++ {
		rl.ev = append(rl.ev, event{at: 0, wave: w, clause: 0})
	}

	counters := func() Counters {
		return Counters{
			ALU:       alu.Busy(),
			TexIssue:  tex.Busy(),
			L2Fill:    l2.Busy(),
			TexFill:   fillBusy,
			MemGlobal: globalBusy,
			Export:    exp.Busy(),
		}
	}

	numSteps := len(steps)
	var makespan uint64
	retired := 0
	for rl.len() > 0 {
		e := rl.pop()
		if e.at > budget {
			return 0, Counters{}, &WatchdogError{
				Wave:     e.wave,
				Clause:   e.clause,
				Clauses:  numSteps,
				At:       e.at,
				Budget:   budget,
				Retired:  retired,
				Waiting:  rl.len() + 1,
				Counters: counters(),
			}
		}
		if e.clause >= numSteps {
			if e.at > makespan {
				makespan = e.at
			}
			continue
		}
		if e.clause == hang {
			// The clause issues but never retires: re-surface the same
			// clause past the budget so the watchdog sees the stall.
			rl.push(event{at: budget + 1, wave: e.wave, clause: e.clause})
			continue
		}
		s := &steps[e.clause]
		ready := e.at
		if s.aluOcc > 0 {
			_, done := alu.Acquire(ready, s.aluOcc)
			ready = done
		}
		if s.texOcc > 0 {
			_, done := tex.Acquire(ready, s.texOcc)
			ready = done
		}
		if s.l2Occ > 0 {
			_, done := l2.Acquire(ready, s.l2Occ)
			ready = done
		}
		if s.memOcc > 0 {
			_, done := dram.Acquire(ready, s.memOcc)
			ready = done
			if s.isFill {
				fillBusy += s.memOcc
			} else {
				globalBusy += s.memOcc
			}
		}
		if s.expOcc > 0 {
			_, done := exp.Acquire(ready, s.expOcc)
			ready = done
		}
		ready += s.latency
		retired++
		rl.push(event{at: ready, wave: e.wave, clause: e.clause + 1})
	}

	return makespan, counters(), nil
}

// classify maps busy counters to the paper's three bottleneck classes. The
// fetch path is the greater of issue and fill occupancy (they pipeline);
// memory covers global reads/writes and the store path.
func classify(c Counters) Bottleneck {
	fetch := c.TexIssue
	if c.L2Fill > fetch {
		fetch = c.L2Fill
	}
	if c.TexFill > fetch {
		fetch = c.TexFill
	}
	memory := c.MemGlobal + c.Export
	switch {
	case c.ALU >= fetch && c.ALU >= memory:
		return BottleneckALU
	case fetch >= memory:
		return BottleneckFetch
	default:
		return BottleneckMemory
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
