package sim

import (
	"errors"
	"strings"
	"testing"

	"amdgpubench/internal/device"
	"amdgpubench/internal/il"
	"amdgpubench/internal/raster"
)

// watchdogConfig builds a small texture-read kernel config for the
// watchdog experiments.
func watchdogConfig(t *testing.T) Config {
	t.Helper()
	spec := device.Lookup(device.RV770)
	prog := buildChain(t, spec, 4, 8, il.Pixel, il.Float, il.TextureSpace, il.TextureSpace, 1)
	return Config{
		Spec: spec, Prog: prog, Order: raster.PixelOrder(),
		W: 64, H: 64, Iterations: 1,
	}
}

func TestWatchdogCatchesInjectedHang(t *testing.T) {
	cfg := watchdogConfig(t)
	cfg.Watchdog = 1 << 20
	cfg.Hang = &HangFault{Clause: 1}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("hung kernel completed")
	}
	var wde *WatchdogError
	if !errors.As(err, &wde) {
		t.Fatalf("error is not a *WatchdogError: %v", err)
	}
	if wde.Clause != 1 {
		t.Errorf("stuck clause = %d, want 1", wde.Clause)
	}
	if wde.Budget != 1<<20 || wde.At <= wde.Budget {
		t.Errorf("abort at cycle %d with budget %d: want At > Budget", wde.At, wde.Budget)
	}
	if wde.Waiting < 1 {
		t.Errorf("waiting wavefronts = %d, want >= 1", wde.Waiting)
	}
	if wde.Clauses != len(cfg.Prog.Clauses) {
		t.Errorf("diagnostic clause count = %d, want %d", wde.Clauses, len(cfg.Prog.Clauses))
	}
	if !strings.Contains(err.Error(), "watchdog") || !strings.Contains(err.Error(), "stuck") {
		t.Errorf("diagnostic text: %q", err.Error())
	}
}

func TestWatchdogHangNegativeClausePicksLast(t *testing.T) {
	cfg := watchdogConfig(t)
	cfg.Watchdog = 1 << 20
	cfg.Hang = &HangFault{Clause: -1}
	_, err := Run(cfg)
	var wde *WatchdogError
	if !errors.As(err, &wde) {
		t.Fatalf("want watchdog error, got %v", err)
	}
	if wde.Clause != len(cfg.Prog.Clauses)-1 {
		t.Errorf("stuck clause = %d, want last (%d)", wde.Clause, len(cfg.Prog.Clauses)-1)
	}
}

func TestWatchdogBudgetAbortsSlowBatch(t *testing.T) {
	// An absurdly tight budget fires even without an injected hang: the
	// forward-progress detector is generic, not hang-specific.
	cfg := watchdogConfig(t)
	cfg.Watchdog = 1
	_, err := Run(cfg)
	var wde *WatchdogError
	if !errors.As(err, &wde) {
		t.Fatalf("want watchdog error under 1-cycle budget, got %v", err)
	}
	if wde.Retired < 0 || wde.Counters.ALU == 0 && wde.Counters.TexIssue == 0 && wde.At == 0 {
		t.Errorf("diagnostic lacks progress info: %+v", wde)
	}
}

func TestWatchdogDefaultBudgetIsTransparent(t *testing.T) {
	// The watchdog must not perturb timing: an explicit generous budget
	// and the zero-value default produce bit-identical results.
	base, err := Run(watchdogConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := watchdogConfig(t)
	cfg.Watchdog = DefaultWatchdogBudget / 2
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base != got {
		t.Fatalf("watchdog changed results:\n%+v\nvs\n%+v", base, got)
	}
}

func TestClockThrottleStretchesSecondsOnly(t *testing.T) {
	base, err := Run(watchdogConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := watchdogConfig(t)
	cfg.ClockFactor = 0.5
	slow, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Cycles != base.Cycles {
		t.Errorf("throttle changed cycles: %d vs %d", slow.Cycles, base.Cycles)
	}
	if ratio := slow.Seconds / base.Seconds; ratio < 1.99 || ratio > 2.01 {
		t.Errorf("0.5 throttle stretched seconds by %.3fx, want 2x", ratio)
	}
}
