package sim

import (
	"math/rand"
	"testing"
)

// eventHeap is the binary min-heap the ready list replaced, kept as the
// differential-test reference: pop order must match it exactly, because
// the batch loop's results are only bit-identical if the drain order is.
type eventHeap []event

func (h eventHeap) less(i, j int) bool { return h[i].before(h[j]) }

func (h *eventHeap) push(e event) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && s.less(r, kid) {
			kid = r
		}
		if !s.less(kid, i) {
			break
		}
		s[i], s[kid] = s[kid], s[i]
		i = kid
	}
	*h = s
	return top
}

// TestReadyListMatchesHeap drives the ready list and the reference heap
// through identical random workloads that respect the batch loop's one
// invariant — a pushed event is never earlier than the event just
// popped — and demands identical pop order. Wave indices stay unique
// among pending events, mirroring one-event-per-wavefront.
func TestReadyListMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		waves := 1 + rng.Intn(24)
		var rl readyList
		var h eventHeap
		for w := 0; w < waves; w++ {
			e := event{at: 0, wave: w, clause: 0}
			rl.push(e)
			h.push(e)
		}
		steps := rng.Intn(64)
		for rl.len() > 0 {
			got, want := rl.pop(), h.pop()
			if got != want {
				t.Fatalf("trial %d: ready list popped %+v, heap popped %+v", trial, got, want)
			}
			if got.clause < steps {
				// Re-queue the wavefront at or after the current time,
				// with occasional long stalls to force tail scans past
				// clustered completion times.
				delta := uint64(rng.Intn(8))
				if rng.Intn(10) == 0 {
					delta += uint64(rng.Intn(1000))
				}
				next := event{at: got.at + delta, wave: got.wave, clause: got.clause + 1}
				rl.push(next)
				h.push(next)
			}
		}
		if len(h) != 0 {
			t.Fatalf("trial %d: ready list drained but heap holds %d events", trial, len(h))
		}
	}
}

// TestReadyListReclaimsPoppedPrefix pins the bounded-memory property:
// draining and refilling in steady state must recycle the popped prefix
// of the backing array instead of growing it without bound.
func TestReadyListReclaimsPoppedPrefix(t *testing.T) {
	rl := readyList{ev: make([]event, 0, 8)}
	for w := 0; w < 4; w++ {
		rl.push(event{at: 0, wave: w})
	}
	at := uint64(0)
	for i := 0; i < 10000; i++ {
		e := rl.pop()
		at = e.at
		rl.push(event{at: at + 3, wave: e.wave})
	}
	if c := cap(rl.ev); c > 64 {
		t.Errorf("steady-state churn grew the backing array to cap %d, want bounded", c)
	}
}

// BenchmarkSimulateBatch times the event loop in isolation: one
// steady-state batch of 16 wavefronts over a mixed ALU/TEX/EXP clause
// schedule, the shape every figure point pays per simulate-store miss.
func BenchmarkSimulateBatch(b *testing.B) {
	steps := []step{
		{aluOcc: 8},
		{texOcc: 12, l2Occ: 4, memOcc: 2, latency: 180, isFill: true},
		{aluOcc: 16},
		{texOcc: 12, l2Occ: 4, memOcc: 2, latency: 180, isFill: true},
		{aluOcc: 4},
		{expOcc: 8, memOcc: 4},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := simulateBatch(steps, 16, DefaultWatchdogBudget, -1); err != nil {
			b.Fatal(err)
		}
	}
}
